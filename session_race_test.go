package dise

import (
	"context"
	"errors"
	"sync"
	"testing"

	"dise/internal/artifacts"
)

// TestSessionConcurrentAdvance pins the Session concurrency contract:
// concurrent Advance calls serialize safely. Each call runs under the
// session mutex, so every call diffs against whichever version the previous
// (serialized) call installed — no torn state, no data races (this test is
// run under -race in CI), and the step counter counts every success exactly
// once. The interleaving order is scheduler-chosen; what is pinned is that
// every call completes, the session stays internally consistent, and a
// sequential Advance afterwards still produces a valid result.
func TestSessionConcurrentAdvance(t *testing.T) {
	ctx := context.Background()
	art, _ := artifacts.ByName("WBS")
	srcs := chainSources(art)

	a := NewAnalyzer()
	sess, err := a.NewSession(ctx, SessionRequest{InitialSrc: srcs[0], Proc: art.Proc})
	if err != nil {
		t.Fatal(err)
	}

	// Fire the chain's versions concurrently. Whatever order the scheduler
	// picks, each Advance sees a parseable predecessor and must succeed.
	var wg sync.WaitGroup
	errs := make([]error, len(srcs)-1)
	for i := 1; i < len(srcs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sess.Advance(ctx, srcs[i])
			if err == nil && res == nil {
				err = errors.New("Advance returned nil result without error")
			}
			errs[i-1] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Advance %d: %v", i+1, err)
		}
	}
	if got, want := sess.Step(), len(srcs)-1; got != want {
		t.Fatalf("Step() = %d after %d successful concurrent advances", got, want)
	}

	// The session is still coherent: a sequential re-advance to the base
	// version diffs cleanly against whichever version won the last slot.
	res, err := sess.Advance(ctx, srcs[0])
	if err != nil {
		t.Fatalf("sequential Advance after concurrent burst: %v", err)
	}
	if len(res.Paths) == 0 && res.ChangedNodes == 0 {
		t.Fatalf("post-burst Advance returned an empty result: %+v", res)
	}
	if got, want := sess.Step(), len(srcs); got != want {
		t.Fatalf("Step() = %d, want %d", got, want)
	}
}
