package dise

import (
	"context"
	"sync"

	"dise/internal/cfg"
	"dise/internal/diff"
	idise "dise/internal/dise"
	"dise/internal/memo"
	"dise/internal/symexec"
)

// Session is a version-chain analysis session: the stateful counterpart of
// Analyze for a program that evolves through a sequence of versions
// v0 → v1 → … → vk (the paper's evaluation chains: ASW has 15 versions, WBS
// 16, OAE 9). Each Advance(ctx, nextSrc) diffs the new version against the
// previous one and runs the same directed analysis Analyze would — the
// results are byte-identical — but the session additionally persists a
// memoized execution-tree trie (internal/memo) across steps: the solver
// verdicts recorded while exploring version v(i) are replayed while
// exploring v(i+1) wherever the diff proves the surrounding statements
// unchanged, so the cost of a step tracks the size of the edit rather than
// the size of the program.
//
// The invalidation rule is the trie's chain invariant (see internal/memo):
// a recorded solver verdict is only ever consulted by a state whose path
// condition is provably the exact conjunction the verdict was recorded
// under, because recorded children are re-attached arm by arm only when
// their recorded path-condition contribution matches the one the current
// run just computed. An edit therefore invalidates exactly the conjunctions
// it changes: an edited write keeps its recorded subtree alive until the
// first constraint its new value actually alters, an edited conditional
// invalidates the conjunctions containing its constraint and nothing else,
// and a reverted edit re-matches the earlier version's recorded subtrees
// outright. Before each run the trie is additionally re-keyed through the
// diff's node correspondence map — statement identities are translated into
// the new version's key space, with changed/moved/removed statements
// conservatively treated as unmatched — and an edit that changes the
// symbolic inputs themselves (parameters, globals, their domains or the
// solver backend) invalidates the whole trie. Pruning decisions — which are
// change-dependent — are never replayed; every step re-decides them against
// its own affected sets, which is what keeps warm results exact for DiSE's
// order-sensitive search.
//
// The constraint subsystem's prefix cache is keyed by constraint content,
// not by program version, and the session's steps all run against the
// owning Analyzer's shared cache — so even invalidated regions that re-solve
// live benefit from prefixes solved in earlier steps.
//
// A Session is owned by one logical client: Advance calls are serialized
// internally, but interleaving Advances from multiple goroutines makes the
// version chain itself meaningless. The owning Analyzer remains fully
// concurrent-safe and can serve other requests while a session runs.
type Session struct {
	a               *Analyzer
	proc            string
	interprocedural bool

	mu   sync.Mutex
	step int
	prev version // previous chain version (the next Advance's base)
	// prevSig is the memo signature of the previous step's engine; a
	// mismatch invalidates the whole trie (see symexec.Engine.MemoSignature).
	prevSig string
	tree    *memo.Tree
}

// SessionRequest configures NewSession.
type SessionRequest struct {
	// InitialSrc is the first version of the chain (v0). It is parsed,
	// type-checked and validated, but not analyzed: an analysis needs two
	// versions, so the first Result comes from the first Advance.
	InitialSrc string
	// Proc is the procedure under analysis (for inter-procedural sessions,
	// the entry procedure).
	Proc string
	// Interprocedural inlines every call reachable from Proc in every
	// version before the differential analysis.
	Interprocedural bool
	// SkipSeed skips the seeding run: by default NewSession performs one
	// full symbolic execution of the initial version, recording its
	// execution tree into the session's trie — the paper's workflow, where
	// the original program was fully explored once before it started
	// evolving. Seeding is what gives the very first Advance something to
	// replay (a directed run only records the paths it explores, so without
	// a seed the trie starts empty) and it keeps paying down the chain,
	// because subtrees later steps never re-explore retain the seed's
	// verdicts. Skip it when the initial version is too large to explore
	// fully; the session then warms up from the first Advance instead.
	SkipSeed bool
}

// NewSession opens a version-chain session seeded with the chain's first
// version. The session inherits every option of the Analyzer (strategy,
// parallelism, solver backend, bounds) and shares its parse/CFG cache and
// solved-prefix cache.
func (a *Analyzer) NewSession(ctx context.Context, req SessionRequest) (*Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, &Error{Kind: Cancelled, Err: err}
	}
	// Checked here, not left to the engine builder, so a SkipSeed session
	// (which builds no engine until its first Advance) still fails at
	// construction: the memo trie records verdicts keyed by per-path
	// conjunctions, which state merging replaces with factored disjunctions.
	if a.conf.mergeBound != 0 {
		return nil, &Error{Kind: InvalidConfig, Err: errMergeSession}
	}
	// Every session version becomes an engine's graph (the seed run, or a
	// later Advance's mod side), so precompute unconditionally.
	v, err := a.resolveVersion(req.InitialSrc, req.Proc, "initial version", req.Interprocedural, true)
	if err != nil {
		return nil, err
	}
	s := &Session{
		a:               a,
		proc:            req.Proc,
		interprocedural: req.Interprocedural,
		prev:            v,
		tree:            &memo.Tree{},
	}
	s.tree.SetNodeBudget(a.conf.memoNodeBudget)
	if !req.SkipSeed {
		s.tree.BeginStep()
		cfgc := a.engineConfig(ctx)
		cfgc.Memo = s.tree
		engine, err := symexec.NewPrepared(v.prog, v.proc, v.graph, cfgc)
		if err != nil {
			return nil, errKind(InvalidConfig, "", err)
		}
		engine.RunFull()
		if err := engine.InterruptErr(); err != nil {
			return nil, &Error{Kind: Cancelled, Err: err}
		}
		a.noteRunDone()
		// A MaxStates-truncated seed is kept: every recorded verdict is a
		// valid fact regardless of how far the seeding run got.
		s.prevSig = engine.MemoSignature()
		s.tree.Enforce()
	}
	return s, nil
}

// MemoUsage reports the session trie's current size: node count and the
// approximate retained bytes (memo.Tree.Bytes). The service store sums it
// across sessions to enforce a global trie-byte ceiling.
func (s *Session) MemoUsage() (nodes int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Size(), s.tree.Bytes()
}

// Step returns how many Advance calls have completed successfully.
func (s *Session) Step() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.step
}

// Advance moves the chain to its next version: it diffs nextSrc against the
// session's previous version, invalidates the stale parts of the memo trie,
// runs the directed analysis (replaying recorded solver verdicts for the
// unchanged parts, recording fresh ones for the rest), and returns the same
// Result a cold Analyze(prev, next) would — plus the step's MemoStats in
// Result.Stats.Memo. On failure (cancellation, budget exhaustion, a version
// that does not parse) the session keeps its previous version and can be
// retried, but a failure that interrupted a run mid-flight drops the memo
// trie: a partially refreshed trie is already keyed in the new version's
// space and cannot soundly serve the retried diff.
func (s *Session) Advance(ctx context.Context, nextSrc string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, &Error{Kind: Cancelled, Err: err}
	}

	next, err := s.a.resolveVersion(nextSrc, s.proc, "next version", s.interprocedural, true)
	if err != nil {
		return nil, err
	}

	d := diff.Procedures(s.prev.proc, next.proc)

	cfgc := s.a.engineConfig(ctx)
	cfgc.Memo = s.tree
	engine, err := symexec.NewPrepared(next.prog, next.proc, next.graph, cfgc)
	if err != nil {
		return nil, errKind(InvalidConfig, "", err)
	}

	// Invalidate: translate the trie into the new version's key space,
	// dropping what the edit touched — or everything, when the symbolic
	// inputs themselves diverged.
	sig := engine.MemoSignature()
	var kept, dropped int
	if s.prevSig != "" && s.prevSig != sig {
		dropped = s.tree.Invalidate()
	} else {
		kept, dropped = s.tree.Rekey(nodeCorrespondence(d))
	}
	// Advance the trie's step clock before the run: the engine stamps every
	// node it touches with the new generation, so post-run budget
	// enforcement can tell this step's working set from retained branches.
	s.tree.BeginStep()

	res, err := s.a.runJob(idise.Job{
		BaseProc:  s.prev.proc,
		BaseGraph: s.prev.graph,
		Diff:      d,
		Engine:    engine,
		Opts:      idise.Options{TransitiveWrites: s.a.conf.transitiveWrites},
	}, s.a.resultConfig(), next.prog, s.proc)
	if err != nil {
		// The run started mutating the trie; only a fresh recording is
		// trustworthy now.
		s.tree = &memo.Tree{}
		s.prevSig = ""
		return nil, err
	}

	s.step++
	// Hold the trie to its node budget (no-op when none is set) now that no
	// engine holds trie pointers; evicted subtrees re-solve cold if a later
	// version needs them again.
	evicted := s.tree.Enforce()
	st := res.internal.Summary.Stats
	res.Stats.Memo = MemoStats{
		Enabled:            true,
		Step:               s.step,
		MemoHits:           st.MemoHits,
		StatesReplayed:     st.MemoStatesReplayed,
		StatesExploredLive: st.MemoStatesLive,
		NodesKept:          kept,
		NodesInvalidated:   dropped,
		NodesEvicted:       evicted,
		TrieNodes:          s.tree.Size(),
		TrieBytes:          s.tree.Bytes(),
	}
	s.prev = next
	s.prevSig = sig
	return res, nil
}

// nodeCorrespondence builds the trie-rekeying map for one step: the diff's
// statement-key correspondence (strictly unchanged pairs only) plus the
// reserved keys of the statement-less nodes, which correspond in any two
// versions.
func nodeCorrespondence(d *diff.Result) map[string]string {
	corr := d.Correspondence().BaseToMod
	corr[cfg.StableKeyBegin] = cfg.StableKeyBegin
	corr[cfg.StableKeyEnd] = cfg.StableKeyEnd
	corr[cfg.StableKeyError] = cfg.StableKeyError
	return corr
}
