package dise

import (
	"strings"
	"testing"
)

const interprocBase = `
int Total = 0;
int Flag = 0;

proc add(int v) {
  Total = Total + v;
}

proc classify() {
  if (Total > 10) {
    Flag = 1;
  } else {
    Flag = 0;
  }
}

proc main(int a, int b) {
  add(a);
  add(b);
  classify();
}
`

func TestAnalyzeInterprocedural(t *testing.T) {
	// The change is inside add(): the contribution doubles.
	mod := strings.Replace(interprocBase, "Total = Total + v;", "Total = Total + v + v;", 1)
	res, err := AnalyzeInterprocedural(interprocBase, mod, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The classify() conditional — in a different procedure than the change
	// — must be affected through the Total global.
	if len(res.AffectedConditionalLines) == 0 {
		t.Fatal("the callee change must affect the caller-side conditional")
	}
	if len(res.Paths) != 2 {
		t.Fatalf("affected path conditions = %d, want 2 (both classify arms)", len(res.Paths))
	}
	for _, pc := range res.PathConditions() {
		if !strings.Contains(pc, "Total") && !strings.Contains(pc, "A") {
			t.Errorf("path condition %q should involve the inlined dataflow", pc)
		}
	}
	// Tests solve end to end.
	tests, err := res.Tests()
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) == 0 {
		t.Error("no tests generated")
	}
}

func TestAnalyzeInterproceduralIdenticalVersions(t *testing.T) {
	res, err := AnalyzeInterprocedural(interprocBase, interprocBase, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 0 || res.ChangedNodes != 0 {
		t.Errorf("identical versions: %d paths, %d changed nodes; want 0/0",
			len(res.Paths), res.ChangedNodes)
	}
}

func TestInlineProgramAPI(t *testing.T) {
	flat, err := InlineProgram(interprocBase, "main")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"add_1_v = a;", "add_2_v = b;", "Total > 10"} {
		if !strings.Contains(flat, want) {
			t.Errorf("inlined output missing %q:\n%s", want, flat)
		}
	}
	// The output reparses and executes.
	sum, err := Execute(flat, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Paths) != 2 {
		t.Errorf("inlined program paths = %d, want 2", len(sum.Paths))
	}
}

func TestInterproceduralErrors(t *testing.T) {
	if _, err := AnalyzeInterprocedural("proc a( {", interprocBase, "main", Options{}); err == nil {
		t.Error("expected base parse error")
	}
	if _, err := AnalyzeInterprocedural(interprocBase, interprocBase, "ghost", Options{}); err == nil {
		t.Error("expected unknown-entry error")
	}
	recursive := "proc main(int n) { main(n); }"
	if _, err := AnalyzeInterprocedural(recursive, recursive, "main", Options{}); err == nil {
		t.Error("expected recursion rejection")
	}
	if _, err := InlineProgram("proc f() { return; } proc main() { f(); }", "main"); err == nil {
		t.Error("expected single-exit rejection")
	}
}

func TestExecuteRejectsUninlinedCalls(t *testing.T) {
	if _, err := Execute(interprocBase, "main", Options{}); err == nil ||
		!strings.Contains(err.Error(), "inline") {
		t.Errorf("Execute on a program with calls must point at inlining, got %v", err)
	}
}

func TestTransitiveWritesOption(t *testing.T) {
	base := `
proc p(int a) {
  x = a;
  y = x;
  if (y > 10) {
    out = 1;
  } else {
    out = 2;
  }
}`
	mod := strings.Replace(base, "x = a;", "x = a + 5;", 1)
	plain, err := Analyze(base, mod, "p", Options{})
	if err != nil {
		t.Fatal(err)
	}
	extended, err := Analyze(base, mod, "p", Options{TransitiveWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.AffectedConditionalLines) != 0 {
		t.Error("published rules must not see the write chain")
	}
	if len(extended.AffectedConditionalLines) != 1 {
		t.Errorf("TransitiveWrites must reach the conditional, ACN lines = %v",
			extended.AffectedConditionalLines)
	}
}
