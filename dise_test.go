package dise

import (
	"strings"
	"testing"
)

// The motivating example of the paper (Fig. 2) as base/modified sources.
const baseUpdate = `
int AltPress = 0;
int Meter = 2;

proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos == 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 1;
  } else {
    AltPress = 2;
  }
}
`

var modUpdate = strings.Replace(baseUpdate, "PedalPos == 0", "PedalPos <= 0", 1)

func TestAnalyzeMotivatingExample(t *testing.T) {
	res, err := Analyze(baseUpdate, modUpdate, "update", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 7 {
		t.Fatalf("affected path conditions = %d, want 7 (paper §2.2)", len(res.Paths))
	}
	if res.ChangedNodes != 1 {
		t.Errorf("changed nodes = %d, want 1", res.ChangedNodes)
	}
	if len(res.AffectedConditionalLines) != 4 {
		t.Errorf("ACN lines = %v, want 4 entries", res.AffectedConditionalLines)
	}
	if len(res.AffectedWriteLines) != 7 {
		t.Errorf("AWN lines = %v, want 7 entries", res.AffectedWriteLines)
	}
	if res.Stats.StatesExplored == 0 || res.Stats.SolverCalls == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	for _, pc := range res.PathConditions() {
		if !strings.Contains(pc, "PedalPos") {
			t.Errorf("path condition %q should mention PedalPos", pc)
		}
	}
}

func TestExecuteMotivatingExample(t *testing.T) {
	sum, err := Execute(modUpdate, "update", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Paths) != 21 {
		t.Fatalf("full path conditions = %d, want 21 (paper §2.2)", len(sum.Paths))
	}
	tests := sum.Tests()
	if len(tests) == 0 {
		t.Fatal("no tests generated")
	}
	for _, tc := range tests {
		if !strings.HasPrefix(tc.Call, "update(") {
			t.Errorf("test call %q malformed", tc.Call)
		}
	}
}

func TestFullRangeDomainOption(t *testing.T) {
	domain := [2]int64{-1_000_000, 1_000_000}
	sum, err := Execute(modUpdate, "update", Options{IntDomain: &domain})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Paths) != 24 {
		t.Fatalf("full-range path conditions = %d, want 24 (ablation, DESIGN.md)", len(sum.Paths))
	}
}

func TestSelectAugmentWorkflow(t *testing.T) {
	baseSum, err := Execute(baseUpdate, "update", Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(baseUpdate, modUpdate, "update", Options{})
	if err != nil {
		t.Fatal(err)
	}
	diseTests, err := res.Tests()
	if err != nil {
		t.Fatal(err)
	}
	sel := SelectAugment(baseSum.Tests(), diseTests)
	if len(sel.Selected)+len(sel.Added) != len(diseTests) {
		t.Errorf("selection %d+%d != %d tests", len(sel.Selected), len(sel.Added), len(diseTests))
	}
}

func TestExecutionTreeFig1(t *testing.T) {
	src := `
int y = 0;
proc testX(int x) {
  if (x > 0) {
    y = y + x;
  } else {
    y = y - x;
  }
}
`
	tree, err := ExecutionTree(src, "testX", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PC: true", "PC: X > 0", "PC: X <= 0", "Y + X", "Y - X"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestCFGDotOutputs(t *testing.T) {
	dot, err := CFGDot(modUpdate, "update")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph cfg") || !strings.Contains(dot, "diamond") {
		t.Errorf("CFG dot output malformed:\n%s", dot)
	}
	affected, err := AffectedCFGDot(baseUpdate, modUpdate, "update", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(affected, "lightcoral") || !strings.Contains(affected, "lightblue") {
		t.Error("affected CFG dot must highlight ACN and AWN nodes")
	}
}

func TestParseProgramErrors(t *testing.T) {
	if _, err := ParseProgram("proc p( {"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ParseProgram("proc p() { x = y; }"); err == nil {
		t.Error("expected type error (undefined variable)")
	}
	if _, err := Analyze("proc a() { skip; }", "proc a() { skip; }", "zzz", Options{}); err == nil {
		t.Error("expected missing-procedure error")
	}
	if _, err := Execute("proc a() { skip; }", "zzz", Options{}); err == nil {
		t.Error("expected missing-procedure error")
	}
	if _, _, err := EvaluationTables("nope", Options{}); err == nil {
		t.Error("expected unknown-artifact error")
	}
}

func TestProgramAccessors(t *testing.T) {
	p, err := ParseProgram(baseUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Procedures(); len(got) != 1 || got[0] != "update" {
		t.Errorf("Procedures = %v", got)
	}
	if !strings.Contains(p.Pretty(), "proc update(") {
		t.Error("Pretty output malformed")
	}
}

func TestEvaluationArtifactNames(t *testing.T) {
	names := EvaluationArtifacts()
	want := map[string]bool{"ASW": true, "WBS": true, "OAE": true}
	if len(names) != 3 {
		t.Fatalf("artifacts = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected artifact %q", n)
		}
	}
}

func TestEvaluationTablesWBS(t *testing.T) {
	t2, t3, err := EvaluationTables("WBS", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2, "Table 2 — WBS") || !strings.Contains(t3, "Table 3 — WBS") {
		t.Error("table headers missing")
	}
	if !strings.Contains(t2, "v16") {
		t.Error("table 2 should include all 16 versions")
	}
}

func TestAssertViolationSurfacesInAPI(t *testing.T) {
	base := `
proc p(int a) {
  if (a > 100) {
    x = 100;
  } else {
    x = a;
  }
  assert x <= 100;
}`
	mod := strings.Replace(base, "x = 100;", "x = a;", 1)
	res, err := Analyze(base, mod, "p", Options{})
	if err != nil {
		t.Fatal(err)
	}
	violated := 0
	for _, p := range res.Paths {
		if p.AssertViolated {
			violated++
		}
	}
	if violated == 0 {
		t.Error("assertion violation introduced by the change must surface")
	}
}
