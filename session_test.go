package dise

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dise/internal/artifacts"
)

// chainSources returns the version-chain sources of one artifact:
// base, v1, v2, ... in catalog order.
func chainSources(art artifacts.Artifact) []string {
	out := []string{art.Base}
	for _, v := range art.Versions {
		out = append(out, art.SourceFor(v))
	}
	return out
}

// coldResult is the comparable projection of a Result: everything a cold
// Analyze and a warm Session.Advance must agree on byte for byte. The
// solver/memo observability blocks and wall-clock time are excluded — they
// describe how the answer was computed, not the answer.
type comparableResult struct {
	Paths                    []PathInfo
	ChangedNodes             int
	AffectedConditionalLines []int
	AffectedWriteLines       []int
	StatesExplored           int
	PathConditions           int
	InfeasibleBranches       int
	SearchStrategy           string
	ExploreParallelism       int
}

func comparable(r *Result) comparableResult {
	return comparableResult{
		Paths:                    r.Paths,
		ChangedNodes:             r.ChangedNodes,
		AffectedConditionalLines: r.AffectedConditionalLines,
		AffectedWriteLines:       r.AffectedWriteLines,
		StatesExplored:           r.Stats.StatesExplored,
		PathConditions:           r.Stats.PathConditions,
		InfeasibleBranches:       r.Stats.InfeasibleBranches,
		SearchStrategy:           r.Stats.SearchStrategy,
		ExploreParallelism:       r.Stats.ExploreParallelism,
	}
}

// TestSessionMatchesColdAnalyzeOnArtifacts is the exactness gate of the
// version-chain session: over the full evolution chains of all three
// artifacts (40 chain steps), at every strategy and parallelism level, the
// warm Session.Advance result is byte-identical to a cold pairwise Analyze
// of the same version pair on a fresh Analyzer — and the warm chain really
// is warm (trie reuse from the second step on).
func TestSessionMatchesColdAnalyzeOnArtifacts(t *testing.T) {
	combos := []struct {
		strategy string
		par      int
	}{
		{"dfs", 1}, {"dfs", 4},
		{"bfs", 1}, {"bfs", 4},
		{"directed", 1}, {"directed", 4},
	}
	ctx := context.Background()
	for _, art := range artifacts.All() {
		art := art
		for _, c := range combos {
			c := c
			t.Run(fmt.Sprintf("%s/%s/par%d", art.Name, c.strategy, c.par), func(t *testing.T) {
				t.Parallel()
				opts := []Option{
					WithSearchStrategy(c.strategy),
					WithExploreParallelism(c.par),
				}
				warm := NewAnalyzer(opts...)
				cold := NewAnalyzer(opts...)
				srcs := chainSources(art)
				sess, err := warm.NewSession(ctx, SessionRequest{InitialSrc: srcs[0], Proc: art.Proc})
				if err != nil {
					t.Fatal(err)
				}
				for i := 1; i < len(srcs); i++ {
					warmRes, err := sess.Advance(ctx, srcs[i])
					if err != nil {
						t.Fatalf("step %d: warm Advance: %v", i, err)
					}
					coldRes, err := cold.Analyze(ctx, Request{BaseSrc: srcs[i-1], ModSrc: srcs[i], Proc: art.Proc})
					if err != nil {
						t.Fatalf("step %d: cold Analyze: %v", i, err)
					}
					if got, want := comparable(warmRes), comparable(coldRes); !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d (%s): warm session diverged from cold analysis\nwarm: %+v\ncold: %+v",
							i, art.Versions[i-1].Name, got, want)
					}
					m := warmRes.Stats.Memo
					if !m.Enabled || m.Step != i {
						t.Fatalf("step %d: memo stats not populated: %+v", i, m)
					}
					if i > 1 && m.StatesReplayed == 0 {
						t.Errorf("step %d (%s): warm chain replayed no recorded states: %+v",
							i, art.Versions[i-1].Name, m)
					}
				}
			})
		}
	}
}

// TestSessionNoOpEditFastPath pins the degenerate-edit behavior: advancing
// to a version whose only difference is whitespace (identical AST) must
// invalidate nothing, make zero solver checks, expand no state live — and
// must leave the trie intact so a later real change still replays from it.
// TestSessionRejectsStateMerging pins the incompatibility of the two reuse
// mechanisms: a merging Analyzer cannot open a version-chain session — the
// memo trie is keyed by per-path conjunctions, which merging replaces with
// factored disjunctions — and the rejection happens at construction time
// with Kind InvalidConfig, even when SkipSeed defers the first engine build.
func TestSessionRejectsStateMerging(t *testing.T) {
	art, _ := artifacts.ByName("WBS")
	for _, skipSeed := range []bool{false, true} {
		a := NewAnalyzer(WithStateMerging(MergeUnbounded))
		_, err := a.NewSession(context.Background(), SessionRequest{
			InitialSrc: art.Base, Proc: art.Proc, SkipSeed: skipSeed,
		})
		if KindOf(err) != InvalidConfig {
			t.Errorf("SkipSeed=%v: NewSession error = %v, want Kind InvalidConfig", skipSeed, err)
		}
	}
	// One-shot Analyze on the same Analyzer remains usable.
	a := NewAnalyzer(WithStateMerging(MergeUnbounded))
	mod := art.SourceFor(art.Versions[0])
	if _, err := a.Analyze(context.Background(), Request{BaseSrc: art.Base, ModSrc: mod, Proc: art.Proc}); err != nil {
		t.Fatalf("merging Analyze: %v", err)
	}
}

func TestSessionNoOpEditFastPath(t *testing.T) {
	art, _ := artifacts.ByName("WBS")
	ctx := context.Background()
	a := NewAnalyzer()
	sess, err := a.NewSession(ctx, SessionRequest{InitialSrc: art.Base, Proc: art.Proc})
	if err != nil {
		t.Fatal(err)
	}

	v1 := art.SourceFor(art.Versions[0])
	res1, err := sess.Advance(ctx, v1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Solver.Checks == 0 {
		t.Fatalf("step 1 made no solver checks; the no-op step would be vacuous")
	}

	// Whitespace-only edit: same AST, so the diff proves every statement
	// unchanged and the affected sets are empty.
	noop := strings.ReplaceAll(v1, ";", " ;") + "\n\n"
	res2, err := sess.Advance(ctx, noop)
	if err != nil {
		t.Fatal(err)
	}
	m := res2.Stats.Memo
	if m.NodesInvalidated != 0 {
		t.Errorf("no-op edit invalidated %d trie nodes", m.NodesInvalidated)
	}
	if res2.Stats.Solver.Checks != 0 {
		t.Errorf("no-op edit made %d solver checks, want 0", res2.Stats.Solver.Checks)
	}
	if m.StatesExploredLive != 0 {
		t.Errorf("no-op edit explored %d states live, want 0 (100%% replay): %+v", m.StatesExploredLive, m)
	}
	if len(res2.Paths) != 0 || res2.ChangedNodes != 0 {
		t.Errorf("no-op edit reported changes: %d paths, %d changed nodes", len(res2.Paths), res2.ChangedNodes)
	}

	// A real change after the no-op step must still replay recorded verdicts:
	// the fast path must not have damaged the trie.
	res3, err := sess.Advance(ctx, art.SourceFor(art.Versions[1]))
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.Memo.MemoHits == 0 {
		t.Errorf("step after no-op edit reused no verdicts: %+v", res3.Stats.Memo)
	}
}

// TestSessionPrefixCacheSurvivesSteps pins the cross-step half of the
// constraint subsystem's reuse: the session's steps all run against the
// owning Analyzer's shared solved-prefix cache, whose keys are constraint
// content (not program version), so live re-solves in step N hit prefixes
// solved in step N-1.
func TestSessionPrefixCacheSurvivesSteps(t *testing.T) {
	art, _ := artifacts.ByName("WBS")
	ctx := context.Background()
	a := NewAnalyzer()
	srcs := chainSources(art)
	sess, err := a.NewSession(ctx, SessionRequest{InitialSrc: srcs[0], Proc: art.Proc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Advance(ctx, srcs[1]); err != nil {
		t.Fatal(err)
	}
	afterFirst := a.SolverCacheStats().Hits
	for i := 2; i < len(srcs); i++ {
		if _, err := sess.Advance(ctx, srcs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if hits := a.SolverCacheStats().Hits; hits <= afterFirst {
		t.Errorf("prefix cache hits did not grow across session steps: %d after step 1, %d at end",
			afterFirst, hits)
	}
}

// TestSessionInputChangeInvalidates pins the whole-trie invalidation rule:
// an edit that changes the symbolic inputs (here: a new parameter) drops
// every recorded node instead of replaying against incomparable domains.
func TestSessionInputChangeInvalidates(t *testing.T) {
	base := `
proc p(int x) {
  if (x > 3) { x = x + 1; } else { x = 0; }
  if (x > 10) { x = 2; }
}`
	v1 := strings.Replace(base, "x > 3", "x > 4", 1)
	v2 := strings.Replace(strings.Replace(base, "int x", "int x, int y", 1), "x > 3", "x > 5", 1)

	ctx := context.Background()
	a := NewAnalyzer()
	sess, err := a.NewSession(ctx, SessionRequest{InitialSrc: base, Proc: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Advance(ctx, v1); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Advance(ctx, v2)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Stats.Memo
	if m.NodesKept != 0 || m.MemoHits != 0 {
		t.Errorf("trie survived a symbolic-input change: %+v", m)
	}
	if m.NodesInvalidated == 0 {
		t.Errorf("input change invalidated nothing: %+v", m)
	}
}
