// Command dise runs Directed Incremental Symbolic Execution on two versions
// of a procedure and prints the affected locations, the affected path
// conditions, and (optionally) regression tests. Ctrl-C cancels the
// analysis cleanly through the Analyzer's context plumbing.
//
// Usage:
//
//	dise -base old.mini -mod new.mini -proc update [-tests] [-depth N] [-json]
//	     [-timeout D] [-solver interval|bitvec|smtlib|portfolio] [-smt-solver PATH]
//	     [-portfolio NAMES] [-strategy dfs|bfs|directed]
//	     [-explore-parallelism N] [-merge-bound N]
//
// -solver smtlib talks SMT-LIB2 to an external solver subprocess (z3, cvc5,
// ... — discovered on PATH or pinned with -smt-solver), degrading to the
// in-process interval fallback on any solver failure; -solver portfolio
// races several backends per check. See the README's "Solver resilience"
// section.
//
// -merge-bound enables bounded state merging (0 = off, -1 = unbounded,
// >= 2 = fuse at most N sibling states per join). Merged runs report
// verdict-equivalent but coarser path sets — see the README's "State
// merging" section. Not available in chain mode.
//
// -timeout bounds the whole run (pairwise or chain): on expiry the analysis
// stops at the next cancellation point and the command reports the Cancelled
// kind — as "dise: cancelled: ..." on stderr in text mode, as an
// {"error":{"code":"cancelled",...}} envelope on stdout with -json.
//
// Chain mode drives a version-chain session (memoized execution-tree reuse,
// see the "Version-chain sessions" section of the README) over an evolution
// sequence, printing per-step timing and memo statistics:
//
//	dise -chain v1.mini,v2.mini,v3.mini [-proc update] [-json]
//	dise -artifact asw|wbs|oae [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"dise"
	"dise/internal/artifacts"
)

// jsonResult is the machine-readable output of -json.
type jsonResult struct {
	Procedure                string          `json:"procedure"`
	ChangedNodes             int             `json:"changed_nodes"`
	AffectedConditionalLines []int           `json:"affected_conditional_lines"`
	AffectedWriteLines       []int           `json:"affected_write_lines"`
	Stats                    dise.Stats      `json:"stats"`
	Paths                    []dise.PathInfo `json:"paths"`
	Tests                    []dise.TestCase `json:"tests,omitempty"`
}

func main() {
	basePath := flag.String("base", "", "path to the base (original) version source")
	modPath := flag.String("mod", "", "path to the modified version source")
	proc := flag.String("proc", "", "procedure under analysis (default: the only procedure)")
	depth := flag.Int("depth", 0, "symbolic execution depth bound (0 = default)")
	tests := flag.Bool("tests", false, "also solve affected path conditions into test inputs")
	asJSON := flag.Bool("json", false, "emit the result as machine-readable JSON")
	solverName := flag.String("solver", "", fmt.Sprintf("constraint-solving backend %v (default %q)", dise.SolverBackends(), "interval"))
	smtSolver := flag.String("smt-solver", "", "path to an SMT-LIB2 solver binary for the smtlib backend (default: discover z3/cvc5/... on PATH; absent binary degrades to the in-process fallback)")
	portfolio := flag.String("portfolio", "", "comma-separated member backends for -solver portfolio (default interval,bitvec,smtlib)")
	strategy := flag.String("strategy", "", fmt.Sprintf("search strategy %v (default %q)", dise.SearchStrategies(), "dfs"))
	exploreParallelism := flag.Int("explore-parallelism", 0, "exploration workers per analysis (0 or 1 = sequential)")
	mergeBound := flag.Int("merge-bound", 0, "bounded state merging at CFG joins: 0 = off, -1 = unbounded, >= 2 = fuse at most N siblings per merge (incompatible with -chain/-artifact)")
	chain := flag.String("chain", "", "comma-separated version files: run a version-chain session over them in order")
	artifact := flag.String("artifact", "", "run the built-in evolution chain of an artifact (asw, wbs or oae)")
	timeout := flag.Duration("timeout", 0, "abort the analysis after this long, reporting the Cancelled kind (0 = no timeout)")
	flag.Parse()

	ctx0, stop0 := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop0()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx0, cancel = context.WithTimeout(ctx0, *timeout)
		defer cancel()
	}

	if *chain != "" || *artifact != "" {
		// Reject pairwise-only flags instead of silently ignoring them.
		if *basePath != "" || *modPath != "" {
			exitOn(fmt.Errorf("-base/-mod and -chain/-artifact are mutually exclusive"))
		}
		if *tests {
			exitOn(fmt.Errorf("-tests is not supported in chain mode"))
		}
		if *mergeBound != 0 {
			// Sessions would reject it anyway (InvalidConfig); fail with a
			// flag-level message instead of a session error.
			exitOn(fmt.Errorf("-merge-bound is not supported in chain mode: state merging is incompatible with memoized sessions"))
		}
		runChain(ctx0, chainConfig{
			chain:              *chain,
			artifact:           *artifact,
			proc:               *proc,
			depth:              *depth,
			asJSON:             *asJSON,
			solver:             *solverName,
			smtSolver:          *smtSolver,
			portfolio:          *portfolio,
			strategy:           *strategy,
			exploreParallelism: *exploreParallelism,
		})
		return
	}

	if *basePath == "" || *modPath == "" {
		fmt.Fprintln(os.Stderr, "usage: dise -base OLD -mod NEW [-proc NAME] [-tests] [-depth N] [-json] [-solver NAME] [-smt-solver PATH] [-portfolio NAMES] [-strategy NAME] [-explore-parallelism N]")
		fmt.Fprintln(os.Stderr, "       dise -chain V1,V2,... | -artifact asw|wbs|oae  [-proc NAME] [-json]")
		os.Exit(2)
	}
	baseSrc, err := os.ReadFile(*basePath)
	exitOn(err)
	modSrc, err := os.ReadFile(*modPath)
	exitOn(err)

	ctx := ctx0

	procName := *proc
	if procName == "" {
		procName = inferProc(string(modSrc))
	}

	a := dise.NewAnalyzer(
		dise.WithDepthBound(*depth),
		dise.WithSolverBackend(*solverName),
		dise.WithSMTSolver(*smtSolver),
		dise.WithPortfolioMembers(splitMembers(*portfolio)...),
		dise.WithSearchStrategy(*strategy),
		dise.WithExploreParallelism(*exploreParallelism),
		dise.WithStateMerging(*mergeBound),
	)
	res, err := a.Analyze(ctx, dise.Request{
		BaseSrc: string(baseSrc),
		ModSrc:  string(modSrc),
		Proc:    procName,
	})
	exitAnalysisOn(*asJSON, err)

	if *asJSON {
		var ts []dise.TestCase
		if *tests {
			ts, err = res.Tests()
			exitAnalysisOn(*asJSON, err)
		}
		out := jsonResult{
			Procedure:                procName,
			ChangedNodes:             res.ChangedNodes,
			AffectedConditionalLines: res.AffectedConditionalLines,
			AffectedWriteLines:       res.AffectedWriteLines,
			Stats:                    res.Stats,
			Paths:                    res.Paths,
			Tests:                    ts,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(out))
		return
	}

	fmt.Printf("procedure:            %s\n", procName)
	fmt.Printf("changed CFG nodes:    %d\n", res.ChangedNodes)
	fmt.Printf("affected conditionals (source lines): %v\n", res.AffectedConditionalLines)
	fmt.Printf("affected writes       (source lines): %v\n", res.AffectedWriteLines)
	fmt.Printf("search:               %s strategy, %d exploration worker(s)\n",
		res.Stats.SearchStrategy, res.Stats.ExploreParallelism)
	fmt.Printf("states explored:      %d\n", res.Stats.StatesExplored)
	fmt.Printf("solver calls:         %d\n", res.Stats.SolverCalls)
	ss := res.Stats.Solver
	fmt.Printf("solver [%s]:    %d checks (%d sat / %d unsat / %d unknown), %d frames pushed, %d cache hits, %d model reuses\n",
		ss.Backend, ss.Checks, ss.Sat, ss.Unsat, ss.Unknown, ss.PushedFrames, ss.CacheHits, ss.ModelReuses)
	if ms := res.Stats.Merge; ms.Enabled {
		fmt.Printf("state merging:        bound %d · %d merges · %d states saved · %d ite nodes\n",
			ms.Bound, ms.Merges, ms.MergedStatesSaved, ms.IteNodes)
	}
	fmt.Printf("time:                 %dms\n", res.Stats.TimeMilliseconds)
	fmt.Printf("affected path conditions: %d\n", len(res.Paths))
	for i, p := range res.Paths {
		marker := ""
		if p.AssertViolated {
			marker = "  [ASSERTION VIOLATION]"
		}
		fmt.Printf("  PC%-3d %s%s\n", i+1, p.PathCondition, marker)
	}
	if *tests {
		// Solved after the report so a test-generation failure never eats
		// the analysis output.
		ts, err := res.Tests()
		exitAnalysisOn(false, err)
		fmt.Printf("test inputs: %d\n", len(ts))
		for _, tc := range ts {
			fmt.Printf("  %s\n", tc.Call)
		}
	}
}

// chainConfig carries the flags of chain mode.
type chainConfig struct {
	chain              string
	artifact           string
	proc               string
	depth              int
	asJSON             bool
	solver             string
	smtSolver          string
	portfolio          string
	strategy           string
	exploreParallelism int
}

// splitMembers parses the comma-separated -portfolio flag value.
func splitMembers(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// chainStep is the machine-readable record of one Session.Advance.
type chainStep struct {
	Version string `json:"version"`
	// AdvanceMilliseconds is the wall time of the whole step: diff, trie
	// rekeying, directed search and result assembly. Stats.TimeMilliseconds
	// inside covers the search alone.
	AdvanceMilliseconds int64 `json:"advance_ms"`
	jsonResult
}

// chainOutput is the -json envelope of chain mode.
type chainOutput struct {
	Procedure string      `json:"procedure"`
	Versions  int         `json:"versions"`
	Steps     []chainStep `json:"steps"`
}

// runChain drives a version-chain session over the given version files (or a
// built-in artifact's evolution chain), printing per-step timing and memo
// statistics.
func runChain(ctx context.Context, cfg chainConfig) {
	var (
		names    []string
		sources  []string
		procName = cfg.proc
	)
	switch {
	case cfg.artifact != "" && cfg.chain != "":
		exitOn(fmt.Errorf("-chain and -artifact are mutually exclusive"))
	case cfg.artifact != "":
		art, ok := artifacts.ByName(strings.ToUpper(cfg.artifact))
		if !ok {
			exitOn(fmt.Errorf("unknown artifact %q (have asw, wbs, oae)", cfg.artifact))
		}
		names, sources = []string{"base"}, []string{art.Base}
		for _, v := range art.Versions {
			names = append(names, v.Name)
			sources = append(sources, art.SourceFor(v))
		}
		if procName == "" {
			procName = art.Proc
		}
	default:
		files := strings.Split(cfg.chain, ",")
		if len(files) < 2 {
			exitOn(fmt.Errorf("-chain needs at least two version files, got %d", len(files)))
		}
		for _, f := range files {
			f = strings.TrimSpace(f)
			src, err := os.ReadFile(f)
			exitOn(err)
			names = append(names, f)
			sources = append(sources, string(src))
		}
	}

	if procName == "" {
		procName = inferProc(sources[0])
	}

	a := dise.NewAnalyzer(
		dise.WithDepthBound(cfg.depth),
		dise.WithSolverBackend(cfg.solver),
		dise.WithSMTSolver(cfg.smtSolver),
		dise.WithPortfolioMembers(splitMembers(cfg.portfolio)...),
		dise.WithSearchStrategy(cfg.strategy),
		dise.WithExploreParallelism(cfg.exploreParallelism),
	)
	seedStart := time.Now()
	sess, err := a.NewSession(ctx, dise.SessionRequest{InitialSrc: sources[0], Proc: procName})
	exitAnalysisOn(cfg.asJSON, err)
	seedMs := time.Since(seedStart).Milliseconds()

	if !cfg.asJSON {
		fmt.Printf("procedure: %s · chain of %d versions (%d steps)\n", procName, len(sources), len(sources)-1)
		fmt.Printf("seeded session from %s in %dms (full exploration of the initial version)\n", names[0], seedMs)
	}

	out := chainOutput{Procedure: procName, Versions: len(sources)}
	for i := 1; i < len(sources); i++ {
		start := time.Now()
		res, err := sess.Advance(ctx, sources[i])
		exitAnalysisOn(cfg.asJSON, err)
		elapsed := time.Since(start).Milliseconds()
		m := res.Stats.Memo
		if cfg.asJSON {
			out.Steps = append(out.Steps, chainStep{
				Version:             names[i],
				AdvanceMilliseconds: elapsed,
				jsonResult: jsonResult{
					Procedure:                procName,
					ChangedNodes:             res.ChangedNodes,
					AffectedConditionalLines: res.AffectedConditionalLines,
					AffectedWriteLines:       res.AffectedWriteLines,
					Stats:                    res.Stats,
					Paths:                    res.Paths,
				},
			})
			continue
		}
		fmt.Printf("step %2d  %-8s %4dms  paths %4d  changed nodes %2d  solver checks %4d\n",
			m.Step, names[i], elapsed, len(res.Paths), res.ChangedNodes, res.Stats.Solver.Checks)
		fmt.Printf("         memo: %d hits · %d states replayed / %d live · trie %d nodes (%d kept, %d invalidated)\n",
			m.MemoHits, m.StatesReplayed, m.StatesExploredLive, m.TrieNodes, m.NodesKept, m.NodesInvalidated)
	}
	if cfg.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(out))
	}
}

// inferProc resolves the procedure under analysis when -proc is absent: the
// program must contain exactly one.
func inferProc(src string) string {
	prog, err := dise.ParseProgram(src)
	exitOn(err)
	procs := prog.Procedures()
	if len(procs) != 1 {
		exitOn(fmt.Errorf("-proc required: program has %d procedures %v", len(procs), procs))
	}
	return procs[0]
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dise:", err)
		os.Exit(1)
	}
}

// exitAnalysisOn reports an analysis failure by kind and exits. A classified
// *dise.Error (a -timeout expiry surfacing as Cancelled, a budget hitting
// BudgetExhausted, ...) keeps its machine-readable code: -json mode emits the
// same {"error":{code,message}} envelope the analysis service uses, on
// stdout, so scripted callers parse one shape for success and failure; text
// mode prints the error, whose message already leads with the kind.
func exitAnalysisOn(asJSON bool, err error) {
	if err == nil {
		return
	}
	code := "internal"
	if k := dise.KindOf(err); k != 0 {
		code = k.Code()
	}
	if asJSON {
		var out struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		out.Error.Code = code
		out.Error.Message = err.Error()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(out); encErr != nil {
			fmt.Fprintln(os.Stderr, "dise:", encErr)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "dise:", err)
	os.Exit(1)
}
