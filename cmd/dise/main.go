// Command dise runs Directed Incremental Symbolic Execution on two versions
// of a procedure and prints the affected locations, the affected path
// conditions, and (optionally) regression tests. Ctrl-C cancels the
// analysis cleanly through the Analyzer's context plumbing.
//
// Usage:
//
//	dise -base old.mini -mod new.mini -proc update [-tests] [-depth N] [-json]
//	     [-solver interval|bitvec] [-strategy dfs|bfs|directed] [-explore-parallelism N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dise"
)

// jsonResult is the machine-readable output of -json.
type jsonResult struct {
	Procedure                string          `json:"procedure"`
	ChangedNodes             int             `json:"changed_nodes"`
	AffectedConditionalLines []int           `json:"affected_conditional_lines"`
	AffectedWriteLines       []int           `json:"affected_write_lines"`
	Stats                    dise.Stats      `json:"stats"`
	Paths                    []dise.PathInfo `json:"paths"`
	Tests                    []dise.TestCase `json:"tests,omitempty"`
}

func main() {
	basePath := flag.String("base", "", "path to the base (original) version source")
	modPath := flag.String("mod", "", "path to the modified version source")
	proc := flag.String("proc", "", "procedure under analysis (default: the only procedure)")
	depth := flag.Int("depth", 0, "symbolic execution depth bound (0 = default)")
	tests := flag.Bool("tests", false, "also solve affected path conditions into test inputs")
	asJSON := flag.Bool("json", false, "emit the result as machine-readable JSON")
	solverName := flag.String("solver", "", fmt.Sprintf("constraint-solving backend %v (default %q)", dise.SolverBackends(), "interval"))
	strategy := flag.String("strategy", "", fmt.Sprintf("search strategy %v (default %q)", dise.SearchStrategies(), "dfs"))
	exploreParallelism := flag.Int("explore-parallelism", 0, "exploration workers per analysis (0 or 1 = sequential)")
	flag.Parse()

	if *basePath == "" || *modPath == "" {
		fmt.Fprintln(os.Stderr, "usage: dise -base OLD -mod NEW [-proc NAME] [-tests] [-depth N] [-json] [-solver NAME] [-strategy NAME] [-explore-parallelism N]")
		os.Exit(2)
	}
	baseSrc, err := os.ReadFile(*basePath)
	exitOn(err)
	modSrc, err := os.ReadFile(*modPath)
	exitOn(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	procName := *proc
	if procName == "" {
		prog, err := dise.ParseProgram(string(modSrc))
		exitOn(err)
		procs := prog.Procedures()
		if len(procs) != 1 {
			exitOn(fmt.Errorf("-proc required: program has %d procedures %v", len(procs), procs))
		}
		procName = procs[0]
	}

	a := dise.NewAnalyzer(
		dise.WithDepthBound(*depth),
		dise.WithSolverBackend(*solverName),
		dise.WithSearchStrategy(*strategy),
		dise.WithExploreParallelism(*exploreParallelism),
	)
	res, err := a.Analyze(ctx, dise.Request{
		BaseSrc: string(baseSrc),
		ModSrc:  string(modSrc),
		Proc:    procName,
	})
	exitOn(err)

	if *asJSON {
		var ts []dise.TestCase
		if *tests {
			ts, err = res.Tests()
			exitOn(err)
		}
		out := jsonResult{
			Procedure:                procName,
			ChangedNodes:             res.ChangedNodes,
			AffectedConditionalLines: res.AffectedConditionalLines,
			AffectedWriteLines:       res.AffectedWriteLines,
			Stats:                    res.Stats,
			Paths:                    res.Paths,
			Tests:                    ts,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(out))
		return
	}

	fmt.Printf("procedure:            %s\n", procName)
	fmt.Printf("changed CFG nodes:    %d\n", res.ChangedNodes)
	fmt.Printf("affected conditionals (source lines): %v\n", res.AffectedConditionalLines)
	fmt.Printf("affected writes       (source lines): %v\n", res.AffectedWriteLines)
	fmt.Printf("search:               %s strategy, %d exploration worker(s)\n",
		res.Stats.SearchStrategy, res.Stats.ExploreParallelism)
	fmt.Printf("states explored:      %d\n", res.Stats.StatesExplored)
	fmt.Printf("solver calls:         %d\n", res.Stats.SolverCalls)
	ss := res.Stats.Solver
	fmt.Printf("solver [%s]:    %d checks (%d sat / %d unsat / %d unknown), %d frames pushed, %d cache hits, %d model reuses\n",
		ss.Backend, ss.Checks, ss.Sat, ss.Unsat, ss.Unknown, ss.PushedFrames, ss.CacheHits, ss.ModelReuses)
	fmt.Printf("time:                 %dms\n", res.Stats.TimeMilliseconds)
	fmt.Printf("affected path conditions: %d\n", len(res.Paths))
	for i, p := range res.Paths {
		marker := ""
		if p.AssertViolated {
			marker = "  [ASSERTION VIOLATION]"
		}
		fmt.Printf("  PC%-3d %s%s\n", i+1, p.PathCondition, marker)
	}
	if *tests {
		// Solved after the report so a test-generation failure never eats
		// the analysis output.
		ts, err := res.Tests()
		exitOn(err)
		fmt.Printf("test inputs: %d\n", len(ts))
		for _, tc := range ts {
			fmt.Printf("  %s\n", tc.Call)
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dise:", err)
		os.Exit(1)
	}
}
