// Command dise runs Directed Incremental Symbolic Execution on two versions
// of a procedure and prints the affected locations, the affected path
// conditions, and (optionally) regression tests.
//
// Usage:
//
//	dise -base old.mini -mod new.mini -proc update [-tests] [-depth N]
package main

import (
	"flag"
	"fmt"
	"os"

	"dise"
)

func main() {
	basePath := flag.String("base", "", "path to the base (original) version source")
	modPath := flag.String("mod", "", "path to the modified version source")
	proc := flag.String("proc", "", "procedure under analysis (default: the only procedure)")
	depth := flag.Int("depth", 0, "symbolic execution depth bound (0 = default)")
	tests := flag.Bool("tests", false, "also solve affected path conditions into test inputs")
	flag.Parse()

	if *basePath == "" || *modPath == "" {
		fmt.Fprintln(os.Stderr, "usage: dise -base OLD -mod NEW [-proc NAME] [-tests] [-depth N]")
		os.Exit(2)
	}
	baseSrc, err := os.ReadFile(*basePath)
	exitOn(err)
	modSrc, err := os.ReadFile(*modPath)
	exitOn(err)

	procName := *proc
	if procName == "" {
		prog, err := dise.ParseProgram(string(modSrc))
		exitOn(err)
		procs := prog.Procedures()
		if len(procs) != 1 {
			exitOn(fmt.Errorf("-proc required: program has %d procedures %v", len(procs), procs))
		}
		procName = procs[0]
	}

	res, err := dise.Analyze(string(baseSrc), string(modSrc), procName, dise.Options{DepthBound: *depth})
	exitOn(err)

	fmt.Printf("procedure:            %s\n", procName)
	fmt.Printf("changed CFG nodes:    %d\n", res.ChangedNodes)
	fmt.Printf("affected conditionals (source lines): %v\n", res.AffectedConditionalLines)
	fmt.Printf("affected writes       (source lines): %v\n", res.AffectedWriteLines)
	fmt.Printf("states explored:      %d\n", res.Stats.StatesExplored)
	fmt.Printf("solver calls:         %d\n", res.Stats.SolverCalls)
	fmt.Printf("time:                 %dms\n", res.Stats.TimeMilliseconds)
	fmt.Printf("affected path conditions: %d\n", len(res.Paths))
	for i, p := range res.Paths {
		marker := ""
		if p.AssertViolated {
			marker = "  [ASSERTION VIOLATION]"
		}
		fmt.Printf("  PC%-3d %s%s\n", i+1, p.PathCondition, marker)
	}

	if *tests {
		ts, err := res.Tests()
		exitOn(err)
		fmt.Printf("test inputs: %d\n", len(ts))
		for _, tc := range ts {
			fmt.Printf("  %s\n", tc.Call)
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dise:", err)
		os.Exit(1)
	}
}
