// Command symexec runs full (traditional) symbolic execution of a procedure
// and prints its path conditions — the control technique of the paper's
// evaluation — or, with -tree, the symbolic execution tree of Fig. 1.
// Ctrl-C cancels the exploration mid-search.
//
// Usage:
//
//	symexec -src prog.mini [-proc update] [-tree] [-tests] [-depth N]
//	        [-strategy dfs|bfs|directed] [-explore-parallelism N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dise"
)

func main() {
	srcPath := flag.String("src", "", "path to the program source")
	proc := flag.String("proc", "", "procedure to execute (default: the only procedure)")
	depth := flag.Int("depth", 0, "depth bound (0 = default)")
	tree := flag.Bool("tree", false, "print the symbolic execution tree instead of the summary")
	tests := flag.Bool("tests", false, "also solve path conditions into test inputs")
	strategy := flag.String("strategy", "", fmt.Sprintf("search strategy %v (default %q)", dise.SearchStrategies(), "dfs"))
	exploreParallelism := flag.Int("explore-parallelism", 0, "exploration workers (0 or 1 = sequential)")
	flag.Parse()

	if *srcPath == "" {
		fmt.Fprintln(os.Stderr, "usage: symexec -src FILE [-proc NAME] [-tree] [-tests] [-depth N] [-strategy NAME] [-explore-parallelism N]")
		os.Exit(2)
	}
	src, err := os.ReadFile(*srcPath)
	exitOn(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	procName := *proc
	if procName == "" {
		prog, err := dise.ParseProgram(string(src))
		exitOn(err)
		procs := prog.Procedures()
		if len(procs) != 1 {
			exitOn(fmt.Errorf("-proc required: program has %d procedures %v", len(procs), procs))
		}
		procName = procs[0]
	}
	a := dise.NewAnalyzer(
		dise.WithDepthBound(*depth),
		dise.WithSearchStrategy(*strategy),
		dise.WithExploreParallelism(*exploreParallelism),
	)

	if *tree {
		rendered, err := a.ExecutionTree(ctx, string(src), procName)
		exitOn(err)
		fmt.Print(rendered)
		return
	}

	sum, err := a.Execute(ctx, string(src), procName)
	exitOn(err)
	fmt.Printf("procedure:       %s\n", procName)
	fmt.Printf("search:          %s strategy, %d exploration worker(s)\n",
		sum.Stats.SearchStrategy, sum.Stats.ExploreParallelism)
	fmt.Printf("states explored: %d\n", sum.Stats.StatesExplored)
	fmt.Printf("solver calls:    %d\n", sum.Stats.SolverCalls)
	fmt.Printf("time:            %dms\n", sum.Stats.TimeMilliseconds)
	fmt.Printf("path conditions: %d\n", len(sum.Paths))
	for i, p := range sum.Paths {
		marker := ""
		if p.AssertViolated {
			marker = "  [ASSERTION VIOLATION]"
		}
		fmt.Printf("  PC%-3d %s%s\n", i+1, p.PathCondition, marker)
	}
	if *tests {
		ts := sum.Tests()
		fmt.Printf("test inputs: %d\n", len(ts))
		for _, tc := range ts {
			fmt.Printf("  %s\n", tc.Call)
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "symexec:", err)
		os.Exit(1)
	}
}
