// Command dised is the long-lived multi-tenant analysis service: an
// HTTP/JSON daemon over internal/service that holds many concurrent
// version-chain sessions, with a tenant-keyed TTL+LRU session store,
// admission control with per-request deadlines, and /metrics observability.
// See the "Analysis service" section of the README for the API.
//
// Usage:
//
//	dised [-addr HOST:PORT] [-port-file PATH]
//	      [-max-sessions N] [-sessions-per-tenant N] [-session-ttl D]
//	      [-max-inflight N] [-max-queue N] [-deadline D] [-max-deadline D]
//	      [-solver NAME] [-smt-solver PATH] [-portfolio NAMES]
//	      [-strategy NAME] [-depth N] [-max-states N]
//	      [-explore-parallelism N]
//	      [-max-trie-nodes N] [-max-trie-bytes N] [-intern-gc-epochs N]
//	      [-cache-bytes N] [-merge-bound N] [-drain-timeout D]
//
// SIGINT/SIGTERM shut the server down gracefully: the daemon stops
// accepting (new requests are rejected with 503 shutting_down), in-flight
// analyses get -drain-timeout to finish, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dise"
	"dise/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	portFile := flag.String("port-file", "", "write the bound address to this file once listening (for scripts driving a random port)")
	maxSessions := flag.Int("max-sessions", 0, "session store capacity; beyond it the least-recently-used session is evicted (0 = default 1024)")
	perTenant := flag.Int("sessions-per-tenant", 0, "per-tenant session cap (0 = default 64)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle time after which a session expires (0 = default 30m)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrently running analyses (0 = default 4)")
	maxQueue := flag.Int("max-queue", 0, "admitted requests that may wait for a slot (0 = default 64)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = default 30s)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on client-requested deadlines (0 = default 2m)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "time in-flight requests get to finish after SIGTERM/SIGINT before the server gives up on them")
	depth := flag.Int("depth", 0, "symbolic execution depth bound (0 = default)")
	maxStates := flag.Int("max-states", 0, "states explored per request before BudgetExhausted (0 = no cap)")
	solverName := flag.String("solver", "", fmt.Sprintf("constraint-solving backend %v (default %q)", dise.SolverBackends(), "interval"))
	smtSolver := flag.String("smt-solver", "", "path to an SMT-LIB2 solver binary for the smtlib backend (default: discover on PATH; absent binary degrades to the in-process fallback)")
	portfolio := flag.String("portfolio", "", "comma-separated member backends for -solver portfolio (default interval,bitvec,smtlib)")
	strategy := flag.String("strategy", "", fmt.Sprintf("search strategy %v (default %q)", dise.SearchStrategies(), "dfs"))
	exploreParallelism := flag.Int("explore-parallelism", 0, "exploration workers per analysis (0 or 1 = sequential)")
	maxTrieNodes := flag.Int("max-trie-nodes", 0, "per-session memo-trie node budget; cold subtrees are evicted after each step (0 = unbounded)")
	maxTrieBytes := flag.Int64("max-trie-bytes", 0, "global ceiling on all resident sessions' memo-trie bytes; LRU sessions are evicted under pressure (0 = unbounded)")
	internGCEpochs := flag.Int("intern-gc-epochs", 0, "collect intern-table entries untouched for this many completed runs (0 = collection off)")
	cacheBytes := flag.Int64("cache-bytes", 0, "approximate byte budget shared by the parse/CFG and solved-prefix caches (0 = entry-count bounds only)")
	mergeBound := flag.Int("merge-bound", 0, "default bounded state merging for one-shot /v1/analyze requests without a merge_bound (0 = off, -1 = unbounded, >= 2 = bounded); sessions never merge")
	flag.Parse()

	if *mergeBound == 1 || *mergeBound < -1 {
		fmt.Fprintf(os.Stderr, "dised: %v: -merge-bound %d out of range (0 = off, -1 = unbounded, >= 2 = bounded)\n",
			dise.ErrInvalidConfig, *mergeBound)
		os.Exit(2)
	}

	// The memory bounds are validated up front: a negative bound is the same
	// class of unusable configuration as an unknown solver backend, so it
	// fails startup with the facade's InvalidConfig kind instead of
	// surfacing on the first request.
	for _, b := range []struct {
		name  string
		value int64
	}{
		{"-max-trie-nodes", int64(*maxTrieNodes)},
		{"-max-trie-bytes", *maxTrieBytes},
		{"-intern-gc-epochs", int64(*internGCEpochs)},
		{"-cache-bytes", *cacheBytes},
	} {
		if b.value < 0 {
			fmt.Fprintf(os.Stderr, "dised: %v: %s must be >= 0 (0 disables the bound), got %d\n",
				dise.ErrInvalidConfig, b.name, b.value)
			os.Exit(2)
		}
	}

	svc := service.New(service.Config{
		MaxSessions:          *maxSessions,
		MaxSessionsPerTenant: *perTenant,
		SessionTTL:           *sessionTTL,
		MaxInFlight:          *maxInFlight,
		MaxQueue:             *maxQueue,
		DefaultDeadline:      *deadline,
		MaxDeadline:          *maxDeadline,
		MaxTrieNodes:         *maxTrieNodes,
		MaxTrieBytes:         *maxTrieBytes,
		InternGCEpochs:       *internGCEpochs,
		CacheBytes:           *cacheBytes,
		DefaultMergeBound:    *mergeBound,
		AnalyzerOptions: []dise.Option{
			dise.WithDepthBound(*depth),
			dise.WithMaxStates(*maxStates),
			dise.WithSolverBackend(*solverName),
			dise.WithSMTSolver(*smtSolver),
			dise.WithPortfolioMembers(splitMembers(*portfolio)...),
			dise.WithSearchStrategy(*strategy),
			dise.WithExploreParallelism(*exploreParallelism),
		},
	})
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dised:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dised:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "dised: listening on %s\n", bound)

	srv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "dised:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful drain: reject new work at the service layer first (503
		// shutting_down, so clients on kept-alive connections get a clean
		// answer), then stop the listener and wait out the in-flight
		// requests. A drain that outlives the timeout is reported but is
		// still a clean exit — the remaining requests lose their connection,
		// which at that point is the contract.
		fmt.Fprintln(os.Stderr, "dised: shutting down (draining in-flight requests)")
		svc.BeginShutdown()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.Drain(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "dised: drain timeout expired with requests still running")
		}
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "dised: forced shutdown:", err)
		}
		fmt.Fprintln(os.Stderr, "dised: drained, exiting")
	}
}

// splitMembers parses the comma-separated -portfolio flag value.
func splitMembers(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}
