package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dise/internal/artifacts"
	"dise/internal/service"
)

// buildDised compiles the daemon once per test binary run.
func buildDised(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "dised")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDised boots the daemon on a random port and waits for the port file.
func startDised(t *testing.T, bin string, extraArgs ...string) (*exec.Cmd, *bytes.Buffer, string) {
	t.Helper()
	portFile := filepath.Join(t.TempDir(), "port")
	args := append([]string{"-addr", "127.0.0.1:0", "-port-file", portFile}, extraArgs...)
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting dised: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if addr, err := os.ReadFile(portFile); err == nil && len(addr) > 0 {
			return cmd, &stderr, strings.TrimSpace(string(addr))
		}
		if time.Now().After(deadline) {
			t.Fatalf("dised never wrote its port file; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var ep service.ErrorPayload
		json.NewDecoder(resp.Body).Decode(&ep)
		return resp.StatusCode, ep.Error.Code
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding reply: %v", url, err)
		}
	}
	return resp.StatusCode, ""
}

// TestGracefulShutdownSIGTERM boots the real daemon, parks an advance
// request mid-flight (the body is only half sent, so the handler is inside
// the drain gate blocked on the read), delivers SIGTERM, and asserts the
// full drain contract: new requests get 503 shutting_down, the in-flight
// advance completes with 200 once its body arrives, and the process exits 0.
func TestGracefulShutdownSIGTERM(t *testing.T) {
	bin := buildDised(t)
	cmd, stderr, addr := startDised(t, bin, "-drain-timeout", "30s")
	base := "http://" + addr

	art, ok := artifacts.ByName("WBS")
	if !ok {
		t.Fatal("WBS artifact missing")
	}
	var created service.CreateSessionResponse
	if status, code := postJSON(t, base+"/v1/sessions",
		service.CreateSessionRequest{Tenant: "t1", InitialSrc: art.Base, Proc: art.Proc}, &created); status != http.StatusCreated {
		t.Fatalf("create session: status %d code %q", status, code)
	}

	// Hand-rolled advance request, sent in two halves: once the headers are
	// in, the handler has entered the drain gate and is parked reading the
	// body — a request that is in flight by construction when the signal
	// lands.
	body, err := json.Marshal(service.AdvanceRequest{Tenant: "t1", NextSrc: art.SourceFor(art.Versions[0])})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := fmt.Sprintf("POST /v1/sessions/%s/advance HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
		created.SessionID, addr, len(body))
	half := len(body) / 2
	if _, err := conn.Write(append([]byte(req), body[:half]...)); err != nil {
		t.Fatal(err)
	}
	// Give the server a beat to parse the headers and enter the handler.
	time.Sleep(200 * time.Millisecond)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The drain gate is now closed to new work: the daemon cannot exit while
	// our request is open, and fresh requests are refused with 503.
	rejected := false
	for i := 0; i < 50 && !rejected; i++ {
		status, code := postJSON(t, base+"/v1/sessions",
			service.CreateSessionRequest{Tenant: "t2", InitialSrc: art.Base, Proc: art.Proc}, nil)
		if status == http.StatusServiceUnavailable && code == "shutting_down" {
			rejected = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !rejected {
		t.Fatalf("new requests were never rejected with 503 shutting_down; stderr:\n%s", stderr.String())
	}

	// Completing the body lets the in-flight advance finish normally.
	if _, err := conn.Write(body[half:]); err != nil {
		t.Fatalf("sending body remainder: %v", err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("reading in-flight response: %v", err)
	}
	var res service.ResultPayload
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding in-flight response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(res.Paths) == 0 {
		t.Fatalf("in-flight advance: status %d, %d paths — drain killed a running request", resp.StatusCode, len(res.Paths))
	}

	// With the last request gone the daemon drains out and exits 0.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("dised exited non-zero: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("dised never exited after the drain; stderr:\n%s", stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "drained, exiting") {
		t.Fatalf("shutdown log missing the drain marker:\n%s", out)
	}
}

// TestSolverKillMidRequest boots the daemon against a solver binary that
// dies on every check-sat and asserts requests still succeed: the smtlib
// backend's supervision contains the crashes and the embedded fallback
// answers, so the client never sees the dead solver.
func TestSolverKillMidRequest(t *testing.T) {
	shPath, err := exec.LookPath("sh")
	if err != nil {
		t.Skip("no sh on PATH")
	}
	crasher := filepath.Join(t.TempDir(), "crash-solver.sh")
	script := "#!" + shPath + "\nwhile read line; do\n  case \"$line\" in\n  *check-sat*) exit 137 ;;\n  esac\ndone\n"
	if err := os.WriteFile(crasher, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}

	bin := buildDised(t)
	cmd, stderr, addr := startDised(t, bin, "-solver", "smtlib", "-smt-solver", crasher)
	base := "http://" + addr

	art, _ := artifacts.ByName("WBS")
	var created service.CreateSessionResponse
	if status, code := postJSON(t, base+"/v1/sessions",
		service.CreateSessionRequest{Tenant: "t1", InitialSrc: art.Base, Proc: art.Proc}, &created); status != http.StatusCreated {
		t.Fatalf("create session with crashing solver: status %d code %q; stderr:\n%s", status, code, stderr.String())
	}
	var res service.ResultPayload
	if status, code := postJSON(t, base+"/v1/sessions/"+created.SessionID+"/advance",
		service.AdvanceRequest{Tenant: "t1", NextSrc: art.SourceFor(art.Versions[0])}, &res); status != http.StatusOK {
		t.Fatalf("advance with crashing solver: status %d code %q", status, code)
	}
	if len(res.Paths) == 0 {
		t.Fatal("advance under solver crashes found no paths")
	}
	// The degradation is visible in the stats, not the verdicts.
	if res.Stats.Solver.ExtUnknowns == 0 && res.Stats.Solver.ExtRestarts == 0 {
		t.Fatalf("crashing solver left no degradation trace: %+v", res.Stats.Solver)
	}

	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("dised exited non-zero after solver crashes: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("dised never exited")
	}
}
