// Command evaltables regenerates the evaluation tables of the DiSE paper
// (Tables 2(a)–(c) and 3(a)–(c)) on the re-created artifacts.
//
// Usage:
//
//	evaltables                 # all artifacts
//	evaltables -artifact WBS   # one artifact
package main

import (
	"flag"
	"fmt"
	"os"

	"dise"
)

func main() {
	artifact := flag.String("artifact", "", "artifact to evaluate: ASW, WBS or OAE (default: all)")
	depth := flag.Int("depth", 0, "depth bound (0 = default)")
	flag.Parse()

	names := dise.EvaluationArtifacts()
	if *artifact != "" {
		names = []string{*artifact}
	}
	opts := dise.Options{DepthBound: *depth}
	for _, name := range names {
		t2, t3, err := dise.EvaluationTables(name, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaltables:", err)
			os.Exit(1)
		}
		fmt.Println(t2)
		fmt.Println(t3)
	}
}
