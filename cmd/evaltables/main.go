// Command evaltables regenerates the evaluation tables of the DiSE paper
// (Tables 2(a)–(c) and 3(a)–(c)) on the re-created artifacts. Ctrl-C
// cancels the (long) symbolic execution runs mid-exploration.
//
// Usage:
//
//	evaltables                 # all artifacts
//	evaltables -artifact WBS   # one artifact
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dise"
)

func main() {
	artifact := flag.String("artifact", "", "artifact to evaluate: ASW, WBS or OAE (default: all)")
	depth := flag.Int("depth", 0, "depth bound (0 = default)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	names := dise.EvaluationArtifacts()
	if *artifact != "" {
		names = []string{*artifact}
	}
	a := dise.NewAnalyzer(dise.WithDepthBound(*depth))
	for _, name := range names {
		t2, t3, err := a.EvaluationTables(ctx, name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaltables:", err)
			os.Exit(1)
		}
		fmt.Println(t2)
		fmt.Println(t3)
	}
}
