package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dise/internal/service"
)

// TestPostRetryQueueFull pins the client-side overload contract: 429
// queue_full is retried with backoff until the server admits the request,
// each repeat is counted, and the final success is reported cleanly.
func TestPostRetryQueueFull(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"queue_full","message":"queue full"}}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	rec := newRecorder()
	client := &http.Client{Timeout: 5 * time.Second}
	if err := postRetryJSON(client, srv.URL, struct{}{}, nil, 3, rec); err != nil {
		t.Fatalf("retrying post failed: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two rejections + success)", n)
	}
	if rec.retries != 2 {
		t.Fatalf("recorder counted %d retries, want 2", rec.retries)
	}
}

// TestPostRetryBudgetExhausted pins that the retry budget is bounded: a
// server that never admits the request yields the queue_full error after
// exactly retries+1 attempts.
func TestPostRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"queue_full","message":"queue full"}}`))
	}))
	defer srv.Close()

	rec := newRecorder()
	client := &http.Client{Timeout: 5 * time.Second}
	err := postRetryJSON(client, srv.URL, struct{}{}, nil, 2, rec)
	if err == nil || err.Error() != "queue_full" {
		t.Fatalf("want queue_full after exhausted budget, got %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (initial + 2 retries)", n)
	}
	if rec.retries != 2 {
		t.Fatalf("recorder counted %d retries, want 2", rec.retries)
	}
}

// TestPostRetryNonRetryableError pins that only the overload code retries:
// any other wire error fails fast on the first attempt.
func TestPostRetryNonRetryableError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":{"code":"session_not_found","message":"gone"}}`))
	}))
	defer srv.Close()

	rec := newRecorder()
	client := &http.Client{Timeout: 5 * time.Second}
	err := postRetryJSON(client, srv.URL, service.AdvanceRequest{Tenant: "t"}, nil, 5, rec)
	if err == nil || err.Error() != "session_not_found" {
		t.Fatalf("want session_not_found, got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d attempts, want 1 (no retry on non-overload errors)", n)
	}
	if rec.retries != 0 {
		t.Fatalf("recorder counted %d retries, want 0", rec.retries)
	}
}
