// Command disedload drives a running dised daemon (cmd/dised) with
// synthetic version-chain traffic and reports client-side latency
// percentiles, throughput, error-kind counts, and the server's final
// /metrics snapshot — the harness behind BENCH_service.json.
//
// Chains come from two sources, mixed by -mix: the three built-in artifact
// evolution chains (ASW 15 steps, WBS 16, OAE 9 — the paper's workload)
// and random programs evolved by internal/randprog mutation (the
// many-small-tenants workload).
//
// Usage:
//
//	disedload -addr HOST:PORT [-chains N] [-workers N] [-tenants N]
//	          [-mix artifacts|rand|both] [-steps N] [-seed N]
//	          [-deadline-ms N] [-retries N] [-delete] [-merge-bound N]
//	          [-out FILE]
//	disedload -addr HOST:PORT -smoke
//
// Overloaded-server rejections (429 queue_full) are retried with jittered
// exponential backoff up to -retries extra attempts per request; the report
// counts the retries so an overload-heavy run is visible.
//
// -merge-bound switches the drive from session chains to one-shot
// /v1/analyze requests carrying merge_bound (state merging) over each
// adjacent version pair — sessions reject the merging mode.
//
// -smoke runs the CI smoke sequence instead of a load: create one session,
// advance it twice, and assert over /healthz and /metrics that the store
// holds the session and that memoized execution-tree reuse produced memo
// hits across the service boundary.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"dise/internal/artifacts"
	"dise/internal/lang/ast"
	"dise/internal/randprog"
	"dise/internal/service"
)

func main() {
	addr := flag.String("addr", "", "dised address (host:port) — required")
	smoke := flag.Bool("smoke", false, "run the CI smoke sequence and exit")
	chains := flag.Int("chains", 16, "total version chains to drive")
	workers := flag.Int("workers", 4, "concurrent client workers")
	tenants := flag.Int("tenants", 8, "distinct tenants to spread chains over")
	mix := flag.String("mix", "both", "chain sources: artifacts, rand, or both")
	steps := flag.Int("steps", 6, "steps per random chain")
	seed := flag.Int64("seed", 1, "random-chain generator seed")
	deadlineMillis := flag.Int64("deadline-ms", 0, "per-request deadline_ms to send (0 = server default)")
	retries := flag.Int("retries", 3, "extra attempts per request on 429 queue_full, with jittered exponential backoff (0 = fail fast)")
	mergeBound := flag.Int("merge-bound", 0, "drive one-shot /v1/analyze requests with this merge_bound instead of sessions (0 = session mode, -1 = unbounded, >= 2 = bounded)")
	doDelete := flag.Bool("delete", false, "delete each session after its chain (default: leave resident, for sessions-per-GB measurement)")
	out := flag.String("out", "", "also write the JSON report to this file")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "disedload: -addr is required")
		os.Exit(2)
	}
	base := "http://" + strings.TrimPrefix(*addr, "http://")
	client := &http.Client{Timeout: 5 * time.Minute}

	if *smoke {
		if err := runSmoke(client, base); err != nil {
			fmt.Fprintln(os.Stderr, "disedload: smoke FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("disedload: smoke OK")
		return
	}
	report, err := runLoad(client, base, loadConfig{
		chains:         *chains,
		workers:        *workers,
		tenants:        *tenants,
		mix:            *mix,
		steps:          *steps,
		seed:           *seed,
		deadlineMillis: *deadlineMillis,
		retries:        *retries,
		doDelete:       *doDelete,
		mergeBound:     *mergeBound,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "disedload:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "disedload:", err)
		os.Exit(1)
	}
	fmt.Println(string(buf))
	// One-line memory summary on stderr, so the per-subsystem attribution is
	// visible without digging through the JSON report.
	mb := report.ServerMetrics.MemoryBreakdown
	fmt.Fprintf(os.Stderr,
		"disedload: memory: intern %d entries (~%s, epoch %d, collected %d), tries %d nodes (~%s), prefix-cache ~%s, parse-cache ~%s, heap_inuse %s, sessions/GB %.0f\n",
		mb.InternEntries, fmtBytes(mb.InternBytes), mb.InternEpoch, mb.InternCollected,
		mb.TrieNodes, fmtBytes(mb.TrieBytes),
		fmtBytes(mb.PrefixCacheBytes), fmtBytes(mb.ParseCacheBytes),
		fmtBytes(int64(report.ServerMetrics.Memory.HeapInuseBytes)),
		report.ServerMetrics.Memory.SessionsPerGB)
	if *out != "" {
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "disedload:", err)
			os.Exit(1)
		}
	}
}

// fmtBytes renders an approximate byte count human-readably (KiB/MiB).
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// postJSON sends one request and decodes a success reply into ok; on an
// error status it returns the wire error code as a non-nil error.
func postJSON(client *http.Client, url string, body, ok any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var ep service.ErrorPayload
		if err := json.NewDecoder(resp.Body).Decode(&ep); err != nil {
			return fmt.Errorf("status %d (undecodable error body)", resp.StatusCode)
		}
		return fmt.Errorf("%s", ep.Error.Code)
	}
	if ok != nil {
		return json.NewDecoder(resp.Body).Decode(ok)
	}
	return nil
}

// postRetryJSON is postJSON plus the client-side answer to transient
// overload: a 429 queue_full rejection is retried after a jittered
// exponential backoff, at most retries extra attempts. Every other error —
// and queue_full once the budget is spent — is the caller's problem. Each
// repeat is counted in rec so the report shows how hard the run leaned on
// the retry path.
func postRetryJSON(client *http.Client, url string, body, ok any, retries int, rec *recorder) error {
	backoff := 25 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := postJSON(client, url, body, ok)
		if err == nil || err.Error() != "queue_full" || attempt >= retries {
			return err
		}
		rec.addRetry()
		// Sleep in [backoff/2, backoff] — the jitter decorrelates workers
		// that were rejected by the same full queue — then double, capped.
		time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1)))
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

func getJSON(client *http.Client, url string, ok any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(ok)
}

// runSmoke is the CI smoke sequence (see the service smoke step of ci.yml).
func runSmoke(client *http.Client, base string) error {
	var health service.HealthResponse
	if err := getJSON(client, base+"/healthz", &health); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if health.Status != "ok" {
		return fmt.Errorf("healthz status %q", health.Status)
	}

	art, _ := artifacts.ByName("WBS")
	srcs := []string{art.Base}
	for _, v := range art.Versions {
		srcs = append(srcs, art.SourceFor(v))
	}
	var created service.CreateSessionResponse
	if err := postJSON(client, base+"/v1/sessions",
		service.CreateSessionRequest{Tenant: "smoke", InitialSrc: srcs[0], Proc: art.Proc}, &created); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	// Two advances: the first WBS mutant taints every path and may replay
	// nothing, so memoized reuse is asserted from the second step.
	var res service.ResultPayload
	for i := 1; i <= 2; i++ {
		if err := postJSON(client, base+"/v1/sessions/"+created.SessionID+"/advance",
			service.AdvanceRequest{Tenant: "smoke", NextSrc: srcs[i]}, &res); err != nil {
			return fmt.Errorf("advance %d: %w", i, err)
		}
	}
	if m := res.Stats.Memo; !m.Enabled || m.MemoHits == 0 {
		return fmt.Errorf("no memo hits after two advances: %+v", res.Stats.Memo)
	}

	var metrics service.Metrics
	if err := getJSON(client, base+"/metrics", &metrics); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if metrics.Sessions.Occupancy < 1 {
		return fmt.Errorf("metrics report no stored sessions: %+v", metrics.Sessions)
	}
	if metrics.MemoStats.MemoHits == 0 {
		return fmt.Errorf("cumulative memo_stats show no hits: %+v", metrics.MemoStats)
	}
	if metrics.SolverStats.Checks == 0 {
		return fmt.Errorf("cumulative solver_stats show no checks: %+v", metrics.SolverStats)
	}
	if metrics.Latency.Advance.Count != 2 {
		return fmt.Errorf("advance latency histogram count = %d, want 2", metrics.Latency.Advance.Count)
	}
	// The memory breakdown must attribute the resident session's trie and
	// the hash-consed expressions backing it.
	if mb := metrics.MemoryBreakdown; mb.TrieNodes == 0 || mb.InternEntries == 0 {
		return fmt.Errorf("memory_breakdown not populated: %+v", mb)
	}
	return nil
}

// chainSpec is one version chain to drive: a seeded session advanced
// through versions[1:].
type chainSpec struct {
	name     string
	proc     string
	versions []string
}

// loadConfig carries the load-mode flags.
type loadConfig struct {
	chains, workers, tenants, steps int
	mix                             string
	seed                            int64
	deadlineMillis                  int64
	// retries bounds how many extra attempts a 429 queue_full rejection
	// earns, each preceded by a jittered exponential backoff.
	retries  int
	doDelete bool
	// mergeBound != 0 switches the drive from session chains to one-shot
	// /v1/analyze requests with merge_bound set on every pair of adjacent
	// versions — the service path that exercises state merging under load
	// (sessions reject the mode).
	mergeBound int
}

// buildChains materializes the chain workload: artifact chains round-robin,
// random chains from seeded mutation, per -mix.
func buildChains(cfg loadConfig) ([]chainSpec, error) {
	var arts []chainSpec
	for _, art := range artifacts.All() {
		spec := chainSpec{name: art.Name, proc: art.Proc, versions: []string{art.Base}}
		for _, v := range art.Versions {
			spec.versions = append(spec.versions, art.SourceFor(v))
		}
		arts = append(arts, spec)
	}
	randChain := func(i int) chainSpec {
		g := randprog.New(cfg.seed+int64(i), randprog.Config{})
		prog := g.Program()
		spec := chainSpec{name: fmt.Sprintf("rand-%d", i), proc: "p", versions: []string{ast.Pretty(prog)}}
		for s := 0; s < cfg.steps; s++ {
			mutated, _ := g.Mutate(prog, 1+s%2)
			spec.versions = append(spec.versions, ast.Pretty(mutated))
			prog = mutated
		}
		return spec
	}
	out := make([]chainSpec, 0, cfg.chains)
	for i := 0; i < cfg.chains; i++ {
		switch cfg.mix {
		case "artifacts":
			out = append(out, arts[i%len(arts)])
		case "rand":
			out = append(out, randChain(i))
		case "both":
			if i%2 == 0 {
				out = append(out, arts[(i/2)%len(arts)])
			} else {
				out = append(out, randChain(i))
			}
		default:
			return nil, fmt.Errorf("unknown -mix %q (want artifacts, rand or both)", cfg.mix)
		}
	}
	return out, nil
}

// recorder collects client-side latencies, error codes and retry counts.
type recorder struct {
	mu        sync.Mutex
	latencies map[string][]float64 // endpoint -> ms samples (successes)
	errors    map[string]int64     // wire error code -> count
	requests  int64
	retries   int64 // attempts repeated after a 429 queue_full rejection
}

func (r *recorder) addRetry() {
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
}

func newRecorder() *recorder {
	return &recorder{latencies: make(map[string][]float64), errors: make(map[string]int64)}
}

func (r *recorder) observe(endpoint string, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests++
	if err != nil {
		r.errors[err.Error()]++
		return
	}
	r.latencies[endpoint] = append(r.latencies[endpoint], float64(d)/float64(time.Millisecond))
}

// LatencyReport is the client-side latency summary of one endpoint.
type LatencyReport struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
	Mean  float64 `json:"mean_ms"`
}

func summarize(samples []float64) LatencyReport {
	if len(samples) == 0 {
		return LatencyReport{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	var sum float64
	for _, s := range sorted {
		sum += s
	}
	return LatencyReport{
		Count: len(sorted),
		P50:   q(0.50),
		P90:   q(0.90),
		P99:   q(0.99),
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
	}
}

// Report is the JSON output of a load run.
type Report struct {
	Config struct {
		Chains         int    `json:"chains"`
		Workers        int    `json:"workers"`
		Tenants        int    `json:"tenants"`
		Mix            string `json:"mix"`
		DeadlineMillis int64  `json:"deadline_ms"`
		MergeBound     int    `json:"merge_bound,omitempty"`
	} `json:"config"`
	WallMillis    int64                    `json:"wall_ms"`
	Requests      int64                    `json:"requests"`
	Retries       int64                    `json:"retries"`
	ThroughputRPS float64                  `json:"throughput_rps"`
	Latency       map[string]LatencyReport `json:"latency_ms"`
	Errors        map[string]int64         `json:"errors"`
	ServerMetrics service.Metrics          `json:"server_metrics"`
}

func runLoad(client *http.Client, base string, cfg loadConfig) (*Report, error) {
	specs, err := buildChains(cfg)
	if err != nil {
		return nil, err
	}
	rec := newRecorder()
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				driveChain(client, base, specs[i], fmt.Sprintf("tenant-%d", i%cfg.tenants), cfg, rec)
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	report := &Report{}
	report.Config.Chains = cfg.chains
	report.Config.Workers = cfg.workers
	report.Config.Tenants = cfg.tenants
	report.Config.Mix = cfg.mix
	report.Config.DeadlineMillis = cfg.deadlineMillis
	report.Config.MergeBound = cfg.mergeBound
	report.WallMillis = wall.Milliseconds()
	rec.mu.Lock()
	report.Requests = rec.requests
	report.Retries = rec.retries
	report.ThroughputRPS = float64(rec.requests) / wall.Seconds()
	report.Latency = make(map[string]LatencyReport, len(rec.latencies))
	for endpoint, samples := range rec.latencies {
		report.Latency[endpoint] = summarize(samples)
	}
	report.Errors = make(map[string]int64, len(rec.errors))
	for code, n := range rec.errors {
		report.Errors[code] = n
	}
	rec.mu.Unlock()
	if err := getJSON(client, base+"/metrics", &report.ServerMetrics); err != nil {
		return nil, fmt.Errorf("final metrics scrape: %w", err)
	}
	return report, nil
}

// driveChain runs one chain end to end: create, advance through every
// version, optionally delete. A failed create (cap, overload, deadline)
// abandons the chain; a failed advance abandons the rest of it (the
// session's chain position is unknown after an error). With -merge-bound
// set the chain is driven as one-shot merged analyses of each adjacent
// version pair instead — sessions reject state merging.
func driveChain(client *http.Client, base string, spec chainSpec, tenant string, cfg loadConfig, rec *recorder) {
	if cfg.mergeBound != 0 {
		for i := 1; i < len(spec.versions); i++ {
			start := time.Now()
			err := postRetryJSON(client, base+"/v1/analyze", service.AnalyzeRequest{
				Tenant:         tenant,
				BaseSrc:        spec.versions[i-1],
				ModSrc:         spec.versions[i],
				Proc:           spec.proc,
				MergeBound:     cfg.mergeBound,
				DeadlineMillis: cfg.deadlineMillis,
			}, nil, cfg.retries, rec)
			rec.observe("analyze", time.Since(start), err)
			if err != nil {
				return
			}
		}
		return
	}
	var created service.CreateSessionResponse
	start := time.Now()
	err := postRetryJSON(client, base+"/v1/sessions", service.CreateSessionRequest{
		Tenant:         tenant,
		InitialSrc:     spec.versions[0],
		Proc:           spec.proc,
		DeadlineMillis: cfg.deadlineMillis,
	}, &created, cfg.retries, rec)
	rec.observe("create", time.Since(start), err)
	if err != nil {
		return
	}
	for _, next := range spec.versions[1:] {
		start = time.Now()
		err := postRetryJSON(client, base+"/v1/sessions/"+created.SessionID+"/advance", service.AdvanceRequest{
			Tenant:         tenant,
			NextSrc:        next,
			DeadlineMillis: cfg.deadlineMillis,
		}, nil, cfg.retries, rec)
		rec.observe("advance", time.Since(start), err)
		if err != nil {
			return
		}
	}
	if cfg.doDelete {
		req, _ := http.NewRequest(http.MethodDelete,
			base+"/v1/sessions/"+created.SessionID+"?tenant="+tenant, nil)
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}
}
