// Command cfgdot renders a procedure's control flow graph in Graphviz DOT
// format (the paper's Fig. 2(b)). With -base, it renders the modified
// version's CFG with the affected nodes highlighted: affected conditionals
// (ACN) in light red, affected writes (AWN) in light blue.
//
// Usage:
//
//	cfgdot -src prog.mini -proc update > cfg.dot
//	cfgdot -base old.mini -src new.mini -proc update > affected.dot
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dise"
)

func main() {
	srcPath := flag.String("src", "", "path to the program source (the modified version when -base is set)")
	basePath := flag.String("base", "", "optional path to the base version: highlight affected nodes")
	proc := flag.String("proc", "", "procedure (default: the only procedure)")
	flag.Parse()

	if *srcPath == "" {
		fmt.Fprintln(os.Stderr, "usage: cfgdot -src FILE [-base OLD] [-proc NAME]")
		os.Exit(2)
	}
	src, err := os.ReadFile(*srcPath)
	exitOn(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	procName := *proc
	if procName == "" {
		prog, err := dise.ParseProgram(string(src))
		exitOn(err)
		procs := prog.Procedures()
		if len(procs) != 1 {
			exitOn(fmt.Errorf("-proc required: program has %d procedures %v", len(procs), procs))
		}
		procName = procs[0]
	}

	a := dise.NewAnalyzer()
	var dot string
	if *basePath != "" {
		base, err := os.ReadFile(*basePath)
		exitOn(err)
		dot, err = a.AffectedCFGDot(ctx, string(base), string(src), procName)
		exitOn(err)
	} else {
		dot, err = a.CFGDot(string(src), procName)
		exitOn(err)
	}
	fmt.Print(dot)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfgdot:", err)
		os.Exit(1)
	}
}
