// Command diselint is the project's static-analysis driver: a
// multichecker over the custom passes of internal/analysis/passes, each of
// which encodes one invariant the engine's byte-identical equivalence
// gates rest on (canonical-only sym expressions, never-cached Unknown
// verdicts, sorted map emissions, interrupt checks in unbounded loops,
// fingerprint-pair cache keys, no locks held across solver checks).
//
// Usage:
//
//	diselint [-list] [packages]
//
// With no arguments it analyzes every package of the enclosing module,
// test files included (the ./... of a vettool run). Any diagnostic makes
// the exit status 1, so the CI step `go run ./cmd/diselint ./...` fails
// the build on an invariant violation. Suppress a finding with an audited
// comment on or above the line:
//
//	//diselint:ignore <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dise/internal/analysis"
	"dise/internal/analysis/passes"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	flag.Parse()

	suite := passes.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		keep := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			keep[strings.TrimSpace(r)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			var unknown []string
			for r := range keep {
				unknown = append(unknown, r)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "diselint: unknown rule(s): %s (try -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		suite = sel
	}

	// Arguments beyond ./... are accepted for interactive use but the
	// loader always resolves whole packages of the enclosing module.
	l, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "diselint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "diselint: %v\n", err)
		os.Exit(2)
	}
	pkgs = filterPkgs(pkgs, flag.Args())

	failed := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "diselint: %s: %v\n", pkg.PkgPath, err)
			os.Exit(2)
		}
		for _, d := range diags {
			failed = true
			fmt.Printf("%s: [%s] %s\n", d.Position, d.Rule, d.Message)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// filterPkgs narrows to the requested patterns: "./..." (or no argument)
// keeps everything; "./internal/..." style prefixes and exact package
// paths keep their subtrees.
func filterPkgs(pkgs []*analysis.Package, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	keepAll := false
	var prefixes, exact []string
	for _, p := range patterns {
		switch {
		case p == "./..." || p == "...":
			keepAll = true
		case strings.HasSuffix(p, "/..."):
			prefixes = append(prefixes, strings.TrimSuffix(strings.TrimPrefix(p, "./"), "/..."))
		default:
			exact = append(exact, strings.TrimPrefix(p, "./"))
		}
	}
	if keepAll {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		// PkgPath is module-qualified ("dise/internal/sym"); patterns are
		// usually module-relative ("./internal/..."), so match both forms.
		rel := pkg.PkgPath
		if i := strings.Index(rel, "/"); i >= 0 {
			rel = rel[i+1:]
		}
		keep := false
		for _, pre := range prefixes {
			if rel == pre || strings.HasPrefix(rel, pre+"/") ||
				pkg.PkgPath == pre || strings.HasPrefix(pkg.PkgPath, pre+"/") {
				keep = true
			}
		}
		for _, ex := range exact {
			if rel == ex || pkg.PkgPath == ex {
				keep = true
			}
		}
		if keep {
			out = append(out, pkg)
		}
	}
	return out
}
