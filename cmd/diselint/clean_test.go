package main

import (
	"testing"

	"dise/internal/analysis"
	"dise/internal/analysis/passes"
)

// TestRepoIsClean runs the full analyzer suite over the enclosing module and
// requires zero diagnostics: every invariant violation must be either fixed
// or carry an audited //diselint:ignore with a reason. This makes the plain
// test suite — not just the CI lint step — enforce the invariants.
func TestRepoIsClean(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadModule returned no packages")
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, passes.All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", d.Position, d.Rule, d.Message)
		}
	}
}
