package dise

import (
	"errors"
	"fmt"
)

// ErrorKind classifies Analyzer failures so that service callers can route
// them without string matching: client errors (bad source, unknown
// procedure) versus operational outcomes (cancellation, exhausted budgets).
type ErrorKind int

const (
	// ParseError reports that a source text failed to parse.
	ParseError ErrorKind = iota + 1
	// TypeError reports that a source text parsed but failed the type
	// check, or that the requested procedure is not analyzable as given
	// (e.g. it contains calls that must be expanded with inlining first).
	TypeError
	// UnknownProc reports that the requested procedure does not exist in the
	// program.
	UnknownProc
	// Cancelled reports that the request's context was cancelled (or its
	// deadline expired) mid-analysis; the underlying error is ctx.Err().
	Cancelled
	// BudgetExhausted reports that the exploration hit the state budget
	// configured with WithMaxStates before completing.
	BudgetExhausted
	// InvalidConfig reports that the Analyzer was constructed with an
	// unusable option (e.g. an unknown WithSolverBackend name); every
	// request fails with it until the configuration is corrected.
	InvalidConfig
)

// Code returns the kind's stable machine-readable name (snake_case), used
// in the JSON error envelopes of cmd/dise -json and the analysis service.
func (k ErrorKind) Code() string {
	switch k {
	case ParseError:
		return "parse_error"
	case TypeError:
		return "type_error"
	case UnknownProc:
		return "unknown_proc"
	case Cancelled:
		return "cancelled"
	case BudgetExhausted:
		return "budget_exhausted"
	case InvalidConfig:
		return "invalid_config"
	}
	return fmt.Sprintf("error_kind_%d", int(k))
}

// String returns the kind's name.
func (k ErrorKind) String() string {
	switch k {
	case ParseError:
		return "parse error"
	case TypeError:
		return "type error"
	case UnknownProc:
		return "unknown procedure"
	case Cancelled:
		return "cancelled"
	case BudgetExhausted:
		return "budget exhausted"
	case InvalidConfig:
		return "invalid configuration"
	}
	return fmt.Sprintf("ErrorKind(%d)", int(k))
}

// Error is the structured error of the Analyzer API.
type Error struct {
	// Kind classifies the failure.
	Kind ErrorKind
	// Stage names the input or phase the failure belongs to, e.g.
	// "base version" or "modified version". May be empty.
	Stage string
	// Err is the underlying cause: the parser or type-checker error,
	// ctx.Err() for Cancelled, nil for BudgetExhausted.
	Err error
}

// Error renders "base version: parse error: ...".
func (e *Error) Error() string {
	msg := e.Kind.String()
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	if e.Stage != "" {
		return e.Stage + ": " + msg
	}
	return msg
}

// Unwrap exposes the cause, so errors.Is(err, context.Canceled) works on
// Cancelled errors.
func (e *Error) Unwrap() error { return e.Err }

// Is makes errors.Is(err, &dise.Error{Kind: k}) match on kind alone.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Kind == e.Kind && (t.Stage == "" || t.Stage == e.Stage)
}

// Kind-matching sentinels: errors.Is(err, dise.ErrCancelled) reports whether
// err is (or wraps) a *dise.Error of that kind, regardless of stage or
// cause. They exist so callers routing errors — e.g. a service handler
// mapping kinds to HTTP status codes — can use the standard errors.Is
// contract instead of type-switching on *Error.
var (
	ErrParse           error = &Error{Kind: ParseError}
	ErrType            error = &Error{Kind: TypeError}
	ErrUnknownProc     error = &Error{Kind: UnknownProc}
	ErrCancelled       error = &Error{Kind: Cancelled}
	ErrBudgetExhausted error = &Error{Kind: BudgetExhausted}
	ErrInvalidConfig   error = &Error{Kind: InvalidConfig}
)

// errMergeSession is the cause of the InvalidConfig error NewSession returns
// for an Analyzer configured with WithStateMerging: session memo tries
// record solver verdicts keyed by per-path conjunctions, which merging
// replaces with factored disjunctions.
var errMergeSession = errors.New("state merging (WithStateMerging) is incompatible with version-chain sessions")

// KindOf extracts the ErrorKind of err, unwrapping as errors.As does. It
// returns 0 for nil and for errors that are not classified *dise.Errors.
func KindOf(err error) ErrorKind {
	var e *Error
	if errors.As(err, &e) {
		return e.Kind
	}
	return 0
}

// errKind builds an *Error, leaving already-classified errors intact (the
// innermost classification wins, but an empty stage is filled in).
func errKind(kind ErrorKind, stage string, err error) *Error {
	if inner, ok := err.(*Error); ok {
		if inner.Stage == "" {
			inner.Stage = stage
		}
		return inner
	}
	return &Error{Kind: kind, Stage: stage, Err: err}
}
