package dise

// The fault-injection acceptance gate of the solver-resilience work: under
// every chaos schedule — crashing, hanging, garbage-talking and
// write-failing external solvers, a missing binary, and the portfolio
// racing all of it — the affected-path sets of all 40 artifact versions
// must stay byte-identical to the plain interval backend's. External
// failure may only ever move the degradation counters, never a verdict.

import (
	"sync"
	"testing"
	"time"

	"dise/internal/artifacts"
	"dise/internal/constraint"
	"dise/internal/constraint/chaos"
	"dise/internal/constraint/smtlib"
)

var registerChaosMatrix sync.Once

// chaosMatrixBackends are the solver configurations the matrix drives; the
// chaos-* entries are registered on first use.
var chaosMatrixBackends = []string{
	"smtlib",          // real solver when one is on PATH, pure fallback otherwise
	"chaos-nobinary",  // solver path that cannot exist
	"chaos-crash",     // process exits on every 3rd check-sat
	"chaos-hang",      // process goes silent on every 3rd check-sat
	"chaos-garbage",   // process answers nonsense on every 3rd check-sat
	"chaos-err-write", // stack-sync writes fail on schedule
	"portfolio",       // interval + bitvec + smtlib raced
}

func registerChaosMatrixBackends() {
	registerChaosMatrix.Do(func() {
		for _, fault := range []chaos.Fault{chaos.Crash, chaos.Hang, chaos.Garbage, chaos.ErrWrite} {
			launch := chaos.Transport(chaos.Plan{Fault: fault, EveryN: 3})
			constraint.Register("chaos-"+string(fault), func(o constraint.Options) (constraint.Backend, error) {
				o.SMT.Launch = launch
				o.SMT.CheckTimeout = 20 * time.Millisecond
				o.SMT.RestartBackoff = time.Millisecond
				return smtlib.New(o)
			})
		}
		constraint.Register("chaos-nobinary", func(o constraint.Options) (constraint.Backend, error) {
			o.SMT.SolverPath = "/nonexistent/bin/smt-solver"
			return smtlib.New(o)
		})
	})
}

// TestFaultMatrixVerdictEquivalence runs every artifact version under every
// fault configuration and requires the interval backend's affected-path
// set. The supervision ladder (deadline, kill, restart, breaker, disable)
// may fire freely underneath — it is exactly what keeps these runs correct.
func TestFaultMatrixVerdictEquivalence(t *testing.T) {
	registerChaosMatrixBackends()
	for _, art := range artifacts.All() {
		art := art
		t.Run(art.Name, func(t *testing.T) {
			for _, v := range art.Versions {
				v := v
				t.Run(v.Name, func(t *testing.T) {
					t.Parallel()
					modSrc := art.SourceFor(v)
					want := affectedPathSet(t, "interval", art.Base, modSrc, art.Proc)
					for _, backend := range chaosMatrixBackends {
						got := affectedPathSet(t, backend, art.Base, modSrc, art.Proc)
						if !equalPathSets(want, got) {
							t.Errorf("%s %s: %s reports %d paths, interval reports %d — external failure changed a verdict",
								art.Name, v.Name, backend, len(got), len(want))
						}
					}
				})
			}
		})
	}
}

// TestFaultMatrixDegradationVisible pins the other half of the contract:
// the degraded runs are not silently identical — their stats carry the
// degradation trace (every external check was non-definitive, crashes
// consumed the restart budget) while the verdict-bearing counters match a
// clean run's workload.
func TestFaultMatrixDegradationVisible(t *testing.T) {
	registerChaosMatrixBackends()
	art, ok := artifacts.ByName("WBS")
	if !ok {
		t.Fatal("WBS artifact missing")
	}
	modSrc := art.SourceFor(art.Versions[0])

	run := func(backend string) SolverStats {
		a := NewAnalyzer(WithSolverBackend(backend))
		res, err := a.Analyze(t.Context(), Request{BaseSrc: art.Base, ModSrc: modSrc, Proc: art.Proc})
		if err != nil {
			t.Fatalf("[%s] analyze: %v", backend, err)
		}
		return res.Stats.Solver
	}

	nob := run("chaos-nobinary")
	if nob.ExtUnknowns == 0 || nob.FallbackSolves == 0 {
		t.Fatalf("no-binary run shows no degradation: %+v", nob)
	}
	if nob.ExtAnswers != 0 {
		t.Fatalf("no-binary run claims external answers: %+v", nob)
	}
	crash := run("chaos-crash")
	if crash.ExtUnknowns == 0 || crash.FallbackSolves == 0 {
		t.Fatalf("crash run shows no degradation: %+v", crash)
	}
	if crash.ExtRestarts == 0 && crash.ExtBreakerTrips == 0 {
		t.Fatalf("crashing solver neither restarted nor tripped the breaker: %+v", crash)
	}
}
