package dise

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestStatsAdd pins the aggregation semantics of the facade stats hooks:
// counters sum, the backend/strategy echoes keep the first sample, the memo
// block counts enabled steps and tracks the largest trie.
func TestStatsAdd(t *testing.T) {
	var agg Stats
	agg.Add(Stats{
		StatesExplored: 10, PathConditions: 3, InfeasibleBranches: 2,
		TimeMilliseconds: 5, SolverCalls: 7,
		SearchStrategy: "dfs", ExploreParallelism: 1,
		Solver: SolverStats{Backend: "interval", Checks: 7, Sat: 5, Unsat: 2, CacheHits: 1},
		Memo:   MemoStats{Enabled: true, Step: 4, MemoHits: 6, StatesReplayed: 8, TrieNodes: 50},
	})
	agg.Add(Stats{
		StatesExplored: 5, PathConditions: 1, InfeasibleBranches: 1,
		TimeMilliseconds: 2, SolverCalls: 3,
		SearchStrategy: "bfs", ExploreParallelism: 4,
		Solver: SolverStats{Backend: "bitvec", Checks: 3, Sat: 3, ModelReuses: 2},
		Memo:   MemoStats{Enabled: true, Step: 9, MemoHits: 1, StatesExploredLive: 4, TrieNodes: 40},
	})
	agg.Add(Stats{StatesExplored: 1}) // cold analyze: memo disabled

	want := Stats{
		StatesExplored: 16, PathConditions: 4, InfeasibleBranches: 3,
		TimeMilliseconds: 7, SolverCalls: 10,
		SearchStrategy: "dfs", ExploreParallelism: 1,
		Solver: SolverStats{Backend: "interval", Checks: 10, Sat: 8, Unsat: 2, CacheHits: 1, ModelReuses: 2},
		Memo: MemoStats{
			Enabled: true, Step: 2, MemoHits: 7,
			StatesReplayed: 8, StatesExploredLive: 4, TrieNodes: 50,
		},
	}
	if !reflect.DeepEqual(agg, want) {
		t.Fatalf("aggregate mismatch:\ngot  %+v\nwant %+v", agg, want)
	}
}

// TestMergeStatsAdd pins the merge-block aggregation: Enabled is a
// disjunction, Bound keeps the first enabled sample, the counters sum.
func TestMergeStatsAdd(t *testing.T) {
	var agg MergeStats
	agg.Add(MergeStats{Merges: 0}) // unmerged run contributes nothing
	agg.Add(MergeStats{Enabled: true, Bound: 8, Merges: 3, MergedStatesSaved: 5, IteNodes: 12})
	agg.Add(MergeStats{Enabled: true, Bound: 2, Merges: 1, MergedStatesSaved: 1, IteNodes: 4})
	want := MergeStats{Enabled: true, Bound: 8, Merges: 4, MergedStatesSaved: 6, IteNodes: 16}
	if agg != want {
		t.Fatalf("aggregate mismatch:\ngot  %+v\nwant %+v", agg, want)
	}
}

// TestStatsMarshalOmitsZeroBlocks pins the uniform omission rule of the
// Stats JSON shape: the solver/memo/merge sub-blocks disappear when they
// equal their zero values and appear — under their fixed keys — when they
// carry data. A cold run's JSON must not serialize trees of zeros for
// machinery it never engaged.
func TestStatsMarshalOmitsZeroBlocks(t *testing.T) {
	bare, err := json.Marshal(Stats{StatesExplored: 3, SearchStrategy: "dfs"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"solver_stats", "memo_stats", "merge_stats"} {
		if strings.Contains(string(bare), key) {
			t.Errorf("zero %s block not omitted: %s", key, bare)
		}
	}
	if !strings.Contains(string(bare), `"states_explored":3`) {
		t.Errorf("core counters missing: %s", bare)
	}

	full, err := json.Marshal(Stats{
		Solver: SolverStats{Backend: "interval", Checks: 1},
		Memo:   MemoStats{Enabled: true, Step: 1},
		Merge:  MergeStats{Enabled: true, Bound: MergeUnbounded, Merges: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"solver_stats":{`, `"memo_stats":{`, `"merge_stats":{`,
		`"backend":"interval"`, `"merged_states_saved":0`, `"bound":-1`,
	} {
		if !strings.Contains(string(full), want) {
			t.Errorf("marshaled stats missing %s: %s", want, full)
		}
	}
	// The override fields must shadow, not duplicate, the embedded ones.
	if n := strings.Count(string(full), `"merge_stats"`); n != 1 {
		t.Errorf("merge_stats appears %d times, want 1: %s", n, full)
	}

	// Round trip: the custom marshaler must stay decodable into Stats.
	var back Stats
	if err := json.Unmarshal(full, &back); err != nil {
		t.Fatal(err)
	}
	if back.Merge.Merges != 2 || back.Memo.Step != 1 || back.Solver.Checks != 1 {
		t.Errorf("round trip lost sub-block data: %+v", back)
	}
}
