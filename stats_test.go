package dise

import (
	"reflect"
	"testing"
)

// TestStatsAdd pins the aggregation semantics of the facade stats hooks:
// counters sum, the backend/strategy echoes keep the first sample, the memo
// block counts enabled steps and tracks the largest trie.
func TestStatsAdd(t *testing.T) {
	var agg Stats
	agg.Add(Stats{
		StatesExplored: 10, PathConditions: 3, InfeasibleBranches: 2,
		TimeMilliseconds: 5, SolverCalls: 7,
		SearchStrategy: "dfs", ExploreParallelism: 1,
		Solver: SolverStats{Backend: "interval", Checks: 7, Sat: 5, Unsat: 2, CacheHits: 1},
		Memo:   MemoStats{Enabled: true, Step: 4, MemoHits: 6, StatesReplayed: 8, TrieNodes: 50},
	})
	agg.Add(Stats{
		StatesExplored: 5, PathConditions: 1, InfeasibleBranches: 1,
		TimeMilliseconds: 2, SolverCalls: 3,
		SearchStrategy: "bfs", ExploreParallelism: 4,
		Solver: SolverStats{Backend: "bitvec", Checks: 3, Sat: 3, ModelReuses: 2},
		Memo:   MemoStats{Enabled: true, Step: 9, MemoHits: 1, StatesExploredLive: 4, TrieNodes: 40},
	})
	agg.Add(Stats{StatesExplored: 1}) // cold analyze: memo disabled

	want := Stats{
		StatesExplored: 16, PathConditions: 4, InfeasibleBranches: 3,
		TimeMilliseconds: 7, SolverCalls: 10,
		SearchStrategy: "dfs", ExploreParallelism: 1,
		Solver: SolverStats{Backend: "interval", Checks: 10, Sat: 8, Unsat: 2, CacheHits: 1, ModelReuses: 2},
		Memo: MemoStats{
			Enabled: true, Step: 2, MemoHits: 7,
			StatesReplayed: 8, StatesExploredLive: 4, TrieNodes: 50,
		},
	}
	if !reflect.DeepEqual(agg, want) {
		t.Fatalf("aggregate mismatch:\ngot  %+v\nwant %+v", agg, want)
	}
}
