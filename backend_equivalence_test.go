package dise

// Backend equivalence over the paper's artifacts: the interval backend
// (with and without incremental reuse) and the bitvector backend must
// produce identical affected-path sets for every version of ASW, WBS and
// OAE. This is the acceptance gate of the constraint subsystem — swapping
// the solver must never change WHAT DiSE reports, only how fast.

import (
	"context"
	"errors"
	"testing"

	"dise/internal/artifacts"
)

// TestUnknownSolverBackendError pins the error contract for a
// misconfigured Analyzer: an unknown backend name fails every entry point
// with a structured *Error of Kind InvalidConfig, not a bare error.
func TestUnknownSolverBackendError(t *testing.T) {
	const src = "proc p(int x) { y = x; }"
	a := NewAnalyzer(WithSolverBackend("z3"))
	_, err := a.Analyze(context.Background(), Request{BaseSrc: src, ModSrc: src, Proc: "p"})
	var de *Error
	if !errors.As(err, &de) || de.Kind != InvalidConfig {
		t.Fatalf("Analyze with unknown backend: err = %v, want *Error{Kind: InvalidConfig}", err)
	}
	if _, err := a.Execute(context.Background(), src, "p"); !errors.As(err, &de) || de.Kind != InvalidConfig {
		t.Fatalf("Execute with unknown backend: err = %v, want *Error{Kind: InvalidConfig}", err)
	}
}

// affectedPathSet runs DiSE with the given backend and returns the path
// conditions as a set (exploration order is identical too, but the set
// comparison keeps the failure output readable).
func affectedPathSet(t *testing.T, backend, baseSrc, modSrc, proc string) map[string]int {
	t.Helper()
	a := NewAnalyzer(WithSolverBackend(backend))
	res, err := a.Analyze(context.Background(), Request{BaseSrc: baseSrc, ModSrc: modSrc, Proc: proc})
	if err != nil {
		t.Fatalf("[%s] analyze: %v", backend, err)
	}
	set := map[string]int{}
	for _, p := range res.Paths {
		set[p.PathCondition]++
	}
	return set
}

func equalPathSets(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// TestUnknownTreatedAsUnsatByEngine pins the caller side of the Unknown
// contract end to end: a branch condition too hard for any backend to
// decide (factoring a prime over wide domains exhausts the node budget)
// must be pruned as infeasible — by every backend identically — so all
// backends report the same single path and count the Unknown in stats.
func TestUnknownTreatedAsUnsatByEngine(t *testing.T) {
	const src = `
proc p(int x, int y) {
  if (x > 1 && y > 1 && x * y == 999983) {
    hit = 1;
  } else {
    hit = 0;
  }
}
`
	for _, backend := range []string{"interval", "interval-noreuse", "bitvec"} {
		t.Run(backend, func(t *testing.T) {
			a := NewAnalyzer(WithSolverBackend(backend))
			sum, err := a.Execute(context.Background(), src, "p")
			if err != nil {
				t.Fatal(err)
			}
			// The hard branch is Unknown -> treated unsat -> pruned; only the
			// else-path remains, for every backend.
			if len(sum.Paths) != 1 {
				t.Fatalf("paths = %d, want 1 (hard branch pruned as unsat)", len(sum.Paths))
			}
			if sum.Stats.Solver.Unknown == 0 {
				t.Errorf("stats must count the Unknown verdict, got %+v", sum.Stats.Solver)
			}
			if sum.Stats.Solver.Backend != backend {
				t.Errorf("stats backend = %q, want %q", sum.Stats.Solver.Backend, backend)
			}
		})
	}
}

func TestBackendsProduceIdenticalAffectedPathSets(t *testing.T) {
	backends := []string{"interval", "interval-noreuse", "bitvec"}
	for _, art := range artifacts.All() {
		art := art
		t.Run(art.Name, func(t *testing.T) {
			for _, v := range art.Versions {
				v := v
				t.Run(v.Name, func(t *testing.T) {
					t.Parallel()
					modSrc := art.SourceFor(v)
					want := affectedPathSet(t, backends[0], art.Base, modSrc, art.Proc)
					for _, backend := range backends[1:] {
						got := affectedPathSet(t, backend, art.Base, modSrc, art.Proc)
						if !equalPathSets(want, got) {
							t.Errorf("%s %s: %s reports %d paths, %s reports %d — affected-path sets differ",
								art.Name, v.Name, backends[0], len(want), backend, len(got))
						}
					}
				})
			}
		})
	}
}
