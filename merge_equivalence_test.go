package dise

// Verdict equivalence of bounded state merging over the paper's artifacts:
// merging intentionally coarsens HOW paths are enumerated (sibling states
// fuse at joins, path conditions arrive factored through disjunctions), so
// unlike the solver backends it is NOT held to byte-identical path sets.
// The gate it ships under instead (ROADMAP "merging/summarization mode"):
//
//   - identical affected-branch coverage — the set of affected CFG nodes
//     (ACN ∪ AWN) covered by the reported paths' Trace ∪ Cover matches the
//     unmerged run's exactly, on every version of ASW, WBS and OAE;
//   - identical per-branch testgen feasibility — every reported path, merged
//     or not, solves into a concrete test (no merged disjunction may go
//     Unknown-infeasible where the per-path run was feasible);
//   - identical error-path presence under full symbolic execution.

import (
	"context"
	"testing"

	"dise/internal/artifacts"
	"dise/internal/symexec"
)

// coveredAffected projects a DiSE result onto the verdict the gate compares:
// the affected nodes its paths actually covered (Trace ∪ Cover, so merged
// constituents count), plus whether any path violated an assertion.
func coveredAffected(res *Result) (cov map[int]bool, anyErr bool) {
	cov = map[int]bool{}
	aff := res.internal.Affected
	for _, p := range res.internal.Summary.Paths {
		for _, id := range p.Trace {
			if aff.Contains(id) {
				cov[id] = true
			}
		}
		for _, id := range p.Cover {
			if aff.Contains(id) {
				cov[id] = true
			}
		}
		anyErr = anyErr || p.Err
	}
	return cov, anyErr
}

func equalNodeSets(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// TestMergedDiseVerdictEquivalenceOnArtifacts is the acceptance gate of the
// tentpole: over all 40 artifact versions, a merged DiSE run covers exactly
// the affected branches the unmerged run covers, agrees on assertion
// violations, and every one of its factored path conditions remains solvable
// into a concrete test.
func TestMergedDiseVerdictEquivalenceOnArtifacts(t *testing.T) {
	ctx := context.Background()
	for _, art := range artifacts.All() {
		art := art
		t.Run(art.Name, func(t *testing.T) {
			cold := NewAnalyzer()
			merged := NewAnalyzer(WithStateMerging(MergeUnbounded))
			for _, v := range art.Versions {
				v := v
				t.Run(v.Name, func(t *testing.T) {
					modSrc := art.SourceFor(v)
					req := Request{BaseSrc: art.Base, ModSrc: modSrc, Proc: art.Proc}
					want, err := cold.Analyze(ctx, req)
					if err != nil {
						t.Fatalf("unmerged analyze: %v", err)
					}
					got, err := merged.Analyze(ctx, req)
					if err != nil {
						t.Fatalf("merged analyze: %v", err)
					}

					wantCov, wantErr := coveredAffected(want)
					gotCov, gotErr := coveredAffected(got)
					if !equalNodeSets(wantCov, gotCov) {
						t.Errorf("affected-branch coverage differs: unmerged covers %d affected nodes, merged %d",
							len(wantCov), len(gotCov))
					}
					if wantErr != gotErr {
						t.Errorf("assertion-violation presence differs: unmerged %v, merged %v", wantErr, gotErr)
					}
					if len(got.Paths) > len(want.Paths) {
						t.Errorf("merged run reports %d paths, unmerged %d — merging must never add paths",
							len(got.Paths), len(want.Paths))
					}

					// Per-branch testgen feasibility: each reported path —
					// including those whose conditions carry ite/disjunction
					// conjuncts — must solve into a concrete test.
					tests, err := got.Tests()
					if err != nil {
						t.Fatalf("merged testgen: %v", err)
					}
					if len(tests) != len(got.Paths) {
						t.Errorf("merged testgen solved %d of %d path conditions — a factored disjunction went infeasible",
							len(tests), len(got.Paths))
					}
					if got.Stats.Merge.Merges > 0 && got.Stats.Merge.IteNodes == 0 &&
						got.Stats.Merge.MergedStatesSaved == 0 {
						t.Errorf("merge stats inconsistent: %+v", got.Stats.Merge)
					}
				})
			}
		})
	}
}

// TestMergedFullSEEquivalenceOnArtifacts checks the full-symbolic-execution
// side of the gate on each artifact's base version, at an unbounded and a
// chunked bound: node coverage and error-path presence match the per-path
// run, states explored never grow, and on OAE — the benchmark the mode
// exists for (9216 paths per full run) — the collapse is at least 3x.
func TestMergedFullSEEquivalenceOnArtifacts(t *testing.T) {
	ctx := context.Background()
	for _, art := range artifacts.All() {
		art := art
		t.Run(art.Name, func(t *testing.T) {
			full, err := NewAnalyzer().Execute(ctx, art.Base, art.Proc)
			if err != nil {
				t.Fatal(err)
			}
			wantCov, wantErrs := fullCoverage(full)
			for _, bound := range []int{MergeUnbounded, 2} {
				merged, err := NewAnalyzer(WithStateMerging(bound)).Execute(ctx, art.Base, art.Proc)
				if err != nil {
					t.Fatalf("bound %d: %v", bound, err)
				}
				gotCov, gotErrs := fullCoverage(merged)
				if !equalNodeSets(wantCov, gotCov) {
					t.Errorf("bound %d: covered-node sets differ (full %d nodes, merged %d)",
						bound, len(wantCov), len(gotCov))
				}
				if wantErrs != gotErrs {
					t.Errorf("bound %d: error-path presence differs: full %v, merged %v", bound, wantErrs, gotErrs)
				}
				if merged.Stats.StatesExplored > full.Stats.StatesExplored {
					t.Errorf("bound %d: merged explored %d states, full %d — merging must not grow the search",
						bound, merged.Stats.StatesExplored, full.Stats.StatesExplored)
				}
				if art.Name == "OAE" && bound == MergeUnbounded &&
					3*merged.Stats.StatesExplored > full.Stats.StatesExplored {
					t.Errorf("OAE full SE: merged %d states vs %d, want >= 3x collapse",
						merged.Stats.StatesExplored, full.Stats.StatesExplored)
				}
			}
		})
	}
}

func fullCoverage(s *Summary) (cov map[int]bool, anyErr bool) {
	cov = map[int]bool{}
	for _, p := range s.summary.Paths {
		for _, id := range p.Trace {
			cov[id] = true
		}
		for _, id := range p.Cover {
			cov[id] = true
		}
		anyErr = anyErr || p.Err
	}
	return cov, anyErr
}

// TestMergeUnboundedConstant pins the facade re-export against the engine's
// sentinel, so flag parsing in the commands can rely on either name.
func TestMergeUnboundedConstant(t *testing.T) {
	if MergeUnbounded != symexec.MergeUnbounded {
		t.Fatalf("MergeUnbounded = %d, want symexec's %d", MergeUnbounded, symexec.MergeUnbounded)
	}
	if MergeUnbounded != -1 {
		t.Fatalf("MergeUnbounded = %d, want -1", MergeUnbounded)
	}
}
