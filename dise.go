// Package dise is a Go implementation of Directed Incremental Symbolic
// Execution (Person, Yang, Rungta, Khurshid — PLDI 2011), together with the
// complete substrate it needs: a small Java-like imperative language with
// lexer, parser and type checker; control flow graphs with post-dominance,
// control dependence and SCC analyses; a structural AST diff; a symbolic
// execution engine; and a Choco-style finite-domain constraint solver.
//
// The public API is the Analyzer: a reusable, concurrency-safe service
// object that parses two versions of a program, diffs them, computes the
// affected-location sets (ACN/AWN, paper Fig. 3–5), runs the directed
// symbolic execution (paper Fig. 6), and exposes the resulting affected
// path conditions, cost statistics, and regression-test
// selection/augmentation (paper §5.2). Analyses accept a context.Context
// (cancellation reaches the innermost search loops), reuse a parse/CFG
// cache across requests, and can be batched or streamed.
//
// Quick start:
//
//	a := dise.NewAnalyzer()
//	res, err := a.Analyze(ctx, dise.Request{BaseSrc: baseSrc, ModSrc: modSrc, Proc: "update"})
//	for _, pc := range res.PathConditions() { fmt.Println(pc) }
//
// The package-level functions (Analyze, Execute, ...) are deprecated thin
// wrappers over a throwaway Analyzer, kept for compatibility.
package dise

import (
	"context"
	"encoding/json"
	"fmt"

	"dise/internal/artifacts"
	idise "dise/internal/dise"
	"dise/internal/inline"
	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/lang/types"
	"dise/internal/symexec"
	"dise/internal/testgen"
)

// Options configures an analysis.
//
// Deprecated: Options is the configuration struct of the legacy
// package-level API. New code should construct an Analyzer with functional
// options (WithDepthBound, WithIntDomain, ...); WithOptions adapts an
// existing Options value.
type Options struct {
	// DepthBound limits the number of CFG nodes executed on one path
	// (loop/recursion bound, paper §2.1). Zero selects the default of 1000.
	DepthBound int
	// IntDomain overrides the solver domain of integer symbolic inputs.
	// The zero value selects the Choco-like non-negative default
	// [0, 1e6] (see DESIGN.md).
	IntDomain *[2]int64
	// ConcreteGlobals makes globals take their declared initializers
	// instead of fresh symbolic values.
	ConcreteGlobals bool
	// SolverNodeBudget caps constraint-solver search nodes per
	// satisfiability check (0 = default). Exhausted budgets are treated as
	// unsatisfiable, as SPF does (paper §4.1).
	SolverNodeBudget int
	// TransitiveWrites enables the write→write dataflow extension to the
	// paper's affected-set rules (DESIGN.md §6.4).
	TransitiveWrites bool
}

// analyzer builds a single-use Analyzer mirroring the legacy options.
func (o Options) analyzer() *Analyzer { return NewAnalyzer(WithOptions(o)) }

// Program is a parsed and type-checked program.
type Program struct {
	AST *ast.Program
	src string
}

// ParseProgram parses and type-checks source text.
func ParseProgram(src string) (*Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, &Error{Kind: ParseError, Err: err}
	}
	if _, err := types.Check(prog); err != nil {
		return nil, &Error{Kind: TypeError, Err: err}
	}
	return &Program{AST: prog, src: src}, nil
}

// Procedures lists the procedure names in declaration order.
func (p *Program) Procedures() []string {
	out := make([]string, len(p.AST.Procs))
	for i, pr := range p.AST.Procs {
		out[i] = pr.Name
	}
	return out
}

// Pretty returns the canonical pretty-printed source.
func (p *Program) Pretty() string { return ast.Pretty(p.AST) }

// PathInfo describes one explored path.
type PathInfo struct {
	// PathCondition is the rendered path condition, e.g.
	// "PedalPos <= 0 && BSwitch == 0".
	PathCondition string `json:"path_condition"`
	// AssertViolated reports that the path ends in an assertion failure.
	AssertViolated bool `json:"assert_violated"`
}

// Stats summarizes the cost of a symbolic execution run (the dependent
// variables of the paper's evaluation, §4.2.2).
type Stats struct {
	StatesExplored     int   `json:"states_explored"`
	PathConditions     int   `json:"path_conditions"`
	InfeasibleBranches int   `json:"infeasible_branches"`
	TimeMilliseconds   int64 `json:"time_ms"`
	SolverCalls        int   `json:"solver_calls"`
	// SearchStrategy and ExploreParallelism echo the exploration-scheduler
	// configuration the run used (WithSearchStrategy/WithExploreParallelism).
	SearchStrategy     string `json:"search_strategy"`
	ExploreParallelism int    `json:"explore_parallelism"`
	// Solver breaks the solver work down by the incremental machinery of
	// the constraint subsystem (internal/constraint).
	Solver SolverStats `json:"solver_stats"`
	// Memo reports the execution-tree reuse of a version-chain session
	// (Session.Advance); it is zero for one-shot Analyze calls.
	Memo MemoStats `json:"memo_stats"`
	// Merge reports the join-point state fusion of a bounded-state-merging
	// run (WithStateMerging); it is zero when merging is disabled.
	Merge MergeStats `json:"merge_stats"`
}

// MarshalJSON omits the solver/memo/merge observability sub-blocks uniformly
// when they carry no data: a block equal to its zero value disappears from
// the output instead of serializing as a tree of zeros. The struct tags
// alone cannot express this — encoding/json's omitempty never applies to
// struct-typed fields — so the zero checks live here.
func (s Stats) MarshalJSON() ([]byte, error) {
	type alias Stats // method-free copy: avoids recursing into MarshalJSON
	out := struct {
		alias
		Solver *SolverStats `json:"solver_stats,omitempty"`
		Memo   *MemoStats   `json:"memo_stats,omitempty"`
		Merge  *MergeStats  `json:"merge_stats,omitempty"`
	}{alias: alias(s)}
	if s.Solver != (SolverStats{}) {
		out.Solver = &s.Solver
	}
	if s.Memo != (MemoStats{}) {
		out.Memo = &s.Memo
	}
	if s.Merge != (MergeStats{}) {
		out.Merge = &s.Merge
	}
	return json.Marshal(out)
}

// MemoStats is the observability block of a version-chain session step: how
// much of the previous version's recorded execution tree survived the edit,
// and how many solver decisions were answered from it. Like the solver
// counters, the replay/live split includes speculative work and may vary
// with parallelism; the analysis outcome does not.
type MemoStats struct {
	// Enabled distinguishes a session step from a cold Analyze.
	Enabled bool `json:"enabled"`
	// Step counts Advance calls on the session, starting at 1.
	Step int `json:"step"`
	// MemoHits counts branch feasibility decisions answered by a recorded
	// verdict — decisions made with no constraint.Backend.Check call at all.
	MemoHits int `json:"memo_hits"`
	// StatesReplayed counts state expansions served on a matched trie node
	// with recorded facts; StatesExploredLive counts expansions recorded
	// fresh (changed, newly reached, or previously pruned regions).
	StatesReplayed     int `json:"states_replayed"`
	StatesExploredLive int `json:"states_explored_live"`
	// NodesKept and NodesInvalidated report the diff-driven trie rewrite
	// that preceded the run: recorded nodes whose statements survived the
	// edit versus nodes dropped because their statement changed, moved, or
	// the symbolic inputs diverged.
	NodesKept        int `json:"nodes_kept"`
	NodesInvalidated int `json:"nodes_invalidated"`
	// NodesEvicted counts nodes the step's budget enforcement dropped
	// (WithMemoNodeBudget) — cold subtrees that will re-solve if needed,
	// never a correctness event.
	NodesEvicted int `json:"nodes_evicted"`
	// TrieNodes is the size of the memo trie after the step; TrieBytes its
	// approximate retained footprint (memo.Tree.Bytes).
	TrieNodes int   `json:"trie_nodes"`
	TrieBytes int64 `json:"trie_bytes"`
}

// MergeStats is the observability block of bounded state merging
// (WithStateMerging): how many join-point fusions the run performed and how
// much exploration they collapsed. Like the solver counters these are cost
// observability, not outcome — a merged run covers the same affected
// branches and keeps every path condition solvable (the verdict-equivalence
// gate, see internal/symexec/merge.go).
type MergeStats struct {
	// Enabled distinguishes a merged run from the default per-path mode.
	Enabled bool `json:"enabled"`
	// Bound echoes the configured merge bound (MergeUnbounded = fuse every
	// mergeable sibling set whole; >= 2 = fuse in chunks of at most Bound).
	Bound int `json:"bound"`
	// Merges counts join-point fusion operations; each fusion of k sibling
	// states contributes k-1 to MergedStatesSaved.
	Merges            int `json:"merges"`
	MergedStatesSaved int `json:"merged_states_saved"`
	// IteNodes counts the ite expressions interned while fusing divergent
	// environment bindings — the footprint merging trades exploration for.
	IteNodes int `json:"ite_nodes"`
}

// Add accumulates one run's merge counters into an aggregate. Enabled is a
// disjunction, Bound keeps the first enabled sample's value, the counters
// sum.
func (m *MergeStats) Add(o MergeStats) {
	if o.Enabled && !m.Enabled {
		m.Enabled = true
		m.Bound = o.Bound
	}
	m.Merges += o.Merges
	m.MergedStatesSaved += o.MergedStatesSaved
	m.IteNodes += o.IteNodes
}

// SolverStats is the observability block of the constraint subsystem: how
// many satisfiability checks ran, how the assertion stack moved with the
// exploration tree, and how many checks the prefix-reuse machinery (cache,
// witness models, propagation snapshots) answered without a full solve.
type SolverStats struct {
	Backend       string `json:"backend"`
	Checks        int    `json:"checks"`
	Sat           int    `json:"sat"`
	Unsat         int    `json:"unsat"`
	Unknown       int    `json:"unknown"`
	PushedFrames  int    `json:"pushed_frames"`
	PoppedFrames  int    `json:"popped_frames"`
	CacheHits     int    `json:"cache_hits"`
	CacheMisses   int    `json:"cache_misses"`
	ModelReuses   int    `json:"model_reuses"`
	BoxConflicts  int    `json:"box_conflicts"`
	FullSolves    int    `json:"full_solves"`
	FrameMemoHits int    `json:"frame_memo_hits"`

	// Resilience counters of the external-solver path ("smtlib" backend,
	// alone or inside a portfolio). All zero — and omitted from JSON — for
	// purely in-process backends. Every rung of the degradation ladder
	// moves one of these; none of them ever moves a verdict.
	ExtSolves       int `json:"ext_solves,omitempty"`
	ExtAnswers      int `json:"ext_answers,omitempty"`
	ExtUnknowns     int `json:"ext_unknowns,omitempty"`
	ExtTimeouts     int `json:"ext_timeouts,omitempty"`
	ExtRestarts     int `json:"ext_restarts,omitempty"`
	ExtBreakerTrips int `json:"ext_breaker_trips,omitempty"`
	FallbackSolves  int `json:"fallback_solves,omitempty"`
	MemberFailures  int `json:"member_failures,omitempty"`
	// CheckPanics counts Backend.Check panics the engine contained
	// (recovered, reported Unknown, kept exploring).
	CheckPanics int `json:"check_panics,omitempty"`
}

// Add accumulates one run's solver counters into an aggregate — the
// facade-level mirror of constraint.Stats.Add, for services that sum
// per-request Stats into cumulative totals. The backend name is kept from
// the first non-empty sample.
func (s *SolverStats) Add(o SolverStats) {
	if s.Backend == "" {
		s.Backend = o.Backend
	}
	s.Checks += o.Checks
	s.Sat += o.Sat
	s.Unsat += o.Unsat
	s.Unknown += o.Unknown
	s.PushedFrames += o.PushedFrames
	s.PoppedFrames += o.PoppedFrames
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.ModelReuses += o.ModelReuses
	s.BoxConflicts += o.BoxConflicts
	s.FullSolves += o.FullSolves
	s.FrameMemoHits += o.FrameMemoHits
	s.ExtSolves += o.ExtSolves
	s.ExtAnswers += o.ExtAnswers
	s.ExtUnknowns += o.ExtUnknowns
	s.ExtTimeouts += o.ExtTimeouts
	s.ExtRestarts += o.ExtRestarts
	s.ExtBreakerTrips += o.ExtBreakerTrips
	s.FallbackSolves += o.FallbackSolves
	s.MemberFailures += o.MemberFailures
	s.CheckPanics += o.CheckPanics
}

// Add accumulates one session step's memo counters into an aggregate. In the
// aggregate, Step counts the enabled (session-step) samples added, and
// TrieNodes tracks the largest trie observed; the hit/replay/invalidation
// counters sum.
func (m *MemoStats) Add(o MemoStats) {
	if o.Enabled {
		m.Enabled = true
		m.Step++
	}
	m.MemoHits += o.MemoHits
	m.StatesReplayed += o.StatesReplayed
	m.StatesExploredLive += o.StatesExploredLive
	m.NodesKept += o.NodesKept
	m.NodesInvalidated += o.NodesInvalidated
	m.NodesEvicted += o.NodesEvicted
	if o.TrieNodes > m.TrieNodes {
		m.TrieNodes = o.TrieNodes
	}
	if o.TrieBytes > m.TrieBytes {
		m.TrieBytes = o.TrieBytes
	}
}

// Add accumulates one run's cost statistics into an aggregate (counters
// sum, the solver/memo blocks aggregate per their own Add semantics); the
// strategy/parallelism echo fields keep the first non-zero sample. Services
// use it to expose cumulative solver_stats/memo_stats across requests.
func (s *Stats) Add(o Stats) {
	s.StatesExplored += o.StatesExplored
	s.PathConditions += o.PathConditions
	s.InfeasibleBranches += o.InfeasibleBranches
	s.TimeMilliseconds += o.TimeMilliseconds
	s.SolverCalls += o.SolverCalls
	if s.SearchStrategy == "" {
		s.SearchStrategy = o.SearchStrategy
	}
	if s.ExploreParallelism == 0 {
		s.ExploreParallelism = o.ExploreParallelism
	}
	s.Solver.Add(o.Solver)
	s.Memo.Add(o.Memo)
	s.Merge.Add(o.Merge)
}

func statsOf(s symexec.Stats, pcs int, cfg symexec.Config) Stats {
	// Echo the values the scheduler resolved, not the raw config.
	strategy := cfg.ResolvedStrategy()
	workers := cfg.ResolvedExploreParallelism()
	var merge MergeStats
	if cfg.MergeBound != 0 {
		merge = MergeStats{
			Enabled:           true,
			Bound:             cfg.MergeBound,
			Merges:            s.Merges,
			MergedStatesSaved: s.MergedStatesSaved,
			IteNodes:          s.IteNodes,
		}
	}
	return Stats{
		StatesExplored:     s.StatesExplored,
		PathConditions:     pcs,
		InfeasibleBranches: s.InfeasibleBranches,
		TimeMilliseconds:   s.Time.Milliseconds(),
		SolverCalls:        s.Solver.Checks,
		SearchStrategy:     strategy,
		ExploreParallelism: workers,
		Solver: SolverStats{
			Backend:       s.Solver.Backend,
			Checks:        s.Solver.Checks,
			Sat:           s.Solver.Sat,
			Unsat:         s.Solver.Unsat,
			Unknown:       s.Solver.Unknown,
			PushedFrames:  s.Solver.PushedFrames,
			PoppedFrames:  s.Solver.PoppedFrames,
			CacheHits:     s.Solver.CacheHits,
			CacheMisses:   s.Solver.CacheMisses,
			ModelReuses:   s.Solver.ModelReuses,
			BoxConflicts:  s.Solver.BoxConflicts,
			FullSolves:    s.Solver.FullSolves,
			FrameMemoHits: s.Solver.FrameMemoHits,

			ExtSolves:       s.Solver.ExtSolves,
			ExtAnswers:      s.Solver.ExtAnswers,
			ExtUnknowns:     s.Solver.ExtUnknowns,
			ExtTimeouts:     s.Solver.ExtTimeouts,
			ExtRestarts:     s.Solver.ExtRestarts,
			ExtBreakerTrips: s.Solver.ExtBreakerTrips,
			FallbackSolves:  s.Solver.FallbackSolves,
			MemberFailures:  s.Solver.MemberFailures,
			CheckPanics:     s.CheckPanics,
		},
		Merge: merge,
	}
}

// Result is the outcome of a DiSE analysis of two program versions.
type Result struct {
	// Paths are the affected path conditions of the modified version.
	Paths []PathInfo
	// Stats is the cost of the directed symbolic execution.
	Stats Stats
	// ChangedNodes counts CFG nodes marked changed/added/removed by the
	// differential analysis.
	ChangedNodes int
	// AffectedConditionalLines and AffectedWriteLines are the source lines
	// of the affected sets (ACN and AWN) in the modified version.
	AffectedConditionalLines []int
	AffectedWriteLines       []int

	internal *idise.Result
	config   symexec.Config
	modProg  *ast.Program
	procName string
}

// PathConditions returns the rendered affected path conditions.
func (r *Result) PathConditions() []string {
	out := make([]string, len(r.Paths))
	for i, p := range r.Paths {
		out[i] = p.PathCondition
	}
	return out
}

// Analyze runs the full DiSE pipeline on two versions of procedure procName
// given as source text.
//
// Deprecated: use Analyzer.Analyze, which accepts a context and reuses a
// parse/CFG cache across calls.
func Analyze(baseSrc, modSrc, procName string, opts Options) (*Result, error) {
	return opts.analyzer().Analyze(context.Background(),
		Request{BaseSrc: baseSrc, ModSrc: modSrc, Proc: procName})
}

// AnalyzeInterprocedural runs DiSE over a whole multi-procedure program:
// both versions are inlined from the entry procedure (expanding every call,
// see internal/inline) and the intra-procedural pipeline analyzes the
// result. Requires an acyclic call graph and single-exit callees.
//
// Deprecated: use Analyzer.AnalyzeInterprocedural.
func AnalyzeInterprocedural(baseSrc, modSrc, entryProc string, opts Options) (*Result, error) {
	return opts.analyzer().AnalyzeInterprocedural(context.Background(), baseSrc, modSrc, entryProc)
}

// InlineProgram expands every call reachable from entryProc and returns the
// single-procedure program as pretty-printed source.
func InlineProgram(src, entryProc string) (string, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return "", err
	}
	flat, err := inline.Program(prog.AST, entryProc)
	if err != nil {
		return "", err
	}
	return ast.Pretty(flat), nil
}

// Summary is the outcome of full (traditional) symbolic execution.
type Summary struct {
	Paths []PathInfo
	Stats Stats

	engine  *symexec.Engine
	summary *symexec.Summary
}

// PathConditions returns the rendered path conditions.
func (s *Summary) PathConditions() []string {
	out := make([]string, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = p.PathCondition
	}
	return out
}

// Execute runs full symbolic execution of procedure procName — the paper's
// control technique ("Full Symbc").
//
// Deprecated: use Analyzer.Execute.
func Execute(src, procName string, opts Options) (*Summary, error) {
	return opts.analyzer().Execute(context.Background(), src, procName)
}

// ExecutionTree renders the symbolic execution tree (paper Fig. 1) of
// procedure procName.
//
// Deprecated: use Analyzer.ExecutionTree.
func ExecutionTree(src, procName string, opts Options) (string, error) {
	return opts.analyzer().ExecutionTree(context.Background(), src, procName)
}

// TestCase is a concrete invocation of the procedure under analysis,
// rendered as a call string (paper §5.2).
type TestCase struct {
	Call          string `json:"call"`
	PathCondition string `json:"path_condition"`
}

// Tests solves the summary's path conditions into concrete test inputs.
func (s *Summary) Tests() []TestCase {
	return convertTests(testgen.NewGenerator(s.engine).Generate(s.summary))
}

// Tests solves the DiSE result's affected path conditions into concrete
// test inputs for the modified version.
func (r *Result) Tests() ([]TestCase, error) {
	engine, err := symexec.New(r.modProg, r.procName, r.config)
	if err != nil {
		return nil, err
	}
	return convertTests(testgen.NewGenerator(engine).Generate(r.internal.Summary)), nil
}

func convertTests(ts []testgen.TestCase) []TestCase {
	out := make([]TestCase, len(ts))
	for i, tc := range ts {
		out[i] = TestCase{Call: tc.Call, PathCondition: tc.PCString}
	}
	return out
}

// Selection splits DiSE-generated tests against an existing suite (paper
// §5.2, Table 3): Selected tests already exist and can be re-used; Added
// tests are new and augment the suite.
type Selection struct {
	Selected []TestCase
	Added    []TestCase
}

// SelectAugment performs test case selection and augmentation by exact
// string comparison of rendered calls, as in the paper.
func SelectAugment(baseSuite, diseTests []TestCase) Selection {
	toInternal := func(ts []TestCase) []testgen.TestCase {
		out := make([]testgen.TestCase, len(ts))
		for i, tc := range ts {
			out[i] = testgen.TestCase{Call: tc.Call, PCString: tc.PathCondition}
		}
		return out
	}
	sel := testgen.SelectAugment(toInternal(baseSuite), toInternal(diseTests))
	return Selection{
		Selected: convertTests(sel.Selected),
		Added:    convertTests(sel.Added),
	}
}

// CFGDot renders the control flow graph of procedure procName in Graphviz
// DOT format (paper Fig. 2(b)).
//
// Deprecated: use Analyzer.CFGDot.
func CFGDot(src, procName string) (string, error) {
	return NewAnalyzer().CFGDot(src, procName)
}

// AffectedCFGDot renders the modified version's CFG with affected nodes
// highlighted.
//
// Deprecated: use Analyzer.AffectedCFGDot.
func AffectedCFGDot(baseSrc, modSrc, procName string, opts Options) (string, error) {
	return opts.analyzer().AffectedCFGDot(context.Background(), baseSrc, modSrc, procName)
}

// EvaluationArtifacts lists the names of the built-in evaluation artifacts
// (the paper's WBS, ASW and OAE re-creations).
func EvaluationArtifacts() []string {
	var out []string
	for _, a := range artifacts.All() {
		out = append(out, a.Name)
	}
	return out
}

// EvaluationTables regenerates Table 2 and Table 3 of the paper for the
// named artifact ("ASW", "WBS" or "OAE") and returns their rendered forms.
//
// Deprecated: use Analyzer.EvaluationTables.
func EvaluationTables(artifact string, opts Options) (table2, table3 string, err error) {
	return opts.analyzer().EvaluationTables(context.Background(), artifact)
}

// artifactByName resolves an evaluation artifact for Analyzer.EvaluationTables.
func artifactByName(name string) (artifacts.Artifact, bool) { return artifacts.ByName(name) }

func errUnknownArtifact(name string) error {
	return fmt.Errorf("unknown artifact %q (have %v)", name, EvaluationArtifacts())
}
