// Package dise is a Go implementation of Directed Incremental Symbolic
// Execution (Person, Yang, Rungta, Khurshid — PLDI 2011), together with the
// complete substrate it needs: a small Java-like imperative language with
// lexer, parser and type checker; control flow graphs with post-dominance,
// control dependence and SCC analyses; a structural AST diff; a symbolic
// execution engine; and a Choco-style finite-domain constraint solver.
//
// The package is a facade over the internal packages: it parses two versions
// of a program, diffs them, computes the affected-location sets (ACN/AWN,
// paper Fig. 3–5), runs the directed symbolic execution (paper Fig. 6), and
// exposes the resulting affected path conditions, cost statistics, and
// regression-test selection/augmentation (paper §5.2).
//
// Quick start:
//
//	res, err := dise.Analyze(baseSrc, modSrc, "update", dise.Options{})
//	for _, pc := range res.PathConditions() { fmt.Println(pc) }
package dise

import (
	"fmt"

	"dise/internal/artifacts"
	"dise/internal/cfg"
	idise "dise/internal/dise"
	"dise/internal/evaluation"
	"dise/internal/inline"
	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/lang/types"
	"dise/internal/solver"
	"dise/internal/symexec"
	"dise/internal/testgen"
)

// Options configures an analysis.
type Options struct {
	// DepthBound limits the number of CFG nodes executed on one path
	// (loop/recursion bound, paper §2.1). Zero selects the default of 1000.
	DepthBound int
	// IntDomain overrides the solver domain of integer symbolic inputs.
	// The zero value selects the Choco-like non-negative default
	// [0, 1e6] (see DESIGN.md).
	IntDomain *[2]int64
	// ConcreteGlobals makes globals take their declared initializers
	// instead of fresh symbolic values.
	ConcreteGlobals bool
	// SolverNodeBudget caps constraint-solver search nodes per
	// satisfiability check (0 = default). Exhausted budgets are treated as
	// unsatisfiable, as SPF does (paper §4.1).
	SolverNodeBudget int
	// TransitiveWrites enables the write→write dataflow extension to the
	// paper's affected-set rules (DESIGN.md §6.4).
	TransitiveWrites bool
}

func (o Options) engineConfig() symexec.Config {
	cfg := symexec.Config{
		DepthBound:      o.DepthBound,
		ConcreteGlobals: o.ConcreteGlobals,
		SolverOptions:   solver.Options{NodeBudget: o.SolverNodeBudget},
	}
	if o.IntDomain != nil {
		cfg.IntDomain = solver.Interval{Lo: o.IntDomain[0], Hi: o.IntDomain[1]}
	}
	return cfg
}

// Program is a parsed and type-checked program.
type Program struct {
	AST *ast.Program
	src string
}

// ParseProgram parses and type-checks source text.
func ParseProgram(src string) (*Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if _, err := types.Check(prog); err != nil {
		return nil, err
	}
	return &Program{AST: prog, src: src}, nil
}

// Procedures lists the procedure names in declaration order.
func (p *Program) Procedures() []string {
	out := make([]string, len(p.AST.Procs))
	for i, pr := range p.AST.Procs {
		out[i] = pr.Name
	}
	return out
}

// Pretty returns the canonical pretty-printed source.
func (p *Program) Pretty() string { return ast.Pretty(p.AST) }

// PathInfo describes one explored path.
type PathInfo struct {
	// PathCondition is the rendered path condition, e.g.
	// "PedalPos <= 0 && BSwitch == 0".
	PathCondition string
	// AssertViolated reports that the path ends in an assertion failure.
	AssertViolated bool
}

// Stats summarizes the cost of a symbolic execution run (the dependent
// variables of the paper's evaluation, §4.2.2).
type Stats struct {
	StatesExplored     int
	PathConditions     int
	InfeasibleBranches int
	TimeMilliseconds   int64
	SolverCalls        int
}

func statsOf(s symexec.Stats, pcs int) Stats {
	return Stats{
		StatesExplored:     s.StatesExplored,
		PathConditions:     pcs,
		InfeasibleBranches: s.InfeasibleBranches,
		TimeMilliseconds:   s.Time.Milliseconds(),
		SolverCalls:        s.Solver.Calls,
	}
}

// Result is the outcome of a DiSE analysis of two program versions.
type Result struct {
	// Paths are the affected path conditions of the modified version.
	Paths []PathInfo
	// Stats is the cost of the directed symbolic execution.
	Stats Stats
	// ChangedNodes counts CFG nodes marked changed/added/removed by the
	// differential analysis.
	ChangedNodes int
	// AffectedConditionalLines and AffectedWriteLines are the source lines
	// of the affected sets (ACN and AWN) in the modified version.
	AffectedConditionalLines []int
	AffectedWriteLines       []int

	internal *idise.Result
	config   symexec.Config
	modProg  *ast.Program
	procName string
}

// PathConditions returns the rendered affected path conditions.
func (r *Result) PathConditions() []string {
	out := make([]string, len(r.Paths))
	for i, p := range r.Paths {
		out[i] = p.PathCondition
	}
	return out
}

// Analyze runs the full DiSE pipeline on two versions of procedure procName
// given as source text. Per the paper (§3.1), the two sources are the only
// inputs: no state from previous analysis runs is needed.
func Analyze(baseSrc, modSrc, procName string, opts Options) (*Result, error) {
	base, err := ParseProgram(baseSrc)
	if err != nil {
		return nil, fmt.Errorf("base version: %w", err)
	}
	mod, err := ParseProgram(modSrc)
	if err != nil {
		return nil, fmt.Errorf("modified version: %w", err)
	}
	return analyzePrograms(base, mod, procName, opts)
}

// AnalyzeInterprocedural runs DiSE over a whole multi-procedure program:
// both versions are inlined from the entry procedure (expanding every call,
// see internal/inline) and the intra-procedural pipeline analyzes the
// result. This realizes the paper's §7 future work — changes inside callees
// flow into caller conditionals through parameters and globals. Requires an
// acyclic call graph and single-exit callees.
func AnalyzeInterprocedural(baseSrc, modSrc, entryProc string, opts Options) (*Result, error) {
	base, err := ParseProgram(baseSrc)
	if err != nil {
		return nil, fmt.Errorf("base version: %w", err)
	}
	mod, err := ParseProgram(modSrc)
	if err != nil {
		return nil, fmt.Errorf("modified version: %w", err)
	}
	baseFlat, err := inline.Program(base.AST, entryProc)
	if err != nil {
		return nil, fmt.Errorf("base version: %w", err)
	}
	modFlat, err := inline.Program(mod.AST, entryProc)
	if err != nil {
		return nil, fmt.Errorf("modified version: %w", err)
	}
	return analyzePrograms(&Program{AST: baseFlat}, &Program{AST: modFlat}, entryProc, opts)
}

// InlineProgram expands every call reachable from entryProc and returns the
// single-procedure program as pretty-printed source.
func InlineProgram(src, entryProc string) (string, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return "", err
	}
	flat, err := inline.Program(prog.AST, entryProc)
	if err != nil {
		return "", err
	}
	return ast.Pretty(flat), nil
}

func analyzePrograms(base, mod *Program, procName string, opts Options) (*Result, error) {
	config := opts.engineConfig()
	res, err := idise.AnalyzeOpts(base.AST, mod.AST, procName, config,
		idise.Options{TransitiveWrites: opts.TransitiveWrites})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Stats:                    statsOf(res.Summary.Stats, len(res.Summary.Paths)),
		ChangedNodes:             res.Affected.ChangedNodes,
		AffectedConditionalLines: res.Affected.ACNLines(),
		AffectedWriteLines:       res.Affected.AWNLines(),
		internal:                 res,
		config:                   config,
		modProg:                  mod.AST,
		procName:                 procName,
	}
	for _, p := range res.Summary.Paths {
		out.Paths = append(out.Paths, PathInfo{PathCondition: p.PCString, AssertViolated: p.Err})
	}
	return out, nil
}

// Summary is the outcome of full (traditional) symbolic execution.
type Summary struct {
	Paths []PathInfo
	Stats Stats

	engine  *symexec.Engine
	summary *symexec.Summary
}

// PathConditions returns the rendered path conditions.
func (s *Summary) PathConditions() []string {
	out := make([]string, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = p.PathCondition
	}
	return out
}

// Execute runs full symbolic execution of procedure procName — the paper's
// control technique ("Full Symbc").
func Execute(src, procName string, opts Options) (*Summary, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	engine, err := symexec.New(prog.AST, procName, opts.engineConfig())
	if err != nil {
		return nil, err
	}
	summary := engine.RunFull()
	out := &Summary{engine: engine, summary: summary, Stats: statsOf(summary.Stats, len(summary.Paths))}
	for _, p := range summary.Paths {
		out.Paths = append(out.Paths, PathInfo{PathCondition: p.PCString, AssertViolated: p.Err})
	}
	return out, nil
}

// ExecutionTree renders the symbolic execution tree (paper Fig. 1) of
// procedure procName. Intended for small programs: the tree output grows
// with the number of states.
func ExecutionTree(src, procName string, opts Options) (string, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return "", err
	}
	engine, err := symexec.New(prog.AST, procName, opts.engineConfig())
	if err != nil {
		return "", err
	}
	return engine.BuildTree().Render(), nil
}

// TestCase is a concrete invocation of the procedure under analysis,
// rendered as a call string (paper §5.2).
type TestCase struct {
	Call          string
	PathCondition string
}

// Tests solves the summary's path conditions into concrete test inputs.
func (s *Summary) Tests() []TestCase {
	return convertTests(testgen.NewGenerator(s.engine).Generate(s.summary))
}

// Tests solves the DiSE result's affected path conditions into concrete
// test inputs for the modified version.
func (r *Result) Tests() ([]TestCase, error) {
	engine, err := symexec.New(r.modProg, r.procName, r.config)
	if err != nil {
		return nil, err
	}
	return convertTests(testgen.NewGenerator(engine).Generate(r.internal.Summary)), nil
}

func convertTests(ts []testgen.TestCase) []TestCase {
	out := make([]TestCase, len(ts))
	for i, tc := range ts {
		out[i] = TestCase{Call: tc.Call, PathCondition: tc.PCString}
	}
	return out
}

// Selection splits DiSE-generated tests against an existing suite (paper
// §5.2, Table 3): Selected tests already exist and can be re-used; Added
// tests are new and augment the suite.
type Selection struct {
	Selected []TestCase
	Added    []TestCase
}

// SelectAugment performs test case selection and augmentation by exact
// string comparison of rendered calls, as in the paper.
func SelectAugment(baseSuite, diseTests []TestCase) Selection {
	toInternal := func(ts []TestCase) []testgen.TestCase {
		out := make([]testgen.TestCase, len(ts))
		for i, tc := range ts {
			out[i] = testgen.TestCase{Call: tc.Call, PCString: tc.PathCondition}
		}
		return out
	}
	sel := testgen.SelectAugment(toInternal(baseSuite), toInternal(diseTests))
	return Selection{
		Selected: convertTests(sel.Selected),
		Added:    convertTests(sel.Added),
	}
}

// CFGDot renders the control flow graph of procedure procName in Graphviz
// DOT format (paper Fig. 2(b)).
func CFGDot(src, procName string) (string, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return "", err
	}
	pr := prog.AST.Proc(procName)
	if pr == nil {
		return "", fmt.Errorf("procedure %q not found", procName)
	}
	g := cfg.Build(pr)
	return g.Dot(cfg.DotOptions{Title: procName}), nil
}

// AffectedCFGDot renders the modified version's CFG with affected nodes
// highlighted: affected conditionals in light red, affected writes in light
// blue, like the shading of the paper's Fig. 2(b).
func AffectedCFGDot(baseSrc, modSrc, procName string, opts Options) (string, error) {
	res, err := Analyze(baseSrc, modSrc, procName, opts)
	if err != nil {
		return "", err
	}
	g := res.internal.ModGraph
	highlight := map[int]string{}
	for id := range res.internal.Affected.ACN {
		highlight[id] = "lightcoral"
	}
	for id := range res.internal.Affected.AWN {
		highlight[id] = "lightblue"
	}
	return g.Dot(cfg.DotOptions{Title: procName, Highlight: highlight}), nil
}

// EvaluationArtifacts lists the names of the built-in evaluation artifacts
// (the paper's WBS, ASW and OAE re-creations).
func EvaluationArtifacts() []string {
	var out []string
	for _, a := range artifacts.All() {
		out = append(out, a.Name)
	}
	return out
}

// EvaluationTables regenerates Table 2 and Table 3 of the paper for the
// named artifact ("ASW", "WBS" or "OAE") and returns their rendered forms.
func EvaluationTables(artifact string, opts Options) (table2, table3 string, err error) {
	a, ok := artifacts.ByName(artifact)
	if !ok {
		return "", "", fmt.Errorf("unknown artifact %q (have %v)", artifact, EvaluationArtifacts())
	}
	res, err := evaluation.Run(a, opts.engineConfig())
	if err != nil {
		return "", "", err
	}
	return res.Table2(), res.Table3(), nil
}
