package dise

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dise/internal/cfg"
	"dise/internal/constraint"
	idise "dise/internal/dise"

	// The external-solver and portfolio backends register themselves with
	// the constraint registry, making "smtlib" and "portfolio" valid
	// WithSolverBackend names for every consumer of the facade.
	_ "dise/internal/constraint/portfolio"
	_ "dise/internal/constraint/smtlib"
	"dise/internal/evaluation"
	"dise/internal/inline"
	"dise/internal/lang/ast"
	"dise/internal/solver"
	"dise/internal/sym"
	"dise/internal/symexec"
)

// Analyzer is the reusable, concurrency-safe entry point of the package. It
// is meant to live for the duration of a service: construct one with
// NewAnalyzer, then serve many Analyze/Execute/AnalyzeBatch calls against
// it. All configuration is immutable after construction; per-request state
// (engines, solvers) is private to each call, and the parse/CFG cache is
// internally synchronized — so a single Analyzer may be shared freely across
// goroutines.
//
// Compared with the package-level functions (now deprecated wrappers), an
// Analyzer adds:
//
//   - context support: every entry point takes a context.Context, and
//     cancellation is polled inside the symbolic-execution step loop and the
//     constraint solver's search loop, so a cancelled request stops
//     mid-exploration and returns an *Error with Kind Cancelled;
//   - a parse/CFG cache keyed by source hash: repeated analyses against the
//     same base version — the common CI workload of one base and many
//     candidate patches — skip parsing, type checking and CFG construction;
//   - batching (AnalyzeBatch) over a bounded worker pool, and streaming
//     (AnalyzeStream) of affected path conditions as they are found.
type Analyzer struct {
	conf  analyzerConfig
	cache *programCache
	// solverCache is the shared prefix-result cache of the constraint
	// subsystem: concurrent requests (AnalyzeBatch workers analyzing
	// variants of one base program) reuse each other's solved
	// path-condition prefixes through it.
	solverCache *constraint.PrefixCache
	// runsDone counts completed runs, driving the intern-GC cadence
	// (WithInternGC): one epoch per run, one collection per keep-window.
	runsDone atomic.Uint64
}

// analyzerConfig is the resolved option set of an Analyzer.
type analyzerConfig struct {
	depthBound       int
	intDomain        *[2]int64
	concreteGlobals  bool
	solverNodeBudget int
	transitiveWrites bool
	maxStates        int
	parallelism      int
	cacheCapacity    int
	solverBackend    string
	solverSMT        constraint.SMTOptions
	solverPortfolio  []string
	solverCacheSize  int
	searchStrategy   string
	exploreWorkers   int
	memoNodeBudget   int
	internGCEpochs   int
	cacheBytes       int64
	mergeBound       int
	mergeBudget      int
}

// Option configures an Analyzer (functional options).
type Option func(*analyzerConfig)

// WithDepthBound limits the number of CFG nodes executed on one path
// (loop/recursion bound, paper §2.1). Zero selects the default of 1000.
func WithDepthBound(n int) Option { return func(c *analyzerConfig) { c.depthBound = n } }

// WithIntDomain overrides the solver domain of integer symbolic inputs. The
// default is the Choco-like non-negative range [0, 1e6].
func WithIntDomain(lo, hi int64) Option {
	return func(c *analyzerConfig) { c.intDomain = &[2]int64{lo, hi} }
}

// WithConcreteGlobals makes globals take their declared initializers
// instead of fresh symbolic values.
func WithConcreteGlobals(on bool) Option { return func(c *analyzerConfig) { c.concreteGlobals = on } }

// WithSolverNodeBudget caps constraint-solver search nodes per
// satisfiability check (0 = default). Exhausted budgets are treated as
// unsatisfiable, as SPF does (paper §4.1).
func WithSolverNodeBudget(n int) Option {
	return func(c *analyzerConfig) { c.solverNodeBudget = n }
}

// WithTransitiveWrites enables the write→write dataflow extension to the
// paper's affected-set rules (DESIGN.md §6.4).
func WithTransitiveWrites(on bool) Option {
	return func(c *analyzerConfig) { c.transitiveWrites = on }
}

// WithMaxStates caps the number of states explored per request; a request
// that trips the cap fails with Kind BudgetExhausted. Zero means no cap.
func WithMaxStates(n int) Option { return func(c *analyzerConfig) { c.maxStates = n } }

// WithParallelism bounds the worker pool of AnalyzeBatch. Zero (the
// default) selects GOMAXPROCS workers.
func WithParallelism(n int) Option { return func(c *analyzerConfig) { c.parallelism = n } }

// WithCacheCapacity bounds the parse/CFG cache to n source texts, evicting
// least-recently-used entries. Zero selects the default of 128.
func WithCacheCapacity(n int) Option { return func(c *analyzerConfig) { c.cacheCapacity = n } }

// WithSolverBackend selects the constraint-solving backend by name:
// "interval" (the default incremental interval-propagation adapter),
// "bitvec" (the pure-Go fixed-width bitvector solver with wraparound
// semantics), or "interval-noreuse" (the non-incremental baseline used for
// A/B measurement). An unknown name fails the first analysis with a
// descriptive error. See SolverBackends for the accepted names.
func WithSolverBackend(name string) Option {
	return func(c *analyzerConfig) { c.solverBackend = name }
}

// WithSMTSolver points the "smtlib" backend (and any portfolio containing
// it) at an explicit solver binary instead of PATH discovery. The empty
// path keeps discovery; a missing or broken binary is never an error —
// every affected check degrades to the in-process fallback and is counted
// in the solver stats (ext_unknowns).
func WithSMTSolver(path string) Option {
	return func(c *analyzerConfig) { c.solverSMT.SolverPath = path }
}

// WithSMTOptions replaces the whole external-solver option set of the
// "smtlib" backend — binary, per-check deadline, restart budget and
// backoff, circuit-breaker tuning — for callers that need more than
// WithSMTSolver's path override.
func WithSMTOptions(o constraint.SMTOptions) Option {
	return func(c *analyzerConfig) { c.solverSMT = o }
}

// WithPortfolioMembers selects the member backends the "portfolio"
// meta-backend races on every check. Empty keeps the default member set
// (interval, bitvec, smtlib). Member names are validated on first use.
func WithPortfolioMembers(names ...string) Option {
	return func(c *analyzerConfig) { c.solverPortfolio = append([]string(nil), names...) }
}

// WithSolverCacheCapacity bounds the shared solved-prefix cache of the
// constraint subsystem to n entries (0 selects the default of 8192).
func WithSolverCacheCapacity(n int) Option {
	return func(c *analyzerConfig) { c.solverCacheSize = n }
}

// SolverBackends lists the names accepted by WithSolverBackend (and by the
// -solver flag of cmd/dise).
func SolverBackends() []string { return constraint.Names() }

// WithMemoNodeBudget bounds each version-chain session's memo trie to n
// nodes: after every step, whole cold subtrees (stale first, then least
// hit) are evicted until the trie fits. Evicted conjunctions simply
// re-solve cold if a later version produces them again — results never
// change, only hit rates. Zero (the default) leaves tries unbounded.
func WithMemoNodeBudget(n int) Option {
	return func(c *analyzerConfig) { c.memoNodeBudget = n }
}

// WithInternGC enables epoch-based collection of the global hash-consing
// intern table: the Analyzer advances the interner epoch once per completed
// run and, every keepEpochs runs, drops table entries no run touched for
// keepEpochs epochs (sym.CollectInterned). Collection is invisible to
// results — a collected expression re-interns fresh and every consumer
// compares structurally — it only bounds the table's footprint. Zero (the
// default) disables collection.
func WithInternGC(keepEpochs int) Option {
	return func(c *analyzerConfig) { c.internGCEpochs = keepEpochs }
}

// WithCacheByteBudget bounds the Analyzer's two shared caches — the
// parse/CFG cache and the solved-prefix cache — to approximately n retained
// bytes in total (split evenly between them), on top of their entry-count
// capacities. Zero (the default) applies no byte bound.
func WithCacheByteBudget(n int64) Option {
	return func(c *analyzerConfig) { c.cacheBytes = n }
}

// MergeUnbounded selects unlimited fusion at join points for
// WithStateMerging: every mergeable sibling set is collapsed whole.
const MergeUnbounded = symexec.MergeUnbounded

// WithStateMerging enables bounded state merging: at control-flow join
// points, sibling states whose environments differ only in value bindings
// are fused into one state whose environment maps each divergent name to an
// ite expression and whose path condition factors the siblings' branch
// constraints into a disjunction. This collapses the path explosion of
// independent diamond chains — k sequential diamonds explore O(k) merged
// states instead of O(2^k) paths — at the price of richer (ite/disjunction)
// constraints per solver call.
//
// bound caps how many sibling states one fusion may absorb: 0 disables
// merging (the default), MergeUnbounded fuses every mergeable set whole, and
// bound >= 2 fuses in chunks of at most bound states. A bound of 1 (a
// "merge" of one state) is rejected with Kind InvalidConfig.
//
// Merged runs are verdict-equivalent to unmerged ones — identical affected
// branch coverage and identical per-branch test-generation feasibility —
// but not byte-identical: path conditions arrive factored through joins, so
// reported path sets are coarser. State merging is incompatible with
// version-chain sessions (NewSession), whose memo trie is keyed by per-path
// conjunctions; an Analyzer configured with both fails with Kind
// InvalidConfig.
func WithStateMerging(bound int) Option {
	return func(c *analyzerConfig) { c.mergeBound = bound }
}

// WithMergeBudget caps how many fusion operations one request may perform
// under WithStateMerging (0 = unlimited). Once the budget is spent the run
// degenerates gracefully to per-path exploration for the remaining states —
// coverage is unaffected, only how much of the explosion is collapsed.
func WithMergeBudget(n int) Option {
	return func(c *analyzerConfig) { c.mergeBudget = n }
}

// WithSearchStrategy selects the exploration scheduler's search strategy by
// name: "dfs" (the default depth-first order), "bfs" (breadth-first), or
// "directed" (priority order by CFG distance to the nearest unexplored
// affected node — for full symbolic execution, to the procedure's end node).
// Every strategy yields the same affected-path set; for DiSE, the pruning
// decisions are always committed in depth-first order (the order the paper's
// Theorem 3.10 guarantee is stated over), so a non-DFS strategy reorders
// speculative state expansion, not the reported paths. An unknown name fails
// the first analysis with Kind InvalidConfig. See SearchStrategies.
func WithSearchStrategy(name string) Option {
	return func(c *analyzerConfig) { c.searchStrategy = name }
}

// WithExploreParallelism sets the number of workers draining a single
// request's exploration frontier (intra-query parallelism) — distinct from
// WithParallelism, which bounds how many requests AnalyzeBatch runs at once.
// Each worker owns its own constraint-solver context; all workers share the
// analyzer's solved-prefix cache. Zero or one means sequential exploration;
// values outside [0, symexec.MaxExploreParallelism] fail the first analysis
// with Kind InvalidConfig.
func WithExploreParallelism(n int) Option {
	return func(c *analyzerConfig) { c.exploreWorkers = n }
}

// SearchStrategies lists the names accepted by WithSearchStrategy (and by
// the -strategy flag of cmd/dise and cmd/symexec), default first.
func SearchStrategies() []string { return symexec.Strategies() }

// WithOptions applies a legacy Options struct, for callers migrating from
// the package-level API.
func WithOptions(o Options) Option {
	return func(c *analyzerConfig) {
		c.depthBound = o.DepthBound
		c.intDomain = o.IntDomain
		c.concreteGlobals = o.ConcreteGlobals
		c.solverNodeBudget = o.SolverNodeBudget
		c.transitiveWrites = o.TransitiveWrites
	}
}

// NewAnalyzer builds an Analyzer from functional options.
func NewAnalyzer(opts ...Option) *Analyzer {
	var conf analyzerConfig
	for _, o := range opts {
		o(&conf)
	}
	if conf.cacheCapacity <= 0 {
		conf.cacheCapacity = 128
	}
	var parseBytes, prefixBytes int64
	if conf.cacheBytes > 0 {
		parseBytes = conf.cacheBytes / 2
		prefixBytes = conf.cacheBytes - parseBytes
	}
	return &Analyzer{
		conf:        conf,
		cache:       newProgramCache(conf.cacheCapacity, parseBytes),
		solverCache: constraint.NewPrefixCacheBytes(conf.solverCacheSize, prefixBytes),
	}
}

// noteRunDone ticks the intern-GC clock after a completed analysis run:
// the epoch advances every run, and a collection sweeps entries older than
// the keep window every keepEpochs runs. A no-op unless WithInternGC is set.
func (a *Analyzer) noteRunDone() {
	keep := a.conf.internGCEpochs
	if keep <= 0 {
		return
	}
	sym.AdvanceEpoch()
	if a.runsDone.Add(1)%uint64(keep) == 0 {
		sym.CollectInterned(keep)
	}
}

// CacheStats reports hit/miss counters of the parse/CFG cache.
func (a *Analyzer) CacheStats() CacheStats { return a.cache.stats() }

// SolverCacheStats reports hit/miss counters of the shared solved-prefix
// cache of the constraint subsystem.
func (a *Analyzer) SolverCacheStats() constraint.CacheStats { return a.solverCache.Stats() }

// engineConfig builds the per-request engine configuration. The context's
// Err is polled once per executed CFG node and once per solver search node,
// which is what makes cancellation take effect within one scheduling quantum
// of the step loop.
func (a *Analyzer) engineConfig(ctx context.Context) symexec.Config {
	cfg := symexec.Config{
		DepthBound:         a.conf.depthBound,
		MaxStates:          a.conf.maxStates,
		ConcreteGlobals:    a.conf.concreteGlobals,
		SolverOptions:      solver.Options{NodeBudget: a.conf.solverNodeBudget},
		SolverBackend:      a.conf.solverBackend,
		SolverSMT:          a.conf.solverSMT,
		SolverPortfolio:    a.conf.solverPortfolio,
		SolverCache:        a.solverCache,
		Strategy:           a.conf.searchStrategy,
		ExploreParallelism: a.conf.exploreWorkers,
		MergeBound:         a.conf.mergeBound,
		MergeBudget:        a.conf.mergeBudget,
	}
	if a.conf.intDomain != nil {
		cfg.IntDomain = solver.Interval{Lo: a.conf.intDomain[0], Hi: a.conf.intDomain[1]}
	}
	if ctx != nil && ctx.Done() != nil {
		cfg.Interrupt = ctx.Err
		cfg.SolverOptions.Interrupt = ctx.Err
	}
	return cfg
}

// resultConfig is the engine configuration stored on results for later test
// generation — identical to the request's, minus its context hooks.
func (a *Analyzer) resultConfig() symexec.Config { return a.engineConfig(context.Background()) }

// Request describes one differential analysis.
type Request struct {
	// BaseSrc and ModSrc are the source texts of the two program versions.
	BaseSrc, ModSrc string
	// Proc is the procedure under analysis (for inter-procedural requests,
	// the entry procedure).
	Proc string
	// Interprocedural inlines every call reachable from Proc in both
	// versions before the differential analysis (paper §7, realized via the
	// inline package). Requires an acyclic call graph and single-exit
	// callees.
	Interprocedural bool
	// MergeBound, when non-zero, overrides the Analyzer's WithStateMerging
	// bound for this request alone (MergeUnbounded = unlimited fusion at
	// joins). It lets a service expose state merging per request while
	// sharing one Analyzer — and one parse/CFG and solved-prefix cache —
	// across merged and unmerged traffic. The bound is validated like the
	// option: 1 or values below MergeUnbounded fail with Kind InvalidConfig.
	MergeBound int
}

// Analyze runs the full DiSE pipeline — diff, affected locations, directed
// symbolic execution — for one request. On failure it returns an *Error
// whose Kind distinguishes bad input (ParseError, TypeError, UnknownProc)
// from operational outcomes (Cancelled, BudgetExhausted).
func (a *Analyzer) Analyze(ctx context.Context, req Request) (*Result, error) {
	return a.analyze(ctx, req, nil)
}

// AnalyzeStream is Analyze, but yield receives every affected path
// condition as the directed search finds it, instead of only at the end.
// Returning false from yield stops the search; the returned Result then
// holds the paths delivered so far. Yield is called from the request's own
// goroutine, never concurrently.
func (a *Analyzer) AnalyzeStream(ctx context.Context, req Request, yield func(PathInfo) bool) (*Result, error) {
	return a.analyze(ctx, req, yield)
}

// version is one resolved program version: parsed, type-checked, procedure
// validated, and (for the intra-procedural case) the cached precomputed CFG.
// For inter-procedural requests prog/proc are the per-request inlined forms
// and the graph is built fresh (inlining is cheap next to the exploration it
// feeds, and the cache's unit is a source text).
type version struct {
	prog  *ast.Program
	proc  *ast.Procedure
	graph *cfg.Graph
}

// resolveVersion runs one source text through the parse/CFG cache and
// validates the procedure under analysis. stage labels errors ("base
// version" / "modified version" / ""). precompute forces every graph
// analysis up front, which a version an engine will execute needs (forks
// share the graph under parallel exploration, and the memo needs stable
// keys); the base side of a diff only reads the lazily-computed
// reachability analyses from a single goroutine and skips that cost. Only
// the per-request inter-procedural graphs are affected — cached graphs are
// always precomputed before they are shared.
func (a *Analyzer) resolveVersion(src, procName, stage string, interprocedural, precompute bool) (version, error) {
	entry, err := a.cache.get(src)
	if err != nil {
		return version{}, errKind(ParseError, stage, err)
	}
	prog := entry.prog
	if prog.Proc(procName) == nil {
		return version{}, &Error{Kind: UnknownProc, Stage: stage, Err: errProcNotFound(procName)}
	}
	if interprocedural {
		flat, err := inline.Program(prog, procName)
		if err != nil {
			return version{}, errKind(UnknownProc, stage, err)
		}
		g := cfg.Build(flat.Proc(procName))
		if precompute {
			g.Precompute()
		}
		return version{prog: flat, proc: flat.Proc(procName), graph: g}, nil
	}
	proc := prog.Proc(procName)
	// Validate before building CFGs: cfg.Build rejects unexpanded calls.
	if err := symexec.CheckNoCalls(proc); err != nil {
		return version{}, &Error{Kind: TypeError, Stage: stage, Err: err}
	}
	return version{prog: prog, proc: proc, graph: entry.graph(proc)}, nil
}

// runJob executes a prepared directed-analysis job and converts the outcome
// into the public Result, classifying interrupts and budget trips.
// resultCfg is the context-free engine configuration the run actually used
// (per-request overrides like Request.MergeBound included); it feeds the
// stats echo and later test generation.
func (a *Analyzer) runJob(job idise.Job, resultCfg symexec.Config, modProg *ast.Program, procName string) (*Result, error) {
	defer a.noteRunDone()
	res := idise.Run(job)
	if err := job.Engine.InterruptErr(); err != nil {
		return nil, &Error{Kind: Cancelled, Err: err}
	}
	if res.Summary.Stats.MaxStatesHit {
		return nil, &Error{Kind: BudgetExhausted}
	}
	out := &Result{
		Stats:                    statsOf(res.Summary.Stats, len(res.Summary.Paths), resultCfg),
		ChangedNodes:             res.Affected.ChangedNodes,
		AffectedConditionalLines: res.Affected.ACNLines(),
		AffectedWriteLines:       res.Affected.AWNLines(),
		internal:                 res,
		config:                   resultCfg,
		modProg:                  modProg,
		procName:                 procName,
	}
	for _, p := range res.Summary.Paths {
		out.Paths = append(out.Paths, PathInfo{PathCondition: p.PCString, AssertViolated: p.Err})
	}
	return out, nil
}

func (a *Analyzer) analyze(ctx context.Context, req Request, yield func(PathInfo) bool) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, &Error{Kind: Cancelled, Err: err}
	}

	base, err := a.resolveVersion(req.BaseSrc, req.Proc, "base version", req.Interprocedural, false)
	if err != nil {
		return nil, err
	}
	mod, err := a.resolveVersion(req.ModSrc, req.Proc, "modified version", req.Interprocedural, true)
	if err != nil {
		return nil, err
	}

	cfgc := a.engineConfig(ctx)
	resultCfg := a.resultConfig()
	if req.MergeBound != 0 {
		cfgc.MergeBound = req.MergeBound
		resultCfg.MergeBound = req.MergeBound
	}
	// CheckNoCalls already validated the procedure, so a construction
	// failure here means the engine configuration itself is unusable
	// (e.g. an unknown solver backend name or a bad merge bound).
	engine, err := symexec.NewPrepared(mod.prog, mod.proc, mod.graph, cfgc)
	if err != nil {
		return nil, errKind(InvalidConfig, "", err)
	}
	var onPath func(symexec.Path) bool
	if yield != nil {
		onPath = func(p symexec.Path) bool {
			return yield(PathInfo{PathCondition: p.PCString, AssertViolated: p.Err})
		}
	}
	return a.runJob(idise.Job{
		BaseProc:  base.proc,
		BaseGraph: base.graph,
		Engine:    engine,
		Opts:      idise.Options{TransitiveWrites: a.conf.transitiveWrites},
		OnPath:    onPath,
	}, resultCfg, mod.prog, req.Proc)
}

// AnalyzeInterprocedural runs DiSE over a whole multi-procedure program:
// both versions are inlined from the entry procedure and the
// intra-procedural pipeline analyzes the result (paper §7).
func (a *Analyzer) AnalyzeInterprocedural(ctx context.Context, baseSrc, modSrc, entryProc string) (*Result, error) {
	return a.Analyze(ctx, Request{BaseSrc: baseSrc, ModSrc: modSrc, Proc: entryProc, Interprocedural: true})
}

// BatchResult pairs one request of an AnalyzeBatch call with its outcome.
// Exactly one of Result and Err is non-nil.
type BatchResult struct {
	// Index is the position of the request in the batch; results are also
	// returned in request order, so out[i].Index == i.
	Index  int
	Result *Result
	Err    error
}

// AnalyzeBatch analyzes every request, fanning the work across a bounded
// worker pool (WithParallelism). Results are in request order and each
// request fails independently; a cancelled context makes the remaining
// requests fail fast with Kind Cancelled. Because requests in one batch
// typically share a base version, the parse/CFG cache makes the fan-out
// cheap: the base is parsed once, not once per worker.
func (a *Analyzer) AnalyzeBatch(ctx context.Context, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	workers := a.conf.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := a.Analyze(ctx, reqs[i])
				out[i] = BatchResult{Index: i, Result: res, Err: err}
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Execute runs full (traditional) symbolic execution of procedure procName
// — the control technique of the paper's evaluation ("Full Symbc").
func (a *Analyzer) Execute(ctx context.Context, src, procName string) (*Summary, error) {
	if err := ctx.Err(); err != nil {
		return nil, &Error{Kind: Cancelled, Err: err}
	}
	engine, err := a.prepareEngine(ctx, src, procName)
	if err != nil {
		return nil, err
	}
	defer a.noteRunDone()
	summary := engine.RunFull()
	if err := engine.InterruptErr(); err != nil {
		return nil, &Error{Kind: Cancelled, Err: err}
	}
	if summary.Stats.MaxStatesHit && a.conf.maxStates > 0 {
		return nil, &Error{Kind: BudgetExhausted}
	}
	out := &Summary{engine: engine, summary: summary, Stats: statsOf(summary.Stats, len(summary.Paths), a.resultConfig())}
	for _, p := range summary.Paths {
		out.Paths = append(out.Paths, PathInfo{PathCondition: p.PCString, AssertViolated: p.Err})
	}
	return out, nil
}

// ExecutionTree renders the symbolic execution tree (paper Fig. 1) of
// procedure procName. Intended for small programs: the tree output grows
// with the number of states.
func (a *Analyzer) ExecutionTree(ctx context.Context, src, procName string) (string, error) {
	engine, err := a.prepareEngine(ctx, src, procName)
	if err != nil {
		return "", err
	}
	tree := engine.BuildTree()
	if err := engine.InterruptErr(); err != nil {
		return "", &Error{Kind: Cancelled, Err: err}
	}
	return tree.Render(), nil
}

// prepareEngine resolves src and procName through the cache into a ready
// engine.
func (a *Analyzer) prepareEngine(ctx context.Context, src, procName string) (*symexec.Engine, error) {
	entry, err := a.cache.get(src)
	if err != nil {
		return nil, errKind(ParseError, "", err)
	}
	proc := entry.prog.Proc(procName)
	if proc == nil {
		return nil, &Error{Kind: UnknownProc, Err: errProcNotFound(procName)}
	}
	if err := symexec.CheckNoCalls(proc); err != nil {
		return nil, &Error{Kind: TypeError, Err: err}
	}
	engine, err := symexec.NewPrepared(entry.prog, proc, entry.graph(proc), a.engineConfig(ctx))
	if err != nil {
		return nil, errKind(InvalidConfig, "", err)
	}
	return engine, nil
}

// CFGDot renders the control flow graph of procedure procName in Graphviz
// DOT format (paper Fig. 2(b)).
func (a *Analyzer) CFGDot(src, procName string) (string, error) {
	entry, err := a.cache.get(src)
	if err != nil {
		return "", errKind(ParseError, "", err)
	}
	proc := entry.prog.Proc(procName)
	if proc == nil {
		return "", &Error{Kind: UnknownProc, Err: errProcNotFound(procName)}
	}
	return entry.graph(proc).Dot(cfg.DotOptions{Title: procName}), nil
}

// AffectedCFGDot renders the modified version's CFG with affected nodes
// highlighted: affected conditionals in light red, affected writes in light
// blue, like the shading of the paper's Fig. 2(b).
func (a *Analyzer) AffectedCFGDot(ctx context.Context, baseSrc, modSrc, procName string) (string, error) {
	res, err := a.Analyze(ctx, Request{BaseSrc: baseSrc, ModSrc: modSrc, Proc: procName})
	if err != nil {
		return "", err
	}
	g := res.internal.ModGraph
	highlight := map[int]string{}
	for id := range res.internal.Affected.ACN {
		highlight[id] = "lightcoral"
	}
	for id := range res.internal.Affected.AWN {
		highlight[id] = "lightblue"
	}
	return g.Dot(cfg.DotOptions{Title: procName, Highlight: highlight}), nil
}

// EvaluationTables regenerates Table 2 and Table 3 of the paper for the
// named artifact ("ASW", "WBS" or "OAE"). The context cancels the underlying
// symbolic execution runs.
func (a *Analyzer) EvaluationTables(ctx context.Context, artifact string) (table2, table3 string, err error) {
	art, ok := artifactByName(artifact)
	if !ok {
		return "", "", errUnknownArtifact(artifact)
	}
	res, err := evaluation.Run(art, a.engineConfig(ctx))
	if err != nil {
		return "", "", err
	}
	if err := ctx.Err(); err != nil {
		return "", "", &Error{Kind: Cancelled, Err: err}
	}
	return res.Table2(), res.Table3(), nil
}

// errProcNotFound is the shared cause message for UnknownProc errors.
func errProcNotFound(name string) error { return &procNotFoundError{name} }

type procNotFoundError struct{ name string }

func (e *procNotFoundError) Error() string { return "procedure \"" + e.name + "\" not found" }
