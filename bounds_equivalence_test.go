package dise

import (
	"context"
	"reflect"
	"testing"

	"dise/internal/artifacts"
)

// TestGenerousBoundsMatchUnbounded pins the conservative-defaults contract
// of the memory bounds: with generous budgets (nothing ever evicted or
// collected), a warm version-chain session behaves byte-identically to an
// unbounded one — not just the answers, the memo reuse itself (replay and
// hit counts), because a bound that never binds must not perturb the warm
// path at all.
func TestGenerousBoundsMatchUnbounded(t *testing.T) {
	ctx := context.Background()
	for _, art := range artifacts.All() {
		art := art
		t.Run(art.Name, func(t *testing.T) {
			t.Parallel()
			unbounded := NewAnalyzer()
			bounded := NewAnalyzer(
				WithMemoNodeBudget(1<<20),
				WithInternGC(1<<10),
				WithCacheByteBudget(64<<20),
			)
			srcs := chainSources(art)
			sessU, err := unbounded.NewSession(ctx, SessionRequest{InitialSrc: srcs[0], Proc: art.Proc})
			if err != nil {
				t.Fatal(err)
			}
			sessB, err := bounded.NewSession(ctx, SessionRequest{InitialSrc: srcs[0], Proc: art.Proc})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(srcs); i++ {
				resU, err := sessU.Advance(ctx, srcs[i])
				if err != nil {
					t.Fatalf("step %d: unbounded Advance: %v", i, err)
				}
				resB, err := sessB.Advance(ctx, srcs[i])
				if err != nil {
					t.Fatalf("step %d: bounded Advance: %v", i, err)
				}
				if got, want := comparable(resB), comparable(resU); !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d (%s): generous bounds diverged from unbounded\nbounded:   %+v\nunbounded: %+v",
						i, art.Versions[i-1].Name, got, want)
				}
				mB, mU := resB.Stats.Memo, resU.Stats.Memo
				if mB.StatesReplayed != mU.StatesReplayed || mB.MemoHits != mU.MemoHits {
					t.Fatalf("step %d (%s): generous bounds perturbed the warm path: bounded replayed %d / hit %d, unbounded replayed %d / hit %d",
						i, art.Versions[i-1].Name, mB.StatesReplayed, mB.MemoHits, mU.StatesReplayed, mU.MemoHits)
				}
				if mB.NodesEvicted != 0 {
					t.Fatalf("step %d: generous node budget evicted %d nodes", i, mB.NodesEvicted)
				}
			}
		})
	}
}

// TestTightBoundsMatchColdAnalysis pins the correctness half of eviction:
// with budgets tight enough to evict constantly (an 8-node trie budget,
// intern collection after every run, a 4KiB shared cache ceiling), a warm
// session's answers stay byte-identical to a cold pairwise Analyze on a
// fresh unbounded Analyzer. Eviction may only cost hit rate — an evicted
// subtree means a cold re-solve, never a wrong replay.
func TestTightBoundsMatchColdAnalysis(t *testing.T) {
	ctx := context.Background()
	for _, art := range artifacts.All() {
		art := art
		t.Run(art.Name, func(t *testing.T) {
			t.Parallel()
			warm := NewAnalyzer(
				WithMemoNodeBudget(8),
				WithInternGC(1),
				WithCacheByteBudget(4096),
			)
			cold := NewAnalyzer()
			srcs := chainSources(art)
			sess, err := warm.NewSession(ctx, SessionRequest{InitialSrc: srcs[0], Proc: art.Proc})
			if err != nil {
				t.Fatal(err)
			}
			evicted := 0
			for i := 1; i < len(srcs); i++ {
				warmRes, err := sess.Advance(ctx, srcs[i])
				if err != nil {
					t.Fatalf("step %d: bounded Advance: %v", i, err)
				}
				coldRes, err := cold.Analyze(ctx, Request{BaseSrc: srcs[i-1], ModSrc: srcs[i], Proc: art.Proc})
				if err != nil {
					t.Fatalf("step %d: cold Analyze: %v", i, err)
				}
				if got, want := comparable(warmRes), comparable(coldRes); !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d (%s): tightly bounded session diverged from cold analysis\nbounded: %+v\ncold:    %+v",
						i, art.Versions[i-1].Name, got, want)
				}
				evicted += warmRes.Stats.Memo.NodesEvicted
				if n := warmRes.Stats.Memo.TrieNodes; n > 8 {
					t.Fatalf("step %d: trie holds %d nodes past the 8-node budget", i, n)
				}
			}
			// The bounds must actually have been binding, or this test proves
			// nothing about eviction.
			if evicted == 0 {
				t.Fatalf("8-node budget never evicted over %d steps", len(srcs)-1)
			}
		})
	}
}
