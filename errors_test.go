package dise

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestErrorSentinels pins the errors.Is contract of the kind sentinels: a
// wrapped *Error matches the sentinel of its kind (stage and cause are
// irrelevant) and no other, which is what lets service handlers map kinds to
// HTTP status codes without type switches.
func TestErrorSentinels(t *testing.T) {
	sentinels := map[ErrorKind]error{
		ParseError:      ErrParse,
		TypeError:       ErrType,
		UnknownProc:     ErrUnknownProc,
		Cancelled:       ErrCancelled,
		BudgetExhausted: ErrBudgetExhausted,
		InvalidConfig:   ErrInvalidConfig,
	}
	for kind, sentinel := range sentinels {
		err := fmt.Errorf("handler wrapped: %w",
			&Error{Kind: kind, Stage: "base version", Err: errors.New("cause")})
		if !errors.Is(err, sentinel) {
			t.Errorf("kind %v: errors.Is(err, sentinel) = false, want true", kind)
		}
		for other, otherSentinel := range sentinels {
			if other != kind && errors.Is(err, otherSentinel) {
				t.Errorf("kind %v: errors.Is matched foreign sentinel %v", kind, other)
			}
		}
		if got := KindOf(err); got != kind {
			t.Errorf("KindOf = %v, want %v", got, kind)
		}
	}
	if KindOf(nil) != 0 {
		t.Errorf("KindOf(nil) = %v, want 0", KindOf(nil))
	}
	if KindOf(errors.New("plain")) != 0 {
		t.Errorf("KindOf(plain) = %v, want 0", KindOf(errors.New("plain")))
	}
}

// TestErrorSentinelsEndToEnd checks the sentinels against errors produced by
// the real API surface, not hand-built values.
func TestErrorSentinelsEndToEnd(t *testing.T) {
	a := NewAnalyzer()
	_, err := a.Analyze(context.Background(), Request{BaseSrc: "proc p(", ModSrc: "proc p(", Proc: "p"})
	if !errors.Is(err, ErrParse) {
		t.Fatalf("parse failure: errors.Is(err, ErrParse) = false; err = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = a.Analyze(ctx, Request{BaseSrc: "proc p(int x) {}", ModSrc: "proc p(int x) {}", Proc: "p"})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled context: errors.Is(err, ErrCancelled) = false; err = %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: cause chain lost context.Canceled; err = %v", err)
	}
}

// TestErrorKindCodes pins the machine-readable codes used in JSON error
// envelopes.
func TestErrorKindCodes(t *testing.T) {
	want := map[ErrorKind]string{
		ParseError:      "parse_error",
		TypeError:       "type_error",
		UnknownProc:     "unknown_proc",
		Cancelled:       "cancelled",
		BudgetExhausted: "budget_exhausted",
		InvalidConfig:   "invalid_config",
	}
	for kind, code := range want {
		if got := kind.Code(); got != code {
			t.Errorf("%v.Code() = %q, want %q", kind, got, code)
		}
	}
}
