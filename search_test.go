package dise

// Facade-level coverage of the exploration scheduler: strategy/parallelism
// options, error contract for unknown strategies, streaming under parallel
// exploration, and the stats echo.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"dise/internal/artifacts"
)

func TestUnknownSearchStrategyError(t *testing.T) {
	const src = "proc p(int x) { y = x; }"
	a := NewAnalyzer(WithSearchStrategy("best-first"))
	var de *Error
	if _, err := a.Analyze(context.Background(), Request{BaseSrc: src, ModSrc: src, Proc: "p"}); !errors.As(err, &de) || de.Kind != InvalidConfig {
		t.Fatalf("Analyze with unknown strategy: err = %v, want *Error{Kind: InvalidConfig}", err)
	}
	if _, err := a.Execute(context.Background(), src, "p"); !errors.As(err, &de) || de.Kind != InvalidConfig {
		t.Fatalf("Execute with unknown strategy: err = %v, want *Error{Kind: InvalidConfig}", err)
	}
}

func TestSearchStrategiesListed(t *testing.T) {
	names := SearchStrategies()
	if len(names) < 3 || names[0] != "dfs" {
		t.Fatalf("SearchStrategies() = %v, want dfs first with bfs and directed present", names)
	}
}

// TestAnalyzeStrategyParallelismIdenticalResults is the facade half of the
// equivalence gate: every strategy × parallelism combination reports the
// same affected path conditions, in the same order, with the same committed
// exploration counters.
func TestAnalyzeStrategyParallelismIdenticalResults(t *testing.T) {
	a, _ := artifacts.ByName("ASW")
	v, _ := a.Find("v6")
	req := Request{BaseSrc: a.Base, ModSrc: a.SourceFor(v), Proc: a.Proc}
	ref, err := NewAnalyzer().Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range SearchStrategies() {
		for _, par := range []int{1, 4} {
			an := NewAnalyzer(WithSearchStrategy(strategy), WithExploreParallelism(par))
			res, err := an.Analyze(context.Background(), req)
			if err != nil {
				t.Fatalf("%s/par%d: %v", strategy, par, err)
			}
			if !reflect.DeepEqual(res.PathConditions(), ref.PathConditions()) {
				t.Errorf("%s/par%d: path conditions differ from default run", strategy, par)
			}
			if res.Stats.StatesExplored != ref.Stats.StatesExplored {
				t.Errorf("%s/par%d: states explored = %d, want %d",
					strategy, par, res.Stats.StatesExplored, ref.Stats.StatesExplored)
			}
			if res.Stats.SearchStrategy != strategy || res.Stats.ExploreParallelism != par {
				t.Errorf("%s/par%d: stats echo %q/%d", strategy, par,
					res.Stats.SearchStrategy, res.Stats.ExploreParallelism)
			}
		}
	}
}

// TestExecuteParallelMatchesSequential covers full symbolic execution — the
// workload parallel exploration is built for — on the widest artifact
// version available in a unit test: the paths must be identical (in
// canonical order) to the sequential run.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	a, _ := artifacts.ByName("WBS")
	seq, err := NewAnalyzer().Execute(context.Background(), a.Base, a.Proc)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewAnalyzer(WithExploreParallelism(4)).Execute(context.Background(), a.Base, a.Proc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.PathConditions(), seq.PathConditions()) {
		t.Error("parallel full SE must emit the sequential (canonical) path order")
	}
}

// TestAnalyzeStreamEarlyStopParallel pins that a streaming consumer can
// stop a parallel exploration: the committed walk halts, the speculative
// workers drain, and the call returns without deadlock.
func TestAnalyzeStreamEarlyStopParallel(t *testing.T) {
	a, _ := artifacts.ByName("OAE")
	v := a.Versions[0]
	an := NewAnalyzer(WithExploreParallelism(4))
	delivered := 0
	res, err := an.AnalyzeStream(context.Background(),
		Request{BaseSrc: a.Base, ModSrc: a.SourceFor(v), Proc: a.Proc},
		func(PathInfo) bool {
			delivered++
			return delivered < 3
		})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 3 {
		t.Fatalf("delivered = %d, want 3 (stop after third path)", delivered)
	}
	if len(res.Paths) != 3 {
		t.Fatalf("summary holds %d paths, want the 3 delivered before the stop", len(res.Paths))
	}
}

// TestCancellationParallelExploration verifies context cancellation reaches
// every exploration worker: a cancelled parallel request fails with Kind
// Cancelled instead of completing.
func TestCancellationParallelExploration(t *testing.T) {
	a, _ := artifacts.ByName("OAE")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	an := NewAnalyzer(WithExploreParallelism(4))
	_, err := an.Execute(ctx, a.Base, a.Proc)
	var de *Error
	if !errors.As(err, &de) || de.Kind != Cancelled {
		t.Fatalf("err = %v, want *Error{Kind: Cancelled}", err)
	}
}
