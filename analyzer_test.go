package dise

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dise/internal/artifacts"
)

// wideArtifact returns the OAE artifact: the widest built-in workload
// (9216 feasible paths), used where tests need an exploration that takes
// long enough to cancel mid-flight.
func wideArtifact(t testing.TB) (base string, mod string, proc string) {
	t.Helper()
	a, ok := artifacts.ByName("OAE")
	if !ok {
		t.Fatal("OAE artifact missing")
	}
	v, ok := a.Find("v1")
	if !ok {
		t.Fatal("OAE v1 missing")
	}
	return a.Base, a.SourceFor(v), a.Proc
}

func TestAnalyzerMatchesDeprecatedAPI(t *testing.T) {
	a := NewAnalyzer()
	got, err := a.Analyze(context.Background(), Request{BaseSrc: baseUpdate, ModSrc: modUpdate, Proc: "update"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(baseUpdate, modUpdate, "update", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gs, ws := strings.Join(got.PathConditions(), "\n"), strings.Join(want.PathConditions(), "\n"); gs != ws {
		t.Errorf("Analyzer paths:\n%s\nwrapper paths:\n%s", gs, ws)
	}
	if got.ChangedNodes != want.ChangedNodes {
		t.Errorf("changed nodes: %d vs %d", got.ChangedNodes, want.ChangedNodes)
	}
}

func TestAnalyzerErrorKinds(t *testing.T) {
	a := NewAnalyzer()
	ctx := context.Background()

	cases := []struct {
		name  string
		req   Request
		kind  ErrorKind
		stage string
	}{
		{"base parse", Request{BaseSrc: "proc p( {", ModSrc: baseUpdate, Proc: "update"}, ParseError, "base version"},
		{"mod parse", Request{BaseSrc: baseUpdate, ModSrc: "proc p( {", Proc: "update"}, ParseError, "modified version"},
		{"base type", Request{BaseSrc: "proc p() { x = y; }", ModSrc: baseUpdate, Proc: "update"}, TypeError, "base version"},
		{"unknown proc", Request{BaseSrc: baseUpdate, ModSrc: modUpdate, Proc: "ghost"}, UnknownProc, "base version"},
	}
	for _, tc := range cases {
		_, err := a.Analyze(ctx, tc.req)
		var e *Error
		if !errors.As(err, &e) {
			t.Errorf("%s: error %v is not *dise.Error", tc.name, err)
			continue
		}
		if e.Kind != tc.kind || e.Stage != tc.stage {
			t.Errorf("%s: got kind=%v stage=%q, want kind=%v stage=%q", tc.name, e.Kind, e.Stage, tc.kind, tc.stage)
		}
	}

	// Execute classifies too.
	if _, err := a.Execute(ctx, baseUpdate, "ghost"); !errors.Is(err, &Error{Kind: UnknownProc}) {
		t.Errorf("Execute unknown proc: %v", err)
	}
}

func TestAnalyzerBudgetExhausted(t *testing.T) {
	base, mod, proc := wideArtifact(t)
	a := NewAnalyzer(WithMaxStates(50))
	_, err := a.Analyze(context.Background(), Request{BaseSrc: base, ModSrc: mod, Proc: proc})
	var e *Error
	if !errors.As(err, &e) || e.Kind != BudgetExhausted {
		t.Fatalf("want BudgetExhausted, got %v", err)
	}
	if _, err := a.Execute(context.Background(), base, proc); !errors.Is(err, &Error{Kind: BudgetExhausted}) {
		t.Fatalf("Execute: want BudgetExhausted, got %v", err)
	}
}

func TestAnalyzerCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := NewAnalyzer()
	_, err := a.Analyze(ctx, Request{BaseSrc: baseUpdate, ModSrc: modUpdate, Proc: "update"})
	var e *Error
	if !errors.As(err, &e) || e.Kind != Cancelled {
		t.Fatalf("want Cancelled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Cancelled error must unwrap to context.Canceled, got %v", err)
	}
}

// TestAnalyzerCancelMidSearch checks the acceptance criterion for
// cancellation: a context cancelled while a deep exploration is running
// aborts it within one scheduling quantum of the step loop, i.e. orders of
// magnitude before the exploration would have finished (~0.5s for the OAE
// artifact's 9216 paths).
func TestAnalyzerCancelMidSearch(t *testing.T) {
	base, mod, proc := wideArtifact(t)
	a := NewAnalyzer()

	for _, mode := range []string{"Execute", "Analyze"} {
		t.Run(mode, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(10 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			var err error
			if mode == "Execute" {
				_, err = a.Execute(ctx, mod, proc)
			} else {
				_, err = a.Analyze(ctx, Request{BaseSrc: base, ModSrc: mod, Proc: proc})
			}
			elapsed := time.Since(start)
			var e *Error
			if !errors.As(err, &e) || e.Kind != Cancelled {
				t.Fatalf("want Cancelled, got %v (after %v)", err, elapsed)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("must unwrap to context.Canceled: %v", err)
			}
			// The full exploration takes hundreds of ms; a prompt abort
			// returns well under that. Generous bound to stay robust on slow
			// CI machines.
			if elapsed > 250*time.Millisecond {
				t.Errorf("cancellation took %v; want prompt abort", elapsed)
			}
		})
	}
}

func TestAnalyzerDeadline(t *testing.T) {
	base, mod, proc := wideArtifact(t)
	a := NewAnalyzer()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := a.Analyze(ctx, Request{BaseSrc: base, ModSrc: mod, Proc: proc})
	var e *Error
	if !errors.As(err, &e) || e.Kind != Cancelled {
		t.Fatalf("want Cancelled on deadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("must unwrap to context.DeadlineExceeded: %v", err)
	}
}

// TestAnalyzeBatchMatchesSequential checks the acceptance criterion for
// batching: AnalyzeBatch with parallelism >= 4 returns results identical to
// sequential runs, in request order.
func TestAnalyzeBatchMatchesSequential(t *testing.T) {
	a, _ := artifacts.ByName("WBS")
	var reqs []Request
	for _, v := range a.Versions {
		reqs = append(reqs, Request{BaseSrc: a.Base, ModSrc: a.SourceFor(v), Proc: a.Proc})
	}
	// One request fails on purpose: batch entries fail independently.
	reqs = append(reqs, Request{BaseSrc: a.Base, ModSrc: a.Base, Proc: "ghost"})

	sequential := NewAnalyzer()
	var wantPaths [][]string
	var wantErr []error
	for _, req := range reqs {
		res, err := sequential.Analyze(context.Background(), req)
		if err != nil {
			wantPaths = append(wantPaths, nil)
			wantErr = append(wantErr, err)
			continue
		}
		wantPaths = append(wantPaths, res.PathConditions())
		wantErr = append(wantErr, nil)
	}

	batch := NewAnalyzer(WithParallelism(4))
	out := batch.AnalyzeBatch(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(out), len(reqs))
	}
	for i, br := range out {
		if br.Index != i {
			t.Errorf("result %d has Index %d", i, br.Index)
		}
		if wantErr[i] != nil {
			var e *Error
			if !errors.As(br.Err, &e) || e.Kind != UnknownProc {
				t.Errorf("request %d: want UnknownProc, got %v", i, br.Err)
			}
			continue
		}
		if br.Err != nil {
			t.Errorf("request %d failed: %v", i, br.Err)
			continue
		}
		got := strings.Join(br.Result.PathConditions(), "\n")
		want := strings.Join(wantPaths[i], "\n")
		if got != want {
			t.Errorf("request %d: batch result differs from sequential:\n%s\nvs\n%s", i, got, want)
		}
	}

	// The batch shares one base version across all requests: the cache must
	// have parsed it once, not once per worker.
	if stats := batch.CacheStats(); stats.Misses > int64(len(reqs)+1) {
		t.Errorf("cache misses = %d, want <= %d (one per distinct source)", stats.Misses, len(reqs)+1)
	}
}

func TestAnalyzeBatchCancellation(t *testing.T) {
	base, mod, proc := wideArtifact(t)
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{BaseSrc: base, ModSrc: mod, Proc: proc}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	out := NewAnalyzer(WithParallelism(4)).AnalyzeBatch(ctx, reqs)
	cancelled := 0
	for _, br := range out {
		if errors.Is(br.Err, &Error{Kind: Cancelled}) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("cancelling a batch should fail in-flight and pending requests")
	}
}

// TestAnalyzerCacheHitIdentical checks the acceptance criterion for the
// parse/CFG cache: a warm-cache analysis returns results identical to the
// cold path.
func TestAnalyzerCacheHitIdentical(t *testing.T) {
	a, _ := artifacts.ByName("ASW")
	v, _ := a.Find("v6")
	req := Request{BaseSrc: a.Base, ModSrc: a.SourceFor(v), Proc: a.Proc}

	warm := NewAnalyzer()
	cold, err := warm.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.CacheStats(); s.Hits != 0 || s.Misses != 2 {
		t.Errorf("cold run cache stats = %+v, want 0 hits / 2 misses", s)
	}
	hot, err := warm.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.CacheStats(); s.Hits != 2 {
		t.Errorf("warm run cache stats = %+v, want 2 hits", s)
	}

	if got, want := strings.Join(hot.PathConditions(), "\n"), strings.Join(cold.PathConditions(), "\n"); got != want {
		t.Errorf("cache hit changed the result:\n%s\nvs\n%s", got, want)
	}
	if hot.ChangedNodes != cold.ChangedNodes ||
		fmt.Sprint(hot.AffectedConditionalLines) != fmt.Sprint(cold.AffectedConditionalLines) ||
		fmt.Sprint(hot.AffectedWriteLines) != fmt.Sprint(cold.AffectedWriteLines) {
		t.Errorf("cache hit changed affected sets: %+v vs %+v", hot, cold)
	}
	if hot.Stats.StatesExplored != cold.Stats.StatesExplored || hot.Stats.SolverCalls != cold.Stats.SolverCalls {
		t.Errorf("cache hit changed exploration: %+v vs %+v", hot.Stats, cold.Stats)
	}
}

func TestAnalyzerCacheEviction(t *testing.T) {
	a := NewAnalyzer(WithCacheCapacity(1))
	ctx := context.Background()
	if _, err := a.Execute(ctx, baseUpdate, "update"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute(ctx, modUpdate, "update"); err != nil {
		t.Fatal(err)
	}
	if s := a.CacheStats(); s.Entries != 1 {
		t.Errorf("cache entries = %d, want 1 (capacity bound)", s.Entries)
	}
	// The first source was evicted: analyzing it again is a miss, and still
	// produces the right result.
	sum, err := a.Execute(ctx, baseUpdate, "update")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewAnalyzer().Execute(ctx, baseUpdate, "update")
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Paths) != len(fresh.Paths) {
		t.Errorf("paths after eviction = %d, want %d", len(sum.Paths), len(fresh.Paths))
	}
}

func TestAnalyzeStream(t *testing.T) {
	a := NewAnalyzer()
	var streamed []string
	res, err := a.AnalyzeStream(context.Background(),
		Request{BaseSrc: baseUpdate, ModSrc: modUpdate, Proc: "update"},
		func(p PathInfo) bool {
			streamed = append(streamed, p.PathCondition)
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(streamed, "\n"), strings.Join(res.PathConditions(), "\n"); got != want {
		t.Errorf("streamed paths differ from final result:\n%s\nvs\n%s", got, want)
	}
	if len(streamed) != 7 {
		t.Errorf("streamed %d paths, want 7", len(streamed))
	}
}

func TestAnalyzeStreamEarlyStop(t *testing.T) {
	a := NewAnalyzer()
	var n atomic.Int32
	res, err := a.AnalyzeStream(context.Background(),
		Request{BaseSrc: baseUpdate, ModSrc: modUpdate, Proc: "update"},
		func(PathInfo) bool { return n.Add(1) < 3 })
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 3 {
		t.Errorf("yield called %d times, want 3 (stop after third)", n.Load())
	}
	if len(res.Paths) != 3 {
		t.Errorf("early-stopped result has %d paths, want 3", len(res.Paths))
	}
}

func TestAnalyzerInterprocedural(t *testing.T) {
	mod := strings.Replace(interprocBase, "Total = Total + v;", "Total = Total + v + v;", 1)
	a := NewAnalyzer()
	res, err := a.AnalyzeInterprocedural(context.Background(), interprocBase, mod, "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("interprocedural paths = %d, want 2", len(res.Paths))
	}
	if _, err := a.AnalyzeInterprocedural(context.Background(), interprocBase, mod, "ghost"); !errors.Is(err, &Error{Kind: UnknownProc}) {
		t.Errorf("unknown entry: %v", err)
	}
}

func TestWithOptionsShim(t *testing.T) {
	domain := [2]int64{-1_000_000, 1_000_000}
	a := NewAnalyzer(WithOptions(Options{IntDomain: &domain}))
	sum, err := a.Execute(context.Background(), modUpdate, "update")
	if err != nil {
		t.Fatal(err)
	}
	b := NewAnalyzer(WithIntDomain(-1_000_000, 1_000_000))
	sum2, err := b.Execute(context.Background(), modUpdate, "update")
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Paths) != 24 || len(sum2.Paths) != 24 {
		t.Fatalf("full-range paths = %d/%d, want 24 (both option styles)", len(sum.Paths), len(sum2.Paths))
	}
}
