package dise

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"dise/internal/cfg"
	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/lang/types"
)

// cachedProgram is an immutable parse + type-check bundle for one source
// text, with per-procedure CFGs built (and their analyses precomputed) on
// first use. Everything reachable from it is read-only after construction,
// so one entry can serve concurrent analyses — the point of the cache in the
// one-base-many-patches CI workload.
type cachedProgram struct {
	prog *ast.Program

	mu     sync.Mutex
	graphs map[string]*cfg.Graph
}

// graph returns the procedure's CFG, building and precomputing it once.
// Precomputing the reachability/post-dominance/SCC analyses up front means
// later readers never write to the graph, making it safe to share across
// the batch worker pool.
func (c *cachedProgram) graph(proc *ast.Procedure) *cfg.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.graphs[proc.Name]; ok {
		return g
	}
	g := cfg.Build(proc)
	g.Precompute()
	c.graphs[proc.Name] = g
	return g
}

// CacheStats reports the effectiveness and footprint of an Analyzer's
// parse/CFG cache. Bytes is an approximate retained size (a documented
// multiple of the cached source lengths — the AST, type info and CFGs scale
// with the source); Evictions counts entries pushed out by either bound.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes_approx"`
	Evictions int64 `json:"evictions"`
}

// programCache is a bounded, concurrency-safe LRU of parsed programs keyed
// by the SHA-256 of their source text. The entry-count capacity always
// applies; an approximate byte budget (maxBytes > 0) additionally evicts
// least-recently-used entries when the estimated retained size overflows.
type programCache struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64
	bytes    int64
	entries  map[[sha256.Size]byte]*list.Element
	lru      *list.List // of *cacheSlot, front = most recent
	hits      int64
	misses    int64
	evictions int64
}

type cacheSlot struct {
	key  [sha256.Size]byte
	prog *cachedProgram
	size int64
}

// programEntryBytes estimates one entry's retained footprint from its
// source length: the AST, type-check results and per-procedure CFGs with
// their precomputed analyses together run roughly an order of magnitude
// larger than the text, plus a fixed overhead for the maps and slot. A
// coarse, deliberately conservative multiplier for capacity accounting.
func programEntryBytes(srcLen int) int64 {
	return int64(srcLen)*16 + 4096
}

func newProgramCache(capacity int, maxBytes int64) *programCache {
	return &programCache{
		capacity: capacity,
		maxBytes: maxBytes,
		entries:  map[[sha256.Size]byte]*list.Element{},
		lru:      list.New(),
	}
}

// get returns the cached bundle for src, parsing and type-checking on a
// miss. Parse and type failures are classified (ParseError/TypeError) and
// never cached: source that fails today may be retried cheaply, and failed
// requests should not evict useful entries.
func (pc *programCache) get(src string) (*cachedProgram, error) {
	key := sha256.Sum256([]byte(src))
	pc.mu.Lock()
	if el, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(el)
		pc.hits++
		entry := el.Value.(*cacheSlot).prog
		pc.mu.Unlock()
		return entry, nil
	}
	pc.misses++
	pc.mu.Unlock()

	// Parse outside the lock: concurrent misses on the same source duplicate
	// work at most once each, which beats serializing every request behind
	// one parse.
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, &Error{Kind: ParseError, Err: err}
	}
	if _, err := types.Check(prog); err != nil {
		return nil, &Error{Kind: TypeError, Err: err}
	}
	entry := &cachedProgram{prog: prog, graphs: map[string]*cfg.Graph{}}

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[key]; ok {
		// A concurrent request inserted it first; keep that copy so everyone
		// shares one AST.
		pc.lru.MoveToFront(el)
		return el.Value.(*cacheSlot).prog, nil
	}
	slot := &cacheSlot{key: key, prog: entry, size: programEntryBytes(len(src))}
	pc.entries[key] = pc.lru.PushFront(slot)
	pc.bytes += slot.size
	//diselint:ignore interruptloop bounded: each iteration evicts one LRU entry
	for (pc.capacity > 0 && pc.lru.Len() > pc.capacity) ||
		(pc.maxBytes > 0 && pc.bytes > pc.maxBytes && pc.lru.Len() > 1) {
		oldest := pc.lru.Back()
		pc.lru.Remove(oldest)
		old := oldest.Value.(*cacheSlot)
		delete(pc.entries, old.key)
		pc.bytes -= old.size
		pc.evictions++
	}
	return entry, nil
}

// stats snapshots hit/miss counters.
func (pc *programCache) stats() CacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return CacheStats{Hits: pc.hits, Misses: pc.misses, Entries: pc.lru.Len(), Bytes: pc.bytes, Evictions: pc.evictions}
}
