package dise

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"dise/internal/cfg"
	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/lang/types"
)

// cachedProgram is an immutable parse + type-check bundle for one source
// text, with per-procedure CFGs built (and their analyses precomputed) on
// first use. Everything reachable from it is read-only after construction,
// so one entry can serve concurrent analyses — the point of the cache in the
// one-base-many-patches CI workload.
type cachedProgram struct {
	prog *ast.Program

	mu     sync.Mutex
	graphs map[string]*cfg.Graph
}

// graph returns the procedure's CFG, building and precomputing it once.
// Precomputing the reachability/post-dominance/SCC analyses up front means
// later readers never write to the graph, making it safe to share across
// the batch worker pool.
func (c *cachedProgram) graph(proc *ast.Procedure) *cfg.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.graphs[proc.Name]; ok {
		return g
	}
	g := cfg.Build(proc)
	g.Precompute()
	c.graphs[proc.Name] = g
	return g
}

// CacheStats reports the effectiveness of an Analyzer's parse/CFG cache.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// programCache is a bounded, concurrency-safe LRU of parsed programs keyed
// by the SHA-256 of their source text.
type programCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[[sha256.Size]byte]*list.Element
	lru      *list.List // of *cacheSlot, front = most recent
	hits     int64
	misses   int64
}

type cacheSlot struct {
	key  [sha256.Size]byte
	prog *cachedProgram
}

func newProgramCache(capacity int) *programCache {
	return &programCache{
		capacity: capacity,
		entries:  map[[sha256.Size]byte]*list.Element{},
		lru:      list.New(),
	}
}

// get returns the cached bundle for src, parsing and type-checking on a
// miss. Parse and type failures are classified (ParseError/TypeError) and
// never cached: source that fails today may be retried cheaply, and failed
// requests should not evict useful entries.
func (pc *programCache) get(src string) (*cachedProgram, error) {
	key := sha256.Sum256([]byte(src))
	pc.mu.Lock()
	if el, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(el)
		pc.hits++
		entry := el.Value.(*cacheSlot).prog
		pc.mu.Unlock()
		return entry, nil
	}
	pc.misses++
	pc.mu.Unlock()

	// Parse outside the lock: concurrent misses on the same source duplicate
	// work at most once each, which beats serializing every request behind
	// one parse.
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, &Error{Kind: ParseError, Err: err}
	}
	if _, err := types.Check(prog); err != nil {
		return nil, &Error{Kind: TypeError, Err: err}
	}
	entry := &cachedProgram{prog: prog, graphs: map[string]*cfg.Graph{}}

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[key]; ok {
		// A concurrent request inserted it first; keep that copy so everyone
		// shares one AST.
		pc.lru.MoveToFront(el)
		return el.Value.(*cacheSlot).prog, nil
	}
	pc.entries[key] = pc.lru.PushFront(&cacheSlot{key: key, prog: entry})
	//diselint:ignore interruptloop bounded: each iteration evicts one LRU entry
	for pc.capacity > 0 && pc.lru.Len() > pc.capacity {
		oldest := pc.lru.Back()
		pc.lru.Remove(oldest)
		delete(pc.entries, oldest.Value.(*cacheSlot).key)
	}
	return entry, nil
}

// stats snapshots hit/miss counters.
func (pc *programCache) stats() CacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return CacheStats{Hits: pc.hits, Misses: pc.misses, Entries: pc.lru.Len()}
}
