package solver

import (
	"sort"
	"strconv"

	"dise/internal/sym"
)

// DefaultDomain is the domain assigned to integer symbolic inputs unless the
// caller overrides it. It is non-negative, mirroring the Choco configuration
// under SPF that the paper's artifacts ran with: over this domain the
// motivating example's PedalCmd == 2 arms are infeasible, which is what
// yields the paper's 21 feasible paths (a full signed range yields 24 — see
// the domain ablation in the repository README and bench suite).
var DefaultDomain = Interval{Lo: 0, Hi: 1_000_000}

// BoolDomain is the 0/1 domain used for boolean symbolic inputs.
var BoolDomain = Interval{Lo: 0, Hi: 1}

// Options configures a Solver.
type Options struct {
	// NodeBudget caps search nodes per Check call; exceeding it yields an
	// Unknown result (treated as unsatisfiable by callers, as SPF does).
	// Zero means the default of 1<<16.
	NodeBudget int
	// Interrupt, when non-nil, is polled at every search node. A non-nil
	// return aborts the Check with an Unknown result, letting callers stop a
	// long-running solve promptly (e.g. on context cancellation).
	Interrupt func() error
}

// Stats counts solver work across Check calls.
type Stats struct {
	Calls        int // Check invocations
	Sat          int // satisfiable results
	Unsat        int // unsatisfiable results
	Unknown      int // budget exhausted
	SearchNodes  int // total branching nodes explored
	Propagations int // domain-tightening passes
}

// Result is the outcome of a Check call.
type Result struct {
	Sat     bool
	Unknown bool // budget exhausted before a verdict
	// Model maps every variable to a concrete value when Sat. The model is
	// deterministic: the search branches on the lowest candidate value first.
	Model map[string]int64
}

// Solver checks satisfiability of conjunctions of symbolic constraints over
// finite integer domains.
type Solver struct {
	opts  Options
	stats Stats
	// compiled caches the normalized form of constraint expressions, keyed
	// by node pointer. Symbolic expressions are immutable and hash-consed
	// (internal/sym), so a constraint re-built anywhere — a sibling state, a
	// later version of the program, a re-rendered branch condition — is the
	// same pointer and hits the same cache line; compilation amortizes
	// across the thousands of Check calls a symbolic execution run makes.
	compiled map[sym.Expr][]*constraint
	// propTpl caches, per constraint expression, the name-resolved problem
	// skeleton PropagateDelta needs — variable indexing, constraint views,
	// the same-form unsat precheck. The skeleton depends only on the
	// expression (hash-consed, so pointer-keyed), not on the box it is
	// propagated against, and the interval backend propagates the same
	// branch constraints against many boxes as the exploration revisits
	// sibling subtrees.
	propTpl map[sym.Expr]*propTemplate
}

// propTemplate is the reusable, read-only part of a PropagateDelta problem.
type propTemplate struct {
	varNames     []string
	varIdx       map[string]int
	views        []conView
	trivialUnsat bool
}

// New returns a Solver.
func New(opts Options) *Solver {
	if opts.NodeBudget == 0 {
		opts.NodeBudget = 1 << 16
	}
	return &Solver{
		opts:     opts,
		compiled: map[sym.Expr][]*constraint{},
		propTpl:  map[sym.Expr]*propTemplate{},
	}
}

// Stats returns accumulated counters.
func (s *Solver) Stats() Stats { return s.stats }

// ResetStats zeroes the counters.
func (s *Solver) ResetStats() { s.stats = Stats{} }

// Check decides satisfiability of the conjunction of constraints, with each
// variable restricted to the domain in domains. Variables that occur in the
// constraints but not in domains get DefaultDomain.
func (s *Solver) Check(constraints []sym.Expr, domains map[string]Interval) Result {
	s.stats.Calls++
	var compiled []*constraint
	for _, e := range constraints {
		compiled = append(compiled, s.compile(e)...)
	}
	p := newProblem(compiled, domains)
	p.interrupt = s.opts.Interrupt
	budget := s.opts.NodeBudget
	res := p.solve(&s.stats, &budget)
	switch {
	case res.Sat:
		s.stats.Sat++
	case res.Unknown:
		s.stats.Unknown++
	default:
		s.stats.Unsat++
	}
	return res
}

// PropagateDelta tightens the domains of the variables mentioned by the
// constraints to bounds consistency, without searching. Domains are read
// from base (falling back to DefaultDomain); the returned delta holds ONLY
// the mentioned variables' tightened domains, so callers propagating one
// new conjunct against a large box pay for the conjunct's variables, not
// the whole box. ok is false when propagation proves the conjunction
// unsatisfiable over base (some domain became empty, or two constraints
// over the same linear form have an empty intersection).
//
// residual lists the atoms (after conjunction flattening) that the
// tightened box does NOT entail: an atom missing from it is satisfied by
// every assignment inside the box, so a later search within the box may
// drop it. Deep assertion stacks reduce to short residual lists — the
// second half of what makes per-frame snapshots pay off in
// internal/constraint.
//
// base overlaid with the delta is a sound over-approximation of the
// solution set: every assignment satisfying the constraints within base
// lies in it.
func (s *Solver) PropagateDelta(constraints []sym.Expr, base map[string]Interval) (delta map[string]Interval, residual []sym.Expr, ok bool) {
	tpl := s.propTemplateFor(constraints)
	if tpl.trivialUnsat {
		return nil, nil, false
	}
	if len(tpl.views) == 0 {
		return nil, nil, true
	}
	box := make([]Interval, len(tpl.varNames))
	for i, name := range tpl.varNames {
		if d, ok := base[name]; ok {
			box[i] = d
		} else {
			box[i] = DefaultDomain
		}
	}
	p := problem{varNames: tpl.varNames, varIdx: tpl.varIdx, views: tpl.views, interrupt: s.opts.Interrupt}
	if !p.propagate(box, &s.stats) {
		return nil, nil, false
	}
	for i := range p.views {
		if p.truthOf(&p.views[i], box) != truthTrue {
			residual = append(residual, p.views[i].c.expr)
		}
	}
	delta = make(map[string]Interval, len(tpl.varNames))
	for i, name := range tpl.varNames {
		delta[name] = box[i]
	}
	return delta, residual, true
}

// propTemplateFor resolves the problem skeleton for a constraint list. The
// single-expression case — the interval backend propagates one frame's one
// conjunct — is served from the pointer-keyed template cache; multi-expr
// lists (rare: concatenated residuals) are built ad hoc.
func (s *Solver) propTemplateFor(constraints []sym.Expr) *propTemplate {
	if len(constraints) == 1 {
		if tpl, ok := s.propTpl[constraints[0]]; ok {
			return tpl
		}
	}
	var compiled []*constraint
	for _, e := range constraints {
		compiled = append(compiled, s.compile(e)...)
	}
	var tpl *propTemplate
	if len(compiled) == 0 {
		tpl = &propTemplate{}
	} else {
		p := newProblem(compiled, nil)
		tpl = &propTemplate{
			varNames:     p.varNames,
			varIdx:       p.varIdx,
			views:        p.views,
			trivialUnsat: p.trivialUnsat,
		}
	}
	if len(constraints) == 1 {
		s.propTpl[constraints[0]] = tpl
	}
	return tpl
}

// conKind classifies compiled constraints.
type conKind int

const (
	conLinear conKind = iota // lin ⋈ 0 with ⋈ ∈ {<=, ==, !=}
	conOpaque                // arbitrary boolean expression
)

// constraint is a compiled, name-based constraint (cached on the Solver and
// shared across problems).
type constraint struct {
	kind conKind
	expr sym.Expr   // original expression (used for opaque evaluation)
	lin  sym.Linear // linear form, conLinear only
	op   sym.Op     // OpLE, OpEQ or OpNE, conLinear only
	vars []string   // sorted variable names mentioned
}

// compile normalizes e into linear/opaque constraints, flattening top-level
// conjunctions, with caching.
func (s *Solver) compile(e sym.Expr) []*constraint {
	if cached, ok := s.compiled[e]; ok {
		return cached
	}
	var out []*constraint
	switch ex := e.(type) {
	case *sym.BoolConst:
		if !ex.V {
			// Trivially false: encode as 1 <= 0.
			lin := sym.NewLinear()
			lin.Const = 1
			out = append(out, finishLinear(e, lin, sym.OpLE))
		}
		// Trivially true compiles to nothing.
	case *sym.Var:
		// A bare boolean variable used as a constraint: v == 1.
		lin := sym.NewLinear()
		lin.Coeffs[ex.Name] = 1
		lin.Const = -1
		out = append(out, finishLinear(e, lin, sym.OpEQ))
	case *sym.Not:
		if v, ok := ex.X.(*sym.Var); ok {
			// !v: v == 0.
			lin := sym.NewLinear()
			lin.Coeffs[v.Name] = 1
			out = append(out, finishLinear(e, lin, sym.OpEQ))
		} else {
			out = append(out, opaque(e))
		}
	case *sym.Bin:
		switch {
		case ex.Op == sym.OpAnd:
			out = append(out, s.compile(ex.L)...)
			out = append(out, s.compile(ex.R)...)
		case ex.Op.IsComparison():
			if c, ok := linearize(ex); ok {
				out = append(out, c)
			} else {
				out = append(out, opaque(e))
			}
		default:
			out = append(out, opaque(e))
		}
	default:
		out = append(out, opaque(e))
	}
	s.compiled[e] = out
	return out
}

// linearize turns "L ⋈ R" with linear sides into a normalized constraint.
func linearize(e *sym.Bin) (*constraint, bool) {
	ll, ok := sym.LinearOf(boolToInt(e.L))
	if !ok {
		return nil, false
	}
	rl, ok := sym.LinearOf(boolToInt(e.R))
	if !ok {
		return nil, false
	}
	lin := sym.AddLinear(ll, sym.ScaleLinear(rl, -1)) // L - R
	switch e.Op {
	case sym.OpLT: // L - R < 0  ≡  L - R + 1 <= 0
		lin.Const++
		return finishLinear(e, lin, sym.OpLE), true
	case sym.OpLE:
		return finishLinear(e, lin, sym.OpLE), true
	case sym.OpGT: // L - R > 0  ≡  R - L + 1 <= 0
		lin = sym.ScaleLinear(lin, -1)
		lin.Const++
		return finishLinear(e, lin, sym.OpLE), true
	case sym.OpGE:
		lin = sym.ScaleLinear(lin, -1)
		return finishLinear(e, lin, sym.OpLE), true
	case sym.OpEQ:
		return finishLinear(e, lin, sym.OpEQ), true
	case sym.OpNE:
		return finishLinear(e, lin, sym.OpNE), true
	}
	return nil, false
}

// boolToInt rewrites boolean constants appearing as comparison operands
// (e.g. "b == true") into 0/1 integers so that boolean variables integrate
// with the linear machinery.
func boolToInt(e sym.Expr) sym.Expr {
	if b, ok := e.(*sym.BoolConst); ok {
		if b.V {
			return sym.One
		}
		return sym.Zero
	}
	return e
}

func finishLinear(e sym.Expr, lin sym.Linear, op sym.Op) *constraint {
	return &constraint{kind: conLinear, expr: e, lin: lin, op: op, vars: lin.Vars()}
}

func opaque(e sym.Expr) *constraint {
	return &constraint{kind: conOpaque, expr: e, vars: sym.Vars(e)}
}

// term is one resolved linear term: coeff * var(idx).
type term struct {
	idx   int
	coeff int64
}

// conView is a constraint resolved against a problem's variable indexing.
type conView struct {
	c     *constraint
	terms []term // conLinear only
	konst int64  // conLinear only
	vars  []int  // variable indices, all kinds
}

// problem is one Check instance.
type problem struct {
	varNames []string
	varIdx   map[string]int
	domains  []Interval
	views    []conView
	// trivialUnsat is set when same-form analysis found two linear
	// constraints over the same term vector with incompatible ranges
	// (e.g. X - Y >= 1 together with X - Y == 0). Bounds propagation alone
	// converges one unit per pass on such pairs — a pathology over wide
	// domains — so they are refuted during setup instead.
	trivialUnsat bool
	// interrupt aborts the search when it returns non-nil (Options.Interrupt).
	interrupt func() error
}

func newProblem(constraints []*constraint, domains map[string]Interval) *problem {
	p := &problem{varIdx: map[string]int{}}
	// Collect variables across all constraints plus every variable the
	// caller declared a domain for (so models always cover all inputs,
	// including unconstrained ones), deterministically.
	nameSet := map[string]bool{}
	for _, c := range constraints {
		for _, n := range c.vars {
			nameSet[n] = true
		}
	}
	for n := range domains {
		nameSet[n] = true
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p.varIdx[n] = len(p.varNames)
		p.varNames = append(p.varNames, n)
		d, ok := domains[n]
		if !ok {
			d = DefaultDomain
		}
		p.domains = append(p.domains, d)
	}
	for _, c := range constraints {
		v := conView{c: c, konst: c.lin.Const}
		for _, name := range c.vars {
			v.vars = append(v.vars, p.varIdx[name])
		}
		if c.kind == conLinear {
			for name, coeff := range c.lin.Coeffs {
				v.terms = append(v.terms, term{idx: p.varIdx[name], coeff: coeff})
			}
			sort.Slice(v.terms, func(i, j int) bool { return v.terms[i].idx < v.terms[j].idx })
		}
		p.views = append(p.views, v)
	}
	p.intersectForms()
	return p
}

// intersectForms groups linear constraints by their (sign-normalized) term
// vector and intersects the ranges they impose on the shared form. An empty
// intersection proves unsatisfiability without any propagation.
func (p *problem) intersectForms() {
	type rng struct{ lo, hi int64 }
	forms := map[string]*rng{}
	for i := range p.views {
		v := &p.views[i]
		if v.c.kind != conLinear || len(v.terms) == 0 {
			continue
		}
		// Sign-normalize: make the first coefficient positive so that a
		// form and its negation share a key.
		sign := int64(1)
		if v.terms[0].coeff < 0 {
			sign = -1
		}
		key := make([]byte, 0, len(v.terms)*8)
		for _, t := range v.terms {
			key = strconv.AppendInt(key, int64(t.idx), 10)
			key = append(key, ':')
			key = strconv.AppendInt(key, sign*t.coeff, 10)
			key = append(key, ';')
		}
		r, ok := forms[string(key)]
		if !ok {
			r = &rng{lo: -satBound, hi: satBound}
			forms[string(key)] = r
		}
		// Constraint: Σ terms + konst ⋈ 0, i.e. sign*Σ' + konst ⋈ 0 where
		// Σ' is the normalized form.
		switch v.c.op {
		case sym.OpLE: // sign*Σ' <= -konst
			if sign > 0 {
				r.hi = min2(r.hi, -v.konst)
			} else {
				r.lo = max2(r.lo, v.konst)
			}
		case sym.OpEQ: // sign*Σ' == -konst
			val := -v.konst * sign
			r.lo = max2(r.lo, val)
			r.hi = min2(r.hi, val)
		}
		if r.lo > r.hi {
			p.trivialUnsat = true
			return
		}
	}
}
