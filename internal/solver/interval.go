// Package solver implements a finite-domain constraint solver in the style
// of Choco, the solver used by Symbolic PathFinder in the DiSE paper (§4.1).
//
// Path conditions produced by symbolic execution are conjunctions of boolean
// expressions over integer symbolic inputs. The solver assigns every input a
// finite interval domain (by default the non-negative range [0, 10^6],
// mirroring Choco's default domains under SPF — see solver.go), then
// alternates
//
//   - bounds-consistency propagation on linear constraints, and
//   - forward interval evaluation of non-linear/opaque constraints,
//
// with domain-splitting search. Like SPF (paper §4.1), a solver that gives
// up within its budget reports Unknown and callers treat the path condition
// as unsatisfiable.
package solver

import "fmt"

// satBound bounds all interval arithmetic; anything outside saturates. It is
// comfortably larger than any reachable program value (domains are ≤ 10^6
// and programs perform bounded arithmetic) while leaving headroom so that
// saturating products never wrap int64.
const satBound = int64(1) << 62

func satClamp(v int64) int64 {
	if v > satBound {
		return satBound
	}
	if v < -satBound {
		return -satBound
	}
	return v
}

func satAdd(a, b int64) int64 {
	// Operands are clamped to ±2^62, so the only way a+b escapes int64 is
	// both being near a bound — detect before adding.
	if a > 0 && b > satBound-a {
		return satBound
	}
	if a < 0 && b < -satBound-a {
		return -satBound
	}
	return satClamp(a + b)
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > satBound/abs64(b) || a < -satBound/abs64(b) {
		if (a > 0) == (b > 0) {
			return satBound
		}
		return -satBound
	}
	return a * b
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Interval is an inclusive integer interval [Lo, Hi]. An interval with
// Lo > Hi is empty.
type Interval struct {
	Lo, Hi int64
}

// Full is the widest interval the solver manipulates.
var Full = Interval{Lo: -satBound, Hi: satBound}

// Singleton returns [v, v].
func Singleton(v int64) Interval { return Interval{Lo: v, Hi: v} }

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Fixed reports whether the interval is a single value.
func (iv Interval) Fixed() bool { return iv.Lo == iv.Hi }

// Size returns the number of values in the interval (saturated).
func (iv Interval) Size() int64 {
	if iv.Empty() {
		return 0
	}
	return satAdd(satAdd(iv.Hi, -iv.Lo), 1)
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// Intersect returns the intersection.
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// String renders "[lo..hi]".
func (iv Interval) String() string {
	if iv.Empty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%d..%d]", iv.Lo, iv.Hi)
}

func addIv(a, b Interval) Interval {
	return Interval{Lo: satAdd(a.Lo, b.Lo), Hi: satAdd(a.Hi, b.Hi)}
}

func subIv(a, b Interval) Interval {
	return Interval{Lo: satAdd(a.Lo, -b.Hi), Hi: satAdd(a.Hi, -b.Lo)}
}

func negIv(a Interval) Interval { return Interval{Lo: -a.Hi, Hi: -a.Lo} }

func mulIv(a, b Interval) Interval {
	c1 := satMul(a.Lo, b.Lo)
	c2 := satMul(a.Lo, b.Hi)
	c3 := satMul(a.Hi, b.Lo)
	c4 := satMul(a.Hi, b.Hi)
	return Interval{Lo: min4(c1, c2, c3, c4), Hi: max4(c1, c2, c3, c4)}
}

// divIv bounds truncated integer division a / b. Division by zero
// contributes nothing (those assignments fail concretely); if the divisor
// can only be zero the result is Full so no pruning happens and the final
// concrete check rejects the assignment.
func divIv(a, b Interval) Interval {
	if b.Lo == 0 && b.Hi == 0 {
		return Full
	}
	out := Interval{Lo: satBound, Hi: -satBound} // empty accumulator
	widen := func(part Interval) {
		if part.Empty() {
			return
		}
		c1 := a.Lo / part.Lo
		c2 := a.Lo / part.Hi
		c3 := a.Hi / part.Lo
		c4 := a.Hi / part.Hi
		lo := min4(c1, c2, c3, c4)
		hi := max4(c1, c2, c3, c4)
		if lo < out.Lo {
			out.Lo = lo
		}
		if hi > out.Hi {
			out.Hi = hi
		}
	}
	// Split the divisor around zero; truncated division is corner-monotone
	// on each sign region.
	widen(b.Intersect(Interval{Lo: 1, Hi: satBound}))
	widen(b.Intersect(Interval{Lo: -satBound, Hi: -1}))
	if out.Empty() {
		return Full
	}
	return out
}

// modIv bounds a % b (Go/Java semantics: result sign follows the dividend).
func modIv(a, b Interval) Interval {
	m := abs64(b.Lo)
	if h := abs64(b.Hi); h > m {
		m = h
	}
	if m == 0 {
		return Full
	}
	bound := m - 1
	if la := abs64(a.Lo); la < bound && abs64(a.Hi) < bound {
		bound = max2(la, abs64(a.Hi))
	}
	lo := int64(0)
	if a.Lo < 0 {
		lo = -bound
	}
	hi := int64(0)
	if a.Hi > 0 {
		hi = bound
	}
	return Interval{Lo: lo, Hi: hi}
}

func min4(a, b, c, d int64) int64 { return min2(min2(a, b), min2(c, d)) }
func max4(a, b, c, d int64) int64 { return max2(max2(a, b), max2(c, d)) }

func min2(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// floorDiv returns ⌊a/b⌋ for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv returns ⌈a/b⌉ for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}
