package solver

import (
	"fmt"

	"dise/internal/sym"
)

// truth is a three-valued logic value.
type truth int

const (
	truthUnknown truth = iota
	truthTrue
	truthFalse
)

func (t truth) not() truth {
	switch t {
	case truthTrue:
		return truthFalse
	case truthFalse:
		return truthTrue
	}
	return truthUnknown
}

// solve runs propagation + splitting search and returns the final result.
func (p *problem) solve(stats *Stats, budget *int) Result {
	if p.trivialUnsat {
		return Result{}
	}
	domains := make([]Interval, len(p.domains))
	copy(domains, p.domains)
	sat, unknown, model := p.search(domains, stats, budget)
	return Result{Sat: sat, Unknown: unknown, Model: model}
}

// search explores the current box. It returns (sat, unknown, model).
func (p *problem) search(domains []Interval, stats *Stats, budget *int) (bool, bool, map[string]int64) {
	if p.interrupt != nil && p.interrupt() != nil {
		// Cancelled mid-solve: report Unknown, like an exhausted budget.
		return false, true, nil
	}
	if !p.propagate(domains, stats) {
		return false, false, nil
	}
	// Classify constraints under the propagated box.
	allTrue := true
	var branchCon *conView
	for i := range p.views {
		switch p.truthOf(&p.views[i], domains) {
		case truthFalse:
			return false, false, nil
		case truthUnknown:
			allTrue = false
			if branchCon == nil {
				branchCon = &p.views[i]
			}
		}
	}
	if allTrue {
		return true, false, p.modelFrom(domains)
	}

	// Pick an unfixed variable from an undetermined constraint, preferring
	// the smallest domain (first-fail heuristic).
	v := -1
	var best int64
	for _, i := range branchCon.vars {
		d := domains[i]
		if d.Fixed() {
			continue
		}
		if v == -1 || d.Size() < best {
			v = i
			best = d.Size()
		}
	}
	if v == -1 {
		// All variables of the undetermined constraint are fixed; interval
		// evaluation was too weak (division/modulo). Decide concretely.
		if p.concreteTruth(branchCon, domains) != truthTrue {
			return false, false, nil
		}
		return p.searchWithout(branchCon.c, domains, stats, budget)
	}

	*budget--
	if *budget <= 0 {
		return false, true, nil
	}
	stats.SearchNodes++

	d := domains[v]
	if d.Size() <= 8 {
		// Enumerate ascending for deterministic, small models.
		sawUnknown := false
		for val := d.Lo; val <= d.Hi; val++ {
			child := cloneDomains(domains)
			child[v] = Singleton(val)
			sat, unknown, model := p.search(child, stats, budget)
			if sat {
				return true, false, model
			}
			sawUnknown = sawUnknown || unknown
		}
		return false, sawUnknown, nil
	}
	mid := d.Lo + (d.Hi-d.Lo)/2
	left := cloneDomains(domains)
	left[v] = Interval{Lo: d.Lo, Hi: mid}
	sat, unknownL, model := p.search(left, stats, budget)
	if sat {
		return true, false, model
	}
	right := cloneDomains(domains)
	right[v] = Interval{Lo: mid + 1, Hi: d.Hi}
	sat, unknownR, model := p.search(right, stats, budget)
	if sat {
		return true, false, model
	}
	return false, unknownL || unknownR, nil
}

// searchWithout recurses with one constraint removed (it has been decided
// true concretely).
func (p *problem) searchWithout(drop *constraint, domains []Interval, stats *Stats, budget *int) (bool, bool, map[string]int64) {
	sub := &problem{varNames: p.varNames, varIdx: p.varIdx, domains: p.domains, interrupt: p.interrupt}
	for _, v := range p.views {
		if v.c != drop {
			sub.views = append(sub.views, v)
		}
	}
	return sub.search(domains, stats, budget)
}

func cloneDomains(domains []Interval) []Interval {
	out := make([]Interval, len(domains))
	copy(out, domains)
	return out
}

func (p *problem) modelFrom(domains []Interval) map[string]int64 {
	model := make(map[string]int64, len(p.varNames))
	for i, name := range p.varNames {
		model[name] = domains[i].Lo
	}
	return model
}

// concreteTruth evaluates a constraint whose variables are all fixed.
// Runtime evaluation errors (division by zero) make the constraint false:
// the corresponding concrete execution would raise an exception rather than
// follow the path.
func (p *problem) concreteTruth(v *conView, domains []Interval) truth {
	env := map[string]int64{}
	for _, i := range v.vars {
		env[p.varNames[i]] = domains[i].Lo
	}
	val, err := EvalInt01(v.c.expr, env)
	if err != nil || val == 0 {
		return truthFalse
	}
	return truthTrue
}

// EvalInt01 evaluates an expression under the solver's uniform integer
// encoding: booleans are 0/1 integers, so boolean inputs, boolean constants
// and logical operators all evaluate over int64. Division or modulo by zero
// returns an error.
func EvalInt01(e sym.Expr, env map[string]int64) (int64, error) {
	switch e := e.(type) {
	case *sym.IntConst:
		return e.V, nil
	case *sym.BoolConst:
		if e.V {
			return 1, nil
		}
		return 0, nil
	case *sym.Var:
		v, ok := env[e.Name]
		if !ok {
			return 0, fmt.Errorf("solver.EvalInt01: unbound variable %q", e.Name)
		}
		return v, nil
	case *sym.Neg:
		v, err := EvalInt01(e.X, env)
		return -v, err
	case *sym.Ite:
		c, err := EvalInt01(e.Cond, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return EvalInt01(e.Then, env)
		}
		return EvalInt01(e.Else, env)
	case *sym.Not:
		v, err := EvalInt01(e.X, env)
		if err != nil {
			return 0, err
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case *sym.Bin:
		l, err := EvalInt01(e.L, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case sym.OpAnd:
			if l == 0 {
				return 0, nil
			}
			return clamp01(EvalInt01(e.R, env))
		case sym.OpOr:
			if l != 0 {
				return 1, nil
			}
			return clamp01(EvalInt01(e.R, env))
		}
		r, err := EvalInt01(e.R, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case sym.OpAdd:
			return l + r, nil
		case sym.OpSub:
			return l - r, nil
		case sym.OpMul:
			return l * r, nil
		case sym.OpDiv:
			if r == 0 {
				return 0, fmt.Errorf("solver.EvalInt01: division by zero")
			}
			return l / r, nil
		case sym.OpMod:
			if r == 0 {
				return 0, fmt.Errorf("solver.EvalInt01: modulo by zero")
			}
			return l % r, nil
		}
		if e.Op.IsComparison() {
			if evalCmp01(e.Op, l, r) {
				return 1, nil
			}
			return 0, nil
		}
	}
	return 0, fmt.Errorf("solver.EvalInt01: unknown expression %T", e)
}

func clamp01(v int64, err error) (int64, error) {
	if err != nil {
		return 0, err
	}
	if v != 0 {
		return 1, nil
	}
	return 0, nil
}

func evalCmp01(op sym.Op, a, b int64) bool {
	switch op {
	case sym.OpEQ:
		return a == b
	case sym.OpNE:
		return a != b
	case sym.OpLT:
		return a < b
	case sym.OpLE:
		return a <= b
	case sym.OpGT:
		return a > b
	case sym.OpGE:
		return a >= b
	}
	return false
}

// truthOf determines the status of a constraint under the current box,
// using concrete evaluation when every variable is fixed.
func (p *problem) truthOf(v *conView, domains []Interval) truth {
	switch v.c.kind {
	case conLinear:
		lo, hi := linBounds(v, domains)
		switch v.c.op {
		case sym.OpLE:
			if hi <= 0 {
				return truthTrue
			}
			if lo > 0 {
				return truthFalse
			}
		case sym.OpEQ:
			if lo == 0 && hi == 0 {
				return truthTrue
			}
			if lo > 0 || hi < 0 {
				return truthFalse
			}
		case sym.OpNE:
			if lo > 0 || hi < 0 {
				return truthTrue
			}
			if lo == 0 && hi == 0 {
				return truthFalse
			}
		}
		return truthUnknown
	default:
		allFixed := true
		for _, i := range v.vars {
			if !domains[i].Fixed() {
				allFixed = false
				break
			}
		}
		if allFixed {
			return p.concreteTruth(v, domains)
		}
		return p.evalTruth(v.c.expr, domains)
	}
}

// linBounds computes [min, max] of a resolved linear form over the box.
func linBounds(v *conView, domains []Interval) (int64, int64) {
	lo, hi := v.konst, v.konst
	for _, t := range v.terms {
		d := domains[t.idx]
		if t.coeff > 0 {
			lo = satAdd(lo, satMul(t.coeff, d.Lo))
			hi = satAdd(hi, satMul(t.coeff, d.Hi))
		} else {
			lo = satAdd(lo, satMul(t.coeff, d.Hi))
			hi = satAdd(hi, satMul(t.coeff, d.Lo))
		}
	}
	return lo, hi
}

// maxPropagationPasses caps the fixpoint loop: bounds consistency can
// converge one unit per pass on adversarial constraint pairs (the same-form
// intersection in newProblem removes the common cases, this cap bounds the
// rest). Stopping early is sound — the search continues on the partially
// tightened box.
const maxPropagationPasses = 64

// propagate tightens domains to bounds consistency. It returns false on
// conflict (some domain became empty or a constraint is unsatisfiable).
func (p *problem) propagate(domains []Interval, stats *Stats) bool {
	for changed, passes := true, 0; changed && passes < maxPropagationPasses; passes++ {
		changed = false
		stats.Propagations++
		for i := range p.views {
			v := &p.views[i]
			switch v.c.kind {
			case conLinear:
				ok, ch := p.propagateLinear(v, domains)
				if !ok {
					return false
				}
				changed = changed || ch
			case conOpaque:
				if p.evalTruth(v.c.expr, domains) == truthFalse {
					return false
				}
			}
		}
	}
	return true
}

// propagateLinear applies bounds consistency to "lin ⋈ 0".
func (p *problem) propagateLinear(v *conView, domains []Interval) (ok, changed bool) {
	lo, hi := linBounds(v, domains)
	switch v.c.op {
	case sym.OpLE:
		if lo > 0 {
			return false, false
		}
		if hi <= 0 {
			return true, false // satisfied, nothing to do
		}
		return tightenLE(v.terms, domains, lo, false)
	case sym.OpEQ:
		if lo > 0 || hi < 0 {
			return false, false
		}
		ok1, ch1 := tightenLE(v.terms, domains, lo, false)
		if !ok1 {
			return false, false
		}
		// Negated form -lin <= 0: its minimum is -max(lin), recomputed after
		// the first tightening pass.
		_, hi2 := linBounds(v, domains)
		ok2, ch2 := tightenLE(v.terms, domains, -hi2, true)
		if !ok2 {
			return false, false
		}
		return true, ch1 || ch2
	case sym.OpNE:
		if lo == 0 && hi == 0 {
			return false, false
		}
		if lo > 0 || hi < 0 {
			return true, false
		}
		// Bounds-consistency on !=: only prunes when a single variable is
		// unfixed and sits exactly at a forbidden endpoint.
		return p.tightenNE(v, domains)
	}
	return true, false
}

// tightenLE enforces Σ ci·xi + K <= 0 (or its negation when negated is set)
// on each variable's bounds. sumLo is the precomputed minimum of the
// (possibly negated) form.
func tightenLE(terms []term, domains []Interval, sumLo int64, negated bool) (ok, changed bool) {
	for _, t := range terms {
		coeff := t.coeff
		if negated {
			coeff = -coeff
		}
		d := domains[t.idx]
		// Minimum contribution of this term.
		var termLo int64
		if coeff > 0 {
			termLo = satMul(coeff, d.Lo)
		} else {
			termLo = satMul(coeff, d.Hi)
		}
		restLo := satAdd(sumLo, -termLo) // min of the form without this term
		// coeff*x <= -restLo
		bound := -restLo
		if coeff > 0 {
			maxX := floorDiv(bound, coeff)
			if maxX < d.Hi {
				d.Hi = maxX
				domains[t.idx] = d
				changed = true
			}
		} else {
			minX := ceilDiv(bound, coeff)
			if minX > d.Lo {
				d.Lo = minX
				domains[t.idx] = d
				changed = true
			}
		}
		if domains[t.idx].Empty() {
			return false, changed
		}
	}
	return true, changed
}

// tightenNE prunes endpoints for Σ ci·xi + K != 0 when exactly one variable
// is unfixed.
func (p *problem) tightenNE(v *conView, domains []Interval) (ok, changed bool) {
	unfixedIdx := -1
	var unfixedCoeff int64
	rest := v.konst
	for _, t := range v.terms {
		d := domains[t.idx]
		if d.Fixed() {
			rest = satAdd(rest, satMul(t.coeff, d.Lo))
			continue
		}
		if unfixedIdx != -1 {
			return true, false // more than one unfixed: no pruning
		}
		unfixedIdx = t.idx
		unfixedCoeff = t.coeff
	}
	if unfixedIdx == -1 {
		if rest == 0 {
			return false, false
		}
		return true, false
	}
	// coeff*x + rest != 0 → x != -rest/coeff when divisible.
	if (-rest)%unfixedCoeff != 0 {
		return true, false
	}
	forbidden := (-rest) / unfixedCoeff
	d := domains[unfixedIdx]
	if d.Lo == forbidden {
		d.Lo++
		changed = true
	}
	if d.Hi == forbidden {
		d.Hi--
		changed = true
	}
	domains[unfixedIdx] = d
	if d.Empty() {
		return false, changed
	}
	return true, changed
}

// evalIv computes interval bounds of an integer-typed expression.
func (p *problem) evalIv(e sym.Expr, domains []Interval) Interval {
	switch e := e.(type) {
	case *sym.IntConst:
		return Singleton(e.V)
	case *sym.BoolConst:
		if e.V {
			return Singleton(1)
		}
		return Singleton(0)
	case *sym.Var:
		if i, ok := p.varIdx[e.Name]; ok {
			return domains[i]
		}
		return Full
	case *sym.Neg:
		return negIv(p.evalIv(e.X, domains))
	case *sym.Ite:
		// Guard-aware bounds: a decided guard selects one arm's interval,
		// an undecided one yields the hull of both arms.
		switch p.evalTruth(e.Cond, domains) {
		case truthTrue:
			return p.evalIv(e.Then, domains)
		case truthFalse:
			return p.evalIv(e.Else, domains)
		}
		t := p.evalIv(e.Then, domains)
		f := p.evalIv(e.Else, domains)
		return Interval{Lo: min2(t.Lo, f.Lo), Hi: max2(t.Hi, f.Hi)}
	case *sym.Bin:
		l := p.evalIv(e.L, domains)
		r := p.evalIv(e.R, domains)
		switch e.Op {
		case sym.OpAdd:
			return addIv(l, r)
		case sym.OpSub:
			return subIv(l, r)
		case sym.OpMul:
			return mulIv(l, r)
		case sym.OpDiv:
			return divIv(l, r)
		case sym.OpMod:
			return modIv(l, r)
		}
	}
	return Full
}

// evalTruth computes three-valued truth of a boolean expression.
func (p *problem) evalTruth(e sym.Expr, domains []Interval) truth {
	switch e := e.(type) {
	case *sym.BoolConst:
		if e.V {
			return truthTrue
		}
		return truthFalse
	case *sym.Var:
		if i, ok := p.varIdx[e.Name]; ok {
			d := domains[i]
			if d.Fixed() {
				if d.Lo != 0 {
					return truthTrue
				}
				return truthFalse
			}
		}
		return truthUnknown
	case *sym.Not:
		return p.evalTruth(e.X, domains).not()
	case *sym.Ite:
		// A boolean-typed ite (only raw literals reach here — the smart
		// constructor folds boolean arms into connectives): a decided guard
		// selects an arm, agreeing arms decide regardless of the guard.
		c := p.evalTruth(e.Cond, domains)
		t := p.evalTruth(e.Then, domains)
		f := p.evalTruth(e.Else, domains)
		switch c {
		case truthTrue:
			return t
		case truthFalse:
			return f
		}
		if t == f {
			return t
		}
		return truthUnknown
	case *sym.Bin:
		switch e.Op {
		case sym.OpAnd:
			l := p.evalTruth(e.L, domains)
			r := p.evalTruth(e.R, domains)
			if l == truthFalse || r == truthFalse {
				return truthFalse
			}
			if l == truthTrue && r == truthTrue {
				return truthTrue
			}
			return truthUnknown
		case sym.OpOr:
			l := p.evalTruth(e.L, domains)
			r := p.evalTruth(e.R, domains)
			if l == truthTrue || r == truthTrue {
				return truthTrue
			}
			if l == truthFalse && r == truthFalse {
				return truthFalse
			}
			return truthUnknown
		}
		if e.Op.IsComparison() {
			l := p.evalIv(e.L, domains)
			r := p.evalIv(e.R, domains)
			return cmpIv(e.Op, l, r)
		}
	}
	return truthUnknown
}

func cmpIv(op sym.Op, l, r Interval) truth {
	switch op {
	case sym.OpEQ:
		if l.Hi < r.Lo || r.Hi < l.Lo {
			return truthFalse
		}
		if l.Fixed() && r.Fixed() && l.Lo == r.Lo {
			return truthTrue
		}
	case sym.OpNE:
		if l.Hi < r.Lo || r.Hi < l.Lo {
			return truthTrue
		}
		if l.Fixed() && r.Fixed() && l.Lo == r.Lo {
			return truthFalse
		}
	case sym.OpLT:
		if l.Hi < r.Lo {
			return truthTrue
		}
		if l.Lo >= r.Hi {
			return truthFalse
		}
	case sym.OpLE:
		if l.Hi <= r.Lo {
			return truthTrue
		}
		if l.Lo > r.Hi {
			return truthFalse
		}
	case sym.OpGT:
		if l.Lo > r.Hi {
			return truthTrue
		}
		if l.Hi <= r.Lo {
			return truthFalse
		}
	case sym.OpGE:
		if l.Lo >= r.Hi {
			return truthTrue
		}
		if l.Hi < r.Lo {
			return truthFalse
		}
	}
	return truthUnknown
}
