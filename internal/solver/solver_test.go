package solver

import (
	"math/rand"
	"testing"

	"dise/internal/sym"
)

func check(t *testing.T, cs []sym.Expr, domains map[string]Interval) Result {
	t.Helper()
	s := New(Options{})
	res := s.Check(cs, domains)
	if res.Unknown {
		t.Fatalf("solver gave up on %s", sym.Conjoin(cs))
	}
	return res
}

func x() sym.Expr { return sym.V("X") }
func y() sym.Expr { return sym.V("Y") }

func dom(lo, hi int64) map[string]Interval {
	return map[string]Interval{"X": {lo, hi}, "Y": {lo, hi}}
}

func TestCheckEmptyConjunction(t *testing.T) {
	res := check(t, nil, map[string]Interval{"X": {0, 10}})
	if !res.Sat {
		t.Fatal("empty conjunction must be sat")
	}
	if v, ok := res.Model["X"]; !ok || v != 0 {
		t.Errorf("model X = %v, want 0 (domain lo)", res.Model)
	}
}

func TestCheckSimpleComparisons(t *testing.T) {
	tests := []struct {
		cs  []sym.Expr
		sat bool
	}{
		{[]sym.Expr{sym.Cmp(sym.OpGT, x(), sym.Int(5))}, true},
		{[]sym.Expr{sym.Cmp(sym.OpGT, x(), sym.Int(100))}, false},
		{[]sym.Expr{sym.Cmp(sym.OpLT, x(), sym.Int(0))}, false},
		{[]sym.Expr{sym.Cmp(sym.OpEQ, x(), sym.Int(7))}, true},
		{[]sym.Expr{sym.Cmp(sym.OpNE, x(), sym.Int(7))}, true},
		{[]sym.Expr{sym.Cmp(sym.OpLE, x(), sym.Int(0)), sym.Cmp(sym.OpGE, x(), sym.Int(0))}, true},
		{[]sym.Expr{sym.Cmp(sym.OpLT, x(), sym.Int(3)), sym.Cmp(sym.OpGT, x(), sym.Int(3))}, false},
	}
	for _, tt := range tests {
		res := check(t, tt.cs, map[string]Interval{"X": {0, 100}})
		if res.Sat != tt.sat {
			t.Errorf("Check(%s) sat = %v, want %v", sym.Conjoin(tt.cs), res.Sat, tt.sat)
		}
		if res.Sat {
			verifyModel(t, tt.cs, res.Model)
		}
	}
}

// verifyModel confirms the model satisfies every constraint concretely.
func verifyModel(t *testing.T, cs []sym.Expr, model map[string]int64) {
	t.Helper()
	for _, c := range cs {
		v, err := EvalInt01(c, model)
		if err != nil {
			t.Errorf("model %v fails to evaluate %s: %v", model, c, err)
			continue
		}
		if v == 0 {
			t.Errorf("model %v does not satisfy %s", model, c)
		}
	}
}

func TestCheckMotivatingExampleArms(t *testing.T) {
	// The three arms of the paper's Fig. 2 first conditional under the
	// non-negative default domain: PedalPos <= 0 admits only 0;
	// PedalPos == 1; PedalPos > 1.
	pp := sym.V("PedalPos")
	d := map[string]Interval{"PedalPos": DefaultDomain}

	res := check(t, []sym.Expr{sym.Cmp(sym.OpLE, pp, sym.Zero)}, d)
	if !res.Sat || res.Model["PedalPos"] != 0 {
		t.Errorf("arm 1: sat=%v model=%v, want PedalPos=0", res.Sat, res.Model)
	}
	// Key feasibility fact behind the paper's 21 paths: with inputs >= 0,
	// PedalCmd + 3 == 2 is infeasible.
	pc := sym.V("PedalCmd")
	res = check(t, []sym.Expr{sym.Cmp(sym.OpEQ, sym.Add(pc, sym.Int(3)), sym.Int(2))},
		map[string]Interval{"PedalCmd": DefaultDomain})
	if res.Sat {
		t.Error("PedalCmd + 3 == 2 must be infeasible over the non-negative domain")
	}
	// ... while PedalCmd + 2 == 2 is feasible (PedalCmd = 0).
	res = check(t, []sym.Expr{sym.Cmp(sym.OpEQ, sym.Add(pc, sym.Int(2)), sym.Int(2))},
		map[string]Interval{"PedalCmd": DefaultDomain})
	if !res.Sat || res.Model["PedalCmd"] != 0 {
		t.Errorf("PedalCmd + 2 == 2: sat=%v model=%v, want PedalCmd=0", res.Sat, res.Model)
	}
}

func TestCheckLinearSystems(t *testing.T) {
	// X + Y == 10 && X - Y == 4  →  X=7, Y=3.
	cs := []sym.Expr{
		sym.Cmp(sym.OpEQ, sym.Add(x(), y()), sym.Int(10)),
		sym.Cmp(sym.OpEQ, sym.Sub(x(), y()), sym.Int(4)),
	}
	res := check(t, cs, dom(0, 100))
	if !res.Sat {
		t.Fatal("system must be sat")
	}
	if res.Model["X"] != 7 || res.Model["Y"] != 3 {
		t.Errorf("model = %v, want X=7 Y=3", res.Model)
	}

	// 2X + 3Y <= 5 && X >= 1 && Y >= 1 → unsat over non-negatives with X,Y>=1.
	cs = []sym.Expr{
		sym.Cmp(sym.OpLE, sym.Add(sym.Mul(sym.Int(2), x()), sym.Mul(sym.Int(3), y())), sym.Int(4)),
		sym.Cmp(sym.OpGE, x(), sym.One),
		sym.Cmp(sym.OpGE, y(), sym.One),
	}
	res = check(t, cs, dom(0, 100))
	if res.Sat {
		t.Errorf("2X+3Y<=4 with X,Y>=1 must be unsat, got model %v", res.Model)
	}
}

func TestCheckNotEqualChains(t *testing.T) {
	// X != 0..4 over domain [0,5] forces X = 5.
	var cs []sym.Expr
	for i := int64(0); i < 5; i++ {
		cs = append(cs, sym.Cmp(sym.OpNE, x(), sym.Int(i)))
	}
	res := check(t, cs, map[string]Interval{"X": {0, 5}})
	if !res.Sat || res.Model["X"] != 5 {
		t.Errorf("model = %v, want X=5", res.Model)
	}
	// Add X != 5: unsat.
	cs = append(cs, sym.Cmp(sym.OpNE, x(), sym.Int(5)))
	res = check(t, cs, map[string]Interval{"X": {0, 5}})
	if res.Sat {
		t.Error("all values excluded: must be unsat")
	}
}

func TestCheckBooleanInputs(t *testing.T) {
	b := sym.V("B")
	d := map[string]Interval{"B": BoolDomain, "X": {0, 10}}
	// B as bare constraint.
	res := check(t, []sym.Expr{b}, d)
	if !res.Sat || res.Model["B"] != 1 {
		t.Errorf("bare bool: model = %v, want B=1", res.Model)
	}
	// !B.
	res = check(t, []sym.Expr{&sym.Not{X: b}}, d) //diselint:ignore symcanon deliberate raw literal: exercises the non-interned structural-equality fallback
	if !res.Sat || res.Model["B"] != 0 {
		t.Errorf("negated bool: model = %v, want B=0", res.Model)
	}
	// B == true (comparison against a bool literal).
	res = check(t, []sym.Expr{&sym.Bin{Op: sym.OpEQ, L: b, R: sym.True}}, d) //diselint:ignore symcanon deliberate raw literal: exercises the non-interned structural-equality fallback
	if !res.Sat || res.Model["B"] != 1 {
		t.Errorf("B == true: model = %v, want B=1", res.Model)
	}
	// B && !B unsat.
	res = check(t, []sym.Expr{b, &sym.Not{X: b}}, d) //diselint:ignore symcanon deliberate raw literal: exercises the non-interned structural-equality fallback
	if res.Sat {
		t.Error("B && !B must be unsat")
	}
}

func TestCheckDisjunction(t *testing.T) {
	// (X == 3) || (X == 7), X != 3 → X = 7.
	or := sym.OrE(sym.Cmp(sym.OpEQ, x(), sym.Int(3)), sym.Cmp(sym.OpEQ, x(), sym.Int(7)))
	cs := []sym.Expr{or, sym.Cmp(sym.OpNE, x(), sym.Int(3))}
	res := check(t, cs, map[string]Interval{"X": {0, 100}})
	if !res.Sat || res.Model["X"] != 7 {
		t.Errorf("model = %v, want X=7", res.Model)
	}
	// (X < 0) || (X > 100) over [0,100] → unsat.
	or = sym.OrE(sym.Cmp(sym.OpLT, x(), sym.Zero), sym.Cmp(sym.OpGT, x(), sym.Int(100)))
	res = check(t, []sym.Expr{or}, map[string]Interval{"X": {0, 100}})
	if res.Sat {
		t.Error("out-of-domain disjunction must be unsat")
	}
}

func TestCheckNonlinear(t *testing.T) {
	// X * Y == 12 && X > Y over small domain → X=4, Y=3 or X=6, Y=2 or X=12, Y=1.
	cs := []sym.Expr{
		sym.Cmp(sym.OpEQ, sym.Mul(x(), y()), sym.Int(12)),
		sym.Cmp(sym.OpGT, x(), y()),
	}
	res := check(t, cs, dom(0, 20))
	if !res.Sat {
		t.Fatal("nonlinear system must be sat")
	}
	verifyModel(t, cs, res.Model)

	// X * X == 2 is unsat over integers.
	cs = []sym.Expr{sym.Cmp(sym.OpEQ, sym.Mul(x(), x()), sym.Int(2))}
	res = check(t, cs, map[string]Interval{"X": {0, 50}})
	if res.Sat {
		t.Errorf("X*X == 2 must be unsat, got %v", res.Model)
	}
}

func TestCheckDivisionModulo(t *testing.T) {
	// X / 3 == 4 → X in [12,14].
	div := &sym.Bin{Op: sym.OpDiv, L: x(), R: sym.Int(3)} //diselint:ignore symcanon deliberate raw literal: exercises the non-interned structural-equality fallback
	res := check(t, []sym.Expr{sym.Cmp(sym.OpEQ, div, sym.Int(4))}, map[string]Interval{"X": {0, 100}})
	if !res.Sat {
		t.Fatal("X/3 == 4 must be sat")
	}
	if v := res.Model["X"]; v < 12 || v > 14 {
		t.Errorf("X = %d, want in [12,14]", v)
	}
	// X % 2 == 1 && X % 3 == 0 → X ∈ {3, 9, 15, ...}.
	mod2 := &sym.Bin{Op: sym.OpMod, L: x(), R: sym.Int(2)} //diselint:ignore symcanon deliberate raw literal: exercises the non-interned structural-equality fallback
	mod3 := &sym.Bin{Op: sym.OpMod, L: x(), R: sym.Int(3)} //diselint:ignore symcanon deliberate raw literal: exercises the non-interned structural-equality fallback
	cs := []sym.Expr{
		sym.Cmp(sym.OpEQ, mod2, sym.One),
		sym.Cmp(sym.OpEQ, mod3, sym.Zero),
	}
	res = check(t, cs, map[string]Interval{"X": {0, 30}})
	if !res.Sat {
		t.Fatal("mod system must be sat")
	}
	verifyModel(t, cs, res.Model)
	// Division by zero in a constraint: unsat, not a crash.
	divZero := &sym.Bin{Op: sym.OpDiv, L: x(), R: sym.Zero} //diselint:ignore symcanon deliberate raw literal: exercises the non-interned structural-equality fallback
	res = check(t, []sym.Expr{sym.Cmp(sym.OpEQ, divZero, sym.Int(1))}, map[string]Interval{"X": {0, 3}})
	if res.Sat {
		t.Error("division by zero constraint must be unsat")
	}
}

func TestCheckSameFormContradictionIsFast(t *testing.T) {
	// X > Y together with X == Y is the bounds-propagation pathology: pure
	// bounds consistency walks the million-wide domain one unit per pass.
	// The same-form intersection must refute it during setup.
	cs := []sym.Expr{
		sym.Cmp(sym.OpGT, x(), y()),
		sym.Cmp(sym.OpEQ, x(), y()),
	}
	s := New(Options{})
	res := s.Check(cs, dom(0, 1_000_000))
	if res.Sat || res.Unknown {
		t.Fatalf("must be unsat, got sat=%v unknown=%v", res.Sat, res.Unknown)
	}
	st := s.Stats()
	if st.Propagations > 5 || st.SearchNodes > 0 {
		t.Errorf("contradiction not caught early: %+v", st)
	}
	// The complementary pair (negated first coefficient) as well.
	cs = []sym.Expr{
		sym.Cmp(sym.OpLT, sym.Sub(y(), x()), sym.Zero), // Y - X < 0  ≡  X > Y
		sym.Cmp(sym.OpEQ, sym.Sub(x(), y()), sym.Zero),
	}
	res = s.Check(cs, dom(0, 1_000_000))
	if res.Sat || res.Unknown {
		t.Fatal("sign-normalized forms must share a key")
	}
	// Same form with compatible ranges must stay satisfiable.
	cs = []sym.Expr{
		sym.Cmp(sym.OpGE, sym.Sub(x(), y()), sym.Int(2)),
		sym.Cmp(sym.OpLE, sym.Sub(x(), y()), sym.Int(5)),
	}
	res = s.Check(cs, dom(0, 1_000_000))
	if !res.Sat {
		t.Fatal("compatible ranges over one form must be sat")
	}
	verifyModel(t, cs, res.Model)
}

func TestCheckTightDomain(t *testing.T) {
	// Domain forcing: X in [5,5] with X == 5 sat, X == 6 unsat.
	d := map[string]Interval{"X": {5, 5}}
	if res := check(t, []sym.Expr{sym.Cmp(sym.OpEQ, x(), sym.Int(5))}, d); !res.Sat {
		t.Error("X==5 over [5,5] must be sat")
	}
	if res := check(t, []sym.Expr{sym.Cmp(sym.OpEQ, x(), sym.Int(6))}, d); res.Sat {
		t.Error("X==6 over [5,5] must be unsat")
	}
}

func TestCheckContradictoryConstants(t *testing.T) {
	res := check(t, []sym.Expr{sym.False}, nil)
	if res.Sat {
		t.Error("FALSE must be unsat")
	}
	res = check(t, []sym.Expr{sym.True}, nil)
	if !res.Sat {
		t.Error("TRUE must be sat")
	}
}

func TestCheckLargeDomainPropagation(t *testing.T) {
	// Propagation (not enumeration) must handle million-wide domains: the
	// search would never finish by brute force within the node budget.
	cs := []sym.Expr{
		sym.Cmp(sym.OpGE, x(), sym.Int(999_990)),
		sym.Cmp(sym.OpLE, x(), sym.Int(999_995)),
		sym.Cmp(sym.OpEQ, sym.Add(x(), y()), sym.Int(1_000_000)),
	}
	res := check(t, cs, map[string]Interval{"X": DefaultDomain, "Y": DefaultDomain})
	if !res.Sat {
		t.Fatal("must be sat")
	}
	verifyModel(t, cs, res.Model)
	s := New(Options{})
	r2 := s.Check(cs, map[string]Interval{"X": DefaultDomain, "Y": DefaultDomain})
	if s.Stats().SearchNodes > 1000 {
		t.Errorf("propagation too weak: %d search nodes", s.Stats().SearchNodes)
	}
	_ = r2
}

func TestNodeBudgetGivesUnknown(t *testing.T) {
	// A hard nonlinear equality over a wide box with a tiny budget.
	cs := []sym.Expr{
		sym.Cmp(sym.OpEQ, sym.Mul(x(), y()), sym.Int(999_983)), // prime
		sym.Cmp(sym.OpGT, x(), sym.One),
		sym.Cmp(sym.OpGT, y(), sym.One),
	}
	s := New(Options{NodeBudget: 10})
	res := s.Check(cs, dom(0, 1_000_000))
	if res.Sat {
		t.Fatalf("unexpected sat: %v", res.Model)
	}
	if !res.Unknown {
		t.Error("tiny budget should yield Unknown")
	}
	if s.Stats().Unknown != 1 {
		t.Errorf("stats.Unknown = %d, want 1", s.Stats().Unknown)
	}
}

func TestStatsCounting(t *testing.T) {
	s := New(Options{})
	s.Check([]sym.Expr{sym.Cmp(sym.OpGT, x(), sym.Int(5))}, map[string]Interval{"X": {0, 10}})
	s.Check([]sym.Expr{sym.Cmp(sym.OpGT, x(), sym.Int(50))}, map[string]Interval{"X": {0, 10}})
	st := s.Stats()
	if st.Calls != 2 || st.Sat != 1 || st.Unsat != 1 {
		t.Errorf("stats = %+v, want 2 calls, 1 sat, 1 unsat", st)
	}
	s.ResetStats()
	if s.Stats().Calls != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

// --- randomized differential test vs brute force ----------------------------

// randCmp builds a random comparison over X, Y with small constants.
func randCmp(r *rand.Rand) sym.Expr {
	ops := []sym.Op{sym.OpEQ, sym.OpNE, sym.OpLT, sym.OpLE, sym.OpGT, sym.OpGE}
	op := ops[r.Intn(len(ops))]
	var lhs sym.Expr
	switch r.Intn(4) {
	case 0:
		lhs = x()
	case 1:
		lhs = y()
	case 2:
		lhs = sym.Add(x(), y())
	default:
		lhs = sym.Sub(sym.Mul(sym.Int(int64(r.Intn(3)+1)), x()), y())
	}
	return sym.Cmp(op, lhs, sym.Int(int64(r.Intn(21)-5)))
}

// TestPropertySolverMatchesBruteForce cross-checks the solver against
// exhaustive enumeration on a small box.
func TestPropertySolverMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const lo, hi = 0, 12
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(4) + 1
		cs := make([]sym.Expr, n)
		for i := range cs {
			cs[i] = randCmp(r)
		}
		// Brute force ground truth.
		want := false
	outer:
		for xv := int64(lo); xv <= hi; xv++ {
			for yv := int64(lo); yv <= hi; yv++ {
				env := map[string]int64{"X": xv, "Y": yv}
				all := true
				for _, c := range cs {
					v, err := EvalInt01(c, env)
					if err != nil || v == 0 {
						all = false
						break
					}
				}
				if all {
					want = true
					break outer
				}
			}
		}
		s := New(Options{})
		res := s.Check(cs, dom(lo, hi))
		if res.Unknown {
			t.Fatalf("trial %d: solver gave up on %s", trial, sym.Conjoin(cs))
		}
		if res.Sat != want {
			t.Fatalf("trial %d: Check(%s) = %v, brute force = %v", trial, sym.Conjoin(cs), res.Sat, want)
		}
		if res.Sat {
			verifyModel(t, cs, res.Model)
		}
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{2, 5}
	b := Interval{-3, 4}
	if got := addIv(a, b); got != (Interval{-1, 9}) {
		t.Errorf("add = %v", got)
	}
	if got := subIv(a, b); got != (Interval{-2, 8}) {
		t.Errorf("sub = %v", got)
	}
	if got := negIv(a); got != (Interval{-5, -2}) {
		t.Errorf("neg = %v", got)
	}
	if got := mulIv(a, b); got != (Interval{-15, 20}) {
		t.Errorf("mul = %v", got)
	}
	if got := a.Intersect(b); got != (Interval{2, 4}) {
		t.Errorf("intersect = %v", got)
	}
	if !(Interval{3, 2}).Empty() {
		t.Error("inverted interval must be empty")
	}
	if (Interval{1, 3}).Size() != 3 {
		t.Error("size wrong")
	}
}

// TestPropertyIntervalDivSound: divIv must contain all concrete quotients.
func TestPropertyIntervalDivSound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		a := Interval{int64(r.Intn(41) - 20), 0}
		a.Hi = a.Lo + int64(r.Intn(10))
		b := Interval{int64(r.Intn(21) - 10), 0}
		b.Hi = b.Lo + int64(r.Intn(6))
		iv := divIv(a, b)
		for av := a.Lo; av <= a.Hi; av++ {
			for bv := b.Lo; bv <= b.Hi; bv++ {
				if bv == 0 {
					continue
				}
				q := av / bv
				if !iv.Contains(q) {
					t.Fatalf("divIv(%v, %v) = %v misses %d/%d = %d", a, b, iv, av, bv, q)
				}
			}
		}
	}
}

// TestPropertyIntervalModSound: modIv must contain all concrete remainders.
func TestPropertyIntervalModSound(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 2000; trial++ {
		a := Interval{int64(r.Intn(41) - 20), 0}
		a.Hi = a.Lo + int64(r.Intn(10))
		b := Interval{int64(r.Intn(21) - 10), 0}
		b.Hi = b.Lo + int64(r.Intn(6))
		iv := modIv(a, b)
		for av := a.Lo; av <= a.Hi; av++ {
			for bv := b.Lo; bv <= b.Hi; bv++ {
				if bv == 0 {
					continue
				}
				m := av % bv
				if !iv.Contains(m) {
					t.Fatalf("modIv(%v, %v) = %v misses %d%%%d = %d", a, b, iv, av, bv, m)
				}
			}
		}
	}
}

func TestFloorCeilDiv(t *testing.T) {
	tests := []struct {
		a, b, floor, ceil int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{7, -2, -4, -3},
		{-7, -2, 3, 4},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
	}
	for _, tt := range tests {
		if got := floorDiv(tt.a, tt.b); got != tt.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.floor)
		}
		if got := ceilDiv(tt.a, tt.b); got != tt.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.ceil)
		}
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if satMul(satBound, 2) != satBound {
		t.Error("satMul must clamp at +satBound")
	}
	if satMul(-satBound, 2) != -satBound {
		t.Error("satMul must clamp at -satBound")
	}
	if satMul(satBound, -2) != -satBound {
		t.Error("satMul sign handling")
	}
	if satAdd(satBound, satBound) != satBound {
		t.Error("satAdd must clamp")
	}
	if satMul(0, satBound) != 0 {
		t.Error("satMul zero")
	}
}

// TestPropagateDeltaTemplateReuse exercises the per-constraint problem
// skeleton cache behind PropagateDelta: the same constraint propagated
// against different boxes must tighten each box independently and
// correctly, with the cached skeleton (second call onward) giving the same
// answers as the first.
func TestPropagateDeltaTemplateReuse(t *testing.T) {
	s := New(Options{})
	c := sym.Cmp(sym.OpLT, x(), sym.Int(10)) // X < 10
	boxes := []map[string]Interval{
		{"X": {0, 100}},
		{"X": {0, 5}},
		{"X": {50, 100}},
		{"X": {0, 100}}, // repeat of the first: must reproduce it exactly
	}
	wantHi := []int64{9, 5, 0, 9} // tightened X.Hi; third is a conflict
	wantOK := []bool{true, true, false, true}
	for i, base := range boxes {
		delta, residual, ok := s.PropagateDelta([]sym.Expr{c}, base)
		if ok != wantOK[i] {
			t.Fatalf("call %d: ok = %v, want %v", i, ok, wantOK[i])
		}
		if !ok {
			continue
		}
		if d := delta["X"]; d.Hi != wantHi[i] || d.Lo != base["X"].Lo {
			t.Fatalf("call %d: delta X = %+v, want Hi %d", i, d, wantHi[i])
		}
		// X < 10 is entailed by every box the propagation produces here, so
		// nothing is residual.
		if len(residual) != 0 {
			t.Fatalf("call %d: residual = %v, want none", i, residual)
		}
	}
	// The skeleton is cached per expression pointer (hash-consed, so the
	// rebuilt constraint is the same pointer and the same template).
	if len(s.propTpl) != 1 {
		t.Fatalf("template cache holds %d entries, want 1", len(s.propTpl))
	}
	if _, ok := s.propTpl[sym.Cmp(sym.OpLT, sym.V("X"), sym.Int(10))]; !ok {
		t.Fatalf("rebuilt constraint missed the template cache")
	}
}

// TestPropagateDeltaTrivialCases pins the degenerate paths: no constraints,
// trivially-true constraints, and a same-form contradiction refuted during
// template construction without any propagation.
func TestPropagateDeltaTrivialCases(t *testing.T) {
	s := New(Options{})
	if delta, residual, ok := s.PropagateDelta(nil, dom(0, 10)); !ok || delta != nil || residual != nil {
		t.Fatalf("empty constraint list: got (%v, %v, %v)", delta, residual, ok)
	}
	if _, _, ok := s.PropagateDelta([]sym.Expr{sym.True}, dom(0, 10)); !ok {
		t.Fatalf("trivially-true constraint must propagate ok")
	}
	// X - Y == 0 together with X - Y >= 1 in one conjunction: the same-form
	// intersection inside the template refutes it outright.
	contradiction := sym.AndE(
		sym.Cmp(sym.OpEQ, sym.Sub(x(), y()), sym.Zero),
		sym.Cmp(sym.OpGE, sym.Sub(x(), y()), sym.One),
	)
	if _, _, ok := s.PropagateDelta([]sym.Expr{contradiction}, dom(0, 1000)); ok {
		t.Fatalf("same-form contradiction not refuted")
	}
}
