// Package inline expands procedure calls, turning a multi-procedure program
// into a single self-contained procedure that the intra-procedural DiSE
// pipeline can analyze.
//
// This realizes the paper's §7 future work ("extend DiSE to use an
// inter-procedural analysis to generate affected path conditions over the
// entire system") for non-recursive call graphs: after inlining, a change
// inside a callee flows into the caller's conditionals through the ordinary
// Eq. (1)–(4) rules, including effects through globals and parameters.
//
// Expansion of a call f(a1, ..., an):
//
//  1. a prologue assigns each argument to a fresh instance-local parameter
//     variable f$k$x (rendered f_k_x), where k numbers the inline instance;
//  2. the callee body follows, with every reference to a parameter or local
//     of f renamed to its f_k_ form; globals are left untouched, so effects
//     flow back to the caller exactly as in the original program.
//
// Restrictions (checked): the call graph must be acyclic (enforced by the
// type checker) and callee bodies must not contain return statements (a
// return inside an inlined body would need a jump past the remainder).
package inline

import (
	"fmt"

	"dise/internal/lang/ast"
)

// Program returns a copy of prog in which the body of procedure entryName
// has every call expanded, as a single-procedure program. The original
// program is not modified.
func Program(prog *ast.Program, entryName string) (*ast.Program, error) {
	entry := prog.Proc(entryName)
	if entry == nil {
		return nil, fmt.Errorf("inline: procedure %q not found", entryName)
	}
	ix := &inliner{prog: prog}
	body, err := ix.expandBlock(entry.Body)
	if err != nil {
		return nil, err
	}
	out := &ast.Program{}
	for _, g := range prog.Globals {
		out.Globals = append(out.Globals, &ast.Global{
			Name: g.Name, Type: g.Type, Init: ast.CloneExpr(g.Init), TokPos: g.TokPos,
		})
	}
	flat := &ast.Procedure{Name: entry.Name, Body: body, TokPos: entry.TokPos}
	flat.Params = append(flat.Params, entry.Params...)
	out.Procs = append(out.Procs, flat)
	return out, nil
}

type inliner struct {
	prog *ast.Program
	// instances counts inline expansions, giving each a unique variable
	// prefix. Deterministic (depth-first, program order), so two versions
	// of a program inline to comparable forms for the diff.
	instances int
}

// expandBlock deep-copies a block, expanding calls.
func (ix *inliner) expandBlock(b *ast.Block) (*ast.Block, error) {
	out := &ast.Block{TokPos: b.TokPos}
	for _, s := range b.Stmts {
		expanded, err := ix.expandStmt(s)
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, expanded...)
	}
	return out, nil
}

func (ix *inliner) expandStmt(s ast.Stmt) ([]ast.Stmt, error) {
	switch s := s.(type) {
	case *ast.Call:
		return ix.expandCall(s)
	case *ast.If:
		then, err := ix.expandBlock(s.Then)
		if err != nil {
			return nil, err
		}
		cp := &ast.If{Cond: ast.CloneExpr(s.Cond), Then: then, TokPos: s.TokPos}
		if s.Else != nil {
			if cp.Else, err = ix.expandBlock(s.Else); err != nil {
				return nil, err
			}
		}
		return []ast.Stmt{cp}, nil
	case *ast.While:
		body, err := ix.expandBlock(s.Body)
		if err != nil {
			return nil, err
		}
		return []ast.Stmt{&ast.While{Cond: ast.CloneExpr(s.Cond), Body: body, TokPos: s.TokPos}}, nil
	case *ast.Block:
		blk, err := ix.expandBlock(s)
		if err != nil {
			return nil, err
		}
		return []ast.Stmt{blk}, nil
	default:
		return []ast.Stmt{ast.CloneStmt(s)}, nil
	}
}

// expandCall produces the prologue + renamed callee body for one call site,
// recursively expanding the callee's own calls.
func (ix *inliner) expandCall(call *ast.Call) ([]ast.Stmt, error) {
	callee := ix.prog.Proc(call.Callee)
	if callee == nil {
		return nil, fmt.Errorf("inline: call to undefined procedure %q", call.Callee)
	}
	if len(call.Args) != len(callee.Params) {
		return nil, fmt.Errorf("inline: call to %q has %d arguments, want %d",
			call.Callee, len(call.Args), len(callee.Params))
	}
	ix.instances++
	prefix := fmt.Sprintf("%s_%d_", callee.Name, ix.instances)

	// Rename set: parameters plus assigned locals (assigned names that are
	// not globals).
	globals := map[string]bool{}
	for _, g := range ix.prog.Globals {
		globals[g.Name] = true
	}
	rename := map[string]string{}
	for _, p := range callee.Params {
		rename[p.Name] = prefix + p.Name
	}
	ast.Walk(callee.Body.Stmts, func(st ast.Stmt) {
		if a, ok := st.(*ast.Assign); ok && !globals[a.Name] {
			if _, isParam := rename[a.Name]; !isParam {
				rename[a.Name] = prefix + a.Name
			}
		}
	})

	// Reject returns inside the callee: correct expansion would need a jump
	// past the rest of the inlined body.
	var retErr error
	ast.Walk(callee.Body.Stmts, func(st ast.Stmt) {
		if _, ok := st.(*ast.Return); ok && retErr == nil {
			retErr = fmt.Errorf("inline: procedure %q contains a return statement; inlining requires single-exit callees", callee.Name)
		}
	})
	if retErr != nil {
		return nil, retErr
	}

	// Prologue: bind arguments to the instance parameters, preserving the
	// call site's source position so diffs attribute the binding to the
	// call statement.
	var out []ast.Stmt
	for i, p := range callee.Params {
		out = append(out, &ast.Assign{
			Name:   rename[p.Name],
			Value:  ast.CloneExpr(call.Args[i]),
			TokPos: call.TokPos,
		})
	}
	// Body: renamed copy, then recursively expanded.
	renamed := renameBlock(callee.Body, rename)
	expanded, err := ix.expandBlock(renamed)
	if err != nil {
		return nil, err
	}
	out = append(out, expanded.Stmts...)
	return out, nil
}

// renameBlock deep-copies a block, substituting variable names.
func renameBlock(b *ast.Block, rename map[string]string) *ast.Block {
	out := &ast.Block{TokPos: b.TokPos}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, renameStmt(s, rename))
	}
	return out
}

func renameStmt(s ast.Stmt, rename map[string]string) ast.Stmt {
	switch s := s.(type) {
	case *ast.Assign:
		name := s.Name
		if r, ok := rename[name]; ok {
			name = r
		}
		return &ast.Assign{Name: name, Value: renameExpr(s.Value, rename), TokPos: s.TokPos}
	case *ast.If:
		cp := &ast.If{Cond: renameExpr(s.Cond, rename), Then: renameBlock(s.Then, rename), TokPos: s.TokPos}
		if s.Else != nil {
			cp.Else = renameBlock(s.Else, rename)
		}
		return cp
	case *ast.While:
		return &ast.While{Cond: renameExpr(s.Cond, rename), Body: renameBlock(s.Body, rename), TokPos: s.TokPos}
	case *ast.Assert:
		return &ast.Assert{Cond: renameExpr(s.Cond, rename), TokPos: s.TokPos}
	case *ast.Call:
		cp := &ast.Call{Callee: s.Callee, TokPos: s.TokPos}
		for _, a := range s.Args {
			cp.Args = append(cp.Args, renameExpr(a, rename))
		}
		return cp
	case *ast.Block:
		return renameBlock(s, rename)
	default:
		return ast.CloneStmt(s)
	}
}

func renameExpr(e ast.Expr, rename map[string]string) ast.Expr {
	switch e := e.(type) {
	case *ast.Ident:
		if r, ok := rename[e.Name]; ok {
			return &ast.Ident{Name: r, TokPos: e.TokPos}
		}
		return &ast.Ident{Name: e.Name, TokPos: e.TokPos}
	case *ast.Unary:
		return &ast.Unary{Op: e.Op, X: renameExpr(e.X, rename), TokPos: e.TokPos}
	case *ast.Binary:
		return &ast.Binary{Op: e.Op, L: renameExpr(e.L, rename), R: renameExpr(e.R, rename)}
	default:
		return ast.CloneExpr(e)
	}
}
