package inline

import (
	"strings"
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/lang/types"
	"dise/internal/symexec"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestInlineSimpleCall(t *testing.T) {
	src := `
int Out = 0;

proc double(int v) {
  Out = v + v;
}

proc main(int x) {
  double(x + 1);
}
`
	prog := mustParse(t, src)
	flat, err := Program(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Procs) != 1 || flat.Procs[0].Name != "main" {
		t.Fatalf("inlined program shape wrong: %v", flat.Procs)
	}
	if _, err := types.Check(flat); err != nil {
		t.Fatalf("inlined program does not type check: %v\n%s", err, ast.Pretty(flat))
	}
	// No calls remain.
	ast.Walk(flat.Procs[0].Body.Stmts, func(s ast.Stmt) {
		if _, ok := s.(*ast.Call); ok {
			t.Error("call remained after inlining")
		}
	})
	printed := ast.Pretty(flat)
	// The parameter binding and the renamed body must be present.
	if !strings.Contains(printed, "double_1_v = x + 1;") {
		t.Errorf("missing parameter binding:\n%s", printed)
	}
	if !strings.Contains(printed, "Out = double_1_v + double_1_v;") {
		t.Errorf("missing renamed body (global untouched):\n%s", printed)
	}
}

// TestInlineBehaviorEquivalence checks the inlined program computes the
// same symbolic summaries as a hand-inlined equivalent.
func TestInlineBehaviorEquivalence(t *testing.T) {
	multi := `
int Acc = 0;

proc step(int amount, bool enable) {
  if (enable) {
    Acc = Acc + amount;
  } else {
    Acc = Acc - amount;
  }
}

proc run(int a, bool e) {
  step(a, e);
  step(a + 1, e);
}
`
	prog := mustParse(t, multi)
	flat, err := Program(prog, "run")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := symexec.New(flat, "run", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	summary := engine.RunFull()
	// Two calls, each branching on the same symbolic enable: E && E and
	// !E && !E collapse, so exactly 2 feasible paths.
	if len(summary.Paths) != 2 {
		t.Fatalf("paths = %d, want 2\n%s", len(summary.Paths), ast.Pretty(flat))
	}
	// Path 1 (enable): Acc = Acc + a + (a+1) = Acc + 2a + 1... check the
	// final symbolic value mentions Acc and A.
	got := summary.Paths[0].Env["Acc"].String()
	if !strings.Contains(got, "Acc") || !strings.Contains(got, "A") {
		t.Errorf("final Acc = %q, want expression over Acc and A", got)
	}
}

func TestInlineNestedCalls(t *testing.T) {
	src := `
int R = 0;

proc leaf(int v) {
  R = R + v;
}

proc mid(int v) {
  leaf(v);
  leaf(v + 1);
}

proc top(int x) {
  mid(x);
}
`
	flat, err := Program(mustParse(t, src), "top")
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Pretty(flat)
	// Three inline instances: mid_1, leaf_2, leaf_3.
	for _, want := range []string{"mid_1_v = x;", "leaf_2_v = mid_1_v;", "leaf_3_v = mid_1_v + 1;"} {
		if !strings.Contains(printed, want) {
			t.Errorf("missing %q in:\n%s", want, printed)
		}
	}
	if _, err := types.Check(flat); err != nil {
		t.Fatalf("inlined program does not type check: %v", err)
	}
}

func TestInlineDiamondCallGraph(t *testing.T) {
	// f called twice from main: each instance gets fresh locals.
	src := `
int Sum = 0;

proc f(int v) {
  tmp = v * 2;
  Sum = Sum + tmp;
}

proc main(int a, int b) {
  f(a);
  f(b);
}
`
	flat, err := Program(mustParse(t, src), "main")
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Pretty(flat)
	if !strings.Contains(printed, "f_1_tmp") || !strings.Contains(printed, "f_2_tmp") {
		t.Errorf("locals not instance-renamed:\n%s", printed)
	}
	if _, err := types.Check(flat); err != nil {
		t.Fatal(err)
	}
}

func TestInlineCallInsideBranchesAndLoops(t *testing.T) {
	src := `
int Count = 0;

proc bump() {
  Count = Count + 1;
}

proc main(int n) {
  if (n > 0) {
    bump();
  }
  i = 0;
  while (i < 2) {
    bump();
    i = i + 1;
  }
}
`
	flat, err := Program(mustParse(t, src), "main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := types.Check(flat); err != nil {
		t.Fatal(err)
	}
	engine, err := symexec.New(flat, "main", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	summary := engine.RunFull()
	if len(summary.Paths) != 2 {
		t.Fatalf("paths = %d, want 2 (n > 0 and n <= 0)", len(summary.Paths))
	}
	// On the n > 0 path, Count ends at Count + 3 (one branch bump, two
	// loop bumps).
	if got := summary.Paths[0].Env["Count"].String(); got != "Count + 3" {
		t.Errorf("final Count = %q, want Count + 3", got)
	}
}

func TestInlineErrors(t *testing.T) {
	// Unknown entry.
	if _, err := Program(mustParse(t, "proc a() { skip; }"), "zzz"); err == nil {
		t.Error("expected unknown-entry error")
	}
	// Callee with a return statement.
	src := `
proc early() {
  return;
}
proc main() {
  early();
}
`
	if _, err := Program(mustParse(t, src), "main"); err == nil || !strings.Contains(err.Error(), "return") {
		t.Errorf("expected single-exit error, got %v", err)
	}
}

func TestRecursionRejectedByTypeChecker(t *testing.T) {
	direct := `
proc loop(int n) {
  loop(n);
}
`
	if _, err := types.Check(mustParse(t, direct)); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("direct recursion must be rejected, got %v", err)
	}
	mutual := `
proc a(int n) {
  b(n);
}
proc b(int n) {
  a(n);
}
`
	if _, err := types.Check(mustParse(t, mutual)); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("mutual recursion must be rejected, got %v", err)
	}
}

func TestCallTypeChecking(t *testing.T) {
	bad := []struct{ name, src, want string }{
		{"undefined", "proc main() { ghost(); }", "undefined procedure"},
		{"arity", "proc f(int x) { y = x; } proc main() { f(); }", "0 arguments, want 1"},
		{"argtype", "proc f(int x) { y = x; } proc main(bool b) { f(b); }", "is bool, want int"},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			_, err := types.Check(mustParse(t, tt.src))
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("want error containing %q, got %v", tt.want, err)
			}
		})
	}
	ok := "proc f(int x, bool b) { y = x; } proc main(int v) { f(v + 1, true); }"
	if _, err := types.Check(mustParse(t, ok)); err != nil {
		t.Errorf("valid call rejected: %v", err)
	}
}

func TestInlineDeterministic(t *testing.T) {
	src := `
int G = 0;
proc f(int v) { G = G + v; }
proc main(int a) { f(a); f(a + 1); }
`
	flat1, err := Program(mustParse(t, src), "main")
	if err != nil {
		t.Fatal(err)
	}
	flat2, err := Program(mustParse(t, src), "main")
	if err != nil {
		t.Fatal(err)
	}
	if ast.Pretty(flat1) != ast.Pretty(flat2) {
		t.Error("inlining must be deterministic")
	}
}
