// Package analysistest runs an analyzer over testdata packages and checks
// its diagnostics against // want comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the stdlib-only
// framework of internal/analysis.
//
// Layout, as in x/tools: <testdata>/src/<pkgpath>/*.go. Imports in testdata
// files resolve against sibling directories under <testdata>/src first
// (stub packages standing in for the real project ones), then against the
// standard library.
//
// Expectations are comments of the form
//
//	x := foo() // want "substring of the diagnostic"
//
// Every diagnostic must land on a line carrying a matching want, and every
// want must be matched by some diagnostic; anything else fails the test.
// Suppressed diagnostics (//diselint:ignore) are filtered before matching,
// so a line with a suppression comment and no want proves the suppression
// mechanism works.
package analysistest

import (
	"regexp"
	"testing"

	"dise/internal/analysis"
)

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// Run loads each named package from testdata/src and applies the analyzer,
// comparing diagnostics against want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, path := range pkgpaths {
		pkgs, err := l.LoadTestdata(testdata+"/src", path)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", path, err)
		}
		if len(pkgs) == 0 {
			t.Fatalf("analysistest: no packages at %s", path)
		}
		for _, pkg := range pkgs {
			checkPkg(t, pkg, a)
		}
	}
}

type wantKey struct {
	file string
	line int
}

func checkPkg(t *testing.T, pkg *analysis.Package, a *analysis.Analyzer) {
	t.Helper()
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %s: %v", pkg.PkgPath, err)
	}
	// Collect wants: file/line -> list of expected substrings.
	wants := map[wantKey][]string{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					k := wantKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], unquote(m[1]))
				}
			}
		}
	}
	matched := map[wantKey][]bool{}
	for _, d := range diags {
		k := wantKey{d.Position.Filename, d.Position.Line}
		ws := wants[k]
		found := false
		for i, w := range ws {
			if len(matched[k]) == 0 {
				matched[k] = make([]bool, len(ws))
			}
			if !matched[k][i] && contains(d.Message, w) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Position, d.Rule, d.Message)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if len(matched[k]) == 0 || !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w)
			}
		}
	}
}

func contains(msg, want string) bool {
	if want == "" {
		return false
	}
	return regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(msg)
}

func unquote(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		out = append(out, s[i])
	}
	return string(out)
}
