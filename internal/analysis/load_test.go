package analysis

import "testing"

// TestLoadModule type-checks the whole repository through the loader — the
// same path cmd/diselint takes — so a loader regression fails here, not in
// a CI lint step.
func TestLoadModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"dise":                     false,
		"dise/internal/sym":        false,
		"dise/internal/constraint": false,
		"dise/internal/symexec":    false,
	}
	for _, p := range pkgs {
		if _, ok := want[p.PkgPath]; ok {
			want[p.PkgPath] = true
		}
		if p.TypesInfo == nil || len(p.Syntax) == 0 {
			t.Errorf("%s: missing syntax or type info", p.PkgPath)
		}
	}
	for path, seen := range want {
		if !seen {
			t.Errorf("package %s not loaded", path)
		}
	}
}
