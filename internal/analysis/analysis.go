// Package analysis is a self-contained, stdlib-only mirror of the
// golang.org/x/tools/go/analysis API surface that diselint's checkers are
// written against.
//
// The real x/tools module is deliberately not a dependency: this repository
// builds offline with nothing beyond the Go toolchain, so the framework
// (Analyzer/Pass/Diagnostic, a package loader, an analysistest-style
// harness, and the cmd/diselint multichecker driver) is reproduced here on
// top of go/ast, go/parser and go/types. The shapes match x/tools closely
// enough that a checker ports to a real vettool with mechanical edits
// should the dependency ever become available.
//
// # Suppressions
//
// Every rule supports an explicit, audited escape hatch: a comment of the
// form
//
//	//diselint:ignore <rule> <reason>
//
// on the flagged line or on the line directly above it silences that rule
// for that line. The reason is mandatory — a suppression without one is
// itself reported — because each suppression documents why an invariant
// the linter cannot prove (a loop bound, a deliberate raw literal in a
// fallback-path test) holds anyway.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check: a named rule enforcing one project
// invariant.
type Analyzer struct {
	// Name is the rule name used in diagnostics and suppression comments.
	Name string
	// Doc states the invariant the rule enforces (first line: summary).
	Doc string
	// Run applies the rule to one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position // resolved at report time
	Rule     string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Rule:     p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to pkg and returns the surviving diagnostics,
// sorted by position, with //diselint:ignore suppressions applied.
// Malformed suppressions (missing rule or reason) are reported as
// diagnostics of the pseudo-rule "suppression".
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sup, bad := collectSuppressions(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.matches(d.Position.Filename, d.Position.Line, d.Rule) {
			kept = append(kept, d)
		}
	}
	diags = append(kept, bad...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags, nil
}

// suppressions maps file -> line -> set of suppressed rule names. A rule
// name of "*" suppresses every rule on the line (used sparingly).
type suppressions map[string]map[int]map[string]bool

func (s suppressions) matches(file string, line int, rule string) bool {
	lines := s[file]
	if lines == nil {
		return false
	}
	// A suppression applies to its own line and to the line below it (the
	// standalone-comment-above-the-statement form).
	for _, l := range [2]int{line, line - 1} {
		if rules := lines[l]; rules != nil && (rules[rule] || rules["*"]) {
			return true
		}
	}
	return false
}

var suppressRe = regexp.MustCompile(`^//diselint:ignore\s+(\S+)\s*(.*)$`)

func collectSuppressions(pkg *Package) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//diselint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := suppressRe.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Position: pos,
						Rule:     "suppression",
						Message:  "malformed suppression: want //diselint:ignore <rule> <reason>",
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				rules := lines[pos.Line]
				if rules == nil {
					rules = map[string]bool{}
					lines[pos.Line] = rules
				}
				rules[m[1]] = true
			}
		}
	}
	return sup, bad
}

// ---- shared AST/type helpers used by the checkers ----

// MatchPkg reports whether a package path denotes the project package with
// the given base name: the real module path ("dise/internal/<base>"), any
// module's "internal/<base>", or the bare name used by analyzer testdata
// stubs ("<base>").
func MatchPkg(path, base string) bool {
	return path == "dise/internal/"+base ||
		strings.HasSuffix(path, "/internal/"+base) ||
		path == base
}

// WalkWithStack visits every node of f, passing the stack of ancestors
// (innermost last, not including n itself).
func WalkWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// NamedOf unwraps pointers and returns the named type of t, or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// HasBoolField reports whether t (through pointers) is a struct with a
// bool field of the given name.
func HasBoolField(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == name {
			b, ok := f.Type().Underlying().(*types.Basic)
			return ok && b.Kind() == types.Bool
		}
	}
	return false
}
