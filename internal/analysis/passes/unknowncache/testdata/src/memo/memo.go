// Package memo is a miniature stub of dise/internal/memo for analyzer
// tests.
package memo

// Node is a trie node holding recorded verdicts.
type Node struct {
	Sats []bool
}

// Record appends a verdict. Callers must not record Unknown results.
func (n *Node) Record(sat bool, model map[string]int64) {
	n.Sats = append(n.Sats, sat)
}
