// Package a seeds unknowncache violations and non-violations.
package a

import "memo"

// Result mirrors the solver verdict shape.
type Result struct {
	Sat     bool
	Unknown bool
	Model   map[string]int64
}

type entry struct {
	res *Result
	box map[string]int
}

// PrefixCache mirrors the constraint cache sink.
type PrefixCache struct {
	m map[uint64]entry
}

func (c *PrefixCache) put(k uint64, e entry) { c.m[k] = e }

func solve() Result { return Result{} }

// Bad: an unguarded verdict flows into the cache.
func badPut(c *PrefixCache, k uint64) {
	res := solve()
	c.put(k, entry{res: &res}) // want "cached without a dominating !Unknown guard"
}

// Bad: guard exists but the sink is in the wrong branch.
func badElse(c *PrefixCache, k uint64) {
	res := solve()
	if !res.Unknown {
		_ = res
	} else {
		c.put(k, entry{res: &res}) // want "cached without a dominating !Unknown guard"
	}
}

// Bad: unguarded memo recording.
func badRecord(n *memo.Node) {
	res := solve()
	n.Record(res.Sat, res.Model) // want "memo recording without a dominating !Unknown guard"
}

// Bad: ad-hoc verdict map store without a guard.
func badMap(cache map[string]Result, key string) {
	res := solve()
	cache[key] = res // want "cached without a dominating !Unknown guard"
}

// Good: enclosing !Unknown guard.
func goodGuard(c *PrefixCache, k uint64) {
	res := solve()
	if !res.Unknown {
		c.put(k, entry{res: &res})
	}
}

// Good: early exit on Unknown dominates the sink.
func goodEarlyExit(c *PrefixCache, k uint64) {
	res := solve()
	if res.Unknown {
		return
	}
	c.put(k, entry{res: &res})
}

// Good: early continue inside a loop.
func goodEarlyContinue(c *PrefixCache, ks []uint64, n *memo.Node) {
	for _, k := range ks {
		res := solve()
		if res.Unknown {
			continue
		}
		c.put(k, entry{res: &res})
		n.Record(res.Sat, res.Model)
	}
}

// Good: the stored verdict is a literal that never sets Unknown.
func goodLiteral(c *PrefixCache, k uint64, model map[string]int64) {
	res := Result{Sat: true, Model: model}
	c.put(k, entry{res: &res})
	unsat := Result{}
	c.put(k, entry{res: &unsat})
}

// Good: box-only entries carry no verdict at all.
func goodBoxOnly(c *PrefixCache, k uint64, box map[string]int) {
	c.put(k, entry{box: box})
}

// Good: constant bool verdicts are definitional — nothing Unknown can flow
// in (the shape of memo trie test fixtures).
func goodConstRecord(n *memo.Node, model map[string]int64) {
	n.Record(true, model)
	n.Record(false, nil)
}

// Good: compound guard with other conjuncts (the engine's Record site).
func goodCompound(n *memo.Node) {
	res := solve()
	if n != nil && !res.Unknown {
		n.Record(res.Sat, res.Model)
	}
}

// Suppressed: documented exception; no want comment proves suppression.
func suppressed(cache map[string]Result, key string) {
	res := solve()
	//diselint:ignore unknowncache test fixture cache is discarded before reuse
	cache[key] = res
}
