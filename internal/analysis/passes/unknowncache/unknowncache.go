// Package unknowncache enforces the Unknown contract pinned in PR 2: an
// Unknown solver verdict is budget- and interrupt-dependent, so it must
// never be cached, memoized, or recorded — a cached Unknown would be
// replayed as a fact and silently corrupt later runs (treated as
// unsatisfiable, it prunes feasible paths).
//
// Sinks:
//   - calls to a put/Put method on a *Cache-named type (the constraint
//     PrefixCache) passing a verdict-carrying value,
//   - calls to a Record method on a type declared in internal/memo (the
//     execution-tree trie),
//   - map stores whose value type carries an Unknown field (ad-hoc verdict
//     caches).
//
// A sink is accepted only when the stored verdict is provably not Unknown:
// it is (or was defined as) a literal that never sets Unknown, every bool it
// records is a compile-time constant (a definitional verdict, as in test
// fixtures), or the sink is dominated by a `!v.Unknown` guard — an enclosing
// if on the negated field, or an earlier `if v.Unknown
// { return/continue/break }` in an enclosing block.
package unknowncache

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dise/internal/analysis"
)

// Analyzer is the unknowncache rule.
var Analyzer = &analysis.Analyzer{
	Name: "unknowncache",
	Doc:  "values stored in verdict caches must be dominated by a != Unknown guard",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.WalkWithStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, stack)
			case *ast.AssignStmt:
				checkMapStore(pass, n, stack)
			}
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := analysis.NamedOf(pass.TypesInfo.Types[sel.X].Type)
	if recv == nil || recv.Obj() == nil {
		return
	}
	switch sel.Sel.Name {
	case "put", "Put":
		if !strings.Contains(strings.ToLower(recv.Obj().Name()), "cache") {
			return
		}
		for _, arg := range call.Args {
			for _, v := range verdictValues(pass, arg) {
				checkVerdict(pass, call, v, stack)
			}
		}
	case "Record":
		pkg := recv.Obj().Pkg()
		if pkg == nil || !analysis.MatchPkg(pkg.Path(), "memo") {
			return
		}
		// The recorded sat/model are projected off a Result upstream; require
		// a dominating Unknown guard at the call site. A call whose every
		// bool argument is a compile-time constant records a definitional
		// verdict, not a solver projection — nothing Unknown can flow in.
		if constantVerdicts(pass, call) {
			return
		}
		if !guarded(pass, call, nil, stack) {
			pass.Reportf(call.Pos(), "memo recording without a dominating !Unknown guard: Unknown verdicts are budget/interrupt-dependent and must never be recorded (a replayed Unknown silently prunes feasible paths)")
		}
	}
}

// constantVerdicts reports whether every boolean argument of the call is a
// compile-time constant (true/false literals, named constants).
func constantVerdicts(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		tv := pass.TypesInfo.Types[arg]
		if tv.Type == nil {
			continue
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
			if tv.Value == nil {
				return false
			}
		}
	}
	return true
}

func checkMapStore(pass *analysis.Pass, as *ast.AssignStmt, stack []ast.Node) {
	for i, lhs := range as.Lhs {
		idx, ok := lhs.(*ast.IndexExpr)
		if !ok || i >= len(as.Rhs) {
			continue
		}
		t := pass.TypesInfo.Types[idx.X].Type
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		if analysis.HasBoolField(pass.TypesInfo.Types[as.Rhs[i]].Type, "Unknown") {
			checkVerdict(pass, as, as.Rhs[i], stack)
		}
	}
}

// verdictValues extracts the verdict-carrying sub-values of a sink
// argument: the argument itself, or verdict-typed fields of a composite
// literal (e.g. prefixEntry{res: &res}). A literal with no verdict field —
// a box-only cache entry — yields nothing.
func verdictValues(pass *analysis.Pass, arg ast.Expr) []ast.Expr {
	if analysis.HasBoolField(pass.TypesInfo.Types[arg].Type, "Unknown") {
		return []ast.Expr{arg}
	}
	lit, ok := arg.(*ast.CompositeLit)
	if !ok {
		if u, isAddr := arg.(*ast.UnaryExpr); isAddr && u.Op == token.AND {
			lit, ok = u.X.(*ast.CompositeLit)
		}
		if !ok {
			return nil
		}
	}
	var out []ast.Expr
	for _, elt := range lit.Elts {
		v := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if analysis.HasBoolField(pass.TypesInfo.Types[v].Type, "Unknown") {
			out = append(out, v)
		}
	}
	return out
}

// checkVerdict reports v's sink unless v is provably non-Unknown.
func checkVerdict(pass *analysis.Pass, sink ast.Node, v ast.Expr, stack []ast.Node) {
	obj := rootObj(pass, v)
	if safeLiteral(pass, v, stack) {
		return
	}
	if guarded(pass, sink, obj, stack) {
		return
	}
	pass.Reportf(sink.Pos(), "verdict %s cached without a dominating !Unknown guard: Unknown is budget/interrupt-dependent and must never be cached (a reused Unknown silently prunes feasible paths)", types.ExprString(v))
}

// rootObj resolves v (ident or &ident) to its variable object.
func rootObj(pass *analysis.Pass, v ast.Expr) types.Object {
	if u, ok := v.(*ast.UnaryExpr); ok && u.Op == token.AND {
		v = u.X
	}
	id, ok := v.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// safeLiteral reports whether v is a composite literal (directly, or via
// the single := definition of an identifier) that never sets Unknown true.
func safeLiteral(pass *analysis.Pass, v ast.Expr, stack []ast.Node) bool {
	if u, ok := v.(*ast.UnaryExpr); ok && u.Op == token.AND {
		v = u.X
	}
	if lit, ok := v.(*ast.CompositeLit); ok {
		return litNeverUnknown(pass, lit)
	}
	id, ok := v.(*ast.Ident)
	if !ok {
		return false
	}
	obj := rootObj(pass, id)
	if obj == nil {
		return false
	}
	fn := enclosingFunc(stack)
	if fn == nil {
		return false
	}
	def := definingExpr(pass, fn, obj)
	if def == nil {
		return false
	}
	if u, ok := def.(*ast.UnaryExpr); ok && u.Op == token.AND {
		def = u.X
	}
	lit, ok := def.(*ast.CompositeLit)
	return ok && litNeverUnknown(pass, lit)
}

// litNeverUnknown: keyed literal without an Unknown key, or with
// Unknown: false; positional literal whose Unknown slot is constant false
// or beyond the given elements.
func litNeverUnknown(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	st, ok := derefStruct(pass.TypesInfo.Types[lit].Type)
	if !ok {
		return false
	}
	keyed := len(lit.Elts) > 0
	for _, e := range lit.Elts {
		if _, ok := e.(*ast.KeyValueExpr); !ok {
			keyed = false
			break
		}
	}
	if keyed || len(lit.Elts) == 0 {
		for _, e := range lit.Elts {
			kv := e.(*ast.KeyValueExpr)
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Unknown" {
				return isConstFalse(pass, kv.Value)
			}
		}
		return true
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Unknown" {
			if i >= len(lit.Elts) {
				return true
			}
			return isConstFalse(pass, lit.Elts[i])
		}
	}
	return true
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func isConstFalse(pass *analysis.Pass, e ast.Expr) bool {
	tv := pass.TypesInfo.Types[e]
	return tv.Value != nil && tv.Value.String() == "false"
}

// definingExpr finds the RHS of obj's := (or var) definition within fn.
func definingExpr(pass *analysis.Pass, fn ast.Node, obj types.Object) ast.Expr {
	var out ast.Expr
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Defs[id] == obj && i < len(n.Rhs) && len(n.Rhs) == len(n.Lhs) {
					out = n.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] == obj && i < len(n.Values) {
					out = n.Values[i]
				}
			}
		}
		return out == nil
	})
	return out
}

// guarded reports whether sink is dominated by a !Unknown guard on obj
// (any object when obj is nil): an enclosing if whose then-branch holds the
// sink and whose condition requires !x.Unknown, or an earlier statement in
// an enclosing block of the form `if x.Unknown { return/continue/break }`.
func guarded(pass *analysis.Pass, sink ast.Node, obj types.Object, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			inThen := i+1 < len(stack) && stack[i+1] == anc.Body
			if inThen && condHasNotUnknown(pass, anc.Cond, obj) {
				return true
			}
		case *ast.BlockStmt:
			if i+1 >= len(stack) {
				continue
			}
			child := stack[i+1]
			for _, st := range anc.List {
				if st == child {
					break
				}
				ifst, ok := st.(*ast.IfStmt)
				if !ok {
					continue
				}
				if condHasPositiveUnknown(pass, ifst.Cond, obj) && terminates(ifst.Body) {
					return true
				}
			}
		}
	}
	return false
}

// condHasNotUnknown: the condition contains !x.Unknown (or x.Unknown ==
// false) for the given object.
func condHasNotUnknown(pass *analysis.Pass, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.NOT && isUnknownSel(pass, n.X, obj) {
				found = true
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL {
				if (isUnknownSel(pass, n.X, obj) && isConstFalse(pass, n.Y)) ||
					(isUnknownSel(pass, n.Y, obj) && isConstFalse(pass, n.X)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// condHasPositiveUnknown: the condition contains a bare x.Unknown (not
// under !) for the given object.
func condHasPositiveUnknown(pass *analysis.Pass, cond ast.Expr, obj types.Object) bool {
	found := false
	var walk func(e ast.Expr, negated bool)
	walk = func(e ast.Expr, negated bool) {
		switch e := e.(type) {
		case *ast.ParenExpr:
			walk(e.X, negated)
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				walk(e.X, !negated)
			}
		case *ast.BinaryExpr:
			walk(e.X, negated)
			walk(e.Y, negated)
		case *ast.SelectorExpr:
			if !negated && isUnknownSel(pass, e, obj) {
				found = true
			}
		}
	}
	walk(cond, false)
	return found
}

func isUnknownSel(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	if p, ok := e.(*ast.ParenExpr); ok {
		e = p.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Unknown" {
		return false
	}
	if obj == nil {
		return true
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && (pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj)
}

func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.BREAK || last.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
