// Package fpkeys enforces the cache-key representation invariant of PR 5:
// cache keys are derived from the interner's precomputed structural
// fingerprint pairs (sym.Fingerprints), never from String() renderings.
//
// Rendering-based keys were removed for two reasons. They cost a full
// rendering pass plus a byte-wise hash walk on every cache probe, on
// expressions whose fingerprints are O(1) field reads. Worse, they are
// unsound as identities: two structurally distinct expressions can render
// identically (the rendering drops interning distinctions), so a
// rendering-keyed cache can serve one expression's verdict for the other.
//
// The rule: the result of a String() call on a sym expression (or of
// sym.Conjoin, the path-condition renderer) must not flow into a
// key-shaped sink — a key-extension/key-building call, a hash writer, a
// map index, or a *key struct literal. Rendering for diagnostics, logs and
// error messages is untouched.
package fpkeys

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dise/internal/analysis"
)

// Analyzer is the fpkeys rule.
var Analyzer = &analysis.Analyzer{
	Name: "fpkeys",
	Doc:  "cache keys must be built from fingerprint pairs, not String() renderings of sym expressions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.WalkWithStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !rendersSymExpr(pass, call) {
				return
			}
			if sink := keySink(pass, call, stack); sink != "" {
				pass.Reportf(call.Pos(), "sym expression rendering used as a cache key (%s); key on the fingerprint pair (sym.Fingerprints) instead — renderings are slow to hash and structurally distinct expressions may render alike", sink)
			}
		})
	}
	return nil
}

// rendersSymExpr reports whether call renders a sym expression: a String()
// method call on a value of a sym node or interface type, or sym.Conjoin.
func rendersSymExpr(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "String":
		if len(call.Args) != 0 {
			return false
		}
		return isSymExprType(pass.TypesInfo.Types[sel.X].Type)
	case "Conjoin":
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				return analysis.MatchPkg(pn.Imported().Path(), "sym")
			}
		}
	}
	return false
}

// isSymExprType: a named type declared in the sym package that is an
// expression node (exprNode marker) or the Expr interface itself.
func isSymExprType(t types.Type) bool {
	named := analysis.NamedOf(t)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	if !analysis.MatchPkg(named.Obj().Pkg().Path(), "sym") {
		return false
	}
	if named.Obj().Name() == "Expr" {
		return true
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "exprNode" {
			return true
		}
	}
	return false
}

// keySink climbs from the rendering call through value-preserving parents
// (parens, string concatenation, string/[]byte conversions, Sprintf) and
// names the key-shaped sink the rendering lands in, or "".
func keySink(pass *analysis.Pass, n ast.Node, stack []ast.Node) string {
	cur := ast.Node(n)
	for i := len(stack) - 1; i >= 0; i-- {
		parent := stack[i]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.BinaryExpr:
			if p.Op == token.ADD {
				cur = p
				continue
			}
			return ""
		case *ast.KeyValueExpr:
			if p.Value == cur {
				cur = p
				continue
			}
			return ""
		case *ast.CompositeLit:
			if named := analysis.NamedOf(pass.TypesInfo.Types[p].Type); named != nil &&
				strings.Contains(strings.ToLower(named.Obj().Name()), "key") {
				return "field of key struct " + named.Obj().Name()
			}
			return ""
		case *ast.IndexExpr:
			if p.Index == cur {
				if t := pass.TypesInfo.Types[p.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return "map key"
					}
				}
			}
			return ""
		case *ast.CallExpr:
			name, recvT := calleeName(pass, p)
			switch {
			case isConversion(pass, p) || name == "Sprintf" || name == "Sprint":
				cur = p
				continue
			case name == "extend" || strings.Contains(strings.ToLower(name), "key"):
				return "argument of " + name
			case (name == "Write" || name == "WriteString" || name == "Sum") && isHashRecv(recvT):
				return "hash input via " + name
			}
			return ""
		default:
			return ""
		}
	}
	return ""
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) (string, types.Type) {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name, nil
	case *ast.SelectorExpr:
		return f.Sel.Name, pass.TypesInfo.Types[f.X].Type
	}
	return "", nil
}

func isConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// isHashRecv: the receiver's type is declared under hash/ or crypto/ (fnv,
// maphash, sha256, ...), or implements hash.Hash loosely (has Sum64/Sum32).
func isHashRecv(t types.Type) bool {
	named := analysis.NamedOf(t)
	if named != nil && named.Obj() != nil && named.Obj().Pkg() != nil {
		p := named.Obj().Pkg().Path()
		if strings.HasPrefix(p, "hash") || strings.HasPrefix(p, "crypto") {
			return true
		}
	}
	if t == nil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i).Name()
			if m == "Sum64" || m == "Sum32" || m == "BlockSize" {
				return true
			}
		}
	}
	return false
}
