// Package a seeds fpkeys violations and non-violations.
package a

import (
	"fmt"
	"hash/fnv"

	"sym"
)

type prefixKey struct {
	h uint64
}

func (k prefixKey) extend(s string) prefixKey {
	h := fnv.New64a()
	h.Write([]byte(s))
	return prefixKey{h: k.h ^ h.Sum64()}
}

type cacheKey struct {
	render string
}

func keyFor(s string) string { return "k:" + s }

// Bad: rendering hashed into a key.
func badHash(e sym.Expr) uint64 {
	h := fnv.New64a()
	h.Write([]byte(e.String())) // want "sym expression rendering used as a cache key (hash input via Write)"
	return h.Sum64()
}

// Bad: rendering used as a map key.
func badMapKey(cache map[string]bool, e sym.Expr) bool {
	return cache[e.String()] // want "sym expression rendering used as a cache key (map key)"
}

// Bad: rendering extended into the chained prefix key.
func badExtend(k prefixKey, e sym.Expr) prefixKey {
	return k.extend("c:" + e.String()) // want "sym expression rendering used as a cache key (argument of extend)"
}

// Bad: rendering stored in a key struct.
func badKeyStruct(e sym.Expr) cacheKey {
	return cacheKey{render: e.String()} // want "sym expression rendering used as a cache key (field of key struct cacheKey)"
}

// Bad: rendering laundered through Sprintf into a key builder.
func badSprintf(e sym.Expr) string {
	return keyFor(fmt.Sprintf("%v/%s", 1, e.String())) // want "sym expression rendering used as a cache key (argument of keyFor)"
}

// Bad: a rendered path condition as a map key.
func badConjoin(memo map[string]int, pc []sym.Expr) int {
	return memo[sym.Conjoin(pc)] // want "sym expression rendering used as a cache key (map key)"
}

// Good: rendering for diagnostics and errors is fine.
func goodDiagnostics(e sym.Expr) error {
	fmt.Println(e.String())
	return fmt.Errorf("infeasible: %s", e.String())
}

// Good: fingerprint-pair keys are the sanctioned form.
func goodFingerprint(cache map[[2]uint64]bool, e sym.Expr) bool {
	f1, f2 := sym.Fingerprints(e)
	return cache[[2]uint64{f1, f2}]
}

// Good: a non-sym String() used as a key is out of scope.
type version struct{ v int }

func (v version) String() string { return "v" }

func goodOtherString(cache map[string]bool, v version) bool {
	return cache[v.String()]
}

// Suppressed: documented exception; no want comment proves suppression.
func suppressed(cache map[string]bool, e sym.Expr) bool {
	//diselint:ignore fpkeys golden-file fixture is keyed by rendering on purpose
	return cache[e.String()]
}
