// Package sym is a miniature stub of dise/internal/sym for analyzer tests.
package sym

// Expr mirrors the real IR interface.
type Expr interface {
	exprNode()
	String() string
}

// Var is a symbolic variable node.
type Var struct {
	Name string
}

func (*Var) exprNode() {}

func (v *Var) String() string { return v.Name }

// V is a smart constructor.
func V(name string) *Var { return &Var{Name: name} }

// Fingerprints returns the canonical fingerprint pair.
func Fingerprints(e Expr) (uint64, uint64) { return 0, 0 }

// Conjoin renders a conjunction of constraints.
func Conjoin(cs []Expr) string {
	out := ""
	for i, c := range cs {
		if i > 0 {
			out += " && "
		}
		out += c.String()
	}
	return out
}
