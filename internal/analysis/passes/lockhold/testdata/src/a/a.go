// Package a seeds lockhold violations and non-violations.
package a

import (
	"sync"

	"constraint"
)

type shard struct {
	mu sync.Mutex
	m  map[string]int
}

// Bad: solver check under a straight-line lock/unlock pair.
func badCheck(s *shard, b constraint.Backend) constraint.Result {
	s.mu.Lock()
	res := b.Check() // want "mutex s.mu is held across a solver Check call"
	s.mu.Unlock()
	return res
}

// Bad: deferred unlock holds the lock across the whole function.
func badDeferCheck(s *shard, b constraint.Backend) constraint.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return b.Check() // want "mutex s.mu is held across a solver Check call"
}

// Bad: channel operations while holding the lock.
func badChannel(s *shard, ch chan int) int {
	s.mu.Lock()
	ch <- 1 // want "mutex s.mu is held across a channel send"
	v := <-ch // want "mutex s.mu is held across a channel receive"
	s.mu.Unlock()
	return v
}

// Bad: the early-return pattern still holds the lock at the check between
// the branch unlock and the final unlock.
func badEarlyReturn(s *shard, b constraint.Backend, k string) int {
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.mu.Unlock()
		return v
	}
	b.Check() // want "mutex s.mu is held across a solver Check call"
	s.mu.Unlock()
	return 0
}

// Good: check after releasing the lock.
func goodUnlockFirst(s *shard, b constraint.Backend, k string) constraint.Result {
	s.mu.Lock()
	_ = s.m[k]
	s.mu.Unlock()
	return b.Check()
}

// Good: map work under the lock is what the lock is for.
func goodMapWork(s *shard, k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k]++
	return s.m[k]
}

// Good: the channel op runs in a spawned goroutine, not under the lock.
func goodGoroutine(s *shard, ch chan int) {
	s.mu.Lock()
	go func() { ch <- 1 }()
	s.mu.Unlock()
}

// Good: sequential lock/unlock cycles do not leak the region across the
// unlocked gap.
func goodCycles(s *shard, b constraint.Backend) {
	s.mu.Lock()
	s.m["a"] = 1
	s.mu.Unlock()

	b.Check()

	s.mu.Lock()
	s.m["b"] = 2
	s.mu.Unlock()
}

// Suppressed: documented exception; no want comment proves suppression.
func suppressed(s *shard, ch chan int) {
	s.mu.Lock()
	//diselint:ignore lockhold buffered signal channel, send can never block
	ch <- 1
	s.mu.Unlock()
}
