// Package constraint is a miniature stub of dise/internal/constraint for
// analyzer tests.
package constraint

// Result is a solver verdict.
type Result struct {
	Sat bool
}

// Backend is the pluggable solver interface.
type Backend interface {
	Check() Result
}
