// Package lockhold enforces the lock-granularity invariant behind the
// PR 5 interner and the shared caches: a sync.Mutex/RWMutex — interner
// shard, prefix-cache, scheduler state — must never be held across a
// solver check (Backend.Check / CheckPC, unbounded work under a global
// lock serializes every engine in the process) or a channel operation
// (blocking on a channel while holding a shard lock is a deadlock waiting
// for interleavings the race detector cannot see).
//
// The held region is approximated lexically: from an `x.Lock()` statement
// to its matching `x.Unlock()` sibling statement (the straight-line
// pattern), to the last matching Unlock in the function when the pair
// spans branches (the interner's early-return pattern), or to the end of
// the function when the Unlock is deferred. Function literals inside the
// region are skipped: code in a goroutine or deferred closure does not run
// while the lock is held at the spawn site.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"dise/internal/analysis"
)

// Analyzer is the lockhold rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "mutexes must not be held across Backend.Check or channel operations",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

type lockRegion struct {
	mutex      string // ExprString of the locked value
	start, end token.Pos
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var regions []lockRegion
	// Gather lock statements anywhere in the function.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions have their own pass
		}
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		mu, isLock := mutexCall(pass, stmt.X, "Lock", "RLock")
		if !isLock {
			return true
		}
		regions = append(regions, lockRegion{
			mutex: mu,
			start: stmt.Pos(),
			end:   regionEnd(pass, body, stmt, mu),
		})
		return true
	})
	if len(regions) == 0 {
		return
	}
	// Flag sinks inside any region.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var what string
		var pos token.Pos
		switch s := n.(type) {
		case *ast.SendStmt:
			what, pos = "a channel send", s.Pos()
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				what, pos = "a channel receive", s.Pos()
			}
		case *ast.SelectStmt:
			what, pos = "a select statement", s.Pos()
		case *ast.CallExpr:
			if name, ok := solverCheckCall(pass, s); ok {
				what, pos = name, s.Pos()
			}
		}
		if what == "" {
			return true
		}
		for _, r := range regions {
			if pos > r.start && pos < r.end {
				pass.Reportf(pos, "mutex %s is held across %s; unlock before it (a lock held across a solver check serializes every engine, one held across a channel operation risks deadlock)", r.mutex, what)
				break
			}
		}
		return true
	})
}

// mutexCall reports whether e is a call of one of the given methods on a
// sync.Mutex/RWMutex-typed value, returning the rendered receiver.
func mutexCall(pass *analysis.Pass, e ast.Expr, methods ...string) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	found := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			found = true
			break
		}
	}
	if !found {
		return "", false
	}
	named := analysis.NamedOf(pass.TypesInfo.Types[sel.X].Type)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return "", false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// regionEnd finds where the lock taken at stmt is released: a deferred
// unlock means the end of the function; a sibling unlock in the same block
// ends the region there; otherwise the last matching unlock anywhere in
// the function (the early-return multi-exit pattern); otherwise the end of
// the function.
func regionEnd(pass *analysis.Pass, body *ast.BlockStmt, lock *ast.ExprStmt, mu string) token.Pos {
	// Deferred unlock anywhere after the lock → held to function end.
	deferred := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Pos() > lock.Pos() {
			if m, ok := mutexCall(pass, d.Call, "Unlock", "RUnlock"); ok && m == mu {
				deferred = true
			}
		}
		return !deferred
	})
	if deferred {
		return body.End()
	}
	// Sibling unlock in the enclosing block.
	if blk := enclosingBlock(body, lock); blk != nil {
		for _, st := range blk.List {
			if st.Pos() <= lock.Pos() {
				continue
			}
			if es, ok := st.(*ast.ExprStmt); ok {
				if m, ok := mutexCall(pass, es.X, "Unlock", "RUnlock"); ok && m == mu {
					return es.Pos()
				}
			}
		}
	}
	// Last matching unlock anywhere after the lock.
	var last token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if es, ok := n.(*ast.ExprStmt); ok && es.Pos() > lock.Pos() {
			if m, ok := mutexCall(pass, es.X, "Unlock", "RUnlock"); ok && m == mu {
				last = es.End()
			}
		}
		return true
	})
	if last != token.NoPos {
		return last
	}
	return body.End()
}

// enclosingBlock finds the innermost block of body containing stmt as a
// direct child.
func enclosingBlock(body *ast.BlockStmt, stmt ast.Stmt) *ast.BlockStmt {
	var out *ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for _, st := range blk.List {
			if st == stmt {
				out = blk
			}
		}
		return out == nil
	})
	return out
}

// solverCheckCall reports whether call is a solver check: a Check/CheckPC
// method on a type (or interface) declared in a constraint/solver package.
func solverCheckCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if name := sel.Sel.Name; name != "Check" && name != "CheckPC" {
		return "", false
	}
	named := analysis.NamedOf(pass.TypesInfo.Types[sel.X].Type)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	p := named.Obj().Pkg().Path()
	if analysis.MatchPkg(p, "constraint") || analysis.MatchPkg(p, "solver") {
		return "a solver " + sel.Sel.Name + " call", true
	}
	return "", false
}
