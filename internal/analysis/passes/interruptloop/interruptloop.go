// Package interruptloop enforces the cancellation contract of PR 1: every
// loop in the engine-side packages (internal/symexec, internal/solver,
// internal/dise, internal/constraint) that can iterate unboundedly must
// observe the interrupt/budget machinery, so a context cancellation or an
// exhausted budget stops the run within one iteration.
//
// "Can iterate unboundedly" is approximated conservatively: a `for` loop
// with no post statement — `for {}` or `for cond {}` — is the worklist /
// wait-loop shape whose trip count the analyzer cannot bound. Such a loop
// must mention one of the cancellation hooks (an identifier containing
// interrupt, budget, stop, cancel, done, ctx or deadline) in its condition
// or body. Loops with a post statement and range loops are assumed bounded.
// A loop that is provably bounded for another reason (binary search, stack
// pops, LRU trim) carries a //diselint:ignore interruptloop comment stating
// the bound.
package interruptloop

import (
	"go/ast"
	"strings"

	"dise/internal/analysis"
)

// Analyzer is the interruptloop rule.
var Analyzer = &analysis.Analyzer{
	Name: "interruptloop",
	Doc:  "potentially unbounded loops in engine packages must check the interrupt/budget hook",
	Run:  run,
}

// enginePkgs are the packages whose loops sit under the cancellation
// contract.
var enginePkgs = []string{
	"symexec", "solver", "dise", "constraint",
	"constraint/smtlib", "constraint/portfolio", "constraint/chaos",
}

// hookWords are identifier fragments that witness a cancellation check.
var hookWords = []string{"interrupt", "budget", "stop", "cancel", "done", "ctx", "deadline"}

func run(pass *analysis.Pass) error {
	covered := false
	for _, base := range enginePkgs {
		if analysis.MatchPkg(pass.Pkg.Path(), base) {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if loop.Post != nil {
				return true // counted loop: assumed bounded
			}
			if loop.Cond != nil && mentionsHook(loop.Cond) {
				return true
			}
			if mentionsHook(loop.Body) {
				return true
			}
			pass.Reportf(loop.Pos(), "potentially unbounded loop without an interrupt/budget check: poll the interrupt hook (or document the bound with //diselint:ignore interruptloop <reason>) so cancellation stops the run within one iteration")
			return true
		})
	}
	return nil
}

func mentionsHook(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return !found
		}
		name := strings.ToLower(id.Name)
		for _, w := range hookWords {
			if strings.Contains(name, w) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
