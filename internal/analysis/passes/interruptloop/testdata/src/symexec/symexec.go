// Package symexec stands in for dise/internal/symexec: its path matches an
// engine package, so the cancellation contract applies.
package symexec

// Config mirrors the engine's interrupt hook.
type Config struct {
	Interrupt func() error
}

type frontier struct {
	items []int
}

func (f *frontier) Len() int { return len(f.items) }
func (f *frontier) Pop() int {
	it := f.items[len(f.items)-1]
	f.items = f.items[:len(f.items)-1]
	return it
}
func (f *frontier) Push(x int) { f.items = append(f.items, x) }

// Bad: a worklist loop that never polls the interrupt hook.
func badWorklist(f *frontier) int {
	n := 0
	for f.Len() > 0 { // want "potentially unbounded loop without an interrupt/budget check"
		it := f.Pop()
		if it > 1 {
			f.Push(it - 1)
			f.Push(it - 2)
		}
		n++
	}
	return n
}

// Bad: an infinite select-less wait loop with no cancellation path.
func badSpin(ready *bool) {
	for { // want "potentially unbounded loop without an interrupt/budget check"
		if *ready {
			return
		}
	}
}

// Good: the loop polls the interrupt hook.
func goodInterrupt(f *frontier, cfg Config) int {
	n := 0
	for f.Len() > 0 {
		if cfg.Interrupt != nil && cfg.Interrupt() != nil {
			return n
		}
		it := f.Pop()
		if it > 1 {
			f.Push(it - 1)
		}
		n++
	}
	return n
}

// Good: budget counting bounds the loop.
func goodBudget(f *frontier, budget int) int {
	n := 0
	for f.Len() > 0 {
		budget--
		if budget <= 0 {
			return n
		}
		f.Pop()
		n++
	}
	return n
}

// Good: a stopped flag is a cancellation check.
func goodStopped(f *frontier, stopped *bool) {
	for f.Len() > 0 {
		if *stopped {
			return
		}
		f.Pop()
	}
}

// Good: counted loops are assumed bounded.
func goodCounted(xs []int) int {
	n := 0
	for i := 0; i < len(xs); i++ {
		n += xs[i]
	}
	for _, x := range xs {
		n += x
	}
	return n
}

// Suppressed: provably bounded; no want comment proves the suppression.
func goodBinarySearch(xs []int, v int) int {
	lo, hi := 0, len(xs)
	//diselint:ignore interruptloop bounded: the [lo,hi) window halves every iteration
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
