// Package other is outside the engine packages: the cancellation contract
// does not apply, so nothing here is flagged.
package other

func spin(ready *bool) {
	for {
		if *ready {
			return
		}
	}
}
