// Package maporder enforces the determinism invariant behind every
// byte-identical equivalence gate: output assembled by iterating a Go map
// must be sorted before it can escape.
//
// Go randomizes map iteration order per run. A `for range` over a map whose
// body appends to a slice declared outside the loop (or concatenates onto
// an outer string) therefore produces a different sequence on every
// execution — unless the function sorts that slice after the loop. All four
// equivalence gates (backend identity, scheduler identity, session-vs-cold,
// hot-path representation change) compare emitted paths and stats
// byte-for-byte, so one unsorted emission shows up as a flaky
// 40-version-gate failure three PRs later.
//
// Order-insensitive map consumption (building another map, counting,
// reducing to a bool or a sum) is deliberately not flagged.
package maporder

import (
	"go/ast"
	"go/types"

	"dise/internal/analysis"
)

// Analyzer is the maporder rule.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "map-range loops that append to an escaping slice must be followed by a sort",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.WalkWithStack(f, func(n ast.Node, stack []ast.Node) {
			loop, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := pass.TypesInfo.Types[loop.X].Type
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			fnBody := enclosingFuncBody(stack)
			if fnBody == nil {
				return
			}
			for _, tgt := range emissionTargets(pass, loop) {
				if !sortedAfter(pass, fnBody, loop, tgt) {
					pass.Reportf(loop.Pos(), "map iteration appends to %s in nondeterministic order; sort it after the loop or iterate sorted keys (determinism invariant: all equivalence gates are byte-identical)", types.ExprString(tgt))
				}
			}
		})
	}
	return nil
}

// emissionTargets returns the order-sensitive accumulation targets of the
// loop body: arguments of append calls and targets of string +=, when the
// target is declared outside the loop.
func emissionTargets(pass *analysis.Pass, loop *ast.RangeStmt) []ast.Expr {
	var out []ast.Expr
	seen := map[string]bool{}
	add := func(e ast.Expr) {
		if declaredInside(pass, e, loop) {
			return
		}
		key := types.ExprString(e)
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					add(n.Args[0])
				}
			}
		case *ast.AssignStmt:
			// s += k builds an output string in iteration order.
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 {
				if t := pass.TypesInfo.Types[n.Lhs[0]].Type; t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						add(n.Lhs[0])
					}
				}
			}
		}
		return true
	})
	return out
}

// declaredInside reports whether e's root object is declared within the
// loop (a per-iteration accumulator cannot leak iteration order out).
func declaredInside(pass *analysis.Pass, e ast.Expr, loop *ast.RangeStmt) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	return obj != nil && obj.Pos() >= loop.Pos() && obj.Pos() < loop.End()
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether, lexically after the loop inside the same
// function, a sort/slices call mentions the target expression.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, loop *ast.RangeStmt, tgt ast.Expr) bool {
	want := types.ExprString(tgt)
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= loop.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			has := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if me, ok := m.(ast.Expr); ok && types.ExprString(me) == want {
					has = true
				}
				return !has
			})
			if has {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
