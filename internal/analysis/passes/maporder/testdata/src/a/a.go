// Package a seeds maporder violations and non-violations.
package a

import "sort"

// Bad: the emitted slice is never sorted — output order changes per run.
func badAppend(set map[int]bool) []int {
	var out []int
	for id := range set { // want "map iteration appends to out in nondeterministic order"
		out = append(out, id)
	}
	return out
}

// Bad: string concatenation in map order.
func badString(m map[string]int) string {
	s := ""
	for k := range m { // want "map iteration appends to s in nondeterministic order"
		s += k
	}
	return s
}

// Bad: sorted some other slice, not the emitted one.
func badWrongSort(m map[string]int) []string {
	var keys, other []string
	for k := range m { // want "map iteration appends to keys in nondeterministic order"
		keys = append(keys, k)
	}
	sort.Strings(other)
	return keys
}

// Good: sorted after the loop.
func goodSorted(set map[int]bool) []int {
	var out []int
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Good: sort.Slice with the target inside a closure argument.
func goodSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Good: order-insensitive consumption (map, count, bool) is not flagged.
func goodInsensitive(m map[string]int) (map[string]bool, int, bool) {
	out := map[string]bool{}
	n := 0
	any := false
	for k, v := range m {
		out[k] = true
		n += v
		any = any || v > 0
	}
	return out, n, any
}

// Good: accumulator declared inside the loop never leaks iteration order.
func goodLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

// Suppressed: documented as order-irrelevant; no want comment here proves
// the suppression filter works.
func suppressed(m map[string]int) []string {
	var keys []string
	//diselint:ignore maporder consumer treats this as an unordered set
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
