// Package internepoch audits who may hold canonical sym expressions
// across intern-collection epochs (PR 8).
//
// Since the interner became evictable (sym.CollectInterned), the
// hash-consing contract is era-scoped: pointer equality still implies
// structural equality forever, but structural equality implies pointer
// equality only between nodes interned in the same collection era. A
// canonical pointer parked in a package-level variable outside internal/sym
// outlives every era — after a collection, a structurally identical
// expression re-interned by a later run is a *different* pointer, so any
// pointer-keyed map or identity comparison rooted in that global silently
// stops matching. Expression state must therefore be run-scoped (engine,
// session, cache-with-eviction), where everything it is compared against
// belongs to the same era.
//
// The rule: a package-level variable whose type transitively mentions a sym
// expression node is flagged, outside internal/sym itself (the interner's
// own table and pinned constants are the mechanism, not a client). Holders
// that are epoch-safe by construction — pinned constants, or state that
// never relies on cross-era pointer identity — document that argument with
// a //diselint:ignore internepoch suppression, which is exactly the audit
// trail the eviction design calls for.
package internepoch

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dise/internal/analysis"
)

// Analyzer is the internepoch rule.
var Analyzer = &analysis.Analyzer{
	Name: "internepoch",
	Doc:  "package-level variables outside internal/sym must not retain sym expressions across intern-collection epochs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if analysis.MatchPkg(pass.Pkg.Path(), "sym") {
		// The interner's shard table and pinned constants live here by
		// design; the rule audits its clients.
		return nil
	}
	for _, f := range pass.Files {
		// Test files are exempt: test fixtures live for one short process
		// and never span a service-lifetime of collection epochs.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil || name.Name == "_" {
						continue
					}
					if via, ok := mentionsSymExpr(obj.Type(), make(map[types.Type]bool)); ok {
						pass.Reportf(name.Pos(),
							"package-level var %s retains sym expressions (via sym.%s) across intern-collection epochs; canonical pointers are identity-stable only within one era — keep expression state run-scoped, or suppress with a documented epoch-safety argument",
							name.Name, via)
					}
				}
			}
		}
	}
	return nil
}

// mentionsSymExpr reports whether t can transitively reach a sym expression
// node (a named type in the sym package carrying the exprNode marker,
// including the Expr interface itself), returning the first such type's
// name. Function types are not followed: a stored func builds fresh
// expressions per call rather than retaining them.
func mentionsSymExpr(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if name, ok := symExprType(t); ok {
			return name, ok
		}
		return mentionsSymExpr(t.Underlying(), seen)
	case *types.Pointer:
		return mentionsSymExpr(t.Elem(), seen)
	case *types.Slice:
		return mentionsSymExpr(t.Elem(), seen)
	case *types.Array:
		return mentionsSymExpr(t.Elem(), seen)
	case *types.Chan:
		return mentionsSymExpr(t.Elem(), seen)
	case *types.Map:
		if name, ok := mentionsSymExpr(t.Key(), seen); ok {
			return name, ok
		}
		return mentionsSymExpr(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name, ok := mentionsSymExpr(t.Field(i).Type(), seen); ok {
				return name, ok
			}
		}
	}
	return "", false
}

// symExprType reports whether named is a sym expression type: declared in
// the sym package and carrying the exprNode marker method (concrete nodes
// declare it; the Expr interface requires it).
func symExprType(named *types.Named) (string, bool) {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || !analysis.MatchPkg(obj.Pkg().Path(), "sym") {
		return "", false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "exprNode" {
			return obj.Name(), true
		}
	}
	if iface, ok := named.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "exprNode" {
				return obj.Name(), true
			}
		}
	}
	return "", false
}
