package internepoch

import (
	"testing"

	"dise/internal/analysis/analysistest"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a")
}
