// Package a seeds internepoch violations and non-violations.
package a

import "sym"

// Bad: package-level state that retains canonical pointers across
// intern-collection epochs, directly or transitively.
var cached sym.Expr                   // want "package-level var cached retains sym expressions"
var pool = map[string]*sym.Var{}      // want "package-level var pool retains sym expressions"
var queue []sym.IntConst              // want "package-level var queue retains sym expressions"
var pair, spare *sym.IntConst         // want "package-level var pair retains sym expressions" // want "package-level var spare retains sym expressions"
var wrapped struct{ inner sym.Expr }  // want "package-level var wrapped retains sym expressions"
var byNode = map[*sym.Var]int{}       // want "package-level var byNode retains sym expressions"

// holder reaches an expression only transitively, through a named struct.
type holder struct {
	e sym.Expr
}

var nested map[string][]holder // want "package-level var nested retains sym expressions"

// Good: non-node sym types, plain state, and stored constructors (a func
// builds fresh expressions per call; it retains none).
var meta sym.NotANode
var counter int
var build = sym.V

// Suppressed: a documented cross-epoch holder stays silent — this line has
// no want comment, so the test proves the audit's escape hatch works.
//
//diselint:ignore internepoch pinned constants only; never compared by identity across eras
var pinnedTrue sym.Expr

func use() sym.Expr {
	_ = meta
	_ = counter
	_ = nested
	_ = byNode
	_ = wrapped
	_ = pair
	_ = spare
	_ = queue
	_ = pool
	_ = pinnedTrue
	return cached
}
