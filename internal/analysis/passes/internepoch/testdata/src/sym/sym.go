// Package sym is a miniature stub of dise/internal/sym for analyzer tests:
// same exprNode marker, same Expr interface, same smart constructors.
package sym

// Expr mirrors the real IR interface.
type Expr interface {
	exprNode()
}

// IntConst is an integer constant node.
type IntConst struct {
	V int64
}

// Var is a symbolic variable node.
type Var struct {
	Name string
}

func (*IntConst) exprNode() {}
func (*Var) exprNode()      {}

// NotANode is declared in sym but is not an expression node: globals of it
// are fine anywhere.
type NotANode struct {
	X int
}

// Int is a smart constructor.
func Int(v int64) *IntConst { return &IntConst{V: v} }

// V is a smart constructor.
func V(name string) *Var { return &Var{Name: name} }
