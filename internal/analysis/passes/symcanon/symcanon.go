// Package symcanon enforces the hash-consing invariant of internal/sym
// (PR 5): every expression node must be canonical.
//
// Since the interner made structural equality pointer equality process-wide
// (Equal short-circuits on interner headers, the prefix cache keys on
// precomputed fingerprints, the solver's compiled-constraint cache is
// pointer-keyed), a sym node built via a raw struct literal outside the sym
// package is a second-class citizen: it silently misses every one of those
// fast paths and, worse, a raw node stored where a canonical one is assumed
// can defeat pointer-identity checks. The only sanctioned producers are the
// smart constructors (sym.Int, sym.V, sym.Cmp, sym.Add, ...) and
// sym.Intern.
package symcanon

import (
	"go/ast"
	"go/types"

	"dise/internal/analysis"
)

// Analyzer is the symcanon rule.
var Analyzer = &analysis.Analyzer{
	Name: "symcanon",
	Doc:  "sym expression nodes must be built via smart constructors or Intern, never struct literals, outside internal/sym",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if analysis.MatchPkg(pass.Pkg.Path(), "sym") {
		// The defining package builds raw nodes by design (the interner
		// itself, and tests of the structural-fallback path).
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if name, ok := exprNodeType(pass, pass.TypesInfo.Types[n].Type); ok {
					pass.Reportf(n.Pos(), "sym.%s built via struct literal; use the sym smart constructors or sym.Intern so the node is canonical (structural equality is pointer equality)", name)
				}
			case *ast.CallExpr:
				// new(sym.T) creates a zero-valued non-canonical node.
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if name, ok := exprNodeType(pass, pass.TypesInfo.Types[n.Args[0]].Type); ok {
							pass.Reportf(n.Pos(), "sym.%s built via new(); use the sym smart constructors or sym.Intern so the node is canonical", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// exprNodeType reports whether t names a sym expression node: a type
// declared in the sym package that carries the IR's exprNode marker method.
func exprNodeType(pass *analysis.Pass, t types.Type) (string, bool) {
	named := analysis.NamedOf(t)
	if named == nil {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || !analysis.MatchPkg(obj.Pkg().Path(), "sym") {
		return "", false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "exprNode" {
			return obj.Name(), true
		}
	}
	return "", false
}
