// Package sym is a miniature stub of dise/internal/sym for analyzer tests:
// same node shapes, same exprNode marker method, same smart constructors.
package sym

// Expr mirrors the real IR interface.
type Expr interface {
	exprNode()
}

// IntConst is an integer constant node.
type IntConst struct {
	V int64
}

// Var is a symbolic variable node.
type Var struct {
	Name string
}

// Bin is a binary operation node.
type Bin struct {
	Op   int
	L, R Expr
}

// Ite is an if-then-else node — the shape bounded state merging introduces.
type Ite struct {
	Cond, Then, Else Expr
}

func (*IntConst) exprNode() {}
func (*Var) exprNode()      {}
func (*Bin) exprNode()      {}
func (*Ite) exprNode()      {}

// NotANode is declared in sym but is not an expression node: literals of it
// are fine anywhere.
type NotANode struct {
	X int
}

// Int is a smart constructor.
func Int(v int64) *IntConst { return &IntConst{V: v} }

// V is a smart constructor.
func V(name string) *Var { return &Var{Name: name} }

// Add is a smart constructor.
func Add(l, r Expr) Expr { return &Bin{Op: 0, L: l, R: r} }

// ITE is the smart constructor for Ite (the real one simplifies and interns;
// a raw &Ite{...} skips both, which is exactly what symcanon flags).
func ITE(c, t, e Expr) Expr { return &Ite{Cond: c, Then: t, Else: e} }
