// Package a seeds symcanon violations and non-violations.
package a

import "sym"

// Bad: raw struct literals of expression nodes outside the sym package.
func bad() sym.Expr {
	x := &sym.Var{Name: "x"}              // want "sym.Var built via struct literal"
	one := sym.IntConst{V: 1}             // want "sym.IntConst built via struct literal"
	b := &sym.Bin{Op: 0, L: x, R: &one}   // want "sym.Bin built via struct literal"
	n := new(sym.Var)                     // want "sym.Var built via new()"
	_ = n
	return b
}

// Good: smart constructors, and literals of non-node sym types.
func good() sym.Expr {
	meta := sym.NotANode{X: 3}
	_ = meta
	return sym.Add(sym.V("x"), sym.Int(1))
}

// Suppressed: a documented raw literal stays silent — this line has no
// want comment, so the test proves the suppression filter works.
func suppressed() sym.Expr {
	//diselint:ignore symcanon deliberately exercises the raw-literal fallback
	return &sym.Var{Name: "raw"}
}
