// Package a seeds symcanon violations and non-violations.
package a

import "sym"

// Bad: raw struct literals of expression nodes outside the sym package.
func bad() sym.Expr {
	x := &sym.Var{Name: "x"}              // want "sym.Var built via struct literal"
	one := sym.IntConst{V: 1}             // want "sym.IntConst built via struct literal"
	b := &sym.Bin{Op: 0, L: x, R: &one}   // want "sym.Bin built via struct literal"
	n := new(sym.Var)                     // want "sym.Var built via new()"
	_ = n
	return b
}

// Bad: a raw ite node. Canonical Ite nodes are fixed points of the ITE
// constructor's folds (constant guards select an arm, equal arms collapse),
// so a raw literal can even denote a shape the constructor would never
// build — it must go through sym.ITE.
func badIte() sym.Expr {
	cond := sym.Add(sym.V("x"), sym.Int(0))
	ite := &sym.Ite{Cond: cond, Then: sym.Int(1), Else: sym.Int(2)} // want "sym.Ite built via struct literal"
	m := new(sym.Ite)                                               // want "sym.Ite built via new()"
	_ = m
	return ite
}

// Good: the ITE smart constructor.
func goodIte() sym.Expr {
	return sym.ITE(sym.V("c"), sym.Int(1), sym.Int(2))
}

// Good: smart constructors, and literals of non-node sym types.
func good() sym.Expr {
	meta := sym.NotANode{X: 3}
	_ = meta
	return sym.Add(sym.V("x"), sym.Int(1))
}

// Suppressed: a documented raw literal stays silent — this line has no
// want comment, so the test proves the suppression filter works.
func suppressed() sym.Expr {
	//diselint:ignore symcanon deliberately exercises the raw-literal fallback
	return &sym.Var{Name: "raw"}
}
