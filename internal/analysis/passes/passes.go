// Package passes registers the diselint analyzer suite: one pass per
// engine invariant.
package passes

import (
	"dise/internal/analysis"
	"dise/internal/analysis/passes/fpkeys"
	"dise/internal/analysis/passes/internepoch"
	"dise/internal/analysis/passes/interruptloop"
	"dise/internal/analysis/passes/lockhold"
	"dise/internal/analysis/passes/maporder"
	"dise/internal/analysis/passes/symcanon"
	"dise/internal/analysis/passes/unknowncache"
)

// All returns every analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		fpkeys.Analyzer,
		internepoch.Analyzer,
		interruptloop.Analyzer,
		lockhold.Analyzer,
		maporder.Analyzer,
		symcanon.Analyzer,
		unknowncache.Analyzer,
	}
}
