package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("dise/internal/sym"); external test
	// packages carry the "_test" suffix on the package name, not the path.
	PkgPath string
	Name    string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	// TypesInfo has Types, Defs, Uses and Selections populated.
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of one module from source,
// resolving standard-library imports through compiled export data obtained
// from `go list -export` (the same mechanism golang.org/x/tools/go/packages
// uses). Module-internal imports are type-checked from source recursively,
// so analyzers always see syntax for the code the invariants live in.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string

	// testdataRoot, when set, resolves non-stdlib imports from
	// <testdataRoot>/<path> instead of the module tree (the analysistest
	// GOPATH-style layout).
	testdataRoot string

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	gcImp   types.ImporterFrom
	base    map[string]*types.Package // base (no test files) variants, by path
	loading map[string]bool           // cycle detection
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		modRoot: root,
		modPath: path,
		exports: map[string]string{},
		base:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
	l.gcImp = importer.ForCompiler(l.Fset, "gc", l.lookupExport).(types.ImporterFrom)
	return l, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// LoadModule loads every package under the module root (skipping testdata,
// vendor and hidden directories), returning, per directory: the package
// including its in-package _test.go files, plus the external _test package
// when one exists. That mirrors what `go vet ./...` analyzes, so invariant
// violations in test helpers are caught too.
func (l *Loader) LoadModule() ([]*Package, error) {
	if err := l.primeExports(); err != nil {
		return nil, err
	}
	var dirs []string
	err := filepath.WalkDir(l.modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		gofiles, err := goFilesIn(p)
		if err != nil {
			return err
		}
		if len(gofiles) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkgs, err := l.loadDirForAnalysis(dir, l.pathForDir(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, pkgs...)
	}
	return out, nil
}

// LoadTestdata loads the package rooted at <srcRoot>/<path> (analysistest
// layout: srcRoot acts as a GOPATH src directory, sibling directories
// satisfy non-stdlib imports).
func (l *Loader) LoadTestdata(srcRoot, path string) ([]*Package, error) {
	l.testdataRoot = srcRoot
	return l.loadDirForAnalysis(filepath.Join(srcRoot, path), path)
}

func (l *Loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// loadDirForAnalysis parses dir and returns the units to analyze: the
// package with in-package test files folded in, and the external test
// package when present.
func (l *Loader) loadDirForAnalysis(dir, path string) ([]*Package, error) {
	files, xtest, name, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 && len(xtest) == 0 {
		return nil, nil
	}
	var out []*Package
	var augmented *types.Package
	if len(files) > 0 {
		pkg, err := l.check(path, files, nil)
		if err != nil {
			return nil, err
		}
		augmented = pkg.Types
		out = append(out, pkg)
	}
	if len(xtest) > 0 {
		// The external test package imports the tested package's augmented
		// variant, as in a real `go test` build.
		override := map[string]*types.Package{}
		if augmented != nil {
			override[path] = augmented
		}
		pkg, err := l.check(path+"_test", xtest, override)
		if err != nil {
			return nil, err
		}
		pkg.PkgPath = path
		pkg.Name = name + "_test"
		out = append(out, pkg)
	}
	return out, nil
}

// parseDir splits dir's files into the in-package unit (non-test plus
// same-package _test files) and the external test unit.
func (l *Loader) parseDir(dir string) (files, xtest []*ast.File, name string, err error) {
	paths, err := goFilesIn(dir)
	if err != nil {
		return nil, nil, "", err
	}
	for _, p := range paths {
		f, err := parser.ParseFile(l.Fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, "", err
		}
		if strings.HasSuffix(f.Name.Name, "_test") && strings.HasSuffix(p, "_test.go") {
			xtest = append(xtest, f)
			continue
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, nil, "", fmt.Errorf("analysis: %s: packages %q and %q in one directory", dir, name, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, xtest, name, nil
}

// loadBase type-checks the package at path WITHOUT its test files — the
// variant other packages import, which is what keeps test-only import
// cycles (pkg A's tests import B, B imports A) out of the import graph,
// exactly as in a real Go build.
func (l *Loader) loadBase(path string) (*types.Package, error) {
	if p, ok := l.base[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirForImport(path)
	paths, err := goFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: cannot load %s: %v", path, err)
	}
	var files []*ast.File
	for _, p := range paths {
		if strings.HasSuffix(p, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	conf := l.config(nil)
	tpkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	l.base[path] = tpkg
	return tpkg, nil
}

func (l *Loader) dirForImport(path string) string {
	if l.testdataRoot != "" {
		if d := filepath.Join(l.testdataRoot, filepath.FromSlash(path)); dirExists(d) {
			return d
		}
	}
	if path == l.modPath {
		return l.modRoot
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest))
	}
	return ""
}

func dirExists(d string) bool {
	fi, err := os.Stat(d)
	return err == nil && fi.IsDir()
}

// check type-checks one analysis unit with full Info.
func (l *Loader) check(path string, files []*ast.File, override map[string]*types.Package) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := l.config(override)
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{
		PkgPath:   path,
		Name:      tpkg.Name(),
		Fset:      l.Fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

func (l *Loader) config(override map[string]*types.Package) *types.Config {
	return &types.Config{
		Importer: &unitImporter{l: l, override: override},
		Error:    func(error) {}, // errors surface via Check's return value
	}
}

// unitImporter resolves one unit's imports: overrides first (the augmented
// variant for an external test package), then module/testdata source, then
// compiled export data for everything else.
type unitImporter struct {
	l        *Loader
	override map[string]*types.Package
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	return u.ImportFrom(path, "", 0)
}

func (u *unitImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := u.override[path]; ok {
		return p, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l := u.l
	if l.testdataRoot != "" {
		if d := filepath.Join(l.testdataRoot, filepath.FromSlash(path)); dirExists(d) {
			return l.loadBase(path)
		}
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return l.loadBase(path)
	}
	return l.gcImp.ImportFrom(path, dir, 0)
}

// ---- stdlib export data ----

// primeExports records export-data files for the module's whole transitive
// dependency set (tests included) in one `go list` invocation.
func (l *Loader) primeExports() error {
	return l.runGoList("-deps", "-test", "./...")
}

// lookupExport feeds the gc importer. Unknown paths fall back to an
// on-demand `go list -export` for that single package, so testdata stubs
// may import any stdlib package, not just ones the module already uses.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		if err := l.runGoList(path); err != nil {
			return nil, fmt.Errorf("analysis: resolving import %q: %v", path, err)
		}
		l.mu.Lock()
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	return os.Open(file)
}

func (l *Loader) runGoList(args ...string) error {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-json=ImportPath,Export"}, args...)...)
	cmd.Dir = l.modRoot
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = string(ee.Stderr)
		}
		return fmt.Errorf("go list: %s", msg)
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("go list output: %v", err)
		}
		// Test variants render as "pkg [pkg.test]"; plain paths only.
		if p.Export != "" && !strings.ContainsAny(p.ImportPath, " [") {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}
