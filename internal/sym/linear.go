package sym

import (
	"fmt"
	"sort"
	"strings"
)

// Linear is a linear integer form: Σ Coeffs[v]·v + Const. The constraint
// solver normalizes comparisons of linear expressions into "linear form ⋈ 0"
// and applies bounds-consistency propagation to them; anything non-linear
// (multiplication of two symbolic terms, division, modulo) stays opaque and
// is handled by forward interval evaluation plus search.
type Linear struct {
	Coeffs map[string]int64
	Const  int64
}

// NewLinear returns an empty (zero) linear form.
func NewLinear() Linear { return Linear{Coeffs: map[string]int64{}} }

// IsConst reports whether the form has no variable terms.
func (l Linear) IsConst() bool { return len(l.Coeffs) == 0 }

// Clone deep-copies the form.
func (l Linear) Clone() Linear {
	c := Linear{Coeffs: make(map[string]int64, len(l.Coeffs)), Const: l.Const}
	for k, v := range l.Coeffs {
		c.Coeffs[k] = v
	}
	return c
}

func (l *Linear) addTerm(name string, coeff int64) {
	c := l.Coeffs[name] + coeff
	if c == 0 {
		delete(l.Coeffs, name)
	} else {
		l.Coeffs[name] = c
	}
}

// AddLinear returns a + b.
func AddLinear(a, b Linear) Linear {
	out := a.Clone()
	out.Const += b.Const
	for v, c := range b.Coeffs {
		out.addTerm(v, c)
	}
	return out
}

// ScaleLinear returns k·a.
func ScaleLinear(a Linear, k int64) Linear {
	out := NewLinear()
	if k == 0 {
		return out
	}
	out.Const = a.Const * k
	for v, c := range a.Coeffs {
		out.Coeffs[v] = c * k
	}
	return out
}

// Vars returns the sorted variable names of the form.
func (l Linear) Vars() []string {
	out := make([]string, 0, len(l.Coeffs))
	for v := range l.Coeffs {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders e.g. "2*X + -1*Y + 3".
func (l Linear) String() string {
	var parts []string
	for _, v := range l.Vars() {
		parts = append(parts, fmt.Sprintf("%d*%s", l.Coeffs[v], v))
	}
	if l.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", l.Const))
	}
	return strings.Join(parts, " + ")
}

// LinearOf linearizes an integer-typed expression. The second result is
// false when the expression is not linear (symbolic multiplication,
// division, or modulo).
func LinearOf(e Expr) (Linear, bool) {
	switch e := e.(type) {
	case *IntConst:
		l := NewLinear()
		l.Const = e.V
		return l, true
	case *Var:
		l := NewLinear()
		l.Coeffs[e.Name] = 1
		return l, true
	case *Neg:
		x, ok := LinearOf(e.X)
		if !ok {
			return Linear{}, false
		}
		return ScaleLinear(x, -1), true
	case *Bin:
		switch e.Op {
		case OpAdd, OpSub:
			a, ok := LinearOf(e.L)
			if !ok {
				return Linear{}, false
			}
			b, ok := LinearOf(e.R)
			if !ok {
				return Linear{}, false
			}
			if e.Op == OpSub {
				b = ScaleLinear(b, -1)
			}
			return AddLinear(a, b), true
		case OpMul:
			a, aok := LinearOf(e.L)
			b, bok := LinearOf(e.R)
			if !aok || !bok {
				return Linear{}, false
			}
			switch {
			case a.IsConst():
				return ScaleLinear(b, a.Const), true
			case b.IsConst():
				return ScaleLinear(a, b.Const), true
			}
			return Linear{}, false
		}
	}
	return Linear{}, false
}
