package sym

import (
	"math/rand"
	"sync"
	"testing"
)

// randInternExpr generates a random expression tree in the style of
// internal/randprog's program generator: random operators, variables drawn
// from a small pool, and constants from a small range, with the shape
// controlled by a depth budget. bool selects boolean-typed expressions
// (comparisons, conjunctions, negations) vs integer-typed ones.
func randInternExpr(rng *rand.Rand, depth int, boolean bool) Expr {
	vars := []string{"X", "Y", "Z", "PedalPos"}
	if depth <= 0 || rng.Intn(4) == 0 {
		if boolean {
			if rng.Intn(8) == 0 {
				return Bool(rng.Intn(2) == 0)
			}
			op := []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}[rng.Intn(6)]
			return Cmp(op, randInternExpr(rng, 0, false), randInternExpr(rng, 0, false))
		}
		if rng.Intn(2) == 0 {
			return V(vars[rng.Intn(len(vars))])
		}
		return Int(int64(rng.Intn(7) - 3))
	}
	if boolean {
		switch rng.Intn(4) {
		case 0:
			return AndE(randInternExpr(rng, depth-1, true), randInternExpr(rng, depth-1, true))
		case 1:
			return OrE(randInternExpr(rng, depth-1, true), randInternExpr(rng, depth-1, true))
		case 2:
			return NotE(randInternExpr(rng, depth-1, true))
		default:
			op := []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}[rng.Intn(6)]
			return Cmp(op, randInternExpr(rng, depth-1, false), randInternExpr(rng, depth-1, false))
		}
	}
	switch rng.Intn(7) {
	case 0:
		return Add(randInternExpr(rng, depth-1, false), randInternExpr(rng, depth-1, false))
	case 1:
		return Sub(randInternExpr(rng, depth-1, false), randInternExpr(rng, depth-1, false))
	case 2:
		return Mul(randInternExpr(rng, depth-1, false), randInternExpr(rng, depth-1, false))
	case 3:
		return Div(randInternExpr(rng, depth-1, false), randInternExpr(rng, depth-1, false))
	case 4:
		return Mod(randInternExpr(rng, depth-1, false), randInternExpr(rng, depth-1, false))
	case 5:
		// Integer-armed ite, the shape state merging produces. The guard is
		// a random boolean tree, so the ITE constructor's folds (constant
		// guard, equal arms, nested same-guard) fire with useful frequency.
		return ITE(randInternExpr(rng, depth-1, true),
			randInternExpr(rng, depth-1, false), randInternExpr(rng, depth-1, false))
	default:
		return NegE(randInternExpr(rng, depth-1, false))
	}
}

// rawCopy rebuilds e as raw (un-interned) composite literals, the way test
// code outside this package constructs expressions by hand.
func rawCopy(e Expr) Expr {
	switch e := e.(type) {
	case *IntConst:
		return &IntConst{V: e.V}
	case *BoolConst:
		return &BoolConst{V: e.V}
	case *Var:
		return &Var{Name: e.Name}
	case *Bin:
		return &Bin{Op: e.Op, L: rawCopy(e.L), R: rawCopy(e.R)}
	case *Not:
		return &Not{X: rawCopy(e.X)}
	case *Neg:
		return &Neg{X: rawCopy(e.X)}
	case *Ite:
		return &Ite{Cond: rawCopy(e.Cond), Then: rawCopy(e.Then), Else: rawCopy(e.Else)}
	}
	panic("rawCopy: unknown node")
}

// TestInternCanonical is the canonicalization property: over randomly
// generated expression pairs, Intern(a) == Intern(b) exactly when
// Equal(a, b) holds — interning identifies precisely the structurally equal
// trees, nothing more, nothing less.
func TestInternCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		boolean := rng.Intn(2) == 0
		a := randInternExpr(rng, 3, boolean)
		var b Expr
		if rng.Intn(2) == 0 {
			// Force the equal case half the time: a raw structural copy
			// must intern back to the same canonical node.
			b = rawCopy(a)
		} else {
			b = randInternExpr(rng, 3, boolean)
		}
		ia, ib := Intern(a), Intern(b)
		if got, want := ia == ib, Equal(a, b); got != want {
			t.Fatalf("Intern(%s) == Intern(%s) is %v, Equal is %v", a, b, got, want)
		}
		// Interning preserves structure and rendering exactly.
		if !Equal(a, ia) || a.String() != ia.String() {
			t.Fatalf("Intern changed %s into %s", a, ia)
		}
		// Both fingerprint halves agree between the interned node's cached
		// values and the structural computation on the raw tree.
		a1, a2 := Fingerprints(a)
		i1, i2 := Fingerprints(ia)
		if a1 != i1 || a2 != i2 {
			t.Fatalf("fingerprints of %s differ raw vs interned", a)
		}
		if got, want := Fingerprint(a) == Fingerprint(b), Equal(a, b); got != want && want {
			t.Fatalf("equal expressions %s and %s with different fingerprints", a, b)
		}
	}
}

// TestInternIteProperties is the ITE slice of the canonicality property:
// over random ite trees, the smart constructor is idempotent (rebuilding a
// canonical Ite from its own parts returns the same pointer), its algebraic
// folds hold, and the order-sensitive fingerprint separates swapped arms.
func TestInternIteProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ites := 0
	for i := 0; i < 5000; i++ {
		c := randInternExpr(rng, 2, true)
		a := randInternExpr(rng, 2, false)
		b := randInternExpr(rng, 2, false)

		// Equal arms always collapse, constant guards always select.
		if got := ITE(c, a, a); got != a {
			t.Fatalf("ITE(%s, x, x) = %s, want x", c, got)
		}
		if got := ITE(True, a, b); got != a {
			t.Fatalf("ITE(true, a, b) = %s, want a = %s", got, a)
		}
		if got := ITE(False, a, b); got != b {
			t.Fatalf("ITE(false, a, b) = %s, want b = %s", got, b)
		}

		// A negated guard interns to the same node as the swapped arms:
		// ite(!c, a, b) ≡ ite(c, b, a) is canonicalized, not just equal.
		// NotE itself folds negations of comparisons into the inverse
		// comparison, so the rule only observably fires when the negation
		// survives as a *Not node (conjunctions, disjunctions).
		if neg, ok := NotE(c).(*Not); ok {
			if ITE(neg, a, b) != ITE(neg.X, b, a) {
				t.Fatalf("ITE(!%s, a, b) not canonical with the swapped-arm node", neg.X)
			}
		}

		e := ITE(c, a, b)
		n, ok := e.(*Ite)
		if !ok {
			continue // folded away (const guard, equal arms, bool-const arm)
		}
		ites++
		// Simplification idempotence: re-applying the constructor to the
		// canonical node's own parts must be a no-op returning the same
		// pointer — canonical Ite nodes are fixed points of ITE.
		if ITE(n.Cond, n.Then, n.Else) != e {
			t.Fatalf("ITE not idempotent on canonical node %s", e)
		}
		if Intern(rawCopy(e)) != e {
			t.Fatalf("raw copy of %s did not intern back to the canonical node", e)
		}
		f1, f2 := Fingerprints(e)
		r1, r2 := Fingerprints(rawCopy(e))
		if f1 != r1 || f2 != r2 {
			t.Fatalf("fingerprints of %s differ raw vs interned", e)
		}
		// The fingerprint is order-sensitive in (then, else): swapping
		// unequal arms must yield a different node and fingerprint.
		if !Equal(n.Then, n.Else) {
			swapped := ITE(n.Cond, n.Else, n.Then)
			if Equal(e, swapped) {
				t.Fatalf("swapped arms compare equal: %s vs %s", e, swapped)
			}
			if Fingerprint(e) == Fingerprint(swapped) {
				t.Fatalf("swapped arms share a fingerprint: %s vs %s", e, swapped)
			}
		}
	}
	if ites < 500 {
		t.Fatalf("only %d/5000 iterations produced a canonical Ite node; generator too foldy", ites)
	}
}

// TestInternIdempotent pins the constructor contract: expressions built via
// smart constructors are already canonical, so Intern is the identity on
// them, and rebuilding the same expression yields the same pointer.
func TestInternIdempotent(t *testing.T) {
	build := func() Expr {
		return Cmp(OpLT, Add(V("X"), Int(1)), Mul(V("Y"), Int(3)))
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("rebuilding the same expression gave distinct nodes: %p vs %p", a, b)
	}
	if Intern(a) != a {
		t.Fatalf("Intern is not the identity on a constructor-built node")
	}
	if !Interned(a) {
		t.Fatalf("constructor-built node not marked interned")
	}
	if Interned(&Bin{Op: OpAdd, L: Zero, R: One}) {
		t.Fatalf("raw literal reported as interned")
	}
}

// TestInternVarsShared verifies the cached Vars of canonical nodes.
func TestInternVarsShared(t *testing.T) {
	e := Add(Mul(V("Y"), V("X")), V("X"))
	want := []string{"X", "Y"}
	got := Vars(e)
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	// The raw structural walk agrees.
	raw := Vars(rawCopy(e))
	if len(raw) != len(want) || raw[0] != want[0] || raw[1] != want[1] {
		t.Fatalf("raw Vars = %v, want %v", raw, want)
	}
}

// TestInternTableStress hammers the shared intern table from N goroutines
// building overlapping expression sets — run under -race in CI, it checks
// that concurrent interning is safe and still canonical: every goroutine
// must get the identical pointer for the identical structure.
func TestInternTableStress(t *testing.T) {
	const workers = 8
	const rounds = 400
	results := make([][]Expr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker uses the same seed, hence builds the same
			// expression sequence — maximal contention on the same shards.
			rng := rand.New(rand.NewSource(99))
			out := make([]Expr, 0, rounds)
			for i := 0; i < rounds; i++ {
				e := randInternExpr(rng, 4, i%2 == 0)
				out = append(out, Intern(e))
				_ = e.String() // race the lazy rendering memo too
				_ = Vars(e)
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(results[w]) != len(results[0]) {
			t.Fatalf("worker %d produced %d nodes, want %d", w, len(results[w]), len(results[0]))
		}
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d node %d: %s not canonical with worker 0's %s",
					w, i, results[w][i], results[0][i])
			}
		}
	}
}

// BenchmarkInternBuild measures rebuilding an already-interned expression —
// the engine's steady state, where every constructor call is a table hit.
func BenchmarkInternBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Cmp(OpLT, Add(V("X"), Int(1)), Mul(V("Y"), Int(3)))
	}
}

// BenchmarkEqualInterned measures Equal on two large equal canonical trees:
// a pointer compare, regardless of depth.
func BenchmarkEqualInterned(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	e := Intern(randInternExpr(rng, 8, true))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Equal(e, e) {
			b.Fatal("not equal")
		}
	}
}

// BenchmarkFingerprintInterned measures Fingerprint on a canonical node: a
// header field read.
func BenchmarkFingerprintInterned(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	e := Intern(randInternExpr(rng, 8, true))
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Fingerprint(e)
	}
	_ = sink
}

// TestInternValueCopy pins the by-value-copy semantics: a copied canonical
// node shares its header, so Equal treats it as equal to the original and
// Intern canonicalizes it back to the table's pointer.
func TestInternValueCopy(t *testing.T) {
	orig := Cmp(OpGE, V("X"), Int(7))
	cp := *orig.(*Bin)
	if !Equal(&cp, orig) {
		t.Fatalf("value copy compares unequal to its original")
	}
	if Intern(&cp) != orig {
		t.Fatalf("Intern did not canonicalize the value copy back to the original")
	}
	c2 := *Int(5)
	if Equal(&c2, Int(6)) {
		t.Fatalf("copy equal to a different constant")
	}
	if !Equal(&c2, Int(5)) {
		t.Fatalf("copied IntConst unequal to its original")
	}
}
