package sym

// Hash-consing interner: every smart constructor returns a canonical node
// from a global, sharded intern table, so structurally equal expressions are
// pointer-identical. Each canonical node carries an interner-owned header
// with a precomputed pair of independent 64-bit structural fingerprints,
// the cached sorted list of variables occurring in it, and a lazily
// memoized rendering. The three hot operations of the execution engine —
// comparing expressions (Equal), keying caches (Fingerprint/Fingerprints),
// and collecting variables (Vars) — become a pointer compare, a field read,
// and a slice read.
//
// The canonicalization contract: within one process, for any two expressions
// built through the constructors (Int, Bool, V, Add, Sub, Mul, Div, Mod,
// NegE, Cmp, AndE, OrE, NotE, ITE, Subst) or passed through Intern, structural
// equality coincides with pointer equality. Nodes built as raw composite
// literals (test code) are "un-interned": they carry no header, and Equal
// falls back to the structural walk for them.
//
// Lifetime: the table is global and epoch-collected. Its size is bounded by
// the distinct sub-expressions interned (shared sub-structure collapses),
// not by the number of states, and canonicality across engines, sessions
// and cached artifacts (the memo trie, the prefix cache, the parse cache
// all retain expression pointers) is the point of a process-wide table. For
// a very long-lived service analyzing an unbounded stream of unrelated
// programs, though, append-only accretion is a leak — so every table entry
// carries the epoch (a coarse logical clock, advanced by AdvanceEpoch; the
// facade ties it to completed analysis runs) at which it was last looked
// up, and CollectInterned drops entries untouched for N epochs, shard by
// shard under each shard's own lock.
//
// Collection weakens the canonicalization contract in exactly one way: a
// node whose table entry was collected and that is later re-interned is
// rebuilt fresh, so a pointer held across a collection may be structurally
// equal to — but not pointer-identical with — a newer canonical node.
// Pointer equality still implies structural equality, always; the converse
// holds only between nodes interned in the same collection era. Every
// pointer-keyed consumer tolerates that by construction: Equal falls back
// to the (exact) fingerprint compare plus structural walk when two
// canonical nodes have different headers, the prefix cache keys on
// structural fingerprints (pure functions of shape, identical before and
// after re-interning — never raw pointers), the memo trie matches verdicts
// with sym.Equal, and the solver's compiled-constraint maps are per-run
// (a stale pointer key merely misses and recompiles). The diselint
// internepoch pass audits the remaining surface: no package-level variable
// outside this package may retain sym.Expr values, so nothing else can hold
// a canonical pointer across epochs. Pre-interned constants (True, False,
// smallInt) are pinned — their constructors return package-level pointers
// without a table lookup, so collecting their entries could otherwise mint
// duplicates of the singletons themselves.
//
// Fingerprints are pure functions of structure (Fingerprint computes the
// same value for an un-interned tree as interning it would), so they are
// stable across engines and across program versions — two runs asserting
// the same constraint compute the same fingerprint, which is what lets the
// constraint subsystem key its shared prefix cache on them. They are NOT
// stable across process restarts or releases (the mixing constants are an
// implementation detail); nothing may persist them.

import (
	"sync"
	"sync/atomic"
	"time"
)

// hdr is the interner-owned header of a canonical node. It lives behind a
// pointer so node structs stay freely copyable (no embedded atomics): a
// by-value copy of a canonical node shares its header, so Equal (which
// compares headers, not node pointers) and Intern (which returns the
// header's canonical node) treat the copy exactly like the original.
type hdr struct {
	// canon is the canonical node this header belongs to, set when the node
	// is published. Intern returns it for any node carrying the header,
	// canonicalizing by-value copies back to the table's pointer.
	canon Expr
	// fp and fp2 are two independent structural fingerprints (different
	// salts, different mixers), precomputed at intern time. Consumers that
	// chain fingerprints into wider keys (the constraint prefix cache's
	// 128-bit chain) feed one fingerprint to each half, so a wrong shared
	// entry needs both independent 64-bit hashes to collide (~2^-128 per
	// pair), not just one.
	fp  uint64
	fp2 uint64
	// vars is the sorted list of variable names occurring in the node,
	// shared with (not copied from) the children where possible. Readers
	// must treat it as immutable.
	vars []string
	// str memoizes the canonical rendering; nil until first requested.
	// Concurrent first renders may race benignly (same value stored).
	str atomic.Pointer[string]
	// epoch is the interner epoch at which the node's table entry was last
	// looked up (or built), or pinnedEpoch for the pre-interned constants.
	// It is read and written only under the owning shard's mutex — a plain
	// field, not an atomic, because every access site holds that lock.
	epoch uint64
}

func (e *IntConst) header() *hdr  { return e.h }
func (e *BoolConst) header() *hdr { return e.h }
func (e *Var) header() *hdr       { return e.h }
func (e *Bin) header() *hdr       { return e.h }
func (e *Not) header() *hdr       { return e.h }
func (e *Neg) header() *hdr       { return e.h }
func (e *Ite) header() *hdr       { return e.h }

func headerOf(e Expr) *hdr {
	if e == nil {
		return nil
	}
	return e.header()
}

// Interned reports whether e is a canonical node of the intern table (and
// hence comparable to other canonical nodes by pointer).
func Interned(e Expr) bool { return headerOf(e) != nil }

// --- fingerprints ------------------------------------------------------------

// Mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection. It
// is exported (alongside MixAlt) for consumers chaining fingerprints into
// wider keys, so the finalizer constants live in exactly one place.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MixAlt is the murmur3 finalizer — different constants and shifts than
// Mix64, used wherever a second, independent mixing function is needed
// (the second fingerprint half, the second prefix-key half).
func MixAlt(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// fp128 is a pair of independent structural fingerprints: the two halves
// are computed by parallel hash trees with different salts, string hashes
// and finalizers, so they only collide together when two genuinely
// independent 64-bit hash functions both collide.
type fp128 struct{ a, b uint64 }

// Per-kind salts keep structurally different nodes with equal sub-content
// apart (Var "5" vs Int 5, Not vs Neg). Each kind has one salt per
// fingerprint half.
const (
	fpSaltInt   = 0xa24baed4963ee407
	fpSaltTrue  = 0x9fb21c651e98df25
	fpSaltFalse = 0x6c62272e07bb0142
	fpSaltVar   = 0xd6e8feb86659fd93
	fpSaltBin   = 0x27d4eb2f165667c5
	fpSaltNot   = 0xc2b2ae3d27d4eb4f
	fpSaltNeg   = 0x165667b19e3779f9
	fpSaltIte   = 0x7f4a7c159e3779b9

	fp2SaltInt   = 0x8a5cd789635d2dff
	fp2SaltTrue  = 0x121fd2155c472f96
	fp2SaltFalse = 0x4a25707a89b8eb31
	fp2SaltVar   = 0x6e73e5a2cd91d0d1
	fp2SaltBin   = 0x9f494aa6de2b1ec5
	fp2SaltNot   = 0x86b2536fcd8f9ab1
	fp2SaltNeg   = 0x3c79ac492ba7b653
	fp2SaltIte   = 0x2b1ec59f494aa6de
)

func fpInt(v int64) fp128 {
	return fp128{Mix64(fpSaltInt ^ uint64(v)), MixAlt(fp2SaltInt + uint64(v)*0x2545f4914f6cdd1d)}
}

func fpBool(v bool) fp128 {
	if v {
		return fp128{Mix64(fpSaltTrue), MixAlt(fp2SaltTrue)}
	}
	return fp128{Mix64(fpSaltFalse), MixAlt(fp2SaltFalse)}
}

func fpVar(name string) fp128 {
	// Half a: FNV-1a; half b: a 64-bit polynomial hash with an unrelated
	// multiplier, so a name collision in one half is independent of the
	// other.
	h := uint64(0xcbf29ce484222325)
	g := uint64(fp2SaltVar)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
		g = g*0x5deece66d + uint64(name[i])
	}
	return fp128{Mix64(h ^ fpSaltVar), MixAlt(g)}
}

// fpBin is order-sensitive in (op, l, r): the operand fingerprints are
// scaled by different odd constants before combining, per half.
func fpBin(op Op, l, r fp128) fp128 {
	return fp128{
		Mix64(fpSaltBin ^ uint64(op)*0x9e3779b97f4a7c15 ^ l.a*0x85ebca77c2b2ae63 ^ Mix64(r.a)*0xff51afd7ed558ccd),
		MixAlt(fp2SaltBin + uint64(op)*0xd1342543de82ef95 + l.b*0xaef17502108ef2d9 + MixAlt(r.b)*0x9e6c63d0676a9a99),
	}
}

func fpNot(x fp128) fp128 { return fp128{Mix64(fpSaltNot ^ x.a), MixAlt(fp2SaltNot + x.b)} }
func fpNeg(x fp128) fp128 { return fp128{Mix64(fpSaltNeg ^ x.a), MixAlt(fp2SaltNeg + x.b)} }

// fpIte is order-sensitive in (cond, then, else): fpBin's scheme with a
// third operand, scaled by its own odd constant per half.
func fpIte(c, t, e fp128) fp128 {
	return fp128{
		Mix64(fpSaltIte ^ c.a*0x9e3779b97f4a7c15 ^ Mix64(t.a)*0x85ebca77c2b2ae63 ^ MixAlt(e.a)*0xff51afd7ed558ccd),
		MixAlt(fp2SaltIte + c.b*0xd1342543de82ef95 + MixAlt(t.b)*0xaef17502108ef2d9 + Mix64(e.b)*0x9e6c63d0676a9a99),
	}
}

// Fingerprint returns the primary structural fingerprint of e: a field read
// for canonical nodes, a structural computation (yielding the identical
// value) for un-interned ones. Equal expressions have equal fingerprints;
// distinct expressions collide with probability ~2^-64 per pair — callers
// needing a stronger bound chain both halves via Fingerprints. Fingerprints
// are process-local — see the package comment in this file.
func Fingerprint(e Expr) uint64 {
	if h := headerOf(e); h != nil {
		return h.fp
	}
	return fingerprints(e).a
}

// Fingerprints returns both independent structural fingerprints of e. The
// constraint prefix cache chains one per key half, so a wrong shared entry
// needs two independent 64-bit collisions at once (~2^-128 per pair).
func Fingerprints(e Expr) (uint64, uint64) {
	if h := headerOf(e); h != nil {
		return h.fp, h.fp2
	}
	p := fingerprints(e)
	return p.a, p.b
}

func fingerprints(e Expr) fp128 {
	if h := headerOf(e); h != nil {
		return fp128{h.fp, h.fp2}
	}
	switch e := e.(type) {
	case *IntConst:
		return fpInt(e.V)
	case *BoolConst:
		return fpBool(e.V)
	case *Var:
		return fpVar(e.Name)
	case *Bin:
		return fpBin(e.Op, fingerprints(e.L), fingerprints(e.R))
	case *Not:
		return fpNot(fingerprints(e.X))
	case *Neg:
		return fpNeg(fingerprints(e.X))
	case *Ite:
		return fpIte(fingerprints(e.Cond), fingerprints(e.Then), fingerprints(e.Else))
	}
	return fp128{}
}

// --- the intern table --------------------------------------------------------

// ikey identifies one node structurally. Children are canonical (interned
// first, bottom-up), so child identity is pointer identity and map equality
// over ikey is exactly structural equality — no hashing of whole trees.
type ikey struct {
	kind byte
	op   Op
	l, r Expr
	x    Expr // third child, kITE only (l=cond, r=then, x=else)
	iv   int64
	name string
}

const (
	kInt byte = iota
	kBool
	kVar
	kBin
	kNot
	kNeg
	kITE
)

// internShards spreads the table over independently locked shards, picked by
// fingerprint, so concurrent engines (parallel exploration workers, batch
// analyses) rarely contend. 64 shards keep the worst case to a short
// critical section around one map operation.
const internShards = 64

type internShard struct {
	mu sync.Mutex
	m  map[ikey]Expr
}

var internTab [internShards]internShard

// internEpoch is the global epoch clock. It only orders collection — nothing
// about expression semantics depends on it — so a coarse, occasionally
// advanced counter is enough.
var internEpoch atomic.Uint64

// internedTotal and collectedTotal are cumulative observability counters:
// nodes ever built into the table, and entries ever collected from it.
var internedTotal, collectedTotal atomic.Uint64

// pinnedEpoch marks entries that must never be collected: the pre-interned
// constants, whose constructors hand out package-level pointers without a
// table lookup (collecting their entries could mint duplicate singletons).
const pinnedEpoch = ^uint64(0)

// CurrentEpoch returns the interner's current epoch.
func CurrentEpoch() uint64 { return internEpoch.Load() }

// AdvanceEpoch moves the interner clock forward one epoch and returns the
// new value. The facade advances it once per completed analysis run, making
// "untouched for N epochs" mean "not needed by the last N runs".
func AdvanceEpoch() uint64 { return internEpoch.Add(1) }

// internNode returns the canonical node for k, building it (with the header
// pre-filled by build) on first sight. Either way the entry's last-touched
// epoch is refreshed under the shard lock.
func internNode(fp fp128, k ikey, build func(h *hdr) Expr) Expr {
	cur := internEpoch.Load()
	s := &internTab[fp.a%internShards]
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		if h := e.header(); h.epoch != pinnedEpoch {
			h.epoch = cur
		}
		s.mu.Unlock()
		return e
	}
	if s.m == nil {
		s.m = make(map[ikey]Expr)
	}
	h := &hdr{fp: fp.a, fp2: fp.b, epoch: cur}
	e := build(h)
	h.canon = e
	s.m[k] = e
	s.mu.Unlock()
	internedTotal.Add(1)
	return e
}

// CollectInterned drops every table entry untouched for more than keepEpochs
// epochs (keepEpochs < 1 is treated as 1: only entries touched in the
// current epoch survive) and returns the number of entries dropped. Each
// shard is scanned and pruned under its own lock, so collection never stops
// the world — concurrent interning proceeds on the other shards.
//
// Collection removes table *entries*, not nodes: a collected node stays
// valid for every holder, it just stops being the node future interning of
// that structure returns. See the package comment for the (relaxed)
// contract and why every consumer tolerates it.
func CollectInterned(keepEpochs int) int {
	if keepEpochs < 1 {
		keepEpochs = 1
	}
	cur := internEpoch.Load()
	var cutoff uint64
	if uint64(keepEpochs) < cur {
		cutoff = cur - uint64(keepEpochs)
	}
	dropped := 0
	for i := range internTab {
		s := &internTab[i]
		s.mu.Lock()
		before := len(s.m)
		for k, e := range s.m {
			if h := e.header(); h.epoch != pinnedEpoch && h.epoch < cutoff {
				delete(s.m, k)
			}
		}
		d := before - len(s.m)
		if d > 0 && d >= len(s.m) {
			// Go maps never shrink their bucket arrays on delete; when a
			// collection halved the shard (or more), rebuild the map so the
			// reclaimed entries actually return memory.
			fresh := make(map[ikey]Expr, len(s.m))
			for k, e := range s.m {
				fresh[k] = e
			}
			s.m = fresh
		}
		s.mu.Unlock()
		dropped += d
	}
	if dropped > 0 {
		collectedTotal.Add(uint64(dropped))
	}
	return dropped
}

// StartInternCollector runs an opt-in background collector: every interval
// it advances the epoch and collects entries untouched for keepEpochs
// epochs, so each tick is one epoch window. The returned stop function
// halts the collector and waits for it to exit. Services that already
// advance the epoch per run (dise.WithInternGC) do not need this; it exists
// for embedders with no natural run boundary.
func StartInternCollector(interval time.Duration, keepEpochs int) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				AdvanceEpoch()
				CollectInterned(keepEpochs)
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// internEntryApproxBytes is the rough per-entry footprint used by
// InternTableStats.ApproxBytes: the map key (ikey, ~64B), the map's bucket
// overhead, the node struct and its header. An estimate for capacity
// accounting, not an exact meter.
const internEntryApproxBytes = 224

// InternStats is a snapshot of the intern table for observability: live
// entries, the cumulative built/collected counters, the current epoch, and
// an approximate byte footprint.
type InternStats struct {
	Entries     int
	ApproxBytes int64
	Epoch       uint64
	Interned    uint64
	Collected   uint64
}

// InternTableStats snapshots the intern table. Shard sizes are read under
// each shard's lock in turn, so the total is a consistent-enough figure for
// metrics, not an atomic snapshot of the whole table.
func InternTableStats() InternStats {
	st := InternStats{
		Epoch:     internEpoch.Load(),
		Interned:  internedTotal.Load(),
		Collected: collectedTotal.Load(),
	}
	for i := range internTab {
		s := &internTab[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	st.ApproxBytes = int64(st.Entries) * internEntryApproxBytes
	return st
}

func internInt(v int64) *IntConst {
	return internNode(fpInt(v), ikey{kind: kInt, iv: v}, func(h *hdr) Expr {
		return &IntConst{V: v, h: h}
	}).(*IntConst)
}

func internBool(v bool) *BoolConst {
	return internNode(fpBool(v), ikey{kind: kBool, iv: b2i(v)}, func(h *hdr) Expr {
		return &BoolConst{V: v, h: h}
	}).(*BoolConst)
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

func internVar(name string) *Var {
	return internNode(fpVar(name), ikey{kind: kVar, name: name}, func(h *hdr) Expr {
		h.vars = []string{name}
		return &Var{Name: name, h: h}
	}).(*Var)
}

// newBin interns (op, l, r), canonicalizing the children first. It performs
// no simplification — the smart constructors in simplify.go do that before
// calling it.
func newBin(op Op, l, r Expr) *Bin {
	l, r = Intern(l), Intern(r)
	lh, rh := l.header(), r.header()
	fp := fpBin(op, fp128{lh.fp, lh.fp2}, fp128{rh.fp, rh.fp2})
	return internNode(fp, ikey{kind: kBin, op: op, l: l, r: r}, func(h *hdr) Expr {
		h.vars = mergeVars(lh.vars, rh.vars)
		return &Bin{Op: op, L: l, R: r, h: h}
	}).(*Bin)
}

func newNot(x Expr) *Not {
	x = Intern(x)
	xh := x.header()
	fp := fpNot(fp128{xh.fp, xh.fp2})
	return internNode(fp, ikey{kind: kNot, l: x}, func(h *hdr) Expr {
		h.vars = xh.vars
		return &Not{X: x, h: h}
	}).(*Not)
}

func newNeg(x Expr) *Neg {
	x = Intern(x)
	xh := x.header()
	fp := fpNeg(fp128{xh.fp, xh.fp2})
	return internNode(fp, ikey{kind: kNeg, l: x}, func(h *hdr) Expr {
		h.vars = xh.vars
		return &Neg{X: x, h: h}
	}).(*Neg)
}

// newITE interns ite(c, t, e), canonicalizing the children first. No
// simplification — the ITE smart constructor in simplify.go does that. Each
// first-sight build bumps the package ITE counter behind the ite_nodes stat.
func newITE(c, t, e Expr) *Ite {
	c, t, e = Intern(c), Intern(t), Intern(e)
	ch, th, eh := c.header(), t.header(), e.header()
	fp := fpIte(fp128{ch.fp, ch.fp2}, fp128{th.fp, th.fp2}, fp128{eh.fp, eh.fp2})
	return internNode(fp, ikey{kind: kITE, l: c, r: t, x: e}, func(h *hdr) Expr {
		h.vars = mergeVars(mergeVars(ch.vars, th.vars), eh.vars)
		iteBuilt.Add(1)
		return &Ite{Cond: c, Then: t, Else: e, h: h}
	}).(*Ite)
}

// iteBuilt counts ITE nodes ever built into the table (re-interning after a
// collection counts again). ITENodesBuilt exposes it so the engine can
// report the ITE construction work of one run as a before/after delta —
// approximate under concurrent runs, exact for a single engine.
var iteBuilt atomic.Uint64

// ITENodesBuilt returns the cumulative count of distinct ITE nodes interned.
func ITENodesBuilt() uint64 { return iteBuilt.Load() }

// Intern returns the canonical node structurally equal to e, interning its
// sub-expressions bottom-up as needed. It preserves structure exactly — no
// simplification — so Intern(a) == Intern(b) iff Equal(a, b). Canonical
// nodes return themselves (and by-value copies of canonical nodes return
// their original via the shared header), making Intern O(1) on the hot
// path: expressions built through the constructors are already canonical.
func Intern(e Expr) Expr {
	if e == nil {
		return nil
	}
	if h := e.header(); h != nil {
		return h.canon
	}
	switch e := e.(type) {
	case *IntConst:
		return Int(e.V)
	case *BoolConst:
		return Bool(e.V)
	case *Var:
		return V(e.Name)
	case *Bin:
		return newBin(e.Op, Intern(e.L), Intern(e.R))
	case *Not:
		return newNot(Intern(e.X))
	case *Neg:
		return newNeg(Intern(e.X))
	case *Ite:
		return newITE(Intern(e.Cond), Intern(e.Then), Intern(e.Else))
	}
	panic("sym.Intern: unknown expression")
}

// mergeVars unions two sorted name lists, sharing an input slice whenever it
// already is the union (the dominant case: one side constant, or both sides
// over the same variable).
func mergeVars(a, b []string) []string {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	if subsetOf(b, a) {
		return a
	}
	if subsetOf(a, b) {
		return b
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// subsetOf reports a ⊆ b for sorted slices.
func subsetOf(a, b []string) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
	}
	return true
}

// --- pre-interned constants --------------------------------------------------

// smallInt caches canonical nodes for the constants programs actually
// mention, bypassing the shard lock on the hottest constructor.
const (
	smallIntLo = -128
	smallIntHi = 256
)

var smallInt [smallIntHi - smallIntLo]*IntConst

func init() {
	for v := int64(smallIntLo); v < smallIntHi; v++ {
		smallInt[v-smallIntLo] = internInt(v)
	}
	// Pin everything interned so far: at this point the table holds exactly
	// the pre-interned constants (True/False/Zero/One from the package vars,
	// smallInt from the loop above), whose constructors bypass the table and
	// must therefore keep their entries forever.
	for i := range internTab {
		s := &internTab[i]
		s.mu.Lock()
		for _, e := range s.m {
			e.header().epoch = pinnedEpoch
		}
		s.mu.Unlock()
	}
}
