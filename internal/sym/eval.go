package sym

import "fmt"

// Value is a concrete value: an int64 or a bool.
type Value struct {
	IsBool bool
	I      int64
	B      bool
}

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{I: v} }

// BoolValue wraps a bool.
func BoolValue(v bool) Value { return Value{IsBool: true, B: v} }

// String renders the value.
func (v Value) String() string {
	if v.IsBool {
		if v.B {
			return "true"
		}
		return "false"
	}
	return fmt.Sprintf("%d", v.I)
}

// Eval evaluates e under a full concrete assignment. It returns an error for
// unbound variables, type mismatches, or division by zero — the latter
// mirrors a Java ArithmeticException and lets callers treat the path as
// erroneous rather than crash.
func Eval(e Expr, env map[string]Value) (Value, error) {
	switch e := e.(type) {
	case *IntConst:
		return IntValue(e.V), nil
	case *BoolConst:
		return BoolValue(e.V), nil
	case *Var:
		v, ok := env[e.Name]
		if !ok {
			return Value{}, fmt.Errorf("sym.Eval: unbound variable %q", e.Name)
		}
		return v, nil
	case *Neg:
		x, err := Eval(e.X, env)
		if err != nil {
			return Value{}, err
		}
		if x.IsBool {
			return Value{}, fmt.Errorf("sym.Eval: negating bool")
		}
		return IntValue(-x.I), nil
	case *Not:
		x, err := Eval(e.X, env)
		if err != nil {
			return Value{}, err
		}
		if !x.IsBool {
			return Value{}, fmt.Errorf("sym.Eval: ! on int")
		}
		return BoolValue(!x.B), nil
	case *Ite:
		c, err := Eval(e.Cond, env)
		if err != nil {
			return Value{}, err
		}
		if !c.IsBool {
			return Value{}, fmt.Errorf("sym.Eval: ite guard is not boolean")
		}
		if c.B {
			return Eval(e.Then, env)
		}
		return Eval(e.Else, env)
	case *Bin:
		l, err := Eval(e.L, env)
		if err != nil {
			return Value{}, err
		}
		// Short-circuit booleans first.
		switch e.Op {
		case OpAnd:
			if !l.B {
				return BoolValue(false), nil
			}
			return Eval(e.R, env)
		case OpOr:
			if l.B {
				return BoolValue(true), nil
			}
			return Eval(e.R, env)
		}
		r, err := Eval(e.R, env)
		if err != nil {
			return Value{}, err
		}
		switch {
		case e.Op.IsArith():
			if l.IsBool || r.IsBool {
				return Value{}, fmt.Errorf("sym.Eval: arithmetic on bool")
			}
			switch e.Op {
			case OpAdd:
				return IntValue(l.I + r.I), nil
			case OpSub:
				return IntValue(l.I - r.I), nil
			case OpMul:
				return IntValue(l.I * r.I), nil
			case OpDiv:
				if r.I == 0 {
					return Value{}, fmt.Errorf("sym.Eval: division by zero")
				}
				return IntValue(l.I / r.I), nil
			case OpMod:
				if r.I == 0 {
					return Value{}, fmt.Errorf("sym.Eval: modulo by zero")
				}
				return IntValue(l.I % r.I), nil
			}
		case e.Op.IsComparison():
			if l.IsBool != r.IsBool {
				return Value{}, fmt.Errorf("sym.Eval: comparing int with bool")
			}
			if l.IsBool {
				switch e.Op {
				case OpEQ:
					return BoolValue(l.B == r.B), nil
				case OpNE:
					return BoolValue(l.B != r.B), nil
				default:
					return Value{}, fmt.Errorf("sym.Eval: ordering on bool")
				}
			}
			return BoolValue(evalCmpInt(e.Op, l.I, r.I)), nil
		}
	}
	return Value{}, fmt.Errorf("sym.Eval: unknown expression %T", e)
}

// EvalBool evaluates a boolean expression under env.
func EvalBool(e Expr, env map[string]Value) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	if !v.IsBool {
		return false, fmt.Errorf("sym.EvalBool: expression %s is not boolean", e)
	}
	return v.B, nil
}
