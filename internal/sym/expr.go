// Package sym defines the symbolic expression IR used by the symbolic
// executor and the constraint solver.
//
// During symbolic execution each program variable maps to an Expr over the
// symbolic inputs (procedure parameters and, optionally, symbolic globals)
// and integer constants — exactly the "symbolic expressions for the symbolic
// input variables" of the paper's §2.1. Path conditions are conjunctions of
// boolean Exprs.
//
// The IR is immutable and hash-consed: the smart constructors return
// canonical nodes from a global intern table (see intern.go), so
// structurally equal expressions are pointer-identical, expressions may be
// shared freely between symbolic states (states are forked at every
// branch), and the hot operations — Equal, Fingerprint, Vars, String — are
// O(1) reads on canonical nodes.
package sym

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op enumerates operators in the IR.
type Op int

// Operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg

	OpEQ
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE

	OpAnd
	OpOr
	OpNot
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%", OpNeg: "-",
	OpEQ: "==", OpNE: "!=", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=",
	OpAnd: "&&", OpOr: "||", OpNot: "!",
}

// String renders the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsComparison reports whether o is a comparison.
func (o Op) IsComparison() bool { return o >= OpEQ && o <= OpGE }

// IsArith reports whether o is a binary arithmetic operator.
func (o Op) IsArith() bool { return o >= OpAdd && o <= OpMod }

// Negate returns the comparison with the opposite truth value:
// ¬(a < b) = a >= b, etc.
func (o Op) Negate() Op {
	switch o {
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	case OpLT:
		return OpGE
	case OpLE:
		return OpGT
	case OpGT:
		return OpLE
	case OpGE:
		return OpLT
	}
	panic(fmt.Sprintf("sym: Negate of non-comparison %v", o))
}

// Swap returns the comparison with operands exchanged: a < b  ≡  b > a.
func (o Op) Swap() Op {
	switch o {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	case OpEQ, OpNE:
		return o
	}
	panic(fmt.Sprintf("sym: Swap of non-comparison %v", o))
}

// Expr is a symbolic expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
	// header returns the interner header of a canonical node, nil for nodes
	// built as raw literals. Unexported: the node set is closed.
	header() *hdr
}

// IntConst is an integer constant.
type IntConst struct {
	V int64
	h *hdr
}

// BoolConst is a boolean constant.
type BoolConst struct {
	V bool
	h *hdr
}

// Var is a symbolic variable (a procedure input in the paper's setting,
// e.g. X for parameter x).
type Var struct {
	Name string
	h    *hdr
}

// Bin is a binary operation.
type Bin struct {
	Op   Op
	L, R Expr
	h    *hdr
}

// Not is logical negation.
type Not struct {
	X Expr
	h *hdr
}

// Neg is arithmetic negation.
type Neg struct {
	X Expr
	h *hdr
}

// ITE is a functional if-then-else over values: it denotes Then when Cond
// holds and Else otherwise. State merging introduces ITE nodes when fusing
// sibling environments at CFG join points; the language front end never
// produces one. Like every node, build it through its smart constructor
// (ITE in simplify.go) — the symcanon lint rejects raw literals elsewhere.
type Ite struct {
	Cond, Then, Else Expr
	h                *hdr
}

func (*IntConst) exprNode()  {}
func (*BoolConst) exprNode() {}
func (*Var) exprNode()       {}
func (*Bin) exprNode()       {}
func (*Not) exprNode()       {}
func (*Neg) exprNode()       {}
func (*Ite) exprNode()       {}

// Shared canonical constants.
var (
	True  = internBool(true)
	False = internBool(false)
	Zero  = internInt(0)
	One   = internInt(1)
)

// Int returns the canonical integer constant expression.
func Int(v int64) *IntConst {
	if v >= smallIntLo && v < smallIntHi {
		return smallInt[v-smallIntLo]
	}
	return internInt(v)
}

// Bool returns the canonical boolean constant expression.
func Bool(v bool) *BoolConst {
	if v {
		return True
	}
	return False
}

// V returns the canonical symbolic variable.
func V(name string) *Var { return internVar(name) }

// memoLoad returns the header's memoized rendering, if any. memoStore
// publishes a fresh rendering (a benign race: concurrent first renders
// store the same value) and returns it. Plain functions rather than one
// closure-taking helper so the memoized fast path stays allocation-free.
func memoLoad(h *hdr) (string, bool) {
	if h != nil {
		if s := h.str.Load(); s != nil {
			return *s, true
		}
	}
	return "", false
}

func memoStore(h *hdr, s string) string {
	if h != nil {
		h.str.Store(&s)
	}
	return s
}

func (e *IntConst) String() string {
	if s, ok := memoLoad(e.h); ok {
		return s
	}
	return memoStore(e.h, strconv.FormatInt(e.V, 10))
}

func (e *BoolConst) String() string {
	if e.V {
		return "TRUE"
	}
	return "FALSE"
}

func (e *Var) String() string { return e.Name }

func (e *Bin) String() string {
	if s, ok := memoLoad(e.h); ok {
		return s
	}
	return memoStore(e.h, wrap(e.L)+" "+e.Op.String()+" "+wrap(e.R))
}

func (e *Not) String() string {
	if s, ok := memoLoad(e.h); ok {
		return s
	}
	return memoStore(e.h, "!"+wrap(e.X))
}

func (e *Neg) String() string {
	if s, ok := memoLoad(e.h); ok {
		return s
	}
	return memoStore(e.h, "-"+wrap(e.X))
}

func (e *Ite) String() string {
	if s, ok := memoLoad(e.h); ok {
		return s
	}
	return memoStore(e.h, "ite("+e.Cond.String()+", "+e.Then.String()+", "+e.Else.String()+")")
}

func wrap(e Expr) string {
	switch e.(type) {
	case *Bin:
		return "(" + e.String() + ")"
	default:
		return e.String()
	}
}

// Equal reports structural equality of two expressions. For canonical
// (interned) nodes the hot path is a header compare: nodes interned in the
// same collection era share one header exactly when they are structurally
// equal — which also makes a by-value copy of a canonical node compare
// equal to its original. Two canonical nodes with different headers are
// decided by their fingerprint pairs: fingerprints are pure functions of
// structure, so differing pairs are an exact "not equal", while a matching
// pair (a cross-collection duplicate, or a ~2^-128 collision) falls through
// to the structural walk for the definitive answer. The walk also remains
// the fallback for nodes built as raw literals (test code).
func Equal(a, b Expr) bool {
	if a == b {
		return true
	}
	if ha, hb := headerOf(a), headerOf(b); ha != nil && hb != nil {
		if ha == hb {
			return true
		}
		if ha.fp != hb.fp || ha.fp2 != hb.fp2 {
			return false
		}
	}
	switch a := a.(type) {
	case *IntConst:
		b, ok := b.(*IntConst)
		return ok && a.V == b.V
	case *BoolConst:
		b, ok := b.(*BoolConst)
		return ok && a.V == b.V
	case *Var:
		b, ok := b.(*Var)
		return ok && a.Name == b.Name
	case *Bin:
		bb, ok := b.(*Bin)
		return ok && a.Op == bb.Op && Equal(a.L, bb.L) && Equal(a.R, bb.R)
	case *Not:
		b, ok := b.(*Not)
		return ok && Equal(a.X, b.X)
	case *Neg:
		b, ok := b.(*Neg)
		return ok && Equal(a.X, b.X)
	case *Ite:
		b, ok := b.(*Ite)
		return ok && Equal(a.Cond, b.Cond) && Equal(a.Then, b.Then) && Equal(a.Else, b.Else)
	}
	return false
}

// Walk visits e and all sub-expressions, pre-order.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *Bin:
		Walk(e.L, fn)
		Walk(e.R, fn)
	case *Not:
		Walk(e.X, fn)
	case *Neg:
		Walk(e.X, fn)
	case *Ite:
		Walk(e.Cond, fn)
		Walk(e.Then, fn)
		Walk(e.Else, fn)
	}
}

// Vars returns the sorted list of symbolic variable names occurring in e.
// For canonical nodes it returns the interner's cached slice, which is
// shared — callers must not mutate it.
func Vars(e Expr) []string {
	if h := headerOf(e); h != nil {
		return h.vars
	}
	set := map[string]bool{}
	Walk(e, func(x Expr) {
		if v, ok := x.(*Var); ok {
			set[v.Name] = true
		}
	})
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// VarsAll returns the sorted list of variable names across all exprs.
func VarsAll(exprs []Expr) []string {
	set := map[string]bool{}
	for _, e := range exprs {
		if h := headerOf(e); h != nil {
			for _, name := range h.vars {
				set[name] = true
			}
			continue
		}
		Walk(e, func(x Expr) {
			if v, ok := x.(*Var); ok {
				set[v.Name] = true
			}
		})
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Conjoin renders a conjunction of constraints the way SPF prints path
// conditions: "c1 && c2 && ...". An empty conjunction renders as "true".
func Conjoin(cs []Expr) string {
	switch len(cs) {
	case 0:
		return "true"
	case 1:
		return cs[0].String()
	}
	var b strings.Builder
	n := 0
	for _, c := range cs {
		n += len(c.String()) + 4 // rendering is memoized; sizing pass is cheap
	}
	b.Grow(n)
	for i, c := range cs {
		if i > 0 {
			b.WriteString(" && ")
		}
		b.WriteString(c.String())
	}
	return b.String()
}
