// Package sym defines the symbolic expression IR used by the symbolic
// executor and the constraint solver.
//
// During symbolic execution each program variable maps to an Expr over the
// symbolic inputs (procedure parameters and, optionally, symbolic globals)
// and integer constants — exactly the "symbolic expressions for the symbolic
// input variables" of the paper's §2.1. Path conditions are conjunctions of
// boolean Exprs.
//
// The IR is immutable; Simplify and the builder helpers return shared or
// fresh nodes and never mutate their arguments, so expressions may be shared
// freely between symbolic states (states are forked at every branch).
package sym

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates operators in the IR.
type Op int

// Operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg

	OpEQ
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE

	OpAnd
	OpOr
	OpNot
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%", OpNeg: "-",
	OpEQ: "==", OpNE: "!=", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=",
	OpAnd: "&&", OpOr: "||", OpNot: "!",
}

// String renders the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsComparison reports whether o is a comparison.
func (o Op) IsComparison() bool { return o >= OpEQ && o <= OpGE }

// IsArith reports whether o is a binary arithmetic operator.
func (o Op) IsArith() bool { return o >= OpAdd && o <= OpMod }

// Negate returns the comparison with the opposite truth value:
// ¬(a < b) = a >= b, etc.
func (o Op) Negate() Op {
	switch o {
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	case OpLT:
		return OpGE
	case OpLE:
		return OpGT
	case OpGT:
		return OpLE
	case OpGE:
		return OpLT
	}
	panic(fmt.Sprintf("sym: Negate of non-comparison %v", o))
}

// Swap returns the comparison with operands exchanged: a < b  ≡  b > a.
func (o Op) Swap() Op {
	switch o {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	case OpEQ, OpNE:
		return o
	}
	panic(fmt.Sprintf("sym: Swap of non-comparison %v", o))
}

// Expr is a symbolic expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// IntConst is an integer constant.
type IntConst struct{ V int64 }

// BoolConst is a boolean constant.
type BoolConst struct{ V bool }

// Var is a symbolic variable (a procedure input in the paper's setting,
// e.g. X for parameter x).
type Var struct{ Name string }

// Bin is a binary operation.
type Bin struct {
	Op   Op
	L, R Expr
}

// Not is logical negation.
type Not struct{ X Expr }

// Neg is arithmetic negation.
type Neg struct{ X Expr }

func (*IntConst) exprNode()  {}
func (*BoolConst) exprNode() {}
func (*Var) exprNode()       {}
func (*Bin) exprNode()       {}
func (*Not) exprNode()       {}
func (*Neg) exprNode()       {}

// Shared constants.
var (
	True  = &BoolConst{V: true}
	False = &BoolConst{V: false}
	Zero  = &IntConst{V: 0}
	One   = &IntConst{V: 1}
)

// Int returns an integer constant expression.
func Int(v int64) *IntConst {
	switch v {
	case 0:
		return Zero
	case 1:
		return One
	}
	return &IntConst{V: v}
}

// Bool returns a boolean constant expression.
func Bool(v bool) *BoolConst {
	if v {
		return True
	}
	return False
}

// V returns a symbolic variable.
func V(name string) *Var { return &Var{Name: name} }

func (e *IntConst) String() string { return fmt.Sprintf("%d", e.V) }
func (e *BoolConst) String() string {
	if e.V {
		return "TRUE"
	}
	return "FALSE"
}
func (e *Var) String() string { return e.Name }
func (e *Bin) String() string {
	return wrap(e.L) + " " + e.Op.String() + " " + wrap(e.R)
}
func (e *Not) String() string { return "!" + wrap(e.X) }
func (e *Neg) String() string { return "-" + wrap(e.X) }

func wrap(e Expr) string {
	switch e.(type) {
	case *Bin:
		return "(" + e.String() + ")"
	default:
		return e.String()
	}
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	switch a := a.(type) {
	case *IntConst:
		b, ok := b.(*IntConst)
		return ok && a.V == b.V
	case *BoolConst:
		b, ok := b.(*BoolConst)
		return ok && a.V == b.V
	case *Var:
		b, ok := b.(*Var)
		return ok && a.Name == b.Name
	case *Bin:
		bb, ok := b.(*Bin)
		return ok && a.Op == bb.Op && Equal(a.L, bb.L) && Equal(a.R, bb.R)
	case *Not:
		b, ok := b.(*Not)
		return ok && Equal(a.X, b.X)
	case *Neg:
		b, ok := b.(*Neg)
		return ok && Equal(a.X, b.X)
	}
	return false
}

// Walk visits e and all sub-expressions, pre-order.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *Bin:
		Walk(e.L, fn)
		Walk(e.R, fn)
	case *Not:
		Walk(e.X, fn)
	case *Neg:
		Walk(e.X, fn)
	}
}

// Vars returns the sorted list of symbolic variable names occurring in e.
func Vars(e Expr) []string {
	set := map[string]bool{}
	Walk(e, func(x Expr) {
		if v, ok := x.(*Var); ok {
			set[v.Name] = true
		}
	})
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// VarsAll returns the sorted list of variable names across all exprs.
func VarsAll(exprs []Expr) []string {
	set := map[string]bool{}
	for _, e := range exprs {
		Walk(e, func(x Expr) {
			if v, ok := x.(*Var); ok {
				set[v.Name] = true
			}
		})
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Conjoin renders a conjunction of constraints the way SPF prints path
// conditions: "c1 && c2 && ...". An empty conjunction renders as "true".
func Conjoin(cs []Expr) string {
	if len(cs) == 0 {
		return "true"
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}
