package sym

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// gcExpr builds a structure unlikely to be shared with other tests, from a
// salt so repeated calls rebuild the identical structure. The symbolic-armed
// ite subterm (which no constructor fold removes) extends every collection
// test to the shapes state merging produces: Equal and both fingerprint
// halves must stay stable for ite trees across collection eras too.
func gcExpr(salt string, v int64) Expr {
	x := V("gc_" + salt + "_x")
	y := V("gc_" + salt + "_y")
	m := ITE(Cmp(OpLT, x, y), Add(x, Int(v)), Sub(y, Int(v)))
	return AndE(Cmp(OpLT, Add(x, Int(v)), y), NotE(Cmp(OpEQ, m, Int(v+100000))))
}

func TestInternCanonicalWithinEpoch(t *testing.T) {
	a := gcExpr("within", 12345)
	b := gcExpr("within", 12345)
	if a != b {
		t.Fatalf("same structure interned twice in one epoch: distinct pointers %p %p", a, b)
	}
	if !Equal(a, b) {
		t.Fatal("Equal(a, a) = false")
	}
}

func TestInternCollectThenReintern(t *testing.T) {
	five := Int(5)
	tr := Bool(true)

	a := gcExpr("reintern", 54321)
	fp1, fp2 := Fingerprints(a)
	str := a.String()

	// Age the entry out: advance past the keep window and collect.
	for i := 0; i < 3; i++ {
		AdvanceEpoch()
	}
	if dropped := CollectInterned(1); dropped == 0 {
		t.Fatal("CollectInterned collected nothing despite aged entries")
	}

	b := gcExpr("reintern", 54321)
	if a == b {
		t.Fatalf("expected a fresh node after collection, got the old pointer %p", a)
	}
	if !Equal(a, b) || !Equal(b, a) {
		t.Fatal("Equal must hold across a collection for structurally equal nodes")
	}
	if g1, g2 := Fingerprints(b); g1 != fp1 || g2 != fp2 {
		t.Fatalf("fingerprints changed across collection: (%x,%x) vs (%x,%x)", fp1, fp2, g1, g2)
	}
	if b.String() != str {
		t.Fatalf("rendering changed across collection: %q vs %q", str, b.String())
	}
	// Distinct structures must stay unequal across the collection boundary
	// (the fingerprint compare is exact, not approximate).
	if Equal(a, gcExpr("reintern", 54322)) {
		t.Fatal("Equal(true) for structurally distinct nodes across collection")
	}
	// And a third build in the same (new) era re-canonicalizes.
	if c := gcExpr("reintern", 54321); c != b {
		t.Fatalf("post-collection interning not canonical: %p vs %p", b, c)
	}

	// Pinned constants keep their identity: the constructors bypass the
	// table, so collection must never mint duplicate singletons.
	if Int(5) != five || Bool(true) != tr {
		t.Fatal("pre-interned constants lost identity across collection")
	}
}

func TestInternStatsCounters(t *testing.T) {
	before := InternTableStats()
	gcExpr("stats", int64(9000)+int64(before.Interned%1000))
	after := InternTableStats()
	if after.Entries <= 0 || after.ApproxBytes <= 0 {
		t.Fatalf("implausible snapshot: %+v", after)
	}
	if after.Interned <= before.Interned {
		t.Fatalf("interned counter did not advance: %d -> %d", before.Interned, after.Interned)
	}
}

func TestInternBackgroundCollector(t *testing.T) {
	gcExpr("bg", 777)
	stop := StartInternCollector(time.Millisecond, 1)
	deadline := time.Now().Add(2 * time.Second)
	for InternTableStats().Collected == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	if InternTableStats().Collected == 0 {
		t.Fatal("background collector never collected an aged entry")
	}
}

// TestInternCollectRaceStress interleaves 8 goroutines interning and
// comparing expressions with a collector thread aging entries out as fast
// as it can. Run under -race this exercises the shard-lock discipline; the
// assertions check the relaxed contract (Equal and fingerprints stable,
// pointer identity only within an era).
func TestInternCollectRaceStress(t *testing.T) {
	const (
		workers = 8
		iters   = 400
	)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				salt := fmt.Sprintf("race%d", (w+i)%5)
				v := int64(1000 + i%17)
				a := gcExpr(salt, v)
				b := gcExpr(salt, v)
				if !Equal(a, b) {
					t.Errorf("Equal=false for same structure (%s, %d)", salt, v)
					return
				}
				if Fingerprint(a) != Fingerprint(b) {
					t.Errorf("fingerprint drift for same structure (%s, %d)", salt, v)
					return
				}
				if Equal(a, gcExpr(salt, v+1)) {
					t.Errorf("Equal=true for distinct structures (%s, %d)", salt, v)
					return
				}
			}
		}(w)
	}
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				AdvanceEpoch()
				CollectInterned(1)
			}
		}
	}()
	wg.Wait()
	close(done)
}
