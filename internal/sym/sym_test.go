package sym

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSmartConstructorFolding(t *testing.T) {
	x := V("X")
	tests := []struct {
		got  Expr
		want string
	}{
		{Add(Int(2), Int(3)), "5"},
		{Add(x, Zero), "X"},
		{Add(Zero, x), "X"},
		{Sub(x, Zero), "X"},
		{Sub(x, x), "0"},
		{Sub(Int(7), Int(3)), "4"},
		{Mul(Int(3), Int(4)), "12"},
		{Mul(x, Zero), "0"},
		{Mul(One, x), "X"},
		{Mul(x, One), "X"},
		{Div(Int(7), Int(2)), "3"},
		{Div(x, One), "X"},
		{Div(Int(1), Int(4)), "0"}, // the paper's AltPress = 1/4 under int semantics
		{Mod(Int(7), Int(3)), "1"},
		{Mod(x, One), "0"},
		{NegE(Int(5)), "-5"},
		{NegE(NegE(x)), "X"},
		{Add(Add(x, Int(1)), Int(1)), "X + 2"},
		{Sub(Add(x, Int(5)), Int(2)), "X + 3"},
		{Add(Sub(x, Int(5)), Int(2)), "X - 3"},
	}
	for _, tt := range tests {
		if got := tt.got.String(); got != tt.want {
			t.Errorf("got %q, want %q", got, tt.want)
		}
	}
}

func TestCmpFolding(t *testing.T) {
	x := V("X")
	tests := []struct {
		got  Expr
		want string
	}{
		{Cmp(OpLT, Int(1), Int(2)), "TRUE"},
		{Cmp(OpGE, Int(1), Int(2)), "FALSE"},
		{Cmp(OpEQ, x, x), "TRUE"},
		{Cmp(OpNE, x, x), "FALSE"},
		{Cmp(OpLE, x, x), "TRUE"},
		{Cmp(OpLT, x, x), "FALSE"},
		{Cmp(OpEQ, True, False), "FALSE"},
		{Cmp(OpNE, True, False), "TRUE"},
		{Cmp(OpGT, x, Int(0)), "X > 0"},
	}
	for _, tt := range tests {
		if got := tt.got.String(); got != tt.want {
			t.Errorf("got %q, want %q", got, tt.want)
		}
	}
}

func TestBooleanSimplification(t *testing.T) {
	p := Cmp(OpGT, V("X"), Zero)
	tests := []struct {
		got  Expr
		want string
	}{
		{AndE(True, p), "X > 0"},
		{AndE(p, True), "X > 0"},
		{AndE(False, p), "FALSE"},
		{OrE(True, p), "TRUE"},
		{OrE(p, False), "X > 0"},
		{NotE(True), "FALSE"},
		{NotE(NotE(p)), "X > 0"},
		{NotE(p), "X <= 0"},
		{NotE(Cmp(OpEQ, V("X"), One)), "X != 1"},
		{NotE(AndE(p, Cmp(OpEQ, V("Y"), Zero))), "(X <= 0) || (Y != 0)"},
		{NotE(OrE(p, Cmp(OpEQ, V("Y"), Zero))), "(X <= 0) && (Y != 0)"},
	}
	for _, tt := range tests {
		if got := tt.got.String(); got != tt.want {
			t.Errorf("got %q, want %q", got, tt.want)
		}
	}
}

func TestNegateAndSwap(t *testing.T) {
	pairs := map[Op]Op{
		OpEQ: OpNE, OpNE: OpEQ, OpLT: OpGE, OpLE: OpGT, OpGT: OpLE, OpGE: OpLT,
	}
	for op, want := range pairs {
		if got := op.Negate(); got != want {
			t.Errorf("%v.Negate() = %v, want %v", op, got, want)
		}
		if got := op.Negate().Negate(); got != op {
			t.Errorf("double negation of %v = %v", op, got)
		}
	}
	swaps := map[Op]Op{OpLT: OpGT, OpLE: OpGE, OpGT: OpLT, OpGE: OpLE, OpEQ: OpEQ, OpNE: OpNE}
	for op, want := range swaps {
		if got := op.Swap(); got != want {
			t.Errorf("%v.Swap() = %v, want %v", op, got, want)
		}
	}
}

func TestEqualStructural(t *testing.T) {
	a := Add(V("X"), Int(2))
	b := Add(V("X"), Int(2))
	c := Add(V("Y"), Int(2))
	if !Equal(a, b) {
		t.Error("identical expressions must be Equal")
	}
	if Equal(a, c) {
		t.Error("different variables must not be Equal")
	}
	if Equal(a, Int(2)) {
		t.Error("different shapes must not be Equal")
	}
	if !Equal(NotE(V("B")), NotE(V("B"))) {
		t.Error("Not nodes must compare structurally")
	}
}

func TestVarsCollection(t *testing.T) {
	e := AndE(Cmp(OpGT, Add(V("X"), V("Y")), Zero), Cmp(OpEQ, V("A"), V("X")))
	got := Vars(e)
	want := []string{"A", "X", "Y"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Vars[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestConjoin(t *testing.T) {
	if Conjoin(nil) != "true" {
		t.Errorf("empty conjunction = %q, want true", Conjoin(nil))
	}
	cs := []Expr{Cmp(OpGT, V("X"), Zero), Cmp(OpEQ, V("Y"), One)}
	if got := Conjoin(cs); got != "X > 0 && Y == 1" {
		t.Errorf("Conjoin = %q", got)
	}
}

func TestLinearOf(t *testing.T) {
	x, y := V("X"), V("Y")
	tests := []struct {
		e    Expr
		want string
		ok   bool
	}{
		{Int(5), "5", true},
		{x, "1*X", true},
		{Add(x, y), "1*X + 1*Y", true},
		{Sub(x, y), "1*X + -1*Y", true},
		{Add(Add(x, x), Int(3)), "2*X + 3", true},
		{Mul(Int(3), x), "3*X", true},
		{Mul(x, Int(3)), "3*X", true},
		{Sub(Mul(Int(2), x), Mul(Int(2), x)), "0", true},
		{Mul(x, y), "", false},
		{&Bin{Op: OpDiv, L: x, R: Int(2)}, "", false},
		{&Bin{Op: OpMod, L: x, R: Int(2)}, "", false},
		{NegE(Add(x, Int(1))), "-1*X + -1", true},
	}
	for _, tt := range tests {
		lin, ok := LinearOf(tt.e)
		if ok != tt.ok {
			t.Errorf("LinearOf(%s) ok = %v, want %v", tt.e, ok, tt.ok)
			continue
		}
		if ok && lin.String() != tt.want {
			t.Errorf("LinearOf(%s) = %q, want %q", tt.e, lin.String(), tt.want)
		}
	}
}

func TestEvalConcrete(t *testing.T) {
	env := map[string]Value{
		"X": IntValue(3),
		"Y": IntValue(-2),
		"B": BoolValue(true),
	}
	tests := []struct {
		e    Expr
		want string
	}{
		{Add(V("X"), V("Y")), "1"},
		{Mul(V("X"), V("Y")), "-6"},
		{Sub(V("X"), V("Y")), "5"},
		{&Bin{Op: OpDiv, L: Int(7), R: V("X")}, "2"},
		{&Bin{Op: OpMod, L: Int(7), R: V("X")}, "1"},
		{Cmp(OpGT, V("X"), V("Y")), "true"},
		{Cmp(OpEQ, V("X"), Int(3)), "true"},
		{AndE(V("B"), Cmp(OpLT, V("Y"), Zero)), "true"},
		{OrE(NotE(V("B")), False), "false"},
		{NegE(V("X")), "-3"},
	}
	for _, tt := range tests {
		v, err := Eval(tt.e, env)
		if err != nil {
			t.Errorf("Eval(%s): %v", tt.e, err)
			continue
		}
		if v.String() != tt.want {
			t.Errorf("Eval(%s) = %s, want %s", tt.e, v, tt.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	env := map[string]Value{"X": IntValue(1), "B": BoolValue(true)}
	bad := []Expr{
		V("missing"),
		&Bin{Op: OpDiv, L: V("X"), R: Zero},
		&Bin{Op: OpMod, L: V("X"), R: Zero},
		Add(V("B"), Int(1)),
		&Bin{Op: OpLT, L: V("B"), R: V("B")},
		&Not{X: V("X")},
		&Neg{X: V("B")},
		&Bin{Op: OpEQ, L: V("B"), R: V("X")},
	}
	for _, e := range bad {
		if _, err := Eval(e, env); err == nil {
			t.Errorf("Eval(%s): expected error", e)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right operand divides by zero, but short-circuiting skips it.
	env := map[string]Value{"X": IntValue(0)}
	e := OrE(Cmp(OpEQ, V("X"), Zero), Cmp(OpEQ, &Bin{Op: OpDiv, L: One, R: V("X")}, Zero))
	// OrE doesn't fold (left is symbolic pre-eval); evaluate directly.
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("short-circuit Or evaluated rhs: %v", err)
	}
	if !v.B {
		t.Error("want true")
	}
}

// --- property-based tests ---------------------------------------------------

// randExpr builds a random integer expression over vars X, Y with depth d.
func randExpr(r *rand.Rand, d int) Expr {
	if d == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return Int(int64(r.Intn(21) - 10))
		case 1:
			return V("X")
		default:
			return V("Y")
		}
	}
	l, rr := randExpr(r, d-1), randExpr(r, d-1)
	switch r.Intn(4) {
	case 0:
		return Add(l, rr)
	case 1:
		return Sub(l, rr)
	case 2:
		return Mul(l, rr)
	default:
		return NegE(l)
	}
}

// TestPropertySimplifyPreservesSemantics checks that the smart constructors
// agree with unsimplified evaluation on random expressions.
func TestPropertySimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		e := randExpr(r, 4)
		env := map[string]Value{
			"X": IntValue(int64(r.Intn(41) - 20)),
			"Y": IntValue(int64(r.Intn(41) - 20)),
		}
		v1, err := Eval(e, env)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		// Rebuild through Subst (which re-runs all smart constructors with
		// identity env) and evaluate again.
		e2 := Subst(e, map[string]Expr{})
		v2, err := Eval(e2, env)
		if err != nil {
			t.Fatalf("Eval simplified: %v", err)
		}
		if v1.I != v2.I {
			t.Fatalf("simplification changed value: %s = %d vs %s = %d under %v", e, v1.I, e2, v2.I, env)
		}
	}
}

// TestPropertyLinearOfAgreesWithEval: when LinearOf succeeds, evaluating the
// linear form must equal evaluating the original expression.
func TestPropertyLinearOfAgreesWithEval(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	checked := 0
	for i := 0; i < 1000; i++ {
		e := randExpr(r, 4)
		lin, ok := LinearOf(e)
		if !ok {
			continue
		}
		checked++
		x := int64(r.Intn(21) - 10)
		y := int64(r.Intn(21) - 10)
		env := map[string]Value{"X": IntValue(x), "Y": IntValue(y)}
		v, err := Eval(e, env)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		got := lin.Const + lin.Coeffs["X"]*x + lin.Coeffs["Y"]*y
		if got != v.I {
			t.Fatalf("linear form %s = %d but Eval(%s) = %d", lin, got, e, v.I)
		}
	}
	if checked < 100 {
		t.Fatalf("too few linearizable samples: %d", checked)
	}
}

// TestPropertyNotEIsComplement uses testing/quick to confirm NotE computes
// the logical complement for comparisons over random operands.
func TestPropertyNotEIsComplement(t *testing.T) {
	f := func(a, b int16, opIdx uint8) bool {
		ops := []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
		op := ops[int(opIdx)%len(ops)]
		e := &Bin{Op: op, L: V("A"), R: V("B")}
		env := map[string]Value{"A": IntValue(int64(a)), "B": IntValue(int64(b))}
		v1, err1 := EvalBool(e, env)
		v2, err2 := EvalBool(NotE(e), env)
		return err1 == nil && err2 == nil && v1 == !v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeMorgan checks NotE over conjunctions/disjunctions.
func TestPropertyDeMorgan(t *testing.T) {
	f := func(a, b int16, c, d int16) bool {
		p := &Bin{Op: OpLT, L: V("A"), R: V("B")}
		q := &Bin{Op: OpGE, L: V("C"), R: V("D")}
		env := map[string]Value{
			"A": IntValue(int64(a)), "B": IntValue(int64(b)),
			"C": IntValue(int64(c)), "D": IntValue(int64(d)),
		}
		v1, err1 := EvalBool(NotE(AndE(p, q)), env)
		pv, _ := EvalBool(p, env)
		qv, _ := EvalBool(q, env)
		return err1 == nil && v1 == !(pv && qv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSubstReplacesVariables(t *testing.T) {
	e := Add(V("X"), Mul(V("Y"), Int(2)))
	got := Subst(e, map[string]Expr{"X": Int(1), "Y": Int(3)})
	if c, ok := got.(*IntConst); !ok || c.V != 7 {
		t.Errorf("Subst full = %s, want 7", got)
	}
	partial := Subst(e, map[string]Expr{"Y": Int(0)})
	if partial.String() != "X" {
		t.Errorf("Subst partial = %s, want X", partial)
	}
}

func TestSharedConstants(t *testing.T) {
	if Int(0) != Zero || Int(1) != One {
		t.Error("Int must return shared constants for 0 and 1")
	}
	if Bool(true) != True || Bool(false) != False {
		t.Error("Bool must return shared constants")
	}
}

func TestLinearCloneIndependence(t *testing.T) {
	a := NewLinear()
	a.Coeffs["X"] = 2
	a.Const = 5
	b := a.Clone()
	b.Coeffs["X"] = 9
	b.Const = 1
	if a.Coeffs["X"] != 2 || a.Const != 5 {
		t.Error("Clone is not independent")
	}
}
