package sym

// Smart constructors with algebraic simplification. Symbolic execution
// builds expressions at every assignment and branch; folding constants and
// trivial identities keeps path conditions small, mirrors what SPF's
// expression factory does, and gives the constraint solver simpler input.
// Every constructor returns a canonical node from the intern table
// (intern.go), so the expressions the engine builds are comparable by
// pointer.

// Add returns l + r simplified.
func Add(l, r Expr) Expr {
	if lc, ok := l.(*IntConst); ok {
		if rc, ok := r.(*IntConst); ok {
			return Int(lc.V + rc.V)
		}
		if lc.V == 0 {
			return r
		}
	}
	if rc, ok := r.(*IntConst); ok && rc.V == 0 {
		return l
	}
	// Re-associate (x + c1) + c2 → x + (c1+c2): common for chains like
	// PedalCmd = PedalCmd + 1 repeated along a path.
	if rc, ok := r.(*IntConst); ok {
		if lb, ok := l.(*Bin); ok && lb.Op == OpAdd {
			if lrc, ok := lb.R.(*IntConst); ok {
				return Add(lb.L, Int(lrc.V+rc.V))
			}
		}
		if lb, ok := l.(*Bin); ok && lb.Op == OpSub {
			if lrc, ok := lb.R.(*IntConst); ok {
				return Sub(lb.L, Int(lrc.V-rc.V))
			}
		}
	}
	if e, ok := foldIteArith(OpAdd, l, r); ok {
		return e
	}
	return newBin(OpAdd, l, r)
}

// Sub returns l - r simplified.
func Sub(l, r Expr) Expr {
	if lc, ok := l.(*IntConst); ok {
		if rc, ok := r.(*IntConst); ok {
			return Int(lc.V - rc.V)
		}
		if lc.V == 0 {
			return NegE(r)
		}
	}
	if rc, ok := r.(*IntConst); ok && rc.V == 0 {
		return l
	}
	if Equal(l, r) {
		return Zero
	}
	if rc, ok := r.(*IntConst); ok {
		if lb, ok := l.(*Bin); ok && lb.Op == OpAdd {
			if lrc, ok := lb.R.(*IntConst); ok {
				return Add(lb.L, Int(lrc.V-rc.V))
			}
		}
		if lb, ok := l.(*Bin); ok && lb.Op == OpSub {
			if lrc, ok := lb.R.(*IntConst); ok {
				return Sub(lb.L, Int(lrc.V+rc.V))
			}
		}
	}
	if e, ok := foldIteArith(OpSub, l, r); ok {
		return e
	}
	return newBin(OpSub, l, r)
}

// Mul returns l * r simplified.
func Mul(l, r Expr) Expr {
	if lc, ok := l.(*IntConst); ok {
		if rc, ok := r.(*IntConst); ok {
			return Int(lc.V * rc.V)
		}
		switch lc.V {
		case 0:
			return Zero
		case 1:
			return r
		}
	}
	if rc, ok := r.(*IntConst); ok {
		switch rc.V {
		case 0:
			return Zero
		case 1:
			return l
		}
	}
	if e, ok := foldIteArith(OpMul, l, r); ok {
		return e
	}
	return newBin(OpMul, l, r)
}

// Div returns l / r simplified (truncating integer division; division by the
// zero constant is left symbolic and surfaces as an infeasible/opaque
// constraint downstream rather than panicking here).
func Div(l, r Expr) Expr {
	if rc, ok := r.(*IntConst); ok && rc.V != 0 {
		if lc, ok := l.(*IntConst); ok {
			return Int(lc.V / rc.V)
		}
		if rc.V == 1 {
			return l
		}
	}
	if lc, ok := l.(*IntConst); ok && lc.V == 0 {
		if rc, ok := r.(*IntConst); !ok || rc.V != 0 {
			return Zero
		}
	}
	return newBin(OpDiv, l, r)
}

// Mod returns l % r simplified.
func Mod(l, r Expr) Expr {
	if rc, ok := r.(*IntConst); ok && rc.V != 0 {
		if lc, ok := l.(*IntConst); ok {
			return Int(lc.V % rc.V)
		}
		if rc.V == 1 || rc.V == -1 {
			return Zero
		}
	}
	return newBin(OpMod, l, r)
}

// NegE returns -x simplified.
func NegE(x Expr) Expr {
	switch x := x.(type) {
	case *IntConst:
		return Int(-x.V)
	case *Neg:
		return x.X
	case *Ite:
		if constArmedITE(x) {
			return ITE(x.Cond, NegE(x.Then), NegE(x.Else))
		}
	}
	return newNeg(x)
}

// ITE returns ite(cond, t, e) simplified — the functional if-then-else that
// state merging introduces when fusing sibling environments at CFG join
// points. Identities applied: constant guard selects an arm; equal arms
// collapse; a negated guard swaps arms (so ite(c,a,b) and ite(!c,b,a)
// intern to one node); boolean-constant arms fold into plain connectives
// (ite(c,true,x) = c||x, ite(c,false,x) = !c&&x, and mirrored), keeping
// guard logic out of value position; a nested ite on the same guard
// collapses to the arm the guard forces.
func ITE(cond, t, e Expr) Expr {
	if cb, ok := cond.(*BoolConst); ok {
		if cb.V {
			return t
		}
		return e
	}
	if n, ok := cond.(*Not); ok {
		return ITE(n.X, e, t)
	}
	if Equal(t, e) {
		return t
	}
	if tb, ok := t.(*BoolConst); ok {
		if tb.V {
			return OrE(cond, e)
		}
		return AndE(NotE(cond), e)
	}
	if eb, ok := e.(*BoolConst); ok {
		if eb.V {
			return OrE(NotE(cond), t)
		}
		return AndE(cond, t)
	}
	if ti, ok := t.(*Ite); ok && Equal(ti.Cond, cond) {
		t = ti.Then
	}
	if ei, ok := e.(*Ite); ok && Equal(ei.Cond, cond) {
		e = ei.Else
	}
	if Equal(t, e) {
		return t
	}
	return newITE(cond, t, e)
}

// Cmp returns (l op r) simplified, for comparison operators.
func Cmp(op Op, l, r Expr) Expr {
	if !op.IsComparison() {
		panic("sym.Cmp: operator is not a comparison: " + op.String())
	}
	if lc, ok := l.(*IntConst); ok {
		if rc, ok := r.(*IntConst); ok {
			return Bool(evalCmpInt(op, lc.V, rc.V))
		}
	}
	if lb, ok := l.(*BoolConst); ok {
		if rb, ok := r.(*BoolConst); ok {
			switch op {
			case OpEQ:
				return Bool(lb.V == rb.V)
			case OpNE:
				return Bool(lb.V != rb.V)
			}
		}
	}
	if Equal(l, r) {
		switch op {
		case OpEQ, OpLE, OpGE:
			return True
		case OpNE, OpLT, OpGT:
			return False
		}
	}
	// Canonicalize a constant on the left (0 == x → x == 0, 3 < x → x > 3):
	// the two spellings denote the same relation, and normalizing them keeps
	// path conditions readable and makes the canonical rendering stable
	// under operand-order edits — which is what lets the version-chain memo
	// (internal/memo) recognize a reordered-but-equivalent constraint as the
	// same conjunction.
	if isConstExpr(l) && !isConstExpr(r) {
		op, l, r = op.Swap(), r, l
	}
	// A comparison of a constant-armed ite chain (the shape state merging
	// gives environments that differ only in concrete values) against a
	// constant folds through the arms: every leaf comparison is decided
	// concretely, so the whole thing reduces to guard logic the solver's
	// linear machinery understands, instead of an opaque constraint.
	if li, ok := l.(*Ite); ok {
		if rc, ok := r.(*IntConst); ok && constArmedITE(li) {
			return liftCmpITE(op, li, rc)
		}
	}
	return newBin(op, l, r)
}

// constArmedITE reports an ite chain whose leaves are all integer
// constants. Comparisons and arithmetic against such chains fold through
// the arms (Cmp, foldIteArith), keeping merged-state constraints inside the
// solver's decidable fragment.
func constArmedITE(e Expr) bool {
	for {
		ite, ok := e.(*Ite)
		if !ok {
			_, ok := e.(*IntConst)
			return ok
		}
		if !constArmedITE(ite.Then) {
			return false
		}
		e = ite.Else
	}
}

// liftCmpITE distributes (e ⋈ r) over the arms of a constant-armed ite
// chain. The leaf comparisons fold to boolean constants, and the ITE
// constructor's boolean-arm rules then reduce the result to guard logic.
func liftCmpITE(op Op, e Expr, r *IntConst) Expr {
	if ite, ok := e.(*Ite); ok {
		return ITE(ite.Cond, liftCmpITE(op, ite.Then, r), liftCmpITE(op, ite.Else, r))
	}
	return Cmp(op, e, r)
}

// foldIteArith pushes an arithmetic operation with one constant operand
// through a constant-armed ite chain on the other side, preserving the
// chain's constant-armed normal form across sequential assignments (the
// arms fold to fresh constants). Non-constant arms are left alone — the
// fold would duplicate arbitrary subtrees.
func foldIteArith(op Op, l, r Expr) (Expr, bool) {
	if li, ok := l.(*Ite); ok && isConstExpr(r) && constArmedITE(li) {
		return ITE(li.Cond, binArith(op, li.Then, r), binArith(op, li.Else, r)), true
	}
	if ri, ok := r.(*Ite); ok && isConstExpr(l) && constArmedITE(ri) {
		return ITE(ri.Cond, binArith(op, l, ri.Then), binArith(op, l, ri.Else)), true
	}
	return nil, false
}

func binArith(op Op, l, r Expr) Expr {
	switch op {
	case OpAdd:
		return Add(l, r)
	case OpSub:
		return Sub(l, r)
	case OpMul:
		return Mul(l, r)
	}
	panic("sym.binArith: not a foldable operator: " + op.String())
}

// isConstExpr reports a literal constant operand.
func isConstExpr(e Expr) bool {
	switch e.(type) {
	case *IntConst, *BoolConst:
		return true
	}
	return false
}

func evalCmpInt(op Op, a, b int64) bool {
	switch op {
	case OpEQ:
		return a == b
	case OpNE:
		return a != b
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	}
	panic("sym: not a comparison: " + op.String())
}

// AndE returns l && r simplified.
func AndE(l, r Expr) Expr {
	if lb, ok := l.(*BoolConst); ok {
		if !lb.V {
			return False
		}
		return r
	}
	if rb, ok := r.(*BoolConst); ok {
		if !rb.V {
			return False
		}
		return l
	}
	return newBin(OpAnd, l, r)
}

// OrE returns l || r simplified.
func OrE(l, r Expr) Expr {
	if lb, ok := l.(*BoolConst); ok {
		if lb.V {
			return True
		}
		return r
	}
	if rb, ok := r.(*BoolConst); ok {
		if rb.V {
			return True
		}
		return l
	}
	return newBin(OpOr, l, r)
}

// NotE returns !x simplified: constants fold, double negation cancels, and
// negation is pushed through comparisons (¬(a < b) → a >= b) and through
// &&/|| by De Morgan, producing negation-normal form incrementally. This is
// what keeps path conditions readable as lists of atomic comparisons.
func NotE(x Expr) Expr {
	switch x := x.(type) {
	case *BoolConst:
		return Bool(!x.V)
	case *Not:
		return x.X
	case *Bin:
		switch {
		case x.Op.IsComparison():
			return Cmp(x.Op.Negate(), x.L, x.R)
		case x.Op == OpAnd:
			return OrE(NotE(x.L), NotE(x.R))
		case x.Op == OpOr:
			return AndE(NotE(x.L), NotE(x.R))
		}
	}
	return newNot(x)
}

// Subst returns e with every variable replaced per env; variables absent
// from env are left symbolic.
func Subst(e Expr, env map[string]Expr) Expr {
	switch e := e.(type) {
	case *IntConst, *BoolConst:
		return e
	case *Var:
		if r, ok := env[e.Name]; ok {
			return r
		}
		return e
	case *Neg:
		return NegE(Subst(e.X, env))
	case *Not:
		return NotE(Subst(e.X, env))
	case *Ite:
		return ITE(Subst(e.Cond, env), Subst(e.Then, env), Subst(e.Else, env))
	case *Bin:
		l := Subst(e.L, env)
		r := Subst(e.R, env)
		switch {
		case e.Op == OpAdd:
			return Add(l, r)
		case e.Op == OpSub:
			return Sub(l, r)
		case e.Op == OpMul:
			return Mul(l, r)
		case e.Op == OpDiv:
			return Div(l, r)
		case e.Op == OpMod:
			return Mod(l, r)
		case e.Op.IsComparison():
			return Cmp(e.Op, l, r)
		case e.Op == OpAnd:
			return AndE(l, r)
		case e.Op == OpOr:
			return OrE(l, r)
		}
	}
	panic("sym.Subst: unknown expression")
}
