package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"dise"
	"dise/internal/artifacts"
)

// post sends one JSON request and decodes the reply into out (when out is
// non-nil), returning the status code and, for error replies, the wire code.
func post(t *testing.T, client *http.Client, url string, body, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var ep ErrorPayload
		if err := json.NewDecoder(resp.Body).Decode(&ep); err != nil {
			t.Fatalf("POST %s: status %d with undecodable error body: %v", url, resp.StatusCode, err)
		}
		return resp.StatusCode, ep.Error.Code
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding reply: %v", url, err)
		}
	}
	return resp.StatusCode, ""
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding reply: %v", url, err)
		}
	}
	return resp.StatusCode
}

// newTestServer builds a Service plus httptest server and registers cleanup.
func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

// wbsChain returns the WBS evolution chain's sources (base first).
func wbsChain() (proc string, srcs []string) {
	art, _ := artifacts.ByName("WBS")
	srcs = []string{art.Base}
	for _, v := range art.Versions {
		srcs = append(srcs, art.SourceFor(v))
	}
	return art.Proc, srcs
}

// TestServiceSessionWorkflow drives the full session lifecycle over HTTP:
// create (seeded), advance twice, check memo warmth, delete, advance-after-
// delete fails with 404.
func TestServiceSessionWorkflow(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	proc, srcs := wbsChain()

	var created CreateSessionResponse
	status, _ := post(t, srv.Client(), srv.URL+"/v1/sessions",
		CreateSessionRequest{Tenant: "t1", InitialSrc: srcs[0], Proc: proc}, &created)
	if status != http.StatusCreated || created.SessionID == "" {
		t.Fatalf("create: status %d, id %q", status, created.SessionID)
	}

	var res ResultPayload
	status, _ = post(t, srv.Client(), srv.URL+"/v1/sessions/"+created.SessionID+"/advance",
		AdvanceRequest{Tenant: "t1", NextSrc: srcs[1]}, &res)
	if status != http.StatusOK {
		t.Fatalf("advance 1: status %d", status)
	}
	if m := res.Stats.Memo; !m.Enabled || m.Step != 1 || m.NodesKept == 0 {
		t.Fatalf("advance 1: session not seeded from the initial version: %+v", m)
	}
	status, _ = post(t, srv.Client(), srv.URL+"/v1/sessions/"+created.SessionID+"/advance",
		AdvanceRequest{Tenant: "t1", NextSrc: srcs[2]}, &res)
	if status != http.StatusOK || res.Stats.Memo.Step != 2 {
		t.Fatalf("advance 2: status %d, memo %+v", status, res.Stats.Memo)
	}
	// From the second step on the chain is warm (the v1 mutant taints every
	// WBS path, so step 1 alone may replay nothing).
	if m := res.Stats.Memo; m.MemoHits == 0 {
		t.Fatalf("advance 2: warm chain answered no branch decisions from the trie: %+v", m)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+created.SessionID+"?tenant=t1", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	status, code := post(t, srv.Client(), srv.URL+"/v1/sessions/"+created.SessionID+"/advance",
		AdvanceRequest{Tenant: "t1", NextSrc: srcs[3]}, nil)
	if status != http.StatusNotFound || code != "session_not_found" {
		t.Fatalf("advance after delete: status %d code %q", status, code)
	}
}

// TestServiceErrorMapping pins the HTTP status and wire code for every error
// kind a handler can produce — the satellite contract that handlers route
// kinds through errors.Is sentinels, not type switches.
func TestServiceErrorMapping(t *testing.T) {
	// Unit level: every classified error maps to its documented pair.
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{&dise.Error{Kind: dise.ParseError}, 422, "parse_error"},
		{&dise.Error{Kind: dise.TypeError}, 422, "type_error"},
		{&dise.Error{Kind: dise.UnknownProc}, 422, "unknown_proc"},
		{&dise.Error{Kind: dise.BudgetExhausted}, 422, "budget_exhausted"},
		{&dise.Error{Kind: dise.Cancelled, Err: context.DeadlineExceeded}, 504, "cancelled"},
		{&dise.Error{Kind: dise.InvalidConfig}, 500, "invalid_config"},
		{fmt.Errorf("wrapped: %w", &dise.Error{Kind: dise.ParseError, Stage: "base version"}), 422, "parse_error"},
		{context.DeadlineExceeded, 504, "cancelled"},
		{errQueueFull, 429, "queue_full"},
		{errSessionCap, 429, "session_cap"},
		{errSessionNotFound, 404, "session_not_found"},
		{errBadRequest, 400, "bad_request"},
		{errors.New("mystery"), 500, "internal"},
	}
	for _, c := range cases {
		status, code := statusOf(c.err)
		if status != c.status || code != c.code {
			t.Errorf("statusOf(%v) = %d %q, want %d %q", c.err, status, code, c.status, c.code)
		}
	}

	// End to end: real handler failures produce the mapped envelopes.
	_, srv := newTestServer(t, Config{})
	proc, srcs := wbsChain()
	oaeArt, _ := artifacts.ByName("OAE")
	oaeBase, oaeMod, oaeProc := oaeArt.Base, oaeArt.SourceFor(oaeArt.Versions[0]), oaeArt.Proc
	httpCases := []struct {
		name   string
		body   AnalyzeRequest
		status int
		code   string
	}{
		{"parse", AnalyzeRequest{Tenant: "t", BaseSrc: "proc p(", ModSrc: "proc p(", Proc: "p"}, 422, "parse_error"},
		{"unknown proc", AnalyzeRequest{Tenant: "t", BaseSrc: srcs[0], ModSrc: srcs[1], Proc: "nope"}, 422, "unknown_proc"},
		{"missing field", AnalyzeRequest{Tenant: "t", BaseSrc: srcs[0], Proc: proc}, 400, "bad_request"},
		// The deadline case uses OAE — hundreds of milliseconds of directed
		// search — so a 1ms deadline reliably expires mid-analysis.
		{"deadline", AnalyzeRequest{Tenant: "t", BaseSrc: oaeBase, ModSrc: oaeMod, Proc: oaeProc, DeadlineMillis: 1}, 504, "cancelled"},
	}
	for _, c := range httpCases {
		status, code := post(t, srv.Client(), srv.URL+"/v1/analyze", c.body, nil)
		if status != c.status || code != c.code {
			t.Errorf("%s: status %d code %q, want %d %q", c.name, status, code, c.status, c.code)
		}
	}
}

// TestServiceEvictionOverHTTP pins the acceptance-criteria behavior: with a
// small store cap, creations beyond the cap LRU-evict, per-tenant overflow
// is 429, and an evicted session's ID stops resolving (404).
func TestServiceEvictionOverHTTP(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxSessions: 2, MaxSessionsPerTenant: 2})
	proc, srcs := wbsChain()

	create := func(tenant string) (string, int, string) {
		var out CreateSessionResponse
		status, code := post(t, srv.Client(), srv.URL+"/v1/sessions",
			CreateSessionRequest{Tenant: tenant, InitialSrc: srcs[0], Proc: proc, SkipSeed: true}, &out)
		return out.SessionID, status, code
	}
	id1, status, _ := create("a")
	if status != http.StatusCreated {
		t.Fatal(status)
	}
	if _, status, code := create("a"); status != http.StatusCreated {
		t.Fatal(status, code)
	}
	// Tenant a is at its cap.
	if _, status, code := create("a"); status != 429 || code != "session_cap" {
		t.Fatalf("over-cap create: status %d code %q", status, code)
	}
	// Tenant b's creation evicts the store-wide LRU victim, id1.
	if _, status, _ := create("b"); status != http.StatusCreated {
		t.Fatal(status)
	}
	status, code := post(t, srv.Client(), srv.URL+"/v1/sessions/"+id1+"/advance",
		AdvanceRequest{Tenant: "a", NextSrc: srcs[1]}, nil)
	if status != http.StatusNotFound || code != "session_not_found" {
		t.Fatalf("advance on LRU-evicted session: status %d code %q", status, code)
	}

	var m Metrics
	getJSON(t, srv.Client(), srv.URL+"/metrics", &m)
	if m.Sessions.EvictedLRU != 1 || m.Sessions.RejectedCap != 1 || m.Sessions.Occupancy != 2 {
		t.Fatalf("store metrics: %+v", m.Sessions)
	}
}

// TestServiceMetricsAndHealth exercises /healthz and /metrics after real
// traffic: latency histograms fill, the cumulative memo block shows the
// session's replay hits, and the shared caches report cross-request reuse.
func TestServiceMetricsAndHealth(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	proc, srcs := wbsChain()

	var created CreateSessionResponse
	post(t, srv.Client(), srv.URL+"/v1/sessions",
		CreateSessionRequest{Tenant: "t1", InitialSrc: srcs[0], Proc: proc}, &created)
	for i := 1; i <= 3; i++ {
		if status, code := post(t, srv.Client(), srv.URL+"/v1/sessions/"+created.SessionID+"/advance",
			AdvanceRequest{Tenant: "t1", NextSrc: srcs[i]}, nil); status != 200 {
			t.Fatalf("advance %d: %d %s", i, status, code)
		}
	}
	// One failing request lands in the error counters.
	post(t, srv.Client(), srv.URL+"/v1/analyze",
		AnalyzeRequest{Tenant: "t1", BaseSrc: "proc p(", ModSrc: "proc p(", Proc: "p"}, nil)

	var h HealthResponse
	if status := getJSON(t, srv.Client(), srv.URL+"/healthz", &h); status != 200 {
		t.Fatalf("healthz status %d", status)
	}
	if h.Status != "ok" || h.Sessions != 1 {
		t.Fatalf("healthz: %+v", h)
	}

	var m Metrics
	if status := getJSON(t, srv.Client(), srv.URL+"/metrics", &m); status != 200 {
		t.Fatalf("metrics status %d", status)
	}
	if m.Latency.Advance.Count != 3 || m.Latency.Advance.P99 < m.Latency.Advance.P50 {
		t.Fatalf("advance latency summary: %+v", m.Latency.Advance)
	}
	if m.Latency.Seed.Count != 1 {
		t.Fatalf("seed latency summary: %+v", m.Latency.Seed)
	}
	if !m.MemoStats.Enabled || m.MemoStats.Step != 3 || m.MemoStats.MemoHits == 0 {
		t.Fatalf("cumulative memo stats: %+v", m.MemoStats)
	}
	if m.SolverStats.Checks == 0 {
		t.Fatalf("cumulative solver stats empty: %+v", m.SolverStats)
	}
	if m.Requests["advance"] != 3 || m.Requests["create"] != 1 || m.Requests["analyze"] != 1 {
		t.Fatalf("request counters: %+v", m.Requests)
	}
	if m.Errors["parse_error"] != 1 {
		t.Fatalf("error counters: %+v", m.Errors)
	}
	// 1 create + 3 advances + 1 (failed) analyze all passed admission.
	if m.Admission.Admitted != 5 || m.Admission.InFlight != 0 {
		t.Fatalf("admission stats: %+v", m.Admission)
	}
	if m.Memory.HeapInuseBytes == 0 || m.Memory.SessionsPerGB <= 0 {
		t.Fatalf("memory stats: %+v", m.Memory)
	}
}

// TestServiceSharedCachesAcrossTenants pins the cross-tenant warming claim:
// after tenant A analyzes a version pair, tenant B's identical request hits
// the shared parse cache and solver prefix cache.
func TestServiceSharedCachesAcrossTenants(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	proc, srcs := wbsChain()

	req := AnalyzeRequest{Tenant: "alice", BaseSrc: srcs[0], ModSrc: srcs[1], Proc: proc}
	if status, code := post(t, srv.Client(), srv.URL+"/v1/analyze", req, nil); status != 200 {
		t.Fatalf("tenant alice: %d %s", status, code)
	}
	parse0 := svc.Analyzer().CacheStats()
	prefix0 := svc.Analyzer().SolverCacheStats()

	req.Tenant = "bob"
	if status, code := post(t, srv.Client(), srv.URL+"/v1/analyze", req, nil); status != 200 {
		t.Fatalf("tenant bob: %d %s", status, code)
	}
	parse1 := svc.Analyzer().CacheStats()
	prefix1 := svc.Analyzer().SolverCacheStats()

	if parse1.Hits <= parse0.Hits {
		t.Errorf("parse cache not shared across tenants: %+v -> %+v", parse0, parse1)
	}
	if parse1.Misses != parse0.Misses {
		t.Errorf("tenant bob re-parsed: %+v -> %+v", parse0, parse1)
	}
	if prefix1.Hits <= prefix0.Hits {
		t.Errorf("prefix cache not shared across tenants: %+v -> %+v", prefix0, prefix1)
	}
}

// TestServiceNoGoroutineLeaks pins the acceptance criterion that serving
// traffic — including evictions and failed requests — leaks no goroutines
// once the service and server shut down.
func TestServiceNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := New(Config{MaxSessions: 2, SweepInterval: time.Millisecond})
	srv := httptest.NewServer(svc.Handler())
	proc, srcs := wbsChain()
	for i := 0; i < 4; i++ {
		var created CreateSessionResponse
		post(t, srv.Client(), srv.URL+"/v1/sessions",
			CreateSessionRequest{Tenant: fmt.Sprintf("t%d", i), InitialSrc: srcs[0], Proc: proc}, &created)
		post(t, srv.Client(), srv.URL+"/v1/sessions/"+created.SessionID+"/advance",
			AdvanceRequest{Tenant: fmt.Sprintf("t%d", i), NextSrc: srcs[1]}, nil)
	}
	post(t, srv.Client(), srv.URL+"/v1/analyze",
		AnalyzeRequest{Tenant: "t", BaseSrc: "proc p(", ModSrc: "proc p(", Proc: "p"}, nil)
	srv.CloseClientConnections()
	srv.Close()
	svc.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceAnalyzeMergeBound pins the state-merging surface of the one-shot
// endpoint: merge_bound flows through to the engine (the reply's merge_stats
// block is populated), invalid bounds are the client's fault (400, not the
// InvalidConfig 500), the server-side default applies only when the request
// names no bound, and the cumulative /metrics dashboard aggregates the
// merge counters.
func TestServiceAnalyzeMergeBound(t *testing.T) {
	proc, srcs := wbsChain()
	req := AnalyzeRequest{Tenant: "t1", BaseSrc: srcs[0], ModSrc: srcs[1], Proc: proc}

	_, srv := newTestServer(t, Config{})
	var res ResultPayload
	if status, _ := post(t, srv.Client(), srv.URL+"/v1/analyze", req, &res); status != http.StatusOK {
		t.Fatalf("plain analyze: status %d", status)
	}
	if res.Stats.Merge.Enabled {
		t.Fatalf("plain analyze reports merging: %+v", res.Stats.Merge)
	}

	merged := req
	merged.MergeBound = dise.MergeUnbounded
	if status, _ := post(t, srv.Client(), srv.URL+"/v1/analyze", merged, &res); status != http.StatusOK {
		t.Fatalf("merged analyze: status %d", status)
	}
	if !res.Stats.Merge.Enabled || res.Stats.Merge.Bound != dise.MergeUnbounded {
		t.Fatalf("merge_stats not populated: %+v", res.Stats.Merge)
	}

	bad := req
	bad.MergeBound = 1
	if status, code := post(t, srv.Client(), srv.URL+"/v1/analyze", bad, nil); status != http.StatusBadRequest || code != "bad_request" {
		t.Fatalf("merge_bound 1: status %d code %q, want 400 bad_request", status, code)
	}

	var metrics Metrics
	getJSON(t, srv.Client(), srv.URL+"/metrics", &metrics)
	if !metrics.MergeStats.Enabled {
		t.Fatalf("cumulative merge_stats not aggregated: %+v", metrics.MergeStats)
	}

	// A server default applies when the request names no bound; sessions on
	// the same server still work (the default never reaches them).
	_, srvDef := newTestServer(t, Config{DefaultMergeBound: 2})
	if status, _ := post(t, srvDef.Client(), srvDef.URL+"/v1/analyze", req, &res); status != http.StatusOK {
		t.Fatalf("default-merge analyze: status %d", status)
	}
	if !res.Stats.Merge.Enabled || res.Stats.Merge.Bound != 2 {
		t.Fatalf("server default not applied: %+v", res.Stats.Merge)
	}
	var created CreateSessionResponse
	if status, _ := post(t, srvDef.Client(), srvDef.URL+"/v1/sessions",
		CreateSessionRequest{Tenant: "t1", InitialSrc: srcs[0], Proc: proc}, &created); status != http.StatusCreated {
		t.Fatalf("session create on default-merge server: status %d", status)
	}
	// Fresh payload: a zero merge_stats block is omitted on the wire, so
	// decoding into the reused struct would keep the previous reply's values.
	var advRes ResultPayload
	if status, _ := post(t, srvDef.Client(), srvDef.URL+"/v1/sessions/"+created.SessionID+"/advance",
		AdvanceRequest{Tenant: "t1", NextSrc: srcs[1]}, &advRes); status != http.StatusOK {
		t.Fatalf("session advance on default-merge server: status %d", status)
	}
	if advRes.Stats.Merge.Enabled {
		t.Fatalf("session step reports merging: %+v", advRes.Stats.Merge)
	}
}
