package service

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"dise"
)

// Store/admission failures are plain sentinel errors; http.go maps them to
// status codes with errors.Is, the same contract the dise kind sentinels
// follow.
var (
	// errSessionNotFound covers both a never-created ID and an evicted or
	// expired one — deliberately indistinguishable, so an evicted session
	// looks exactly like an unknown one (and one tenant cannot probe for
	// another tenant's session IDs).
	errSessionNotFound = errors.New("session not found")
	// errSessionCap reports the per-tenant session cap.
	errSessionCap = errors.New("tenant session cap reached")
)

// sessionEntry is one stored version-chain session.
type sessionEntry struct {
	id      string
	tenant  string
	proc    string
	sess    *dise.Session
	created time.Time
	// lastUsed drives both TTL expiry and LRU ordering; it moves on every
	// successful lookup.
	lastUsed time.Time
	elem     *list.Element
	// trieNodes/trieBytes cache the session's memo-trie usage, refreshed by
	// the handlers after each seed/advance (dise.Session.MemoUsage). Cached
	// here — not read from the session under st.mu — so the store's byte
	// accounting never nests the session mutex inside the store mutex.
	trieNodes int
	trieBytes int64
}

// StoreStats is the session store's observability block.
type StoreStats struct {
	// Occupancy is the number of live sessions; Tenants the number of
	// tenants holding at least one.
	Occupancy int `json:"occupancy"`
	Tenants   int `json:"tenants"`
	// Capacity echoes the configured bounds.
	Capacity          int `json:"capacity"`
	PerTenantCapacity int `json:"per_tenant_capacity"`
	// Created counts sessions ever admitted; Deleted explicit removals.
	Created int64 `json:"created"`
	Deleted int64 `json:"deleted"`
	// EvictedTTL counts sessions expired idle; EvictedLRU sessions pushed
	// out by newer ones at capacity; RejectedCap creations refused by the
	// per-tenant cap; EvictedBytes sessions pushed out by trie-byte
	// pressure (MaxTrieBytes).
	EvictedTTL   int64 `json:"evicted_ttl"`
	EvictedLRU   int64 `json:"evicted_lru"`
	RejectedCap  int64 `json:"rejected_cap"`
	EvictedBytes int64 `json:"evicted_bytes"`
	// TrieNodes/TrieBytes total the resident sessions' memo tries (cached
	// per entry, refreshed after each run); MaxTrieBytes echoes the global
	// trie-byte ceiling (0 = unbounded).
	TrieNodes    int64 `json:"trie_nodes"`
	TrieBytes    int64 `json:"trie_bytes"`
	MaxTrieBytes int64 `json:"max_trie_bytes"`
}

// sessionStore is the tenant-keyed session table: a map plus an LRU list
// (front = most recently used), a TTL on idle time, and a per-tenant count.
// The mutex guards only map/list bookkeeping — never an analysis; seeding a
// session (a full symbolic execution) runs outside the lock between reserve
// and commit.
type sessionStore struct {
	mu        sync.Mutex
	capacity  int
	perTenant int
	ttl       time.Duration
	now       func() time.Time
	// maxTrieBytes is the global ceiling on the resident sessions' summed
	// memo-trie bytes; when an update pushes the total past it, the store
	// evicts least-recently-used sessions (byte pressure, before rejecting
	// anything) until the total fits. 0 = unbounded.
	maxTrieBytes int64

	entries  map[string]*sessionEntry
	lru      *list.List // of *sessionEntry
	byTenant map[string]int

	trieNodesTotal, trieBytesTotal int64

	created, deleted         int64
	evictedTTL, evictedLRU   int64
	rejectedCap              int64
	evictedBytes             int64
	janitorStop, janitorDone chan struct{}
}

func newSessionStore(capacity, perTenant int, ttl time.Duration, maxTrieBytes int64, now func() time.Time) *sessionStore {
	return &sessionStore{
		capacity:     capacity,
		perTenant:    perTenant,
		ttl:          ttl,
		maxTrieBytes: maxTrieBytes,
		now:          now,
		entries:      make(map[string]*sessionEntry),
		lru:          list.New(),
		byTenant:     make(map[string]int),
	}
}

// startJanitor collects expired sessions every interval, so idle sessions
// are reclaimed even when no request ever touches the store again.
func (st *sessionStore) startJanitor(interval time.Duration) {
	st.janitorStop = make(chan struct{})
	st.janitorDone = make(chan struct{})
	go func() {
		defer close(st.janitorDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				st.mu.Lock()
				st.sweepLocked()
				st.mu.Unlock()
			case <-st.janitorStop:
				return
			}
		}
	}()
}

func (st *sessionStore) close() {
	if st.janitorStop != nil {
		close(st.janitorStop)
		<-st.janitorDone
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.entries = make(map[string]*sessionEntry)
	st.lru.Init()
	st.byTenant = make(map[string]int)
	st.trieNodesTotal = 0
	st.trieBytesTotal = 0
}

// sweepLocked drops every session idle past the TTL. The LRU list is in
// recency order, so expired entries cluster at the back: walk from the back
// and stop at the first live one.
func (st *sessionStore) sweepLocked() {
	cutoff := st.now().Add(-st.ttl)
	for {
		back := st.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*sessionEntry)
		if !e.lastUsed.Before(cutoff) {
			return
		}
		st.removeLocked(e)
		st.evictedTTL++
	}
}

func (st *sessionStore) removeLocked(e *sessionEntry) {
	delete(st.entries, e.id)
	st.lru.Remove(e.elem)
	st.trieNodesTotal -= int64(e.trieNodes)
	st.trieBytesTotal -= e.trieBytes
	if n := st.byTenant[e.tenant] - 1; n > 0 {
		st.byTenant[e.tenant] = n
	} else {
		delete(st.byTenant, e.tenant)
	}
}

// enforceTrieBytesLocked relieves trie-byte pressure: while the resident
// tries sum past the ceiling, the least-recently-used session is evicted —
// always keeping the most recent one, so the session that just ran (and was
// just touched to the front) survives even if it alone exceeds the ceiling.
func (st *sessionStore) enforceTrieBytesLocked() {
	//diselint:ignore interruptloop bounded: each iteration evicts one LRU entry
	for st.maxTrieBytes > 0 && st.trieBytesTotal > st.maxTrieBytes && st.lru.Len() > 1 {
		oldest := st.lru.Back().Value.(*sessionEntry)
		st.removeLocked(oldest)
		st.evictedBytes++
	}
}

// updateUsage refreshes one session's cached trie usage and re-enforces the
// global byte ceiling. The handlers call it after each seed/advance with
// usage they read outside the store lock; a stale call for an entry evicted
// in the meantime is a no-op.
func (st *sessionStore) updateUsage(e *sessionEntry, nodes int, bytes int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.entries[e.id] != e {
		return
	}
	st.trieNodesTotal += int64(nodes) - int64(e.trieNodes)
	st.trieBytesTotal += bytes - e.trieBytes
	e.trieNodes = nodes
	e.trieBytes = bytes
	st.enforceTrieBytesLocked()
}

// reserve claims a per-tenant slot before the expensive session seed runs.
// The caller must follow with exactly one commit (success) or unreserve
// (failure). Reserving up front keeps a burst of concurrent creations from
// overshooting the tenant cap while their seeds are still running.
func (st *sessionStore) reserve(tenant string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked()
	if st.byTenant[tenant] >= st.perTenant {
		st.rejectedCap++
		return errSessionCap
	}
	st.byTenant[tenant]++
	return nil
}

func (st *sessionStore) unreserve(tenant string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n := st.byTenant[tenant] - 1; n > 0 {
		st.byTenant[tenant] = n
	} else {
		delete(st.byTenant, tenant)
	}
}

// commit stores a seeded session under a fresh ID, evicting the
// least-recently-used session if the store is at capacity. It consumes the
// caller's reservation.
func (st *sessionStore) commit(tenant, proc string, sess *dise.Session) string {
	id := newSessionID()
	// Read the seeded trie's usage before taking the store lock (the
	// session has its own mutex; never nest it inside st.mu). Unit tests
	// commit placeholder entries with no session.
	var nodes int
	var bytes int64
	if sess != nil {
		nodes, bytes = sess.MemoUsage()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.lru.Len() >= st.capacity {
		oldest := st.lru.Back().Value.(*sessionEntry)
		st.removeLocked(oldest)
		st.evictedLRU++
	}
	e := &sessionEntry{
		id:        id,
		tenant:    tenant,
		proc:      proc,
		sess:      sess,
		created:   st.now(),
		lastUsed:  st.now(),
		trieNodes: nodes,
		trieBytes: bytes,
	}
	e.elem = st.lru.PushFront(e)
	st.entries[id] = e
	st.trieNodesTotal += int64(nodes)
	st.trieBytesTotal += bytes
	st.created++
	st.enforceTrieBytesLocked()
	return id
}

// get looks a session up by ID for the given tenant, enforcing TTL lazily
// and touching the LRU order. A tenant mismatch reports not-found, never
// "exists but not yours".
func (st *sessionStore) get(id, tenant string) (*sessionEntry, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[id]
	if !ok || e.tenant != tenant {
		return nil, errSessionNotFound
	}
	if e.lastUsed.Before(st.now().Add(-st.ttl)) {
		st.removeLocked(e)
		st.evictedTTL++
		return nil, errSessionNotFound
	}
	e.lastUsed = st.now()
	st.lru.MoveToFront(e.elem)
	return e, nil
}

// remove deletes a session explicitly (DELETE /v1/sessions/{id}).
func (st *sessionStore) remove(id, tenant string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[id]
	if !ok || e.tenant != tenant {
		return errSessionNotFound
	}
	st.removeLocked(e)
	st.deleted++
	return nil
}

func (st *sessionStore) stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StoreStats{
		Occupancy:         st.lru.Len(),
		Tenants:           len(st.byTenant),
		Capacity:          st.capacity,
		PerTenantCapacity: st.perTenant,
		Created:           st.created,
		Deleted:           st.deleted,
		EvictedTTL:        st.evictedTTL,
		EvictedLRU:        st.evictedLRU,
		RejectedCap:       st.rejectedCap,
		EvictedBytes:      st.evictedBytes,
		TrieNodes:         st.trieNodesTotal,
		TrieBytes:         st.trieBytesTotal,
		MaxTrieBytes:      st.maxTrieBytes,
	}
}

// newSessionID returns a 128-bit random hex ID.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
