package service

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"dise"
)

// Store/admission failures are plain sentinel errors; http.go maps them to
// status codes with errors.Is, the same contract the dise kind sentinels
// follow.
var (
	// errSessionNotFound covers both a never-created ID and an evicted or
	// expired one — deliberately indistinguishable, so an evicted session
	// looks exactly like an unknown one (and one tenant cannot probe for
	// another tenant's session IDs).
	errSessionNotFound = errors.New("session not found")
	// errSessionCap reports the per-tenant session cap.
	errSessionCap = errors.New("tenant session cap reached")
)

// sessionEntry is one stored version-chain session.
type sessionEntry struct {
	id      string
	tenant  string
	proc    string
	sess    *dise.Session
	created time.Time
	// lastUsed drives both TTL expiry and LRU ordering; it moves on every
	// successful lookup.
	lastUsed time.Time
	elem     *list.Element
}

// StoreStats is the session store's observability block.
type StoreStats struct {
	// Occupancy is the number of live sessions; Tenants the number of
	// tenants holding at least one.
	Occupancy int `json:"occupancy"`
	Tenants   int `json:"tenants"`
	// Capacity echoes the configured bounds.
	Capacity          int `json:"capacity"`
	PerTenantCapacity int `json:"per_tenant_capacity"`
	// Created counts sessions ever admitted; Deleted explicit removals.
	Created int64 `json:"created"`
	Deleted int64 `json:"deleted"`
	// EvictedTTL counts sessions expired idle; EvictedLRU sessions pushed
	// out by newer ones at capacity; RejectedCap creations refused by the
	// per-tenant cap.
	EvictedTTL  int64 `json:"evicted_ttl"`
	EvictedLRU  int64 `json:"evicted_lru"`
	RejectedCap int64 `json:"rejected_cap"`
}

// sessionStore is the tenant-keyed session table: a map plus an LRU list
// (front = most recently used), a TTL on idle time, and a per-tenant count.
// The mutex guards only map/list bookkeeping — never an analysis; seeding a
// session (a full symbolic execution) runs outside the lock between reserve
// and commit.
type sessionStore struct {
	mu        sync.Mutex
	capacity  int
	perTenant int
	ttl       time.Duration
	now       func() time.Time

	entries  map[string]*sessionEntry
	lru      *list.List // of *sessionEntry
	byTenant map[string]int

	created, deleted         int64
	evictedTTL, evictedLRU   int64
	rejectedCap              int64
	janitorStop, janitorDone chan struct{}
}

func newSessionStore(capacity, perTenant int, ttl time.Duration, now func() time.Time) *sessionStore {
	return &sessionStore{
		capacity:  capacity,
		perTenant: perTenant,
		ttl:       ttl,
		now:       now,
		entries:   make(map[string]*sessionEntry),
		lru:       list.New(),
		byTenant:  make(map[string]int),
	}
}

// startJanitor collects expired sessions every interval, so idle sessions
// are reclaimed even when no request ever touches the store again.
func (st *sessionStore) startJanitor(interval time.Duration) {
	st.janitorStop = make(chan struct{})
	st.janitorDone = make(chan struct{})
	go func() {
		defer close(st.janitorDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				st.mu.Lock()
				st.sweepLocked()
				st.mu.Unlock()
			case <-st.janitorStop:
				return
			}
		}
	}()
}

func (st *sessionStore) close() {
	if st.janitorStop != nil {
		close(st.janitorStop)
		<-st.janitorDone
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.entries = make(map[string]*sessionEntry)
	st.lru.Init()
	st.byTenant = make(map[string]int)
}

// sweepLocked drops every session idle past the TTL. The LRU list is in
// recency order, so expired entries cluster at the back: walk from the back
// and stop at the first live one.
func (st *sessionStore) sweepLocked() {
	cutoff := st.now().Add(-st.ttl)
	for {
		back := st.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*sessionEntry)
		if !e.lastUsed.Before(cutoff) {
			return
		}
		st.removeLocked(e)
		st.evictedTTL++
	}
}

func (st *sessionStore) removeLocked(e *sessionEntry) {
	delete(st.entries, e.id)
	st.lru.Remove(e.elem)
	if n := st.byTenant[e.tenant] - 1; n > 0 {
		st.byTenant[e.tenant] = n
	} else {
		delete(st.byTenant, e.tenant)
	}
}

// reserve claims a per-tenant slot before the expensive session seed runs.
// The caller must follow with exactly one commit (success) or unreserve
// (failure). Reserving up front keeps a burst of concurrent creations from
// overshooting the tenant cap while their seeds are still running.
func (st *sessionStore) reserve(tenant string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked()
	if st.byTenant[tenant] >= st.perTenant {
		st.rejectedCap++
		return errSessionCap
	}
	st.byTenant[tenant]++
	return nil
}

func (st *sessionStore) unreserve(tenant string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n := st.byTenant[tenant] - 1; n > 0 {
		st.byTenant[tenant] = n
	} else {
		delete(st.byTenant, tenant)
	}
}

// commit stores a seeded session under a fresh ID, evicting the
// least-recently-used session if the store is at capacity. It consumes the
// caller's reservation.
func (st *sessionStore) commit(tenant, proc string, sess *dise.Session) string {
	id := newSessionID()
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.lru.Len() >= st.capacity {
		oldest := st.lru.Back().Value.(*sessionEntry)
		st.removeLocked(oldest)
		st.evictedLRU++
	}
	e := &sessionEntry{
		id:       id,
		tenant:   tenant,
		proc:     proc,
		sess:     sess,
		created:  st.now(),
		lastUsed: st.now(),
	}
	e.elem = st.lru.PushFront(e)
	st.entries[id] = e
	st.created++
	return id
}

// get looks a session up by ID for the given tenant, enforcing TTL lazily
// and touching the LRU order. A tenant mismatch reports not-found, never
// "exists but not yours".
func (st *sessionStore) get(id, tenant string) (*sessionEntry, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[id]
	if !ok || e.tenant != tenant {
		return nil, errSessionNotFound
	}
	if e.lastUsed.Before(st.now().Add(-st.ttl)) {
		st.removeLocked(e)
		st.evictedTTL++
		return nil, errSessionNotFound
	}
	e.lastUsed = st.now()
	st.lru.MoveToFront(e.elem)
	return e, nil
}

// remove deletes a session explicitly (DELETE /v1/sessions/{id}).
func (st *sessionStore) remove(id, tenant string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[id]
	if !ok || e.tenant != tenant {
		return errSessionNotFound
	}
	st.removeLocked(e)
	st.deleted++
	return nil
}

func (st *sessionStore) stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StoreStats{
		Occupancy:         st.lru.Len(),
		Tenants:           len(st.byTenant),
		Capacity:          st.capacity,
		PerTenantCapacity: st.perTenant,
		Created:           st.created,
		Deleted:           st.deleted,
		EvictedTTL:        st.evictedTTL,
		EvictedLRU:        st.evictedLRU,
		RejectedCap:       st.rejectedCap,
	}
}

// newSessionID returns a 128-bit random hex ID.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
