package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"dise"
)

// Wire types of the HTTP/JSON API. Analysis requests carry the tenant in
// the body (every tenant-scoped endpoint), an optional per-request
// deadline_ms (clamped to the server's MaxDeadline), and the same fields
// the in-process API takes.

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	Tenant          string `json:"tenant"`
	BaseSrc         string `json:"base_src"`
	ModSrc          string `json:"mod_src"`
	Proc            string `json:"proc"`
	Interprocedural bool   `json:"interprocedural,omitempty"`
	// MergeBound enables bounded state merging for this request alone
	// (0 = off, -1 = unbounded, >= 2 = fuse at most N siblings per join).
	// One-shot analyses only: session endpoints reject merging, whose
	// factored path conditions the memo trie cannot key.
	MergeBound     int   `json:"merge_bound,omitempty"`
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// CreateSessionRequest is the body of POST /v1/sessions. Unless SkipSeed is
// set, creation runs the seeding full symbolic execution of the initial
// version and is admission-controlled like any analysis.
type CreateSessionRequest struct {
	Tenant          string `json:"tenant"`
	InitialSrc      string `json:"initial_src"`
	Proc            string `json:"proc"`
	Interprocedural bool   `json:"interprocedural,omitempty"`
	SkipSeed        bool   `json:"skip_seed,omitempty"`
	DeadlineMillis  int64  `json:"deadline_ms,omitempty"`
}

// CreateSessionResponse is the reply of POST /v1/sessions.
type CreateSessionResponse struct {
	SessionID string `json:"session_id"`
}

// AdvanceRequest is the body of POST /v1/sessions/{id}/advance.
type AdvanceRequest struct {
	Tenant         string `json:"tenant"`
	NextSrc        string `json:"next_src"`
	DeadlineMillis int64  `json:"deadline_ms,omitempty"`
}

// ResultPayload is the JSON form of a dise.Result, shared by /v1/analyze
// and /v1/sessions/{id}/advance. Its field set and tags are what the
// warm-path equivalence gate compares byte for byte against an in-process
// Session.Advance.
type ResultPayload struct {
	Paths                    []dise.PathInfo `json:"paths"`
	Stats                    dise.Stats      `json:"stats"`
	ChangedNodes             int             `json:"changed_nodes"`
	AffectedConditionalLines []int           `json:"affected_conditional_lines"`
	AffectedWriteLines       []int           `json:"affected_write_lines"`
}

// PayloadOf projects a Result onto the wire form — exported so clients (the
// load generator, the equivalence test) can build the reference payload
// from an in-process Result.
func PayloadOf(r *dise.Result) ResultPayload {
	return ResultPayload{
		Paths:                    r.Paths,
		Stats:                    r.Stats,
		ChangedNodes:             r.ChangedNodes,
		AffectedConditionalLines: r.AffectedConditionalLines,
		AffectedWriteLines:       r.AffectedWriteLines,
	}
}

// ErrorPayload is the JSON error envelope: a stable machine-readable code
// (dise.ErrorKind.Code or a service-level code) plus the rendered message.
type ErrorPayload struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the body of an ErrorPayload.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// HealthResponse is the reply of GET /healthz.
type HealthResponse struct {
	Status       string `json:"status"`
	UptimeMillis int64  `json:"uptime_ms"`
	Sessions     int    `json:"sessions"`
}

// statusOf maps an error to its HTTP status and wire code. Analysis errors
// route through the dise kind sentinels (errors.Is), service errors through
// their own sentinels: client-caused analysis failures are 422 (the request
// was well-formed JSON but the program in it is unusable), deadline expiry
// — queued or mid-analysis — is 504, overload is 429, and an unknown or
// evicted session is 404.
func statusOf(err error) (int, string) {
	switch {
	case errors.Is(err, dise.ErrParse):
		return http.StatusUnprocessableEntity, dise.ParseError.Code()
	case errors.Is(err, dise.ErrType):
		return http.StatusUnprocessableEntity, dise.TypeError.Code()
	case errors.Is(err, dise.ErrUnknownProc):
		return http.StatusUnprocessableEntity, dise.UnknownProc.Code()
	case errors.Is(err, dise.ErrBudgetExhausted):
		return http.StatusUnprocessableEntity, dise.BudgetExhausted.Code()
	case errors.Is(err, dise.ErrCancelled),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, dise.Cancelled.Code()
	case errors.Is(err, dise.ErrInvalidConfig):
		return http.StatusInternalServerError, dise.InvalidConfig.Code()
	case errors.Is(err, errShuttingDown):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, errSessionCap):
		return http.StatusTooManyRequests, "session_cap"
	case errors.Is(err, errSessionNotFound):
		return http.StatusNotFound, "session_not_found"
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest, "bad_request"
	}
	return http.StatusInternalServerError, "internal"
}

// errBadRequest classifies malformed bodies and missing required fields.
var errBadRequest = errors.New("bad request")

// errShuttingDown rejects requests arriving after BeginShutdown.
var errShuttingDown = errors.New("service is shutting down")

// maxBodyBytes bounds request bodies (source texts are small; 8 MiB is
// generous) so a misbehaving client cannot balloon the daemon.
const maxBodyBytes = 8 << 20

// routes builds the service mux.
func (s *Service) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("POST /v1/sessions/{id}/advance", s.handleAdvance)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// withDrain is the graceful-shutdown front door: it tracks every request
// in the drain gate and, once BeginShutdown has been called, rejects new
// arrivals with 503 shutting_down while the ones already inside finish.
// The health endpoint stays open so orchestrators can watch the drain.
func (s *Service) withDrain(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			// /healthz and /metrics are read-only and cheap; keeping them
			// available during the drain is what makes it observable.
			next.ServeHTTP(w, r)
			return
		}
		if !s.gate.enter() {
			s.metrics.observeReject()
			writeError(w, errShuttingDown)
			return
		}
		defer s.gate.exit()
		next.ServeHTTP(w, r)
	})
}

// withRecovery contains handler panics: the client gets a 500 with the
// standard error envelope instead of a torn connection, the counter moves
// (/metrics panics_recovered), and the daemon lives on. The recovery sits
// outside withDrain so a panicking handler still exits the drain gate via
// its own defer before this one fires.
func (s *Service) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.observePanic()
				// The handler may have panicked after starting its reply;
				// WriteHeader on a started response is a no-op plus a log
				// line, which is the best that can be done at this point.
				writeJSON(w, http.StatusInternalServerError, ErrorPayload{Error: ErrorDetail{
					Code:    "internal_error",
					Message: fmt.Sprintf("internal error: recovered from panic: %v", rec),
				}})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// decode reads one JSON body into dst.
func decode(r *http.Request, dst any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("%w: reading body: %v", errBadRequest, err)
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("%w: invalid JSON: %v", errBadRequest, err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a failed write means the client left
}

func writeError(w http.ResponseWriter, err error) {
	status, code := statusOf(err)
	writeJSON(w, status, ErrorPayload{Error: ErrorDetail{Code: code, Message: err.Error()}})
}

// requireFields validates that every named field is non-empty.
func requireFields(fields map[string]string) error {
	for _, name := range []string{"tenant", "base_src", "mod_src", "initial_src", "next_src", "proc"} {
		if v, ok := fields[name]; ok && v == "" {
			return fmt.Errorf("%w: missing required field %q", errBadRequest, name)
		}
	}
	return nil
}

// admit takes a deadline-bounded context and an admission slot for one
// analysis. The returned cancel releases both; errors are already
// classified for statusOf.
func (s *Service) admit(r *http.Request, deadlineMillis int64) (context.Context, func(), error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(deadlineMillis))
	if err := s.adm.acquire(ctx); err != nil {
		cancel()
		return nil, nil, err
	}
	release := func() {
		s.adm.release()
		cancel()
	}
	return ctx, release, nil
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req AnalyzeRequest
	err := decode(r, &req)
	if err == nil {
		err = requireFields(map[string]string{
			"tenant": req.Tenant, "base_src": req.BaseSrc, "mod_src": req.ModSrc, "proc": req.Proc,
		})
	}
	// A bad merge bound is client input, not server misconfiguration:
	// reject it here as 400 instead of letting the engine's InvalidConfig
	// surface as 500.
	if err == nil && (req.MergeBound == 1 || req.MergeBound < -1) {
		err = fmt.Errorf("%w: merge_bound %d out of range (0 = off, -1 = unbounded, >= 2 = bounded)",
			errBadRequest, req.MergeBound)
	}
	if err != nil {
		s.fail(w, "analyze", start, err)
		return
	}
	ctx, release, err := s.admit(r, req.DeadlineMillis)
	if err != nil {
		s.fail(w, "analyze", start, err)
		return
	}
	defer release()
	mergeBound := req.MergeBound
	if mergeBound == 0 {
		mergeBound = s.cfg.DefaultMergeBound
	}
	res, err := s.analyzer.Analyze(ctx, dise.Request{
		BaseSrc:         req.BaseSrc,
		ModSrc:          req.ModSrc,
		Proc:            req.Proc,
		Interprocedural: req.Interprocedural,
		MergeBound:      mergeBound,
	})
	if err != nil {
		s.fail(w, "analyze", start, err)
		return
	}
	s.metrics.observe("analyze", time.Since(start), &res.Stats, "")
	writeJSON(w, http.StatusOK, PayloadOf(res))
}

func (s *Service) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req CreateSessionRequest
	err := decode(r, &req)
	if err == nil {
		err = requireFields(map[string]string{
			"tenant": req.Tenant, "initial_src": req.InitialSrc, "proc": req.Proc,
		})
	}
	if err != nil {
		s.fail(w, "create", start, err)
		return
	}
	// Reserve the tenant's slot before the seed run, so a burst of creates
	// cannot overshoot the cap while their seeds execute.
	if err := s.store.reserve(req.Tenant); err != nil {
		s.fail(w, "create", start, err)
		return
	}
	ctx, release, err := s.admit(r, req.DeadlineMillis)
	if err != nil {
		s.store.unreserve(req.Tenant)
		s.fail(w, "create", start, err)
		return
	}
	defer release()
	sess, err := s.analyzer.NewSession(ctx, dise.SessionRequest{
		InitialSrc:      req.InitialSrc,
		Proc:            req.Proc,
		Interprocedural: req.Interprocedural,
		SkipSeed:        req.SkipSeed,
	})
	if err != nil {
		s.store.unreserve(req.Tenant)
		s.fail(w, "create", start, err)
		return
	}
	id := s.store.commit(req.Tenant, req.Proc, sess)
	s.metrics.observe("create", time.Since(start), nil, "")
	writeJSON(w, http.StatusCreated, CreateSessionResponse{SessionID: id})
}

func (s *Service) handleAdvance(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req AdvanceRequest
	err := decode(r, &req)
	if err == nil {
		err = requireFields(map[string]string{"tenant": req.Tenant, "next_src": req.NextSrc})
	}
	if err != nil {
		s.fail(w, "advance", start, err)
		return
	}
	entry, err := s.store.get(r.PathValue("id"), req.Tenant)
	if err != nil {
		s.fail(w, "advance", start, err)
		return
	}
	ctx, release, err := s.admit(r, req.DeadlineMillis)
	if err != nil {
		s.fail(w, "advance", start, err)
		return
	}
	defer release()
	// The session serializes concurrent Advances internally; the store may
	// evict the entry while this runs (the session object stays valid, the
	// ID just stops resolving afterwards).
	res, err := entry.sess.Advance(ctx, req.NextSrc)
	if err != nil {
		s.fail(w, "advance", start, err)
		return
	}
	// Refresh the store's cached trie usage (and relieve global trie-byte
	// pressure) now that the step grew or shrank the trie.
	nodes, bytes := entry.sess.MemoUsage()
	s.store.updateUsage(entry, nodes, bytes)
	s.metrics.observe("advance", time.Since(start), &res.Stats, "")
	writeJSON(w, http.StatusOK, PayloadOf(res))
}

func (s *Service) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		writeError(w, fmt.Errorf("%w: missing required query parameter \"tenant\"", errBadRequest))
		return
	}
	if err := s.store.remove(r.PathValue("id"), tenant); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:       "ok",
		UptimeMillis: s.cfg.now().Sub(s.started).Milliseconds(),
		Sessions:     s.store.stats().Occupancy,
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}

// fail records one failed request in the metrics and writes its error
// envelope.
func (s *Service) fail(w http.ResponseWriter, endpoint string, start time.Time, err error) {
	_, code := statusOf(err)
	s.metrics.observe(endpoint, time.Since(start), nil, code)
	writeError(w, err)
}
