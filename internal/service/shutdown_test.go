package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"dise"
	"dise/internal/constraint"
)

// blockCtl steers the test-svc-block backend: while armed, the first Check
// of a request parks on release (announcing itself on entered), giving the
// test a request that is provably in flight inside the drain gate.
var blockCtl struct {
	mu      sync.Mutex
	armed   bool
	entered chan struct{}
	release chan struct{}
}

type blockingBackend struct{ constraint.Backend }

func (b blockingBackend) Check() constraint.Result {
	blockCtl.mu.Lock()
	armed, entered, release := blockCtl.armed, blockCtl.entered, blockCtl.release
	blockCtl.mu.Unlock()
	if armed {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	return b.Backend.Check()
}

var registerBlocking sync.Once

func armBlocking(t *testing.T) (entered, release chan struct{}) {
	t.Helper()
	registerBlocking.Do(func() {
		constraint.Register("test-svc-block", func(o constraint.Options) (constraint.Backend, error) {
			inner, err := constraint.New(constraint.BackendInterval, o)
			if err != nil {
				return nil, err
			}
			return blockingBackend{inner}, nil
		})
	})
	entered = make(chan struct{}, 1)
	release = make(chan struct{})
	blockCtl.mu.Lock()
	blockCtl.armed, blockCtl.entered, blockCtl.release = true, entered, release
	blockCtl.mu.Unlock()
	t.Cleanup(func() {
		blockCtl.mu.Lock()
		blockCtl.armed = false
		blockCtl.mu.Unlock()
	})
	return entered, release
}

// TestServiceGracefulDrain pins the shutdown contract: a request in flight
// when BeginShutdown fires completes normally, new mutating requests are
// refused with 503 shutting_down (and counted), the read-only endpoints stay
// open so the drain is observable, and Drain returns once the last in-flight
// request leaves — but not before.
func TestServiceGracefulDrain(t *testing.T) {
	entered, release := armBlocking(t)
	svc2, srv2 := newTestServer(t, Config{
		AnalyzerOptions: []dise.Option{dise.WithSolverBackend("test-svc-block")},
	})
	proc, srcs := wbsChain()

	type reply struct {
		status int
		code   string
	}
	done := make(chan reply, 1)
	go func() {
		status, code := post(t, srv2.Client(), srv2.URL+"/v1/analyze",
			AnalyzeRequest{Tenant: "t1", BaseSrc: srcs[0], ModSrc: srcs[1], Proc: proc}, nil)
		done <- reply{status, code}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the solver")
	}

	svc2.BeginShutdown()

	// New mutating requests are turned away at the front door.
	if status, code := post(t, srv2.Client(), srv2.URL+"/v1/analyze",
		AnalyzeRequest{Tenant: "t1", BaseSrc: srcs[0], ModSrc: srcs[1], Proc: proc}, nil); status != http.StatusServiceUnavailable || code != "shutting_down" {
		t.Fatalf("post-shutdown analyze: status %d code %q, want 503 shutting_down", status, code)
	}

	// The read-only endpoints remain open; the reject counter moved.
	var metrics Metrics
	if status := getJSON(t, srv2.Client(), srv2.URL+"/metrics", &metrics); status != http.StatusOK {
		t.Fatalf("metrics during drain: status %d", status)
	}
	if metrics.ShutdownRejects < 1 {
		t.Fatalf("shutdown_rejects = %d, want >= 1", metrics.ShutdownRejects)
	}
	if metrics.Errors["shutting_down"] < 1 {
		t.Fatalf("errors[shutting_down] = %d, want >= 1", metrics.Errors["shutting_down"])
	}
	var health HealthResponse
	if status := getJSON(t, srv2.Client(), srv2.URL+"/healthz", &health); status != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz during drain: status %d body %+v", status, health)
	}

	// Drain cannot finish while the admitted request is still running.
	shortCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := svc2.Drain(shortCtx); err == nil {
		t.Fatal("Drain returned with a request still in flight")
	}

	// Releasing the solver lets the in-flight request finish with 200 and
	// Drain observe an idle gate.
	close(release)
	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request after drain began: status %d code %q, want 200", r.status, r.code)
	}
	drainCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := svc2.Drain(drainCtx); err != nil {
		t.Fatalf("Drain after last request left: %v", err)
	}
}

// TestServicePanicRecovery pins the recovery middleware: a panicking handler
// yields a 500 internal_error envelope instead of a torn connection, the
// /metrics counter moves, and the service keeps serving afterwards.
func TestServicePanicRecovery(t *testing.T) {
	svc := New(Config{})
	// Production composition (recovery outside drain outside routes), plus
	// one extra route that panics on demand.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	mux.Handle("/", svc.routes())
	srv := httptest.NewServer(svc.withRecovery(svc.withDrain(mux)))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})

	status, code := post(t, srv.Client(), srv.URL+"/boom", struct{}{}, nil)
	if status != http.StatusInternalServerError || code != "internal_error" {
		t.Fatalf("panicking handler: status %d code %q, want 500 internal_error", status, code)
	}

	// The daemon lives on: a normal analysis still succeeds.
	proc, srcs := wbsChain()
	if status, code := post(t, srv.Client(), srv.URL+"/v1/analyze",
		AnalyzeRequest{Tenant: "t1", BaseSrc: srcs[0], ModSrc: srcs[1], Proc: proc}, nil); status != http.StatusOK {
		t.Fatalf("analyze after contained panic: status %d code %q", status, code)
	}

	var metrics Metrics
	getJSON(t, srv.Client(), srv.URL+"/metrics", &metrics)
	if metrics.PanicsRecovered != 1 {
		t.Fatalf("panics_recovered = %d, want 1", metrics.PanicsRecovered)
	}
	if metrics.Errors["internal_error"] != 1 {
		t.Fatalf("errors[internal_error] = %d, want 1", metrics.Errors["internal_error"])
	}
}

// TestServiceDrainNoGoroutineLeaks pins that a full shutdown cycle —
// traffic, BeginShutdown, rejected stragglers, Drain — parks no goroutines.
func TestServiceDrainNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := New(Config{SweepInterval: time.Millisecond})
	srv := httptest.NewServer(svc.Handler())
	proc, srcs := wbsChain()
	for i := 0; i < 3; i++ {
		post(t, srv.Client(), srv.URL+"/v1/analyze",
			AnalyzeRequest{Tenant: fmt.Sprintf("t%d", i), BaseSrc: srcs[0], ModSrc: srcs[1], Proc: proc}, nil)
	}
	svc.BeginShutdown()
	for i := 0; i < 3; i++ {
		if status, code := post(t, srv.Client(), srv.URL+"/v1/analyze",
			AnalyzeRequest{Tenant: "t", BaseSrc: srcs[0], ModSrc: srcs[1], Proc: proc}, nil); status != http.StatusServiceUnavailable || code != "shutting_down" {
			t.Fatalf("straggler %d: status %d code %q", i, status, code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	srv.CloseClientConnections()
	srv.Close()
	svc.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
