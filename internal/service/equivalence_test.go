package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"dise"
	"dise/internal/artifacts"
)

// TestServiceChainMatchesInProcessSession is the warm-path equivalence gate
// of the acceptance criteria: a version chain driven through the HTTP API
// yields byte-identical Result payloads — paths, affected sets, core and
// solver/memo stats — to the same chain driven through Session.Advance
// in-process, on all three artifacts. The only field excluded is wall-clock
// time (time_ms), which is zeroed on both sides before the byte comparison:
// it reports when the run happened, not what it computed.
func TestServiceChainMatchesInProcessSession(t *testing.T) {
	ctx := context.Background()
	for _, art := range artifacts.All() {
		art := art
		t.Run(art.Name, func(t *testing.T) {
			// A fresh service per chain so the shared caches see exactly the
			// request sequence the in-process reference analyzer sees.
			_, srv := newTestServer(t, Config{})
			ref := dise.NewAnalyzer()

			srcs := []string{art.Base}
			for _, v := range art.Versions {
				srcs = append(srcs, art.SourceFor(v))
			}

			var created CreateSessionResponse
			status, code := post(t, srv.Client(), srv.URL+"/v1/sessions",
				CreateSessionRequest{Tenant: "gate", InitialSrc: srcs[0], Proc: art.Proc}, &created)
			if status != http.StatusCreated {
				t.Fatalf("create: status %d code %q", status, code)
			}
			sess, err := ref.NewSession(ctx, dise.SessionRequest{InitialSrc: srcs[0], Proc: art.Proc})
			if err != nil {
				t.Fatal(err)
			}

			for i := 1; i < len(srcs); i++ {
				var got ResultPayload
				status, code := post(t, srv.Client(), srv.URL+"/v1/sessions/"+created.SessionID+"/advance",
					AdvanceRequest{Tenant: "gate", NextSrc: srcs[i]}, &got)
				if status != http.StatusOK {
					t.Fatalf("step %d: HTTP advance: status %d code %q", i, status, code)
				}
				res, err := sess.Advance(ctx, srcs[i])
				if err != nil {
					t.Fatalf("step %d: in-process Advance: %v", i, err)
				}
				want := PayloadOf(res)

				got.Stats.TimeMilliseconds = 0
				want.Stats.TimeMilliseconds = 0
				gotJSON, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				wantJSON, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotJSON, wantJSON) {
					t.Fatalf("step %d (%s): HTTP payload diverged from in-process Session.Advance\nhttp:       %s\nin-process: %s",
						i, art.Versions[i-1].Name, gotJSON, wantJSON)
				}
				// The chain must really be warm. Step 1 is exempt: a mutant
				// that taints every path (WBS/ASW v1) replays nothing on its
				// first advance — pinned cold==warm above regardless.
				if i > 1 && got.Stats.Memo.StatesReplayed == 0 {
					t.Errorf("step %d: warm chain over HTTP replayed no recorded states", i)
				}
			}
		})
	}
}
