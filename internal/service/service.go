// Package service is the long-lived, multi-tenant analysis service behind
// cmd/dised: an HTTP/JSON front end over one shared dise.Analyzer that holds
// many concurrent version-chain sessions.
//
// The package supplies the three pieces a daemon needs on top of the
// facade's already concurrency-safe Analyzer:
//
//   - a tenant-keyed session store (store.go) with TTL expiry, global LRU
//     eviction and a per-tenant session cap, so thousands of chains can be
//     held without unbounded growth and one tenant cannot crowd out the
//     rest;
//   - admission control (admission.go): a bounded number of in-flight
//     analyses with a bounded wait queue, and a per-request deadline that
//     surfaces through the Analyzer's context plumbing as the existing
//     Cancelled error kind;
//   - metrics (metrics.go): per-endpoint latency histograms (p50/p99),
//     cumulative solver_stats/memo_stats aggregated with the facade's
//     Stats.Add hooks, store occupancy and eviction counters, queue depth,
//     and memory figures for sessions-per-GB accounting.
//
// Because every tenant's request runs on the one Analyzer, the parse/CFG
// cache and the content-keyed solver prefix cache are shared across
// tenants: PrefixCache entries are keyed by constraint content, not program
// version or requester, so one tenant's solved prefixes warm another
// tenant's identical constraints.
package service

import (
	"context"
	"net/http"
	"sync"
	"time"

	"dise"
)

// Config tunes a Service. The zero value selects serviceable defaults for
// every field.
type Config struct {
	// MaxSessions bounds the session store; adding a session beyond it
	// evicts the least-recently-used one. Default 1024.
	MaxSessions int
	// MaxSessionsPerTenant caps one tenant's share of the store; creation
	// beyond it is rejected (HTTP 429). Default 64.
	MaxSessionsPerTenant int
	// SessionTTL expires sessions idle longer than this. Default 30m.
	SessionTTL time.Duration
	// SweepInterval is how often the janitor collects expired sessions
	// (expiry is also enforced lazily on access). Default 1m.
	SweepInterval time.Duration
	// MaxInFlight bounds concurrently running analyses (one-shot analyses,
	// session seeds and advances all count). Default 4.
	MaxInFlight int
	// MaxQueue bounds how many admitted requests may wait for an in-flight
	// slot; requests beyond it are rejected immediately (HTTP 429).
	// Default 64.
	MaxQueue int
	// DefaultDeadline is the per-request deadline applied when the request
	// names none. Default 30s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines. Default 2m.
	MaxDeadline time.Duration
	// MaxTrieNodes bounds each session's memo trie to this many nodes,
	// evicting cold subtrees after every step (dise.WithMemoNodeBudget).
	// 0 = unbounded, today's behavior.
	MaxTrieNodes int
	// MaxTrieBytes is the global ceiling on the resident sessions' summed
	// memo-trie bytes; under pressure the store evicts least-recently-used
	// sessions before rejecting anything. 0 = unbounded.
	MaxTrieBytes int64
	// InternGCEpochs enables epoch collection of the hash-consing intern
	// table, keeping entries touched within the last N completed runs
	// (dise.WithInternGC). 0 = collection off.
	InternGCEpochs int
	// CacheBytes bounds the shared parse/CFG and solved-prefix caches to
	// approximately this many retained bytes in total
	// (dise.WithCacheByteBudget). 0 = entry-count bounds only.
	CacheBytes int64
	// DefaultMergeBound applies bounded state merging to one-shot
	// /v1/analyze requests that carry no merge_bound of their own
	// (0 = off, dise.MergeUnbounded = unbounded, >= 2 = bounded). Session
	// endpoints are unaffected: merging is incompatible with memoized
	// version chains, so it is never a session default.
	DefaultMergeBound int
	// AnalyzerOptions configures the shared Analyzer (solver backend,
	// search strategy, bounds, cache capacities).
	AnalyzerOptions []dise.Option

	// now overrides the clock in tests (nil means time.Now).
	now func() time.Time
}

func (c *Config) defaults() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxSessionsPerTenant <= 0 {
		c.MaxSessionsPerTenant = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = time.Minute
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Service is the analysis daemon's engine room: one shared Analyzer, the
// session store, the admission controller and the metrics registry. It is
// safe for concurrent use; construct with New, serve Handler, and Close on
// shutdown.
type Service struct {
	cfg      Config
	analyzer *dise.Analyzer
	store    *sessionStore
	adm      *admission
	metrics  *metrics
	started  time.Time
	gate     drainGate
}

// drainGate tracks in-flight requests for graceful shutdown. Once draining,
// new requests are rejected at the front door (503 shutting_down) while
// requests already past it run to completion; Drain blocks until the last
// one leaves (or the context expires).
type drainGate struct {
	mu       sync.Mutex
	draining bool
	inflight int
	idle     chan struct{} // lazily built; closed once draining with no in-flight
	closed   bool
}

// enter admits one request into the gate; false means the service is
// draining and the request must be rejected.
func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight++
	return true
}

// exit retires one admitted request, releasing Drain when the last one
// leaves after shutdown began.
func (g *drainGate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	if g.draining && g.inflight == 0 {
		g.releaseLocked()
	}
}

// begin flips the gate to draining and returns a channel closed once no
// admitted request remains (already closed if none is running).
func (g *drainGate) begin() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
	if g.idle == nil {
		g.idle = make(chan struct{})
	}
	if g.inflight == 0 {
		g.releaseLocked()
	}
	return g.idle
}

func (g *drainGate) releaseLocked() {
	if g.idle == nil {
		g.idle = make(chan struct{})
	}
	if !g.closed {
		close(g.idle)
		g.closed = true
	}
}

// New builds a Service and starts its session-store janitor. The caller
// owns the returned Service and must Close it to release the janitor.
func New(cfg Config) *Service {
	cfg.defaults()
	opts := cfg.AnalyzerOptions
	if cfg.MaxTrieNodes > 0 {
		opts = append(opts, dise.WithMemoNodeBudget(cfg.MaxTrieNodes))
	}
	if cfg.InternGCEpochs > 0 {
		opts = append(opts, dise.WithInternGC(cfg.InternGCEpochs))
	}
	if cfg.CacheBytes > 0 {
		opts = append(opts, dise.WithCacheByteBudget(cfg.CacheBytes))
	}
	s := &Service{
		cfg:      cfg,
		analyzer: dise.NewAnalyzer(opts...),
		store:    newSessionStore(cfg.MaxSessions, cfg.MaxSessionsPerTenant, cfg.SessionTTL, cfg.MaxTrieBytes, cfg.now),
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		metrics:  newMetrics(),
		started:  cfg.now(),
	}
	s.store.startJanitor(cfg.SweepInterval)
	return s
}

// Analyzer exposes the shared Analyzer (read-only use: cache statistics).
func (s *Service) Analyzer() *dise.Analyzer { return s.analyzer }

// Close stops the background janitor and drops every stored session. It
// does not interrupt in-flight requests; the HTTP server's own shutdown
// handles those.
func (s *Service) Close() {
	s.store.close()
}

// Handler returns the service's HTTP handler (see http.go for the routes),
// wrapped in the panic-recovery and shutdown-drain middleware.
func (s *Service) Handler() http.Handler { return s.withRecovery(s.withDrain(s.routes())) }

// BeginShutdown puts the service into draining mode: every request that
// arrives after this call is rejected with 503 shutting_down, while
// requests already executing continue undisturbed. Idempotent.
func (s *Service) BeginShutdown() { s.gate.begin() }

// Drain blocks until every in-flight request has completed or ctx expires
// (its error is returned in that case). Call BeginShutdown first; Drain on
// a service that is not draining waits for the signal that BeginShutdown
// would have sent and therefore only returns on ctx expiry.
func (s *Service) Drain(ctx context.Context) error {
	s.gate.mu.Lock()
	idle := s.gate.idle
	if idle == nil {
		s.gate.idle = make(chan struct{})
		idle = s.gate.idle
		if s.gate.draining && s.gate.inflight == 0 {
			s.gate.releaseLocked()
		}
	}
	s.gate.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// deadlineFor resolves one request's deadline: the client's requested
// deadline_ms clamped to MaxDeadline, or DefaultDeadline when absent.
func (s *Service) deadlineFor(requestedMillis int64) time.Duration {
	if requestedMillis <= 0 {
		return s.cfg.DefaultDeadline
	}
	d := time.Duration(requestedMillis) * time.Millisecond
	if d > s.cfg.MaxDeadline {
		return s.cfg.MaxDeadline
	}
	return d
}
