package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull reports that the admission queue is at capacity: the request
// was rejected without waiting.
var errQueueFull = errors.New("service overloaded: admission queue full")

// admission bounds the analyses running at once. slots is a counting
// semaphore of MaxInFlight permits; a request that cannot take a permit
// immediately waits in a bounded queue, and its deadline keeps ticking
// while it waits — a request whose context expires in the queue is
// rejected with the context's error, which http.go maps to the Cancelled
// kind exactly as a mid-analysis deadline would be.
type admission struct {
	slots    chan struct{}
	maxQueue int64

	queued           atomic.Int64
	inFlight         atomic.Int64
	admitted         atomic.Int64
	rejectedQueue    atomic.Int64
	rejectedDeadline atomic.Int64
}

// AdmissionStats is the admission controller's observability block.
type AdmissionStats struct {
	InFlight   int64 `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
	// MaxInFlight and MaxQueue echo the configured bounds.
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`
	// Admitted counts requests that got a slot; RejectedQueueFull requests
	// bounced off the full queue; RejectedDeadline requests whose deadline
	// expired while they waited.
	Admitted          int64 `json:"admitted"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDeadline  int64 `json:"rejected_deadline"`
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// acquire takes an in-flight slot, waiting in the queue if none is free.
// On success the caller must release. Failure is errQueueFull or the
// context's error.
func (ad *admission) acquire(ctx context.Context) error {
	select {
	case ad.slots <- struct{}{}:
		ad.admitted.Add(1)
		ad.inFlight.Add(1)
		return nil
	default:
	}
	if ad.queued.Add(1) > ad.maxQueue {
		ad.queued.Add(-1)
		ad.rejectedQueue.Add(1)
		return errQueueFull
	}
	defer ad.queued.Add(-1)
	select {
	case ad.slots <- struct{}{}:
		ad.admitted.Add(1)
		ad.inFlight.Add(1)
		return nil
	case <-ctx.Done():
		ad.rejectedDeadline.Add(1)
		return ctx.Err()
	}
}

func (ad *admission) release() {
	ad.inFlight.Add(-1)
	<-ad.slots
}

func (ad *admission) stats() AdmissionStats {
	return AdmissionStats{
		InFlight:          ad.inFlight.Load(),
		QueueDepth:        ad.queued.Load(),
		MaxInFlight:       cap(ad.slots),
		MaxQueue:          int(ad.maxQueue),
		Admitted:          ad.admitted.Load(),
		RejectedQueueFull: ad.rejectedQueue.Load(),
		RejectedDeadline:  ad.rejectedDeadline.Load(),
	}
}
