package service

import (
	"runtime"
	"sync"
	"time"

	"dise"
	"dise/internal/sym"
)

// latencyBucketsMillis are the histogram bucket upper bounds, exponential
// base-2 from 250µs to ~2m; observations above the last bound land in the
// overflow bucket and quantiles there report the observed maximum.
var latencyBucketsMillis = []float64{
	0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
}

// histogram is a fixed-bucket latency histogram. Quantiles are estimated by
// linear interpolation inside the bucket holding the target rank — exact
// enough for p50/p99 dashboards, constant memory regardless of traffic.
type histogram struct {
	mu     sync.Mutex
	counts []int64 // one per bucket plus overflow; allocated on first use
	count  int64
	sumMs  float64
	maxMs  float64
}

// LatencySummary is the rendered form of one histogram.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
	Mean  float64 `json:"mean_ms"`
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		h.counts = make([]int64, len(latencyBucketsMillis)+1)
	}
	i := 0
	for i < len(latencyBucketsMillis) && ms > latencyBucketsMillis[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sumMs += ms
	if ms > h.maxMs {
		h.maxMs = ms
	}
}

// quantileLocked returns the estimated q-quantile in milliseconds.
func (h *histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = latencyBucketsMillis[i-1]
			}
			hi := h.maxMs
			if i < len(latencyBucketsMillis) && latencyBucketsMillis[i] < hi {
				hi = latencyBucketsMillis[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.maxMs
}

func (h *histogram) summary() LatencySummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := LatencySummary{Count: h.count, Max: h.maxMs}
	if h.count > 0 {
		s.P50 = h.quantileLocked(0.50)
		s.P90 = h.quantileLocked(0.90)
		s.P99 = h.quantileLocked(0.99)
		s.Mean = h.sumMs / float64(h.count)
	}
	return s
}

// metrics is the service-wide registry: per-endpoint latency histograms,
// request/error counters, and the cumulative analysis statistics aggregated
// through the facade's Stats.Add hooks.
type metrics struct {
	analyze, seed, advance histogram

	mu       sync.Mutex
	requests map[string]int64 // endpoint -> served count (incl. failures)
	errors   map[string]int64 // error code -> count
	// totals accumulates every successful run's Stats (solver and memo
	// blocks included), the cross-request view /metrics serves.
	totals dise.Stats
	// panics counts handler panics the recovery middleware contained;
	// shutdownRejects counts requests refused with 503 during a drain.
	panics          int64
	shutdownRejects int64
}

// observePanic records one contained handler panic.
func (m *metrics) observePanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
	m.errors["internal_error"]++
}

// observeReject records one request refused because the service is
// draining.
func (m *metrics) observeReject() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shutdownRejects++
	m.errors["shutting_down"]++
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]int64),
		errors:   make(map[string]int64),
	}
}

// observe records one request: its endpoint, latency, and either the error
// code or the successful run's statistics.
func (m *metrics) observe(endpoint string, d time.Duration, stats *dise.Stats, errCode string) {
	switch endpoint {
	case "analyze":
		m.analyze.observe(d)
	case "create":
		m.seed.observe(d)
	case "advance":
		m.advance.observe(d)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[endpoint]++
	if errCode != "" {
		m.errors[errCode]++
	}
	if stats != nil {
		m.totals.Add(*stats)
	}
}

// MemoryStats is the runtime-memory block of /metrics; SessionsPerGB is the
// store occupancy divided by heap-in-use gigabytes — the capacity-planning
// figure BENCH_service.json records.
type MemoryStats struct {
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapInuseBytes uint64  `json:"heap_inuse_bytes"`
	SysBytes       uint64  `json:"sys_bytes"`
	NumGoroutine   int     `json:"num_goroutine"`
	SessionsPerGB  float64 `json:"sessions_per_gb"`
}

// Metrics is the full /metrics payload.
type Metrics struct {
	UptimeMillis int64 `json:"uptime_ms"`

	Sessions  StoreStats     `json:"sessions"`
	Admission AdmissionStats `json:"admission"`

	Latency struct {
		Analyze LatencySummary `json:"analyze"`
		Seed    LatencySummary `json:"seed"`
		Advance LatencySummary `json:"advance"`
	} `json:"latency"`

	Requests map[string]int64 `json:"requests"`
	Errors   map[string]int64 `json:"errors"`

	// PanicsRecovered counts handler panics the recovery middleware
	// contained (each also served a 500 internal_error envelope);
	// ShutdownRejects counts requests refused with 503 shutting_down
	// after BeginShutdown.
	PanicsRecovered int64 `json:"panics_recovered"`
	ShutdownRejects int64 `json:"shutdown_rejects"`

	// SolverStats, MemoStats and MergeStats are the cumulative per-run
	// statistics of every successful analysis, aggregated via
	// dise.Stats.Add; ParseCache and PrefixCache snapshot the two
	// cross-tenant shared caches. Unlike per-run Stats — whose zero-valued
	// sub-blocks are omitted uniformly — the cumulative dashboard always
	// carries all three blocks, so collectors see a stable shape.
	SolverStats dise.SolverStats `json:"solver_stats"`
	MemoStats   dise.MemoStats   `json:"memo_stats"`
	MergeStats  dise.MergeStats  `json:"merge_stats"`
	Totals      struct {
		StatesExplored     int   `json:"states_explored"`
		PathConditions     int   `json:"path_conditions"`
		InfeasibleBranches int   `json:"infeasible_branches"`
		AnalysisMillis     int64 `json:"analysis_ms"`
	} `json:"totals"`
	ParseCache  dise.CacheStats  `json:"parse_cache"`
	PrefixCache PrefixCacheStats `json:"prefix_cache"`

	Memory MemoryStats `json:"memory"`
	// MemoryBreakdown attributes long-lived memory to its subsystems
	// (intern table, memo tries, shared caches).
	MemoryBreakdown MemoryBreakdown `json:"memory_breakdown"`
}

// PrefixCacheStats mirrors constraint.CacheStats with JSON tags.
type PrefixCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes_approx"`
	Evictions int64 `json:"evictions"`
}

// MemoryBreakdown decomposes the process's long-lived memory by subsystem,
// so sessions_per_gb is explainable instead of one opaque heap figure. All
// byte figures are the subsystems' own approximate estimators, not heap
// measurements; they will not sum to heap_inuse_bytes.
type MemoryBreakdown struct {
	// The global hash-consing intern table: live entries, approximate
	// bytes, the current collection epoch, and cumulative built/collected
	// counters (collection runs only when intern GC is enabled).
	InternEntries   int    `json:"intern_entries"`
	InternBytes     int64  `json:"intern_bytes_approx"`
	InternEpoch     uint64 `json:"intern_epoch"`
	InternBuilt     uint64 `json:"intern_built"`
	InternCollected uint64 `json:"intern_collected"`
	// The resident sessions' memo tries, summed across tenants (the store's
	// cached per-entry figures).
	TrieNodes int64 `json:"trie_nodes"`
	TrieBytes int64 `json:"trie_bytes_approx"`
	// The two cross-tenant shared caches.
	PrefixCacheBytes int64 `json:"prefix_cache_bytes_approx"`
	ParseCacheBytes  int64 `json:"parse_cache_bytes_approx"`
}

// snapshot assembles the /metrics payload.
func (s *Service) snapshot() Metrics {
	var out Metrics
	out.UptimeMillis = s.cfg.now().Sub(s.started).Milliseconds()
	out.Sessions = s.store.stats()
	out.Admission = s.adm.stats()
	out.Latency.Analyze = s.metrics.analyze.summary()
	out.Latency.Seed = s.metrics.seed.summary()
	out.Latency.Advance = s.metrics.advance.summary()

	s.metrics.mu.Lock()
	out.Requests = make(map[string]int64, len(s.metrics.requests))
	for k, v := range s.metrics.requests {
		out.Requests[k] = v
	}
	out.Errors = make(map[string]int64, len(s.metrics.errors))
	for k, v := range s.metrics.errors {
		out.Errors[k] = v
	}
	totals := s.metrics.totals
	out.PanicsRecovered = s.metrics.panics
	out.ShutdownRejects = s.metrics.shutdownRejects
	s.metrics.mu.Unlock()

	out.SolverStats = totals.Solver
	out.MemoStats = totals.Memo
	out.MergeStats = totals.Merge
	out.Totals.StatesExplored = totals.StatesExplored
	out.Totals.PathConditions = totals.PathConditions
	out.Totals.InfeasibleBranches = totals.InfeasibleBranches
	out.Totals.AnalysisMillis = totals.TimeMilliseconds

	out.ParseCache = s.analyzer.CacheStats()
	pc := s.analyzer.SolverCacheStats()
	out.PrefixCache = PrefixCacheStats{Hits: pc.Hits, Misses: pc.Misses, Entries: pc.Entries, Bytes: pc.Bytes, Evictions: pc.Evictions}

	intern := sym.InternTableStats()
	out.MemoryBreakdown = MemoryBreakdown{
		InternEntries:    intern.Entries,
		InternBytes:      intern.ApproxBytes,
		InternEpoch:      intern.Epoch,
		InternBuilt:      intern.Interned,
		InternCollected:  intern.Collected,
		TrieNodes:        out.Sessions.TrieNodes,
		TrieBytes:        out.Sessions.TrieBytes,
		PrefixCacheBytes: pc.Bytes,
		ParseCacheBytes:  out.ParseCache.Bytes,
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out.Memory = MemoryStats{
		HeapAllocBytes: ms.HeapAlloc,
		HeapInuseBytes: ms.HeapInuse,
		SysBytes:       ms.Sys,
		NumGoroutine:   runtime.NumGoroutine(),
	}
	if gb := float64(ms.HeapInuse) / (1 << 30); gb > 0 && out.Sessions.Occupancy > 0 {
		out.Memory.SessionsPerGB = float64(out.Sessions.Occupancy) / gb
	}
	return out
}
