package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionBoundsInFlight(t *testing.T) {
	ad := newAdmission(2, 4)
	ctx := context.Background()
	if err := ad.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ad.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ad.stats().InFlight; got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// A third caller must wait; freeing a slot admits it.
	admitted := make(chan error, 1)
	go func() { admitted <- ad.acquire(ctx) }()
	select {
	case err := <-admitted:
		t.Fatalf("third acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	ad.release()
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued acquire never admitted after release")
	}
	ad.release()
	ad.release()
	if got := ad.stats().InFlight; got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	ad := newAdmission(1, 1)
	ctx := context.Background()
	if err := ad.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue...
	waiterCtx, cancelWaiter := context.WithCancel(ctx)
	defer cancelWaiter()
	waiting := make(chan error, 1)
	go func() { waiting <- ad.acquire(waiterCtx) }()
	deadline := time.Now().Add(time.Second)
	for ad.stats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// ...the next is bounced immediately.
	if err := ad.acquire(ctx); !errors.Is(err, errQueueFull) {
		t.Fatalf("over-queue acquire: err = %v, want errQueueFull", err)
	}
	if got := ad.stats().RejectedQueueFull; got != 1 {
		t.Fatalf("RejectedQueueFull = %d, want 1", got)
	}
	cancelWaiter()
	if err := <-waiting; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v, want context.Canceled", err)
	}
	ad.release()
}

// TestAdmissionDeadlineWhileQueued pins that a deadline expiring in the
// queue surfaces as context.DeadlineExceeded — which http.go maps to the
// Cancelled kind, the same classification a mid-analysis deadline gets.
func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	ad := newAdmission(1, 4)
	if err := ad.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ad.release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := ad.acquire(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-past-deadline acquire: err = %v, want DeadlineExceeded", err)
	}
	s := ad.stats()
	if s.RejectedDeadline != 1 || s.QueueDepth != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if status, code := statusOf(err); status != 504 || code != "cancelled" {
		t.Fatalf("statusOf(queued deadline) = %d %q, want 504 \"cancelled\"", status, code)
	}
}
