package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"runtime"
	"testing"

	"dise"
	"dise/internal/lang/ast"
	"dise/internal/randprog"
)

// TestSoakBoundedMemoryChurn is the memory-plateau gate of the bounded
// service (PR 8): hundreds of short random version chains churn through a
// store far smaller than the chain population, with every memory bound on —
// per-session trie node budget, global trie-byte ceiling, intern-table
// collection, and byte-budgeted shared caches. The test asserts three
// things:
//
//  1. Plateau: heap-in-use, sampled across three equal windows after a
//     warm-up window (runtime.GC before each read), does not keep growing —
//     later windows stay within a generous factor of the first. Unbounded,
//     the intern table and resident tries grow with every distinct chain.
//  2. Zero drift: sampled chains are simultaneously checked against a cold
//     pairwise Analyze on a fresh unbounded Analyzer — eviction may only
//     cost hit rate, never change an answer.
//  3. The bounds were binding: the store really evicted, and the intern
//     collector really collected, so the plateau is the bounds' doing.
//
// -short scales the churn down to a smoke (CI runs it that way); the full
// population runs in the soak step. Windows are compared with slack rather
// than exact equality: the host is often a single shared core and the Go
// heap returns memory lazily.
func TestSoakBoundedMemoryChurn(t *testing.T) {
	chains, steps := 240, 4
	if testing.Short() {
		chains, steps = 48, 3
	}
	_, srv := newTestServer(t, Config{
		MaxSessions:    8, // far below the chain population: constant churn
		MaxTrieNodes:   512,
		MaxTrieBytes:   1 << 20,
		InternGCEpochs: 8,
		CacheBytes:     1 << 20,
	})
	ref := dise.NewAnalyzer() // unbounded correctness reference
	ctx := context.Background()

	heapInuse := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapInuse
	}

	driveChain := func(i int, check bool) {
		g := randprog.New(int64(i), randprog.Config{})
		prog := g.Program()
		srcs := []string{ast.Pretty(prog)}
		for s := 0; s < steps; s++ {
			mutated, _ := g.Mutate(prog, 1+s%2)
			srcs = append(srcs, ast.Pretty(mutated))
			prog = mutated
		}
		tenant := fmt.Sprintf("t%d", i%16)
		var created CreateSessionResponse
		status, code := post(t, srv.Client(), srv.URL+"/v1/sessions",
			CreateSessionRequest{Tenant: tenant, InitialSrc: srcs[0], Proc: "p"}, &created)
		if status != http.StatusCreated {
			t.Fatalf("chain %d: create: status %d code %q", i, status, code)
		}
		for s := 1; s < len(srcs); s++ {
			var got ResultPayload
			status, code := post(t, srv.Client(), srv.URL+"/v1/sessions/"+created.SessionID+"/advance",
				AdvanceRequest{Tenant: tenant, NextSrc: srcs[s]}, &got)
			if status != http.StatusOK {
				t.Fatalf("chain %d step %d: advance: status %d code %q", i, s, status, code)
			}
			if !check {
				continue
			}
			cold, err := ref.Analyze(ctx, dise.Request{BaseSrc: srcs[s-1], ModSrc: srcs[s], Proc: "p"})
			if err != nil {
				t.Fatalf("chain %d step %d: cold Analyze: %v", i, s, err)
			}
			want := PayloadOf(cold)
			// Stats describe how the answer was computed (memo reuse, cache
			// hits, wall clock) — the drift check is about the answer.
			got.Stats, want.Stats = dise.Stats{}, dise.Stats{}
			gotJSON, _ := json.Marshal(got)
			wantJSON, _ := json.Marshal(want)
			if !reflect.DeepEqual(gotJSON, wantJSON) {
				t.Fatalf("chain %d step %d: bounded service drifted from unbounded cold analysis\nbounded: %s\ncold:    %s",
					i, s, gotJSON, wantJSON)
			}
		}
	}

	// One warm-up window, then three measured windows.
	perWindow := chains / 4
	var windows []uint64
	for w := 0; w < 4; w++ {
		for i := w * perWindow; i < (w+1)*perWindow; i++ {
			// Every 8th chain is fully checked against the unbounded
			// reference; the rest are pure churn.
			driveChain(i, i%8 == 0)
		}
		if w > 0 {
			windows = append(windows, heapInuse())
		}
	}

	// Plateau: no measured window may exceed the first measured window by
	// more than 50% plus a fixed 16MiB allowance (GC timing noise on a
	// shared single-core host).
	base := windows[0]
	for i, w := range windows[1:] {
		if limit := base+base/2+16<<20; w > limit {
			t.Fatalf("heap grew across windows instead of plateauing: windows=%v (window %d: %d > limit %d)",
				windows, i+2, w, limit)
		}
	}

	// The bounds must have been binding, or the plateau proves nothing.
	var metrics Metrics
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	st := metrics.Sessions
	if st.Occupancy > 8 {
		t.Fatalf("store occupancy %d exceeds its capacity 8", st.Occupancy)
	}
	if st.EvictedLRU == 0 && st.EvictedBytes == 0 {
		t.Fatalf("store never evicted under churn: %+v", st)
	}
	mb := metrics.MemoryBreakdown
	if mb.InternCollected == 0 {
		t.Fatalf("intern collector never collected under churn: %+v", mb)
	}
	if st.TrieBytes > 1<<20 {
		t.Fatalf("resident trie bytes %d exceed the 1MiB ceiling", st.TrieBytes)
	}
	t.Logf("soak: %d chains x %d steps; windows=%v; store %+v; memory %+v",
		chains, steps, windows, st, mb)
}
