package service

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// addSession reserves and commits one (nil-session) entry.
func addSession(t *testing.T, st *sessionStore, tenant string) string {
	t.Helper()
	if err := st.reserve(tenant); err != nil {
		t.Fatalf("reserve(%s): %v", tenant, err)
	}
	return st.commit(tenant, "p", nil)
}

func TestStoreTTLEviction(t *testing.T) {
	clock := newFakeClock()
	st := newSessionStore(10, 10, time.Minute, 0, clock.now)

	idA := addSession(t, st, "a")
	clock.advance(30 * time.Second)
	idB := addSession(t, st, "a")

	// A lookup refreshes idB's idle timer; idA's keeps aging.
	clock.advance(20 * time.Second)
	if _, err := st.get(idB, "a"); err != nil {
		t.Fatalf("get(idB) before expiry: %v", err)
	}

	clock.advance(50 * time.Second) // idA idle 100s > TTL, idB idle 50s < TTL
	if _, err := st.get(idA, "a"); !errors.Is(err, errSessionNotFound) {
		t.Fatalf("get(idA) after TTL: err = %v, want errSessionNotFound", err)
	}
	if _, err := st.get(idB, "a"); err != nil {
		t.Fatalf("get(idB) still live: %v", err)
	}

	s := st.stats()
	if s.EvictedTTL != 1 || s.Occupancy != 1 {
		t.Fatalf("stats after lazy TTL eviction: %+v", s)
	}

	// The sweep (what the janitor runs) collects without any access.
	clock.advance(2 * time.Minute)
	st.mu.Lock()
	st.sweepLocked()
	st.mu.Unlock()
	s = st.stats()
	if s.EvictedTTL != 2 || s.Occupancy != 0 || s.Tenants != 0 {
		t.Fatalf("stats after sweep: %+v", s)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	clock := newFakeClock()
	st := newSessionStore(2, 10, time.Hour, 0, clock.now)

	id1 := addSession(t, st, "a")
	clock.advance(time.Second)
	id2 := addSession(t, st, "a")
	clock.advance(time.Second)

	// Touch id1 so id2 becomes the LRU victim.
	if _, err := st.get(id1, "a"); err != nil {
		t.Fatal(err)
	}
	id3 := addSession(t, st, "b")

	if _, err := st.get(id2, "a"); !errors.Is(err, errSessionNotFound) {
		t.Fatalf("LRU victim id2 still resolvable: err = %v", err)
	}
	for _, id := range []struct{ id, tenant string }{{id1, "a"}, {id3, "b"}} {
		if _, err := st.get(id.id, id.tenant); err != nil {
			t.Fatalf("get(%s): %v", id.id, err)
		}
	}
	s := st.stats()
	if s.EvictedLRU != 1 || s.Occupancy != 2 {
		t.Fatalf("stats after LRU eviction: %+v", s)
	}
}

func TestStorePerTenantCap(t *testing.T) {
	clock := newFakeClock()
	st := newSessionStore(100, 2, time.Hour, 0, clock.now)

	addSession(t, st, "a")
	addSession(t, st, "a")
	if err := st.reserve("a"); !errors.Is(err, errSessionCap) {
		t.Fatalf("third reserve for tenant a: err = %v, want errSessionCap", err)
	}
	// Other tenants are unaffected, and an aborted reservation releases the
	// slot.
	if err := st.reserve("b"); err != nil {
		t.Fatalf("reserve(b): %v", err)
	}
	st.unreserve("b")
	if st.stats().RejectedCap != 1 {
		t.Fatalf("stats: %+v", st.stats())
	}

	// Deleting one of a's sessions frees its cap slot.
	st.mu.Lock()
	var victim string
	for id, e := range st.entries {
		if e.tenant == "a" {
			victim = id
			break
		}
	}
	st.mu.Unlock()
	if err := st.remove(victim, "a"); err != nil {
		t.Fatal(err)
	}
	if err := st.reserve("a"); err != nil {
		t.Fatalf("reserve after delete: %v", err)
	}
	st.unreserve("a")
}

// TestStoreTenantIsolation pins that one tenant cannot resolve or delete
// another tenant's session — and cannot distinguish "not mine" from "does
// not exist".
func TestStoreTenantIsolation(t *testing.T) {
	clock := newFakeClock()
	st := newSessionStore(10, 10, time.Hour, 0, clock.now)
	id := addSession(t, st, "a")

	if _, err := st.get(id, "b"); !errors.Is(err, errSessionNotFound) {
		t.Fatalf("cross-tenant get: err = %v, want errSessionNotFound", err)
	}
	if err := st.remove(id, "b"); !errors.Is(err, errSessionNotFound) {
		t.Fatalf("cross-tenant remove: err = %v, want errSessionNotFound", err)
	}
	if _, err := st.get(id, "a"); err != nil {
		t.Fatalf("owner get after cross-tenant probing: %v", err)
	}
}

// TestStoreTrieBytePressure pins the MaxTrieBytes behavior: usage updates
// that push the resident tries past the ceiling evict LRU sessions (counted
// separately from capacity-LRU), stale updates for evicted entries are
// no-ops, and the most recent session always survives — even when it alone
// exceeds the ceiling.
func TestStoreTrieBytePressure(t *testing.T) {
	clock := newFakeClock()
	st := newSessionStore(10, 10, time.Hour, 1000, clock.now)

	idA := addSession(t, st, "a")
	clock.advance(time.Second)
	idB := addSession(t, st, "a")
	clock.advance(time.Second)
	idC := addSession(t, st, "a")

	entry := func(id string) *sessionEntry {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.entries[id]
	}
	eA, eB, eC := entry(idA), entry(idB), entry(idC)

	st.updateUsage(eA, 10, 400)
	st.updateUsage(eB, 10, 400)
	if s := st.stats(); s.EvictedBytes != 0 || s.TrieBytes != 800 || s.TrieNodes != 20 {
		t.Fatalf("stats under the ceiling: %+v", s)
	}

	// The third update crosses the 1000-byte ceiling: the LRU session (idA,
	// oldest, never touched) is evicted to relieve pressure.
	st.updateUsage(eC, 10, 400)
	if _, err := st.get(idA, "a"); !errors.Is(err, errSessionNotFound) {
		t.Fatalf("byte-pressure victim idA still resolvable: err = %v", err)
	}
	s := st.stats()
	if s.EvictedBytes != 1 || s.EvictedLRU != 0 || s.Occupancy != 2 || s.TrieBytes != 800 {
		t.Fatalf("stats after byte-pressure eviction: %+v", s)
	}

	// A stale update for the evicted entry must not corrupt the totals.
	st.updateUsage(eA, 99, 9999)
	if s := st.stats(); s.TrieBytes != 800 || s.TrieNodes != 20 {
		t.Fatalf("stats after stale update: %+v", s)
	}

	// A single session larger than the whole ceiling evicts everything else
	// but survives itself (the floor keeps the session that just ran).
	st.updateUsage(eC, 10, 5000)
	if s := st.stats(); s.EvictedBytes != 2 || s.Occupancy != 1 || s.TrieBytes != 5000 {
		t.Fatalf("stats after oversized session: %+v", s)
	}
	if _, err := st.get(idC, "a"); err != nil {
		t.Fatalf("most recent session evicted by its own size: %v", err)
	}
	_ = eB
}

func TestStoreJanitorSweeps(t *testing.T) {
	clock := newFakeClock()
	st := newSessionStore(10, 10, time.Minute, 0, clock.now)
	addSession(t, st, "a")
	clock.advance(2 * time.Minute)

	st.startJanitor(time.Millisecond)
	defer st.close()
	deadline := time.Now().Add(2 * time.Second)
	for st.stats().Occupancy != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("janitor never collected the expired session: %+v", st.stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st.stats().EvictedTTL != 1 {
		t.Fatalf("stats: %+v", st.stats())
	}
}
