package diff

import (
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/randprog"
)

// TestPropertyDiffIdentity: diffing a program against itself (through an
// independent reparse, so no AST pointers are shared) finds nothing.
func TestPropertyDiffIdentity(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		src := randprog.New(seed, randprog.Config{}).Source()
		a, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := Procedures(a.Procs[0], b.Procs[0])
		if !r.Identical() {
			t.Fatalf("seed %d: self-diff not identical:\nchanged=%v added=%v removed=%v\n%s",
				seed, r.ChangedModLines(), r.AddedLines(), r.RemovedLines(), src)
		}
		// Every statement must be paired under the identity diff.
		count := 0
		ast.Walk(a.Procs[0].Body.Stmts, func(ast.Stmt) { count++ })
		if len(r.Pairs) != count {
			t.Fatalf("seed %d: %d pairs for %d statements", seed, len(r.Pairs), count)
		}
	}
}

// TestPropertyDiffMarksAreConsistent: on random mutants, every statement
// carries exactly one mark per side, pairs connect only non-removed to
// non-added statements, and the diff is non-identical whenever the printed
// programs differ.
func TestPropertyDiffMarksAreConsistent(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		gen := randprog.New(seed, randprog.Config{})
		baseProg := gen.Program()
		mutant, _ := gen.Mutate(baseProg, 3)
		base := baseProg.Procs[0]
		mod := mutant.Procs[0]
		r := Procedures(base, mod)

		textDiffers := ast.Pretty(baseProg) != ast.Pretty(mutant)
		if textDiffers == r.Identical() {
			t.Fatalf("seed %d: text differs=%v but diff identical=%v", seed, textDiffers, r.Identical())
		}
		// Marks cover every statement on both sides.
		ast.Walk(base.Body.Stmts, func(s ast.Stmt) {
			if _, ok := r.BaseMarks[s]; !ok {
				t.Fatalf("seed %d: unmarked base statement %s", seed, s)
			}
		})
		ast.Walk(mod.Body.Stmts, func(s ast.Stmt) {
			if _, ok := r.ModMarks[s]; !ok {
				t.Fatalf("seed %d: unmarked mod statement %s", seed, s)
			}
		})
		// Base marks never use Added; mod marks never use Removed.
		for s, m := range r.BaseMarks {
			if m == Added {
				t.Fatalf("seed %d: base statement %s marked added", seed, s)
			}
		}
		for s, m := range r.ModMarks {
			if m == Removed {
				t.Fatalf("seed %d: mod statement %s marked removed", seed, s)
			}
		}
		// Pairs: removed statements are unpaired; pair targets are not
		// marked added; unchanged pairs have identical text.
		for bs, ms := range r.Pairs {
			if r.BaseMarks[bs] == Removed {
				t.Fatalf("seed %d: removed statement %s is paired", seed, bs)
			}
			if r.ModMarks[ms] == Added {
				t.Fatalf("seed %d: pair target %s is marked added", seed, ms)
			}
			if r.BaseMarks[bs] == Unchanged && bs.String() != ms.String() {
				// Compound statements may be marked unchanged with changed
				// children; only leaf statements must match textually.
				switch bs.(type) {
				case *ast.Assign, *ast.Skip, *ast.Return, *ast.Assert, *ast.Call:
					t.Fatalf("seed %d: unchanged leaf pair differs: %q vs %q", seed, bs, ms)
				}
			}
		}
	}
}

// TestPropertyDiffMutationLocalization: a single constant mutation to an
// assignment must mark exactly that statement changed and nothing else.
func TestPropertyDiffMutationLocalization(t *testing.T) {
	localized := 0
	for seed := int64(0); seed < 200; seed++ {
		gen := randprog.New(seed, randprog.Config{})
		baseProg := gen.Program()
		mutant, descs := gen.Mutate(baseProg, 1)
		if len(descs) != 1 {
			continue
		}
		r := Procedures(baseProg.Procs[0], mutant.Procs[0])
		changed := len(r.ChangedModLines())
		added := len(r.AddedLines())
		removed := len(r.RemovedLines())
		// One mutation = exactly one changed statement, or one added, or
		// one removed (depending on the mutation operator applied).
		total := changed + added + removed
		if total != 1 {
			t.Fatalf("seed %d (%v): %d changed, %d added, %d removed; want exactly one difference\nbase:\n%s\nmod:\n%s",
				seed, descs, changed, added, removed, ast.Pretty(baseProg), ast.Pretty(mutant))
		}
		localized++
	}
	if localized < 100 {
		t.Fatalf("only %d/200 seeds produced a single mutation; generator too weak", localized)
	}
}
