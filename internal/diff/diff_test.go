package diff

import (
	"reflect"
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
)

func parse(t *testing.T, src string) *ast.Procedure {
	t.Helper()
	_, pr, err := parser.ParseProcedure(src, "")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return pr
}

const fig2Base = `
proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos == 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 1;
  } else {
    AltPress = 2;
  }
}
`

// fig2Mod changes the first conditional == to <=, the paper's Fig. 2 change.
const fig2Mod = `
proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos <= 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 1;
  } else {
    AltPress = 2;
  }
}
`

func TestFig2Diff(t *testing.T) {
	base, mod := parse(t, fig2Base), parse(t, fig2Mod)
	r := Procedures(base, mod)
	// Exactly one changed statement on each side: the first conditional
	// (line 3 in both sources).
	if got := r.ChangedModLines(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("changed mod lines = %v, want [3]", got)
	}
	if got := linesWith(r.BaseMarks, Changed); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("changed base lines = %v, want [3]", got)
	}
	if len(r.AddedLines()) != 0 || len(r.RemovedLines()) != 0 {
		t.Errorf("added=%v removed=%v, want none", r.AddedLines(), r.RemovedLines())
	}
	// Every base statement must be paired (nothing was removed).
	count := 0
	ast.Walk(base.Body.Stmts, func(s ast.Stmt) { count++ })
	if len(r.Pairs) != count {
		t.Errorf("pairs = %d, want %d (every base statement paired)", len(r.Pairs), count)
	}
	// The changed if statements must be paired with each other.
	baseIf := base.Body.Stmts[0].(*ast.If)
	modIf := mod.Body.Stmts[0].(*ast.If)
	if r.Pairs[baseIf] != modIf {
		t.Error("changed conditional must map to its counterpart")
	}
	if r.Identical() {
		t.Error("diff must not report identical")
	}
}

func TestIdenticalPrograms(t *testing.T) {
	base, mod := parse(t, fig2Base), parse(t, fig2Base)
	r := Procedures(base, mod)
	if !r.Identical() {
		t.Error("identical programs must produce an identical diff")
	}
	count := 0
	ast.Walk(base.Body.Stmts, func(s ast.Stmt) { count++ })
	if len(r.Pairs) != count {
		t.Errorf("pairs = %d, want %d", len(r.Pairs), count)
	}
}

func TestAddedStatement(t *testing.T) {
	base := parse(t, `proc p(int x) {
		a = x;
		b = x + 1;
	}`)
	mod := parse(t, `proc p(int x) {
		a = x;
		inserted = 42;
		b = x + 1;
	}`)
	r := Procedures(base, mod)
	if got := r.AddedLines(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("added lines = %v, want [3]", got)
	}
	if len(r.RemovedLines()) != 0 || len(r.ChangedModLines()) != 0 {
		t.Errorf("unexpected removed=%v changed=%v", r.RemovedLines(), r.ChangedModLines())
	}
}

func TestRemovedStatement(t *testing.T) {
	base := parse(t, `proc p(int x) {
		a = x;
		dropped = 42;
		b = x + 1;
	}`)
	mod := parse(t, `proc p(int x) {
		a = x;
		b = x + 1;
	}`)
	r := Procedures(base, mod)
	if got := r.RemovedLines(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("removed lines = %v, want [3]", got)
	}
	// Removed statements have no pair (diffMap.get returns nothing).
	for s, m := range r.BaseMarks {
		if m == Removed {
			if _, ok := r.Pairs[s]; ok {
				t.Error("removed statement must not be paired")
			}
		}
	}
}

func TestChangedAssignment(t *testing.T) {
	base := parse(t, `proc p(int x) {
		a = x;
		b = x + 1;
	}`)
	mod := parse(t, `proc p(int x) {
		a = x;
		b = x + 2;
	}`)
	r := Procedures(base, mod)
	if got := r.ChangedModLines(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("changed lines = %v, want [3]", got)
	}
}

func TestChangeInsideNestedBranch(t *testing.T) {
	base := parse(t, `proc p(int x) {
		if (x > 0) {
			if (x > 10) {
				y = 1;
			} else {
				y = 2;
			}
		}
		z = 0;
	}`)
	mod := parse(t, `proc p(int x) {
		if (x > 0) {
			if (x > 10) {
				y = 1;
			} else {
				y = 3;
			}
		}
		z = 0;
	}`)
	r := Procedures(base, mod)
	if got := r.ChangedModLines(); !reflect.DeepEqual(got, []int{6}) {
		t.Errorf("changed lines = %v, want [6]", got)
	}
	// The enclosing ifs are unchanged.
	outer := mod.Body.Stmts[0].(*ast.If)
	if r.ModMarks[outer] != Unchanged {
		t.Errorf("outer if mark = %v, want unchanged", r.ModMarks[outer])
	}
	inner := outer.Then.Stmts[0].(*ast.If)
	if r.ModMarks[inner] != Unchanged {
		t.Errorf("inner if mark = %v, want unchanged", r.ModMarks[inner])
	}
}

func TestChangedLoopCondition(t *testing.T) {
	base := parse(t, `proc p(int n) {
		i = 0;
		while (i < n) {
			i = i + 1;
		}
	}`)
	mod := parse(t, `proc p(int n) {
		i = 0;
		while (i <= n) {
			i = i + 1;
		}
	}`)
	r := Procedures(base, mod)
	if got := r.ChangedModLines(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("changed lines = %v, want [3]", got)
	}
	// Loop body unchanged and paired.
	baseBody := base.Body.Stmts[1].(*ast.While).Body.Stmts[0]
	modBody := mod.Body.Stmts[1].(*ast.While).Body.Stmts[0]
	if r.Pairs[baseBody] != modBody {
		t.Error("loop body must be paired")
	}
	if r.ModMarks[modBody] != Unchanged {
		t.Error("loop body must be unchanged")
	}
}

func TestElseBranchAddedRemoved(t *testing.T) {
	base := parse(t, `proc p(int x) {
		if (x > 0) {
			y = 1;
		}
	}`)
	mod := parse(t, `proc p(int x) {
		if (x > 0) {
			y = 1;
		} else {
			y = 2;
		}
	}`)
	r := Procedures(base, mod)
	if got := r.AddedLines(); !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("added lines = %v, want [5]", got)
	}
	// Reverse direction: else removed.
	r2 := Procedures(mod, base)
	if got := r2.RemovedLines(); !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("removed lines = %v, want [5]", got)
	}
}

func TestMultipleChanges(t *testing.T) {
	base := parse(t, `proc p(int a, int b) {
		x = a;
		if (a > b) {
			y = a - b;
		} else {
			y = b - a;
		}
		z = x + y;
	}`)
	mod := parse(t, `proc p(int a, int b) {
		x = a + 1;
		if (a >= b) {
			y = a - b;
		} else {
			y = b - a;
		}
		z = x + y;
	}`)
	r := Procedures(base, mod)
	if got := r.ChangedModLines(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("changed lines = %v, want [2 3]", got)
	}
}

func TestStatementKindSwap(t *testing.T) {
	// An assignment replaced by an if: remove + add, not a change pair.
	base := parse(t, `proc p(int x) {
		y = 1;
	}`)
	mod := parse(t, `proc p(int x) {
		if (x > 0) {
			y = 1;
		}
	}`)
	r := Procedures(base, mod)
	if got := r.RemovedLines(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("removed = %v, want [2]", got)
	}
	// Both the if and its body are added.
	if got := r.AddedLines(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("added = %v, want [2 3]", got)
	}
}

func TestLCSAnchorsSurviveSurroundingChanges(t *testing.T) {
	// A changed statement before and after an identical region must not
	// desynchronize the matching of the identical region.
	base := parse(t, `proc p(int x) {
		a = 1;
		m1 = x;
		m2 = x + x;
		b = 1;
	}`)
	mod := parse(t, `proc p(int x) {
		a = 2;
		m1 = x;
		m2 = x + x;
		b = 2;
	}`)
	r := Procedures(base, mod)
	if got := r.ChangedModLines(); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Errorf("changed lines = %v, want [2 5]", got)
	}
	for s, m := range r.ModMarks {
		if a, ok := s.(*ast.Assign); ok && (a.Name == "m1" || a.Name == "m2") && m != Unchanged {
			t.Errorf("middle statement %s marked %v, want unchanged", a, m)
		}
	}
}

func TestWhollyDifferentBodies(t *testing.T) {
	base := parse(t, `proc p(int x) {
		a = 1;
		b = 2;
	}`)
	mod := parse(t, `proc p(int x) {
		if (x > 0) {
			c = 3;
		}
		while (x > 0) {
			x = x - 1;
		}
	}`)
	r := Procedures(base, mod)
	if got := len(r.RemovedLines()); got != 2 {
		t.Errorf("removed count = %d, want 2", got)
	}
	// All mod statements added: if, c=3, while, x=x-1.
	if got := len(r.AddedLines()); got != 4 {
		t.Errorf("added count = %d, want 4", got)
	}
}

func TestDuplicateStatementsAlign(t *testing.T) {
	// Repeated identical statements: LCS must align them in order.
	base := parse(t, `proc p(int x) {
		x = x + 1;
		x = x + 1;
		x = x + 1;
	}`)
	mod := parse(t, `proc p(int x) {
		x = x + 1;
		x = x + 1;
	}`)
	r := Procedures(base, mod)
	if got := len(r.RemovedLines()); got != 1 {
		t.Errorf("removed = %v, want exactly one", r.RemovedLines())
	}
	if len(r.AddedLines()) != 0 {
		t.Errorf("added = %v, want none", r.AddedLines())
	}
}
