package diff

import (
	"dise/internal/lang/ast"
)

// Correspondence is the stable cross-version node correspondence map: for
// every statement the diff proves strictly unchanged between the base and
// the modified version, it relates the statement's stable structural key in
// the base version (ast.StmtKeys) to its key in the modified version.
//
// The map is deliberately conservative, which is what makes it safe to build
// memoization on (internal/memo replays recorded solver verdicts only across
// corresponding nodes):
//
//   - only statements paired by the diff AND marked Unchanged on both sides
//     participate — changed, added and removed statements never correspond;
//   - a renamed or moved statement is removed-plus-added (or changed) in the
//     diff, so it is never falsely matched to an unrelated statement that
//     happens to share its text or its position;
//   - for if/while statements, Unchanged means the condition is unchanged —
//     exactly the guarantee the condition's CFG node needs; edits inside the
//     branches invalidate the branch statements' own keys, not the guard's.
type Correspondence struct {
	// BaseToMod maps the stable key of an unchanged base statement to the
	// stable key of its counterpart in the modified version.
	BaseToMod map[string]string
}

// Correspondence computes the cross-version statement-key correspondence of
// the diff (see the Correspondence type). Both directions of the underlying
// pairing are injective, so the returned map is too.
func (r *Result) Correspondence() *Correspondence {
	baseKeys := ast.StmtKeys(r.Base)
	modKeys := ast.StmtKeys(r.Mod)
	c := &Correspondence{BaseToMod: map[string]string{}}
	for bs, ms := range r.Pairs {
		if r.BaseMarks[bs] != Unchanged || r.ModMarks[ms] != Unchanged {
			continue
		}
		bk, okB := baseKeys[bs]
		mk, okM := modKeys[ms]
		if okB && okM {
			c.BaseToMod[bk] = mk
		}
	}
	return c
}
