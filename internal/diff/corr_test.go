package diff

import (
	"fmt"
	"strings"
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
)

// corrBase is a program with statements at several nesting depths, used to
// exercise the correspondence map's key stability.
const corrBase = `
int g = 0;
proc p(int a, int b) {
  g = 0;
  if (a > 3) {
    g = 1;
    if (b > 5) { g = 2; } else { g = 3; }
  } else {
    g = 4;
  }
  if (b > 7) { g = g + 1; }
  assert g >= 0;
  g = g + 10;
}
`

// edits rewrite one statement of corrBase in place, one edit per case.
var corrEdits = []struct{ old, new string }{
	{"g = 0;\n  if", "g = 9;\n  if"}, // top-level write (first occurrence in the body)
	{"a > 3", "a > 4"},               // outer conditional guard
	{"g = 1;", "g = 7;"},             // write inside then-branch
	{"b > 5", "b >= 5"},              // nested conditional guard
	{"g = 3;", "g = 8;"},             // write inside nested else
	{"g = 4;", "g = 5;"},             // write inside outer else
	{"b > 7", "b > 6"},               // second top-level conditional
	{"g >= 0", "g >= 1"},             // assert condition
	{"g = g + 10;", "g = g + 11;"},   // trailing write
}

func mustProc(t *testing.T, src string) *ast.Procedure {
	t.Helper()
	return parser.MustParse(src).Proc("p")
}

// TestCorrespondenceStableUnderSingleEdit is the key-stability property: an
// in-place edit of one statement leaves every other statement's key stable —
// the correspondence maps it to itself — while the edited statement (and
// only it, plus enclosing compounds whose own guard changed) drops out.
func TestCorrespondenceStableUnderSingleEdit(t *testing.T) {
	base := mustProc(t, corrBase)
	baseKeys := ast.StmtKeys(base)
	for _, e := range corrEdits {
		e := e
		t.Run(e.old, func(t *testing.T) {
			src := strings.Replace(corrBase, e.old, e.new, 1)
			if src == corrBase {
				t.Fatalf("edit %q did not apply", e.old)
			}
			mod := mustProc(t, src)
			d := Procedures(base, mod)
			corr := d.Correspondence().BaseToMod

			// Every statement the diff left strictly unchanged keeps its key:
			// position-derived keys only move when positions move, and an
			// in-place edit moves nothing.
			for bs, mark := range d.BaseMarks {
				key := baseKeys[bs]
				mapped, ok := corr[key]
				if mark == Unchanged {
					if !ok {
						t.Errorf("unchanged statement %q (key %s) has no correspondence", bs, key)
					} else if mapped != key {
						t.Errorf("unchanged statement %q moved: key %s -> %s", bs, key, mapped)
					}
					continue
				}
				if ok {
					t.Errorf("%s statement %q (key %s) must not correspond", mark, bs, key)
				}
			}

			// The edited statement itself must have dropped out.
			changed := 0
			for _, mark := range d.BaseMarks {
				if mark != Unchanged {
					changed++
				}
			}
			if changed == 0 {
				t.Fatalf("diff saw no change for edit %q", e.old)
			}
		})
	}
}

// TestCorrespondenceNeverFalselyMatches is the conservativeness property:
// whatever the edit, every pair in the correspondence relates two statements
// whose CFG-node-relevant text is identical — the full statement for leaves,
// the guard condition for if/while (whose CFG node is the guard; body edits
// invalidate the body statements' own keys, not the guard's). A renamed or
// rewritten statement is never matched to a different one that happens to
// share its position, and a moved statement is only ever matched to its own
// identical text.
func TestCorrespondenceNeverFalselyMatches(t *testing.T) {
	base := mustProc(t, corrBase)
	mods := []string{
		// Rename: same shape, different variable.
		strings.Replace(corrBase, "g = 1;", "g = b;", 1),
		// Move: swap two adjacent top-level statements.
		strings.Replace(corrBase, "assert g >= 0;\n  g = g + 10;", "g = g + 10;\n  assert g >= 0;", 1),
		// Insertion: shifts every later sibling's position.
		strings.Replace(corrBase, "g = 0;\n  if", "g = 0;\n  g = g + 2;\n  if", 1),
		// Deletion.
		strings.Replace(corrBase, "  g = g + 10;\n", "", 1),
	}
	for i, src := range mods {
		t.Run(fmt.Sprintf("mod%d", i), func(t *testing.T) {
			mod := mustProc(t, src)
			d := Procedures(base, mod)
			corr := d.Correspondence()
			baseByKey := invert(ast.StmtKeys(base))
			modByKey := invert(ast.StmtKeys(mod))
			seen := map[string]bool{}
			for bk, mk := range corr.BaseToMod {
				bs, ok1 := baseByKey[bk]
				ms, ok2 := modByKey[mk]
				if !ok1 || !ok2 {
					t.Fatalf("correspondence names unknown keys %s -> %s", bk, mk)
				}
				if nodeText(bs) != nodeText(ms) {
					t.Errorf("false match: base %q (key %s) -> mod %q (key %s)", bs, bk, ms, mk)
				}
				if seen[mk] {
					t.Errorf("correspondence is not injective at mod key %s", mk)
				}
				seen[mk] = true
			}
		})
	}
}

// nodeText is the text the statement's CFG node carries: the guard for
// compound statements, the whole statement otherwise.
func nodeText(s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.If:
		return "if " + s.Cond.String()
	case *ast.While:
		return "while " + s.Cond.String()
	}
	return s.String()
}

func invert(keys map[ast.Stmt]string) map[string]ast.Stmt {
	out := make(map[string]ast.Stmt, len(keys))
	for s, k := range keys {
		out[k] = s
	}
	return out
}

// TestStmtKeysUniquePerProcedure pins that structural keys identify
// statements uniquely — the property that makes them usable as CFG node
// identities.
func TestStmtKeysUniquePerProcedure(t *testing.T) {
	proc := mustProc(t, corrBase)
	keys := ast.StmtKeys(proc)
	seen := map[string]ast.Stmt{}
	for s, k := range keys {
		if prev, ok := seen[k]; ok {
			t.Fatalf("key %s assigned to both %q and %q", k, prev, s)
		}
		seen[k] = s
	}
}
