// Package diff implements the lightweight differential analysis DiSE takes
// as input (paper §3.1): a structural AST comparison of two versions of a
// procedure.
//
// The result marks every statement of the base version as unchanged, changed
// or removed, every statement of the modified version as unchanged, changed
// or added, and produces the diffMap relating base statements to their
// corresponding statements in the modified version. A pre-processing step in
// package dise lifts these marks onto CFG nodes.
//
// The algorithm aligns statement lists with a longest-common-subsequence
// over deep statement equality (rendered text), then pairs the remaining
// statements of equal kind in order, recursing into the branches of paired
// if/while statements. This matches the paper's description of "source line
// or abstract syntax tree diff" precision: it is deliberately syntactic and
// conservative, with no semantic matching.
package diff

import (
	"sort"

	"dise/internal/lang/ast"
)

// Mark classifies a statement relative to the other program version.
type Mark int

// Mark values. Base statements are Unchanged/Changed/Removed; modified
// version statements are Unchanged/Changed/Added.
const (
	Unchanged Mark = iota
	Changed
	Added
	Removed
)

// String names the mark.
func (m Mark) String() string {
	switch m {
	case Unchanged:
		return "unchanged"
	case Changed:
		return "changed"
	case Added:
		return "added"
	case Removed:
		return "removed"
	}
	return "invalid"
}

// Result is the outcome of diffing two procedure versions.
type Result struct {
	Base, Mod *ast.Procedure
	// BaseMarks marks every statement of the base version.
	BaseMarks map[ast.Stmt]Mark
	// ModMarks marks every statement of the modified version.
	ModMarks map[ast.Stmt]Mark
	// Pairs is the diffMap: base statement → corresponding mod statement,
	// defined for unchanged and changed statements only (removed statements
	// map to nothing, per the paper's "get returns the empty set").
	Pairs map[ast.Stmt]ast.Stmt
}

// Procedures diffs two versions of a procedure.
func Procedures(base, mod *ast.Procedure) *Result {
	r := &Result{
		Base:      base,
		Mod:       mod,
		BaseMarks: map[ast.Stmt]Mark{},
		ModMarks:  map[ast.Stmt]Mark{},
		Pairs:     map[ast.Stmt]ast.Stmt{},
	}
	r.diffBlocks(base.Body.Stmts, mod.Body.Stmts)
	return r
}

// markSubtree marks s and all nested statements with m in the given map.
func markSubtree(marks map[ast.Stmt]Mark, s ast.Stmt, m Mark) {
	ast.Walk([]ast.Stmt{s}, func(st ast.Stmt) { marks[st] = m })
}

// pairSubtrees records pair mappings for two structurally identical
// subtrees and marks them unchanged.
func (r *Result) pairSubtrees(b, m ast.Stmt) {
	r.BaseMarks[b] = Unchanged
	r.ModMarks[m] = Unchanged
	r.Pairs[b] = m
	switch b := b.(type) {
	case *ast.If:
		mi := m.(*ast.If)
		r.pairBlocks(b.Then.Stmts, mi.Then.Stmts)
		if b.Else != nil && mi.Else != nil {
			r.pairBlocks(b.Else.Stmts, mi.Else.Stmts)
		}
	case *ast.While:
		mw := m.(*ast.While)
		r.pairBlocks(b.Body.Stmts, mw.Body.Stmts)
	case *ast.Block:
		mb := m.(*ast.Block)
		r.pairBlocks(b.Stmts, mb.Stmts)
	}
}

func (r *Result) pairBlocks(bs, ms []ast.Stmt) {
	for i := range bs {
		r.pairSubtrees(bs[i], ms[i])
	}
}

// key returns the canonical text of a statement, used as deep-equality key.
func key(s ast.Stmt) string { return s.String() }

// diffBlocks aligns two statement lists.
func (r *Result) diffBlocks(bs, ms []ast.Stmt) {
	anchors := lcs(bs, ms)
	// Walk gap regions between anchors (plus the tail gap).
	prevB, prevM := 0, 0
	for _, a := range anchors {
		r.diffGap(bs[prevB:a.bi], ms[prevM:a.mi])
		r.pairSubtrees(bs[a.bi], ms[a.mi])
		prevB, prevM = a.bi+1, a.mi+1
	}
	r.diffGap(bs[prevB:], ms[prevM:])
}

// diffGap pairs non-identical statements between anchors: same-kind
// statements pair up in order as changed (recursing into compound bodies);
// everything left is removed/added.
func (r *Result) diffGap(bs, ms []ast.Stmt) {
	bi, mi := 0, 0
	for bi < len(bs) && mi < len(ms) {
		b, m := bs[bi], ms[mi]
		if sameKind(b, m) {
			r.pairChanged(b, m)
			bi++
			mi++
			continue
		}
		// Kinds differ: decide which side to consume. If the base kind still
		// occurs later on the mod side, the mod statement is an insertion;
		// otherwise the base statement was removed.
		if kindAppearsLater(ms[mi+1:], b) {
			markSubtree(r.ModMarks, m, Added)
			mi++
		} else {
			markSubtree(r.BaseMarks, b, Removed)
			bi++
		}
	}
	for ; bi < len(bs); bi++ {
		markSubtree(r.BaseMarks, bs[bi], Removed)
	}
	for ; mi < len(ms); mi++ {
		markSubtree(r.ModMarks, ms[mi], Added)
	}
}

// pairChanged pairs two same-kind statements that differ somewhere,
// recursing into compound statements so that only the genuinely changed
// parts are marked.
func (r *Result) pairChanged(b, m ast.Stmt) {
	r.Pairs[b] = m
	switch b := b.(type) {
	case *ast.If:
		mi := m.(*ast.If)
		mark := Unchanged
		if b.Cond.String() != mi.Cond.String() {
			mark = Changed
		}
		r.BaseMarks[b] = mark
		r.ModMarks[mi] = mark
		r.diffBlocks(b.Then.Stmts, mi.Then.Stmts)
		switch {
		case b.Else != nil && mi.Else != nil:
			r.diffBlocks(b.Else.Stmts, mi.Else.Stmts)
		case b.Else != nil:
			for _, s := range b.Else.Stmts {
				markSubtree(r.BaseMarks, s, Removed)
			}
		case mi.Else != nil:
			for _, s := range mi.Else.Stmts {
				markSubtree(r.ModMarks, s, Added)
			}
		}
	case *ast.While:
		mw := m.(*ast.While)
		mark := Unchanged
		if b.Cond.String() != mw.Cond.String() {
			mark = Changed
		}
		r.BaseMarks[b] = mark
		r.ModMarks[mw] = mark
		r.diffBlocks(b.Body.Stmts, mw.Body.Stmts)
	case *ast.Block:
		mb := m.(*ast.Block)
		r.BaseMarks[b] = Unchanged
		r.ModMarks[mb] = Unchanged
		r.diffBlocks(b.Stmts, mb.Stmts)
	default:
		// Leaf statements (assign, assert, skip, return): changed unless
		// identical (identical ones are normally consumed by the LCS, but a
		// gap pairing can still see them, e.g. when surrounded by changes).
		mark := Changed
		if key(b) == key(m) {
			mark = Unchanged
		}
		r.BaseMarks[b] = mark
		r.ModMarks[m.(ast.Stmt)] = mark
	}
}

func sameKind(a, b ast.Stmt) bool {
	switch a.(type) {
	case *ast.Assign:
		_, ok := b.(*ast.Assign)
		return ok
	case *ast.If:
		_, ok := b.(*ast.If)
		return ok
	case *ast.While:
		_, ok := b.(*ast.While)
		return ok
	case *ast.Assert:
		_, ok := b.(*ast.Assert)
		return ok
	case *ast.Skip:
		_, ok := b.(*ast.Skip)
		return ok
	case *ast.Return:
		_, ok := b.(*ast.Return)
		return ok
	case *ast.Call:
		_, ok := b.(*ast.Call)
		return ok
	case *ast.Block:
		_, ok := b.(*ast.Block)
		return ok
	}
	return false
}

func kindAppearsLater(ms []ast.Stmt, b ast.Stmt) bool {
	for _, m := range ms {
		if sameKind(b, m) {
			return true
		}
	}
	return false
}

// lcs computes anchor pairs of deeply-equal statements via classic dynamic
// programming over the statements' canonical text.
func lcs(bs, ms []ast.Stmt) []struct{ bi, mi int } {
	n, m := len(bs), len(ms)
	if n == 0 || m == 0 {
		return nil
	}
	bkeys := make([]string, n)
	for i, s := range bs {
		bkeys[i] = key(s)
	}
	mkeys := make([]string, m)
	for j, s := range ms {
		mkeys[j] = key(s)
	}
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if bkeys[i] == mkeys[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var out []struct{ bi, mi int }
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case bkeys[i] == mkeys[j]:
			out = append(out, struct{ bi, mi int }{i, j})
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return out
}

// --- reporting helpers -------------------------------------------------------

// linesWith returns sorted source lines of statements carrying mark m.
func linesWith(marks map[ast.Stmt]Mark, want Mark) []int {
	var out []int
	for s, m := range marks {
		if m == want {
			out = append(out, s.Pos().Line)
		}
	}
	sort.Ints(out)
	return out
}

// ChangedModLines returns the source lines marked changed in the modified
// version, sorted.
func (r *Result) ChangedModLines() []int { return linesWith(r.ModMarks, Changed) }

// AddedLines returns the source lines marked added in the modified version.
func (r *Result) AddedLines() []int { return linesWith(r.ModMarks, Added) }

// RemovedLines returns the base-version source lines marked removed.
func (r *Result) RemovedLines() []int { return linesWith(r.BaseMarks, Removed) }

// Identical reports whether the diff found no changes at all.
func (r *Result) Identical() bool {
	for _, m := range r.BaseMarks {
		if m != Unchanged {
			return false
		}
	}
	for _, m := range r.ModMarks {
		if m != Unchanged {
			return false
		}
	}
	return true
}
