package dise

import (
	"fmt"
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/randprog"
	"dise/internal/symexec"
)

// TestTheorem310RandomPrograms property-tests the directed search against
// full symbolic execution on random loop-free programs with random
// mutations, checking the observable content of Theorem 3.10:
//
//	(a) every DiSE path's affected sequence is a prefix of some sequence
//	    produced by full symbolic execution (soundness: DiSE explores only
//	    real behaviors, possibly pruned right after the last affected node);
//	(b) coverage (Case I): every full-SE affected sequence is contained in
//	    some DiSE path. The published algorithm is *incomplete* here in the
//	    presence of context-dependent infeasibility (an affected node can be
//	    consumed by an infeasible branch in one context and then missed in a
//	    later feasible context when no unexplored node remains to trigger
//	    the reset machinery — DESIGN.md §6.5). The theorem idealizes this
//	    away; this test therefore QUANTIFIES the miss rate and bounds it,
//	    rather than requiring zero misses;
//	(c) DiSE sequences are pairwise distinct (Case II: one path per
//	    sequence) — quantified like (b), since the same context-dependent
//	    infeasibility can also yield a duplicate (a path pruned mid-way in
//	    one context and completed in another);
//	(d) DiSE explores at most as many states as full symbolic execution.
func TestTheorem310RandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	const trials = 250
	totalFullSeqs, missedSeqs := 0, 0
	totalDiSEPaths, dupSeqs := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		gen := randprog.New(seed, randprog.Config{MaxStmts: 6, MaxDepth: 3})
		baseProg := gen.Program()
		mutant, descs := gen.Mutate(baseProg, 3)
		modSrc := ast.Pretty(mutant)
		modProg, err := parser.Parse(modSrc)
		if err != nil {
			t.Fatalf("seed %d: mutant reparse: %v", seed, err)
		}
		baseSrc := ast.Pretty(baseProg)
		baseProg, err = parser.Parse(baseSrc)
		if err != nil {
			t.Fatalf("seed %d: base reparse: %v", seed, err)
		}

		config := symexec.Config{DepthBound: 300}
		res, err := Analyze(baseProg, modProg, "p", config)
		if err != nil {
			t.Fatalf("seed %d: Analyze: %v\nbase:\n%s\nmod:\n%s", seed, err, baseSrc, modSrc)
		}
		fullEngine, err := symexec.New(modProg, "p", config)
		if err != nil {
			t.Fatalf("seed %d: full engine: %v", seed, err)
		}
		full := fullEngine.RunFull()

		fail := func(format string, args ...any) {
			t.Helper()
			t.Errorf("seed %d (mutations %v): %s\nbase:\n%s\nmod:\n%s",
				seed, descs, fmt.Sprintf(format, args...), baseSrc, modSrc)
		}

		// Full-SE affected sequences (non-empty: DiSE reports paths covering
		// at least one affected node).
		var fullSeqs [][]int
		fullSeen := map[string]bool{}
		for _, p := range full.Paths {
			seq := res.Affected.AffectedSequence(p.Trace)
			if len(seq) > 0 && !fullSeen[SequenceKey(seq)] {
				fullSeen[SequenceKey(seq)] = true
				fullSeqs = append(fullSeqs, seq)
			}
		}
		var diseSeqs [][]int
		diseSeen := map[string]bool{}
		for _, p := range res.Summary.Paths {
			totalDiSEPaths++
			seq := res.Affected.AffectedSequence(p.Trace)
			key := SequenceKey(seq)
			if diseSeen[key] {
				dupSeqs++
			} else {
				diseSeen[key] = true
				diseSeqs = append(diseSeqs, seq)
			}
		}
		// (a) soundness: each DiSE sequence is a prefix of a full sequence
		// (DiSE paths are feasible paths, possibly pruned after their last
		// affected node).
		for _, seq := range diseSeqs {
			matched := false
			for _, fullSeq := range fullSeqs {
				if isPrefix(seq, fullSeq) {
					matched = true
					break
				}
			}
			if !matched {
				fail("DiSE sequence %s is not a prefix of any full-SE sequence", SequenceKey(seq))
			}
		}
		// (b) coverage (Theorem 3.10 Case I): count full-SE affected
		// sequences not contained in any DiSE path. A missed sequence must
		// at least share its first affected node with an emitted one
		// (DiSE always starts covering every initially-unexplored node).
		for _, fullSeq := range fullSeqs {
			totalFullSeqs++
			matched := false
			for _, seq := range diseSeqs {
				if isSubsequence(fullSeq, seq) {
					matched = true
					break
				}
			}
			if !matched {
				missedSeqs++
				headCovered := false
				for _, seq := range diseSeqs {
					if len(seq) > 0 && len(fullSeq) > 0 && seq[0] == fullSeq[0] {
						headCovered = true
						break
					}
				}
				if !headCovered && len(diseSeqs) > 0 {
					fail("missed sequence %s does not even share its head with an emitted path", SequenceKey(fullSeq))
				}
			}
		}
		// (d) cost: directed exploration never exceeds full exploration.
		if res.Summary.Stats.StatesExplored > full.Stats.StatesExplored {
			fail("DiSE explored %d states, full explored %d",
				res.Summary.Stats.StatesExplored, full.Stats.StatesExplored)
		}
		if t.Failed() {
			t.FailNow()
		}
	}
	// The incompleteness bounds: across all trials the algorithm must cover
	// the overwhelming majority of affected sequences, with next to no
	// duplicates. The measured rates are recorded in DESIGN.md §6.5.
	if totalFullSeqs == 0 {
		t.Fatal("property test exercised no affected sequences")
	}
	missRate := float64(missedSeqs) / float64(totalFullSeqs)
	dupRate := float64(dupSeqs) / float64(totalDiSEPaths)
	t.Logf("coverage: %d/%d affected sequences (miss rate %.3f%%); duplicates: %d/%d paths (%.3f%%)",
		totalFullSeqs-missedSeqs, totalFullSeqs, 100*missRate, dupSeqs, totalDiSEPaths, 100*dupRate)
	if missRate > 0.02 {
		t.Errorf("miss rate %.3f%% exceeds the documented 2%% bound (%d/%d)",
			100*missRate, missedSeqs, totalFullSeqs)
	}
	if dupRate > 0.02 {
		t.Errorf("duplicate rate %.3f%% exceeds the documented 2%% bound (%d/%d)",
			100*dupRate, dupSeqs, totalDiSEPaths)
	}
}

// isPrefix reports whether a is a prefix of b.
func isPrefix(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// isSubsequence reports whether a occurs within b in order (not necessarily
// contiguously).
func isSubsequence(a, b []int) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}
