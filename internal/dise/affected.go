// Package dise implements Directed Incremental Symbolic Execution
// (Person, Yang, Rungta, Khurshid — PLDI 2011).
//
// DiSE has two phases (paper §3.1):
//
//  1. a conservative intra-procedural static analysis computes the affected
//     conditional nodes (ACN) and affected write nodes (AWN) of the modified
//     CFG from the diff marks, via the fixpoint rules Eq. (1)–(3) of Fig. 3,
//     the reaching-definitions rule Eq. (4) of Fig. 4, and the removeNodes
//     algorithm of Fig. 5(a) for instructions deleted from the base version;
//
//  2. a directed symbolic execution (Fig. 6) explores, for every sequence of
//     affected nodes on a feasible path, exactly one path (Theorem 3.10),
//     pruning the exploration of paths that differ only in unaffected code.
//
// This file implements phase 1.
package dise

import (
	"sort"

	"dise/internal/cfg"
	"dise/internal/diff"
)

// NodeMarks lifts statement-level diff marks onto CFG nodes (the paper's
// pre-processing step in §3.1).
type NodeMarks struct {
	// Base maps base-CFG nodes to removed/changed/unchanged.
	Base map[*cfg.Node]diff.Mark
	// Mod maps mod-CFG nodes to added/changed/unchanged.
	Mod map[*cfg.Node]diff.Mark
	// DiffMap maps base-CFG nodes to their counterpart in the modified CFG;
	// removed nodes are absent (the paper's "get returns the empty set").
	DiffMap map[*cfg.Node]*cfg.Node
}

// LiftMarks projects a diff result onto the two CFGs.
func LiftMarks(d *diff.Result, gBase, gMod *cfg.Graph) *NodeMarks {
	nm := &NodeMarks{
		Base:    map[*cfg.Node]diff.Mark{},
		Mod:     map[*cfg.Node]diff.Mark{},
		DiffMap: map[*cfg.Node]*cfg.Node{},
	}
	for stmt, mark := range d.BaseMarks {
		if n := gBase.NodeFor(stmt); n != nil {
			nm.Base[n] = mark
		}
	}
	for stmt, mark := range d.ModMarks {
		if n := gMod.NodeFor(stmt); n != nil {
			nm.Mod[n] = mark
		}
	}
	for bStmt, mStmt := range d.Pairs {
		bn := gBase.NodeFor(bStmt)
		mn := gMod.NodeFor(mStmt)
		if bn != nil && mn != nil {
			nm.DiffMap[bn] = mn
		}
	}
	return nm
}

// Affected holds the affected-location sets over the modified CFG.
type Affected struct {
	Graph *cfg.Graph
	// ACN is the set of affected conditional branch nodes (by node ID).
	ACN map[int]bool
	// AWN is the set of affected write nodes (by node ID).
	AWN map[int]bool
	// ChangedNodes counts CFG nodes directly marked by the diff: changed or
	// added in the modified CFG plus removed in the base CFG (the "Changed"
	// column of the paper's Table 2).
	ChangedNodes int
}

// Contains reports whether node ID is affected (member of ACN ∪ AWN).
func (a *Affected) Contains(id int) bool { return a.ACN[id] || a.AWN[id] }

// Size returns |ACN| + |AWN| (the "Affected" column of Table 2).
func (a *Affected) Size() int { return len(a.ACN) + len(a.AWN) }

// ACNLines returns the sorted source lines of affected conditional nodes.
func (a *Affected) ACNLines() []int { return nodeLines(a.Graph, a.ACN) }

// AWNLines returns the sorted source lines of affected write nodes.
func (a *Affected) AWNLines() []int { return nodeLines(a.Graph, a.AWN) }

func nodeLines(g *cfg.Graph, set map[int]bool) []int {
	var out []int
	for id := range set {
		out = append(out, g.Nodes[id].Line)
	}
	sort.Ints(out)
	return out
}

// Options tunes the affected-set computation, mostly for ablation studies.
type Options struct {
	// SkipEq4 disables the reaching-definitions rule of Fig. 4. The analysis
	// then under-approximates: in the paper's example it loses node n5 (the
	// write feeding the affected conditionals). Used by ablation benchmarks.
	SkipEq4 bool
	// TransitiveWrites is an extension beyond the published rules: it adds
	// the forward dataflow rule
	//
	//	if ni ∈ AWN ∧ nj ∈ Write ∧ Def(ni) ∈ Use(nj) ∧ IsCFGPath(ni, nj)
	//	then AWN := AWN ∪ {nj}
	//
	// closing the write→write chain gap of the published Eq. (1)–(4) (see
	// DESIGN.md §6.4): with it, a change to "x = ..." also affects a later
	// "y = x" and, through Eq. (3), a conditional on y. Off by default to
	// stay faithful to the paper.
	TransitiveWrites bool
}

// ComputeAffected runs phase 1 of DiSE: it lifts the diff marks onto the
// CFGs, runs the removeNodes algorithm for instructions removed from the
// base version, seeds the sets with changed/added nodes of the modified
// version, and applies the rules of Fig. 3 and Fig. 4 to a fixed point.
func ComputeAffected(gBase, gMod *cfg.Graph, d *diff.Result, opts Options) *Affected {
	nm := LiftMarks(d, gBase, gMod)
	a := &Affected{Graph: gMod, ACN: map[int]bool{}, AWN: map[int]bool{}}

	// removeNodes (Fig. 5(a)): compute nodes of the base CFG influenced by
	// removed instructions, then map them into the modified CFG.
	removedACN := map[int]bool{}
	removedAWN := map[int]bool{}
	anyRemoved := false
	for n, mark := range nm.Base {
		if mark != diff.Removed {
			continue
		}
		anyRemoved = true
		switch {
		case n.IsCond():
			removedACN[n.ID] = true
		case n.IsWrite():
			removedAWN[n.ID] = true
		}
		a.ChangedNodes++
	}
	if anyRemoved {
		applyRules(gBase, removedACN, removedAWN, opts)
		if !opts.SkipEq4 {
			applyEq4(gBase, removedACN, removedAWN)
		}
		// updateSets: map base nodes through diffMap; removed nodes (absent
		// from the map) drop out.
		for id := range removedACN {
			if mn, ok := nm.DiffMap[gBase.Nodes[id]]; ok && mn.IsCond() {
				a.ACN[mn.ID] = true
			}
		}
		for id := range removedAWN {
			if mn, ok := nm.DiffMap[gBase.Nodes[id]]; ok && mn.IsWrite() {
				a.AWN[mn.ID] = true
			}
		}
	}

	// Seed with changed and added nodes of the modified CFG.
	for n, mark := range nm.Mod {
		if mark != diff.Changed && mark != diff.Added {
			continue
		}
		a.ChangedNodes++
		switch {
		case n.IsCond():
			a.ACN[n.ID] = true
		case n.IsWrite():
			a.AWN[n.ID] = true
		}
	}

	applyRules(gMod, a.ACN, a.AWN, opts)
	if !opts.SkipEq4 {
		applyEq4(gMod, a.ACN, a.AWN)
	}
	return a
}

// applyRules iterates Eq. (1), (2) and (3) of Fig. 3 until the sets stop
// growing — plus, when enabled, the transitive-writes extension rule.
// Termination: the sets only grow and are bounded by |N|.
func applyRules(g *cfg.Graph, acn, awn map[int]bool, opts Options) {
	//diselint:ignore interruptloop bounded fixpoint: the sets only grow and are capped at |N|
	for changed := true; changed; {
		changed = false
		// Eq. (1) and Eq. (2): control dependence on an affected conditional.
		for id := range acn {
			ni := g.Nodes[id]
			for _, nj := range g.Nodes {
				if !g.ControlD(ni, nj) {
					continue
				}
				switch {
				case nj.IsCond() && !acn[nj.ID]:
					acn[nj.ID] = true
					changed = true
				case nj.IsWrite() && !awn[nj.ID]:
					awn[nj.ID] = true
					changed = true
				}
			}
		}
		// Eq. (3): conditionals that use a variable defined at an affected
		// write, with a CFG path from the write to the use.
		for id := range awn {
			ni := g.Nodes[id]
			if ni.Def == "" {
				continue
			}
			for _, nj := range g.Nodes {
				if !nj.IsCond() || acn[nj.ID] || !nj.Use[ni.Def] {
					continue
				}
				if g.IsCFGPath(ni, nj) {
					acn[nj.ID] = true
					changed = true
				}
			}
		}
		// Extension: forward write→write dataflow (Options.TransitiveWrites).
		if opts.TransitiveWrites {
			for id := range awn {
				ni := g.Nodes[id]
				if ni.Def == "" {
					continue
				}
				for _, nj := range g.Nodes {
					if !nj.IsWrite() || awn[nj.ID] || !nj.Use[ni.Def] {
						continue
					}
					if g.IsCFGPath(ni, nj) {
						awn[nj.ID] = true
						changed = true
					}
				}
			}
		}
	}
}

// applyEq4 iterates Eq. (4) of Fig. 4 until fixpoint: any write whose
// definition may reach a use at an affected node becomes an affected write.
func applyEq4(g *cfg.Graph, acn, awn map[int]bool) {
	//diselint:ignore interruptloop bounded fixpoint: the sets only grow and are capped at |N|
	for changed := true; changed; {
		changed = false
		for _, ni := range g.Nodes {
			if !ni.IsWrite() || awn[ni.ID] || ni.Def == "" {
				continue
			}
			// Eq. (4) quantifies over acn ∪ awn; checking each set in turn
			// avoids materializing the union on every fixpoint iteration
			// (revisiting an id in both sets is harmless — the predicate is
			// pure).
			if defReachesUse(g, ni, acn) || defReachesUse(g, ni, awn) {
				awn[ni.ID] = true
				changed = true
			}
		}
	}
}

// defReachesUse reports whether ni's definition may reach a use at any node
// of set. The result is a plain disjunction, so map order cannot leak out.
func defReachesUse(g *cfg.Graph, ni *cfg.Node, set map[int]bool) bool {
	for id := range set {
		nj := g.Nodes[id]
		if nj.Use[ni.Def] && g.IsCFGPath(ni, nj) {
			return true
		}
	}
	return false
}
