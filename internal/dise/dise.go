package dise

import (
	"fmt"

	"dise/internal/cfg"
	"dise/internal/diff"
	"dise/internal/lang/ast"
	"dise/internal/symexec"
)

// Result bundles everything DiSE computes for a pair of program versions.
type Result struct {
	// Diff is the statement-level differential analysis.
	Diff *diff.Result
	// BaseGraph and ModGraph are the two CFGs.
	BaseGraph, ModGraph *cfg.Graph
	// Affected holds the ACN/AWN sets over ModGraph.
	Affected *Affected
	// Summary contains the affected path conditions and cost counters of the
	// directed symbolic execution on the modified version.
	Summary *symexec.Summary
	// Prune reports directed-search statistics.
	Prune PruneStats
}

// Analyze runs the complete DiSE pipeline on two versions of procedure
// procName: diff → affected locations → directed symbolic execution. The
// returned result contains the affected path conditions of the modified
// version. Per the paper (§3.1), the only inputs are the two program
// versions; no state from previous analysis runs is required.
func Analyze(baseProg, modProg *ast.Program, procName string, config symexec.Config) (*Result, error) {
	return AnalyzeOpts(baseProg, modProg, procName, config, Options{})
}

// AnalyzeOpts is Analyze with explicit affected-set options (ablations).
func AnalyzeOpts(baseProg, modProg *ast.Program, procName string, config symexec.Config, opts Options) (*Result, error) {
	baseProc := baseProg.Proc(procName)
	if baseProc == nil {
		return nil, fmt.Errorf("dise: procedure %q not found in base program", procName)
	}
	// The engine is built on the modified program; it owns the mod CFG.
	engine, err := symexec.New(modProg, procName, config)
	if err != nil {
		return nil, err
	}
	return Run(Job{BaseProc: baseProc, Engine: engine, Opts: opts}), nil
}

// Job bundles the prepared inputs of one directed analysis. It exists so
// that callers holding cached artifacts — a pre-parsed base procedure, its
// prebuilt CFG, an engine constructed over a cached modified program — can
// run the pipeline without re-doing that work, and so that path conditions
// can be streamed as the search finds them.
type Job struct {
	// BaseProc is the base version of the procedure under analysis.
	BaseProc *ast.Procedure
	// BaseGraph is an optional prebuilt CFG of BaseProc; built when nil.
	BaseGraph *cfg.Graph
	// Diff is an optional precomputed diff of BaseProc against the engine's
	// procedure; computed when nil. Version-chain sessions pass it in so the
	// one diff drives both the affected sets and the memo-trie rekeying.
	Diff *diff.Result
	// Engine executes the modified version (it owns the modified CFG).
	Engine *symexec.Engine
	// Opts tunes the affected-set computation.
	Opts Options
	// OnPath, when non-nil, receives each affected path as it is found;
	// returning false stops the search early (Runner.OnPath).
	OnPath func(symexec.Path) bool
}

// Run executes the DiSE pipeline — diff → affected locations → directed
// symbolic execution — on a prepared job.
func Run(job Job) *Result {
	baseGraph := job.BaseGraph
	if baseGraph == nil {
		baseGraph = cfg.Build(job.BaseProc)
	}
	engine := job.Engine
	d := job.Diff
	if d == nil {
		d = diff.Procedures(job.BaseProc, engine.Proc)
	}
	affected := ComputeAffected(baseGraph, engine.Graph, d, job.Opts)
	runner := NewRunner(engine, affected)
	runner.OnPath = job.OnPath
	summary := runner.Run()
	return &Result{
		Diff:      d,
		BaseGraph: baseGraph,
		ModGraph:  engine.Graph,
		Affected:  affected,
		Summary:   summary,
		Prune:     runner.PruneStats,
	}
}

// AffectedSequence projects a trace onto the affected nodes, the object of
// Theorem 3.10: the sequence of affected node IDs visited by a path.
func (a *Affected) AffectedSequence(trace []int) []int {
	var out []int
	for _, id := range trace {
		if a.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// SequenceKey renders an affected sequence as a comparable string.
func SequenceKey(seq []int) string {
	key := make([]byte, 0, len(seq)*3)
	for _, id := range seq {
		key = append(key, byte('n'))
		key = fmt.Appendf(key, "%d.", id)
	}
	return string(key)
}
