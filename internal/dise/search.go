package dise

import (
	"sync"
	"time"

	"dise/internal/cfg"
	"dise/internal/symexec"
)

// This file implements phase 2 of DiSE: the directed symbolic execution of
// Fig. 6 in the paper, realized as a Pruner plugged into the exploration
// scheduler of internal/symexec. Four global sets — ExCond/ExWrite (explored
// affected nodes) and UnExCond/UnExWrite (affected nodes still to be
// explored) — steer the search: a successor state is explored only if some
// unexplored affected node is reachable from it (AffectedLocIsReachable);
// when exploration moves past a node from which previously-explored affected
// nodes are reachable again on a new path, those nodes are reset to
// unexplored so every sequence of affected nodes gets covered
// (ResetUnExploredSet); loop SCCs are reset wholesale at loop entries
// (CheckLoops).
//
// Depth-first order is the default strategy, not an invariant of the
// machinery — but it is privileged: the pruning decisions above are
// order-sensitive (which concrete path represents an affected-node sequence
// depends on the order decisions are made), and the paper's Theorem 3.10
// one-path-per-affected-sequence guarantee is stated over depth-first
// exploration. The scheduler therefore commits this pruner's decisions in
// canonical depth-first tree order at every strategy and parallelism level;
// a non-DFS strategy reorders the *speculative* expansion of states ahead of
// the committed walk (see internal/symexec/scheduler.go), never the
// decisions, so the reported affected path conditions are byte-identical to
// the classic sequential search.

// Runner executes the directed search over a symbolic execution engine for
// the modified program version. It implements symexec.Pruner; the engine's
// Config fixes the search strategy and parallelism.
type Runner struct {
	Engine   *symexec.Engine
	Affected *Affected

	// OnPath, when non-nil, is invoked for every affected path as it is
	// collected, before it is appended to the summary — always from the
	// committed walk's goroutine, never concurrently. Returning false stops
	// the search; the summary then holds the paths delivered so far. This is
	// the streaming hook behind the facade's AnalyzeStream.
	OnPath func(symexec.Path) bool

	// setsMu guards the four affected-node sets. Only the committed walk
	// mutates them (single goroutine, so its own reads are unsynchronized);
	// the directed strategy's score function reads them from worker
	// goroutines under RLock.
	setsMu    sync.RWMutex
	exCond    map[int]bool
	exWrite   map[int]bool
	unExCond  map[int]bool
	unExWrite map[int]bool
	stopped   bool

	// unScratch/exScratch back the set snapshots of
	// affectedLocIsReachable, reused across calls. Safe without locking:
	// every Pruner hook runs on the committed walk's goroutine.
	unScratch []int
	exScratch []int

	summary *symexec.Summary

	// PruneStats counts directed-search-specific events.
	PruneStats PruneStats
}

// PruneStats reports how much work the directed search avoided or discarded.
type PruneStats struct {
	// PrunedStates counts generated successor states rejected by
	// AffectedLocIsReachable.
	PrunedStates int
	// UnaffectedPaths counts explored paths that never touched an affected
	// node (possible when infeasible branches consume the targets the path
	// was steering toward); they are not part of DiSE's output.
	UnaffectedPaths int
	// Resets counts explored→unexplored transitions.
	Resets int
}

// NewRunner prepares a directed search. The engine must execute the modified
// version of the procedure whose CFG the affected sets were computed on.
func NewRunner(engine *symexec.Engine, affected *Affected) *Runner {
	r := &Runner{
		Engine:    engine,
		Affected:  affected,
		exCond:    map[int]bool{},
		exWrite:   map[int]bool{},
		unExCond:  map[int]bool{},
		unExWrite: map[int]bool{},
	}
	for id := range affected.ACN {
		r.unExCond[id] = true
	}
	for id := range affected.AWN {
		r.unExWrite[id] = true
	}
	return r
}

// Run performs the directed symbolic execution and returns the summary of
// affected path conditions.
func (r *Runner) Run() *symexec.Summary {
	start := time.Now()
	r.summary = &symexec.Summary{}
	explorer := symexec.NewExplorer(r.Engine, symexec.ExploreOptions{
		Pruner: r,
		Score:  r.distanceToUnexplored,
	})
	stats := explorer.Run().Stats
	stats.Time = time.Since(start)
	r.summary.Stats = stats
	return r.summary
}

// --- symexec.Pruner hooks (Fig. 6, committed in depth-first order) -----------

// Stopped reports a streaming early stop (OnPath returned false).
func (r *Runner) Stopped() bool { return r.stopped }

// Enter is lines 5–7 of Fig. 6: depth bound, error handling, and marking the
// state's node explored. Error states correspond to assertion violations
// (§5.1); we record them so DiSE supports bug finding, then stop exploring
// the path.
func (r *Runner) Enter(s *symexec.State) bool {
	if s.Depth > r.Engine.DepthBound() {
		return false
	}
	if s.Node.Kind == cfg.KindError {
		r.collect(s)
		return false
	}
	r.updateExploredSet(s.Node.ID)
	return true
}

// Expanded marks branch targets proven infeasible as explored: the executor
// reached the target instruction even though no state continues through it.
// Without this, an affected node behind an infeasible branch stays
// "unexplored" forever and attracts exploration of unaffected variants,
// inflating DiSE's output beyond the paper's numbers (§2.2 reports exactly 7
// path conditions for the motivating example, which requires the infeasible
// PedalCmd == 2 arms to stop attracting the search).
//
// Note the known incompleteness this inherits from the published algorithm:
// a node consumed here may be feasible under a different path prefix, and if
// the search later reaches that prefix with no unexplored affected node in
// sight (no "beacon" to trigger the reset machinery of lines 21–23), the new
// sequence is pruned. The paper's Theorem 3.10 idealizes this away; the
// randomized property test quantifies it (DESIGN.md §6.5).
func (r *Runner) Expanded(s *symexec.State, step symexec.Step) {
	for _, t := range step.InfeasibleTargets {
		r.updateExploredSet(t.ID)
	}
}

// Child is lines 8–10 of Fig. 6: explore successors whose paths can still
// reach unexplored affected nodes. Assertion-violation successors (§5.1) are
// always reported — a change that makes an assertion violable must not be
// pruned away by the reachability filter.
func (r *Runner) Child(c *symexec.State) symexec.ChildVerdict {
	switch {
	case c.Node.Kind == cfg.KindError:
		r.collect(c)
		return symexec.ChildEmit
	case r.affectedLocIsReachable(c):
		return symexec.ChildDescend
	default:
		r.PruneStats.PrunedStates++
		// Pruning is change-dependent (it depends on which nodes THIS pair of
		// versions affected) and order-sensitive, so the memo trie records it
		// as a decision to re-make, never to replay: the next version's
		// search re-decides reachability against its own affected sets, and
		// only solver verdicts — version-independent facts — are reused.
		c.MarkMemoPruned()
		return symexec.ChildPrune
	}
}

// Maximal handles a state with no explored successors: it terminates a
// maximal explored path whose path condition is complete with respect to the
// affected nodes (every affected node the path could reach has been
// covered), so it is emitted — unless the path never touched an affected
// conditional, in which case its path condition is unaffected by the change
// and DiSE does not report it.
func (r *Runner) Maximal(s *symexec.State) {
	if !r.Engine.Terminal(s) && s.Depth >= r.Engine.DepthBound() {
		// Depth-bounded, incomplete path: dropped, as in SPF.
		return
	}
	r.collect(s)
}

// distanceToUnexplored scores a state for the directed priority strategy:
// the CFG hop distance from the state's node to the nearest affected node
// still unexplored, so speculation is spent where the search is heading.
// States with no unexplored affected node in reach sort last.
func (r *Runner) distanceToUnexplored(s *symexec.State) int {
	g := r.Engine.Graph
	best := int(^uint(0) >> 1)
	r.setsMu.RLock()
	defer r.setsMu.RUnlock()
	for _, set := range []map[int]bool{r.unExCond, r.unExWrite} {
		for id := range set {
			if d := g.Dist(s.Node.ID, id); d >= 0 && d < best {
				best = d
			}
		}
	}
	return best
}

// collect emits the path ending at s if it covers at least one affected
// node: affected conditionals contribute constraints directly, and affected
// writes "indirectly lead to the generation of affected path conditions"
// (§3.1) — a path explored to cover an affected write is reported even when
// no conditional is affected (cf. WBS v4 in the paper's Table 2, which has
// no affected nodes beyond the changed write yet one path condition). The
// node of s itself was visited (UpdateExploredSet ran on it), so it is part
// of the emitted trace even though it has not produced successors.
func (r *Runner) collect(s *symexec.State) {
	trace := s.Trace
	switch s.Node.Kind {
	case cfg.KindCond, cfg.KindWrite, cfg.KindNop:
		trace = append(append([]int{}, s.Trace...), s.Node.ID)
	}
	affected := false
	for _, id := range trace {
		if r.Affected.Contains(id) {
			affected = true
			break
		}
	}
	// A merged state's trace continues one representative sibling; the other
	// constituents' footprints live in Cover (state merging,
	// internal/symexec/merge.go) and count toward affectedness the same way.
	if !affected {
		for _, id := range s.Cover {
			if r.Affected.Contains(id) {
				affected = true
				break
			}
		}
	}
	if !affected {
		r.PruneStats.UnaffectedPaths++
		return
	}
	adjusted := *s
	adjusted.Trace = trace
	path := r.Engine.Collect(&adjusted)
	if r.OnPath != nil && !r.OnPath(path) {
		r.stopped = true
	}
	r.summary.Paths = append(r.summary.Paths, path)
}

// updateExploredSet is UpdateExploredSet of Fig. 6 (lines 30–35).
func (r *Runner) updateExploredSet(id int) {
	r.setsMu.Lock()
	defer r.setsMu.Unlock()
	if r.unExWrite[id] {
		delete(r.unExWrite, id)
		r.exWrite[id] = true
	}
	if r.unExCond[id] {
		delete(r.unExCond, id)
		r.exCond[id] = true
	}
}

// resetUnExploredSet is ResetUnExploredSet of Fig. 6 (lines 37–42).
func (r *Runner) resetUnExploredSet(id int) {
	r.setsMu.Lock()
	defer r.setsMu.Unlock()
	if r.exWrite[id] {
		delete(r.exWrite, id)
		r.unExWrite[id] = true
		r.PruneStats.Resets++
	}
	if r.exCond[id] {
		delete(r.exCond, id)
		r.unExCond[id] = true
		r.PruneStats.Resets++
	}
}

// affectedLocIsReachable is AffectedLocIsReachable of Fig. 6 (lines 13–24):
// it reports whether some unexplored affected node is reachable from the
// state's CFG node, resetting explored nodes that are reachable from such an
// unexplored node so that new sequences of affected nodes get explored.
func (r *Runner) affectedLocIsReachable(si *symexec.State) bool {
	g := r.Engine.Graph
	ni := si.Node
	r.checkLoops(ni)
	// Snapshot the sets (lines 16–17): the reset loop mutates them. The
	// snapshots reuse the runner's scratch buffers — this check runs for
	// every generated successor, and a fresh pair of slices per call was
	// the single largest allocation site of a directed search.
	r.unScratch = keysInto(r.unScratch[:0], r.unExWrite, r.unExCond)
	r.exScratch = keysInto(r.exScratch[:0], r.exWrite, r.exCond)
	unExplored := r.unScratch
	explored := r.exScratch
	isReachable := false
	for _, nj := range unExplored {
		if !g.Reaches(ni.ID, nj) {
			continue
		}
		isReachable = true
		for _, nk := range explored {
			if !g.Reaches(nj, nk) {
				continue
			}
			r.resetUnExploredSet(nk)
		}
	}
	return isReachable
}

// checkLoops is CheckLoops of Fig. 6 (lines 26–28): entering a loop resets
// every affected node of the loop's strongly connected component so that
// sequences of affected nodes across iterations are explored.
func (r *Runner) checkLoops(n *cfg.Node) {
	g := r.Engine.Graph
	if !g.IsLoopEntryNode(n) {
		return
	}
	for _, m := range g.GetSCC(n) {
		r.resetUnExploredSet(m.ID)
	}
}

func keysInto(out []int, sets ...map[int]bool) []int {
	for _, set := range sets {
		// The snapshot is consumed as a set: affectedLocIsReachable reduces
		// it with a plain disjunction and idempotent resets, so element
		// order cannot leak into results, and a sort here would put an
		// O(n log n) pass on the per-successor hot path.
		//diselint:ignore maporder consumed order-insensitively (OR-reduction and idempotent resets); sorting would slow the hot path
		for id := range set {
			out = append(out, id)
		}
	}
	return out
}
