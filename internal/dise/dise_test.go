package dise

import (
	"reflect"
	"strings"
	"testing"

	"dise/internal/cfg"
	"dise/internal/diff"
	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/symexec"
)

// The motivating example of the paper (Fig. 2). In the base version the
// first conditional is "PedalPos == 0"; the modified version has
// "PedalPos <= 0". Line numbers (this string): first cond line 6, writes at
// 7, 9, 11, join write at 13, BSwitch block 14–17, last block 19–24.
const fig2BaseSource = `
int AltPress = 0;
int Meter = 2;

proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos == 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 1;
  } else {
    AltPress = 2;
  }
}
`

const fig2ModSource = `
int AltPress = 0;
int Meter = 2;

proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos <= 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 1;
  } else {
    AltPress = 2;
  }
}
`

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func analyze(t *testing.T, baseSrc, modSrc, proc string) *Result {
	t.Helper()
	res, err := Analyze(mustParse(t, baseSrc), mustParse(t, modSrc), proc, symexec.Config{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// TestFig5bAffectedSets reproduces the affected-set computation of the
// paper's Fig. 5(b): final ACN = {n0, n2, n10, n12} and AWN = {n1, n3, n4,
// n5, n11, n13, n14}, identified here by source line.
func TestFig5bAffectedSets(t *testing.T) {
	res := analyze(t, fig2BaseSource, fig2ModSource, "update")
	a := res.Affected
	// Paper nodes → our lines: n0=6, n2=8, n10=19, n12=21.
	if got, want := a.ACNLines(), []int{6, 8, 19, 21}; !reflect.DeepEqual(got, want) {
		t.Errorf("ACN lines = %v, want %v", got, want)
	}
	// n1=7, n3=9, n4=11, n5=13, n11=20, n13=22, n14=24.
	if got, want := a.AWNLines(), []int{7, 9, 11, 13, 20, 22, 24}; !reflect.DeepEqual(got, want) {
		t.Errorf("AWN lines = %v, want %v", got, want)
	}
	if a.ChangedNodes != 1 {
		t.Errorf("changed nodes = %d, want 1", a.ChangedNodes)
	}
	if a.Size() != 11 {
		t.Errorf("affected size = %d, want 11", a.Size())
	}
}

// TestAblationNoEq4 shows rule Eq. (4) is what pulls in the write at the
// paper's n5 (our line 13): without it the join write is missed.
func TestAblationNoEq4(t *testing.T) {
	base, mod := mustParse(t, fig2BaseSource), mustParse(t, fig2ModSource)
	res, err := AnalyzeOpts(base, mod, "update", symexec.Config{}, Options{SkipEq4: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Affected.AWNLines(), []int{7, 9, 11, 20, 22, 24}; !reflect.DeepEqual(got, want) {
		t.Errorf("AWN lines without Eq4 = %v, want %v (line 13 lost)", got, want)
	}
}

// TestMotivating7vs21 reproduces the headline numbers of §2.2: full symbolic
// execution generates 21 path conditions for the modified update; DiSE
// generates 7.
func TestMotivating7vs21(t *testing.T) {
	res := analyze(t, fig2BaseSource, fig2ModSource, "update")
	if got := len(res.Summary.Paths); got != 7 {
		for _, p := range res.Summary.Paths {
			t.Logf("DiSE PC: %s", p.PCString)
		}
		t.Fatalf("DiSE path conditions = %d, want 7 (paper §2.2)", got)
	}
	full, err := symexec.New(mustParse(t, fig2ModSource), "update", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fullSummary := full.RunFull()
	if got := len(fullSummary.Paths); got != 21 {
		t.Fatalf("full path conditions = %d, want 21", got)
	}
	// DiSE must explore strictly fewer states than full symbolic execution.
	if res.Summary.Stats.StatesExplored >= fullSummary.Stats.StatesExplored {
		t.Errorf("DiSE states %d not fewer than full %d",
			res.Summary.Stats.StatesExplored, fullSummary.Stats.StatesExplored)
	}
}

// TestTable1Pruning verifies the pruning behavior narrated in §2.2 and
// Table 1: paths that differ from an explored path only in the sequence of
// unaffected nodes (the BSwitch block) are pruned, and explored affected
// nodes are reset when a new affected sequence becomes reachable.
func TestTable1Pruning(t *testing.T) {
	res := analyze(t, fig2BaseSource, fig2ModSource, "update")
	// Exactly one of the 7 paths goes through each affected sequence; the
	// BSwitch block appears in only one variant per sequence. Count distinct
	// BSwitch outcomes across DiSE paths: pruning keeps just the first
	// feasible one per affected sequence.
	bswitchLines := map[int]bool{14: true, 16: true}
	g := res.ModGraph
	for _, p := range res.Summary.Paths {
		condsSeen := 0
		for _, id := range p.Trace {
			if bswitchLines[g.Nodes[id].Line] {
				condsSeen++
			}
		}
		// Every emitted path passes through the BSwitch block at most once
		// per conditional (no path explores multiple BSwitch variants).
		if condsSeen > 2 {
			t.Errorf("path %v visits the BSwitch block more than once", p.Trace)
		}
	}
	if res.Prune.PrunedStates == 0 {
		t.Error("expected pruned states")
	}
	if res.Prune.Resets == 0 {
		t.Error("expected explored-set resets (Table 1 line 11)")
	}
}

// fullAffectedSequences projects full symbolic execution paths onto the
// affected sets, keeping non-empty sequences (DiSE's output criterion: a
// path is reported when it covers at least one affected node).
func fullAffectedSequences(t *testing.T, modSrc, proc string, a *Affected, config symexec.Config) map[string]bool {
	t.Helper()
	engine, err := symexec.New(mustParse(t, modSrc), proc, config)
	if err != nil {
		t.Fatal(err)
	}
	full := engine.RunFull()
	out := map[string]bool{}
	for _, p := range full.Paths {
		seq := a.AffectedSequence(p.Trace)
		if len(seq) > 0 {
			out[SequenceKey(seq)] = true
		}
	}
	return out
}

// TestTheorem310OnMotivatingExample checks both directions of Theorem 3.10
// on the motivating example: every affected sequence of a feasible full
// path is covered by exactly one DiSE path, and DiSE paths have pairwise
// distinct affected sequences.
func TestTheorem310OnMotivatingExample(t *testing.T) {
	res := analyze(t, fig2BaseSource, fig2ModSource, "update")
	want := fullAffectedSequences(t, fig2ModSource, "update", res.Affected, symexec.Config{})
	got := map[string]bool{}
	for _, p := range res.Summary.Paths {
		key := SequenceKey(res.Affected.AffectedSequence(p.Trace))
		if got[key] {
			t.Errorf("duplicate affected sequence %s (violates Case II)", key)
		}
		got[key] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("affected sequences differ:\nDiSE: %v\nfull: %v", got, want)
	}
}

func TestIdenticalVersionsExploreNothing(t *testing.T) {
	res := analyze(t, fig2ModSource, fig2ModSource, "update")
	if res.Affected.Size() != 0 {
		t.Errorf("affected size = %d, want 0", res.Affected.Size())
	}
	if len(res.Summary.Paths) != 0 {
		t.Errorf("path conditions = %d, want 0", len(res.Summary.Paths))
	}
	if res.Summary.Stats.StatesExplored > 3 {
		t.Errorf("states explored = %d, want ~2 (immediate prune)", res.Summary.Stats.StatesExplored)
	}
}

// TestChangeWithNoConditionalInfluence mirrors the ASW rows with affected
// nodes but zero path conditions: the changed write feeds no conditional.
func TestChangeWithNoConditionalInfluence(t *testing.T) {
	base := `
proc p(int a, int b) {
  out = a;
  if (b > 0) {
    out2 = 1;
  } else {
    out2 = 2;
  }
}`
	mod := `
proc p(int a, int b) {
  out = a + 1;
  if (b > 0) {
    out2 = 1;
  } else {
    out2 = 2;
  }
}`
	res := analyze(t, base, mod, "p")
	if len(res.Affected.AWN) == 0 {
		t.Fatal("the changed write must be affected")
	}
	if len(res.Affected.ACN) != 0 {
		t.Errorf("no conditional should be affected, got lines %v", res.Affected.ACNLines())
	}
	// The paper's WBS v4 row: a changed write with no affected conditionals
	// still yields one path condition — the single path explored to cover
	// the write (its PC carries no affected constraints).
	if len(res.Summary.Paths) != 1 {
		t.Fatalf("path conditions = %d, want 1 (one path covers the changed write)", len(res.Summary.Paths))
	}
	if got := res.Summary.Paths[0].PCString; got != "true" {
		t.Errorf("PC = %q, want true (write covered before any branching)", got)
	}
	// The branching after the write is pruned: strictly fewer states than
	// full symbolic execution.
	full, err := symexec.New(mustParse(t, mod), "p", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs := full.RunFull()
	if res.Summary.Stats.StatesExplored >= fs.Stats.StatesExplored {
		t.Errorf("DiSE states %d, full %d; want pruning", res.Summary.Stats.StatesExplored, fs.Stats.StatesExplored)
	}
}

// TestChangeAffectingAllPaths mirrors the WBS rows where DiSE generates the
// same number of path conditions as full symbolic execution: the change
// taints the variable feeding every conditional.
func TestChangeAffectingAllPaths(t *testing.T) {
	base := `
proc p(int a) {
  x = a;
  if (x > 0) {
    y = 1;
  } else {
    y = 2;
  }
  if (y > 0) {
    z = 1;
  } else {
    z = 2;
  }
}`
	mod := `
proc p(int a) {
  x = a + 1;
  if (x > 0) {
    y = 1;
  } else {
    y = 2;
  }
  if (y > 0) {
    z = 1;
  } else {
    z = 2;
  }
}`
	res := analyze(t, base, mod, "p")
	full, err := symexec.New(mustParse(t, mod), "p", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fullSummary := full.RunFull()
	if len(res.Summary.Paths) != len(fullSummary.Paths) {
		t.Errorf("DiSE paths = %d, full = %d; change taints everything so they must match",
			len(res.Summary.Paths), len(fullSummary.Paths))
	}
	// Both conditionals affected.
	if got, want := res.Affected.ACNLines(), []int{4, 9}; !reflect.DeepEqual(got, want) {
		t.Errorf("ACN lines = %v, want %v", got, want)
	}
}

// TestRemovedStatementAffectsViaBaseCFG exercises the removeNodes algorithm
// of Fig. 5(a): deleting a write makes downstream conditionals affected.
func TestRemovedStatementAffectsViaBaseCFG(t *testing.T) {
	base := `
proc p(int a) {
  x = a;
  x = x + 5;
  if (x > 10) {
    y = 1;
  } else {
    y = 2;
  }
}`
	mod := `
proc p(int a) {
  x = a;
  if (x > 10) {
    y = 1;
  } else {
    y = 2;
  }
}`
	res := analyze(t, base, mod, "p")
	// The removed write "x = x + 5" defines x, used at the conditional: the
	// conditional in the modified version must be affected.
	if got, want := res.Affected.ACNLines(), []int{4}; !reflect.DeepEqual(got, want) {
		t.Errorf("ACN lines = %v, want %v", got, want)
	}
	if len(res.Summary.Paths) != 2 {
		t.Errorf("path conditions = %d, want 2 (both arms affected)", len(res.Summary.Paths))
	}
	if res.Affected.ChangedNodes != 1 {
		t.Errorf("changed nodes = %d, want 1 (the removed write)", res.Affected.ChangedNodes)
	}
}

// TestRemovedConditionalAffectsViaBaseCFG exercises removeNodes with a
// removed conditional: deleting a guard changes which writes execute, and
// the nodes that were control dependent on the removed guard (mapped
// through diffMap) seed the affected sets.
func TestRemovedConditionalAffectsViaBaseCFG(t *testing.T) {
	base := `
proc p(int a) {
  y = 0;
  if (a > 5) {
    y = 1;
  }
  if (y > 0) {
    out = 1;
  } else {
    out = 2;
  }
}`
	mod := `
proc p(int a) {
  y = 0;
  y = 1;
  if (y > 0) {
    out = 1;
  } else {
    out = 2;
  }
}`
	res := analyze(t, base, mod, "p")
	// The write y = 1 was control dependent on the removed guard in the
	// base version; its mod counterpart must be affected, and through it
	// the conditional on y.
	if len(res.Affected.AWN) == 0 {
		t.Fatal("the formerly guarded write must be affected")
	}
	if got, want := res.Affected.ACNLines(), []int{5}; !reflect.DeepEqual(got, want) {
		t.Errorf("ACN lines = %v, want %v (the y conditional)", got, want)
	}
	// In the modified version y is always 1, so only the out=1 arm is
	// feasible: exactly one affected path.
	if len(res.Summary.Paths) != 1 {
		t.Errorf("paths = %d, want 1", len(res.Summary.Paths))
	}
}

// TestAddedStatement checks added nodes seed the affected sets.
func TestAddedStatement(t *testing.T) {
	base := `
proc p(int a) {
  if (a > 10) {
    y = 1;
  } else {
    y = 2;
  }
  out = y;
}`
	mod := `
proc p(int a) {
  if (a > 10) {
    y = 1;
  } else {
    y = 2;
  }
  y = y * 2;
  out = y;
}`
	res := analyze(t, base, mod, "p")
	if len(res.Affected.AWN) == 0 {
		t.Fatal("added write must be affected")
	}
	// The added write uses y, so Eq. (4) also marks the two y-defining
	// writes in the branch arms: two affected sequences (one per arm), two
	// explored paths.
	if len(res.Summary.Paths) != 2 {
		t.Errorf("paths = %d, want 2", len(res.Summary.Paths))
	}
}

// TestAssertViolationDetectedByDiSE checks §5.1: a change that makes an
// assertion violable yields an affected error path.
func TestAssertViolationDetectedByDiSE(t *testing.T) {
	base := `
proc p(int a) {
  if (a > 100) {
    x = 100;
  } else {
    x = a;
  }
  assert x <= 100;
}`
	mod := `
proc p(int a) {
  if (a > 100) {
    x = a;
  } else {
    x = a;
  }
  assert x <= 100;
}`
	res := analyze(t, base, mod, "p")
	var errPaths int
	for _, p := range res.Summary.Paths {
		if p.Err {
			errPaths++
		}
	}
	if errPaths == 0 {
		t.Error("DiSE must find the assertion violation introduced by the change")
	}
}

// TestLoopCheckLoops exercises the CheckLoops/SCC machinery: a change inside
// a loop body must let DiSE cover affected sequences across iterations.
func TestLoopCheckLoops(t *testing.T) {
	base := `
proc p(int n) {
  i = 0;
  acc = 0;
  while (i < n) {
    acc = acc + 1;
    i = i + 1;
  }
  if (acc > 2) {
    big = 1;
  } else {
    big = 0;
  }
}`
	mod := `
proc p(int n) {
  i = 0;
  acc = 0;
  while (i < n) {
    acc = acc + 2;
    i = i + 1;
  }
  if (acc > 2) {
    big = 1;
  } else {
    big = 0;
  }
}`
	config := symexec.Config{DepthBound: 40}
	res, err := Analyze(mustParse(t, base), mustParse(t, mod), "p", config)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summary.Paths) == 0 {
		t.Fatal("DiSE found no affected paths through the loop")
	}
	// For programs with loops the paper's guarantees are best-effort: the
	// evaluation artifacts are loop-free (§4.1) and Theorem 3.10's proof
	// assumes explorability is path-independent, which loop unrolling under
	// a depth bound breaks. We check the sound direction: every DiSE
	// sequence is a real full-SE sequence, sequences are pairwise distinct,
	// and the loop body's changed write appears repeated (CheckLoops let the
	// search cross iterations).
	want := fullAffectedSequences(t, mod, "p", res.Affected, config)
	got := map[string]bool{}
	maxLen := 0
	for _, p := range res.Summary.Paths {
		seq := res.Affected.AffectedSequence(p.Trace)
		key := SequenceKey(seq)
		if got[key] {
			t.Errorf("duplicate affected sequence %s", key)
		}
		got[key] = true
		// A DiSE path may be pruned right after its last affected node, so
		// its sequence can be a prefix of the corresponding full sequence.
		matched := false
		for fullKey := range want {
			if strings.HasPrefix(fullKey, key) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("DiSE sequence %s is not a prefix of any full-SE sequence", key)
		}
		if len(seq) > maxLen {
			maxLen = len(seq)
		}
	}
	if maxLen < 3 {
		t.Errorf("longest affected sequence has %d nodes; CheckLoops should carry the search across iterations", maxLen)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	base := mustParse(t, "proc a(int x) { y = x; }")
	mod := mustParse(t, "proc b(int x) { y = x; }")
	if _, err := Analyze(base, mod, "b", symexec.Config{}); err == nil {
		t.Error("expected error: procedure missing from base")
	}
	if _, err := Analyze(base, base, "zzz", symexec.Config{}); err == nil {
		t.Error("expected error: procedure missing entirely")
	}
}

func TestLiftMarksMapsNodes(t *testing.T) {
	baseProg := mustParse(t, fig2BaseSource)
	modProg := mustParse(t, fig2ModSource)
	baseProc := baseProg.Proc("update")
	modProc := modProg.Proc("update")
	d := diff.Procedures(baseProc, modProc)
	gBase, gMod := cfg.Build(baseProc), cfg.Build(modProc)
	nm := LiftMarks(d, gBase, gMod)
	// Every statement node of the base CFG must be marked and (since nothing
	// was removed) mapped.
	for _, n := range gBase.StatementNodes() {
		if _, ok := nm.Base[n]; !ok {
			t.Errorf("base node %v unmarked", n)
		}
		if _, ok := nm.DiffMap[n]; !ok {
			t.Errorf("base node %v unmapped", n)
		}
	}
	// The changed conditional maps to the changed conditional.
	bn := gBase.NodeAtLine(6)
	mn := gMod.NodeAtLine(6)
	if nm.DiffMap[bn] != mn {
		t.Error("changed conditional not mapped to its counterpart")
	}
	if nm.Base[bn] != diff.Changed || nm.Mod[mn] != diff.Changed {
		t.Error("changed conditional must be marked changed on both sides")
	}
}

func TestSequenceKey(t *testing.T) {
	if SequenceKey(nil) != "" {
		t.Error("empty sequence key must be empty")
	}
	if SequenceKey([]int{1, 2}) == SequenceKey([]int{12}) {
		t.Error("sequence keys must be unambiguous")
	}
}
