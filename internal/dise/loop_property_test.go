package dise

import (
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/randprog"
	"dise/internal/symexec"
)

// TestLoopModeRandomPrograms fuzzes the directed search on random programs
// WITH bounded loops. The paper's exact guarantees are scoped to loop-free
// code (its artifacts have no loops, §4.1); for loops the implementation
// promises the sound direction only (DESIGN.md §6.3):
//
//   - every DiSE path is a real feasible path: its affected sequence is a
//     prefix of some full-SE sequence;
//   - DiSE never explores more states than full symbolic execution;
//   - when full symbolic execution found affected behaviors and the change
//     is reachable, DiSE reports at least one path.
func TestLoopModeRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("loop fuzzing skipped in -short mode")
	}
	const trials = 80
	covered := 0
	for seed := int64(0); seed < trials; seed++ {
		gen := randprog.New(seed, randprog.Config{MaxStmts: 4, MaxDepth: 2, Loops: true})
		baseProg := gen.Program()
		mutant, descs := gen.Mutate(baseProg, 2)
		modSrc := ast.Pretty(mutant)
		modProg, err := parser.Parse(modSrc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		baseSrc := ast.Pretty(baseProg)
		baseProg, err = parser.Parse(baseSrc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		config := symexec.Config{DepthBound: 250, MaxStates: 200_000}
		res, err := Analyze(baseProg, modProg, "p", config)
		if err != nil {
			t.Fatalf("seed %d: Analyze: %v\n%s", seed, err, modSrc)
		}
		fullEngine, err := symexec.New(modProg, "p", config)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		full := fullEngine.RunFull()
		if full.Stats.MaxStatesHit {
			continue // state space too large to compare meaningfully
		}

		fullSeqs := map[string][]int{}
		for _, p := range full.Paths {
			seq := res.Affected.AffectedSequence(p.Trace)
			if len(seq) > 0 {
				fullSeqs[SequenceKey(seq)] = seq
			}
		}
		// Soundness: DiSE sequences are prefixes of full sequences.
		for _, p := range res.Summary.Paths {
			seq := res.Affected.AffectedSequence(p.Trace)
			matched := false
			for _, fullSeq := range fullSeqs {
				if isPrefix(seq, fullSeq) {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("seed %d (%v): DiSE sequence %s not a prefix of any full sequence\nbase:\n%s\nmod:\n%s",
					seed, descs, SequenceKey(seq), baseSrc, modSrc)
			}
		}
		// Cost: never more states than full exploration.
		if res.Summary.Stats.StatesExplored > full.Stats.StatesExplored {
			t.Fatalf("seed %d: DiSE states %d > full %d\n%s",
				seed, res.Summary.Stats.StatesExplored, full.Stats.StatesExplored, modSrc)
		}
		// Liveness: affected behaviors found by full SE imply DiSE found
		// something.
		if len(fullSeqs) > 0 && len(res.Summary.Paths) == 0 {
			t.Fatalf("seed %d (%v): full SE has %d affected sequences, DiSE found none\nbase:\n%s\nmod:\n%s",
				seed, descs, len(fullSeqs), baseSrc, modSrc)
		}
		if len(fullSeqs) > 0 {
			covered++
		}
	}
	if covered < trials/4 {
		t.Fatalf("only %d/%d trials exercised affected loop behavior; generator too weak", covered, trials)
	}
}
