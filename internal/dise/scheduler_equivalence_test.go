package dise

import (
	"fmt"
	"reflect"
	"testing"

	"dise/internal/artifacts"
	"dise/internal/cfg"
	"dise/internal/diff"
	"dise/internal/symexec"
)

// This file pins the scheduler refactor against the pre-refactor directed
// search: oracleRunner is a transliteration of the recursive DiSE procedure
// (Fig. 6) exactly as it was implemented before pruning moved into a
// symexec.Pruner hook — an outer search loop driving Engine.Step directly.
// The reworked Runner must reproduce it byte for byte (paths, order,
// pruning counters) at the default DFS strategy, and — because pruning
// decisions are committed in depth-first order at every strategy and
// parallelism level — under every other scheduler configuration too.

type oracleRunner struct {
	engine    *symexec.Engine
	affected  *Affected
	exCond    map[int]bool
	exWrite   map[int]bool
	unExCond  map[int]bool
	unExWrite map[int]bool
	pruned    int
}

func newOracle(engine *symexec.Engine, affected *Affected) *oracleRunner {
	o := &oracleRunner{
		engine:    engine,
		affected:  affected,
		exCond:    map[int]bool{},
		exWrite:   map[int]bool{},
		unExCond:  map[int]bool{},
		unExWrite: map[int]bool{},
	}
	for id := range affected.ACN {
		o.unExCond[id] = true
	}
	for id := range affected.AWN {
		o.unExWrite[id] = true
	}
	return o
}

func (o *oracleRunner) run() *symexec.Summary {
	summary := &symexec.Summary{}
	o.dise(o.engine.InitialState(), summary)
	return summary
}

func (o *oracleRunner) dise(s *symexec.State, summary *symexec.Summary) {
	if o.engine.InterruptErr() != nil || o.engine.BudgetExhausted() {
		return
	}
	if s.Depth > o.engine.DepthBound() {
		return
	}
	if s.Node.Kind == cfg.KindError {
		o.collect(s, summary)
		return
	}
	o.updateExploredSet(s.Node.ID)
	step := o.engine.Step(s)
	if o.engine.InterruptErr() != nil {
		return
	}
	for _, t := range step.InfeasibleTargets {
		o.updateExploredSet(t.ID)
	}
	explored := false
	for _, si := range step.Feasible {
		switch {
		case si.Node.Kind == cfg.KindError:
			explored = true
			o.collect(si, summary)
		case o.reachable(si):
			explored = true
			o.dise(si, summary)
		default:
			o.pruned++
		}
	}
	if !explored {
		if !o.engine.Terminal(s) && s.Depth >= o.engine.DepthBound() {
			return
		}
		o.collect(s, summary)
	}
}

func (o *oracleRunner) collect(s *symexec.State, summary *symexec.Summary) {
	trace := s.Trace
	switch s.Node.Kind {
	case cfg.KindCond, cfg.KindWrite, cfg.KindNop:
		trace = append(append([]int{}, s.Trace...), s.Node.ID)
	}
	affected := false
	for _, id := range trace {
		if o.affected.Contains(id) {
			affected = true
			break
		}
	}
	if !affected {
		return
	}
	adjusted := *s
	adjusted.Trace = trace
	summary.Paths = append(summary.Paths, o.engine.Collect(&adjusted))
}

func (o *oracleRunner) updateExploredSet(id int) {
	if o.unExWrite[id] {
		delete(o.unExWrite, id)
		o.exWrite[id] = true
	}
	if o.unExCond[id] {
		delete(o.unExCond, id)
		o.exCond[id] = true
	}
}

func (o *oracleRunner) resetUnExploredSet(id int) {
	if o.exWrite[id] {
		delete(o.exWrite, id)
		o.unExWrite[id] = true
	}
	if o.exCond[id] {
		delete(o.exCond, id)
		o.unExCond[id] = true
	}
}

func (o *oracleRunner) reachable(si *symexec.State) bool {
	g := o.engine.Graph
	ni := si.Node
	if g.IsLoopEntryNode(ni) {
		for _, m := range g.GetSCC(ni) {
			o.resetUnExploredSet(m.ID)
		}
	}
	unExplored := keysInto(nil, o.unExWrite, o.unExCond)
	explored := keysInto(nil, o.exWrite, o.exCond)
	isReachable := false
	for _, nj := range unExplored {
		if !g.Reaches(ni.ID, nj) {
			continue
		}
		isReachable = true
		for _, nk := range explored {
			if g.Reaches(nj, nk) {
				o.resetUnExploredSet(nk)
			}
		}
	}
	return isReachable
}

// oraclePaths runs the pre-refactor recursion on one artifact version.
func oraclePaths(t *testing.T, art artifacts.Artifact, v artifacts.Version) []string {
	t.Helper()
	baseProg, modProg := art.BaseProgram(), art.ProgramFor(v)
	engine, err := symexec.New(modProg, art.Proc, symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	baseGraph := cfg.Build(baseProg.Proc(art.Proc))
	d := diff.Procedures(baseProg.Proc(art.Proc), engine.Proc)
	affected := ComputeAffected(baseGraph, engine.Graph, d, Options{})
	return pathStrings(newOracle(engine, affected).run())
}

// schedulerPaths runs the reworked scheduler-based search with the given
// strategy and parallelism on the same version.
func schedulerPaths(t *testing.T, art artifacts.Artifact, v artifacts.Version, strategy string, par int) []string {
	t.Helper()
	baseProg, modProg := art.BaseProgram(), art.ProgramFor(v)
	res, err := Analyze(baseProg, modProg, art.Proc,
		symexec.Config{Strategy: strategy, ExploreParallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	return pathStrings(res.Summary)
}

func pathStrings(s *symexec.Summary) []string {
	out := make([]string, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = fmt.Sprintf("%s %v err=%v", p.PCString, p.Trace, p.Err)
	}
	return out
}

// TestSchedulerEquivalenceOnArtifacts is the scheduler acceptance gate over
// the paper's full artifact catalog: for all 40 ASW/WBS/OAE versions, every
// (strategy, parallelism) combination yields the identical affected-path
// sequence — not just set — and the DFS sequential run is byte-identical to
// the pre-refactor recursion.
func TestSchedulerEquivalenceOnArtifacts(t *testing.T) {
	combos := []struct {
		strategy string
		par      int
	}{
		{"dfs", 1}, {"dfs", 4},
		{"bfs", 1}, {"bfs", 4},
		{"directed", 1}, {"directed", 4},
	}
	for _, art := range artifacts.All() {
		art := art
		t.Run(art.Name, func(t *testing.T) {
			for _, v := range art.Versions {
				v := v
				t.Run(v.Name, func(t *testing.T) {
					t.Parallel()
					want := oraclePaths(t, art, v)
					for _, c := range combos {
						got := schedulerPaths(t, art, v, c.strategy, c.par)
						if !reflect.DeepEqual(want, got) {
							t.Errorf("%s/par%d: %d paths, oracle has %d — affected paths diverged from the pre-refactor search",
								c.strategy, c.par, len(got), len(want))
						}
					}
				})
			}
		})
	}
}

// TestSchedulerPruneStatsMatchOracle pins the pruner bookkeeping through
// the hook interface: the committed walk must present states to the pruner
// exactly as the recursive search did.
func TestSchedulerPruneStatsMatchOracle(t *testing.T) {
	base, mod := mustParse(t, fig2BaseSource), mustParse(t, fig2ModSource)
	res, err := Analyze(base, mod, "update", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := symexec.New(mustParse(t, fig2ModSource), "update", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	baseGraph := cfg.Build(base.Proc("update"))
	d := diff.Procedures(base.Proc("update"), engine.Proc)
	affected := ComputeAffected(baseGraph, engine.Graph, d, Options{})
	oracle := newOracle(engine, affected)
	oracle.run()
	if res.Prune.PrunedStates != oracle.pruned {
		t.Errorf("pruned states = %d, oracle pruned %d", res.Prune.PrunedStates, oracle.pruned)
	}
	if res.Prune.PrunedStates == 0 {
		t.Error("motivating example must prune states")
	}
}

// TestParallelDiSEStatsDeterministic pins the satellite contract for the
// directed search: repeated parallel runs report identical core exploration
// counters and paths, whatever speculation the workers performed.
func TestParallelDiSEStatsDeterministic(t *testing.T) {
	base, mod := mustParse(t, fig2BaseSource), mustParse(t, fig2ModSource)
	seq, err := Analyze(base, mod, "update", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		par, err := Analyze(mustParse(t, fig2BaseSource), mustParse(t, fig2ModSource), "update",
			symexec.Config{ExploreParallelism: 4, Strategy: "directed"})
		if err != nil {
			t.Fatal(err)
		}
		if par.Summary.Stats.StatesExplored != seq.Summary.Stats.StatesExplored {
			t.Fatalf("run %d: committed states %d, want %d",
				i, par.Summary.Stats.StatesExplored, seq.Summary.Stats.StatesExplored)
		}
		if !reflect.DeepEqual(pathStrings(par.Summary), pathStrings(seq.Summary)) {
			t.Fatalf("run %d: parallel paths differ from sequential", i)
		}
	}
}
