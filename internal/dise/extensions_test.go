package dise

import (
	"testing"

	"dise/internal/symexec"
)

// TestTransitiveWritesExtension exercises the write→write dataflow rule that
// extends the published Eq. (1)–(4) (DESIGN.md §6.4): a change to "x = ..."
// flows through "y = x" into a conditional on y.
func TestTransitiveWritesExtension(t *testing.T) {
	base := `
proc p(int a) {
  x = a;
  y = x;
  if (y > 10) {
    out = 1;
  } else {
    out = 2;
  }
}`
	mod := `
proc p(int a) {
  x = a + 5;
  y = x;
  if (y > 10) {
    out = 1;
  } else {
    out = 2;
  }
}`
	// Published rules: the chain is invisible — the conditional on y is NOT
	// affected (x's new value reaches it only through the y write).
	paperFaithful, err := AnalyzeOpts(mustParse(t, base), mustParse(t, mod), "p", symexec.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paperFaithful.Affected.ACN) != 0 {
		t.Errorf("published rules must not reach the conditional through a write chain, got ACN lines %v",
			paperFaithful.Affected.ACNLines())
	}
	// The changed write is covered by a single path.
	if len(paperFaithful.Summary.Paths) != 1 {
		t.Errorf("paper-faithful paths = %d, want 1", len(paperFaithful.Summary.Paths))
	}

	// Extension: the chain propagates; both arms of the conditional become
	// affected behaviors.
	extended, err := AnalyzeOpts(mustParse(t, base), mustParse(t, mod), "p", symexec.Config{}, Options{TransitiveWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(extended.Affected.ACN), 1; got != want {
		t.Fatalf("extension ACN size = %d, want %d (lines %v)", got, want, extended.Affected.ACNLines())
	}
	if len(extended.Summary.Paths) != 2 {
		t.Errorf("extension paths = %d, want 2 (both arms of the tainted conditional)", len(extended.Summary.Paths))
	}
	// The y write must be in AWN under the extension.
	found := false
	for _, line := range extended.Affected.AWNLines() {
		if line == 4 { // "y = x;"
			found = true
		}
	}
	if !found {
		t.Errorf("extension AWN lines = %v, want to include line 4 (y = x)", extended.Affected.AWNLines())
	}
}

// TestTransitiveWritesLongChain checks the rule iterates to a fixpoint
// through multi-hop chains.
func TestTransitiveWritesLongChain(t *testing.T) {
	base := `
proc p(int a) {
  v1 = a;
  v2 = v1 + 1;
  v3 = v2 + 1;
  v4 = v3 + 1;
  if (v4 > 100) {
    out = 1;
  } else {
    out = 0;
  }
}`
	mod := `
proc p(int a) {
  v1 = a * 2;
  v2 = v1 + 1;
  v3 = v2 + 1;
  v4 = v3 + 1;
  if (v4 > 100) {
    out = 1;
  } else {
    out = 0;
  }
}`
	extended, err := AnalyzeOpts(mustParse(t, base), mustParse(t, mod), "p", symexec.Config{}, Options{TransitiveWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	// All four chain writes affected, conditional affected, both arms explored.
	if got := len(extended.Affected.AWN); got < 4 {
		t.Errorf("AWN size = %d, want >= 4 (full chain)", got)
	}
	if len(extended.Affected.ACN) != 1 {
		t.Errorf("ACN size = %d, want 1", len(extended.Affected.ACN))
	}
	if len(extended.Summary.Paths) != 2 {
		t.Errorf("paths = %d, want 2", len(extended.Summary.Paths))
	}
}

// TestTransitiveWritesDoesNotOverreach: writes unrelated to the change stay
// unaffected even with the extension on.
func TestTransitiveWritesDoesNotOverreach(t *testing.T) {
	base := `
proc p(int a, int b) {
  x = a;
  y = x;
  other = b;
  if (other > 0) {
    lamp = 1;
  } else {
    lamp = 0;
  }
}`
	mod := `
proc p(int a, int b) {
  x = a + 1;
  y = x;
  other = b;
  if (other > 0) {
    lamp = 1;
  } else {
    lamp = 0;
  }
}`
	extended, err := AnalyzeOpts(mustParse(t, base), mustParse(t, mod), "p", symexec.Config{}, Options{TransitiveWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(extended.Affected.ACN) != 0 {
		t.Errorf("unrelated conditional must stay unaffected, ACN lines %v", extended.Affected.ACNLines())
	}
	for _, line := range extended.Affected.AWNLines() {
		if line == 5 { // "other = b;"
			t.Error("write to an unrelated variable must not be affected")
		}
	}
}
