package cfg

import (
	"strings"
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
)

// fig2Source is the motivating example (paper Fig. 2(a)) in the
// mini-language. Line numbers shift relative to the paper, so tests address
// nodes by source line of this string: the changed conditional
// "PedalPos <= 0" is on line 6.
const fig2Source = `
int AltPress = 0;
int Meter = 2;

proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos <= 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 1;
  } else {
    AltPress = 2;
  }
}
`

func buildProc(t *testing.T, src, name string) *Graph {
	t.Helper()
	_, pr, err := parser.ParseProcedure(src, name)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Build(pr)
}

func fig2Graph(t *testing.T) *Graph { return buildProc(t, fig2Source, "update") }

func nodeAt(t *testing.T, g *Graph, line int) *Node {
	t.Helper()
	n := g.NodeAtLine(line)
	if n == nil {
		t.Fatalf("no CFG node at line %d", line)
	}
	return n
}

func TestFig2CFGShape(t *testing.T) {
	g := fig2Graph(t)
	// 15 statement nodes (paper n0..n14) plus begin and end.
	if g.Size() != 17 {
		t.Fatalf("node count = %d, want 17", g.Size())
	}
	conds, writes := 0, 0
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindCond:
			conds++
		case KindWrite:
			writes++
		}
	}
	if conds != 6 {
		t.Errorf("cond nodes = %d, want 6", conds)
	}
	if writes != 9 {
		t.Errorf("write nodes = %d, want 9", writes)
	}
	if len(g.StatementNodes()) != 15 {
		t.Errorf("statement nodes = %d, want 15", len(g.StatementNodes()))
	}

	// begin flows to the changed conditional (paper n0, our line 6).
	n0 := nodeAt(t, g, 6)
	if len(g.Begin.Succs) != 1 || g.Begin.Succs[0].To != n0 {
		t.Errorf("begin successor = %v, want %v", g.Begin.Succs, n0)
	}
	// n0 true -> write at line 7, false -> cond at line 8.
	if got := n0.TrueSucc(); got != nodeAt(t, g, 7) {
		t.Errorf("n0 true successor = %v, want line 7", got)
	}
	if got := n0.FalseSucc(); got != nodeAt(t, g, 8) {
		t.Errorf("n0 false successor = %v, want line 8", got)
	}
	// All three writes of the first if-chain join at line 13.
	join := nodeAt(t, g, 13)
	for _, line := range []int{7, 9, 11} {
		w := nodeAt(t, g, line)
		if len(w.Succs) != 1 || w.Succs[0].To != join {
			t.Errorf("line %d successor = %v, want join at line 13", line, w.Succs)
		}
	}
	// BSwitch == 1 false edge skips to the PedalCmd == 2 cond (line 19).
	b1 := nodeAt(t, g, 16)
	if got := b1.FalseSucc(); got != nodeAt(t, g, 19) {
		t.Errorf("BSwitch==1 false successor = %v, want line 19", got)
	}
	// Last writes flow to end.
	for _, line := range []int{20, 22, 24} {
		w := nodeAt(t, g, line)
		if len(w.Succs) != 1 || w.Succs[0].To != g.End {
			t.Errorf("line %d successor = %v, want end", line, w.Succs)
		}
	}
}

func TestFig2DefUse(t *testing.T) {
	g := fig2Graph(t)
	n0 := nodeAt(t, g, 6)
	if n0.Def != "" {
		t.Errorf("cond node Def = %q, want ⊥ (empty)", n0.Def)
	}
	if !n0.Use["PedalPos"] || len(n0.Use) != 1 {
		t.Errorf("cond node Use = %v, want {PedalPos}", n0.Use)
	}
	w7 := nodeAt(t, g, 7) // PedalCmd = PedalCmd + 1
	if w7.Def != "PedalCmd" {
		t.Errorf("Def(line 7) = %q, want PedalCmd", w7.Def)
	}
	if !w7.Use["PedalCmd"] || len(w7.Use) != 1 {
		t.Errorf("Use(line 7) = %v, want {PedalCmd}", w7.Use)
	}
	w11 := nodeAt(t, g, 11) // PedalCmd = PedalPos
	if w11.Def != "PedalCmd" || !w11.Use["PedalPos"] {
		t.Errorf("line 11 Def=%q Use=%v, want PedalCmd / {PedalPos}", w11.Def, w11.Use)
	}
	vars := g.Vars()
	for _, v := range []string{"AltPress", "Meter", "PedalPos", "BSwitch", "PedalCmd"} {
		if !vars[v] {
			t.Errorf("Vars missing %s (got %v)", v, vars)
		}
	}
}

func TestEveryNodeReachableAndReachesEnd(t *testing.T) {
	g := fig2Graph(t)
	for _, n := range g.Nodes {
		if !g.IsCFGPath(g.Begin, n) {
			t.Errorf("%v not reachable from begin", n)
		}
		if !g.IsCFGPath(n, g.End) {
			t.Errorf("%v does not reach end", n)
		}
	}
}

func TestIsCFGPath(t *testing.T) {
	g := fig2Graph(t)
	n0 := nodeAt(t, g, 6)
	w7 := nodeAt(t, g, 7)
	w9 := nodeAt(t, g, 9)
	join := nodeAt(t, g, 13)
	if !g.IsCFGPath(n0, join) {
		t.Error("n0 should reach the join")
	}
	if g.IsCFGPath(w7, w9) {
		t.Error("sibling branches must not reach each other")
	}
	if g.IsCFGPath(join, n0) {
		t.Error("no back edge: join must not reach n0")
	}
	if !g.IsCFGPath(w7, w7) {
		t.Error("IsCFGPath must be reflexive (Definition 3.2)")
	}
}

func TestPostDominance(t *testing.T) {
	g := fig2Graph(t)
	n0 := nodeAt(t, g, 6)
	w7 := nodeAt(t, g, 7)
	join := nodeAt(t, g, 13)
	// The paper's example: postDom(n0, n5) is true — our join at line 13
	// post-dominates the changed conditional.
	if !g.PostDom(n0, join) {
		t.Error("join must post-dominate n0")
	}
	if g.PostDom(n0, w7) {
		t.Error("then-branch write must not post-dominate n0")
	}
	if !g.PostDom(w7, w7) {
		t.Error("post-dominance must be reflexive")
	}
	if !g.PostDom(n0, g.End) {
		t.Error("end post-dominates everything")
	}
	if g.PostDom(g.End, n0) {
		t.Error("interior node cannot post-dominate end")
	}
}

func TestControlDependence(t *testing.T) {
	g := fig2Graph(t)
	n0 := nodeAt(t, g, 6) // PedalPos <= 0
	w7 := nodeAt(t, g, 7) // then write
	c8 := nodeAt(t, g, 8) // PedalPos == 1
	w9 := nodeAt(t, g, 9) // nested then write
	join := nodeAt(t, g, 13)

	// The paper: "node n1 is control dependent on n0".
	if !g.ControlD(n0, w7) {
		t.Error("w7 must be control dependent on n0")
	}
	if !g.ControlD(n0, c8) {
		t.Error("the else-if cond must be control dependent on n0")
	}
	if !g.ControlD(c8, w9) {
		t.Error("w9 must be control dependent on c8")
	}
	if g.ControlD(n0, join) {
		t.Error("the join must NOT be control dependent on n0")
	}
	if g.ControlD(w7, w9) {
		t.Error("write nodes have a single successor; nothing is control dependent on them")
	}
	if g.ControlD(n0, w9) {
		// w9 requires both n0 false AND c8 true; it is control dependent on
		// c8, and only transitively related to n0.
		t.Error("w9 is directly control dependent on c8, not n0")
	}

	deps := g.ControlDependents(n0)
	for _, d := range deps {
		if !g.ControlD(n0, d) {
			t.Errorf("ControlDependents returned %v that fails ControlD", d)
		}
	}
	if len(deps) != 2 {
		t.Errorf("direct control dependents of n0 = %v, want exactly {w7, c8}", deps)
	}
}

const loopSource = `
proc count(int n) {
  i = 0;
  sum = 0;
  while (i < n) {
    sum = sum + i;
    i = i + 1;
  }
  assert sum >= 0;
}
`

func TestWhileLoopCFG(t *testing.T) {
	g := buildProc(t, loopSource, "count")
	cond := nodeAt(t, g, 5) // while (i < n)
	if cond.Kind != KindCond {
		t.Fatalf("while node kind = %v, want cond", cond.Kind)
	}
	body1 := nodeAt(t, g, 6)
	body2 := nodeAt(t, g, 7)
	if cond.TrueSucc() != body1 {
		t.Errorf("loop true successor = %v, want body line 6", cond.TrueSucc())
	}
	if len(body2.Succs) != 1 || body2.Succs[0].To != cond {
		t.Errorf("loop back edge = %v, want -> cond", body2.Succs)
	}
	// Back edge makes the loop an SCC of size 3.
	scc := g.GetSCC(cond)
	if len(scc) != 3 {
		t.Fatalf("loop SCC size = %d, want 3 (%v)", len(scc), scc)
	}
	if !g.IsLoopEntryNode(cond) {
		t.Error("while cond must be a loop entry node")
	}
	if g.IsLoopEntryNode(body1) {
		t.Error("loop body node must not be a loop entry (no external preds)")
	}
	if g.IsLoopEntryNode(nodeAt(t, g, 3)) {
		t.Error("straight-line node must not be a loop entry")
	}
	// Reachability through the cycle: body reaches cond and vice versa.
	if !g.IsCFGPath(body2, body1) {
		t.Error("loop body must reach itself through the back edge")
	}
}

func TestAssertDesugaring(t *testing.T) {
	g := buildProc(t, loopSource, "count")
	an := nodeAt(t, g, 9) // assert sum >= 0
	if an.Kind != KindCond {
		t.Fatalf("assert node kind = %v, want cond (de-sugared per §5.1)", an.Kind)
	}
	if g.Error == nil {
		t.Fatal("graph has no error node")
	}
	if an.FalseSucc() != g.Error {
		t.Errorf("assert false successor = %v, want error node", an.FalseSucc())
	}
	if an.TrueSucc() != g.End {
		t.Errorf("assert true successor = %v, want end", an.TrueSucc())
	}
	if len(g.Error.Succs) != 1 || g.Error.Succs[0].To != g.End {
		t.Errorf("error node must flow to end, got %v", g.Error.Succs)
	}
}

func TestReturnWiring(t *testing.T) {
	src := `proc p(int x) {
		if (x > 0) {
			return;
		}
		x = 1;
	}`
	g := buildProc(t, src, "p")
	ret := nodeAt(t, g, 3)
	if ret.Kind != KindNop {
		t.Fatalf("return node kind = %v, want nop", ret.Kind)
	}
	if len(ret.Succs) != 1 || ret.Succs[0].To != g.End {
		t.Errorf("return successor = %v, want end", ret.Succs)
	}
	// The assignment after the if must still be reachable via the false edge.
	w := nodeAt(t, g, 5)
	if !g.IsCFGPath(g.Begin, w) {
		t.Error("x = 1 must be reachable via the false branch")
	}
}

func TestEmptyBody(t *testing.T) {
	g := buildProc(t, "proc p() { }", "p")
	if g.Size() != 2 {
		t.Fatalf("empty proc node count = %d, want 2", g.Size())
	}
	if len(g.Begin.Succs) != 1 || g.Begin.Succs[0].To != g.End {
		t.Error("begin must flow to end for an empty body")
	}
}

func TestEmptyLoopBody(t *testing.T) {
	g := buildProc(t, "proc p(bool b) { while (b) { } x = 1; }", "p")
	cond := nodeAt(t, g, 1)
	if cond.TrueSucc() != cond {
		t.Errorf("empty loop true successor = %v, want self loop", cond.TrueSucc())
	}
	if !g.IsLoopEntryNode(cond) {
		t.Error("self-loop cond must be a loop entry node")
	}
	if len(g.GetSCC(cond)) != 1 {
		t.Errorf("self-loop SCC = %v, want singleton", g.GetSCC(cond))
	}
}

func TestNestedLoopsSCC(t *testing.T) {
	src := `proc p(int n) {
		i = 0;
		while (i < n) {
			j = 0;
			while (j < n) {
				j = j + 1;
			}
			i = i + 1;
		}
	}`
	g := buildProc(t, src, "p")
	outer := nodeAt(t, g, 3)
	inner := nodeAt(t, g, 5)
	// Inner and outer loops are one SCC through the nesting (outer -> inner
	// -> back to outer), per Tarjan on the CFG.
	sccOuter := g.GetSCC(outer)
	sccInner := g.GetSCC(inner)
	if len(sccOuter) != len(sccInner) {
		t.Errorf("nested loops should share an SCC: outer %d nodes, inner %d", len(sccOuter), len(sccInner))
	}
	if !g.IsLoopEntryNode(outer) {
		t.Error("outer cond must be loop entry")
	}
}

func TestIfWithoutElseJoin(t *testing.T) {
	src := `proc p(int x) {
		if (x > 0) {
			x = 1;
		}
		x = 2;
	}`
	g := buildProc(t, src, "p")
	c := nodeAt(t, g, 2)
	join := nodeAt(t, g, 5)
	if c.FalseSucc() != join {
		t.Errorf("if-without-else false successor = %v, want join", c.FalseSucc())
	}
	if got := nodeAt(t, g, 3).Succs[0].To; got != join {
		t.Errorf("then exit = %v, want join", got)
	}
}

func TestNodeForStatementMapping(t *testing.T) {
	_, pr, err := parser.ParseProcedure(fig2Source, "update")
	if err != nil {
		t.Fatal(err)
	}
	g := Build(pr)
	seen := 0
	ast.Walk(pr.Body.Stmts, func(s ast.Stmt) {
		if _, isBlock := s.(*ast.Block); isBlock {
			return
		}
		if g.NodeFor(s) == nil {
			t.Errorf("no CFG node for statement %s", s)
		}
		seen++
	})
	if seen != 15 {
		t.Errorf("walked %d statements, want 15", seen)
	}
}

func TestDotOutput(t *testing.T) {
	g := fig2Graph(t)
	dot := g.Dot(DotOptions{Title: "fig2", Highlight: map[int]string{1: "lightcoral"}})
	for _, want := range []string{
		"digraph cfg {",
		"label=\"fig2\"",
		"shape=diamond",
		"shape=oval",
		"fillcolor=\"lightcoral\"",
		"[label=\"true\"]",
		"[label=\"false\"]",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if !b.has(0) || !b.has(64) || !b.has(129) || b.has(1) {
		t.Error("bitset set/has broken")
	}
	if b.count() != 3 {
		t.Errorf("count = %d, want 3", b.count())
	}
	c := newBitset(130)
	c.set(5)
	if changed := c.or(b); !changed {
		t.Error("or should report change")
	}
	if !c.has(0) || !c.has(5) {
		t.Error("or result wrong")
	}
	if changed := c.or(b); changed {
		t.Error("second or should be a no-op")
	}
	d := b.clone()
	d.and(c)
	if d.count() != 3 {
		t.Errorf("and result count = %d, want 3", d.count())
	}
}

// TestHopDistances covers the all-pairs distance analysis the directed
// search strategy orders states by.
func TestHopDistances(t *testing.T) {
	g := fig2Graph(t)
	if d := g.Dist(g.Begin.ID, g.Begin.ID); d != 0 {
		t.Errorf("Dist(begin, begin) = %d, want 0", d)
	}
	if d := g.Dist(g.End.ID, g.Begin.ID); d != -1 {
		t.Errorf("Dist(end, begin) = %d, want -1 (unreachable)", d)
	}
	// Distance to end must be positive from begin and shrink along any edge
	// of a shortest path; check monotonicity over successors.
	dBegin := g.Dist(g.Begin.ID, g.End.ID)
	if dBegin <= 0 {
		t.Fatalf("Dist(begin, end) = %d, want > 0", dBegin)
	}
	bestSucc := dBegin
	for _, e := range g.Begin.Succs {
		if d := g.Dist(e.To.ID, g.End.ID); d >= 0 && d < bestSucc {
			bestSucc = d
		}
	}
	if bestSucc != dBegin-1 {
		t.Errorf("shortest successor distance = %d, want %d", bestSucc, dBegin-1)
	}
	// Dist must agree with reachability everywhere.
	for _, from := range g.Nodes {
		for _, to := range g.Nodes {
			reach := g.Reaches(from.ID, to.ID)
			if (g.Dist(from.ID, to.ID) >= 0) != reach {
				t.Fatalf("Dist(%d,%d) disagrees with Reaches=%v", from.ID, to.ID, reach)
			}
		}
	}
}
