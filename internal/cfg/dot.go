package cfg

import (
	"fmt"
	"sort"
	"strings"
)

// DotOptions controls Graphviz rendering.
type DotOptions struct {
	// Highlight maps node IDs to a fill color name, used to visualize
	// affected/changed nodes as in Fig. 2(b) of the paper.
	Highlight map[int]string
	// Title is an optional graph label.
	Title string
}

// Dot renders the CFG in Graphviz DOT format. Node shapes follow the paper's
// Fig. 2(b): diamonds for conditional branches, boxes for writes, ovals for
// begin/end.
func (g *Graph) Dot(opts DotOptions) string {
	var b strings.Builder
	b.WriteString("digraph cfg {\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, "  label=%q;\n  labelloc=t;\n", opts.Title)
	}
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes {
		shape := "box"
		label := fmt.Sprintf("n%d", n.ID)
		switch n.Kind {
		case KindBegin:
			shape, label = "oval", "begin"
		case KindEnd:
			shape, label = "oval", "end"
		case KindError:
			shape, label = "octagon", "assert-fail"
		case KindCond:
			shape = "diamond"
			label = fmt.Sprintf("n%d\\n%d: %s", n.ID, n.Line, escapeDot(n.Text))
		default:
			label = fmt.Sprintf("n%d\\n%d: %s", n.ID, n.Line, escapeDot(n.Text))
		}
		attrs := fmt.Sprintf("shape=%s, label=\"%s\"", shape, label)
		if color, ok := opts.Highlight[n.ID]; ok {
			attrs += fmt.Sprintf(", style=filled, fillcolor=%q", color)
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, attrs)
	}
	// Deterministic edge order: by from-ID then label then to-ID.
	var edges []Edge
	for _, n := range g.Nodes {
		edges = append(edges, n.Succs...)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From.ID != edges[j].From.ID {
			return edges[i].From.ID < edges[j].From.ID
		}
		if edges[i].Label != edges[j].Label {
			return edges[i].Label < edges[j].Label
		}
		return edges[i].To.ID < edges[j].To.ID
	})
	for _, e := range edges {
		if lbl := e.Label.String(); lbl != "" {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e.From.ID, e.To.ID, lbl)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From.ID, e.To.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
