// Package cfg builds and analyzes control flow graphs for mini-language
// procedures.
//
// The graph model follows Definition 3.1 of the DiSE paper: a CFG is a
// directed graph with a single begin node and a single end node; every node
// is reachable from begin and reaches end. Statements map to nodes as
// follows:
//
//   - assignments become Write nodes (Definition 3.5) carrying a Def variable
//     (Definition 3.6) and a Use set (Definition 3.7),
//   - if/while conditions become Cond nodes (Definition 3.4) with a true and
//     a false successor,
//   - assert statements are de-sugared (paper §5.1) into a Cond node whose
//     false successor is a distinguished Error node that flows to end,
//   - skip becomes a Nop node; return becomes a Nop node whose only successor
//     is end.
//
// The package also provides the relational analyses the DiSE algorithms
// consume: IsCFGPath (Definition 3.2), post-dominance (Definition 3.8),
// control dependence (Definition 3.9), and strongly connected components for
// the CheckLoops procedure (paper Fig. 6).
package cfg

import (
	"fmt"

	"dise/internal/lang/ast"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	KindBegin NodeKind = iota
	KindEnd
	KindCond  // conditional branch instruction (member of Cond set)
	KindWrite // write instruction (member of Write set)
	KindNop   // skip, return
	KindError // assertion-failure sink
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindEnd:
		return "end"
	case KindCond:
		return "cond"
	case KindWrite:
		return "write"
	case KindNop:
		return "nop"
	case KindError:
		return "error"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// EdgeLabel distinguishes branch outcomes.
type EdgeLabel int

// Edge labels. Next is the unconditional fall-through.
const (
	EdgeNext EdgeLabel = iota
	EdgeTrue
	EdgeFalse
)

// String renders the label.
func (l EdgeLabel) String() string {
	switch l {
	case EdgeTrue:
		return "true"
	case EdgeFalse:
		return "false"
	}
	return ""
}

// Edge is a directed CFG edge.
type Edge struct {
	From, To *Node
	Label    EdgeLabel
}

// Node is a CFG node.
type Node struct {
	ID   int
	Kind NodeKind
	Line int    // source line of the originating statement (0 for begin/end)
	Text string // short label: the statement or condition text

	// Stmt is the originating AST statement; nil for begin/end/error nodes.
	Stmt ast.Stmt
	// Cond is the branch condition for Cond nodes, nil otherwise.
	Cond ast.Expr

	// Def is the variable written at a Write node ("" = ⊥, Definition 3.6).
	Def string
	// Use is the set of variables read at this node (Definition 3.7).
	Use map[string]bool

	// Succs are outgoing edges in order; a Cond node has exactly two, the
	// true edge first. Other nodes have at most one.
	Succs []Edge
	// Preds are incoming edges.
	Preds []Edge
}

// IsCond reports membership in the Cond set (Definition 3.4).
func (n *Node) IsCond() bool { return n.Kind == KindCond }

// IsWrite reports membership in the Write set (Definition 3.5).
func (n *Node) IsWrite() bool { return n.Kind == KindWrite }

// TrueSucc returns the true-branch successor of a Cond node.
func (n *Node) TrueSucc() *Node {
	for _, e := range n.Succs {
		if e.Label == EdgeTrue {
			return e.To
		}
	}
	return nil
}

// FalseSucc returns the false-branch successor of a Cond node.
func (n *Node) FalseSucc() *Node {
	for _, e := range n.Succs {
		if e.Label == EdgeFalse {
			return e.To
		}
	}
	return nil
}

// String renders "n3(write l7: PedalCmd = ...)".
func (n *Node) String() string {
	if n.Line > 0 {
		return fmt.Sprintf("n%d(%s l%d: %s)", n.ID, n.Kind, n.Line, n.Text)
	}
	return fmt.Sprintf("n%d(%s)", n.ID, n.Kind)
}

// Graph is the CFG of a single procedure plus cached analyses.
type Graph struct {
	Proc  *ast.Procedure
	Nodes []*Node // indexed by ID
	Begin *Node
	End   *Node
	Error *Node // nil unless the procedure contains asserts

	// stmtNode maps each AST statement to its CFG node (the Cond node for
	// if/while, the Write node for assignments).
	stmtNode map[ast.Stmt]*Node

	// Lazily computed analyses; see analysis.go.
	reach      []bitset
	pdom       []bitset
	sccID      []int
	sccList    [][]*Node
	dist       [][]int32
	stableKeys map[int]string
}

// Reserved stable keys of the nodes that exist independently of any source
// statement. They are identical in every graph, so they correspond across
// any two program versions.
const (
	StableKeyBegin = "^begin"
	StableKeyEnd   = "$end"
	StableKeyError = "!assert-fail"
)

// ensureStableKeys computes the node → stable-key map. Statement nodes take
// the structural path key of their originating statement (ast.StmtKeys);
// begin, end and the assert-failure sink take the reserved keys above.
func (g *Graph) ensureStableKeys() {
	if g.stableKeys != nil {
		return
	}
	keys := make(map[int]string, len(g.Nodes))
	stmtKeys := ast.StmtKeys(g.Proc)
	for _, n := range g.Nodes {
		switch {
		case n == g.Begin:
			keys[n.ID] = StableKeyBegin
		case n == g.End:
			keys[n.ID] = StableKeyEnd
		case n == g.Error:
			keys[n.ID] = StableKeyError
		default:
			keys[n.ID] = stmtKeys[n.Stmt]
		}
	}
	g.stableKeys = keys
}

// StableKeys returns the map from node ID to the node's stable key: an
// identity derived from the originating statement's structural position, not
// from node numbering or source lines. Two builds of the same source assign
// identical keys, and the cross-version correspondence map of internal/diff
// relates the keys of unchanged statements between two program versions —
// which is what lets the memoized execution-tree trie (internal/memo)
// recognize a node across an edit. The returned map is the graph's cache:
// callers must treat it as read-only.
func (g *Graph) StableKeys() map[int]string {
	g.ensureStableKeys()
	return g.stableKeys
}

// NodeFor returns the CFG node created for statement s, or nil.
func (g *Graph) NodeFor(s ast.Stmt) *Node { return g.stmtNode[s] }

// NodeAtLine returns the first statement node whose source line is line, or
// nil. Lines identify nodes uniquely in the pretty-printed form used by the
// artifacts (one statement per line), which mirrors how the paper labels CFG
// nodes with source lines.
func (g *Graph) NodeAtLine(line int) *Node {
	for _, n := range g.Nodes {
		if n.Line == line && n.Stmt != nil {
			return n
		}
	}
	return nil
}

// Size returns the number of nodes including begin and end.
func (g *Graph) Size() int { return len(g.Nodes) }

// StatementNodes returns the nodes that correspond to source statements
// (Cond, Write, Nop), in ID order — i.e. excluding begin/end/error.
func (g *Graph) StatementNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindCond, KindWrite, KindNop:
			out = append(out, n)
		}
	}
	return out
}

// builder accumulates nodes while walking the AST.
type builder struct {
	g *Graph
	// pendingEnd records edges that must target the end node (returns and the
	// assert-failure sink) but are created before the end node exists.
	pendingEnd []dangling
}

// Build constructs the CFG for procedure pr.
func Build(pr *ast.Procedure) *Graph {
	g := &Graph{Proc: pr, stmtNode: map[ast.Stmt]*Node{}}
	b := &builder{g: g}
	g.Begin = b.newNode(KindBegin, 0, "begin", nil)
	// Build the body; collect dangling exits that flow to end.
	entry, exits := b.buildStmts(pr.Body.Stmts)
	g.End = b.newNode(KindEnd, 0, "end", nil)
	if entry == nil {
		// Empty body: begin flows straight to end.
		b.edge(g.Begin, g.End, EdgeNext)
	} else {
		b.edge(g.Begin, entry, EdgeNext)
		for _, x := range exits {
			b.edge(x.from, g.End, x.label)
		}
	}
	// Late-created return/assert-error edges already target g.End via
	// deferred wiring performed above; see pendingEnd handling in buildStmts.
	for _, pe := range b.pendingEnd {
		b.edge(pe.from, g.End, pe.label)
	}
	return g
}

// dangling is an edge whose target is not yet known.
type dangling struct {
	from  *Node
	label EdgeLabel
}

func (b *builder) newNode(kind NodeKind, line int, text string, stmt ast.Stmt) *Node {
	n := &Node{
		ID:   len(b.g.Nodes),
		Kind: kind,
		Line: line,
		Text: text,
		Stmt: stmt,
		Use:  map[string]bool{},
	}
	b.g.Nodes = append(b.g.Nodes, n)
	if stmt != nil {
		b.g.stmtNode[stmt] = n
	}
	return n
}

func (b *builder) edge(from, to *Node, label EdgeLabel) {
	e := Edge{From: from, To: to, Label: label}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// buildStmts builds the subgraph for a statement list. It returns the entry
// node (nil if the list creates no nodes) and the dangling exits that should
// be wired to whatever follows.
func (b *builder) buildStmts(stmts []ast.Stmt) (*Node, []dangling) {
	var entry *Node
	// exits are the dangling out-edges of the portion built so far.
	var exits []dangling
	attach := func(n *Node) {
		if entry == nil {
			entry = n
		}
		for _, x := range exits {
			b.edge(x.from, n, x.label)
		}
		exits = nil
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.Assign:
			n := b.newNode(KindWrite, s.Pos().Line, s.String(), s)
			n.Def = s.Name
			for v := range ast.Vars(s.Value) {
				n.Use[v] = true
			}
			attach(n)
			exits = []dangling{{n, EdgeNext}}
		case *ast.Skip:
			n := b.newNode(KindNop, s.Pos().Line, "skip", s)
			attach(n)
			exits = []dangling{{n, EdgeNext}}
		case *ast.Return:
			n := b.newNode(KindNop, s.Pos().Line, "return", s)
			attach(n)
			b.pendingEnd = append(b.pendingEnd, dangling{n, EdgeNext})
			// No fall-through: statements after return are unreachable and,
			// to keep the single-entry/single-exit invariant simple, we stop
			// wiring the remainder of this block.
			return entry, nil
		case *ast.Assert:
			n := b.newNode(KindCond, s.Pos().Line, "assert "+s.Cond.String(), s)
			n.Cond = s.Cond
			for v := range ast.Vars(s.Cond) {
				n.Use[v] = true
			}
			attach(n)
			if b.g.Error == nil {
				b.g.Error = b.newNode(KindError, 0, "assert-fail", nil)
				b.pendingEnd = append(b.pendingEnd, dangling{b.g.Error, EdgeNext})
			}
			b.edge(n, b.g.Error, EdgeFalse)
			exits = []dangling{{n, EdgeTrue}}
		case *ast.If:
			n := b.newNode(KindCond, s.Pos().Line, s.Cond.String(), s)
			n.Cond = s.Cond
			for v := range ast.Vars(s.Cond) {
				n.Use[v] = true
			}
			attach(n)
			thenEntry, thenExits := b.buildStmts(s.Then.Stmts)
			if thenEntry != nil {
				b.edge(n, thenEntry, EdgeTrue)
				exits = append(exits, thenExits...)
			} else {
				exits = append(exits, dangling{n, EdgeTrue})
			}
			if s.Else != nil {
				elseEntry, elseExits := b.buildStmts(s.Else.Stmts)
				if elseEntry != nil {
					b.edge(n, elseEntry, EdgeFalse)
					exits = append(exits, elseExits...)
				} else {
					exits = append(exits, dangling{n, EdgeFalse})
				}
			} else {
				exits = append(exits, dangling{n, EdgeFalse})
			}
		case *ast.While:
			n := b.newNode(KindCond, s.Pos().Line, s.Cond.String(), s)
			n.Cond = s.Cond
			for v := range ast.Vars(s.Cond) {
				n.Use[v] = true
			}
			attach(n)
			bodyEntry, bodyExits := b.buildStmts(s.Body.Stmts)
			if bodyEntry != nil {
				b.edge(n, bodyEntry, EdgeTrue)
				for _, x := range bodyExits {
					b.edge(x.from, n, x.label) // back edges
				}
			} else {
				b.edge(n, n, EdgeTrue) // empty loop body: self loop
			}
			exits = []dangling{{n, EdgeFalse}}
		case *ast.Block:
			blkEntry, blkExits := b.buildStmts(s.Stmts)
			if blkEntry != nil {
				attach(blkEntry)
				exits = blkExits
			}
		case *ast.Call:
			panic(fmt.Sprintf("cfg.Build: procedure contains a call to %q; expand calls with the inline package before building the CFG", s.Callee))
		default:
			panic(fmt.Sprintf("cfg.Build: unknown statement %T", s))
		}
	}
	return entry, exits
}
