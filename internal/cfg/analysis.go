package cfg

// This file implements the relational analyses of the DiSE paper:
//
//   - IsCFGPath (Definition 3.2): reflexive-transitive reachability,
//   - postDom (Definition 3.8): post-dominance,
//   - controlD (Definition 3.9): control dependence,
//   - GetSCC / IsLoopEntryNode: strongly connected components for the
//     CheckLoops procedure of Fig. 6.
//
// All analyses are computed once on demand and cached on the Graph. Graphs
// are immutable after Build, so the caches never invalidate.

// bitset is a simple dense bitset over node IDs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// or sets b |= c, reporting whether b changed.
func (b bitset) or(c bitset) bool {
	changed := false
	for i := range b {
		old := b[i]
		b[i] |= c[i]
		changed = changed || b[i] != old
	}
	return changed
}

// and sets b &= c.
func (b bitset) and(c bitset) {
	for i := range b {
		b[i] &= c[i]
	}
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Precompute forces all lazily-computed analyses (reachability,
// post-dominance, SCCs, hop distances). A precomputed graph is safe to share
// across goroutines: the analysis caches are only written here, and every
// later accessor is a pure read. Callers that put graphs in a cross-request
// cache must call this before publishing the graph.
func (g *Graph) Precompute() {
	g.ensureReach()
	g.ensurePostDom()
	g.ensureSCC()
	g.ensureDist()
	g.ensureStableKeys()
}

// ensureReach computes the reflexive-transitive reachability relation.
func (g *Graph) ensureReach() {
	if g.reach != nil {
		return
	}
	n := len(g.Nodes)
	reach := make([]bitset, n)
	// Process in reverse topological order where possible; a simple
	// worklist fixpoint is robust to cycles and fast at these sizes.
	for i := range reach {
		reach[i] = newBitset(n)
		reach[i].set(i) // Definition 3.2 admits the single-node sequence.
	}
	changed := true
	for changed {
		changed = false
		for _, node := range g.Nodes {
			for _, e := range node.Succs {
				if reach[node.ID].or(reach[e.To.ID]) {
					changed = true
				}
			}
		}
	}
	g.reach = reach
}

// IsCFGPath reports whether there is a CFG path from ni to nj
// (Definition 3.2). The relation is reflexive: a single node is a path.
func (g *Graph) IsCFGPath(ni, nj *Node) bool {
	g.ensureReach()
	return g.reach[ni.ID].has(nj.ID)
}

// Reaches is IsCFGPath by node ID.
func (g *Graph) Reaches(from, to int) bool {
	g.ensureReach()
	return g.reach[from].has(to)
}

// ensureDist computes all-pairs hop distances with one BFS per node. The
// graphs are procedure CFGs (tens to low hundreds of nodes), so the dense
// V×V matrix is small and the computation is dominated by the reachability
// fixpoint that already runs for every analysis.
func (g *Graph) ensureDist() {
	if g.dist != nil {
		return
	}
	n := len(g.Nodes)
	dist := make([][]int32, n)
	queue := make([]int, 0, n)
	for from := range dist {
		row := make([]int32, n)
		for i := range row {
			row[i] = -1
		}
		row[from] = 0
		queue = queue[:0]
		queue = append(queue, from)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range g.Nodes[v].Succs {
				if w := e.To.ID; row[w] < 0 {
					row[w] = row[v] + 1
					queue = append(queue, w)
				}
			}
		}
		dist[from] = row
	}
	g.dist = dist
}

// Dist returns the minimum number of CFG edges on a path from node `from` to
// node `to`, or -1 when `to` is unreachable from `from`. Directed search
// strategies use it to order states by proximity to a target node.
func (g *Graph) Dist(from, to int) int {
	g.ensureDist()
	return int(g.dist[from][to])
}

// ensurePostDom computes post-dominance sets with the classic iterative
// dataflow: pdom(end) = {end}; pdom(n) = {n} ∪ ⋂_{s ∈ succ(n)} pdom(s).
func (g *Graph) ensurePostDom() {
	if g.pdom != nil {
		return
	}
	n := len(g.Nodes)
	full := newBitset(n)
	for i := 0; i < n; i++ {
		full.set(i)
	}
	pdom := make([]bitset, n)
	for i := range pdom {
		pdom[i] = full.clone()
	}
	end := g.End.ID
	pdom[end] = newBitset(n)
	pdom[end].set(end)
	changed := true
	for changed {
		changed = false
		for i := len(g.Nodes) - 1; i >= 0; i-- {
			node := g.Nodes[i]
			if node.ID == end || len(node.Succs) == 0 {
				continue
			}
			meet := full.clone()
			for _, e := range node.Succs {
				meet.and(pdom[e.To.ID])
			}
			meet.set(node.ID)
			if !equalBits(meet, pdom[node.ID]) {
				pdom[node.ID] = meet
				changed = true
			}
		}
	}
	g.pdom = pdom
}

func equalBits(a, b bitset) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PostDom reports whether nj post-dominates ni (Definition 3.8): every CFG
// path from ni to end passes through nj. The relation is reflexive.
func (g *Graph) PostDom(ni, nj *Node) bool {
	g.ensurePostDom()
	return g.pdom[ni.ID].has(nj.ID)
}

// ControlD reports whether nj is control dependent on ni (Definition 3.9):
// ni has two distinct successors nk and nl such that nj post-dominates nk
// but does not post-dominate nl.
func (g *Graph) ControlD(ni, nj *Node) bool {
	if len(ni.Succs) < 2 {
		return false
	}
	g.ensurePostDom()
	postDominatesSome := false
	missesSome := false
	for _, e := range ni.Succs {
		if g.pdom[e.To.ID].has(nj.ID) {
			postDominatesSome = true
		} else {
			missesSome = true
		}
	}
	return postDominatesSome && missesSome
}

// ControlDependents returns all nodes control dependent on ni, in ID order.
func (g *Graph) ControlDependents(ni *Node) []*Node {
	var out []*Node
	for _, nj := range g.Nodes {
		if g.ControlD(ni, nj) {
			out = append(out, nj)
		}
	}
	return out
}

// ensureSCC runs Tarjan's algorithm, iteratively to avoid deep recursion on
// long straight-line graphs.
func (g *Graph) ensureSCC() {
	if g.sccID != nil {
		return
	}
	n := len(g.Nodes)
	g.sccID = make([]int, n)
	for i := range g.sccID {
		g.sccID[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	counter := 0

	type frame struct {
		v    int
		succ int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		work := []frame{{v: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.succ == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			succs := g.Nodes[v].Succs
			for f.succ < len(succs) {
				w := succs[f.succ].To.ID
				f.succ++
				if index[w] == -1 {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All successors processed: pop.
			if low[v] == index[v] {
				var comp []*Node
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.sccID[w] = len(g.sccList)
					comp = append(comp, g.Nodes[w])
					if w == v {
						break
					}
				}
				g.sccList = append(g.sccList, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
}

// GetSCC returns the strongly connected component containing n (paper
// Fig. 6, CheckLoops). For nodes not on a cycle, the component is {n}.
func (g *Graph) GetSCC(n *Node) []*Node {
	g.ensureSCC()
	return g.sccList[g.sccID[n.ID]]
}

// inCycle reports whether n lies on a cycle: its SCC has more than one node
// or it has a self loop.
func (g *Graph) inCycle(n *Node) bool {
	g.ensureSCC()
	if len(g.sccList[g.sccID[n.ID]]) > 1 {
		return true
	}
	for _, e := range n.Succs {
		if e.To == n {
			return true
		}
	}
	return false
}

// IsLoopEntryNode reports whether n is the entry node of a loop: n lies on a
// cycle and has a predecessor outside its SCC.
func (g *Graph) IsLoopEntryNode(n *Node) bool {
	if !g.inCycle(n) {
		return false
	}
	g.ensureSCC()
	for _, e := range n.Preds {
		if g.sccID[e.From.ID] != g.sccID[n.ID] {
			return true
		}
	}
	return false
}

// Vars returns the set of variable names read or written anywhere in the
// procedure (Definition 3.3).
func (g *Graph) Vars() map[string]bool {
	out := map[string]bool{}
	for _, n := range g.Nodes {
		if n.Def != "" {
			out[n.Def] = true
		}
		for v := range n.Use {
			out[v] = true
		}
	}
	return out
}
