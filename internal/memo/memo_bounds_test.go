package memo

import (
	"testing"

	"dise/internal/sym"
)

// buildChain attaches a linear chain of n nodes under parent, stamping each
// with gen and hits, and returns the first node of the chain.
func buildChain(parent *Node, n int, gen uint64, hits uint32, via int8, cond sym.Expr) *Node {
	first := &Node{Key: "k", Via: via, ViaCond: cond, gen: gen, hits: hits, Expanded: true}
	parent.Succs = append(parent.Succs, first)
	cur := first
	for i := 1; i < n; i++ {
		next := &Node{Key: "k", Via: ViaFlow, gen: gen, hits: hits, Expanded: true}
		cur.Succs = append(cur.Succs, next)
		cur = next
	}
	return first
}

func TestEnforceNoBudgetIsNoop(t *testing.T) {
	var tr Tree
	root := tr.Root("r")
	buildChain(root, 50, 0, 0, ViaTrue, sym.V("c1"))
	if n := tr.Enforce(); n != 0 {
		t.Fatalf("Enforce with no budget evicted %d nodes", n)
	}
	if tr.Size() != 51 {
		t.Fatalf("tree changed size without a budget: %d", tr.Size())
	}
}

func TestEnforceEvictsColdestSubtreeFirst(t *testing.T) {
	var tr Tree
	tr.BeginStep() // gen 1
	root := tr.Root("r")
	cold := buildChain(root, 10, 1, 0, ViaTrue, sym.Cmp(sym.OpLT, sym.V("a"), sym.Int(3)))
	tr.BeginStep() // gen 2
	hot := buildChain(root, 10, 2, 5, ViaFalse, sym.Cmp(sym.OpGE, sym.V("a"), sym.Int(3)))

	tr.SetNodeBudget(11) // root + one chain
	evicted := tr.Enforce()
	if evicted != 10 {
		t.Fatalf("evicted %d nodes, want 10", evicted)
	}
	if tr.Size() != 11 {
		t.Fatalf("size after Enforce = %d, want 11", tr.Size())
	}
	// The stale (gen-1) chain went; the current-step chain stayed.
	if root.Child(ViaTrue, cold.ViaCond) != nil {
		t.Fatal("cold subtree still attached after Enforce")
	}
	if root.Child(ViaFalse, hot.ViaCond) != hot {
		t.Fatal("hot subtree was evicted")
	}
	subtrees, nodes := tr.EvictionStats()
	if subtrees != 1 || nodes != 10 {
		t.Fatalf("eviction stats = (%d, %d), want (1, 10)", subtrees, nodes)
	}
}

func TestEnforceHitAwareAmongEquallyStale(t *testing.T) {
	var tr Tree
	tr.BeginStep()
	root := tr.Root("r")
	unhit := buildChain(root, 8, 1, 0, ViaTrue, sym.V("p"))
	hitten := buildChain(root, 8, 1, 9, ViaFalse, sym.V("q"))
	tr.BeginStep() // both chains now stale

	tr.SetNodeBudget(9)
	if n := tr.Enforce(); n != 8 {
		t.Fatalf("evicted %d, want 8", n)
	}
	if root.Child(ViaTrue, unhit.ViaCond) != nil {
		t.Fatal("never-hit subtree survived over the frequently-hit one")
	}
	if root.Child(ViaFalse, hitten.ViaCond) != hitten {
		t.Fatal("frequently-hit subtree was evicted first")
	}
}

func TestEnforceEvictedMeansColdNeverWrong(t *testing.T) {
	// After eviction the evicted conjunction must look exactly like one the
	// trie never recorded: Child returns nil (fresh node, cold re-solve) —
	// never a node with someone else's verdicts.
	var tr Tree
	tr.BeginStep()
	root := tr.Root("r")
	cond := sym.Cmp(sym.OpEQ, sym.V("x"), sym.Int(7))
	child := buildChain(root, 3, 1, 0, ViaTrue, cond)
	child.Record(cond, true, map[string]int64{"x": 7})
	tr.BeginStep()
	buildChain(root, 3, 2, 0, ViaFalse, sym.NotE(cond))

	tr.SetNodeBudget(4)
	tr.Enforce()
	got := root.Child(ViaTrue, cond)
	if got != nil {
		t.Fatalf("evicted arm still resolves to a recorded node %+v", got)
	}
	// The surviving arm still replays its own facts only.
	if root.Child(ViaFalse, sym.NotE(cond)) == nil {
		t.Fatal("surviving arm lost its node")
	}
}

func TestEnforceDeterministic(t *testing.T) {
	build := func() *Tree {
		var tr Tree
		tr.BeginStep()
		root := tr.Root("r")
		for i := 0; i < 6; i++ {
			buildChain(root, 5, 1, uint32(i%3), ViaTrue, sym.Cmp(sym.OpLT, sym.V("v"), sym.Int(int64(i))))
		}
		tr.SetNodeBudget(16)
		return &tr
	}
	a, b := build(), build()
	a.Enforce()
	b.Enforce()
	if a.Size() != b.Size() {
		t.Fatalf("non-deterministic eviction: sizes %d vs %d", a.Size(), b.Size())
	}
	ra, rb := a.Root(""), b.Root("")
	if len(ra.Succs) != len(rb.Succs) {
		t.Fatalf("non-deterministic eviction: %d vs %d surviving children", len(ra.Succs), len(rb.Succs))
	}
	for i := range ra.Succs {
		if !eqExpr(ra.Succs[i].ViaCond, rb.Succs[i].ViaCond) {
			t.Fatalf("surviving child %d differs between identical runs", i)
		}
	}
}

func TestBytesEstimatorSanity(t *testing.T) {
	var tr Tree
	if tr.Bytes() != 0 {
		t.Fatalf("empty tree reports %d bytes", tr.Bytes())
	}
	root := tr.Root("begin")
	small := tr.Bytes()
	if small <= 0 {
		t.Fatalf("single-node tree reports %d bytes", small)
	}
	cond := sym.Cmp(sym.OpLT, sym.V("x"), sym.Int(1))
	c := buildChain(root, 20, 1, 0, ViaTrue, cond)
	c.Record(cond, true, map[string]int64{"x": 0, "y": 1})
	grown := tr.Bytes()
	if grown <= small {
		t.Fatalf("Bytes did not grow with nodes: %d -> %d", small, grown)
	}
	// Sanity bounds: each node costs at least the struct base and at most a
	// few KB for these tiny nodes.
	n := int64(tr.Size())
	if grown < n*nodeBaseBytes || grown > n*4096 {
		t.Fatalf("Bytes %d implausible for %d nodes", grown, n)
	}
	// Eviction reduces the estimate.
	tr.SetNodeBudget(5)
	tr.BeginStep()
	tr.Enforce()
	if after := tr.Bytes(); after >= grown {
		t.Fatalf("Bytes did not shrink after eviction: %d -> %d", grown, after)
	}
}
