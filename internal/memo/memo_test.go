package memo

import (
	"testing"

	"dise/internal/sym"
)

// Constraint fixtures: condA and its negation, built twice so tests can
// exercise the structural-equality (not pointer-equality) matching path.
func condA() sym.Expr  { return sym.Cmp(sym.OpGT, sym.V("X"), sym.Int(3)) }
func condNA() sym.Expr { return sym.NotE(condA()) }
func condB() sym.Expr  { return sym.Cmp(sym.OpGT, sym.V("Y"), sym.Int(5)) }

// buildTrie assembles a small recorded trie:
//
//	root(^) ──nil──> w(s0) ──nil──> c(s1) ──A──> t(s2)
//	                                   └──¬A──> f(s3)
func buildTrie() (*Tree, *Node, *Node, *Node, *Node) {
	tree := &Tree{}
	root := tree.Root("^")
	w := &Node{Key: "s0", Via: ViaFlow}
	c := &Node{Key: "s1", Via: ViaFlow}
	tNode := &Node{Key: "s2", Via: ViaTrue, ViaCond: condA()}
	fNode := &Node{Key: "s3", Via: ViaFalse, ViaCond: condNA()}
	root.Succs = []*Node{w}
	root.Expanded = true
	w.Succs = []*Node{c}
	w.Expanded = true
	c.Succs = []*Node{tNode, fNode}
	c.Expanded = true
	c.Record(condA(), true, map[string]int64{"X": 4})
	c.Record(condNA(), false, nil)
	return tree, w, c, tNode, fNode
}

func TestChildMatchesArmAndContribution(t *testing.T) {
	_, _, c, tNode, fNode := buildTrie()
	if got := c.Child(ViaTrue, condA()); got != tNode {
		t.Fatalf("Child(true, A) = %v, want the recorded true child", got)
	}
	if got := c.Child(ViaFalse, condNA()); got != fNode {
		t.Fatalf("Child(false, !A) = %v, want the recorded false child", got)
	}
	// Same arm, different contribution: a different conjunction — no match.
	if got := c.Child(ViaTrue, condB()); got != nil {
		t.Fatalf("Child(true, B) = %v, want nil (chain invariant)", got)
	}
	// Same contribution, different arm: the diamond-join guard.
	if got := c.Child(ViaFalse, condA()); got != nil {
		t.Fatalf("Child(false, A) = %v, want nil (arm mismatch)", got)
	}
	// Flow children match the absent contribution only.
	if got := c.Child(ViaTrue, nil); got != nil {
		t.Fatalf("Child(true, nil) = %v, want nil", got)
	}
}

func TestLookupByStructuralEquality(t *testing.T) {
	_, _, c, _, _ := buildTrie()
	if v, ok := c.Lookup(condA()); !ok || !v.Sat || v.Model["X"] != 4 {
		t.Fatalf("Lookup(A) = %+v, %v", v, ok)
	}
	if v, ok := c.Lookup(condNA()); !ok || v.Sat {
		t.Fatalf("Lookup(!A) = %+v, %v", v, ok)
	}
	if _, ok := c.Lookup(condB()); ok {
		t.Fatalf("Lookup(B) matched an unrecorded constraint")
	}
}

func TestRekeyTranslatesAndCounts(t *testing.T) {
	tree, w, c, tNode, _ := buildTrie()
	// s0 changed (no correspondence); everything else survives, with s1
	// shifted to s9 by the edit.
	kept, invalidated := tree.Rekey(map[string]string{
		"^": "^", "s1": "s9", "s2": "s2", "s3": "s3",
	})
	if kept != 4 || invalidated != 1 {
		t.Fatalf("Rekey = kept %d, invalidated %d; want 4, 1", kept, invalidated)
	}
	if w.Key != "" {
		t.Errorf("invalidated node kept its identity %q", w.Key)
	}
	if c.Key != "s9" {
		t.Errorf("surviving node key = %q, want s9", c.Key)
	}
	// Invalidation is identity-level only: recorded facts stay reachable so
	// renderings that still match (or match again after a revert) replay.
	if len(c.Verdicts) != 2 || len(c.Succs) != 2 || c.Succs[0] != tNode {
		t.Errorf("rekey dropped recorded facts: %+v", c)
	}
}

func TestSizeAndInvalidate(t *testing.T) {
	tree, _, _, _, _ := buildTrie()
	if got := tree.Size(); got != 5 {
		t.Fatalf("Size = %d, want 5", got)
	}
	if got := tree.Invalidate(); got != 5 {
		t.Fatalf("Invalidate = %d, want 5", got)
	}
	if got := tree.Size(); got != 0 {
		t.Fatalf("Size after Invalidate = %d, want 0", got)
	}
	// The tree is reusable: Root re-creates.
	if tree.Root("^") == nil || tree.Size() != 1 {
		t.Fatalf("Root after Invalidate did not re-create")
	}
}

func TestRootIsStableAcrossSteps(t *testing.T) {
	tree := &Tree{}
	r1 := tree.Root("^")
	r1.Expanded = true
	if r2 := tree.Root("^"); r2 != r1 || !r2.Expanded {
		t.Fatalf("Root re-created or wiped an existing root")
	}
}
