// Package memo implements the persistent execution-tree trie behind
// version-chain sessions: a memo of one program version's symbolic
// exploration that the next version's directed search replays instead of
// re-solving.
//
// The trie mirrors the symbolic execution tree. Each node records the stable
// key of the CFG node a state executed (cfg.Graph.StableKeys), the solver
// verdicts of the branch constraints evaluated there (constraint, sat/unsat,
// witness model), and the feasible successors in execution order — each
// tagged with the branch arm that produced it and with the arm's
// path-condition contribution (the branch constraint appended to the path
// condition, or nil for arms that add no conjunct). Constraints are
// hash-consed (internal/sym): the smart constructors canonicalize and
// intern them, so comparing a recorded constraint against the current run's
// is a pointer compare, across session steps and engine instances alike.
//
// # Soundness
//
// A recorded verdict is a fact about a constraint conjunction: "under the
// path condition leading here, branch constraint c was (un)satisfiable,
// with this witness". Reusing it for a state is sound exactly when the
// state's path condition is the same conjunction — nothing else matters,
// not even whether the surrounding statements are the "same" statements.
// The trie enforces precisely that criterion structurally, through the
// chain invariant: a successor state is attached to a recorded child only
// when the child's recorded path-condition contribution (ViaCond) equals
// the contribution the current run just computed for that arm; otherwise
// the successor gets a fresh, empty node. Inductively, every attached
// node's recorded data was produced under the state's exact path-condition
// sequence, so verdict lookups (matched by structural equality) decide
// exactly the conjunction the solver would be asked. A changed write
// therefore keeps its recorded subtree alive — writes contribute no
// conjunct, and any downstream constraint its new value influences compares
// unequal and diverges onto fresh nodes right there. Children an expansion
// does not re-match are retained, not discarded: their conjunctions simply
// do not occur in the current version, and a later version that produces
// them again — most commonly by reverting an edit — re-matches them with
// their whole recorded subtrees. The trie is thus an accumulator over the
// chain's history, growing with the distinct conjunctions ever explored.
//
// Node identities (stable keys plus the diff's cross-version correspondence
// map) layer on top: Rekey translates surviving keys into the next
// version's key space, marks the statements the edit touched as
// identity-less, and feeds the kept/invalidated observability counters.
// Identity never substitutes for the chain invariant.
//
// Pruning decisions are deliberately not replayable: which paths a DiSE run
// prunes is order-sensitive and change-dependent (it depends on which nodes
// THIS version pair affected), so every run re-decides them live against
// its own affected sets (see internal/dise); the trie records a Pruned
// marker for observability only. Unknown verdicts (budget- and
// interrupt-dependent) are never recorded.
//
// # Concurrency
//
// One exploration expands each execution-tree state exactly once, and the
// scheduler publishes states to workers under its own synchronization, so
// each trie node is written by exactly one goroutine per run with
// happens-before edges to its children's writers. The Pruned marker is the
// one field written from the committed walk while a speculative worker may
// be writing result fields; the fields are distinct words.
package memo

import (
	"sort"

	"dise/internal/sym"
)

// Verdict is one recorded solver decision: under the path condition leading
// to the trie node, the branch constraint Cond was satisfiable or not, with
// Model the deterministic witness when Sat. Constraints are matched by
// sym.Equal, which on hash-consed expressions is a pointer compare: the
// smart constructors canonicalize and intern, so a structurally equal
// constraint built by a later session step is the very same node — no tree
// walk, no rendering, on any comparison the replay makes.
type Verdict struct {
	Cond  sym.Expr
	Sat   bool
	Model map[string]int64
}

// eqExpr compares two optional constraint contributions: both absent, or
// structurally equal. Hash-consing makes the pointer check decisive in both
// directions for interned expressions; sym.Equal's walk only runs for raw
// literals built by tests.
func eqExpr(a, b sym.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a == b || sym.Equal(a, b)
}

// Branch arm tags for Node.Via.
const (
	// ViaFlow marks the successor of a non-branching node.
	ViaFlow int8 = -1
	// ViaTrue and ViaFalse mark the arm of a conditional that produced the
	// successor. Children are matched by arm, never by position, so a
	// diamond-shaped CFG — both arms reaching the same join node — cannot
	// inherit the other arm's context.
	ViaTrue  int8 = 0
	ViaFalse int8 = 1
)

// Node is one node of the trie: the memo of one execution-tree state.
type Node struct {
	// Key is the stable key of the CFG node the state executes, kept in the
	// key space of the session's current version (Rekey translates it; a
	// structural divergence re-learns it at visit time). Identity is
	// observability and invalidation policy — data validity rests on the
	// chain invariant, not on Key.
	Key string
	// Via tags which arm of the parent produced this state; ViaCond is that
	// arm's path-condition contribution — the branch constraint appended to
	// the path condition, or nil for arms that append nothing (fall-through
	// edges and constant-folded branches). The chain of ViaCond values from
	// the root IS the node's path condition.
	Via     int8
	ViaCond sym.Expr
	// Expanded reports that a recorded run expanded this state, i.e. the
	// Verdicts and Succs below are populated facts rather than a placeholder.
	Expanded bool
	// Pruned reports that the recorded run's pruner cut this state without
	// expanding it — recorded for observability, never replayed.
	Pruned bool
	// Verdicts are the solver decisions taken while expanding this state.
	// Every entry was recorded under the node's chain conjunction, so
	// entries from different session steps (e.g. an upstream write changed a
	// constraint's rendering and both renderings were solved here) coexist
	// as facts about the same prefix.
	Verdicts []Verdict
	// Succs are the feasible successor states' trie nodes in execution order.
	Succs []*Node

	// gen is the tree generation (session step clock, Tree.BeginStep) at
	// which a run last touched this node — entered it, attached it, or
	// created it. Eviction prefers subtrees whose every node is stale:
	// retained-but-unmatched branches that exist only to serve reverted
	// edits. hits counts verdict lookups answered from this node, ever, for
	// hit-rate-aware retention among equally stale subtrees. Both are
	// written only by the node's single per-run writer (the engine's
	// concurrency discipline, see the package comment) or by the tree's
	// owner between runs.
	gen  uint64
	hits uint32
}

// Touch stamps the node with the current tree generation. The engine calls
// it on every node it enters or attaches; eviction treats untouched nodes
// as cold.
func (n *Node) Touch(gen uint64) {
	if gen > n.gen {
		n.gen = gen
	}
}

// Lookup returns the recorded verdict for a branch constraint, matched by
// structural equality.
func (n *Node) Lookup(cond sym.Expr) (Verdict, bool) {
	for _, v := range n.Verdicts {
		if eqExpr(v.Cond, cond) {
			n.hits++
			return v, true
		}
	}
	return Verdict{}, false
}

// Record appends a verdict. Callers must not record Unknown results.
func (n *Node) Record(cond sym.Expr, sat bool, model map[string]int64) {
	n.Verdicts = append(n.Verdicts, Verdict{Cond: cond, Sat: sat, Model: model})
}

// Child returns the recorded successor reached via the given arm with the
// given path-condition contribution, or nil. The ViaCond match is the chain
// invariant's induction step: a child whose recorded contribution differs
// belongs to a different conjunction and must not be attached.
func (n *Node) Child(via int8, viaCond sym.Expr) *Node {
	for _, c := range n.Succs {
		if c != nil && c.Via == via && eqExpr(c.ViaCond, viaCond) {
			return c
		}
	}
	return nil
}

// Tree is the session-persistent trie. The zero value is an empty memo with
// no node budget: it grows with the distinct conjunctions ever explored,
// exactly as before budgets existed.
type Tree struct {
	root *Node
	// gen is the step clock: BeginStep advances it before each run, and the
	// engine stamps every node it touches with the current value, so after a
	// run "gen < t.gen" identifies retained-but-unmatched nodes.
	gen uint64
	// maxNodes is the node budget Enforce holds the trie to; <= 0 disables
	// eviction entirely.
	maxNodes int
	// evictedSubtrees/evictedNodes count Enforce's work, cumulatively.
	evictedSubtrees int64
	evictedNodes    int64
}

// SetNodeBudget bounds the trie to at most n nodes at each Enforce call;
// n <= 0 disables eviction (the default).
func (t *Tree) SetNodeBudget(n int) { t.maxNodes = n }

// BeginStep advances the step clock. The session calls it before each run,
// so the run's engine stamps touched nodes with the new generation.
func (t *Tree) BeginStep() { t.gen++ }

// Gen returns the current step generation.
func (t *Tree) Gen() uint64 { return t.gen }

// EvictionStats returns the cumulative (subtrees, nodes) evicted by Enforce.
func (t *Tree) EvictionStats() (subtrees, nodes int64) {
	return t.evictedSubtrees, t.evictedNodes
}

// Root returns the trie root, creating it on first use. The root's chain is
// the empty path condition, which every version shares — provided the
// symbolic inputs are comparable at all, which the session checks separately
// (symexec.Engine.MemoSignature) and enforces with Invalidate.
func (t *Tree) Root(key string) *Node {
	if t.root == nil {
		t.root = &Node{Key: key, Via: ViaFlow}
	}
	return t.root
}

// Size returns the number of nodes in the trie.
func (t *Tree) Size() int {
	return size(t.root)
}

func size(n *Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Succs {
		total += size(c)
	}
	return total
}

// Invalidate drops the whole trie — the session calls it when a version edit
// changed the symbolic inputs (parameters, globals, domains, backend) and no
// recorded conjunction is comparable. It returns the number of nodes dropped.
func (t *Tree) Invalidate() int {
	n := t.Size()
	t.root = nil
	return n
}

// Rekey translates the trie from the previous version's key space into the
// next version's, using the cross-version correspondence map baseToMod
// (internal/diff): a node whose key corresponds — the diff proved its
// statement strictly unchanged — is rewritten in place and counted kept; a
// node whose statement changed, moved or disappeared loses its identity
// (the key is cleared and re-learned at the next visit) and is counted
// invalidated. Identity loss marks the region the edit touched — the walk
// will not extend recorded chains through diverging constraints there, by
// the chain invariant — but the node's recorded facts are retained: they
// remain reachable wherever the edit's dataflow does not actually change a
// rendering, and a later version that reverts the edit re-matches them
// outright. It returns the kept/invalidated counts; nodes that already lost
// their identity on an earlier step and were never revisited since count
// toward neither, so each step's counters report that step's edit, not the
// chain's history.
func (t *Tree) Rekey(baseToMod map[string]string) (kept, invalidated int) {
	if t.root == nil {
		return 0, 0
	}
	return rekey(t.root, baseToMod)
}

// Approximate per-node byte costs for Tree.Bytes: the Node struct with its
// slice headers, one Verdict, one witness-model entry, and one successor
// pointer. Constraint expressions (ViaCond, Verdict.Cond) are hash-consed
// and shared across the whole process, so they are accounted by the intern
// table's estimator, not per trie node.
const (
	nodeBaseBytes   = 144
	verdictBytes    = 56
	modelEntryBytes = 40
	succPtrBytes    = 8
)

// Bytes estimates the trie's retained heap footprint. It is an O(n) walk
// with the same cost as Size, intended to be sampled once per session step;
// the service store sums it across tenants to enforce a global trie-byte
// ceiling. An estimate for capacity accounting, not an exact meter.
func (t *Tree) Bytes() int64 {
	return nodeBytes(t.root)
}

func nodeBytes(n *Node) int64 {
	if n == nil {
		return 0
	}
	b := int64(nodeBaseBytes + len(n.Key))
	for _, v := range n.Verdicts {
		b += verdictBytes + int64(len(v.Model))*modelEntryBytes
	}
	b += int64(cap(n.Succs)) * succPtrBytes
	for _, c := range n.Succs {
		b += nodeBytes(c)
	}
	return b
}

// Enforce evicts whole subtrees until the trie fits the node budget,
// returning the number of nodes dropped (0 when no budget is set or the
// trie already fits). The session calls it after each run, between steps,
// when no engine holds trie pointers.
//
// Eviction order is coldest-first over subtree aggregates: by the youngest
// generation anywhere in the subtree (so retained-but-unmatched branches —
// untouched by the current step, kept only to serve reverted edits — go
// before anything the step replayed), then by fewest recorded lookup hits
// (hit-rate-aware retention among equally stale branches), then biggest
// subtree first (fewest evictions to fit), with preorder position as the
// deterministic tiebreak. The root is never evicted. Dropping a subtree is
// always sound: its conjunctions simply re-solve cold if a later version
// produces them again — the chain invariant never replays what is no
// longer recorded.
func (t *Tree) Enforce() int {
	if t.maxNodes <= 0 || t.root == nil {
		return 0
	}
	total := size(t.root)
	if total <= t.maxNodes {
		return 0
	}

	type subtree struct {
		n      *Node
		parent *Node
		order  int
		size   int
		maxGen uint64
		hits   uint64
	}
	parentOf := make(map[*Node]*Node)
	var candidates []*subtree
	order := 0
	var walk func(n, parent *Node) *subtree
	walk = func(n, parent *Node) *subtree {
		in := &subtree{n: n, parent: parent, order: order, size: 1, maxGen: n.gen, hits: uint64(n.hits)}
		order++
		parentOf[n] = parent
		for _, c := range n.Succs {
			if c == nil {
				continue
			}
			ci := walk(c, n)
			in.size += ci.size
			if ci.maxGen > in.maxGen {
				in.maxGen = ci.maxGen
			}
			in.hits += ci.hits
		}
		if parent != nil {
			candidates = append(candidates, in)
		}
		return in
	}
	walk(t.root, nil)

	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.maxGen != b.maxGen {
			return a.maxGen < b.maxGen
		}
		if a.hits != b.hits {
			return a.hits < b.hits
		}
		if a.size != b.size {
			return a.size > b.size
		}
		return a.order < b.order
	})

	drop := make(map[*Node]bool)
	dropped := func(n *Node) bool {
		for p := n; p != nil; p = parentOf[p] {
			if drop[p] {
				return true
			}
		}
		return false
	}
	removed := 0
	for _, in := range candidates {
		if total-removed <= t.maxNodes {
			break
		}
		if dropped(in.n) {
			continue
		}
		drop[in.n] = true
		removed += in.size
		t.evictedSubtrees++
	}
	if removed == 0 {
		return 0
	}

	var prune func(n *Node)
	prune = func(n *Node) {
		out := n.Succs[:0]
		for _, c := range n.Succs {
			if c == nil || drop[c] {
				continue
			}
			out = append(out, c)
			prune(c)
		}
		// Clear the tail so the backing array stops pinning dropped subtrees.
		for i := len(out); i < len(n.Succs); i++ {
			n.Succs[i] = nil
		}
		n.Succs = out
	}
	prune(t.root)
	t.evictedNodes += int64(removed)
	return removed
}

func rekey(n *Node, baseToMod map[string]string) (kept, invalidated int) {
	if n.Key != "" {
		if nk, ok := baseToMod[n.Key]; ok {
			n.Key = nk
			kept++
		} else {
			invalidated++
			n.Key = ""
		}
	}
	for _, c := range n.Succs {
		if c == nil {
			continue
		}
		k, i := rekey(c, baseToMod)
		kept += k
		invalidated += i
	}
	return kept, invalidated
}
