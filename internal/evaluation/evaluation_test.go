package evaluation

import (
	"strings"
	"testing"

	"dise/internal/artifacts"
	"dise/internal/symexec"
)

// The expected DiSE path-condition counts per version are deterministic
// (fixed exploration order, fixed solver models); pinning them makes any
// behavioral drift in the pipeline visible immediately.

func TestEvaluationASW(t *testing.T) {
	a, _ := artifacts.ByName("ASW")
	res, err := Run(a, symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if issues := res.CheckShape(); len(issues) != 0 {
		t.Fatalf("shape violations: %v", issues)
	}
	wantDiSE := map[string]int{
		"v1": 0, "v2": 0, "v3": 3, "v4": 12, "v5": 1, "v6": 144, "v7": 3,
		"v8": 1, "v9": 3, "v10": 2, "v11": 144, "v12": 24, "v13": 48, "v14": 3, "v15": 144,
	}
	for _, row := range res.Rows2 {
		if got := row.DiSEPCs; got != wantDiSE[row.Version] {
			t.Errorf("ASW %s: DiSE PCs = %d, want %d", row.Version, got, wantDiSE[row.Version])
		}
	}
	// The paper's headline claims, checked on specific rows:
	rows := rowMap(res.Rows2)
	// v1: masked change — nothing changed, nothing explored.
	if r := rows["v1"]; r.Changed != 0 || r.Affected != 0 || r.DiSEStates > 3 {
		t.Errorf("ASW v1 (masked) = %+v, want 0 changed / 0 affected / ~2 states", r)
	}
	// v2: dead-region change — affected but unreachable.
	if r := rows["v2"]; r.Affected == 0 || r.DiSEPCs != 0 {
		t.Errorf("ASW v2 (dead region) = %+v, want affected > 0 and 0 PCs", r)
	}
	// v6/v15: wide versions explore a fixed fraction (144/1728 = 8.3%).
	if r := rows["v6"]; r.FullPCs != 1728 {
		t.Errorf("ASW v6 full PCs = %d, want 1728", r.FullPCs)
	}
	// Narrow versions reduce states by orders of magnitude.
	if r := rows["v3"]; r.DiSEStates*100 > r.FullStates {
		t.Errorf("ASW v3: DiSE states %d not <1%% of full %d", r.DiSEStates, r.FullStates)
	}
	// Table 3: the base suite must cover the selected tests.
	for _, row := range res.Rows3 {
		if row.Selected > res.BaseSuiteSize {
			t.Errorf("ASW %s: selected %d > base suite %d", row.Version, row.Selected, res.BaseSuiteSize)
		}
	}
}

func TestEvaluationWBS(t *testing.T) {
	a, _ := artifacts.ByName("WBS")
	res, err := Run(a, symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if issues := res.CheckShape(); len(issues) != 0 {
		t.Fatalf("shape violations: %v", issues)
	}
	wantDiSE := map[string]int{
		"v1": 24, "v2": 24, "v3": 24, "v4": 1, "v5": 24, "v6": 24, "v7": 12, "v8": 0,
		"v9": 24, "v10": 24, "v11": 12, "v12": 24, "v13": 24, "v14": 24, "v15": 24, "v16": 24,
	}
	rows := rowMap(res.Rows2)
	for v, want := range wantDiSE {
		if got := rows[v].DiSEPCs; got != want {
			t.Errorf("WBS %s: DiSE PCs = %d, want %d", v, got, want)
		}
	}
	// The paper's WBS phenomenology: versions where the change taints the
	// whole tree make DiSE generate the same number of path conditions AND
	// explore the same number of states as full symbolic execution.
	for _, v := range []string{"v1", "v10"} {
		r := rows[v]
		if r.DiSEPCs != r.FullPCs || r.DiSEStates != r.FullStates {
			t.Errorf("WBS %s: DiSE (%d PCs, %d states) != full (%d PCs, %d states); change taints everything",
				v, r.DiSEPCs, r.DiSEStates, r.FullPCs, r.FullStates)
		}
		if r.FullPCs != 24 {
			t.Errorf("WBS %s: full PCs = %d, want 24 (paper Table 2(b))", v, r.FullPCs)
		}
	}
	// v4: pure-output change — exactly one path condition (paper WBS v4).
	if r := rows["v4"]; r.DiSEPCs != 1 || r.Affected != 1 {
		t.Errorf("WBS v4 = %+v, want 1 PC / 1 affected node", r)
	}
	// Table 3: some versions require new tests (the paper's Added=4 rows).
	rows3 := make(map[string]Row3)
	for _, r3 := range res.Rows3 {
		rows3[r3.Version] = r3
	}
	if rows3["v6"].Added == 0 {
		t.Error("WBS v6 should need augmented tests (operand change shifts inputs)")
	}
	if rows3["v4"].Total() != 1 {
		t.Errorf("WBS v4 total tests = %d, want 1", rows3["v4"].Total())
	}
}

func TestEvaluationOAE(t *testing.T) {
	if testing.Short() {
		t.Skip("OAE evaluation is slow; skipped in -short mode")
	}
	a, _ := artifacts.ByName("OAE")
	res, err := Run(a, symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if issues := res.CheckShape(); len(issues) != 0 {
		t.Fatalf("shape violations: %v", issues)
	}
	wantDiSE := map[string]int{
		"v1": 2304, "v2": 1, "v3": 2304, "v4": 1, "v5": 192, "v6": 6,
		"v7": 2304, "v8": 768, "v9": 2304,
	}
	rows := rowMap(res.Rows2)
	for v, want := range wantDiSE {
		if got := rows[v].DiSEPCs; got != want {
			t.Errorf("OAE %s: DiSE PCs = %d, want %d", v, got, want)
		}
	}
	// Wide versions affect roughly a quarter of the paths (paper: 10–20%).
	r := rows["v1"]
	ratio := float64(r.DiSEPCs) / float64(r.FullPCs)
	if ratio < 0.15 || ratio > 0.35 {
		t.Errorf("OAE v1 fraction = %.2f, want ~0.25", ratio)
	}
	// And still run measurably faster than full symbolic execution.
	if r.DiSETime >= r.FullTime {
		t.Errorf("OAE v1: DiSE %v not faster than full %v", r.DiSETime, r.FullTime)
	}
}

func TestTableRendering(t *testing.T) {
	a, _ := artifacts.ByName("WBS")
	res, err := Run(a, symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t2 := res.Table2()
	for _, want := range []string{"Table 2 — WBS", "Version", "DiSE PCs", "Full PCs", "v16"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 output missing %q", want)
		}
	}
	t3 := res.Table3()
	for _, want := range []string{"Table 3 — WBS", "# Changes", "Selected", "Added", "Total Tests"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table3 output missing %q", want)
		}
	}
}

func rowMap(rows []Row2) map[string]Row2 {
	out := make(map[string]Row2, len(rows))
	for _, r := range rows {
		out[r.Version] = r
	}
	return out
}
