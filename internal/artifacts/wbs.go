package artifacts

// WBS re-creates the paper's wheel-brake-system artifact (Table 2(b)): 24
// feasible paths — a six-arm pedal-position chain times the autobrake and
// skid diamonds. The blocks form a dataflow chain (BrakeCmd → Pressure →
// Meter), so a change to the root conditional taints every path and DiSE
// degenerates to full symbolic execution, exactly the phenomenology the
// paper reports for WBS v1/v10; a change to the trailing Light output
// affects exactly one node and one path (the paper's WBS v4).
var wbs = Artifact{
	Name: "WBS",
	Proc: "update",
	Base: `
int BrakeCmd = 0;
int Pressure = 0;
int Meter = 0;
int Light = 0;

proc update(int PedalPos, bool AutoBrake, bool Skid) {
  if (PedalPos == 0) {
    BrakeCmd = 0;
  } else if (PedalPos == 1) {
    BrakeCmd = 1;
  } else if (PedalPos == 2) {
    BrakeCmd = 2;
  } else if (PedalPos == 3) {
    BrakeCmd = 3;
  } else if (PedalPos == 4) {
    BrakeCmd = 4;
  } else {
    BrakeCmd = 5;
  }
  if (AutoBrake && BrakeCmd >= 0) {
    Pressure = BrakeCmd + 10;
  } else {
    Pressure = BrakeCmd;
  }
  if (Skid && Pressure >= 0) {
    Meter = Pressure + 1;
    Light = 1;
  } else {
    Meter = Pressure;
    Light = 0;
  }
}
`,
	Versions: []Version{
		{Name: "v1", NumChanges: 1, Note: "root conditional operator: taints every path",
			Edits: []Edit{{Old: "PedalPos == 0", New: "PedalPos <= 0"}}},
		{Name: "v2", NumChanges: 1, Note: "mid-chain conditional operator",
			Edits: []Edit{{Old: "PedalPos == 3", New: "PedalPos <= 3"}}},
		{Name: "v3", NumChanges: 1, Note: "chain arm output value",
			Edits: []Edit{{Old: "BrakeCmd = 4;", New: "BrakeCmd = 8;"}}},
		{Name: "v4", NumChanges: 1, Note: "pure-output change: Light is never read",
			Edits: []Edit{{Old: "Light = 1;", New: "Light = 2;"}}},
		{Name: "v5", NumChanges: 1, Note: "autobrake boost operand",
			Edits: []Edit{{Old: "Pressure = BrakeCmd + 10;", New: "Pressure = BrakeCmd + 20;"}}},
		{Name: "v6", NumChanges: 1, Note: "operand change shifts inputs: new pedal position",
			Edits: []Edit{{Old: "PedalPos == 4", New: "PedalPos == 7"}}},
		{Name: "v7", NumChanges: 1, Note: "added statement in the skid arm",
			Edits: []Edit{{Old: "    Light = 1;", New: "    Light = 1;\n    Meter = Meter + 2;"}}},
		{Name: "v8", NumChanges: 1, Note: "deleted statement in the no-skid arm",
			Edits: []Edit{{Old: "    Meter = Pressure;\n    Light = 0;", New: "    Meter = Pressure;"}}},
		{Name: "v9", NumChanges: 1, Note: "chain default arm output value",
			Edits: []Edit{{Old: "BrakeCmd = 5;", New: "BrakeCmd = 6;"}}},
		{Name: "v10", NumChanges: 1, Note: "root conditional operand order: taints every path",
			Edits: []Edit{{Old: "PedalPos == 0", New: "0 == PedalPos"}}},
		{Name: "v11", NumChanges: 1, Note: "no-skid meter computation",
			Edits: []Edit{{Old: "Meter = Pressure;", New: "Meter = Pressure + Pressure;"}}},
		{Name: "v12", NumChanges: 1, Note: "no-autobrake pressure computation",
			Edits: []Edit{{Old: "Pressure = BrakeCmd;", New: "Pressure = BrakeCmd + 1;"}}},
		{Name: "v13", NumChanges: 2, Note: "two changes: chain arm and light output",
			Edits: []Edit{
				{Old: "BrakeCmd = 2;", New: "BrakeCmd = 7;"},
				{Old: "Light = 1;", New: "Light = 3;"},
			}},
		{Name: "v14", NumChanges: 1, Note: "autobrake condition operand order",
			Edits: []Edit{{Old: "AutoBrake && BrakeCmd >= 0", New: "BrakeCmd >= 0 && AutoBrake"}}},
		{Name: "v15", NumChanges: 1, Note: "skid condition operand order",
			Edits: []Edit{{Old: "Skid && Pressure >= 0", New: "Pressure >= 0 && Skid"}}},
		{Name: "v16", NumChanges: 2, Note: "two chain arm output values",
			Edits: []Edit{
				{Old: "BrakeCmd = 1;", New: "BrakeCmd = 9;"},
				{Old: "BrakeCmd = 3;", New: "BrakeCmd = 11;"},
			}},
	},
}
