package artifacts

// ASW re-creates the paper's altitude-switch artifact: a reactive procedure
// whose 1728 feasible paths are the product of ten independent decision
// blocks — a dead region (infeasible under the non-negative input domain),
// six two-way device diamonds, and three three-way mode/trigger/phase
// chains. The trigger block feeds a dataflow chain (T → OG → O3 → O4 → O5 →
// phase chain) so that a single change at the head of the chain taints the
// whole back half of the procedure while the front blocks stay unaffected.
var asw = Artifact{
	Name: "ASW",
	Proc: "altswitch",
	Base: `
int DeadOut = 0;
int WA = 0;
int WB = 0;
int M = 0;
int Trigger = 0;
int T = 0;
int OG = 0;
int O3 = 0;
int O4 = 0;
int O5 = 0;
int O6 = 0;
int Alt = 0;

proc altswitch(int AltDiff, int Mode, int Phase, bool DevA, bool DevB, bool Gear, bool Inhibit, bool Reset, bool Manual) {
  if (AltDiff < 0) {
    DeadOut = 1;
  } else {
    DeadOut = 0;
  }
  if (DevA) {
    WA = 1;
  } else {
    WA = 0;
  }
  if (DevB) {
    WB = 1;
  } else {
    WB = 0;
  }
  if (Mode <= 2) {
    M = 1;
  } else if (Mode <= 5) {
    M = 2;
  } else {
    M = 3;
  }
  Trigger = AltDiff;
  if (Trigger <= 2) {
    T = 1;
  } else if (Trigger <= 5) {
    T = 2;
  } else {
    T = 3;
  }
  if (Gear && T >= 0) {
    OG = 1;
  } else {
    OG = 0;
  }
  if (Inhibit && OG >= 0) {
    O3 = 1;
  } else {
    O3 = 0;
  }
  if (Reset && O3 >= 0) {
    O4 = 1;
  } else {
    O4 = 0;
  }
  if (Manual && O4 >= 0) {
    O5 = 1;
  } else {
    O5 = 0;
  }
  if (Phase <= 0 && O5 >= 0) {
    O6 = 1;
  } else if (Phase <= 3) {
    O6 = 2;
  } else {
    O6 = 3;
  }
  Alt = O6;
}
`,
	Versions: []Version{
		{Name: "v1", NumChanges: 0, Note: "masked change: formatting only, identical AST",
			Edits: []Edit{{Old: "WA = 1;", New: "WA  =  1;"}}},
		{Name: "v2", NumChanges: 1, Note: "change inside the dead region (AltDiff < 0 is infeasible)",
			Edits: []Edit{{Old: "DeadOut = 1;", New: "DeadOut = 2;"}}},
		{Name: "v3", NumChanges: 1, Note: "narrow change: trailing pure-output write",
			Edits: []Edit{{Old: "Alt = O6;", New: "Alt = O6 + 1;"}}},
		{Name: "v4", NumChanges: 1, Note: "write feeding the manual diamond and phase chain",
			Edits: []Edit{{Old: "O4 = 1;", New: "O4 = 2;"}}},
		{Name: "v5", NumChanges: 1, Note: "narrow change: device-A output is never read",
			Edits: []Edit{{Old: "WA = 1;", New: "WA = 2;"}}},
		{Name: "v6", NumChanges: 1, Note: "wide change: head of the trigger dataflow chain",
			Edits: []Edit{{Old: "Trigger = AltDiff;", New: "Trigger = AltDiff + 1;"}}},
		{Name: "v7", NumChanges: 1, Note: "mode chain threshold (M is never read)",
			Edits: []Edit{{Old: "Mode <= 2", New: "Mode <= 1"}}},
		{Name: "v8", NumChanges: 1, Note: "phase chain middle arm output value",
			Edits: []Edit{{Old: "O6 = 2;", New: "O6 = 4;"}}},
		{Name: "v9", NumChanges: 1, Note: "deleted trailing statement",
			Edits: []Edit{{Old: "  Alt = O6;\n}", New: "}"}}},
		{Name: "v10", NumChanges: 1, Note: "phase chain tail threshold",
			Edits: []Edit{{Old: "Phase <= 3", New: "Phase <= 4"}}},
		{Name: "v11", NumChanges: 1, Note: "trigger chain output feeding the gear diamond",
			Edits: []Edit{{Old: "T = 3;", New: "T = 6;"}}},
		{Name: "v12", NumChanges: 1, Note: "inhibit diamond output feeding the reset diamond",
			Edits: []Edit{{Old: "    O3 = 0;", New: "    O3 = 2;"}}},
		{Name: "v13", NumChanges: 2, Note: "two changes: reordered condition and shifted output",
			Edits: []Edit{
				{Old: "Inhibit && OG >= 0", New: "OG >= 0 && Inhibit"},
				{Old: "    O4 = 0;", New: "    O4 = 3;"},
			}},
		{Name: "v14", NumChanges: 1, Note: "added statement after the mode chain",
			Edits: []Edit{{Old: "  Trigger = AltDiff;", New: "  M = M + 1;\n  Trigger = AltDiff;"}}},
		{Name: "v15", NumChanges: 1, Note: "wide change: trigger doubled, same arm partition",
			Edits: []Edit{{Old: "Trigger = AltDiff;", New: "Trigger = AltDiff + AltDiff;"}}},
	},
}
