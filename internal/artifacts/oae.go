package artifacts

// OAE re-creates the paper's onboard-abort-executive artifact, the widest
// of the three subjects: 9216 feasible paths from two flag diamonds, a
// three-arm mode chain, eight chained abort-condition diamonds and a
// three-arm phase chain. The mode assignment heads a dataflow chain
// (Mode → Stage → O3 → … → O10 → phase chain) so the paper's "wide" mutants
// taint roughly a quarter of the paths while the front flag diamonds factor
// out of the directed exploration.
var oae = Artifact{
	Name: "OAE",
	Proc: "oae",
	Base: `
int F1 = 0;
int F2 = 0;
int Mode = 0;
int Stage = 0;
int O3 = 0;
int O4 = 0;
int O5 = 0;
int O6 = 0;
int O7 = 0;
int O8 = 0;
int O9 = 0;
int O10 = 0;
int Result = 0;

proc oae(int Sensor, int Phase, bool S1, bool S2, bool B3, bool B4, bool B5, bool B6, bool B7, bool B8, bool B9, bool B10) {
  if (S1) {
    F1 = 1;
  } else {
    F1 = 0;
  }
  if (S2) {
    F2 = 1;
  } else {
    F2 = 0;
  }
  Mode = Sensor;
  if (Mode <= 3) {
    Stage = 1;
  } else if (Mode <= 7) {
    Stage = 2;
  } else {
    Stage = 3;
  }
  if (B3 && Stage >= 1) {
    O3 = 1;
  } else {
    O3 = 0;
  }
  if (B4 && O3 >= 0) {
    O4 = 1;
  } else {
    O4 = 0;
  }
  if (B5 && O4 >= 0) {
    O5 = 1;
  } else {
    O5 = 0;
  }
  if (B6 && O5 >= 0) {
    O6 = 1;
  } else {
    O6 = 0;
  }
  if (B7 && O6 >= 0) {
    O7 = 1;
  } else {
    O7 = 0;
  }
  if (B8 && O7 >= 0) {
    O8 = 1;
  } else {
    O8 = 0;
  }
  if (B9 && O8 >= 0) {
    O9 = 1;
  } else {
    O9 = 0;
  }
  if (B10 && O9 >= 0) {
    O10 = 1;
  } else {
    O10 = 0;
  }
  if (Phase <= 0 && O10 >= 0) {
    Result = 1;
  } else if (Phase <= 3) {
    Result = 2;
  } else {
    Result = 3;
  }
}
`,
	Versions: []Version{
		{Name: "v1", NumChanges: 1, Note: "wide change: mode assignment heads the dataflow chain",
			Edits: []Edit{{Old: "Mode = Sensor;", New: "Mode = Sensor + 1;"}}},
		{Name: "v2", NumChanges: 1, Note: "narrow change: phase chain default arm",
			Edits: []Edit{{Old: "Result = 3;", New: "Result = 4;"}}},
		{Name: "v3", NumChanges: 1, Note: "first abort diamond condition operand order",
			Edits: []Edit{{Old: "B3 && Stage >= 1", New: "Stage >= 1 && B3"}}},
		{Name: "v4", NumChanges: 1, Note: "narrow change: flag output is never read",
			Edits: []Edit{{Old: "F1 = 1;", New: "F1 = 2;"}}},
		{Name: "v5", NumChanges: 1, Note: "mid-chain diamond output value",
			Edits: []Edit{{Old: "    O5 = 0;", New: "    O5 = 2;"}}},
		{Name: "v6", NumChanges: 1, Note: "phase chain head threshold",
			Edits: []Edit{{Old: "Phase <= 0 && O10 >= 0", New: "Phase <= 1 && O10 >= 0"}}},
		{Name: "v7", NumChanges: 1, Note: "wide change: mode offset variant",
			Edits: []Edit{{Old: "Mode = Sensor;", New: "Mode = Sensor + 2;"}}},
		{Name: "v8", NumChanges: 1, Note: "second abort diamond condition operand order",
			Edits: []Edit{{Old: "B4 && O3 >= 0", New: "O3 >= 0 && B4"}}},
		{Name: "v9", NumChanges: 1, Note: "mode chain first arm output value",
			Edits: []Edit{{Old: "Stage = 1;", New: "Stage = 4;"}}},
	},
}
