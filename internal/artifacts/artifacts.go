// Package artifacts re-creates the three evaluation artifacts of the DiSE
// paper (§4.2): ASW (altitude switch), WBS (wheel brake system) and OAE
// (onboard abort executive), each as a base program plus a catalog of mutant
// versions. The originals are Java classes from the SIR repository; these
// re-creations preserve the *shape* of the paper's experiment — loop-free
// reactive procedures whose feasible-path counts are products of independent
// decision blocks, with mutants ranging from masked (formatting-only) and
// dead-region changes to root-conditional changes that taint every path.
//
// Versions are stored as textual edits against the base source, mirroring
// how the paper's mutants were produced (small operator/operand changes,
// added and deleted statements).
package artifacts

import (
	"fmt"
	"strings"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
)

// Edit is one textual mutation applied to the base source.
type Edit struct {
	Old string // unique substring of the base source
	New string
}

// Version is one mutant of an artifact.
type Version struct {
	Name string
	// NumChanges counts changed source statements (the "# Changes" column of
	// the paper's Table 3).
	NumChanges int
	// Note summarizes the intent of the mutation.
	Note string
	// Edits are applied to the base source in order.
	Edits []Edit
}

// Artifact is one evaluation subject: a base program and its mutants.
type Artifact struct {
	Name string
	// Proc is the procedure under analysis.
	Proc string
	// Base is the source text of the original version.
	Base     string
	Versions []Version
}

// Find returns the version with the given name.
func (a Artifact) Find(name string) (Version, bool) {
	for _, v := range a.Versions {
		if v.Name == name {
			return v, true
		}
	}
	return Version{}, false
}

// SourceFor applies the version's edits to the base source.
func (a Artifact) SourceFor(v Version) string {
	src := a.Base
	for _, e := range v.Edits {
		if !strings.Contains(src, e.Old) {
			panic(fmt.Sprintf("artifacts: %s %s: edit target %q not found", a.Name, v.Name, e.Old))
		}
		src = strings.Replace(src, e.Old, e.New, 1)
	}
	return src
}

// BaseProgram parses the base source. A fresh AST is returned on every call
// so AST identity never leaks between analysis runs.
func (a Artifact) BaseProgram() *ast.Program { return parser.MustParse(a.Base) }

// ProgramFor parses the version's source (fresh AST per call).
func (a Artifact) ProgramFor(v Version) *ast.Program { return parser.MustParse(a.SourceFor(v)) }

// All returns the artifact catalog in the paper's order.
func All() []Artifact { return []Artifact{asw, wbs, oae} }

// ByName looks an artifact up by its table name ("ASW", "WBS" or "OAE").
func ByName(name string) (Artifact, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return Artifact{}, false
}
