package artifacts

import (
	"testing"

	"dise/internal/diff"
	"dise/internal/lang/parser"
	"dise/internal/lang/types"
)

// TestCatalogWellFormed checks every artifact source parses, type-checks and
// contains the procedure under analysis, and that every version's edits hit
// a statement inside the procedure body (not, say, a global initializer —
// the classic silent-edit failure mode of textual mutation).
func TestCatalogWellFormed(t *testing.T) {
	for _, a := range All() {
		base, err := parser.Parse(a.Base)
		if err != nil {
			t.Fatalf("%s: base does not parse: %v", a.Name, err)
		}
		if _, err := types.Check(base); err != nil {
			t.Fatalf("%s: base does not type-check: %v", a.Name, err)
		}
		baseProc := base.Proc(a.Proc)
		if baseProc == nil {
			t.Fatalf("%s: procedure %q not found", a.Name, a.Proc)
		}
		seen := map[string]bool{}
		for _, v := range a.Versions {
			if seen[v.Name] {
				t.Errorf("%s: duplicate version %s", a.Name, v.Name)
			}
			seen[v.Name] = true
			mod, err := parser.Parse(a.SourceFor(v))
			if err != nil {
				t.Errorf("%s %s: does not parse: %v", a.Name, v.Name, err)
				continue
			}
			if _, err := types.Check(mod); err != nil {
				t.Errorf("%s %s: does not type-check: %v", a.Name, v.Name, err)
				continue
			}
			d := diff.Procedures(baseProc, mod.Proc(a.Proc))
			if v.NumChanges == 0 {
				if !d.Identical() {
					t.Errorf("%s %s: NumChanges=0 but the diff sees changes", a.Name, v.Name)
				}
			} else if d.Identical() {
				t.Errorf("%s %s: edits did not change the procedure body", a.Name, v.Name)
			}
		}
	}
}

// TestByName covers the lookup helpers.
func TestByName(t *testing.T) {
	for _, name := range []string{"ASW", "WBS", "OAE"} {
		a, ok := ByName(name)
		if !ok || a.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, a.Name, ok)
		}
		if _, ok := a.Find(a.Versions[0].Name); !ok {
			t.Errorf("%s: Find(%s) failed", name, a.Versions[0].Name)
		}
		if _, ok := a.Find("ghost"); ok {
			t.Errorf("%s: Find(ghost) should fail", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}
