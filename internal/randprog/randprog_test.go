package randprog

import (
	"strings"
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/lang/types"
)

func TestGeneratedProgramsTypeCheck(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		g := New(seed, Config{})
		src := g.Source()
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse error: %v\n%s", seed, err, src)
		}
		if _, err := types.Check(prog); err != nil {
			t.Fatalf("seed %d: type error: %v\n%s", seed, err, src)
		}
	}
}

func TestGeneratedProgramsAreDeterministic(t *testing.T) {
	a := New(7, Config{}).Source()
	b := New(7, Config{}).Source()
	if a != b {
		t.Error("same seed must generate the same program")
	}
	c := New(8, Config{}).Source()
	if a == c {
		t.Error("different seeds should generate different programs")
	}
}

func TestMutantsTypeCheckAndDiffer(t *testing.T) {
	differing := 0
	for seed := int64(0); seed < 100; seed++ {
		g := New(seed, Config{})
		prog := g.Program()
		mutant, descs := g.Mutate(prog, 3)
		src := ast.Pretty(mutant)
		reparsed, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: mutant does not reparse: %v\n%s", seed, err, src)
		}
		if _, err := types.Check(reparsed); err != nil {
			t.Fatalf("seed %d: mutant type error: %v\nmutations: %v\n%s", seed, err, descs, src)
		}
		if ast.Pretty(prog) != ast.Pretty(mutant) {
			differing++
			if len(descs) == 0 {
				t.Errorf("seed %d: program changed but no mutation recorded", seed)
			}
		}
	}
	if differing < 80 {
		t.Errorf("only %d/100 mutants differ from their base; generator too weak", differing)
	}
}

func TestMutateDoesNotTouchOriginal(t *testing.T) {
	g := New(3, Config{})
	prog := g.Program()
	before := ast.Pretty(prog)
	for i := 0; i < 10; i++ {
		g.Mutate(prog, 3)
	}
	if ast.Pretty(prog) != before {
		t.Error("Mutate must operate on a clone")
	}
}

func TestGeneratedProgramsAreLoopFree(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		prog := New(seed, Config{}).Program()
		ast.Walk(prog.Procs[0].Body.Stmts, func(s ast.Stmt) {
			if _, ok := s.(*ast.While); ok {
				t.Fatalf("seed %d: generator must not emit loops by default", seed)
			}
		})
	}
}

func TestLoopModeGeneratesTerminatingLoops(t *testing.T) {
	loops := 0
	for seed := int64(0); seed < 80; seed++ {
		prog := New(seed, Config{Loops: true}).Program()
		if _, err := types.Check(prog); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, ast.Pretty(prog))
		}
		counters := map[string]bool{}
		ast.Walk(prog.Procs[0].Body.Stmts, func(s ast.Stmt) {
			w, ok := s.(*ast.While)
			if !ok {
				return
			}
			loops++
			// Loop shape: "itN < C" with a unique counter per loop.
			cond, ok := w.Cond.(*ast.Binary)
			if !ok {
				t.Fatalf("seed %d: loop cond %s not a comparison", seed, w.Cond)
			}
			counter, ok := cond.L.(*ast.Ident)
			if !ok {
				t.Fatalf("seed %d: loop cond %s lhs not a counter", seed, w.Cond)
			}
			if counters[counter.Name] {
				t.Fatalf("seed %d: counter %s reused across loops", seed, counter.Name)
			}
			counters[counter.Name] = true
			// No statement inside the body (other than the generator's
			// trailing increment) may assign the counter.
			assignsToCounter := 0
			ast.Walk(w.Body.Stmts, func(b ast.Stmt) {
				if a, ok := b.(*ast.Assign); ok && a.Name == counter.Name {
					assignsToCounter++
				}
			})
			if assignsToCounter != 1 {
				t.Fatalf("seed %d: counter %s assigned %d times in the body, want exactly the increment",
					seed, counter.Name, assignsToCounter)
			}
		})
	}
	if loops == 0 {
		t.Fatal("loop mode generated no loops across 80 seeds")
	}
}

func TestLoopModeMutantsKeepCounters(t *testing.T) {
	// Mutation must never delete a loop-counter assignment (which would
	// make a generated loop non-terminating).
	for seed := int64(0); seed < 60; seed++ {
		g := New(seed, Config{Loops: true})
		prog := g.Program()
		mutant, _ := g.Mutate(prog, 3)
		counters := map[string]int{}
		ast.Walk(prog.Procs[0].Body.Stmts, func(s ast.Stmt) {
			if a, ok := s.(*ast.Assign); ok && strings.HasPrefix(a.Name, "it") {
				counters[a.Name]++
			}
		})
		mutantCounters := map[string]int{}
		ast.Walk(mutant.Procs[0].Body.Stmts, func(s ast.Stmt) {
			if a, ok := s.(*ast.Assign); ok && strings.HasPrefix(a.Name, "it") {
				mutantCounters[a.Name]++
			}
		})
		for name, n := range counters {
			if mutantCounters[name] < n {
				t.Fatalf("seed %d: mutation removed an assignment to loop counter %s", seed, name)
			}
		}
	}
}
