// Package randprog generates random loop-free mini-language programs and
// random mutations of them, in the style of the paper's mutant methodology
// (§4.2.1): operator mutations, operand mutations, constant mutations, and
// statement additions/removals, applied at varying depths in the control
// structure.
//
// It exists to property-test the DiSE pipeline: for arbitrary (base, mod)
// pairs the directed search must cover exactly the affected-node sequences
// that full symbolic execution discovers (Theorem 3.10), must never emit
// duplicates, and must never explore more states than full symbolic
// execution by more than the bookkeeping overhead.
package randprog

import (
	"fmt"
	"math/rand"
	"strings"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/lang/token"
)

// Config bounds the generated programs.
type Config struct {
	// Params is the number of int parameters (symbolic inputs); default 3.
	Params int
	// MaxStmts bounds the statement count of each block; default 6.
	MaxStmts int
	// MaxDepth bounds if-nesting; default 3.
	MaxDepth int
	// Loops enables bounded while loops (a counter running to a small
	// constant, with a conditional body over symbolic variables). Off by
	// default: the Theorem 3.10 property tests mirror the paper's loop-free
	// evaluation; the loop-mode tests use this flag.
	Loops bool
}

func (c *Config) defaults() {
	if c.Params == 0 {
		c.Params = 3
	}
	if c.MaxStmts == 0 {
		c.MaxStmts = 6
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
}

// Generator produces random programs and mutations from a seeded source.
type Generator struct {
	rng *rand.Rand
	cfg Config
	// loopCount numbers loop counters globally so nested and sibling loops
	// never share a counter variable.
	loopCount int
}

// New returns a Generator with the given seed.
func New(seed int64, cfg Config) *Generator {
	cfg.defaults()
	return &Generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Program generates a random loop-free program with one procedure "p". The
// program always type-checks and every variable is assigned before use.
func (g *Generator) Program() *ast.Program {
	src := g.Source()
	return parser.MustParse(src)
}

// Source generates the program as source text (useful for debugging: failed
// property tests print the text).
func (g *Generator) Source() string {
	var params []string
	var vars []string
	for i := 0; i < g.cfg.Params; i++ {
		name := fmt.Sprintf("p%d", i)
		params = append(params, "int "+name)
		vars = append(vars, name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "proc p(%s) {\n", strings.Join(params, ", "))
	g.block(&b, 1, &vars, g.cfg.MaxDepth)
	b.WriteString("}\n")
	return b.String()
}

// block emits 1..MaxStmts statements, mutating the defined-variable list as
// assignments introduce locals. Variables introduced inside branches are
// visible afterwards only for further assignment (the type checker infers
// them program-wide), but to keep every read well-defined on every path we
// only read variables from the defined set at this point.
func (g *Generator) block(b *strings.Builder, depth int, vars *[]string, budget int) {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	indent := strings.Repeat("  ", depth)
	for i := 0; i < n; i++ {
		if g.cfg.Loops && budget > 0 && g.rng.Intn(6) == 0 {
			// Bounded loop: counter to a small constant, so path explosion
			// stays manageable; the body branches on symbolic state so the
			// loop is still interesting to the directed search.
			counter := fmt.Sprintf("it%d", g.loopCount)
			g.loopCount++
			bound := 1 + g.rng.Intn(3)
			fmt.Fprintf(b, "%s%s = 0;\n", indent, counter)
			fmt.Fprintf(b, "%swhile (%s < %d) {\n", indent, counter, bound)
			// The counter is deliberately kept out of the body's variable
			// pool so generated statements never overwrite it: loops always
			// terminate within the constant bound.
			bodyVars := append([]string{}, *vars...)
			g.block(b, depth+1, &bodyVars, budget-1)
			fmt.Fprintf(b, "%s  %s = %s + 1;\n", indent, counter, counter)
			fmt.Fprintf(b, "%s}\n", indent)
			continue
		}
		if budget > 0 && g.rng.Intn(3) == 0 {
			// Nested conditional. Branch bodies may define new locals, but
			// those stay out of the outer defined set.
			fmt.Fprintf(b, "%sif (%s) {\n", indent, g.cond(*vars))
			thenVars := append([]string{}, *vars...)
			g.block(b, depth+1, &thenVars, budget-1)
			if g.rng.Intn(2) == 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				elseVars := append([]string{}, *vars...)
				g.block(b, depth+1, &elseVars, budget-1)
			}
			fmt.Fprintf(b, "%s}\n", indent)
			continue
		}
		// Assignment: target is a fresh local or an existing variable.
		target := g.freshOrExisting(vars)
		fmt.Fprintf(b, "%s%s = %s;\n", indent, target, g.intExpr(*vars))
	}
}

func (g *Generator) freshOrExisting(vars *[]string) string {
	if g.rng.Intn(3) == 0 {
		name := fmt.Sprintf("v%d", len(*vars))
		*vars = append(*vars, name)
		return name
	}
	return (*vars)[g.rng.Intn(len(*vars))]
}

// cond generates a comparison over defined variables and small constants.
func (g *Generator) cond(vars []string) string {
	ops := []string{"==", "!=", "<", "<=", ">", ">="}
	op := ops[g.rng.Intn(len(ops))]
	l := vars[g.rng.Intn(len(vars))]
	if g.rng.Intn(3) == 0 {
		return fmt.Sprintf("%s %s %s", l, op, vars[g.rng.Intn(len(vars))])
	}
	return fmt.Sprintf("%s %s %d", l, op, g.rng.Intn(9))
}

// intExpr generates a small linear expression over defined variables.
func (g *Generator) intExpr(vars []string) string {
	v := vars[g.rng.Intn(len(vars))]
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(9))
	case 1:
		return v
	case 2:
		return fmt.Sprintf("%s + %d", v, 1+g.rng.Intn(4))
	default:
		return fmt.Sprintf("%s + %s", v, vars[g.rng.Intn(len(vars))])
	}
}

// Mutate returns a mutated deep copy of prog, applying 1..maxChanges random
// mutations, and a description of the mutations applied. The result always
// type-checks. If no mutation site exists (degenerate program), the program
// is returned unchanged with an empty description.
func (g *Generator) Mutate(prog *ast.Program, maxChanges int) (*ast.Program, []string) {
	mutant := ast.CloneProgram(prog)
	pr := mutant.Procs[0]
	n := 1 + g.rng.Intn(maxChanges)
	var applied []string
	for i := 0; i < n; i++ {
		if desc := g.mutateOnce(pr); desc != "" {
			applied = append(applied, desc)
		}
	}
	return mutant, applied
}

// mutateOnce applies one random mutation to the procedure.
func (g *Generator) mutateOnce(pr *ast.Procedure) string {
	// Collect mutation sites.
	var conds []*ast.Binary
	var assigns []*ast.Assign
	var blocks []*ast.Block
	blocks = append(blocks, pr.Body)
	ast.Walk(pr.Body.Stmts, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.If:
			if c, ok := s.Cond.(*ast.Binary); ok && c.Op.IsComparison() {
				conds = append(conds, c)
			}
			blocks = append(blocks, s.Then)
			if s.Else != nil {
				blocks = append(blocks, s.Else)
			}
		case *ast.Assign:
			assigns = append(assigns, s)
		}
	})

	switch g.rng.Intn(4) {
	case 0: // comparison-operator mutation, e.g. == → <= (the paper's example)
		if len(conds) == 0 {
			return ""
		}
		c := conds[g.rng.Intn(len(conds))]
		ops := []token.Kind{token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE}
		old := c.Op
		for {
			c.Op = ops[g.rng.Intn(len(ops))]
			if c.Op != old {
				break
			}
		}
		return fmt.Sprintf("operator %s -> %s", old, c.Op)
	case 1: // constant mutation in an assignment RHS
		if len(assigns) == 0 {
			return ""
		}
		a := assigns[g.rng.Intn(len(assigns))]
		var lits []*ast.IntLit
		ast.WalkExpr(a.Value, func(e ast.Expr) {
			if l, ok := e.(*ast.IntLit); ok {
				lits = append(lits, l)
			}
		})
		if len(lits) == 0 {
			// No literal: add one by wrapping the RHS.
			a.Value = &ast.Binary{Op: token.PLUS, L: a.Value, R: &ast.IntLit{Value: 1}}
			return "wrap rhs with +1"
		}
		l := lits[g.rng.Intn(len(lits))]
		l.Value += int64(1 + g.rng.Intn(3))
		return fmt.Sprintf("constant -> %d", l.Value)
	case 2: // statement addition: assign to an already-defined variable
		if len(assigns) == 0 {
			return ""
		}
		blk := blocks[g.rng.Intn(len(blocks))]
		src := assigns[g.rng.Intn(len(assigns))]
		added := &ast.Assign{
			Name:  src.Name,
			Value: &ast.Binary{Op: token.PLUS, L: &ast.Ident{Name: src.Name}, R: &ast.IntLit{Value: 1}},
		}
		pos := g.rng.Intn(len(blk.Stmts) + 1)
		blk.Stmts = append(blk.Stmts[:pos], append([]ast.Stmt{added}, blk.Stmts[pos:]...)...)
		return fmt.Sprintf("add %s", added)
	default: // statement removal: only assignments to multiply-assigned vars
		counts := map[string]int{}
		for _, a := range assigns {
			counts[a.Name]++
		}
		var candidates []*ast.Assign
		for _, a := range assigns {
			// Loop counters (it0, it1, ...) are exempt: removing the
			// increment would make a generated loop non-terminating.
			if counts[a.Name] > 1 && !strings.HasPrefix(a.Name, "it") {
				candidates = append(candidates, a)
			}
		}
		if len(candidates) == 0 {
			return ""
		}
		victim := candidates[g.rng.Intn(len(candidates))]
		if removeStmt(blocks, victim) {
			return fmt.Sprintf("remove %s", victim)
		}
		return ""
	}
}

// removeStmt deletes the statement from whichever block contains it.
func removeStmt(blocks []*ast.Block, victim ast.Stmt) bool {
	for _, blk := range blocks {
		for i, s := range blk.Stmts {
			if s == victim {
				blk.Stmts = append(blk.Stmts[:i], blk.Stmts[i+1:]...)
				return true
			}
		}
	}
	return false
}
