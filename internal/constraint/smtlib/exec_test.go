package smtlib

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"dise/internal/constraint"
	"dise/internal/solver"
	"dise/internal/sym"
)

// scriptPath returns an executable testdata fake-solver script.
func scriptPath(t *testing.T, name string) string {
	t.Helper()
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skip("no sh on PATH")
	}
	p, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(p, 0o755); err != nil {
		t.Fatal(err)
	}
	return p
}

func execBackend(t *testing.T, script string, tune func(*constraint.SMTOptions)) constraint.Backend {
	t.Helper()
	o := constraint.Options{
		Domains: map[string]solver.Interval{"X": {Lo: 0, Hi: 10}},
		SMT: constraint.SMTOptions{
			SolverPath:     scriptPath(t, script),
			CheckTimeout:   200 * time.Millisecond,
			RestartBackoff: time.Millisecond,
		},
	}
	if tune != nil {
		tune(&o.SMT)
	}
	return mustBackend(t, o)
}

// The exec transport against real subprocesses: a solver that only ever
// says "unknown" keeps the conversation healthy while every verdict comes
// from the fallback.
func TestExecTransportUnknownSolver(t *testing.T) {
	b := execBackend(t, "unknown-solver.sh", nil)
	b.Push()
	b.Assert(xGT(5))
	if res := b.Check(); !res.Sat {
		t.Fatalf("want sat, got %+v", res)
	}
	b.Pop()
	b.Push()
	b.Assert(xGT(50))
	if res := b.Check(); res.Sat || res.Unknown {
		t.Fatalf("want unsat, got %+v", res)
	}
	st := b.Stats()
	if st.ExtSolves != 2 || st.ExtUnknowns != 2 || st.ExtRestarts != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.ExtBreakerTrips != 0 {
		t.Fatalf("unknown replies tripped the breaker: %+v", st)
	}
}

// A subprocess that exits mid-check is detected as a crash, restarted
// under backoff, and — since it always crashes — eventually hits the
// restart budget; verdicts stay correct throughout.
func TestExecTransportCrashingSolver(t *testing.T) {
	b := execBackend(t, "crash-solver.sh", func(o *constraint.SMTOptions) {
		o.MaxRestarts = 2
		o.BreakerThreshold = 100
	})
	b.Push()
	b.Assert(xGT(5))
	for i := 0; i < 4; i++ {
		if res := b.Check(); !res.Sat {
			t.Fatalf("check %d: want sat, got %+v", i, res)
		}
		time.Sleep(5 * time.Millisecond) // outlive the tiny backoff
	}
	st := b.Stats()
	if st.ExtRestarts != 2 {
		t.Fatalf("restart budget not honored over exec transport: %+v", st)
	}
	if st.ExtUnknowns != 4 || st.FallbackSolves != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

// A hung subprocess is killed at the deadline; the check still answers.
func TestExecTransportHangingSolver(t *testing.T) {
	b := execBackend(t, "hang-solver.sh", func(o *constraint.SMTOptions) {
		o.CheckTimeout = 50 * time.Millisecond
	})
	b.Push()
	b.Assert(xGT(5))
	start := time.Now()
	res := b.Check()
	if !res.Sat {
		t.Fatalf("want sat, got %+v", res)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("hang not bounded by deadline (took %v)", since)
	}
	st := b.Stats()
	if st.ExtTimeouts != 1 || st.ExtUnknowns != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// Gated end-to-end test against a real solver when one is installed:
// every verdict the external layer adopts must agree with a pure interval
// backend over the same stacks.
func TestRealSolverAgreesWithInterval(t *testing.T) {
	path, args := discoverSolver()
	if path == "" {
		t.Skip("no SMT solver binary on PATH")
	}
	domains := map[string]solver.Interval{
		"X": {Lo: 0, Hi: 100},
		"Y": {Lo: -50, Hi: 50},
	}
	ext := mustBackend(t, constraint.Options{
		Domains: domains,
		SMT:     constraint.SMTOptions{SolverPath: path, SolverArgs: args},
	})
	ref, err := constraint.New(constraint.BackendInterval, constraint.Options{Domains: domains})
	if err != nil {
		t.Fatal(err)
	}
	stacks := [][]sym.Expr{
		{sym.Cmp(sym.OpGT, sym.V("X"), sym.Int(10)), sym.Cmp(sym.OpLT, sym.V("X"), sym.Int(20))},
		{sym.Cmp(sym.OpGT, sym.V("X"), sym.Int(200))},
		{sym.Cmp(sym.OpEQ, sym.Add(sym.V("X"), sym.V("Y")), sym.Int(7))},
		{sym.Cmp(sym.OpEQ, sym.Mod(sym.V("Y"), sym.Int(7)), sym.Int(3)),
			sym.Cmp(sym.OpLT, sym.V("Y"), sym.Int(0))},
		{sym.Cmp(sym.OpEQ, sym.Div(sym.V("Y"), sym.Int(4)), sym.Int(-2))},
		{sym.AndE(sym.Cmp(sym.OpNE, sym.V("X"), sym.V("Y")), sym.Cmp(sym.OpGE, sym.V("Y"), sym.Int(49)))},
	}
	for i, stack := range stacks {
		ext.Push()
		ref.Push()
		for _, c := range stack {
			ext.Assert(c)
			ref.Assert(c)
		}
		got, want := ext.Check(), ref.Check()
		if got.Sat != want.Sat || got.Unknown != want.Unknown {
			t.Errorf("stack %d: external %+v vs interval %+v", i, got, want)
		}
		ext.Pop()
		ref.Pop()
	}
	if st := ext.Stats(); st.ExtAnswers == 0 {
		t.Errorf("real solver adopted no answers: %+v", st)
	}
}
