package smtlib

import (
	"bufio"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"

	"dise/internal/constraint"
)

// execProcess is the production SMTProcess: a solver binary on
// stdin/stdout. Its lifetime is bounded three ways: the supervisor's Kill,
// the process's own exit (the wait goroutine reaps it), and — as a last
// resort for a backend that is simply dropped — a GC cleanup that kills
// the child so an abandoned backend never leaks a solver process.
type execProcess struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   *bufio.Reader
	kill  sync.Once
}

// launchExec starts path with args, wiring the SMT-LIB2 conversation over
// its standard streams.
func launchExec(path string, args []string) (constraint.SMTProcess, error) {
	cmd := exec.Command(path, args...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &execProcess{cmd: cmd, stdin: stdin, out: bufio.NewReader(stdout)}
	// Reap on exit however it happens (our kill, a crash, or EOF-exit).
	go func() { _ = cmd.Wait() }()
	runtime.AddCleanup(p, func(pr *os.Process) { _ = pr.Kill() }, cmd.Process)
	return p, nil
}

func (p *execProcess) Write(line string) error {
	_, err := io.WriteString(p.stdin, line+"\n")
	return err
}

func (p *execProcess) ReadLine() (string, error) {
	return p.out.ReadString('\n')
}

func (p *execProcess) Kill() {
	p.kill.Do(func() {
		_ = p.stdin.Close()
		_ = p.cmd.Process.Kill()
	})
}

// knownSolvers maps solver binary basenames to the arguments that put
// them in incremental stdin mode with models enabled. Discovery walks the
// list in order; an explicitly configured path gets its basename's
// arguments, or none for an unrecognized binary.
var knownSolvers = []struct {
	name string
	args []string
}{
	{"z3", []string{"-in", "-smt2"}},
	{"cvc5", []string{"--incremental", "--produce-models", "--lang", "smt2"}},
	{"cvc4", []string{"--incremental", "--produce-models", "--lang", "smt2"}},
	{"yices-smt2", []string{"--incremental"}},
	{"mathsat", nil},
}

// discoverSolver finds the first known solver on PATH, returning ""
// (external layer disabled) when none exists — the no-binary degradation
// the CI smoke step exercises.
func discoverSolver() (path string, args []string) {
	for _, k := range knownSolvers {
		if p, err := exec.LookPath(k.name); err == nil {
			return p, k.args
		}
	}
	return "", nil
}

// argsFor returns the known incremental-mode arguments for an explicitly
// configured binary path.
func argsFor(path string) []string {
	base := filepath.Base(path)
	for _, k := range knownSolvers {
		if base == k.name {
			return k.args
		}
	}
	return nil
}
