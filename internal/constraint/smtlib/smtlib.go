// Package smtlib is the external-process constraint backend: it speaks
// incremental SMT-LIB2 (push/pop/assert/check-sat/get-value) to a
// supervised solver subprocess — z3, cvc5, or any binary reading commands
// on stdin — mirroring the engine's assertion-stack discipline 1:1 so
// sibling checks ship only their delta.
//
// Talking to a child process is first and foremost a robustness problem:
// the binary may be absent, crash mid-check, hang, or emit garbage. The
// package's contract is that none of that can change an analysis verdict.
// Every external failure mode degrades the attempt to "no answer" through
// a supervision ladder (per-check deadline → kill → bounded restart with
// jittered backoff → circuit breaker → permanently disabled; session.go),
// and an embedded in-process fallback — the default interval backend,
// mirroring the same assertion stack — then supplies the verdict. The
// external solver can only ever *add* definitive answers (each sat model
// strictly validated against the asserted stack before it is trusted);
// degradation moves Stats counters (ExtUnknowns, ExtRestarts,
// ExtBreakerTrips, ...), never the path set.
package smtlib

import (
	"fmt"
	"sort"

	"dise/internal/constraint"
	"dise/internal/solver"
	"dise/internal/sym"
)

// Name is the registry name of the backend.
const Name = "smtlib"

func init() {
	constraint.Register(Name, New)
}

// frame is one assertion frame: the constraints the engine asserted and
// their rendered SMT-LIB2 forms. A frame holding any constraint outside
// the printer's fragment is unsupported: the external layer skips every
// Check whose stack contains one (the fallback still has it, so the
// verdict is unaffected).
type frame struct {
	conds       []sym.Expr
	lines       []string
	unsupported bool
}

type backend struct {
	fallback constraint.Backend
	sess     *session
	frames   []*frame
	stats    constraint.Stats
	declared map[string]bool
	domains  map[string]solver.Interval
	vars     []string // declared variable names, sorted (get-value order)
	extOK    bool     // every domain variable is declarable
	model    map[string]int64
}

// New builds the smtlib backend: an interval fallback mirroring the same
// stack, plus a supervised external session. Construction never probes
// the solver binary — a missing or broken binary surfaces as degraded
// Checks, not as an error — so engine construction cannot fail on solver
// health.
func New(opts constraint.Options) (constraint.Backend, error) {
	fallback, err := constraint.New(constraint.BackendInterval, opts)
	if err != nil {
		return nil, err
	}
	b := &backend{
		fallback: fallback,
		frames:   []*frame{{}},
		declared: make(map[string]bool, len(opts.Domains)),
		domains:  opts.Domains,
		extOK:    true,
	}
	for name := range opts.Domains {
		if !validName(name) {
			// A variable the printer cannot declare means external models
			// could never be complete; leave every Check to the fallback.
			b.extOK = false
			continue
		}
		b.declared[name] = true
		b.vars = append(b.vars, name)
	}
	sort.Strings(b.vars)
	prelude := append([]string(nil), preludeDefs...)
	for _, name := range b.vars {
		d := opts.Domains[name]
		prelude = append(prelude,
			fmt.Sprintf("(declare-const %s Int)", name),
			fmt.Sprintf("(assert (>= %s %s))", name, intLit(d.Lo)),
			fmt.Sprintf("(assert (<= %s %s))", name, intLit(d.Hi)))
	}
	b.sess = newSession(opts.SMT, opts.Interrupt, prelude, &b.stats)
	return b, nil
}

// intLit renders an int64 as an SMT-LIB term.
func intLit(v int64) string {
	if v < 0 {
		return fmt.Sprintf("(- %d)", uint64(-(v+1))+1)
	}
	return fmt.Sprintf("%d", v)
}

func (b *backend) Push() {
	b.fallback.Push()
	b.stats.PushedFrames++
	b.frames = append(b.frames, &frame{})
}

func (b *backend) Pop() {
	if len(b.frames) == 1 {
		panic("smtlib: Pop of the base frame (push/pop imbalance)")
	}
	b.fallback.Pop()
	b.stats.PoppedFrames++
	b.frames = b.frames[:len(b.frames)-1]
}

func (b *backend) Assert(c sym.Expr) {
	b.fallback.Assert(c)
	b.stats.Asserts++
	top := b.frames[len(b.frames)-1]
	top.conds = append(top.conds, c)
	if b.extOK && !top.unsupported {
		line, err := renderAssert(c, b.declared)
		if err != nil {
			top.unsupported = true
			top.lines = nil
			return
		}
		top.lines = append(top.lines, line)
	}
}

func (b *backend) Check() constraint.Result {
	b.stats.Checks++
	res := b.check()
	b.stats.Tally(res)
	if res.Sat {
		b.model = res.Model
	}
	return res
}

// check tries the external solver first; any rung of the degradation
// ladder (or an unsupported stack, or an external "unknown") counts an
// ExtUnknown and hands the verdict to the in-process fallback. The
// fallback decides from the identical assertion stack, so the two layers
// can only differ in who answered, never in what.
func (b *backend) check() constraint.Result {
	if b.external() {
		if res, err := b.sess.check(b.rendered(), b.vars, b.validate); err == nil {
			b.stats.ExtAnswers++
			return res
		}
		b.stats.ExtUnknowns++
	} else {
		b.stats.ExtUnknowns++
	}
	b.stats.FallbackSolves++
	return b.fallback.Check()
}

// external reports whether the current stack is eligible for the external
// solver at all.
func (b *backend) external() bool {
	if !b.extOK {
		return false
	}
	for _, f := range b.frames {
		if f.unsupported {
			return false
		}
	}
	return true
}

// rendered materializes the per-frame assert lines for the session's
// stack sync.
func (b *backend) rendered() [][]string {
	out := make([][]string, len(b.frames))
	for i, f := range b.frames {
		out[i] = f.lines
	}
	return out
}

// validate vets an external sat model before it is trusted: every
// declared variable present (parseValues guarantees that), inside its
// domain, and the full asserted stack actually satisfied under the IR's
// own evaluator. Trust-but-verify is what lets the backend adopt answers
// from an arbitrary binary without widening the engine's trusted base.
func (b *backend) validate(model map[string]int64) error {
	for name, d := range b.domains {
		v, ok := model[name]
		if !ok {
			return fmt.Errorf("variable %s missing", name)
		}
		if v < d.Lo || v > d.Hi {
			return fmt.Errorf("%s = %d outside domain [%d, %d]", name, v, d.Lo, d.Hi)
		}
	}
	for _, f := range b.frames {
		for _, c := range f.conds {
			v, err := solver.EvalInt01(c, model)
			if err != nil {
				return fmt.Errorf("evaluating %v: %v", c, err)
			}
			if v == 0 {
				return fmt.Errorf("constraint %v not satisfied", c)
			}
		}
	}
	return nil
}

func (b *backend) Model() map[string]int64 { return b.model }

func (b *backend) Caps() constraint.Caps {
	return constraint.Caps{Name: Name, PrefixReuse: true}
}

// Stats reports the backend's own stack/verdict/resilience counters plus
// the fallback's reuse counters (cache hits, snapshots, search nodes), so
// the incremental machinery stays observable through the smtlib wrapper.
func (b *backend) Stats() constraint.Stats {
	st := b.stats
	st.Backend = Name
	fb := b.fallback.Stats()
	st.CacheHits += fb.CacheHits
	st.CacheMisses += fb.CacheMisses
	st.ModelReuses += fb.ModelReuses
	st.BoxConflicts += fb.BoxConflicts
	st.FullSolves += fb.FullSolves
	st.SearchNodes += fb.SearchNodes
	st.Propagations += fb.Propagations
	st.BoxSnapshots += fb.BoxSnapshots
	st.FrameMemoHits += fb.FrameMemoHits
	return st
}

func (b *backend) ResetStats() {
	b.stats = constraint.Stats{}
	b.fallback.ResetStats()
}
