#!/bin/sh
# Fake SMT solver that dies the moment it is asked anything hard.
while IFS= read -r line; do
  case "$line" in
    "(check-sat)") exit 137 ;;
  esac
done
