#!/bin/sh
# Fake SMT solver that accepts everything and never replies.
while IFS= read -r line; do
  :
done
sleep 600
