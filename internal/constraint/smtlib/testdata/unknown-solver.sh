#!/bin/sh
# Fake SMT solver: converses correctly but answers every check-sat with
# "unknown" — the healthy-but-unhelpful solver.
while IFS= read -r line; do
  case "$line" in
    "(check-sat)") echo unknown ;;
  esac
done
