package smtlib

import (
	"fmt"
	"strconv"
	"strings"

	"dise/internal/sym"
)

// The printer renders sym expressions into the SMT-LIB2 fragment the
// external solver sees. The IR is integer-valued with C-like truth (a
// condition holds iff it evaluates to a non-zero integer — see
// solver.EvalInt01), while SMT-LIB is two-sorted, so the printer carries
// the target sort through the recursion: bexpr renders into Bool, iexpr
// into Int, and the two coerce into each other with (distinct _ 0) and
// (ite _ 1 0) at the seams.
//
// Division and modulus follow Go's truncate-toward-zero semantics in the
// IR, not SMT-LIB's Euclidean div/mod; the prelude defines tdiv/tmod
// (preludeDefs) in terms of the Euclidean operators and the printer emits
// those. Only constant non-zero divisors are accepted: a symbolic divisor
// could be zero, where the IR's evaluation errors but SMT-LIB's div is an
// arbitrary total function, so such constraints stay with the in-process
// fallback instead of risking a verdict the engine would disagree with.
//
// Anything outside the supported fragment returns an error; the backend
// marks the frame unsupported and the external layer skips every Check
// whose stack contains it. Unsupported never means unsound.

// preludeDefs are the helper definitions emitted once per solver process,
// before any declaration: truncated division and modulus over the
// Euclidean builtins.
var preludeDefs = []string{
	"(set-option :print-success false)",
	"(set-option :produce-models true)",
	"(define-fun tdiv ((a Int) (b Int)) Int" +
		" (ite (or (>= a 0) (= (mod a b) 0)) (div a b)" +
		" (ite (> b 0) (+ (div a b) 1) (- (div a b) 1))))",
	"(define-fun tmod ((a Int) (b Int)) Int (- a (* b (tdiv a b))))",
}

// renderAssert renders one asserted constraint as a complete
// "(assert ...)" command line, or an error when c falls outside the
// supported fragment (undeclared variable, symbolic divisor, exotic name).
func renderAssert(c sym.Expr, declared map[string]bool) (string, error) {
	var b strings.Builder
	b.WriteString("(assert ")
	if err := bexpr(&b, c, declared); err != nil {
		return "", err
	}
	b.WriteString(")")
	return b.String(), nil
}

// bexpr renders e at sort Bool.
func bexpr(w *strings.Builder, e sym.Expr, declared map[string]bool) error {
	switch e := e.(type) {
	case *sym.BoolConst:
		if e.V {
			w.WriteString("true")
		} else {
			w.WriteString("false")
		}
		return nil
	case *sym.Not:
		w.WriteString("(not ")
		if err := bexpr(w, e.X, declared); err != nil {
			return err
		}
		w.WriteString(")")
		return nil
	case *sym.Bin:
		switch {
		case e.Op == sym.OpAnd || e.Op == sym.OpOr:
			if e.Op == sym.OpAnd {
				w.WriteString("(and ")
			} else {
				w.WriteString("(or ")
			}
			if err := bexpr(w, e.L, declared); err != nil {
				return err
			}
			w.WriteString(" ")
			if err := bexpr(w, e.R, declared); err != nil {
				return err
			}
			w.WriteString(")")
			return nil
		case e.Op.IsComparison():
			op, neg := "", false
			switch e.Op {
			case sym.OpEQ:
				op = "="
			case sym.OpNE:
				op, neg = "=", true
			case sym.OpLT:
				op = "<"
			case sym.OpLE:
				op = "<="
			case sym.OpGT:
				op = ">"
			case sym.OpGE:
				op = ">="
			}
			if neg {
				w.WriteString("(not ")
			}
			w.WriteString("(" + op + " ")
			if err := iexpr(w, e.L, declared); err != nil {
				return err
			}
			w.WriteString(" ")
			if err := iexpr(w, e.R, declared); err != nil {
				return err
			}
			w.WriteString(")")
			if neg {
				w.WriteString(")")
			}
			return nil
		}
	}
	// Integer-valued in boolean position: non-zero is true.
	w.WriteString("(distinct 0 ")
	if err := iexpr(w, e, declared); err != nil {
		return err
	}
	w.WriteString(")")
	return nil
}

// iexpr renders e at sort Int.
func iexpr(w *strings.Builder, e sym.Expr, declared map[string]bool) error {
	switch e := e.(type) {
	case *sym.IntConst:
		if e.V < 0 {
			// int64 min negates safely through the uint64 detour.
			w.WriteString("(- " + strconv.FormatUint(uint64(-(e.V+1))+1, 10) + ")")
		} else {
			w.WriteString(strconv.FormatInt(e.V, 10))
		}
		return nil
	case *sym.Var:
		if !declared[e.Name] {
			return fmt.Errorf("smtlib: variable %q has no declared domain", e.Name)
		}
		w.WriteString(e.Name)
		return nil
	case *sym.Neg:
		w.WriteString("(- ")
		if err := iexpr(w, e.X, declared); err != nil {
			return err
		}
		w.WriteString(")")
		return nil
	case *sym.Ite:
		w.WriteString("(ite ")
		if err := bexpr(w, e.Cond, declared); err != nil {
			return err
		}
		w.WriteString(" ")
		if err := iexpr(w, e.Then, declared); err != nil {
			return err
		}
		w.WriteString(" ")
		if err := iexpr(w, e.Else, declared); err != nil {
			return err
		}
		w.WriteString(")")
		return nil
	case *sym.Bin:
		if e.Op.IsArith() {
			op := ""
			switch e.Op {
			case sym.OpAdd:
				op = "+"
			case sym.OpSub:
				op = "-"
			case sym.OpMul:
				op = "*"
			case sym.OpDiv, sym.OpMod:
				d, ok := e.R.(*sym.IntConst)
				if !ok || d.V == 0 {
					return fmt.Errorf("smtlib: %v with a non-constant or zero divisor is outside the supported fragment", e.Op)
				}
				if e.Op == sym.OpDiv {
					op = "tdiv"
				} else {
					op = "tmod"
				}
			}
			w.WriteString("(" + op + " ")
			if err := iexpr(w, e.L, declared); err != nil {
				return err
			}
			w.WriteString(" ")
			if err := iexpr(w, e.R, declared); err != nil {
				return err
			}
			w.WriteString(")")
			return nil
		}
	}
	// Boolean-valued in integer position: true is 1, false is 0.
	w.WriteString("(ite ")
	if err := bexpr(w, e, declared); err != nil {
		return err
	}
	w.WriteString(" 1 0)")
	return nil
}

// validName reports whether name is a plain SMT-LIB simple symbol the
// printer can emit verbatim. The engine's symbol convention (PedalPos,
// BSwitch) always satisfies it; exotic names from test code fall back to
// unsupported rather than risking a parse error in the solver.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Reserved words of the concrete syntax the printer itself uses.
	switch name {
	case "assert", "true", "false", "and", "or", "not", "ite", "distinct", "tdiv", "tmod", "div", "mod", "Int", "Bool":
		return false
	}
	return true
}
