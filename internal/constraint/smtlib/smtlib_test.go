package smtlib

import (
	"errors"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dise/internal/constraint"
	"dise/internal/solver"
	"dise/internal/sym"
)

// scriptProc is a deterministic in-process SMTProcess for unit tests: each
// check-sat consumes the next scripted action, get-value replies with the
// scripted model line. It exercises the supervisor's full reply path
// without any solver binary.
type scriptProc struct {
	mu      sync.Mutex
	queue   []string
	notify  chan struct{}
	done    chan struct{}
	once    sync.Once
	checks  *[]string // shared script: next check-sat actions, consumed front-first
	value   string    // get-value reply line
	killed  bool
	pops    int
	pushes  int
	asserts int
}

// Script actions besides literal reply lines.
const (
	actCrash = "CRASH" // die without replying
	actHang  = "HANG"  // never reply
)

func newScriptProc(checks *[]string, value string) *scriptProc {
	return &scriptProc{
		queue:  nil,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
		checks: checks,
		value:  value,
	}
}

func (p *scriptProc) Write(line string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.killed {
		return errors.New("write to dead process")
	}
	switch {
	case strings.HasPrefix(line, "(check-sat"):
		if len(*p.checks) == 0 {
			p.push("unknown")
			return nil
		}
		act := (*p.checks)[0]
		*p.checks = (*p.checks)[1:]
		switch act {
		case actCrash:
			p.dieLocked()
		case actHang:
			// no reply: the deadline handles it
		default:
			p.push(act)
		}
	case strings.HasPrefix(line, "(get-value"):
		p.push(p.value)
	case strings.HasPrefix(line, "(push"):
		p.pushes++
	case strings.HasPrefix(line, "(pop"):
		p.pops++
	case strings.HasPrefix(line, "(assert"):
		p.asserts++
	}
	return nil
}

func (p *scriptProc) push(line string) {
	p.queue = append(p.queue, line)
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

func (p *scriptProc) dieLocked() {
	if !p.killed {
		p.killed = true
		p.once.Do(func() { close(p.done) })
	}
}

func (p *scriptProc) ReadLine() (string, error) {
	for {
		p.mu.Lock()
		if len(p.queue) > 0 {
			line := p.queue[0]
			p.queue = p.queue[1:]
			p.mu.Unlock()
			return line, nil
		}
		dead := p.killed
		p.mu.Unlock()
		if dead {
			return "", io.EOF
		}
		select {
		case <-p.notify:
		case <-p.done:
			return "", io.EOF
		}
	}
}

func (p *scriptProc) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dieLocked()
}

// fakeClock is a manually advanced clock for breaker/backoff tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testOptions builds Options with one int variable X in [0, 10], a
// scripted launcher, and timings fast enough for tests.
func testOptions(t *testing.T, checks *[]string, value string, clock *fakeClock) (constraint.Options, *[]*scriptProc) {
	t.Helper()
	var procs []*scriptProc
	o := constraint.Options{
		Domains: map[string]solver.Interval{"X": {Lo: 0, Hi: 10}},
		SMT: constraint.SMTOptions{
			CheckTimeout:   50 * time.Millisecond,
			RestartBackoff: time.Millisecond,
			Launch: func() (constraint.SMTProcess, error) {
				p := newScriptProc(checks, value)
				procs = append(procs, p)
				return p, nil
			},
		},
	}
	if clock != nil {
		o.SMT.Clock = clock.now
	}
	return o, &procs
}

func mustBackend(t *testing.T, o constraint.Options) constraint.Backend {
	t.Helper()
	b, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

func xGT(v int64) sym.Expr { return sym.Cmp(sym.OpGT, sym.V("X"), sym.Int(v)) }

func TestExternalSatModelAdopted(t *testing.T) {
	checks := []string{"sat"}
	o, _ := testOptions(t, &checks, "((X 6))", nil)
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(5))
	res := b.Check()
	if !res.Sat || res.Unknown {
		t.Fatalf("want sat, got %+v", res)
	}
	if res.Model["X"] != 6 {
		t.Fatalf("external model not adopted: %v", res.Model)
	}
	st := b.Stats()
	if st.ExtAnswers != 1 || st.ExtSolves != 1 || st.FallbackSolves != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if b.Model()["X"] != 6 {
		t.Fatalf("Model() = %v", b.Model())
	}
	b.Pop()
}

func TestExternalUnsatAdopted(t *testing.T) {
	checks := []string{"unsat"}
	o, _ := testOptions(t, &checks, "((X 0))", nil)
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(50)) // outside [0,10]: genuinely unsat
	res := b.Check()
	if res.Sat || res.Unknown {
		t.Fatalf("want unsat, got %+v", res)
	}
	if st := b.Stats(); st.ExtAnswers != 1 || st.FallbackSolves != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLyingModelRejectedAndFallbackDecides(t *testing.T) {
	// External claims sat with X=2, which violates X > 5: validation must
	// refuse it, and the fallback still produces the correct sat verdict
	// with a model that does satisfy the stack.
	checks := []string{"sat"}
	o, procs := testOptions(t, &checks, "((X 2))", nil)
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(5))
	res := b.Check()
	if !res.Sat {
		t.Fatalf("want sat from fallback, got %+v", res)
	}
	if res.Model["X"] <= 5 {
		t.Fatalf("fallback model invalid: %v", res.Model)
	}
	st := b.Stats()
	if st.ExtUnknowns != 1 || st.FallbackSolves != 1 || st.ExtAnswers != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if !(*procs)[0].killed {
		t.Fatal("a lying solver process must be killed")
	}
}

func TestOutOfDomainModelRejected(t *testing.T) {
	checks := []string{"sat"}
	o, _ := testOptions(t, &checks, "((X 99))", nil)
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(5))
	if res := b.Check(); !res.Sat || res.Model["X"] > 10 {
		t.Fatalf("want in-domain fallback model, got %+v", res)
	}
	if st := b.Stats(); st.ExtAnswers != 0 {
		t.Fatalf("out-of-domain model adopted: %+v", st)
	}
}

func TestGarbageReplyDegradesToFallback(t *testing.T) {
	checks := []string{"Segmentation fault (core dumped)"}
	o, procs := testOptions(t, &checks, "", nil)
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(5))
	if res := b.Check(); !res.Sat {
		t.Fatalf("want sat from fallback, got %+v", res)
	}
	st := b.Stats()
	if st.ExtUnknowns != 1 || st.FallbackSolves != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if !(*procs)[0].killed {
		t.Fatal("garbage must kill the process")
	}
}

func TestUnknownReplyIsHealthyDegradation(t *testing.T) {
	checks := []string{"unknown", "unknown"}
	o, procs := testOptions(t, &checks, "", nil)
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(5))
	b.Check()
	b.Check()
	st := b.Stats()
	if st.ExtSolves != 2 || st.ExtUnknowns != 2 || st.FallbackSolves != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if len(*procs) != 1 {
		t.Fatalf("unknown replies must not restart the process; spawned %d", len(*procs))
	}
	if st.ExtRestarts != 1 || st.ExtBreakerTrips != 0 {
		t.Fatalf("unknown replies are not failures: %+v", st)
	}
}

func TestHangHitsDeadlineAndKills(t *testing.T) {
	checks := []string{actHang}
	o, procs := testOptions(t, &checks, "", nil)
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(5))
	if res := b.Check(); !res.Sat {
		t.Fatalf("want sat from fallback, got %+v", res)
	}
	st := b.Stats()
	if st.ExtTimeouts != 1 || st.ExtUnknowns != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if !(*procs)[0].killed {
		t.Fatal("deadline expiry must kill the process")
	}
}

func TestCrashRestartsUnderBackoff(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	checks := []string{actCrash, "unsat"}
	o, procs := testOptions(t, &checks, "", clock)
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(50))

	b.Check() // crash: fallback answers, respawn scheduled after backoff
	b.Check() // still inside the backoff window: external skipped entirely
	if len(*procs) != 1 {
		t.Fatalf("respawned inside the backoff window: %d procs", len(*procs))
	}
	clock.advance(time.Second)
	res := b.Check() // backoff passed: fresh process answers unsat
	if res.Sat || res.Unknown {
		t.Fatalf("want unsat, got %+v", res)
	}
	if len(*procs) != 2 {
		t.Fatalf("want one respawn, got %d procs", len(*procs))
	}
	st := b.Stats()
	if st.ExtRestarts != 2 || st.ExtAnswers != 1 || st.ExtUnknowns != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// The respawned process must have been re-synced from scratch.
	if (*procs)[1].pushes == 0 || (*procs)[1].asserts == 0 {
		t.Fatal("stack not replayed after restart")
	}
}

func TestBreakerTripsAndRecoversHalfOpen(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	checks := []string{actCrash, actCrash, "unsat"}
	o, procs := testOptions(t, &checks, "", clock)
	o.SMT.BreakerThreshold = 2
	o.SMT.BreakerCooldown = time.Minute
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(50))

	b.Check() // crash 1
	clock.advance(time.Second)
	b.Check() // crash 2: breaker trips
	st := b.Stats()
	if st.ExtBreakerTrips != 1 {
		t.Fatalf("breaker did not trip: %+v", st)
	}
	spawned := len(*procs)
	clock.advance(30 * time.Second) // inside the cooldown
	b.Check()
	if len(*procs) != spawned {
		t.Fatal("open breaker must skip the external layer entirely")
	}
	clock.advance(31 * time.Second) // past the cooldown: half-open probe
	res := b.Check()
	if res.Sat || res.Unknown {
		t.Fatalf("half-open probe should adopt unsat, got %+v", res)
	}
	if len(*procs) != spawned+1 {
		t.Fatalf("half-open probe did not respawn: %d vs %d", len(*procs), spawned)
	}
	// The successful probe closed the breaker: the next check goes external
	// with no cooldown wait.
	res = b.Check() // script exhausted: replies "unknown", still a healthy talk
	if st := b.Stats(); st.ExtBreakerTrips != 1 {
		t.Fatalf("breaker re-tripped after recovery: %+v", st)
	}
	_ = res
}

func TestDisabledAfterRestartBudget(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	checks := []string{actCrash, actCrash, actCrash, actCrash}
	o, procs := testOptions(t, &checks, "", clock)
	o.SMT.MaxRestarts = 2
	o.SMT.BreakerThreshold = 100 // keep the breaker out of this test's way
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(5))
	for i := 0; i < 5; i++ {
		if res := b.Check(); !res.Sat {
			t.Fatalf("check %d: want sat from fallback, got %+v", i, res)
		}
		clock.advance(time.Minute)
	}
	if len(*procs) != 2 {
		t.Fatalf("restart budget not enforced: %d spawns", len(*procs))
	}
	st := b.Stats()
	if st.ExtUnknowns != 5 || st.FallbackSolves != 5 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNoBinaryDegradesEveryCheck(t *testing.T) {
	o := constraint.Options{
		Domains: map[string]solver.Interval{"X": {Lo: 0, Hi: 10}},
		SMT:     constraint.SMTOptions{SolverPath: "/nonexistent/never-a-solver"},
	}
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(5))
	if res := b.Check(); !res.Sat {
		t.Fatalf("want sat from fallback, got %+v", res)
	}
	b.Pop()
	b.Push()
	b.Assert(xGT(50))
	if res := b.Check(); res.Sat || res.Unknown {
		t.Fatalf("want unsat from fallback, got %+v", res)
	}
	st := b.Stats()
	if st.ExtUnknowns != 2 || st.FallbackSolves != 2 || st.Unknown != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestUnsupportedFragmentSkipsExternal(t *testing.T) {
	checks := []string{"sat"}
	o, procs := testOptions(t, &checks, "((X 6))", nil)
	b := mustBackend(t, o)
	b.Push()
	// Symbolic divisor: outside the printer's fragment.
	b.Assert(sym.Cmp(sym.OpGT, sym.Div(sym.Int(10), sym.V("X")), sym.Int(1)))
	res := b.Check()
	if res.Unknown {
		t.Fatalf("fallback should decide, got %+v", res)
	}
	if len(*procs) != 0 {
		t.Fatal("unsupported stack must not reach the external solver")
	}
	st := b.Stats()
	if st.ExtSolves != 0 || st.ExtUnknowns != 1 {
		t.Fatalf("stats: %+v", st)
	}
	b.Pop()
	// With the unsupported frame popped, the external layer is eligible again.
	b.Push()
	b.Assert(xGT(5))
	if res := b.Check(); !res.Sat || res.Model["X"] != 6 {
		t.Fatalf("external not re-enabled after pop: %+v", res)
	}
}

func TestInterruptAbandonsExternalWait(t *testing.T) {
	checks := []string{actHang}
	var cancelled atomic.Bool
	o, procs := testOptions(t, &checks, "", nil)
	o.SMT.CheckTimeout = 10 * time.Second // the interrupt must win, not the deadline
	o.Interrupt = func() error {
		if cancelled.Load() {
			return errors.New("cancelled")
		}
		return nil
	}
	b := mustBackend(t, o)
	b.Push()
	b.Assert(xGT(5))
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancelled.Store(true)
	}()
	start := time.Now()
	res := b.Check()
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("interrupt did not abandon the wait (took %v)", since)
	}
	// The fallback also polls the interrupt, so the whole Check degrades
	// to Unknown — exactly what a cancelled request reports.
	if !res.Unknown && !res.Sat {
		t.Fatalf("unexpected verdict %+v", res)
	}
	if !(*procs)[0].killed {
		t.Fatal("abandoning a wait must kill the process (stream is mid-reply)")
	}
}

func TestPrinterGolden(t *testing.T) {
	declared := map[string]bool{"X": true, "Y": true}
	for _, tc := range []struct {
		expr sym.Expr
		want string
	}{
		{xGT(5), "(assert (> X 5))"},
		{sym.Cmp(sym.OpNE, sym.V("X"), sym.V("Y")), "(assert (not (= X Y)))"},
		{sym.AndE(xGT(0), sym.Cmp(sym.OpLE, sym.V("Y"), sym.Int(3))), "(assert (and (> X 0) (<= Y 3)))"},
		{sym.NotE(xGT(2)), "(assert (<= X 2))"}, // smart constructor negates the comparison
		{sym.Cmp(sym.OpEQ, sym.Div(sym.V("X"), sym.Int(2)), sym.Int(3)), "(assert (= (tdiv X 2) 3))"},
		{sym.Cmp(sym.OpEQ, sym.Mod(sym.V("X"), sym.Int(2)), sym.Int(1)), "(assert (= (tmod X 2) 1))"},
		{sym.Cmp(sym.OpEQ, sym.Add(sym.V("X"), sym.Int(-3)), sym.Int(0)), "(assert (= (+ X (- 3)) 0))"},
	} {
		got, err := renderAssert(tc.expr, declared)
		if err != nil {
			t.Fatalf("%v: %v", tc.expr, err)
		}
		if got != tc.want {
			t.Errorf("render(%v) = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestPrinterRejectsUndeclaredAndSymbolicDivisor(t *testing.T) {
	declared := map[string]bool{"X": true}
	if _, err := renderAssert(sym.Cmp(sym.OpGT, sym.V("Z"), sym.Int(0)), declared); err == nil {
		t.Error("undeclared variable accepted")
	}
	if _, err := renderAssert(sym.Cmp(sym.OpGT, sym.Div(sym.V("X"), sym.V("X")), sym.Int(0)), declared); err == nil {
		t.Error("symbolic divisor accepted")
	}
	if _, err := renderAssert(sym.Cmp(sym.OpGT, sym.Div(sym.V("X"), sym.Int(0)), sym.Int(0)), declared); err == nil {
		t.Error("zero divisor accepted")
	}
}

func TestParseValues(t *testing.T) {
	m, err := parseValues("((X 3)\n (Y (- 2)))", []string{"X", "Y"})
	if err != nil {
		t.Fatalf("parseValues: %v", err)
	}
	if m["X"] != 3 || m["Y"] != -2 {
		t.Fatalf("model %v", m)
	}
	for _, bad := range []string{
		"((X 3))",             // Y missing
		"((X 3) (Y whoops))",  // non-numeric
		"(error \"no model\")", // solver error form
		"((X 3) (X 4) (Y 0))", // duplicate
	} {
		if _, err := parseValues(bad, []string{"X", "Y"}); err == nil {
			t.Errorf("parseValues(%q) accepted", bad)
		}
	}
}
