package smtlib

import (
	"fmt"
	"strconv"
	"strings"
)

// parseValues parses a get-value reply — ((X 3) (Y (- 2)) ...) — into a
// model, strictly: every requested variable must appear exactly once with
// a plain or negated integer literal. Anything else (solver error forms,
// algebraic values, missing entries) is an error, which the supervisor
// treats as a garbage reply.
func parseValues(reply string, vars []string) (map[string]int64, error) {
	toks := tokenize(reply)
	p := &tokens{list: toks}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	model := make(map[string]int64, len(vars))
	//diselint:ignore interruptloop bounded: consumes at least three tokens of a finite reply per iteration
	for p.peek() != ")" {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		name := p.next()
		if name == "" || name == "(" || name == ")" {
			return nil, fmt.Errorf("smtlib: malformed get-value pair near %q", name)
		}
		v, err := p.intValue()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, dup := model[name]; dup {
			return nil, fmt.Errorf("smtlib: variable %s appears twice in model", name)
		}
		model[name] = v
	}
	for _, v := range vars {
		if _, ok := model[v]; !ok {
			return nil, fmt.Errorf("smtlib: model is missing variable %s", v)
		}
	}
	return model, nil
}

// intValue parses an integer literal or the negation form (- N).
func (p *tokens) intValue() (int64, error) {
	t := p.next()
	if t == "(" {
		if op := p.next(); op != "-" {
			return 0, fmt.Errorf("smtlib: unsupported model value form (%s ...)", op)
		}
		n := p.next()
		v, err := strconv.ParseInt(n, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("smtlib: bad negated model value %q", n)
		}
		if err := p.expect(")"); err != nil {
			return 0, err
		}
		return -v, nil
	}
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("smtlib: bad model value %q", t)
	}
	return v, nil
}

type tokens struct {
	list []string
	pos  int
}

func (p *tokens) next() string {
	if p.pos >= len(p.list) {
		return ""
	}
	t := p.list[p.pos]
	p.pos++
	return t
}

func (p *tokens) peek() string {
	if p.pos >= len(p.list) {
		return ""
	}
	return p.list[p.pos]
}

func (p *tokens) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("smtlib: expected %q in model reply, got %q", t, got)
	}
	return nil
}

// tokenize splits an s-expression into parens and atoms.
func tokenize(s string) []string {
	var out []string
	var atom strings.Builder
	flush := func() {
		if atom.Len() > 0 {
			out = append(out, atom.String())
			atom.Reset()
		}
	}
	for _, r := range s {
		switch r {
		case '(', ')':
			flush()
			out = append(out, string(r))
		case ' ', '\t', '\n', '\r':
			flush()
		default:
			atom.WriteRune(r)
		}
	}
	flush()
	return out
}
