package smtlib

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"dise/internal/constraint"
)

// session supervises the external solver conversation for one backend
// instance. It owns the degradation ladder the README documents: a
// per-check deadline kills a hung process; a crashed or killed process is
// respawned under a jittered exponential backoff; consecutive failures
// trip a circuit breaker that skips the external layer for a cooldown
// (then allows one half-open probe); and a bounded spawn budget ends the
// ladder at permanently-disabled. Every rung returns "no definitive
// answer" to the backend, which falls back to the in-process solver — the
// ladder moves Stats counters, never verdicts.
type session struct {
	o         constraint.SMTOptions // resolved: all defaults applied
	launch    func() (constraint.SMTProcess, error)
	now       func() time.Time
	stats     *constraint.Stats
	interrupt func() error // Options.Interrupt, polled while awaiting replies
	prelude   []string     // defs + declarations + domain asserts, replayed per spawn

	proc   constraint.SMTProcess
	ch     chan string   // replies pumped by the reader goroutine
	done   chan struct{} // closed by kill; unblocks a reader stuck in send
	synced [][]string    // assert lines per frame currently on the process

	spawns      int
	consecFails int
	backoff     time.Duration
	notBefore   time.Time // crashed: no respawn before this instant
	breakerOpen bool
	reopenAt    time.Time // breaker open until this instant (then half-open)
	disabled    bool      // permanent: no binary, or spawn budget exhausted

	jitter *rand.Rand
}

var (
	errCrashed      = errors.New("smtlib: solver process exited mid-conversation")
	errTimeout      = errors.New("smtlib: check deadline expired")
	errInterrupted  = errors.New("smtlib: interrupted while awaiting reply")
	errNoSolver     = errors.New("smtlib: no solver binary found on PATH")
	errSpawnsSpent  = errors.New("smtlib: restart budget exhausted")
	errBreakerOpen  = errors.New("smtlib: circuit breaker open")
	errInBackoff    = errors.New("smtlib: in restart backoff")
	errLyingModel   = errors.New("smtlib: solver model failed validation")
	errExtDisabled  = errors.New("smtlib: external solving disabled")
	errUnsupported  = errors.New("smtlib: stack outside the supported fragment")
	errNoDefinitive = errors.New("smtlib: solver answered unknown")
)

// newSession resolves the option defaults and the launch function. A
// session with no way to launch anything starts permanently disabled; the
// backend still counts every Check against it as an ExtUnknown, which is
// what the solver-less CI smoke asserts on.
func newSession(o constraint.SMTOptions, interrupt func() error, prelude []string, stats *constraint.Stats) *session {
	if o.CheckTimeout <= 0 {
		o.CheckTimeout = 5 * time.Second
	}
	if o.RestartBackoff <= 0 {
		o.RestartBackoff = 50 * time.Millisecond
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 8
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	s := &session{
		o:         o,
		now:       o.Clock,
		stats:     stats,
		prelude:   prelude,
		interrupt: interrupt,
		jitter:    rand.New(rand.NewSource(1)),
	}
	if s.now == nil {
		s.now = time.Now
	}
	switch {
	case o.Launch != nil:
		s.launch = o.Launch
	default:
		path, args := o.SolverPath, o.SolverArgs
		if path == "" {
			path, args = discoverSolver()
		} else if args == nil {
			args = argsFor(path)
		}
		if path == "" {
			s.disabled = true
			break
		}
		s.launch = func() (constraint.SMTProcess, error) { return launchExec(path, args) }
	}
	return s
}

// check runs one external check-sat conversation over the rendered frame
// stack. It returns ok=false (with the rung of the ladder that stopped it)
// whenever the external layer produced no definitive, validated verdict;
// the backend then consults its fallback. validate vets a sat model before
// it is trusted.
func (s *session) check(frames [][]string, vars []string, validate func(map[string]int64) error) (constraint.Result, error) {
	now := s.now()
	if s.disabled {
		return constraint.Result{}, errExtDisabled
	}
	if s.breakerOpen && now.Before(s.reopenAt) {
		return constraint.Result{}, errBreakerOpen
	}
	// Breaker open but cooled down: fall through as the half-open probe.
	if s.proc == nil {
		if now.Before(s.notBefore) {
			return constraint.Result{}, errInBackoff
		}
		if err := s.spawn(); err != nil {
			s.fail()
			return constraint.Result{}, err
		}
	}
	if err := s.sync(frames); err != nil {
		s.fail()
		return constraint.Result{}, err
	}
	s.stats.ExtSolves++
	verdict, err := s.checkSat()
	if err != nil {
		if errors.Is(err, errInterrupted) {
			// Caller-initiated: the process was healthy, so the kill does
			// not count against the solver's health record.
			s.kill()
			return constraint.Result{}, err
		}
		s.fail()
		return constraint.Result{}, err
	}
	switch verdict {
	case "unknown":
		// A healthy conversation without a verdict: not a failure.
		s.ok()
		return constraint.Result{}, errNoDefinitive
	case "unsat":
		s.ok()
		return constraint.Result{Sat: false}, nil
	default: // "sat"
		model, err := s.getValues(vars)
		if err != nil {
			s.fail()
			return constraint.Result{}, err
		}
		if verr := validate(model); verr != nil {
			// A model contradicting the asserted stack means the solver
			// (or the transport) is lying; strict validation treats it
			// exactly like a garbage reply.
			s.fail()
			return constraint.Result{}, fmt.Errorf("%w: %v", errLyingModel, verr)
		}
		s.ok()
		return constraint.Result{Sat: true, Model: model}, nil
	}
}

// interrupt mirrors Options.Interrupt: polled while awaiting a reply so a
// cancelled request does not hold the engine for a full CheckTimeout.
func (s *session) pollInterrupt() bool {
	return s.interrupt != nil && s.interrupt() != nil
}

// spawn launches a fresh process against the spawn budget and replays the
// prelude (helper definitions, declarations, domain bounds). The frame
// stack is re-synced by the caller from scratch.
func (s *session) spawn() error {
	if s.spawns >= s.o.MaxRestarts {
		s.disabled = true
		return errSpawnsSpent
	}
	s.spawns++
	proc, err := s.launch()
	if err != nil {
		return fmt.Errorf("smtlib: spawn: %w", err)
	}
	s.stats.ExtRestarts++
	s.proc = proc
	s.ch = make(chan string, 16)
	s.done = make(chan struct{})
	go readerPump(proc, s.ch, s.done)
	s.synced = nil
	for _, line := range s.prelude {
		if err := proc.Write(line); err != nil {
			return fmt.Errorf("smtlib: prelude: %w", err)
		}
	}
	return nil
}

// readerPump moves reply lines from the process onto ch until the process
// dies (ReadLine error) or the supervisor kills the conversation (done
// closed — which also covers a pump blocked in send, so no goroutine ever
// leaks on a discarded process).
func readerPump(p constraint.SMTProcess, ch chan<- string, done <-chan struct{}) {
	for {
		line, err := p.ReadLine()
		if err != nil {
			close(ch)
			return
		}
		select {
		case ch <- line:
		case <-done:
			return
		}
	}
}

// sync aligns the process's assertion stack with the backend's rendered
// frames — the same pop-to-common-prefix-then-push discipline the engine's
// syncStack applies to the backend itself, so in steady state each Check
// ships only the delta. A frame whose lines grew in place (Assert onto the
// top frame between Checks) extends without a pop.
func (s *session) sync(frames [][]string) error {
	n := 0
	//diselint:ignore interruptloop bounded: advances one frame per iteration, capped by min(len(synced), len(frames))
	for n < len(s.synced) && n < len(frames) && sameLines(s.synced[n], frames[n]) {
		n++
	}
	if n < len(s.synced) {
		if n == len(s.synced)-1 && n < len(frames) && prefixLines(s.synced[n], frames[n]) {
			// Top synced frame extended in place: assert the tail.
			for _, line := range frames[n][len(s.synced[n]):] {
				if err := s.proc.Write(line); err != nil {
					return fmt.Errorf("smtlib: assert: %w", err)
				}
			}
			s.synced[n] = append([]string(nil), frames[n]...)
			n++
		} else {
			if err := s.proc.Write(fmt.Sprintf("(pop %d)", len(s.synced)-n)); err != nil {
				return fmt.Errorf("smtlib: pop: %w", err)
			}
			s.synced = s.synced[:n]
		}
	}
	for _, f := range frames[n:] {
		if err := s.proc.Write("(push 1)"); err != nil {
			return fmt.Errorf("smtlib: push: %w", err)
		}
		for _, line := range f {
			if err := s.proc.Write(line); err != nil {
				return fmt.Errorf("smtlib: assert: %w", err)
			}
		}
		s.synced = append(s.synced, append([]string(nil), f...))
	}
	return nil
}

func sameLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	return prefixLines(a, b)
}

func prefixLines(a, b []string) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkSat sends (check-sat) and awaits the verdict under the per-check
// deadline, polling the interrupt hook so cancellation does not wait out
// the deadline. Replies are validated strictly: anything but
// sat/unsat/unknown (blank lines and comments aside) is garbage and kills
// the process — a desynchronized reply stream cannot be trusted again.
func (s *session) checkSat() (string, error) {
	if err := s.proc.Write("(check-sat)"); err != nil {
		return "", fmt.Errorf("smtlib: check-sat: %w", err)
	}
	deadline := time.NewTimer(s.o.CheckTimeout)
	defer deadline.Stop()
	poll := time.NewTicker(pollInterval)
	defer poll.Stop()
	for {
		select {
		case line, open := <-s.ch:
			if !open {
				return "", errCrashed
			}
			line = strings.TrimSpace(line)
			switch line {
			case "sat", "unsat", "unknown":
				return line, nil
			case "":
				continue
			}
			if strings.HasPrefix(line, ";") {
				continue
			}
			return "", fmt.Errorf("smtlib: unparseable check-sat reply %q", line)
		case <-deadline.C:
			s.stats.ExtTimeouts++
			return "", errTimeout
		case <-poll.C:
			if s.pollInterrupt() {
				return "", errInterrupted
			}
		}
	}
}

// pollInterval is how often a wait on the external solver re-checks the
// caller's interrupt hook.
const pollInterval = 5 * time.Millisecond

// getValues asks for the model of every declared variable and parses the
// ((name value) ...) reply, accumulating lines until the parentheses
// balance (solvers are free to wrap).
func (s *session) getValues(vars []string) (map[string]int64, error) {
	if err := s.proc.Write("(get-value (" + strings.Join(vars, " ") + "))"); err != nil {
		return nil, fmt.Errorf("smtlib: get-value: %w", err)
	}
	deadline := time.NewTimer(s.o.CheckTimeout)
	defer deadline.Stop()
	poll := time.NewTicker(pollInterval)
	defer poll.Stop()
	var buf strings.Builder
	depth, seen := 0, false
	for {
		select {
		case line, open := <-s.ch:
			if !open {
				return nil, errCrashed
			}
			buf.WriteString(line)
			buf.WriteString("\n")
			for _, r := range line {
				switch r {
				case '(':
					depth, seen = depth+1, true
				case ')':
					depth--
				}
			}
			if seen && depth <= 0 {
				return parseValues(buf.String(), vars)
			}
			if buf.Len() > maxReplyBytes {
				return nil, fmt.Errorf("smtlib: get-value reply exceeds %d bytes", maxReplyBytes)
			}
		case <-deadline.C:
			s.stats.ExtTimeouts++
			return nil, errTimeout
		case <-poll.C:
			if s.pollInterrupt() {
				return nil, errInterrupted
			}
		}
	}
}

// maxReplyBytes caps a model reply; beyond it the stream is garbage.
const maxReplyBytes = 1 << 20

// ok records a healthy conversation: failures stop being consecutive, the
// backoff resets, and an open breaker (this was the half-open probe)
// closes.
func (s *session) ok() {
	s.consecFails = 0
	s.backoff = 0
	s.breakerOpen = false
}

// fail records one failed conversation and advances the ladder: kill the
// process, schedule the respawn under jittered exponential backoff, and
// trip (or re-trip, after a failed half-open probe) the breaker once the
// failures reach the threshold.
func (s *session) fail() {
	s.kill()
	s.consecFails++
	if s.backoff == 0 {
		s.backoff = s.o.RestartBackoff
	} else if s.backoff < 100*s.o.RestartBackoff {
		s.backoff *= 2
	}
	delay := s.backoff + time.Duration(s.jitter.Int63n(int64(s.backoff)/2+1))
	s.notBefore = s.now().Add(delay)
	if s.consecFails >= s.o.BreakerThreshold {
		s.breakerOpen = true
		s.reopenAt = s.now().Add(s.o.BreakerCooldown)
		s.stats.ExtBreakerTrips++
	}
}

// kill discards the current process (idempotent).
func (s *session) kill() {
	if s.proc == nil {
		return
	}
	close(s.done)
	s.proc.Kill()
	s.proc = nil
	s.synced = nil
}
