// Package portfolio is a meta-backend that races member backends on every
// Check. Each member mirrors the full assertion stack; a Check fans out to
// all live members concurrently, adopts the first definitive (non-Unknown)
// verdict, cancels the losers through their interrupt hooks, and waits for
// every member to return before handing the verdict back — no goroutine
// outlives the Check that spawned it.
//
// Member failure is isolated: a panicking member is recovered, counted
// (Stats.MemberFailures), and permanently excluded; the remaining members
// keep deciding. Soundness is the intersection contract — every member
// must be individually sound over the same domains, so any definitive
// member verdict is a correct verdict for the portfolio, and the only
// observable effect of a member dying is which counters move.
//
// The default portfolio is interval + bitvec + smtlib: two in-process
// backends that always answer, plus the external-solver backend whose own
// fallback guarantees it answers too.
package portfolio

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dise/internal/constraint"
	"dise/internal/sym"

	// The default member set includes the external-solver backend.
	_ "dise/internal/constraint/smtlib"
)

// Name is the registry name of the backend.
const Name = "portfolio"

func init() {
	constraint.Register(Name, New)
}

// DefaultMembers is the member set used when Options.Portfolio is empty.
var DefaultMembers = []string{constraint.BackendInterval, constraint.BackendBitvec, "smtlib"}

// errLost is what a losing member's interrupt hook reports once another
// member has already produced the verdict.
var errLost = fmt.Errorf("portfolio: another member answered first")

type member struct {
	name    string
	backend constraint.Backend
	dead    atomic.Bool // excluded after a panic
}

type backend struct {
	members []*member
	stats   constraint.Stats
	cancel  atomic.Bool // set while a Check already has its verdict
	base    func() error
	depth   int // open frames; guards the base-frame Pop contract
	model   map[string]int64
}

// New builds the portfolio from Options.Portfolio (or DefaultMembers).
// Each member gets the same domains and budget but its own interrupt hook:
// the caller's, joined with the portfolio's lost-race cancellation flag.
func New(opts constraint.Options) (constraint.Backend, error) {
	names := opts.Portfolio
	if len(names) == 0 {
		names = DefaultMembers
	}
	b := &backend{base: opts.Interrupt}
	seen := map[string]bool{}
	for _, name := range names {
		if name == Name {
			return nil, fmt.Errorf("portfolio: cannot nest %q as a member", Name)
		}
		if seen[name] {
			return nil, fmt.Errorf("portfolio: duplicate member %q", name)
		}
		seen[name] = true
		mo := opts
		mo.Portfolio = nil
		mo.Interrupt = b.memberInterrupt
		mb, err := constraint.New(name, mo)
		if err != nil {
			return nil, fmt.Errorf("portfolio: member %q: %w", name, err)
		}
		b.members = append(b.members, &member{name: name, backend: mb})
	}
	if len(b.members) == 0 {
		return nil, fmt.Errorf("portfolio: no members")
	}
	return b, nil
}

// memberInterrupt is every member's interrupt hook: the caller's own
// cancellation, plus the race-lost flag that stops members still searching
// after a sibling produced the verdict.
func (b *backend) memberInterrupt() error {
	if b.cancel.Load() {
		return errLost
	}
	if b.base != nil {
		return b.base()
	}
	return nil
}

// each applies op to every live member, recovering and excluding a member
// whose op panics. It returns the number of members still alive.
func (b *backend) each(op func(constraint.Backend)) int {
	live := 0
	for _, m := range b.members {
		if m.dead.Load() {
			continue
		}
		if b.guard(m, op) {
			live++
		}
	}
	return live
}

// guard runs op on one member, converting a panic into the member's
// permanent exclusion. It reports whether the member survived.
func (b *backend) guard(m *member, op func(constraint.Backend)) (alive bool) {
	defer func() {
		if r := recover(); r != nil {
			m.dead.Store(true)
			b.stats.MemberFailures++
			alive = false
		}
	}()
	op(m.backend)
	return true
}

func (b *backend) Push() {
	b.stats.PushedFrames++
	b.depth++
	b.each(func(m constraint.Backend) { m.Push() })
}

func (b *backend) Pop() {
	if b.depth == 0 {
		// A caller imbalance is the caller's bug, not a member failure:
		// surface it instead of excluding every member.
		panic("portfolio: Pop of the base frame (push/pop imbalance)")
	}
	b.stats.PoppedFrames++
	b.depth--
	b.each(func(m constraint.Backend) { m.Pop() })
}

func (b *backend) Assert(c sym.Expr) {
	b.stats.Asserts++
	b.each(func(m constraint.Backend) { m.Assert(c) })
}

// Check races the live members. The first definitive verdict wins and
// flips the cancellation flag; every other member notices through its
// interrupt hook and returns early (as Unknown, which the portfolio
// discards). The method returns only after every racer has returned, so a
// Check never leaks a goroutine into the next one.
func (b *backend) Check() constraint.Result {
	b.stats.Checks++
	res := b.race()
	b.stats.Tally(res)
	if res.Sat {
		b.model = res.Model
	}
	return res
}

type verdict struct {
	m   *member
	res constraint.Result
	err any // non-nil: the member panicked with this value
}

func (b *backend) race() constraint.Result {
	b.cancel.Store(false)
	ch := make(chan verdict)
	racing := 0
	var wg sync.WaitGroup
	for _, m := range b.members {
		if m.dead.Load() {
			continue
		}
		racing++
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			v := verdict{m: m}
			func() {
				defer func() { v.err = recover() }()
				v.res = m.backend.Check()
			}()
			ch <- v
		}(m)
	}
	if racing == 0 {
		// Every member has panicked its way out of the portfolio; Unknown
		// is the only honest answer left.
		return constraint.Result{Unknown: true}
	}

	var won constraint.Result
	decided := false
	for i := 0; i < racing; i++ {
		v := <-ch
		if v.err != nil {
			v.m.dead.Store(true)
			b.stats.MemberFailures++
			continue
		}
		if !decided && !v.res.Unknown {
			won, decided = v.res, true
			// Tell the members still searching that the race is over.
			b.cancel.Store(true)
		}
	}
	wg.Wait()
	b.cancel.Store(false)
	if !decided {
		return constraint.Result{Unknown: true}
	}
	return won
}

func (b *backend) Model() map[string]int64 { return b.model }

// Caps intersects the members' capabilities: the portfolio only promises
// what every member delivers.
func (b *backend) Caps() constraint.Caps {
	caps := constraint.Caps{Name: Name, PrefixReuse: true, Wraparound: true, Bitwise: true}
	for _, m := range b.members {
		mc := m.backend.Caps()
		caps.PrefixReuse = caps.PrefixReuse && mc.PrefixReuse
		caps.Wraparound = caps.Wraparound && mc.Wraparound
		caps.Bitwise = caps.Bitwise && mc.Bitwise
	}
	return caps
}

// Stats reports the portfolio's own stack/verdict counters plus the
// members' solving and resilience counters folded in, so external-solver
// health (ExtRestarts, ExtBreakerTrips, ...) stays visible through the
// portfolio wrapper.
func (b *backend) Stats() constraint.Stats {
	st := b.stats
	st.Backend = Name
	for _, m := range b.members {
		fm := m.backend.Stats()
		st.CacheHits += fm.CacheHits
		st.CacheMisses += fm.CacheMisses
		st.ModelReuses += fm.ModelReuses
		st.BoxConflicts += fm.BoxConflicts
		st.FullSolves += fm.FullSolves
		st.SearchNodes += fm.SearchNodes
		st.Propagations += fm.Propagations
		st.BoxSnapshots += fm.BoxSnapshots
		st.FrameMemoHits += fm.FrameMemoHits
		st.ExtSolves += fm.ExtSolves
		st.ExtAnswers += fm.ExtAnswers
		st.ExtUnknowns += fm.ExtUnknowns
		st.ExtTimeouts += fm.ExtTimeouts
		st.ExtRestarts += fm.ExtRestarts
		st.ExtBreakerTrips += fm.ExtBreakerTrips
		st.FallbackSolves += fm.FallbackSolves
		st.MemberFailures += fm.MemberFailures
	}
	return st
}

func (b *backend) ResetStats() {
	b.stats = constraint.Stats{}
	b.each(func(m constraint.Backend) { m.ResetStats() })
}
