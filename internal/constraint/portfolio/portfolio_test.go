package portfolio

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dise/internal/constraint"
	"dise/internal/solver"
	"dise/internal/sym"
)

// slowpoke is a test member that answers correctly but slowly, polling its
// interrupt hook: the member the portfolio should always cancel.
type slowpoke struct {
	inner     constraint.Backend
	interrupt func() error
	delay     time.Duration
	cancelled *int // counts Checks abandoned via the interrupt hook
	mu        *sync.Mutex
}

func (s *slowpoke) Push()             { s.inner.Push() }
func (s *slowpoke) Pop()              { s.inner.Pop() }
func (s *slowpoke) Assert(c sym.Expr) { s.inner.Assert(c) }

func (s *slowpoke) Check() constraint.Result {
	deadline := time.Now().Add(s.delay)
	for time.Now().Before(deadline) {
		if s.interrupt != nil && s.interrupt() != nil {
			s.mu.Lock()
			*s.cancelled++
			s.mu.Unlock()
			return constraint.Result{Unknown: true}
		}
		time.Sleep(100 * time.Microsecond)
	}
	return s.inner.Check()
}

func (s *slowpoke) Model() map[string]int64 { return s.inner.Model() }
func (s *slowpoke) Caps() constraint.Caps   { return constraint.Caps{Name: "slowpoke"} }
func (s *slowpoke) Stats() constraint.Stats { return s.inner.Stats() }
func (s *slowpoke) ResetStats()             { s.inner.ResetStats() }

// panicky is a test member that panics on the Nth Check.
type panicky struct {
	inner constraint.Backend
	n     int
	count int
}

func (p *panicky) Push()             { p.inner.Push() }
func (p *panicky) Pop()              { p.inner.Pop() }
func (p *panicky) Assert(c sym.Expr) { p.inner.Assert(c) }

func (p *panicky) Check() constraint.Result {
	p.count++
	if p.count == p.n {
		panic("panicky member blew up")
	}
	return p.inner.Check()
}

func (p *panicky) Model() map[string]int64 { return p.inner.Model() }
func (p *panicky) Caps() constraint.Caps   { return constraint.Caps{Name: "panicky"} }
func (p *panicky) Stats() constraint.Stats { return p.inner.Stats() }
func (p *panicky) ResetStats()             { p.inner.ResetStats() }

var registerOnce sync.Once

// testMembers registers the test member backends under fixed names; the
// shared counters are reset per test via the package-level vars.
var (
	cancelMu        sync.Mutex
	cancelledChecks int
)

func registerTestMembers() {
	registerOnce.Do(func() {
		constraint.Register("test-slowpoke", func(o constraint.Options) (constraint.Backend, error) {
			inner, err := constraint.New(constraint.BackendInterval, o)
			if err != nil {
				return nil, err
			}
			return &slowpoke{inner: inner, interrupt: o.Interrupt, delay: 10 * time.Second,
				cancelled: &cancelledChecks, mu: &cancelMu}, nil
		})
		constraint.Register("test-panicky", func(o constraint.Options) (constraint.Backend, error) {
			inner, err := constraint.New(constraint.BackendInterval, o)
			if err != nil {
				return nil, err
			}
			return &panicky{inner: inner, n: 2}, nil
		})
	})
}

func domains() map[string]solver.Interval {
	return map[string]solver.Interval{"X": {Lo: 0, Hi: 10}}
}

func build(t *testing.T, members ...string) constraint.Backend {
	t.Helper()
	registerTestMembers()
	b, err := New(constraint.Options{Domains: domains(), Portfolio: members})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

func xGT(v int64) sym.Expr { return sym.Cmp(sym.OpGT, sym.V("X"), sym.Int(v)) }

func TestFirstDefinitiveWinsAndLoserIsCancelled(t *testing.T) {
	cancelMu.Lock()
	cancelledChecks = 0
	cancelMu.Unlock()
	b := build(t, constraint.BackendInterval, "test-slowpoke")
	b.Push()
	b.Assert(xGT(5))
	start := time.Now()
	res := b.Check()
	if !res.Sat || res.Unknown {
		t.Fatalf("want sat, got %+v", res)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("losing member was awaited to completion (took %v)", since)
	}
	cancelMu.Lock()
	n := cancelledChecks
	cancelMu.Unlock()
	if n != 1 {
		t.Fatalf("loser not cancelled through its interrupt hook: %d", n)
	}
	if res.Model["X"] <= 5 || res.Model["X"] > 10 {
		t.Fatalf("bad model %v", res.Model)
	}
}

func TestPanickingMemberIsExcludedNotFatal(t *testing.T) {
	b := build(t, "test-panicky", constraint.BackendInterval)
	b.Push()
	b.Assert(xGT(5))
	for i := 0; i < 4; i++ {
		if res := b.Check(); !res.Sat {
			t.Fatalf("check %d: want sat, got %+v", i, res)
		}
	}
	st := b.Stats()
	if st.MemberFailures != 1 {
		t.Fatalf("panic not counted: %+v", st)
	}
	if st.Checks != 4 || st.Unknown != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestVerdictsMatchIntervalAcrossDefaultMembers(t *testing.T) {
	// The full default portfolio (interval + bitvec + smtlib, no solver
	// binary configured) must agree with a bare interval backend.
	p, err := New(constraint.Options{Domains: domains(),
		SMT: constraint.SMTOptions{SolverPath: "/nonexistent/never-a-solver"}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := constraint.New(constraint.BackendInterval, constraint.Options{Domains: domains()})
	if err != nil {
		t.Fatal(err)
	}
	stacks := [][]sym.Expr{
		{xGT(5)},
		{xGT(50)},
		{sym.Cmp(sym.OpEQ, sym.Mod(sym.V("X"), sym.Int(3)), sym.Int(1)), xGT(6)},
		{sym.Cmp(sym.OpLT, sym.Add(sym.V("X"), sym.Int(5)), sym.Int(4))},
	}
	for i, stack := range stacks {
		p.Push()
		ref.Push()
		for _, c := range stack {
			p.Assert(c)
			ref.Assert(c)
		}
		got, want := p.Check(), ref.Check()
		if got.Sat != want.Sat || got.Unknown != want.Unknown {
			t.Errorf("stack %d: portfolio %+v vs interval %+v", i, got, want)
		}
		p.Pop()
		ref.Pop()
	}
}

func TestRejectsBadMemberSets(t *testing.T) {
	registerTestMembers()
	for _, members := range [][]string{
		{Name},                       // nesting
		{"interval", "interval"},     // duplicate
		{"no-such-backend-anywhere"}, // unknown
	} {
		if _, err := New(constraint.Options{Domains: domains(), Portfolio: members}); err == nil {
			t.Errorf("member set %v accepted", members)
		}
	}
}

func TestPopOfBaseFramePanics(t *testing.T) {
	b := build(t, constraint.BackendInterval)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(r.(string), "imbalance") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	b.Pop()
}

// TestCancellationStress hammers the race machinery — meant to run under
// -race in CI: concurrent member Checks, cancellation flag flips, and
// panic recovery must all be clean.
func TestCancellationStress(t *testing.T) {
	registerTestMembers()
	b, err := New(constraint.Options{Domains: domains(),
		Portfolio: []string{constraint.BackendInterval, constraint.BackendBitvec, "test-slowpoke"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		b.Push()
		if i%2 == 0 {
			b.Assert(xGT(5))
		} else {
			b.Assert(xGT(50))
		}
		res := b.Check()
		if i%2 == 0 && !res.Sat {
			t.Fatalf("iter %d: want sat, got %+v", i, res)
		}
		if i%2 == 1 && (res.Sat || res.Unknown) {
			t.Fatalf("iter %d: want unsat, got %+v", i, res)
		}
		b.Pop()
	}
	if st := b.Stats(); st.Checks != 200 || st.MemberFailures != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
