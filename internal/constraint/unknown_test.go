package constraint

import (
	"errors"
	"sync"
	"testing"

	"dise/internal/solver"
	"dise/internal/sym"
)

// These tests pin the Unknown-result contract of the subsystem: budget
// exhaustion and interrupts yield Unknown (never Sat, never a panic), the
// semantics are identical across every backend, and Unknown verdicts are
// never memoized or shared through the prefix cache — a later Check with
// breathing room must still be able to find the real answer.

// hardConstraints is a conjunction no backend decides without search: the
// product of two inputs equals a prime, so propagation/refinement cannot
// finish and the search must split wide domains.
func hardConstraints() []sym.Expr {
	x, y := sym.V("X"), sym.V("Y")
	return []sym.Expr{
		sym.Cmp(sym.OpEQ, sym.Mul(x, y), sym.Int(999_983)),
		sym.Cmp(sym.OpGT, x, sym.One),
		sym.Cmp(sym.OpGT, y, sym.One),
	}
}

func TestUnknownSemanticsAcrossBackends(t *testing.T) {
	doms := domains("X", "Y")
	interrupted := errors.New("interrupted")
	cases := []struct {
		name string
		opts Options
	}{
		{"budget exhaustion", Options{Domains: doms, NodeBudget: 1}},
		{"interrupt", Options{Domains: doms, Interrupt: func() error { return interrupted }}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, name := range Names() {
				t.Run(name, func(t *testing.T) {
					b := mustBackend(t, name, tc.opts)
					b.Push()
					for _, c := range hardConstraints() {
						b.Assert(c)
					}
					res := b.Check()
					if !res.Unknown {
						t.Fatalf("result %+v, want Unknown", res)
					}
					if res.Sat || res.Model != nil || b.Model() != nil {
						t.Errorf("Unknown must not claim sat or carry a model: %+v", res)
					}
					// The caller contract: Unknown is treated as unsat, i.e.
					// !res.Sat — verify the field every caller branches on.
					if res.Sat {
						t.Error("callers prune on !Sat; Unknown must present as not-Sat")
					}
				})
			}
		})
	}
}

func TestUnknownNotCachedOrMemoized(t *testing.T) {
	// Same stack, same backend instance: an Unknown under a tiny budget must
	// not be replayed from a memo. (The budget is per-Check, so a repeat
	// Check has fresh budget; with memoization it would wrongly return the
	// stale Unknown; with a poisoned shared cache a second engine would too.)
	cache := NewPrefixCache(64)
	// Small domains so the full-budget solve terminates: X*Y == 97 (prime)
	// with X,Y > 1 is unsat and decidable by bounded search, but still needs
	// more than one search node — a budget of 1 yields Unknown.
	doms := map[string]solver.Interval{
		"X": {Lo: 0, Hi: 100},
		"Y": {Lo: 0, Hi: 100},
	}
	x, y := sym.V("X"), sym.V("Y")
	cons := []sym.Expr{
		sym.Cmp(sym.OpEQ, sym.Mul(x, y), sym.Int(97)),
		sym.Cmp(sym.OpGT, x, sym.One),
		sym.Cmp(sym.OpGT, y, sym.One),
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			tiny := mustBackend(t, name, Options{Domains: doms, NodeBudget: 1, Cache: cache})
			tiny.Push()
			for _, c := range cons {
				tiny.Assert(c)
			}
			if res := tiny.Check(); !res.Unknown {
				t.Fatalf("tiny budget must be Unknown, got %+v", res)
			}
			// A fresh backend with a real budget sharing the same cache must
			// decide the same stack for real.
			big := mustBackend(t, name, Options{Domains: doms, Cache: cache})
			big.Push()
			for _, c := range cons {
				big.Assert(c)
			}
			res := big.Check()
			if res.Unknown {
				t.Fatalf("real budget must decide the stack, got Unknown (cache poisoned?)")
			}
			if res.Sat {
				t.Errorf("X*Y == prime with X,Y > 1 must be unsat, got %+v", res)
			}
		})
	}
}

func TestInterruptMidStack(t *testing.T) {
	// Flip the interrupt on after the prefix is solved: the prefix's cached
	// state must not let the interrupted Check return a stale verdict of a
	// DIFFERENT stack.
	doms := domains("X", "Y")
	stop := false
	interrupt := func() error {
		if stop {
			return errors.New("cancelled")
		}
		return nil
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			b := mustBackend(t, name, Options{Domains: doms, Interrupt: interrupt})
			stop = false
			b.Push()
			b.Assert(sym.Cmp(sym.OpGE, sym.V("X"), sym.Int(3)))
			if !b.Check().Sat {
				t.Fatal("prefix must be sat")
			}
			stop = true
			b.Push()
			for _, c := range hardConstraints() {
				b.Assert(c)
			}
			res := b.Check()
			if res.Sat {
				t.Errorf("interrupted hard Check must not be sat: %+v", res)
			}
			if !res.Unknown {
				t.Errorf("interrupted Check must be Unknown, got %+v", res)
			}
		})
	}
}

func TestConcurrentBackendsSharedCache(t *testing.T) {
	// Race check (run under -race in CI): many goroutines, each with its own
	// backend, hammer one shared PrefixCache with overlapping prefixes.
	cache := NewPrefixCache(128)
	doms := map[string]solver.Interval{"X": solver.DefaultDomain, "Y": solver.DefaultDomain}
	x, y := sym.V("X"), sym.V("Y")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			b, err := New(BackendInterval, Options{Domains: doms, Cache: cache})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				b.Push()
				b.Assert(sym.Cmp(sym.OpGE, x, sym.Int(int64(i%5))))
				b.Push()
				b.Assert(sym.Cmp(sym.OpLE, y, sym.Int(int64(100+i%7))))
				if !b.Check().Sat {
					t.Errorf("worker %d iteration %d: must be sat", worker, i)
				}
				b.Pop()
				b.Pop()
			}
		}(w)
	}
	wg.Wait()
	if st := cache.Stats(); st.Hits == 0 {
		t.Error("concurrent workers must share prefix work through the cache")
	}
}
