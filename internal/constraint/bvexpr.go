package constraint

import (
	"fmt"
	"strings"
)

// This file implements the expression layer of the bitvector backend: a
// hash-consing builder over fixed-width bitvector terms, in the style of
// gosmt's ExprBuilder. All terms built by one Builder share one width W;
// values are uint64s masked to W bits, arithmetic wraps modulo 2^W, and
// comparisons come in signed (two's complement) and unsigned flavors. The
// builder constant-folds eagerly and interns structurally equal nodes, so
// pointer equality is structural equality — sharing that matters when the
// execution engine asserts thousands of closely related constraints.

// BVOp enumerates bitvector node kinds.
type BVOp int

// Node kinds. Ops through BVLshr are W-bit valued; the rest are boolean
// valued (encoded 0/1 when a concrete value is needed).
const (
	BVConst BVOp = iota
	BVVar
	BVAdd
	BVSub
	BVMul
	BVSDiv // signed division, truncated (Go/Java semantics); x/0 is a run-time error
	BVSRem // signed remainder, sign follows the dividend
	BVNeg
	BVAndBits
	BVOrBits
	BVXorBits
	BVNotBits
	BVShl
	BVLshr
	BVIte // ite(C, L, R): W-bit conditional on a boolean guard

	BVBoolConst
	BVEq
	BVNe
	BVSlt
	BVSle
	BVSgt
	BVSge
	BVUlt
	BVUle
	BVUgt
	BVUge
	BVBoolAnd
	BVBoolOr
	BVBoolNot
)

var bvOpNames = map[BVOp]string{
	BVAdd: "+", BVSub: "-", BVMul: "*", BVSDiv: "/s", BVSRem: "%s", BVNeg: "-",
	BVAndBits: "&", BVOrBits: "|", BVXorBits: "^", BVNotBits: "~", BVShl: "<<", BVLshr: ">>u",
	BVEq: "==", BVNe: "!=", BVSlt: "<s", BVSle: "<=s", BVSgt: ">s", BVSge: ">=s",
	BVUlt: "<u", BVUle: "<=u", BVUgt: ">u", BVUge: ">=u",
	BVBoolAnd: "&&", BVBoolOr: "||", BVBoolNot: "!",
}

// IsBool reports whether the op yields a boolean.
func (o BVOp) IsBool() bool { return o >= BVBoolConst }

// BVExpr is one interned bitvector term. Instances are immutable and unique
// per Builder: two structurally equal terms are the same pointer.
type BVExpr struct {
	Op   BVOp
	L, R *BVExpr // R nil for unary ops; both nil for leaves
	C    *BVExpr // BVIte only: the boolean guard (L = then, R = else)
	Val  uint64  // BVConst (masked to width) and BVBoolConst (0/1)
	Name string  // BVVar
	id   int
}

// String renders the term with explicit signedness markers.
func (e *BVExpr) String() string {
	switch e.Op {
	case BVConst:
		return fmt.Sprintf("0x%x", e.Val)
	case BVBoolConst:
		if e.Val != 0 {
			return "true"
		}
		return "false"
	case BVVar:
		return e.Name
	case BVNeg, BVNotBits, BVBoolNot:
		return bvOpNames[e.Op] + "(" + e.L.String() + ")"
	case BVIte:
		return "ite(" + e.C.String() + ", " + e.L.String() + ", " + e.R.String() + ")"
	default:
		return "(" + e.L.String() + " " + bvOpNames[e.Op] + " " + e.R.String() + ")"
	}
}

// Builder interns fixed-width bitvector terms. Not safe for concurrent use;
// each backend instance owns one.
type Builder struct {
	width  int
	mask   uint64
	signBt uint64 // the sign bit of the width
	nodes  map[string]*BVExpr
	nextID int
}

// NewBuilder returns a builder for width-bit terms (8 ≤ width ≤ 64).
func NewBuilder(width int) (*Builder, error) {
	if width < 8 || width > 64 {
		return nil, fmt.Errorf("constraint: bitvector width %d out of range [8, 64]", width)
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << width) - 1
	}
	return &Builder{
		width:  width,
		mask:   mask,
		signBt: uint64(1) << (width - 1),
		nodes:  map[string]*BVExpr{},
	}, nil
}

// Width returns the builder's bit width.
func (b *Builder) Width() int { return b.width }

// MaxS and MinS are the largest and smallest signed values of the width.
func (b *Builder) MaxS() int64 { return int64(b.signBt - 1) }
func (b *Builder) MinS() int64 { return -int64(b.signBt) }

// Mask truncates v to the width.
func (b *Builder) Mask(v uint64) uint64 { return v & b.mask }

// ToSigned sign-extends a masked value to int64.
func (b *Builder) ToSigned(v uint64) int64 {
	v &= b.mask
	if v&b.signBt != 0 {
		return int64(v | ^b.mask)
	}
	return int64(v)
}

// FromSigned truncates a signed value into the width (wrapping).
func (b *Builder) FromSigned(v int64) uint64 { return uint64(v) & b.mask }

func (b *Builder) intern(key string, mk func() *BVExpr) *BVExpr {
	if e, ok := b.nodes[key]; ok {
		return e
	}
	e := mk()
	e.id = b.nextID
	b.nextID++
	b.nodes[key] = e
	return e
}

// Const builds a W-bit constant from a signed value (wrapping).
func (b *Builder) Const(v int64) *BVExpr {
	u := b.FromSigned(v)
	return b.intern(fmt.Sprintf("c%x", u), func() *BVExpr { return &BVExpr{Op: BVConst, Val: u} })
}

// Bool builds a boolean constant.
func (b *Builder) Bool(v bool) *BVExpr {
	u := uint64(0)
	if v {
		u = 1
	}
	return b.intern(fmt.Sprintf("b%d", u), func() *BVExpr { return &BVExpr{Op: BVBoolConst, Val: u} })
}

// Var builds (or returns) the named W-bit variable.
func (b *Builder) Var(name string) *BVExpr {
	return b.intern("v"+name, func() *BVExpr { return &BVExpr{Op: BVVar, Name: name} })
}

// node interns an operator application, constant-folding when every operand
// is constant and folding is total (division by zero is left symbolic so it
// can surface as a run-time error during evaluation).
func (b *Builder) node(op BVOp, l, r *BVExpr) *BVExpr {
	if b.foldable(op, l, r) {
		if v, err := b.evalNode(op, l.Val, constVal(r)); err == nil {
			if op.IsBool() {
				return b.Bool(v != 0)
			}
			return b.intern(fmt.Sprintf("c%x", v), func() *BVExpr { return &BVExpr{Op: BVConst, Val: v} })
		}
	}
	var key strings.Builder
	fmt.Fprintf(&key, "n%d:%d", op, l.id)
	if r != nil {
		fmt.Fprintf(&key, ":%d", r.id)
	}
	return b.intern(key.String(), func() *BVExpr { return &BVExpr{Op: op, L: l, R: r} })
}

func (b *Builder) foldable(op BVOp, l, r *BVExpr) bool {
	isConst := func(e *BVExpr) bool { return e.Op == BVConst || e.Op == BVBoolConst }
	return isConst(l) && (r == nil || isConst(r))
}

func constVal(e *BVExpr) uint64 {
	if e == nil {
		return 0
	}
	return e.Val
}

// Arithmetic (wrapping modulo 2^W).
func (b *Builder) Add(l, r *BVExpr) *BVExpr  { return b.node(BVAdd, l, r) }
func (b *Builder) Sub(l, r *BVExpr) *BVExpr  { return b.node(BVSub, l, r) }
func (b *Builder) Mul(l, r *BVExpr) *BVExpr  { return b.node(BVMul, l, r) }
func (b *Builder) SDiv(l, r *BVExpr) *BVExpr { return b.node(BVSDiv, l, r) }
func (b *Builder) SRem(l, r *BVExpr) *BVExpr { return b.node(BVSRem, l, r) }
func (b *Builder) Neg(x *BVExpr) *BVExpr     { return b.node(BVNeg, x, nil) }

// Bitwise.
func (b *Builder) And(l, r *BVExpr) *BVExpr  { return b.node(BVAndBits, l, r) }
func (b *Builder) Or(l, r *BVExpr) *BVExpr   { return b.node(BVOrBits, l, r) }
func (b *Builder) Xor(l, r *BVExpr) *BVExpr  { return b.node(BVXorBits, l, r) }
func (b *Builder) Not(x *BVExpr) *BVExpr     { return b.node(BVNotBits, x, nil) }
func (b *Builder) Shl(l, r *BVExpr) *BVExpr  { return b.node(BVShl, l, r) }
func (b *Builder) Lshr(l, r *BVExpr) *BVExpr { return b.node(BVLshr, l, r) }

// Comparisons.
func (b *Builder) Eq(l, r *BVExpr) *BVExpr  { return b.node(BVEq, l, r) }
func (b *Builder) Ne(l, r *BVExpr) *BVExpr  { return b.node(BVNe, l, r) }
func (b *Builder) Slt(l, r *BVExpr) *BVExpr { return b.node(BVSlt, l, r) }
func (b *Builder) Sle(l, r *BVExpr) *BVExpr { return b.node(BVSle, l, r) }
func (b *Builder) Sgt(l, r *BVExpr) *BVExpr { return b.node(BVSgt, l, r) }
func (b *Builder) Sge(l, r *BVExpr) *BVExpr { return b.node(BVSge, l, r) }
func (b *Builder) Ult(l, r *BVExpr) *BVExpr { return b.node(BVUlt, l, r) }
func (b *Builder) Ule(l, r *BVExpr) *BVExpr { return b.node(BVUle, l, r) }
func (b *Builder) Ugt(l, r *BVExpr) *BVExpr { return b.node(BVUgt, l, r) }
func (b *Builder) Uge(l, r *BVExpr) *BVExpr { return b.node(BVUge, l, r) }

// Boolean connectives.
func (b *Builder) BoolAnd(l, r *BVExpr) *BVExpr { return b.node(BVBoolAnd, l, r) }
func (b *Builder) BoolOr(l, r *BVExpr) *BVExpr  { return b.node(BVBoolOr, l, r) }
func (b *Builder) BoolNot(x *BVExpr) *BVExpr    { return b.node(BVBoolNot, x, nil) }

// Ite builds the W-bit conditional ite(c, t, e): t when the boolean term c
// is true, e otherwise. A constant guard folds to the selected arm; equal
// arms collapse. It does not go through node() — the ternary shape needs its
// own intern key and never constant-folds via evalNode.
func (b *Builder) Ite(c, t, e *BVExpr) *BVExpr {
	if c.Op == BVBoolConst {
		if c.Val != 0 {
			return t
		}
		return e
	}
	if t == e {
		return t
	}
	return b.intern(fmt.Sprintf("i%d:%d:%d", c.id, t.id, e.id), func() *BVExpr {
		return &BVExpr{Op: BVIte, C: c, L: t, R: e}
	})
}

// Eval evaluates the term concretely under env (masked W-bit values per
// variable). Boolean terms evaluate to 0/1. Division or remainder by zero
// returns an error — the corresponding concrete execution would trap, so
// solvers treat such assignments as falsifying.
func (b *Builder) Eval(e *BVExpr, env map[string]uint64) (uint64, error) {
	switch e.Op {
	case BVConst, BVBoolConst:
		return e.Val, nil
	case BVVar:
		v, ok := env[e.Name]
		if !ok {
			return 0, fmt.Errorf("constraint: unbound bitvector variable %q", e.Name)
		}
		return v & b.mask, nil
	case BVBoolAnd: // short-circuit like the source language
		l, err := b.Eval(e.L, env)
		if err != nil {
			return 0, err
		}
		if l == 0 {
			return 0, nil
		}
		return b.Eval(e.R, env)
	case BVBoolOr:
		l, err := b.Eval(e.L, env)
		if err != nil {
			return 0, err
		}
		if l != 0 {
			return 1, nil
		}
		return b.Eval(e.R, env)
	case BVIte:
		c, err := b.Eval(e.C, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return b.Eval(e.L, env)
		}
		return b.Eval(e.R, env)
	}
	l, err := b.Eval(e.L, env)
	if err != nil {
		return 0, err
	}
	var r uint64
	if e.R != nil {
		if r, err = b.Eval(e.R, env); err != nil {
			return 0, err
		}
	}
	return b.evalNode(e.Op, l, r)
}

// evalNode applies one operator to masked operand values.
func (b *Builder) evalNode(op BVOp, l, r uint64) (uint64, error) {
	switch op {
	case BVAdd:
		return (l + r) & b.mask, nil
	case BVSub:
		return (l - r) & b.mask, nil
	case BVMul:
		return (l * r) & b.mask, nil
	case BVSDiv:
		if r == 0 {
			return 0, fmt.Errorf("constraint: bitvector division by zero")
		}
		ls, rs := b.ToSigned(l), b.ToSigned(r)
		if ls == b.MinS() && rs == -1 {
			return l, nil // MinS / -1 wraps to MinS (two's-complement overflow)
		}
		return b.FromSigned(ls / rs), nil
	case BVSRem:
		if r == 0 {
			return 0, fmt.Errorf("constraint: bitvector remainder by zero")
		}
		ls, rs := b.ToSigned(l), b.ToSigned(r)
		if ls == b.MinS() && rs == -1 {
			return 0, nil
		}
		return b.FromSigned(ls % rs), nil
	case BVNeg:
		return (-l) & b.mask, nil
	case BVAndBits:
		return l & r, nil
	case BVOrBits:
		return l | r, nil
	case BVXorBits:
		return l ^ r, nil
	case BVNotBits:
		return (^l) & b.mask, nil
	case BVShl:
		if r >= uint64(b.width) {
			return 0, nil
		}
		return (l << r) & b.mask, nil
	case BVLshr:
		if r >= uint64(b.width) {
			return 0, nil
		}
		return (l & b.mask) >> r, nil
	case BVEq:
		return b01(l == r), nil
	case BVNe:
		return b01(l != r), nil
	case BVSlt:
		return b01(b.ToSigned(l) < b.ToSigned(r)), nil
	case BVSle:
		return b01(b.ToSigned(l) <= b.ToSigned(r)), nil
	case BVSgt:
		return b01(b.ToSigned(l) > b.ToSigned(r)), nil
	case BVSge:
		return b01(b.ToSigned(l) >= b.ToSigned(r)), nil
	case BVUlt:
		return b01(l < r), nil
	case BVUle:
		return b01(l <= r), nil
	case BVUgt:
		return b01(l > r), nil
	case BVUge:
		return b01(l >= r), nil
	case BVBoolNot:
		return b01(l == 0), nil
	case BVBoolAnd:
		return b01(l != 0 && r != 0), nil
	case BVBoolOr:
		return b01(l != 0 || r != 0), nil
	}
	return 0, fmt.Errorf("constraint: cannot evaluate bitvector op %d", op)
}

func b01(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
