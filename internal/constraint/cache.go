package constraint

import (
	"container/list"
	"hash/fnv"
	"sync"

	"dise/internal/solver"
	"dise/internal/sym"
)

// prefixKey identifies one assertion-stack prefix. It is a chained pair of
// independently mixed 64-bit hashes over the asserted constraints (seeded
// with a digest of the input domains), so two engines asserting the same
// constraints over the same domains — sibling states of one exploration,
// two batch workers analyzing variants of one base program, or consecutive
// steps of a version-chain session — compute the same key. 128 bits make an
// accidental collision (which would return a wrong verdict) negligible.
//
// Constraints enter the chain as their structural fingerprints
// (sym.Fingerprints — precomputed field reads on hash-consed expressions),
// not as rendered strings: extending the key is a handful of multiplies
// instead of a rendering pass plus a byte-wise FNV walk, and structurally
// distinct constraints that happen to render alike can no longer share an
// entry. Each key half chains one of the expression's two independent
// fingerprints, so a full key collision requires two independent 64-bit
// hash functions to collide on the same pair — the ~2^-128 bound the
// 128-bit key is meant to provide, not merely ~2^-64.
type prefixKey struct {
	h1, h2 uint64
}

// extendFP chains the key with one asserted constraint's pair of structural
// fingerprints, one per half, through sym's two independent full-avalanche
// finalizers (splitmix64 for h1, murmur3 for h2 — so the halves never
// collapse into functions of each other).
func (k prefixKey) extendFP(fp1, fp2 uint64) prefixKey {
	return prefixKey{h1: sym.Mix64(k.h1 ^ fp1), h2: sym.MixAlt(k.h2 + fp2*0x9e3779b97f4a7c15)}
}

// extend chains the key with one more string-keyed component (the domain
// digest seed and native bitvector assertions, which have no sym
// fingerprint).
func (k prefixKey) extend(s string) prefixKey {
	a := fnv.New64a()
	writeU64(a, k.h1)
	a.Write([]byte(s))
	b := fnv.New64a()
	b.Write([]byte(s)) // different operand order decorrelates the halves
	writeU64(b, k.h2)
	return prefixKey{h1: a.Sum64(), h2: b.Sum64()}
}

func writeU64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// prefixEntry is the cached outcome of solving one stack prefix. Both the
// result model and the box are treated as immutable by every reader: they
// may be shared concurrently across backends.
type prefixEntry struct {
	// res is the verdict for the prefix conjunction, nil when only the box
	// is known. Unknown results are never cached: they depend on the
	// caller's budget and on interrupt timing.
	res *Result
	// box is the propagation state snapshot: the input domains tightened to
	// bounds consistency under the prefix. A child Check starts from the
	// box instead of re-propagating the whole prefix.
	box map[string]solver.Interval
	// residual lists the prefix atoms the box does not entail — the only
	// constraints a search within the box still has to enforce.
	residual []sym.Expr
}

// PrefixCache is a bounded, concurrency-safe LRU of solved assertion-stack
// prefixes, shared across the backend instances of concurrent engines
// (e.g. the worker pool of AnalyzeBatch). It is the cross-engine half of
// the incremental machinery: within one engine the frame stack carries
// solver state down the tree, and the cache carries it across pop/re-push
// boundaries and across engines.
//
// The keys are content, not provenance: a chained digest of the input
// domains and the asserted constraints' structural fingerprints, with no
// program-version component. Entries therefore also survive across the
// steps of a version-chain session (dise.Session) — two versions of a
// program asserting the same constraint sequence over the same domains
// compute the same key, so live re-solves in step N hit prefixes solved in
// step N-1 even in regions the execution-tree memo had to invalidate.
type PrefixCache struct {
	mu       sync.Mutex
	capacity int
	// maxBytes, when > 0, additionally bounds the cache by the approximate
	// retained bytes of its entries (bytes tracks the current total) — the
	// service-scale bound, where what matters is heap footprint rather than
	// entry count.
	maxBytes  int64
	bytes     int64
	entries   map[prefixKey]*list.Element
	lru       *list.List // of *prefixSlot, front = most recent
	hits      int64
	misses    int64
	evictions int64
}

type prefixSlot struct {
	key  prefixKey
	ent  prefixEntry
	size int64
}

// Approximate per-entry byte costs for the byte bound: the slot with its
// map/list bookkeeping, one box interval, one residual pointer, one model
// entry. Expressions referenced by residual atoms are hash-consed and
// accounted by the intern table, not here.
const (
	prefixSlotBaseBytes = 192
	boxEntryBytes       = 64
	residualAtomBytes   = 16
)

// approxEntryBytes estimates one entry's retained footprint.
func approxEntryBytes(ent prefixEntry) int64 {
	b := int64(prefixSlotBaseBytes)
	b += int64(len(ent.box)) * boxEntryBytes
	b += int64(len(ent.residual)) * residualAtomBytes
	if ent.res != nil {
		b += 64 + int64(len(ent.res.Model))*40
	}
	return b
}

// DefaultPrefixCacheCapacity bounds a cache constructed with capacity 0.
const DefaultPrefixCacheCapacity = 8192

// NewPrefixCache returns a cache holding at most capacity prefixes
// (DefaultPrefixCacheCapacity when capacity <= 0), with no byte bound.
func NewPrefixCache(capacity int) *PrefixCache {
	return NewPrefixCacheBytes(capacity, 0)
}

// NewPrefixCacheBytes is NewPrefixCache with an additional approximate byte
// budget: when maxBytes > 0, inserting past it evicts least-recently-used
// entries until the estimate fits again (the most recent entry always
// stays, so one oversized entry cannot empty the cache). maxBytes <= 0
// disables the byte bound.
func NewPrefixCacheBytes(capacity int, maxBytes int64) *PrefixCache {
	if capacity <= 0 {
		capacity = DefaultPrefixCacheCapacity
	}
	return &PrefixCache{
		capacity: capacity,
		maxBytes: maxBytes,
		entries:  map[prefixKey]*list.Element{},
		lru:      list.New(),
	}
}

// get returns the cached entry for key, if present.
func (c *PrefixCache) get(key prefixKey) (prefixEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*prefixSlot).ent, true
	}
	c.misses++
	return prefixEntry{}, false
}

// put stores (or upgrades) the entry for key. An existing entry is only
// replaced when the new one knows more (a verdict where the old had only a
// box), so a box-only writer never erases a verdict.
func (c *PrefixCache) put(key prefixKey, ent prefixEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		slot := el.Value.(*prefixSlot)
		if ent.res != nil || slot.ent.res == nil {
			slot.ent = ent
			size := approxEntryBytes(ent)
			c.bytes += size - slot.size
			slot.size = size
		}
		c.lru.MoveToFront(el)
		return
	}
	slot := &prefixSlot{key: key, ent: ent, size: approxEntryBytes(ent)}
	c.entries[key] = c.lru.PushFront(slot)
	c.bytes += slot.size
	//diselint:ignore interruptloop bounded: each iteration evicts one LRU entry
	for c.lru.Len() > c.capacity || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 1) {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		old := oldest.Value.(*prefixSlot)
		delete(c.entries, old.key)
		c.bytes -= old.size
		c.evictions++
	}
}

// CacheStats reports the effectiveness and footprint of a PrefixCache.
// Bytes is the approximate retained size of the live entries; Evictions
// counts entries pushed out by either bound, cumulatively.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Entries   int
	Bytes     int64
	Evictions int64
}

// Stats snapshots hit/miss counters.
func (c *PrefixCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len(), Bytes: c.bytes, Evictions: c.evictions}
}
