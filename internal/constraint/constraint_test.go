package constraint

import (
	"fmt"
	"reflect"
	"testing"

	"dise/internal/solver"
	"dise/internal/sym"
)

func domains(vars ...string) map[string]solver.Interval {
	out := map[string]solver.Interval{}
	for _, v := range vars {
		out[v] = solver.DefaultDomain
	}
	return out
}

func mustBackend(t *testing.T, name string, opts Options) Backend {
	t.Helper()
	b, err := New(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// allBackends runs a subtest against every registered backend.
func allBackends(t *testing.T, opts Options, fn func(t *testing.T, b Backend)) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			fn(t, mustBackend(t, name, opts))
		})
	}
}

func TestUnknownBackendName(t *testing.T) {
	if _, err := New("z3", Options{}); err == nil {
		t.Fatal("unknown backend name must error")
	}
}

func TestPushPopAssertCheck(t *testing.T) {
	x, y := sym.V("X"), sym.V("Y")
	allBackends(t, Options{Domains: domains("X", "Y")}, func(t *testing.T, b Backend) {
		// Empty stack: trivially sat, model covers all domain variables.
		res := b.Check()
		if !res.Sat {
			t.Fatal("empty stack must be sat")
		}
		for _, v := range []string{"X", "Y"} {
			if _, ok := res.Model[v]; !ok {
				t.Errorf("model missing domain variable %s", v)
			}
		}

		// X >= 5 ∧ X <= 10: sat, and the model respects both.
		b.Push()
		b.Assert(sym.Cmp(sym.OpGE, x, sym.Int(5)))
		b.Assert(sym.Cmp(sym.OpLE, x, sym.Int(10)))
		res = b.Check()
		if !res.Sat {
			t.Fatal("5 <= X <= 10 must be sat")
		}
		if got := res.Model["X"]; got < 5 || got > 10 {
			t.Errorf("model X = %d, want within [5, 10]", got)
		}
		if m := b.Model(); m == nil || m["X"] != res.Model["X"] {
			t.Error("Model() must return the last sat model")
		}

		// Deepen: X > Y ∧ Y >= 8 narrows X to [9, 10].
		b.Push()
		b.Assert(sym.Cmp(sym.OpGT, x, y))
		b.Assert(sym.Cmp(sym.OpGE, y, sym.Int(8)))
		res = b.Check()
		if !res.Sat {
			t.Fatal("X in [5,10], X > Y >= 8 must be sat")
		}
		if got := res.Model["X"]; got < 9 || got > 10 {
			t.Errorf("model X = %d, want within [9, 10]", got)
		}

		// Contradiction on top: unsat; popping restores satisfiability.
		b.Push()
		b.Assert(sym.Cmp(sym.OpLT, x, sym.Int(3)))
		if res = b.Check(); res.Sat || res.Unknown {
			t.Fatal("X in [9,10] and X < 3 must be unsat")
		}
		b.Pop()
		if res = b.Check(); !res.Sat {
			t.Fatal("popping the contradiction must restore sat")
		}
		b.Pop()
		b.Pop()
		if res = b.Check(); !res.Sat {
			t.Fatal("stack drained back to base must be sat")
		}
	})
}

func TestPopBaseFramePanics(t *testing.T) {
	allBackends(t, Options{}, func(t *testing.T, b Backend) {
		defer func() {
			if recover() == nil {
				t.Error("Pop on the base frame must panic")
			}
		}()
		b.Pop()
	})
}

func TestSiblingPrefixReuse(t *testing.T) {
	// Exploration-tree shape: a prefix of constraints, then two sibling
	// checks. The second sibling must be answered by the prefix machinery
	// (model reuse, cache, or snapshot) without a second full solve.
	x, y := sym.V("X"), sym.V("Y")
	b := mustBackend(t, BackendInterval, Options{Domains: domains("X", "Y")})
	b.Push()
	b.Assert(sym.Cmp(sym.OpGE, x, sym.Int(10)))
	b.Push()
	b.Assert(sym.Cmp(sym.OpLE, y, sym.Int(100)))
	if !b.Check().Sat {
		t.Fatal("prefix must be sat")
	}
	full := b.Stats().FullSolves

	// Sibling 1: prefix ∧ X >= 11 (satisfied by no model with X=10 — forces
	// some work), sibling 2: prefix ∧ X >= 12 after popping sibling 1.
	b.Push()
	b.Assert(sym.Cmp(sym.OpGE, x, sym.Int(11)))
	if !b.Check().Sat {
		t.Fatal("sibling 1 must be sat")
	}
	b.Pop()
	b.Push()
	b.Assert(sym.Cmp(sym.OpGE, x, sym.Int(11)))
	if !b.Check().Sat {
		t.Fatal("sibling 2 must be sat")
	}
	b.Pop()
	st := b.Stats()
	if st.CacheHits == 0 {
		t.Errorf("re-pushed identical frame must hit the prefix cache (stats %+v)", st)
	}
	if st.FullSolves > full+1 {
		t.Errorf("second identical sibling re-solved from scratch (full solves %d -> %d)", full, st.FullSolves)
	}
}

func TestSharedCacheAcrossBackends(t *testing.T) {
	// Two backend instances sharing one PrefixCache (the AnalyzeBatch
	// topology): the second engine's identical prefix is answered from the
	// first engine's work.
	x := sym.V("X")
	cache := NewPrefixCache(64)
	mk := func() Backend {
		return mustBackend(t, BackendInterval, Options{Domains: domains("X"), Cache: cache})
	}
	run := func(b Backend) {
		b.Push()
		b.Assert(sym.Cmp(sym.OpGE, x, sym.Int(7)))
		b.Push()
		b.Assert(sym.Cmp(sym.OpNE, x, sym.Int(9)))
		if !b.Check().Sat {
			t.Fatal("must be sat")
		}
	}
	run(mk())
	second := mk()
	run(second)
	if st := second.Stats(); st.CacheHits == 0 {
		t.Errorf("second engine must reuse the shared cache (stats %+v)", st)
	}
}

func TestModelWitnessFastPath(t *testing.T) {
	// A chain of constraints all satisfied by the prefix model: each deeper
	// Check must be a model reuse, not a full solve.
	x := sym.V("X")
	b := mustBackend(t, BackendInterval, Options{Domains: domains("X")})
	b.Push()
	b.Assert(sym.Cmp(sym.OpGE, x, sym.Int(5)))
	if !b.Check().Sat {
		t.Fatal("prefix must be sat")
	}
	for i := 0; i < 5; i++ {
		b.Push()
		b.Assert(sym.Cmp(sym.OpGE, x, sym.Int(4-int64(i)))) // already satisfied by X=5
		if !b.Check().Sat {
			t.Fatal("must stay sat")
		}
	}
	if st := b.Stats(); st.ModelReuses == 0 {
		t.Errorf("descending a satisfied chain must reuse the witness model (stats %+v)", st)
	}
}

func TestCacheHitPreservesResidual(t *testing.T) {
	// Regression: a Check answered by the prefix cache must restore the
	// frame's residual atoms along with its box. X+Y == 10 tightens neither
	// X nor Y alone, so the atom lives only in the residual — if a cache
	// hit drops it, a later Check on top of the re-pushed frame solves
	// without it and wrongly reports X+Y == 10 ∧ X == 7 ∧ Y == 5 as Sat.
	x, y := sym.V("X"), sym.V("Y")
	sum10 := sym.Cmp(sym.OpEQ, sym.Add(x, y), sym.Int(10))
	for _, name := range []string{BackendInterval, BackendBitvec} {
		t.Run(name, func(t *testing.T) {
			b := mustBackend(t, name, Options{Domains: domains("X", "Y")})
			b.Push()
			b.Assert(sum10)
			if !b.Check().Sat {
				t.Fatal("X+Y == 10 must be sat")
			}
			b.Pop()
			b.Push()
			b.Assert(sum10)
			if !b.Check().Sat { // cache hit on the re-pushed frame
				t.Fatal("re-pushed prefix must still be sat")
			}
			b.Push()
			b.Assert(sym.Cmp(sym.OpEQ, x, sym.Int(7)))
			b.Assert(sym.Cmp(sym.OpEQ, y, sym.Int(5)))
			if res := b.Check(); res.Sat {
				t.Fatalf("X+Y == 10 ∧ X == 7 ∧ Y == 5 must be unsat, got Sat with model %v", res.Model)
			}
		})
	}
}

func TestBackendsAgreeOnRandomLinearSystems(t *testing.T) {
	// Cross-backend differential test: all three backends must agree on
	// sat/unsat for small linear systems over small domains (where every
	// backend decides within budget and wraparound cannot trigger).
	vars := []string{"A", "B", "C"}
	doms := map[string]solver.Interval{}
	for _, v := range vars {
		doms[v] = solver.Interval{Lo: 0, Hi: 30}
	}
	ops := []sym.Op{sym.OpEQ, sym.OpNE, sym.OpLT, sym.OpLE, sym.OpGT, sym.OpGE}
	rng := uint64(12345)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for trial := 0; trial < 60; trial++ {
		var cs []sym.Expr
		for i := 0; i < 3+next(3); i++ {
			l := sym.V(vars[next(len(vars))])
			var rhs sym.Expr = sym.Int(int64(next(35)))
			if next(2) == 0 {
				rhs = sym.Add(sym.V(vars[next(len(vars))]), sym.Int(int64(next(10))))
			}
			cs = append(cs, sym.Cmp(ops[next(len(ops))], l, rhs))
		}
		verdicts := map[string]bool{}
		for _, name := range Names() {
			b := mustBackend(t, name, Options{Domains: doms})
			b.Push()
			for _, c := range cs {
				b.Assert(c)
			}
			res := b.Check()
			if res.Unknown {
				t.Fatalf("[%s] trial %d unexpectedly unknown for %v", name, trial, cs)
			}
			verdicts[name] = res.Sat
			if res.Sat {
				// The model must actually satisfy the conjunction.
				for _, c := range cs {
					v, err := solver.EvalInt01(c, res.Model)
					if err != nil || v == 0 {
						t.Fatalf("[%s] trial %d model %v violates %v (err=%v)", name, trial, res.Model, c, err)
					}
				}
			}
		}
		want := verdicts[BackendInterval]
		for _, got := range verdicts {
			if got != want {
				t.Fatalf("trial %d: backend verdicts diverge (%v) for %v", trial, verdicts, cs)
			}
		}
	}
}

func TestStatsCounters(t *testing.T) {
	x := sym.V("X")
	allBackends(t, Options{Domains: domains("X")}, func(t *testing.T, b Backend) {
		b.Push()
		b.Assert(sym.Cmp(sym.OpGE, x, sym.Int(1)))
		b.Check()
		b.Pop()
		st := b.Stats()
		if st.Backend == "" {
			t.Error("stats must name the backend")
		}
		if st.Checks != 1 || st.Asserts != 1 || st.PushedFrames != 1 || st.PoppedFrames != 1 {
			t.Errorf("stats = %+v, want 1 check/assert/push/pop", st)
		}
		b.ResetStats()
		if st := b.Stats(); st.Checks != 0 || st.Backend == "" {
			t.Errorf("ResetStats must zero counters but keep the name, got %+v", st)
		}
	})
}

func TestCapsReporting(t *testing.T) {
	cases := map[string]Caps{
		BackendInterval:        {Name: BackendInterval, PrefixReuse: true},
		BackendIntervalNoReuse: {Name: BackendIntervalNoReuse},
		BackendBitvec:          {Name: BackendBitvec, PrefixReuse: true, Wraparound: true, Bitwise: true},
	}
	for name, want := range cases {
		b := mustBackend(t, name, Options{})
		if got := b.Caps(); got != want {
			t.Errorf("%s caps = %+v, want %+v", name, got, want)
		}
	}
}

func TestPrefixCacheEviction(t *testing.T) {
	cache := NewPrefixCache(2)
	keys := make([]prefixKey, 3)
	for i := range keys {
		keys[i] = prefixKey{}.extend(fmt.Sprintf("k%d", i))
		cache.put(keys[i], prefixEntry{res: &Result{Sat: true}})
	}
	if _, ok := cache.get(keys[0]); ok {
		t.Error("oldest entry must be evicted at capacity 2")
	}
	if _, ok := cache.get(keys[2]); !ok {
		t.Error("newest entry must survive")
	}
	st := cache.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

func TestPrefixCacheUpgradeOnly(t *testing.T) {
	// A box-only write must not erase a known verdict.
	key := prefixKey{}.extend("p")
	cache := NewPrefixCache(4)
	res := &Result{Sat: true}
	cache.put(key, prefixEntry{res: res, box: map[string]solver.Interval{"X": {Lo: 0, Hi: 5}}})
	cache.put(key, prefixEntry{box: map[string]solver.Interval{"X": {Lo: 0, Hi: 9}}})
	ent, ok := cache.get(key)
	if !ok || ent.res != res {
		t.Error("verdict must survive a box-only upgrade attempt")
	}
}

// TestStatsAddCoversEveryCounter guards the per-worker stats merge with
// reflection: every numeric field of Stats must survive Add, so a future
// counter added to the struct but forgotten in Add fails here instead of
// silently under-reporting in merged parallel-run stats.
func TestStatsAddCoversEveryCounter(t *testing.T) {
	var a, b Stats
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		if av.Field(i).Kind() != reflect.Int {
			continue
		}
		av.Field(i).SetInt(int64(i + 1))
		bv.Field(i).SetInt(int64(100 * (i + 1)))
	}
	a.Add(b)
	for i := 0; i < av.NumField(); i++ {
		if av.Field(i).Kind() != reflect.Int {
			continue
		}
		want := int64(i+1) + int64(100*(i+1))
		if got := av.Field(i).Int(); got != want {
			t.Errorf("Stats.Add drops field %s: got %d, want %d",
				av.Type().Field(i).Name, got, want)
		}
	}
}

// TestPrefixKeyFingerprintChaining pins the fingerprint-keyed prefix chain:
// rebuilding the same constraint sequence (hash-consed, so the same nodes)
// chains the same key, different sequences diverge, order matters, and
// structurally distinct constraints that render to the same string — a
// variable named like a literal — no longer share a key the way the old
// rendering-based chain did.
func TestPrefixKeyFingerprintChaining(t *testing.T) {
	c1 := sym.Cmp(sym.OpGT, sym.V("X"), sym.Zero)
	c2 := sym.Cmp(sym.OpLE, sym.V("Y"), sym.Int(5))
	seed := prefixKey{}

	a := seed.extendFP(sym.Fingerprints(c1)).extendFP(sym.Fingerprints(c2))
	b := seed.extendFP(sym.Fingerprints(sym.Cmp(sym.OpGT, sym.V("X"), sym.Zero))).
		extendFP(sym.Fingerprints(sym.Cmp(sym.OpLE, sym.V("Y"), sym.Int(5))))
	if a != b {
		t.Fatalf("rebuilt constraint sequence chained a different key")
	}
	if rev := seed.extendFP(sym.Fingerprints(c2)).extendFP(sym.Fingerprints(c1)); rev == a {
		t.Fatalf("assertion order does not influence the key")
	}
	if one := seed.extendFP(sym.Fingerprints(c1)); one == a {
		t.Fatalf("prefix of a chain collides with the chain")
	}

	// "X == 5" the constant vs "X == 5" the variable named "5": identical
	// renderings, distinct structures, distinct fingerprints.
	asConst := sym.Cmp(sym.OpEQ, sym.V("X"), sym.Int(5))
	asVar := sym.Cmp(sym.OpEQ, sym.V("X"), sym.V("5"))
	if asConst.String() != asVar.String() {
		t.Fatalf("test premise broken: renderings differ (%q vs %q)", asConst, asVar)
	}
	if seed.extendFP(sym.Fingerprints(asConst)) == seed.extendFP(sym.Fingerprints(asVar)) {
		t.Fatalf("same-rendering constraints share a fingerprint key")
	}
}
