package constraint

import "time"

// SMTProcess is one external solver conversation as the smtlib backend's
// supervision layer sees it: a line-oriented SMT-LIB2 transport. The
// production implementation wraps an exec.Cmd over the solver binary's
// stdin/stdout; tests and the chaos package substitute in-process fakes to
// exercise the supervision ladder (deadline, kill, restart, breaker)
// without any solver installed.
//
// An SMTProcess serves one goroutine's Write calls; ReadLine is called
// from a dedicated reader goroutine and must unblock with an error once
// Kill is called (or the process dies), so the supervisor never leaks a
// reader.
type SMTProcess interface {
	// Write sends one command line (no trailing newline). An error marks
	// the process dead — the supervisor kills and, within its restart
	// budget, respawns.
	Write(line string) error
	// ReadLine blocks for the next reply line. It returns an error (EOF)
	// when the process exits or Kill is called.
	ReadLine() (string, error)
	// Kill terminates the process immediately. It is idempotent and must
	// unblock any in-flight ReadLine.
	Kill()
}

// SMTOptions tunes the external-process smtlib backend. The zero value
// auto-discovers a solver binary and applies the defaults documented on
// each field; every failure mode degrades the external attempt to Unknown
// and the backend's in-process fallback supplies the verdict, so none of
// these knobs can change an analysis result — only its Stats.
type SMTOptions struct {
	// SolverPath is the solver binary ("z3", "/usr/bin/cvc5", ...). Empty
	// auto-discovers a known solver on PATH; if none exists the external
	// layer is disabled and every Check counts an ExtUnknown.
	SolverPath string
	// SolverArgs overrides the argument list. Empty selects the known
	// incremental-mode arguments for the discovered binary (e.g. z3 -in).
	SolverArgs []string
	// CheckTimeout is the per-check-sat deadline; on expiry the process is
	// killed and the check degrades to Unknown. Default 5s.
	CheckTimeout time.Duration
	// RestartBackoff is the base delay before respawning a crashed
	// process; it doubles with jitter per consecutive failure up to 100x.
	// Default 50ms.
	RestartBackoff time.Duration
	// MaxRestarts bounds process spawns per backend instance; beyond it
	// the external layer is disabled permanently (the end of the
	// degradation ladder). Default 8.
	MaxRestarts int
	// BreakerThreshold is the consecutive-failure count that trips the
	// circuit breaker open. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before one
	// half-open probe is allowed. Default 10s.
	BreakerCooldown time.Duration
	// Launch overrides how a process is started (tests, chaos injection).
	// Nil launches SolverPath/SolverArgs via exec.
	Launch func() (SMTProcess, error)
	// Clock overrides time.Now in the supervision layer (deterministic
	// breaker/backoff tests). Nil means time.Now.
	Clock func() time.Time
}
