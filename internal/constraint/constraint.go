// Package constraint is the pluggable incremental constraint-solving
// subsystem behind symbolic execution.
//
// Symbolic execution explores a tree of program paths, and sibling paths
// share long path-condition prefixes: the path condition of a state is its
// parent's path condition plus one branch constraint. The package models
// that sharing directly with an assertion stack, in the style of
// incremental SMT solvers (and of Pinaka's solver-state reuse across the
// exploration tree): the execution engine pushes a frame and asserts the
// branch constraint when it descends into a branch, pops the frame when it
// backtracks, and each Check decides only the conjunction currently on the
// stack. Backends are free to reuse work across Checks that share a stack
// prefix — the interval backend snapshots its propagation state per frame
// and keeps an LRU cache of solved prefixes shared across concurrent
// engines (see interval.go); the bitvector backend memoizes per-frame
// verdicts (see bitvec.go).
//
// Two backends are built in:
//
//   - "interval" (the default): an incremental adapter over the
//     finite-domain interval-propagation solver in internal/solver,
//     preserving the Choco-like semantics the DiSE paper ran with;
//   - "bitvec": a pure-Go fixed-width bitvector solver with wraparound
//     arithmetic, bitwise operators and unsigned comparisons (bvexpr.go),
//     opening scenarios the unbounded interval domain cannot express.
//
// Two more ship as self-registering subpackages (imported for side effect
// by the dise facade): "smtlib", a supervised external SMT-LIB2 process
// with an in-process fallback (internal/constraint/smtlib), and
// "portfolio", which races several member backends per Check
// (internal/constraint/portfolio). Further backends are added by
// implementing Backend and calling Register from an init function. Every
// backend treats an exhausted budget or an interrupt as an Unknown result,
// which callers treat as unsatisfiable — identical semantics across
// backends, as SPF does (paper §4.1).
package constraint

import (
	"fmt"
	"sort"
	"sync"

	"dise/internal/solver"
	"dise/internal/sym"
)

// Backend names accepted by New (and by the -solver flag of cmd/dise).
const (
	// BackendInterval is the incremental interval-propagation adapter.
	BackendInterval = "interval"
	// BackendIntervalNoReuse is the interval adapter with every form of
	// cross-Check reuse disabled: each Check re-solves its full assertion
	// stack from scratch. It exists as the A/B baseline for benchmarks and
	// equivalence tests, and mirrors what the engine did before the
	// subsystem existed.
	BackendIntervalNoReuse = "interval-noreuse"
	// BackendBitvec is the pure-Go fixed-width bitvector solver.
	BackendBitvec = "bitvec"
)

// Options configures a backend instance. A backend instance serves one
// engine (one goroutine); only the shared prefix Cache is safe for
// concurrent use.
type Options struct {
	// Domains assigns every symbolic input its interval domain. Backends
	// include all of these variables in every model, so callers can read
	// values for unconstrained inputs. Variables appearing in constraints
	// but absent here default to solver.DefaultDomain.
	Domains map[string]solver.Interval
	// NodeBudget caps search nodes per Check; exceeding it yields Unknown
	// (treated as unsatisfiable by callers). Zero means the backend default.
	NodeBudget int
	// Interrupt, when non-nil, is polled during solving; a non-nil return
	// aborts the Check with Unknown.
	Interrupt func() error
	// Cache, when non-nil, is a shared LRU of solved prefix hashes
	// (interval backend). Engines exploring related programs — sibling
	// requests of an AnalyzeBatch sharing a base version — hit each other's
	// entries. When nil the interval backend creates a private cache.
	Cache *PrefixCache
	// Width is the bit width of the bitvector backend (8..64). Zero means
	// 64, which makes bitvec agree with the interval backend on programs
	// whose arithmetic stays far from the width boundary.
	Width int
	// SMT configures the external-process "smtlib" backend (solver binary,
	// deadlines, restart/breaker policy). The zero value selects
	// auto-discovery with serviceable defaults; irrelevant to the pure-Go
	// backends.
	SMT SMTOptions
	// Portfolio lists the member backend names of the "portfolio"
	// meta-backend. Empty selects its default member set; irrelevant to
	// every other backend.
	Portfolio []string
}

// Result is the outcome of a Check.
type Result struct {
	Sat     bool
	Unknown bool // budget exhausted or interrupted before a verdict
	// Model maps every domain variable to a value when Sat. Models are
	// deterministic for a given backend and assertion stack.
	Model map[string]int64
}

// Caps describes what a backend can do, so callers can select or reject
// backends by capability instead of by name.
type Caps struct {
	// Name is the registry name of the backend.
	Name string
	// PrefixReuse reports that Checks sharing a stack prefix reuse solver
	// state (snapshots, caches) rather than re-solving from scratch.
	PrefixReuse bool
	// Wraparound reports fixed-width modular arithmetic semantics;
	// without it, arithmetic is over unbounded integers (saturating).
	Wraparound bool
	// Bitwise reports support for bitwise operators and unsigned
	// comparisons in the backend's native expression language.
	Bitwise bool
}

// Stats counts backend work across Checks. The frame counters expose the
// push/pop traffic of the exploration tree; the cache and reuse counters
// quantify how much solving the incremental machinery avoided.
type Stats struct {
	Backend string // registry name of the backend that produced the stats

	Checks  int // Check invocations
	Sat     int
	Unsat   int
	Unknown int // budget exhausted or interrupted

	Asserts       int // constraints asserted
	PushedFrames  int
	PoppedFrames  int
	CacheHits     int // full stack verdict answered by the prefix cache
	CacheMisses   int
	ModelReuses   int // sat decided by the parent prefix's cached witness
	BoxConflicts  int // unsat decided by propagating only the new conjunct
	FullSolves    int // Checks that fell through to a full solver search
	SearchNodes   int // inner-solver branching nodes
	Propagations  int // inner-solver domain-tightening passes
	BoxSnapshots  int // propagation-state snapshots taken (interval)
	FrameMemoHits int // verdict answered by the top frame's memo

	// Resilience counters of the external-process machinery (the smtlib
	// backend's supervision ladder and the portfolio's member isolation).
	// They are cost/health observability only: every degradation step ends
	// in a verdict from the in-process fallback, so these counters moving
	// never changes an exploration's outcome.
	ExtSolves       int // check-sat conversations attempted with an external solver
	ExtAnswers      int // definitive external verdicts adopted (sat ones model-validated)
	ExtUnknowns     int // Checks the external layer could not decide (absent binary, crash, timeout, garbage, breaker open, "unknown" reply)
	ExtTimeouts     int // per-check deadlines that expired, killing the process
	ExtRestarts     int // external solver processes spawned (first launch included)
	ExtBreakerTrips int // circuit-breaker opens after consecutive failures
	FallbackSolves  int // verdicts supplied by the in-process fallback backend
	MemberFailures  int // portfolio members excluded after a panic
}

// Add accumulates o into s, field by field. Schedulers running one backend
// instance per exploration worker use it to merge the per-worker counters at
// join time. The Backend name is taken from o when s has none (workers of
// one exploration always share a backend name).
func (s *Stats) Add(o Stats) {
	if s.Backend == "" {
		s.Backend = o.Backend
	}
	s.Checks += o.Checks
	s.Sat += o.Sat
	s.Unsat += o.Unsat
	s.Unknown += o.Unknown
	s.Asserts += o.Asserts
	s.PushedFrames += o.PushedFrames
	s.PoppedFrames += o.PoppedFrames
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.ModelReuses += o.ModelReuses
	s.BoxConflicts += o.BoxConflicts
	s.FullSolves += o.FullSolves
	s.SearchNodes += o.SearchNodes
	s.Propagations += o.Propagations
	s.BoxSnapshots += o.BoxSnapshots
	s.FrameMemoHits += o.FrameMemoHits
	s.ExtSolves += o.ExtSolves
	s.ExtAnswers += o.ExtAnswers
	s.ExtUnknowns += o.ExtUnknowns
	s.ExtTimeouts += o.ExtTimeouts
	s.ExtRestarts += o.ExtRestarts
	s.ExtBreakerTrips += o.ExtBreakerTrips
	s.FallbackSolves += o.FallbackSolves
	s.MemberFailures += o.MemberFailures
}

// Backend is one constraint solver with an assertion stack.
//
// The stack discipline mirrors the execution tree: Push opens a frame,
// Assert adds constraints to the top frame, Check decides the conjunction
// of all frames, Pop discards the top frame. Model returns the witness of
// the last satisfiable Check. Backends are not safe for concurrent use;
// each engine owns one instance.
type Backend interface {
	// Push opens a new assertion frame.
	Push()
	// Pop discards the top frame and its assertions. Popping the base
	// frame panics: it indicates a push/pop imbalance in the caller.
	Pop()
	// Assert adds a constraint to the top frame.
	Assert(c sym.Expr)
	// Check decides satisfiability of the conjunction of every asserted
	// constraint under the input domains.
	Check() Result
	// Model returns the model of the most recent satisfiable Check, or nil.
	Model() map[string]int64
	// Caps reports the backend's capabilities.
	Caps() Caps
	// Stats returns accumulated counters.
	Stats() Stats
	// ResetStats zeroes the counters.
	ResetStats()
}

// registry holds the backend constructors added by Register, keyed by
// name. The built-in backends stay in New's switch; the map only carries
// subpackage and test registrations.
var (
	registryMu sync.RWMutex
	registry   = map[string]func(Options) (Backend, error){}
)

// Register adds a backend constructor under name, making it available to
// New (and so to every -solver flag and facade option). It is intended to
// be called from init functions of backend subpackages — smtlib and
// portfolio register themselves this way — and panics on a duplicate or
// built-in name: two packages claiming one name is a wiring bug, not a
// runtime condition.
func Register(name string, ctor func(Options) (Backend, error)) {
	if name == "" || ctor == nil {
		panic("constraint: Register needs a name and a constructor")
	}
	switch name {
	case BackendInterval, BackendIntervalNoReuse, BackendBitvec:
		panic(fmt.Sprintf("constraint: Register(%q) collides with a built-in backend", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("constraint: backend %q registered twice", name))
	}
	registry[name] = ctor
}

// New constructs a backend by registry name. The empty name selects the
// default interval backend.
func New(name string, opts Options) (Backend, error) {
	switch name {
	case "", BackendInterval:
		return newIntervalBackend(opts, true), nil
	case BackendIntervalNoReuse:
		return newIntervalBackend(opts, false), nil
	case BackendBitvec:
		return newBitvecBackend(opts)
	}
	registryMu.RLock()
	ctor := registry[name]
	registryMu.RUnlock()
	if ctor != nil {
		return ctor(opts)
	}
	return nil, fmt.Errorf("constraint: unknown solver backend %q (have %v)", name, Names())
}

// Names lists the registered backend names: the built-ins in their
// historical order, then the Register-ed ones sorted for determinism.
func Names() []string {
	out := []string{BackendInterval, BackendIntervalNoReuse, BackendBitvec}
	registryMu.RLock()
	extra := make([]string, 0, len(registry))
	for name := range registry {
		extra = append(extra, name)
	}
	registryMu.RUnlock()
	sort.Strings(extra)
	return append(out, extra...)
}

// Tally folds one result into the verdict counters. Backends outside this
// package (smtlib, portfolio) use it to keep their Sat/Unsat/Unknown
// bookkeeping identical to the built-ins'.
func (s *Stats) Tally(r Result) {
	switch {
	case r.Sat:
		s.Sat++
	case r.Unknown:
		s.Unknown++
	default:
		s.Unsat++
	}
}
