package chaos

import (
	"testing"
	"time"

	"dise/internal/constraint"
	"dise/internal/constraint/smtlib"
	"dise/internal/solver"
	"dise/internal/sym"
)

func smtOpts(plan Plan) constraint.Options {
	return constraint.Options{
		Domains: map[string]solver.Interval{"X": {Lo: 0, Hi: 10}},
		SMT: constraint.SMTOptions{
			Launch:         Transport(plan),
			CheckTimeout:   50 * time.Millisecond,
			RestartBackoff: time.Millisecond,
		},
	}
}

func xGT(v int64) sym.Expr { return sym.Cmp(sym.OpGT, sym.V("X"), sym.Int(v)) }

// checkBoth asserts the stack on a chaos-driven smtlib backend and a bare
// interval backend and requires identical verdicts.
func verdictsMatch(t *testing.T, plan Plan, rounds int) constraint.Stats {
	t.Helper()
	b, err := smtlib.New(smtOpts(plan))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := constraint.New(constraint.BackendInterval,
		constraint.Options{Domains: map[string]solver.Interval{"X": {Lo: 0, Hi: 10}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		b.Push()
		ref.Push()
		c := xGT(5)
		if i%2 == 1 {
			c = xGT(50)
		}
		b.Assert(c)
		ref.Assert(c)
		got, want := b.Check(), ref.Check()
		if got.Sat != want.Sat || got.Unknown != want.Unknown {
			t.Fatalf("plan %v round %d: chaos %+v vs interval %+v", plan, i, got, want)
		}
		b.Pop()
		ref.Pop()
		time.Sleep(2 * time.Millisecond) // let tiny backoffs expire
	}
	return b.Stats()
}

func TestTransportCrashSchedule(t *testing.T) {
	st := verdictsMatch(t, Plan{Fault: Crash, EveryN: 2}, 8)
	if st.ExtRestarts < 2 {
		t.Fatalf("crash schedule caused no restarts: %+v", st)
	}
	if st.ExtUnknowns == 0 || st.FallbackSolves != 8 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTransportGarbageSchedule(t *testing.T) {
	st := verdictsMatch(t, Plan{Fault: Garbage, EveryN: 3}, 9)
	if st.ExtUnknowns != 9 {
		t.Fatalf("every check should degrade (healthy replies are unknown): %+v", st)
	}
	if st.ExtRestarts < 2 {
		t.Fatalf("garbage replies should kill and respawn: %+v", st)
	}
}

func TestTransportHangSchedule(t *testing.T) {
	st := verdictsMatch(t, Plan{Fault: Hang, EveryN: 4}, 8)
	if st.ExtTimeouts < 2 {
		t.Fatalf("hangs should hit the deadline: %+v", st)
	}
}

func TestTransportWriteErrorSchedule(t *testing.T) {
	st := verdictsMatch(t, Plan{Fault: ErrWrite, EveryN: 2}, 8)
	if st.ExtRestarts < 2 {
		t.Fatalf("write errors should count as failures and respawn: %+v", st)
	}
}

func TestTransportHealthySchedule(t *testing.T) {
	// EveryN=0 never faults: a clean conversation that still answers only
	// "unknown", so the fallback decides everything with one spawn.
	st := verdictsMatch(t, Plan{}, 6)
	if st.ExtRestarts != 1 || st.ExtBreakerTrips != 0 {
		t.Fatalf("healthy transport restarted or tripped: %+v", st)
	}
	if st.ExtSolves != 6 || st.FallbackSolves != 6 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWrapUnknownAndHang(t *testing.T) {
	for _, plan := range []Plan{
		{Fault: Unknown, EveryN: 2},
		{Fault: Hang, EveryN: 2, HangFor: time.Millisecond},
	} {
		inner, err := constraint.New(constraint.BackendInterval,
			constraint.Options{Domains: map[string]solver.Interval{"X": {Lo: 0, Hi: 10}}})
		if err != nil {
			t.Fatal(err)
		}
		b := Wrap(inner, plan)
		b.Push()
		b.Assert(xGT(5))
		if res := b.Check(); !res.Sat {
			t.Fatalf("plan %v: first check should pass through, got %+v", plan, res)
		}
		if res := b.Check(); !res.Unknown {
			t.Fatalf("plan %v: second check should degrade, got %+v", plan, res)
		}
		if res := b.Check(); !res.Sat {
			t.Fatalf("plan %v: third check should pass through, got %+v", plan, res)
		}
	}
}

func TestWrapCrashPanics(t *testing.T) {
	inner, err := constraint.New(constraint.BackendInterval,
		constraint.Options{Domains: map[string]solver.Interval{"X": {Lo: 0, Hi: 10}}})
	if err != nil {
		t.Fatal(err)
	}
	b := Wrap(inner, Plan{Fault: Crash, EveryN: 1})
	b.Push()
	b.Assert(xGT(5))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Check()
}
