// Package chaos injects deterministic faults into the constraint layer so
// tests can prove the resilience contract: no solver failure mode may ever
// change an analysis verdict, only Stats counters.
//
// Faults are injected at two levels, deliberately different:
//
//   - Transport level (Transport): a fake SMT process handed to the smtlib
//     backend through SMTOptions.Launch. When not faulting it converses
//     correctly but answers "unknown" — so every verdict provably comes
//     from the backend's fallback — and on schedule it crashes, hangs,
//     replies garbage, or fails writes. This exercises the full
//     supervision ladder (deadline, kill, restart, backoff, breaker).
//
//   - Backend level (Wrap): a constraint.Backend wrapper that panics,
//     hangs, or degrades to Unknown on schedule. This exercises the
//     engine's panic containment and the portfolio's member isolation.
//     Backend-level faults never fabricate verdicts: a lying Backend
//     would (correctly) corrupt any consumer, which is not the contract
//     under test.
//
// Every schedule is a pure function of a check counter — no clocks, no
// randomness — so a chaos run is exactly reproducible.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"dise/internal/constraint"
	"dise/internal/sym"
)

// Fault is one injected failure mode.
type Fault string

const (
	// Crash kills the conversation: at transport level the process exits
	// without replying; at backend level Check panics.
	Crash Fault = "crash"
	// Hang never answers: the transport goes silent; a wrapped backend
	// sleeps past any reasonable deadline before answering Unknown.
	Hang Fault = "hang"
	// Garbage replies nonsense to check-sat (transport level only).
	Garbage Fault = "garbage"
	// ErrWrite fails the write of stack-sync commands (transport only).
	ErrWrite Fault = "err-write"
	// Unknown degrades the Nth Check to an Unknown verdict (backend
	// level only) — the polite failure.
	Unknown Fault = "unknown"
)

// Plan is a deterministic fault schedule: inject Fault on every Nth
// check-sat (transport) or Check (backend), counting from 1. EveryN <= 0
// means never. The counter is shared across process respawns, so a
// crash-every-3rd plan keeps crashing restarted processes too.
type Plan struct {
	Fault  Fault
	EveryN int
	// HangFor bounds a Hang at backend level (a transport hang is ended
	// by the supervisor's deadline instead). Defaults to 50ms.
	HangFor time.Duration
}

func (p Plan) String() string { return fmt.Sprintf("%s/every-%d", p.Fault, p.EveryN) }

// due reports whether the n-th event (1-based) is scheduled to fault.
func (p Plan) due(n int) bool { return p.EveryN > 0 && n%p.EveryN == 0 }

// Transport returns an SMTOptions.Launch function producing fake solver
// processes governed by the plan. The shared counter lives in the returned
// closure: respawned processes continue the schedule, they do not restart
// it.
func Transport(plan Plan) func() (constraint.SMTProcess, error) {
	counter := &counter{}
	return func() (constraint.SMTProcess, error) {
		return &transport{plan: plan, n: counter, done: make(chan struct{}), notify: make(chan struct{}, 1)}, nil
	}
}

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) next() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// transport is the fake solver process. Protocol behavior when healthy:
// every check-sat answers "unknown" (keeping verdicts with the fallback),
// everything else is accepted silently.
type transport struct {
	plan   Plan
	n      *counter
	mu     sync.Mutex
	queue  []string
	killed bool
	once   sync.Once
	done   chan struct{}
	notify chan struct{}
}

var errInjectedWrite = errors.New("chaos: injected write failure")

func (t *transport) Write(line string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.killed {
		return errors.New("chaos: write to dead process")
	}
	switch {
	case len(line) >= 10 && line[:10] == "(check-sat":
		n := t.n.next()
		if t.plan.due(n) {
			switch t.plan.Fault {
			case Crash:
				t.dieLocked()
			case Hang:
				// Silence; the supervisor's deadline will fire.
			case Garbage:
				t.push("§§ not an smt reply §§")
			case ErrWrite:
				// Schedule hit but the fault targets writes; still answer.
				t.push("unknown")
			default:
				t.push("unknown")
			}
			return nil
		}
		t.push("unknown")
	case len(line) >= 5 && line[:5] == "(push":
		if t.plan.Fault == ErrWrite && t.plan.due(t.n.next()) {
			return errInjectedWrite
		}
	case len(line) >= 10 && line[:10] == "(get-value":
		// Healthy transports never claim sat, so a model request means the
		// conversation is already broken; answer garbage.
		t.push("chaos: no model")
	}
	return nil
}

func (t *transport) push(line string) {
	t.queue = append(t.queue, line)
	select {
	case t.notify <- struct{}{}:
	default:
	}
}

func (t *transport) dieLocked() {
	if !t.killed {
		t.killed = true
		t.once.Do(func() { close(t.done) })
	}
}

func (t *transport) ReadLine() (string, error) {
	for {
		t.mu.Lock()
		if len(t.queue) > 0 {
			line := t.queue[0]
			t.queue = t.queue[1:]
			t.mu.Unlock()
			return line, nil
		}
		dead := t.killed
		t.mu.Unlock()
		if dead {
			return "", io.EOF
		}
		select {
		case <-t.notify:
		case <-t.done:
			return "", io.EOF
		}
	}
}

func (t *transport) Kill() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dieLocked()
}

// Wrap decorates a Backend with scheduled backend-level faults. Only
// Crash (panic), Hang (bounded sleep, then Unknown), and Unknown are
// meaningful here; other faults pass Checks through unchanged.
func Wrap(inner constraint.Backend, plan Plan) constraint.Backend {
	if plan.HangFor <= 0 {
		plan.HangFor = 50 * time.Millisecond
	}
	return &wrapped{inner: inner, plan: plan}
}

type wrapped struct {
	inner constraint.Backend
	plan  Plan
	n     int
}

func (w *wrapped) Push()             { w.inner.Push() }
func (w *wrapped) Pop()              { w.inner.Pop() }
func (w *wrapped) Assert(c sym.Expr) { w.inner.Assert(c) }

func (w *wrapped) Check() constraint.Result {
	w.n++
	if w.plan.due(w.n) {
		switch w.plan.Fault {
		case Crash:
			panic(fmt.Sprintf("chaos: injected panic on check %d", w.n))
		case Hang:
			time.Sleep(w.plan.HangFor)
			return constraint.Result{Unknown: true}
		case Unknown:
			return constraint.Result{Unknown: true}
		}
	}
	return w.inner.Check()
}

func (w *wrapped) Model() map[string]int64 { return w.inner.Model() }
func (w *wrapped) Caps() constraint.Caps   { return w.inner.Caps() }
func (w *wrapped) Stats() constraint.Stats { return w.inner.Stats() }
func (w *wrapped) ResetStats()             { w.inner.ResetStats() }
