package constraint

import (
	"math"
	"testing"
	"time"

	"dise/internal/solver"
	"dise/internal/sym"
)

func mustBuilder(t *testing.T, width int) *Builder {
	t.Helper()
	b, err := NewBuilder(width)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuilderHashConsingAndFolding(t *testing.T) {
	b := mustBuilder(t, 32)
	x := b.Var("X")
	if b.Var("X") != x {
		t.Error("variables must be interned")
	}
	e1 := b.Add(x, b.Const(1))
	e2 := b.Add(x, b.Const(1))
	if e1 != e2 {
		t.Error("structurally equal terms must be the same pointer")
	}
	// Constant folding, with wraparound at the width.
	if got := b.Add(b.Const(1), b.Const(2)); got.Op != BVConst || got.Val != 3 {
		t.Errorf("1+2 must fold to 3, got %v", got)
	}
	maxs := b.Const(b.MaxS())
	if got := b.Add(maxs, b.Const(1)); got.Op != BVConst || b.ToSigned(got.Val) != b.MinS() {
		t.Errorf("MaxS+1 must fold to MinS (wrap), got %v", got)
	}
	// Division by zero must stay symbolic (it is a run-time error, not a value).
	if got := b.SDiv(b.Const(1), b.Const(0)); got.Op != BVSDiv {
		t.Errorf("1/0 must not fold, got %v", got)
	}
}

func TestBuilderEvalWraparound(t *testing.T) {
	b := mustBuilder(t, 8)
	x := b.Var("X")
	env := map[string]uint64{"X": b.Mask(200)}
	cases := []struct {
		name string
		e    *BVExpr
		want int64
	}{
		{"add wraps", b.Add(x, b.Const(100)), b.ToSigned(b.Mask(300))}, // 300 mod 256 = 44
		{"mul wraps", b.Mul(x, b.Const(2)), b.ToSigned(b.Mask(400))},   // 400 mod 256 = -112 signed
		{"neg", b.Neg(b.Const(1)), -1},
		{"and", b.And(x, b.Const(0x0F)), 0x08}, // 200 = 0xC8
		{"or", b.Or(b.Const(0x10), b.Const(3)), 0x13},
		{"xor", b.Xor(x, x), 0},
		{"not", b.Not(b.Const(0)), -1},
		{"shl", b.Shl(b.Const(1), b.Const(7)), b.MinS()}, // 0x80 = -128 signed
		{"lshr", b.Lshr(x, b.Const(4)), 0x0C},
		{"ult: 200u > 100u", b.Ugt(x, b.Const(100)), 1},
		{"slt: 200 is -56 signed < 100", b.Slt(x, b.Const(100)), 1},
	}
	for _, tc := range cases {
		v, err := b.Eval(tc.e, env)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := int64(v)
		if !tc.e.Op.IsBool() {
			got = b.ToSigned(v)
		}
		if got != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, got, tc.want)
		}
	}
	if _, err := b.Eval(b.SDiv(x, b.Const(0)), env); err == nil {
		t.Error("division by zero must error")
	}
}

// bvBackend returns the concrete type so tests can reach Builder/AssertBV.
func bvBackend(t *testing.T, opts Options) *bitvecBackend {
	t.Helper()
	b, err := New(BackendBitvec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b.(*bitvecBackend)
}

func TestBitvecWraparoundScenario(t *testing.T) {
	// X + 1 < X (signed) is satisfiable ONLY with wraparound: X = MaxS.
	// This is the scenario class the unbounded interval domain cannot
	// express — its saturating arithmetic proves X + 1 > X for all X.
	b := bvBackend(t, Options{Width: 16, Domains: map[string]solver.Interval{
		"X": {Lo: -32768, Hi: 32767},
	}})
	x := sym.V("X")
	b.Push()
	b.Assert(sym.Cmp(sym.OpLT, sym.Add(x, sym.One), x))
	res := b.Check()
	if !res.Sat {
		t.Fatalf("X+1 < X must be sat under wraparound (result %+v, stats %+v)", res, b.Stats())
	}
	if got := res.Model["X"]; got != 32767 {
		t.Errorf("model X = %d, want 32767 (MaxS)", got)
	}

	// The interval backend, by design, says unsat for the same query.
	iv := mustBackend(t, BackendInterval, Options{Domains: map[string]solver.Interval{
		"X": {Lo: -32768, Hi: 32767},
	}})
	iv.Push()
	iv.Assert(sym.Cmp(sym.OpLT, sym.Add(x, sym.One), x))
	if res := iv.Check(); res.Sat || res.Unknown {
		t.Errorf("interval backend must refute X+1 < X (unbounded semantics), got %+v", res)
	}
}

func TestBitvecBitwiseScenario(t *testing.T) {
	// (X & 0xFF) == 0x80 ∧ X <= 1000: native bitvector constraints asserted
	// through the builder, solved by search. 0x80=128, 0x180=384 qualify.
	b := bvBackend(t, Options{Width: 32, Domains: map[string]solver.Interval{
		"X": {Lo: 0, Hi: 1000},
	}})
	bld := b.Builder()
	x := bld.Var("X")
	b.Push()
	b.AssertBV(bld.Eq(bld.And(x, bld.Const(0xFF)), bld.Const(0x80)))
	res := b.Check()
	if !res.Sat {
		t.Fatalf("must be sat, stats %+v", b.Stats())
	}
	if got := res.Model["X"]; got&0xFF != 0x80 {
		t.Errorf("model X = %d (0x%x), want low byte 0x80", got, got)
	}
	// Forbid the found solution and ask for another.
	b.Push()
	b.AssertBV(bld.Ne(x, bld.Const(res.Model["X"])))
	res2 := b.Check()
	if !res2.Sat {
		t.Fatal("a second solution exists (e.g. 0x180)")
	}
	if res2.Model["X"] == res.Model["X"] || res2.Model["X"]&0xFF != 0x80 {
		t.Errorf("second model X = %d invalid", res2.Model["X"])
	}
}

func TestBitvecUnsignedComparison(t *testing.T) {
	// -1 >u 1000 in unsigned order (0xFFFF... is the largest unsigned).
	b := bvBackend(t, Options{Width: 32, Domains: map[string]solver.Interval{
		"X": {Lo: -5, Hi: -1},
	}})
	bld := b.Builder()
	x := bld.Var("X")
	b.Push()
	b.AssertBV(bld.Ugt(x, bld.Const(1000)))
	if res := b.Check(); !res.Sat {
		t.Fatal("negative X is unsigned-greater than 1000: must be sat")
	}
	b.Pop()
	b.Push()
	b.AssertBV(bld.Ult(x, bld.Const(1000)))
	if res := b.Check(); res.Sat || res.Unknown {
		t.Errorf("negative X unsigned-less than 1000 must be unsat, got %+v", res)
	}
}

func TestBitvecDivisionSemantics(t *testing.T) {
	// X / Y == 3 ∧ Y == 0 is unsat: division by zero fails concretely.
	x, y := sym.V("X"), sym.V("Y")
	b := bvBackend(t, Options{Domains: map[string]solver.Interval{
		"X": {Lo: 0, Hi: 10}, "Y": {Lo: 0, Hi: 0},
	}})
	b.Push()
	b.Assert(sym.Cmp(sym.OpEQ, sym.Div(x, y), sym.Int(3)))
	if res := b.Check(); res.Sat {
		t.Error("division by zero must make the constraint unsatisfiable")
	}
	b.Pop()

	// X / 2 == 3 over [0,10]: X in {6, 7}.
	b2 := bvBackend(t, Options{Domains: map[string]solver.Interval{"X": {Lo: 0, Hi: 10}}})
	b2.Push()
	b2.Assert(sym.Cmp(sym.OpEQ, sym.Div(x, sym.Int(2)), sym.Int(3)))
	res := b2.Check()
	if !res.Sat || res.Model["X"]/2 != 3 {
		t.Errorf("X/2 == 3 must be sat with a valid model, got %+v", res)
	}
}

func TestBitvecBoundaryDomains(t *testing.T) {
	// Regression: domains pinned at the width's signed extremes must not
	// wrap during Ne refinement or small-domain enumeration.
	maxS := int64(math.MaxInt64)
	t.Run("ne at MaxS", func(t *testing.T) {
		// X == MaxS (singleton domain) ∧ X != MaxS: must be unsat, not a
		// wrapped-open domain yielding a bogus model.
		b := bvBackend(t, Options{Domains: map[string]solver.Interval{
			"X": {Lo: maxS, Hi: maxS},
		}})
		b.Push()
		b.Assert(sym.Cmp(sym.OpNE, sym.V("X"), sym.Int(maxS)))
		if res := b.Check(); res.Sat {
			t.Errorf("X != MaxS over {MaxS} must be unsat, got Sat with model %v", res.Model)
		}
	})
	t.Run("enumeration at MaxS", func(t *testing.T) {
		// A small domain ending exactly at MaxS triggers the ascending
		// enumeration; the loop bound must not wrap past MaxS. X*X is
		// abstractly inconclusive (overflow widens to full), forcing
		// enumeration; unsat at every value.
		x := sym.V("X")
		b := bvBackend(t, Options{Domains: map[string]solver.Interval{
			"X": {Lo: maxS - 3, Hi: maxS},
		}})
		b.Push()
		b.Assert(sym.Cmp(sym.OpEQ, sym.Mul(x, x), sym.Int(5)))
		done := make(chan Result, 1)
		go func() { done <- b.Check() }()
		select {
		case res := <-done:
			if res.Sat {
				t.Errorf("X*X == 5 near MaxS must not be sat, got %+v", res)
			}
		case <-time.After(10 * time.Second): // the fixed loop finishes in microseconds
			t.Fatal("Check hung: enumeration wrapped past MaxS")
		}
	})
}

func TestBitvecCacheKeyedByWidth(t *testing.T) {
	// Regression: two bitvec backends of different widths sharing one
	// PrefixCache must not exchange verdicts. X + 100 < X over [0,100] is
	// sat at width 8 (X=100 wraps to -56) but unsat at width 64.
	cache := NewPrefixCache(16)
	x := sym.V("X")
	query := sym.Cmp(sym.OpLT, sym.Add(x, sym.Int(100)), x)
	doms := map[string]solver.Interval{"X": {Lo: 0, Hi: 100}}
	check := func(width int) Result {
		b := bvBackend(t, Options{Width: width, Domains: doms, Cache: cache})
		b.Push()
		b.Assert(query)
		return b.Check()
	}
	if res := check(8); !res.Sat {
		t.Errorf("width 8: X+100 < X must be sat (wraparound), got %+v", res)
	}
	if res := check(64); res.Sat {
		t.Errorf("width 64: X+100 < X must be unsat, got %+v (cache key missing width?)", res)
	}
}

func TestBitvecWidthValidation(t *testing.T) {
	if _, err := New(BackendBitvec, Options{Width: 4}); err == nil {
		t.Error("width 4 must be rejected")
	}
	if _, err := New(BackendBitvec, Options{Width: 128}); err == nil {
		t.Error("width 128 must be rejected")
	}
}
