package constraint

import (
	"fmt"
	"sort"

	"dise/internal/solver"
	"dise/internal/sym"
)

// ivFrame is one assertion frame of the interval backend. Besides the
// asserted constraints it carries the two pieces of reusable solver state:
//
//   - box: the propagation snapshot — the input domains tightened to bounds
//     consistency under every constraint up to and including this frame.
//     A child Check propagates only its own new conjunct against the
//     parent's box instead of re-propagating the whole path condition.
//   - res: the memoized verdict for the stack prefix ending at this frame,
//     whose model (when Sat) is the witness that lets most child Checks
//     succeed without any solving at all.
//
// Both are lazily (re)computed and may be adopted from the shared
// PrefixCache, which stores them under the frame's chained key.
type ivFrame struct {
	exprs []sym.Expr
	// expr0 is the inline backing array for exprs: the engine asserts
	// exactly one constraint per frame, so the common case needs no second
	// allocation beyond the frame itself.
	expr0 [1]sym.Expr
	key   prefixKey
	box   map[string]solver.Interval // nil until computed; read-only once set
	// residual holds the frame's atoms that its box does not entail (valid
	// once box is set). Boxes shrink monotonically down the stack, so an
	// atom entailed at its own frame stays entailed at every deeper frame —
	// a full solve only ever needs the concatenated residuals.
	residual []sym.Expr
	res      *Result // nil until known; read-only once set
}

// intervalBackend adapts the finite-domain interval solver of
// internal/solver to the incremental Backend interface. With reuse enabled
// it implements the full prefix-reuse machinery; with reuse disabled every
// Check re-solves its complete assertion stack from the raw input domains,
// which is exactly what the execution engine did before this subsystem
// existed (the A/B baseline).
type intervalBackend struct {
	inner     *solver.Solver
	domains   map[string]solver.Interval
	frames    []*ivFrame
	cache     *PrefixCache
	reuse     bool
	stats     Stats
	lastModel map[string]int64
}

func newIntervalBackend(opts Options, reuse bool) *intervalBackend {
	domains := make(map[string]solver.Interval, len(opts.Domains))
	for k, v := range opts.Domains {
		domains[k] = v
	}
	cache := opts.Cache
	if cache == nil && reuse {
		// A private cache still pays off: within one engine it preserves
		// frame state across the pop/re-push cycles of the branch checks.
		cache = NewPrefixCache(0)
	}
	name := BackendInterval
	if !reuse {
		name = BackendIntervalNoReuse
	}
	b := &intervalBackend{
		inner:   solver.New(solver.Options{NodeBudget: opts.NodeBudget, Interrupt: opts.Interrupt}),
		domains: domains,
		cache:   cache,
		reuse:   reuse,
		stats:   Stats{Backend: name},
	}
	b.frames = []*ivFrame{{key: domainsKey(domains)}}
	return b
}

// domainsKey seeds the prefix-key chain with a digest of the input domains,
// so engines with different domains never share cache entries.
func domainsKey(domains map[string]solver.Interval) prefixKey {
	names := make([]string, 0, len(domains))
	for n := range domains {
		names = append(names, n)
	}
	sort.Strings(names)
	key := prefixKey{}
	for _, n := range names {
		d := domains[n]
		key = key.extend(fmt.Sprintf("%s∈[%d,%d]", n, d.Lo, d.Hi))
	}
	return key
}

func (b *intervalBackend) Push() {
	top := b.frames[len(b.frames)-1]
	f := &ivFrame{key: top.key}
	f.exprs = f.expr0[:0]
	b.frames = append(b.frames, f)
	b.stats.PushedFrames++
}

func (b *intervalBackend) Pop() {
	if len(b.frames) == 1 {
		panic("constraint: Pop on the base frame (push/pop imbalance)")
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.stats.PoppedFrames++
}

func (b *intervalBackend) Assert(c sym.Expr) {
	top := b.frames[len(b.frames)-1]
	top.exprs = append(top.exprs, c)
	// Key on the structural fingerprints — field reads for hash-consed
	// expressions — instead of rendering the constraint to a string and
	// hashing the bytes on every assert.
	top.key = top.key.extendFP(sym.Fingerprints(c))
	top.box, top.residual, top.res = nil, nil, nil
	b.stats.Asserts++
}

func (b *intervalBackend) Model() map[string]int64 { return b.lastModel }

func (b *intervalBackend) Caps() Caps {
	return Caps{Name: b.stats.Backend, PrefixReuse: b.reuse}
}

func (b *intervalBackend) Stats() Stats {
	st := b.stats
	inner := b.inner.Stats()
	st.SearchNodes = inner.SearchNodes
	st.Propagations = inner.Propagations
	return st
}

func (b *intervalBackend) ResetStats() {
	b.stats = Stats{Backend: b.stats.Backend}
	b.inner.ResetStats()
}

func (b *intervalBackend) Check() Result {
	b.stats.Checks++
	res := b.check()
	b.stats.Tally(res)
	b.lastModel = nil
	if res.Sat {
		b.lastModel = res.Model
	}
	return res
}

func (b *intervalBackend) check() Result {
	top := b.frames[len(b.frames)-1]
	if !b.reuse {
		// Baseline: compile-and-solve the whole stack from the raw domains,
		// ignoring every snapshot. (Expression compilation inside the inner
		// solver is still cached — it always was.)
		b.stats.FullSolves++
		r := b.inner.Check(b.stackExprs(), b.domains)
		return Result{Sat: r.Sat, Unknown: r.Unknown, Model: r.Model}
	}
	if top.res != nil {
		b.stats.FrameMemoHits++
		return *top.res
	}
	// Whole-stack verdict from the shared cache: a sibling engine (or this
	// one, before a pop/re-push cycle) may have decided this exact prefix.
	if ent, ok := b.cache.get(top.key); ok && ent.res != nil {
		b.stats.CacheHits++
		top.res, top.box, top.residual = ent.res, ent.box, ent.residual
		return *ent.res
	}
	b.stats.CacheMisses++

	parentBox, parentModel, conflict := b.ensureAncestors()
	if conflict {
		res := Result{}
		top.res = &res
		return res
	}
	// Witness fast path: the parent prefix's model already satisfies the new
	// conjuncts, so the conjunction is Sat with no solving. This is the
	// dominant case down a feasible path (exactly one branch outcome agrees
	// with any given model).
	if parentModel != nil && b.modelSatisfies(parentModel, top.exprs) {
		res := Result{Sat: true, Model: parentModel}
		if box, residual, ok := b.propagateFrame(top, parentBox); ok {
			top.box, top.residual = box, residual
		}
		top.res = &res
		b.stats.ModelReuses++
		b.cache.put(top.key, prefixEntry{res: &res, box: top.box, residual: top.residual})
		return res
	}
	// Incremental refutation: propagate only the new conjuncts against the
	// parent's snapshot. An empty domain refutes the whole conjunction
	// without touching the prefix constraints.
	box, residual, ok := b.propagateFrame(top, parentBox)
	if !ok {
		b.stats.BoxConflicts++
		res := Result{}
		top.res = &res
		b.cache.put(top.key, prefixEntry{res: &res})
		return res
	}
	top.box, top.residual = box, residual
	// Full search, starting from the tightened box and solving only the
	// stack's residual atoms — constraints the chained propagation proved to
	// hold everywhere in the box are dropped (sound: the box
	// over-approximates the prefix's solution set, so no solution of the
	// conjunction is outside it, and inside it the dropped atoms are
	// vacuous).
	b.stats.FullSolves++
	r := b.inner.Check(b.stackResidual(), box)
	res := Result{Sat: r.Sat, Unknown: r.Unknown, Model: r.Model}
	if !res.Unknown {
		// Unknown verdicts are budget- and timing-dependent; never memoize
		// or share them.
		top.res = &res
		b.cache.put(top.key, prefixEntry{res: &res, box: box, residual: residual})
	} else {
		// The snapshot itself is still valid and reusable.
		b.cache.put(top.key, prefixEntry{box: box, residual: residual})
	}
	return res
}

// ensureAncestors makes sure every frame below the top has its propagation
// snapshot, computing missing ones top-down from the base (consulting the
// shared cache first). It returns the parent frame's box, the parent
// prefix's satisfying model when one is known, and whether an ancestor
// frame was refuted outright.
func (b *intervalBackend) ensureAncestors() (map[string]solver.Interval, map[string]int64, bool) {
	parentBox := b.domains
	for i, f := range b.frames[:len(b.frames)-1] {
		if f.box == nil {
			if ent, ok := b.cache.get(f.key); ok && ent.box != nil {
				f.box, f.residual, f.res = ent.box, ent.residual, ent.res
			} else if len(f.exprs) == 0 && i == 0 {
				f.box = b.domains
			} else {
				box, residual, ok := b.propagateFrame(f, parentBox)
				if !ok {
					res := Result{}
					f.res = &res
					return nil, nil, true
				}
				f.box, f.residual = box, residual
				b.cache.put(f.key, prefixEntry{box: box, residual: residual})
			}
		}
		if f.res != nil && !f.res.Sat && !f.res.Unknown {
			return nil, nil, true
		}
		parentBox = f.box
	}
	var parentModel map[string]int64
	if len(b.frames) > 1 {
		if parent := b.frames[len(b.frames)-2]; parent.res != nil && parent.res.Sat {
			parentModel = parent.res.Model
		}
	}
	return parentBox, parentModel, false
}

// propagateFrame tightens the parent box under the frame's own constraints
// (bounds-consistency fixpoint over just the constraints' variables, no
// search) and computes the frame's residual atoms. A false return is a
// sound refutation of the whole stack. When the constraints tighten
// nothing, the parent box is shared, not copied — long runs of
// already-satisfied frames cost no memory.
func (b *intervalBackend) propagateFrame(f *ivFrame, parentBox map[string]solver.Interval) (map[string]solver.Interval, []sym.Expr, bool) {
	delta, residual, ok := b.inner.PropagateDelta(f.exprs, parentBox)
	if !ok {
		return nil, nil, false
	}
	b.stats.BoxSnapshots++
	changed := false
	for name, d := range delta {
		if parentBox[name] != d {
			changed = true
			break
		}
	}
	if !changed {
		return parentBox, residual, true
	}
	box := make(map[string]solver.Interval, len(parentBox)+len(delta))
	for name, d := range parentBox {
		box[name] = d
	}
	for name, d := range delta {
		box[name] = d
	}
	return box, residual, true
}

// modelSatisfies reports whether the model satisfies every expression (any
// evaluation error — e.g. a variable the prefix never mentioned — means no).
func (b *intervalBackend) modelSatisfies(model map[string]int64, exprs []sym.Expr) bool {
	for _, e := range exprs {
		v, err := solver.EvalInt01(e, model)
		if err != nil || v == 0 {
			return false
		}
	}
	return true
}

// stackExprs concatenates the assertions of every frame, base first.
func (b *intervalBackend) stackExprs() []sym.Expr {
	var out []sym.Expr
	for _, f := range b.frames {
		out = append(out, f.exprs...)
	}
	return out
}

// stackResidual concatenates the residual atoms of every frame — the
// constraints a search within the top frame's box still has to enforce.
func (b *intervalBackend) stackResidual() []sym.Expr {
	var out []sym.Expr
	for _, f := range b.frames {
		out = append(out, f.residual...)
	}
	return out
}
