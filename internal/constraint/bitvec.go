package constraint

import (
	"fmt"
	"math/bits"
	"sort"

	"dise/internal/solver"
	"dise/internal/sym"
)

// bitvecBackend is a pure-Go fixed-width bitvector solver: arithmetic wraps
// modulo 2^W, bitwise operators and unsigned comparisons are first-class
// (via the Builder in bvexpr.go), and the mini-language's operators map to
// their signed W-bit forms. It decides stacks the same way the interval
// solver does — abstract refutation plus splitting search with exact
// concrete evaluation at the leaves — but its abstract domain is W-bit
// aware: any intermediate result that may wrap widens to the full signed
// range instead of saturating, so verdicts respect wraparound semantics.
//
// Incrementality: frames memoize verdicts, the shared PrefixCache recalls
// verdicts across pop/re-push cycles, and a parent prefix's satisfying
// model decides most child Checks by concrete evaluation. Unlike the
// interval backend there are no propagation snapshots to reuse (the
// abstract state is recomputed per solve).
type bitvecBackend struct {
	bld       *Builder
	domains   map[string]solver.Interval // clamped to the signed W-bit range
	frames    []*bvFrame
	budget    int
	interrupt func() error
	cache     *PrefixCache
	stats     Stats
	lastModel map[string]int64

	transBoolMemo map[sym.Expr][]*BVExpr
	transBVMemo   map[sym.Expr]*BVExpr
}

// bvFrame is one assertion frame: the asserted expressions (translated and
// conjunction-flattened) plus the memoized verdict of the stack prefix
// ending here.
type bvFrame struct {
	cons []*BVExpr
	key  prefixKey
	res  *Result
}

func newBitvecBackend(opts Options) (*bitvecBackend, error) {
	width := opts.Width
	if width == 0 {
		width = 64
	}
	bld, err := NewBuilder(width)
	if err != nil {
		return nil, err
	}
	budget := opts.NodeBudget
	if budget == 0 {
		budget = 1 << 16
	}
	domains := make(map[string]solver.Interval, len(opts.Domains))
	for name, d := range opts.Domains {
		domains[name] = d.Intersect(solver.Interval{Lo: bld.MinS(), Hi: bld.MaxS()})
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewPrefixCache(0)
	}
	b := &bitvecBackend{
		bld:           bld,
		domains:       domains,
		budget:        budget,
		interrupt:     opts.Interrupt,
		cache:         cache,
		stats:         Stats{Backend: BackendBitvec},
		transBoolMemo: map[sym.Expr][]*BVExpr{},
		transBVMemo:   map[sym.Expr]*BVExpr{},
	}
	// Seed the key chain with the backend name AND width: bitvec verdicts
	// must never be confused with interval entries — or with bitvec
	// entries of a different width, whose wraparound semantics differ —
	// if a cache is ever shared.
	b.frames = []*bvFrame{{key: domainsKey(domains).extend(fmt.Sprintf("backend:%s/w%d", BackendBitvec, width))}}
	return b, nil
}

// Builder exposes the backend's expression builder, so callers can assert
// native bitvector constraints (bitwise, unsigned) alongside translated
// sym.Expr ones.
func (b *bitvecBackend) Builder() *Builder { return b.bld }

func (b *bitvecBackend) Push() {
	top := b.frames[len(b.frames)-1]
	b.frames = append(b.frames, &bvFrame{key: top.key})
	b.stats.PushedFrames++
}

func (b *bitvecBackend) Pop() {
	if len(b.frames) == 1 {
		panic("constraint: Pop on the base frame (push/pop imbalance)")
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.stats.PoppedFrames++
}

func (b *bitvecBackend) Assert(c sym.Expr) {
	top := b.frames[len(b.frames)-1]
	top.cons = append(top.cons, b.transBool(c)...)
	// Fingerprint-keyed like the interval backend (cache.go); native BV
	// assertions below keep the salted string form, which the chained-key
	// construction composes with freely.
	top.key = top.key.extendFP(sym.Fingerprints(c))
	top.res = nil
	b.stats.Asserts++
}

// AssertBV asserts a native bitvector constraint built with Builder().
func (b *bitvecBackend) AssertBV(c *BVExpr) {
	top := b.frames[len(b.frames)-1]
	top.cons = append(top.cons, c)
	top.key = top.key.extend("bv:" + c.String())
	top.res = nil
	b.stats.Asserts++
}

func (b *bitvecBackend) Model() map[string]int64 { return b.lastModel }

func (b *bitvecBackend) Caps() Caps {
	return Caps{Name: BackendBitvec, PrefixReuse: true, Wraparound: true, Bitwise: true}
}

func (b *bitvecBackend) Stats() Stats { return b.stats }
func (b *bitvecBackend) ResetStats()  { b.stats = Stats{Backend: BackendBitvec} }

func (b *bitvecBackend) Check() Result {
	b.stats.Checks++
	res := b.check()
	b.stats.Tally(res)
	b.lastModel = nil
	if res.Sat {
		b.lastModel = res.Model
	}
	return res
}

func (b *bitvecBackend) check() Result {
	top := b.frames[len(b.frames)-1]
	if top.res != nil {
		b.stats.FrameMemoHits++
		return *top.res
	}
	if ent, ok := b.cache.get(top.key); ok && ent.res != nil {
		b.stats.CacheHits++
		top.res = ent.res
		return *ent.res
	}
	b.stats.CacheMisses++
	// Parent-witness fast path: the deepest ancestor with a known verdict
	// either refutes the whole stack outright, or supplies a model — and if
	// that model satisfies every constraint asserted above the ancestor,
	// the whole stack is Sat with no search.
	model, below, refuted := b.ancestorModel()
	if refuted {
		res := Result{}
		top.res = &res
		return res
	}
	if model != nil && b.modelSatisfies(model, below) {
		res := Result{Sat: true, Model: model}
		top.res = &res
		b.stats.ModelReuses++
		b.cache.put(top.key, prefixEntry{res: &res})
		return res
	}
	b.stats.FullSolves++
	res := b.solve(b.stackCons())
	if !res.Unknown {
		top.res = &res
		b.cache.put(top.key, prefixEntry{res: &res})
	}
	return res
}

// ancestorModel walks down from the top frame looking for the deepest
// ancestor whose verdict (memo or cache) is known. A Sat ancestor yields
// its model and the constraints asserted above it (which the model must
// still pass); an unsat ancestor refutes the whole stack (refuted=true).
func (b *bitvecBackend) ancestorModel() (model map[string]int64, below []*BVExpr, refuted bool) {
	for i := len(b.frames) - 1; i > 0; i-- {
		f := b.frames[i]
		below = append(below, f.cons...)
		parent := b.frames[i-1]
		if parent.res == nil {
			if ent, ok := b.cache.get(parent.key); ok && ent.res != nil {
				parent.res = ent.res
			}
		}
		if parent.res != nil {
			if parent.res.Sat {
				return parent.res.Model, below, false
			}
			return nil, nil, true
		}
	}
	return nil, nil, false
}

func (b *bitvecBackend) modelSatisfies(model map[string]int64, cons []*BVExpr) bool {
	env := make(map[string]uint64, len(model))
	for k, v := range model {
		env[k] = b.bld.FromSigned(v)
	}
	for _, c := range cons {
		v, err := b.bld.Eval(c, env)
		if err != nil || v == 0 {
			return false
		}
	}
	return true
}

func (b *bitvecBackend) stackCons() []*BVExpr {
	var out []*BVExpr
	for _, f := range b.frames {
		out = append(out, f.cons...)
	}
	return out
}

// --- translation sym.Expr → BVExpr -------------------------------------------

// transBool translates an expression in boolean position, flattening
// top-level conjunctions into separate constraints (like the interval
// solver's compiler) so refinement and truth classification see atoms.
func (b *bitvecBackend) transBool(e sym.Expr) []*BVExpr {
	if cached, ok := b.transBoolMemo[e]; ok {
		return cached
	}
	var out []*BVExpr
	switch ex := e.(type) {
	case *sym.Bin:
		if ex.Op == sym.OpAnd {
			out = append(out, b.transBool(ex.L)...)
			out = append(out, b.transBool(ex.R)...)
		} else {
			out = []*BVExpr{b.transBoolAtom(e)}
		}
	default:
		out = []*BVExpr{b.transBoolAtom(e)}
	}
	b.transBoolMemo[e] = out
	return out
}

// transBoolAtom translates one non-conjunction boolean expression.
func (b *bitvecBackend) transBoolAtom(e sym.Expr) *BVExpr {
	switch ex := e.(type) {
	case *sym.BoolConst:
		return b.bld.Bool(ex.V)
	case *sym.Var:
		// A bare boolean variable as a constraint: v != 0 (bool domains are
		// 0/1, so this matches the interval solver's v == 1 compilation).
		return b.bld.Ne(b.bld.Var(ex.Name), b.bld.Const(0))
	case *sym.Not:
		return b.bld.BoolNot(b.transBoolAtom(ex.X))
	case *sym.Ite:
		// A boolean-typed ite in constraint position: (c && t) || (!c && e).
		c := b.transBoolAtom(ex.Cond)
		return b.bld.BoolOr(
			b.bld.BoolAnd(c, b.transBoolAtom(ex.Then)),
			b.bld.BoolAnd(b.bld.BoolNot(c), b.transBoolAtom(ex.Else)))
	case *sym.Bin:
		switch {
		case ex.Op == sym.OpAnd:
			l, r := b.transBoolAtom(ex.L), b.transBoolAtom(ex.R)
			return b.bld.BoolAnd(l, r)
		case ex.Op == sym.OpOr:
			return b.bld.BoolOr(b.transBoolAtom(ex.L), b.transBoolAtom(ex.R))
		case ex.Op.IsComparison():
			l, r := b.transBV(ex.L), b.transBV(ex.R)
			switch ex.Op {
			case sym.OpEQ:
				return b.bld.Eq(l, r)
			case sym.OpNE:
				return b.bld.Ne(l, r)
			case sym.OpLT:
				return b.bld.Slt(l, r)
			case sym.OpLE:
				return b.bld.Sle(l, r)
			case sym.OpGT:
				return b.bld.Sgt(l, r)
			case sym.OpGE:
				return b.bld.Sge(l, r)
			}
		}
	}
	// Arithmetic in boolean position (should not happen for type-checked
	// programs): non-zero is true.
	return b.bld.Ne(b.transBV(e), b.bld.Const(0))
}

// transBV translates an expression in value position. Booleans become 0/1
// W-bit values, mirroring the interval solver's uniform integer encoding.
func (b *bitvecBackend) transBV(e sym.Expr) *BVExpr {
	if cached, ok := b.transBVMemo[e]; ok {
		return cached
	}
	var out *BVExpr
	switch ex := e.(type) {
	case *sym.IntConst:
		out = b.bld.Const(ex.V)
	case *sym.BoolConst:
		if ex.V {
			out = b.bld.Const(1)
		} else {
			out = b.bld.Const(0)
		}
	case *sym.Var:
		out = b.bld.Var(ex.Name)
	case *sym.Neg:
		out = b.bld.Neg(b.transBV(ex.X))
	case *sym.Ite:
		out = b.bld.Ite(b.transBoolAtom(ex.Cond), b.transBV(ex.Then), b.transBV(ex.Else))
	case *sym.Not:
		out = b.transBoolAtom(e) // 0/1-valued
	case *sym.Bin:
		if ex.Op.IsArith() {
			l, r := b.transBV(ex.L), b.transBV(ex.R)
			switch ex.Op {
			case sym.OpAdd:
				out = b.bld.Add(l, r)
			case sym.OpSub:
				out = b.bld.Sub(l, r)
			case sym.OpMul:
				out = b.bld.Mul(l, r)
			case sym.OpDiv:
				out = b.bld.SDiv(l, r)
			case sym.OpMod:
				out = b.bld.SRem(l, r)
			}
		} else {
			out = b.transBoolAtom(e) // comparison/connective as 0/1 value
		}
	default:
		out = b.transBoolAtom(e)
	}
	b.transBVMemo[e] = out
	return out
}

// --- solving -----------------------------------------------------------------

// bvProblem is one solve instance over the full constraint set.
type bvProblem struct {
	b    *bitvecBackend
	cons []*BVExpr
	vars map[*BVExpr][]string // free variables per constraint
}

func (b *bitvecBackend) solve(cons []*BVExpr) Result {
	p := &bvProblem{b: b, cons: cons, vars: map[*BVExpr][]string{}}
	for _, c := range cons {
		p.vars[c] = bvVars(c)
	}
	dom := make(map[string]solver.Interval, len(b.domains))
	for name, d := range b.domains {
		dom[name] = d
	}
	// Variables mentioned by constraints but missing from the domain map get
	// the default input domain (clamped), like the interval solver.
	def := solver.DefaultDomain.Intersect(solver.Interval{Lo: b.bld.MinS(), Hi: b.bld.MaxS()})
	for _, names := range p.vars {
		for _, n := range names {
			if _, ok := dom[n]; !ok {
				dom[n] = def
			}
		}
	}
	budget := b.budget
	sat, unknown, model := p.search(dom, cons, &budget)
	return Result{Sat: sat, Unknown: unknown, Model: model}
}

// search explores the current box: refine → classify → split, with exact
// concrete evaluation once a constraint's variables are all fixed.
func (p *bvProblem) search(dom map[string]solver.Interval, cons []*BVExpr, budget *int) (bool, bool, map[string]int64) {
	if p.b.interrupt != nil && p.b.interrupt() != nil {
		return false, true, nil
	}
	if !p.refine(dom, cons) {
		return false, false, nil
	}
	allTrue := true
	var branchCon *BVExpr
	for _, c := range cons {
		switch p.truthOf(c, dom) {
		case truthBVFalse:
			return false, false, nil
		case truthBVUnknown:
			allTrue = false
			if branchCon == nil {
				branchCon = c
			}
		}
	}
	if allTrue {
		model := make(map[string]int64, len(dom))
		for name, d := range dom {
			model[name] = d.Lo
		}
		return true, false, model
	}

	// First-fail: split the smallest unfixed domain of the first undetermined
	// constraint.
	varName := ""
	var best int64
	for _, n := range p.vars[branchCon] {
		d := dom[n]
		if d.Fixed() {
			continue
		}
		if varName == "" || d.Size() < best {
			varName, best = n, d.Size()
		}
	}
	if varName == "" {
		// All variables fixed yet abstract evaluation was inconclusive
		// (division, wrapping): decide concretely and drop the constraint.
		if !p.concretelyTrue(branchCon, dom) {
			return false, false, nil
		}
		rest := make([]*BVExpr, 0, len(cons)-1)
		for _, c := range cons {
			if c != branchCon {
				rest = append(rest, c)
			}
		}
		return p.search(dom, rest, budget)
	}

	*budget--
	if *budget <= 0 {
		return false, true, nil
	}
	p.b.stats.SearchNodes++

	d := dom[varName]
	if d.Size() <= 8 {
		sawUnknown := false
		// Ascending enumeration with the loop bound checked AFTER the body:
		// v++ past d.Hi == MaxS would wrap and spin forever.
		for v := d.Lo; ; v++ {
			child := cloneDom(dom)
			child[varName] = solver.Singleton(v)
			sat, unknown, model := p.search(child, cons, budget)
			if sat {
				return true, false, model
			}
			sawUnknown = sawUnknown || unknown
			if v == d.Hi {
				break
			}
		}
		return false, sawUnknown, nil
	}
	mid := d.Lo + (d.Hi-d.Lo)/2
	for _, half := range []solver.Interval{{Lo: d.Lo, Hi: mid}, {Lo: mid + 1, Hi: d.Hi}} {
		child := cloneDom(dom)
		child[varName] = half
		sat, unknown, model := p.search(child, cons, budget)
		if sat {
			return true, false, model
		}
		if unknown {
			return false, true, nil
		}
	}
	return false, false, nil
}

func cloneDom(dom map[string]solver.Interval) map[string]solver.Interval {
	out := make(map[string]solver.Interval, len(dom))
	for k, v := range dom {
		out[k] = v
	}
	return out
}

func (p *bvProblem) concretelyTrue(c *BVExpr, dom map[string]solver.Interval) bool {
	env := map[string]uint64{}
	for _, n := range p.vars[c] {
		env[n] = p.b.bld.FromSigned(dom[n].Lo)
	}
	v, err := p.b.bld.Eval(c, env)
	return err == nil && v != 0
}

// refine applies backward (inverse) propagation of top-level comparisons to
// variable domains, to a small fixpoint. Sound: only assignments that
// cannot satisfy the comparison are removed. Returns false when a domain
// empties.
func (p *bvProblem) refine(dom map[string]solver.Interval, cons []*BVExpr) bool {
	for pass := 0; pass < 8; pass++ {
		changed := false
		for _, c := range cons {
			ok, ch := p.refineCon(dom, c)
			if !ok {
				return false
			}
			changed = changed || ch
		}
		if !changed {
			return true
		}
	}
	return true
}

// refineCon prunes var domains for a signed comparison with a variable on
// either side. Unsigned comparisons refine only when both sides are known
// non-negative (where unsigned and signed order coincide).
func (p *bvProblem) refineCon(dom map[string]solver.Interval, c *BVExpr) (ok, changed bool) {
	op := c.Op
	switch op {
	case BVUlt, BVUle, BVUgt, BVUge:
		li, ri := p.absEval(c.L, dom), p.absEval(c.R, dom)
		if li.Lo < 0 || ri.Lo < 0 {
			return true, false
		}
		op = map[BVOp]BVOp{BVUlt: BVSlt, BVUle: BVSle, BVUgt: BVSgt, BVUge: BVSge}[op]
	case BVEq, BVNe, BVSlt, BVSle, BVSgt, BVSge:
	default:
		return true, false
	}
	ok, ch1 := p.refineSide(dom, c.L, op, p.absEval(c.R, dom))
	if !ok {
		return false, ch1
	}
	ok, ch2 := p.refineSide(dom, c.R, swapBVCmp(op), p.absEval(c.L, dom))
	return ok, ch1 || ch2
}

func swapBVCmp(op BVOp) BVOp {
	switch op {
	case BVSlt:
		return BVSgt
	case BVSle:
		return BVSge
	case BVSgt:
		return BVSlt
	case BVSge:
		return BVSle
	}
	return op // Eq, Ne symmetric
}

// refineSide clamps the domain of side (when it is a variable) so that
// "side op other" stays satisfiable for some value of the other side.
func (p *bvProblem) refineSide(dom map[string]solver.Interval, side *BVExpr, op BVOp, other solver.Interval) (ok, changed bool) {
	if side.Op != BVVar {
		return true, false
	}
	d, exists := dom[side.Name]
	if !exists {
		return true, false
	}
	nd := d
	switch op {
	case BVEq:
		nd = nd.Intersect(other)
	case BVNe:
		if other.Fixed() {
			forbidden := other.Lo
			if nd.Fixed() && nd.Lo == forbidden {
				// The domain is exactly the forbidden singleton: empty it
				// (incrementing/decrementing would overflow at the width's
				// extremes and wrap into a wrong full-range domain).
				nd = solver.Interval{Lo: 1, Hi: 0}
				break
			}
			if nd.Lo == forbidden {
				nd.Lo++
			}
			if nd.Hi == forbidden {
				nd.Hi--
			}
		}
	case BVSlt:
		if other.Hi < p.b.bld.MaxS() {
			nd = nd.Intersect(solver.Interval{Lo: p.b.bld.MinS(), Hi: other.Hi - 1})
		} else {
			nd = nd.Intersect(solver.Interval{Lo: p.b.bld.MinS(), Hi: p.b.bld.MaxS() - 1})
		}
	case BVSle:
		nd = nd.Intersect(solver.Interval{Lo: p.b.bld.MinS(), Hi: other.Hi})
	case BVSgt:
		if other.Lo > p.b.bld.MinS() {
			nd = nd.Intersect(solver.Interval{Lo: other.Lo + 1, Hi: p.b.bld.MaxS()})
		} else {
			nd = nd.Intersect(solver.Interval{Lo: p.b.bld.MinS() + 1, Hi: p.b.bld.MaxS()})
		}
	case BVSge:
		nd = nd.Intersect(solver.Interval{Lo: other.Lo, Hi: p.b.bld.MaxS()})
	}
	if nd == d {
		return true, false
	}
	dom[side.Name] = nd
	return !nd.Empty(), true
}

// --- abstract evaluation ------------------------------------------------------

type truthBV int

const (
	truthBVUnknown truthBV = iota
	truthBVTrue
	truthBVFalse
)

func (p *bvProblem) truthOf(c *BVExpr, dom map[string]solver.Interval) truthBV {
	iv := p.absEval(c, dom)
	switch {
	case iv.Lo == 1 && iv.Hi == 1:
		return truthBVTrue
	case iv.Lo == 0 && iv.Hi == 0:
		return truthBVFalse
	}
	return truthBVUnknown
}

// full is the widest signed interval of the backend's width.
func (p *bvProblem) full() solver.Interval {
	return solver.Interval{Lo: p.b.bld.MinS(), Hi: p.b.bld.MaxS()}
}

// absEval bounds the signed value of a term over the box. Any arithmetic
// that may cross the width boundary widens to the full range (wraparound),
// never saturates — the semantic difference from the interval solver.
func (p *bvProblem) absEval(e *BVExpr, dom map[string]solver.Interval) solver.Interval {
	bld := p.b.bld
	switch e.Op {
	case BVConst:
		return solver.Singleton(bld.ToSigned(e.Val))
	case BVBoolConst:
		return solver.Singleton(int64(e.Val))
	case BVVar:
		if d, ok := dom[e.Name]; ok {
			return d
		}
		return p.full()
	case BVIte:
		// Guard-aware: a decided guard (its 0/1 truth interval is a
		// singleton) selects one arm's bounds, an undecided one yields the
		// hull of both arms. Handled before the generic L/R path — the
		// ternary shape has no evalNode form.
		c := p.absEval(e.C, dom)
		switch {
		case c.Lo == 1:
			return p.absEval(e.L, dom)
		case c.Hi == 0:
			return p.absEval(e.R, dom)
		}
		t, f := p.absEval(e.L, dom), p.absEval(e.R, dom)
		return solver.Interval{Lo: min2(t.Lo, f.Lo), Hi: max2(t.Hi, f.Hi)}
	}
	l := p.absEval(e.L, dom)
	var r solver.Interval
	if e.R != nil {
		r = p.absEval(e.R, dom)
	}
	// Exact when both operands are fixed (concrete evaluation, which also
	// handles wrapping and division precisely). Evaluation errors (division
	// by zero) widen to full; the leaf check rejects them exactly.
	if l.Fixed() && (e.R == nil || r.Fixed()) {
		lv := bld.FromSigned(l.Lo)
		rv := bld.FromSigned(r.Lo)
		if v, err := bld.evalNode(e.Op, lv, rv); err == nil {
			if e.Op.IsBool() {
				return solver.Singleton(int64(v))
			}
			return solver.Singleton(bld.ToSigned(v))
		}
		return p.full()
	}
	switch e.Op {
	case BVAdd:
		return p.wrapIv(addChecked(l.Lo, r.Lo), addChecked(l.Hi, r.Hi))
	case BVSub:
		return p.wrapIv(subChecked(l.Lo, r.Hi), subChecked(l.Hi, r.Lo))
	case BVNeg:
		if l.Lo == bld.MinS() {
			return p.full() // -MinS wraps to MinS
		}
		return p.wrapIv(checked{-l.Hi, true}, checked{-l.Lo, true})
	case BVMul:
		c1, c2 := mulChecked(l.Lo, r.Lo), mulChecked(l.Lo, r.Hi)
		c3, c4 := mulChecked(l.Hi, r.Lo), mulChecked(l.Hi, r.Hi)
		if !(c1.ok && c2.ok && c3.ok && c4.ok) {
			return p.full()
		}
		return p.wrapIv(checked{min4(c1.v, c2.v, c3.v, c4.v), true}, checked{max4(c1.v, c2.v, c3.v, c4.v), true})
	case BVSDiv:
		return p.divIv(l, r)
	case BVSRem:
		return p.remIv(l, r)
	case BVNotBits:
		// ~x = -x - 1, monotone decreasing: exact.
		return solver.Interval{Lo: ^l.Hi, Hi: ^l.Lo}
	case BVAndBits:
		if l.Lo >= 0 && r.Lo >= 0 {
			return solver.Interval{Lo: 0, Hi: min2(l.Hi, r.Hi)}
		}
		return p.full()
	case BVOrBits, BVXorBits:
		if l.Lo >= 0 && r.Lo >= 0 {
			n := bits.Len64(uint64(l.Hi) | uint64(r.Hi))
			hi := int64(1)<<n - 1
			if hi > bld.MaxS() {
				return p.full()
			}
			return solver.Interval{Lo: 0, Hi: hi}
		}
		return p.full()
	case BVShl, BVLshr:
		return p.full() // exact only when fixed (handled above)
	case BVEq:
		return cmpTruth(l.Fixed() && r.Fixed() && l.Lo == r.Lo, l.Hi < r.Lo || r.Hi < l.Lo)
	case BVNe:
		return cmpTruth(l.Hi < r.Lo || r.Hi < l.Lo, l.Fixed() && r.Fixed() && l.Lo == r.Lo)
	case BVSlt:
		return cmpTruth(l.Hi < r.Lo, l.Lo >= r.Hi)
	case BVSle:
		return cmpTruth(l.Hi <= r.Lo, l.Lo > r.Hi)
	case BVSgt:
		return cmpTruth(l.Lo > r.Hi, l.Hi <= r.Lo)
	case BVSge:
		return cmpTruth(l.Lo >= r.Hi, l.Hi < r.Lo)
	case BVUlt, BVUle, BVUgt, BVUge:
		return p.unsignedCmp(e.Op, l, r)
	case BVBoolNot:
		return solver.Interval{Lo: 1 - l.Hi, Hi: 1 - l.Lo}
	case BVBoolAnd:
		// 0/1 truth intervals: definitely true iff both are, definitely
		// false iff either is.
		return solver.Interval{Lo: l.Lo * r.Lo, Hi: min2(l.Hi, r.Hi)}
	case BVBoolOr:
		return solver.Interval{Lo: max2(l.Lo, r.Lo), Hi: max2(l.Hi, r.Hi)}
	}
	return p.full()
}

// cmpTruth builds the [0,1] truth interval from "definitely true" /
// "definitely false" bounds evidence.
func cmpTruth(isTrue, isFalse bool) solver.Interval {
	switch {
	case isTrue:
		return solver.Singleton(1)
	case isFalse:
		return solver.Singleton(0)
	}
	return solver.Interval{Lo: 0, Hi: 1}
}

// unsignedCmp compares under unsigned order. When both intervals lie on one
// side of zero the unsigned order coincides with the signed order (negative
// values map above all non-negative ones); mixed-sign intervals are
// inconclusive.
func (p *bvProblem) unsignedCmp(op BVOp, l, r solver.Interval) solver.Interval {
	lNeg, lNonNeg := l.Hi < 0, l.Lo >= 0
	rNeg, rNonNeg := r.Hi < 0, r.Lo >= 0
	switch {
	case (lNonNeg && rNonNeg) || (lNeg && rNeg):
		switch op {
		case BVUlt:
			return cmpTruth(l.Hi < r.Lo, l.Lo >= r.Hi)
		case BVUle:
			return cmpTruth(l.Hi <= r.Lo, l.Lo > r.Hi)
		case BVUgt:
			return cmpTruth(l.Lo > r.Hi, l.Hi <= r.Lo)
		case BVUge:
			return cmpTruth(l.Lo >= r.Hi, l.Hi < r.Lo)
		}
	case lNonNeg && rNeg: // l unsigned-below r always
		return cmpTruth(op == BVUlt || op == BVUle, op == BVUgt || op == BVUge)
	case lNeg && rNonNeg:
		return cmpTruth(op == BVUgt || op == BVUge, op == BVUlt || op == BVUle)
	}
	return solver.Interval{Lo: 0, Hi: 1}
}

// divIv bounds truncated signed division, splitting the divisor around zero
// (truncated division is corner-monotone per sign region). The MinS/-1
// wraparound corner widens to full.
func (p *bvProblem) divIv(l, r solver.Interval) solver.Interval {
	if r.Lo == 0 && r.Hi == 0 {
		return p.full()
	}
	if l.Lo == p.b.bld.MinS() && r.Contains(-1) {
		return p.full()
	}
	out := solver.Interval{Lo: p.b.bld.MaxS(), Hi: p.b.bld.MinS()} // empty accumulator
	widen := func(part solver.Interval) {
		if part.Empty() {
			return
		}
		c1, c2 := l.Lo/part.Lo, l.Lo/part.Hi
		c3, c4 := l.Hi/part.Lo, l.Hi/part.Hi
		out.Lo = min2(out.Lo, min4(c1, c2, c3, c4))
		out.Hi = max2(out.Hi, max4(c1, c2, c3, c4))
	}
	widen(r.Intersect(solver.Interval{Lo: 1, Hi: p.b.bld.MaxS()}))
	widen(r.Intersect(solver.Interval{Lo: p.b.bld.MinS(), Hi: -1}))
	if out.Empty() {
		return p.full()
	}
	return out
}

// remIv bounds the signed remainder: |result| < max|divisor|, sign follows
// the dividend.
func (p *bvProblem) remIv(l, r solver.Interval) solver.Interval {
	m := max2(abs64(r.Lo), abs64(r.Hi))
	if m == 0 {
		return p.full()
	}
	bound := m - 1
	lo, hi := int64(0), int64(0)
	if l.Lo < 0 {
		lo = -bound
	}
	if l.Hi > 0 {
		hi = bound
	}
	return solver.Interval{Lo: lo, Hi: hi}
}

// checked is an int64 computation that may have overflowed.
type checked struct {
	v  int64
	ok bool
}

func addChecked(a, b int64) checked {
	s := a + b
	return checked{s, !((a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0))}
}

func subChecked(a, b int64) checked {
	s := a - b
	return checked{s, !((a >= 0 && b < 0 && s < 0) || (a < 0 && b > 0 && s >= 0))}
}

func mulChecked(a, b int64) checked {
	if a == 0 || b == 0 {
		return checked{0, true}
	}
	v := a * b
	return checked{v, v/b == a && !(a == -1 && b == minInt64) && !(b == -1 && a == minInt64)}
}

const minInt64 = -1 << 63

// wrapIv builds the interval [lo, hi] unless either bound overflowed int64
// or escaped the width's signed range — then the value may wrap, and the
// result widens to full.
func (p *bvProblem) wrapIv(lo, hi checked) solver.Interval {
	if !lo.ok || !hi.ok || lo.v < p.b.bld.MinS() || hi.v > p.b.bld.MaxS() {
		return p.full()
	}
	return solver.Interval{Lo: lo.v, Hi: hi.v}
}

func min4(a, b, c, d int64) int64 { return min2(min2(a, b), min2(c, d)) }
func max4(a, b, c, d int64) int64 { return max2(max2(a, b), max2(c, d)) }

func min2(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// bvVars collects the free variable names of a term, sorted.
func bvVars(e *BVExpr) []string {
	set := map[string]bool{}
	var walk func(*BVExpr)
	walk = func(e *BVExpr) {
		if e == nil {
			return
		}
		if e.Op == BVVar {
			set[e.Name] = true
		}
		walk(e.C)
		walk(e.L)
		walk(e.R)
	}
	walk(e)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	// Deterministic order matters for first-fail variable selection.
	sort.Strings(out)
	return out
}
