package ast

import (
	"fmt"
	"strings"
)

// Pretty renders the program with indentation, one statement per line. The
// output is valid input to the parser, which makes it convenient for golden
// tests and for emitting mutated program versions.
func Pretty(p *Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "%s\n", g.String())
	}
	for i, pr := range p.Procs {
		if i > 0 || len(p.Globals) > 0 {
			b.WriteString("\n")
		}
		prettyProc(&b, pr)
	}
	return b.String()
}

func prettyProc(b *strings.Builder, pr *Procedure) {
	var params []string
	for _, p := range pr.Params {
		params = append(params, p.String())
	}
	fmt.Fprintf(b, "proc %s(%s) {\n", pr.Name, strings.Join(params, ", "))
	prettyStmts(b, pr.Body.Stmts, 1)
	b.WriteString("}\n")
}

func prettyStmts(b *strings.Builder, stmts []Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *If:
			fmt.Fprintf(b, "%sif (%s) {\n", indent, s.Cond.String())
			prettyStmts(b, s.Then.Stmts, depth+1)
			if s.Else != nil {
				fmt.Fprintf(b, "%s} else {\n", indent)
				prettyStmts(b, s.Else.Stmts, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", indent)
		case *While:
			fmt.Fprintf(b, "%swhile (%s) {\n", indent, s.Cond.String())
			prettyStmts(b, s.Body.Stmts, depth+1)
			fmt.Fprintf(b, "%s}\n", indent)
		case *Block:
			fmt.Fprintf(b, "%s{\n", indent)
			prettyStmts(b, s.Stmts, depth+1)
			fmt.Fprintf(b, "%s}\n", indent)
		default:
			fmt.Fprintf(b, "%s%s\n", indent, s.String())
		}
	}
}

// Walk calls fn for every statement in the block tree, pre-order. It is the
// statement-level traversal shared by the diff and mutation machinery.
func Walk(stmts []Stmt, fn func(Stmt)) {
	for _, s := range stmts {
		fn(s)
		switch s := s.(type) {
		case *If:
			Walk(s.Then.Stmts, fn)
			if s.Else != nil {
				Walk(s.Else.Stmts, fn)
			}
		case *While:
			Walk(s.Body.Stmts, fn)
		case *Block:
			Walk(s.Stmts, fn)
		}
	}
}

// WalkExpr calls fn for every sub-expression of e, pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *Unary:
		WalkExpr(e.X, fn)
	case *Binary:
		WalkExpr(e.L, fn)
		WalkExpr(e.R, fn)
	}
}

// Vars returns the set of variable names read by expression e.
func Vars(e Expr) map[string]bool {
	out := map[string]bool{}
	WalkExpr(e, func(x Expr) {
		if id, ok := x.(*Ident); ok {
			out[id.Name] = true
		}
	})
	return out
}

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *IntLit:
		c := *e
		return &c
	case *BoolLit:
		c := *e
		return &c
	case *Ident:
		c := *e
		return &c
	case *Unary:
		return &Unary{Op: e.Op, X: CloneExpr(e.X), TokPos: e.TokPos}
	case *Binary:
		return &Binary{Op: e.Op, L: CloneExpr(e.L), R: CloneExpr(e.R)}
	case nil:
		return nil
	}
	panic(fmt.Sprintf("ast.CloneExpr: unknown expression %T", e))
}

// CloneStmt returns a deep copy of s.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Assign:
		return &Assign{Name: s.Name, Value: CloneExpr(s.Value), TokPos: s.TokPos}
	case *If:
		c := &If{Cond: CloneExpr(s.Cond), Then: CloneBlock(s.Then), TokPos: s.TokPos}
		if s.Else != nil {
			c.Else = CloneBlock(s.Else)
		}
		return c
	case *While:
		return &While{Cond: CloneExpr(s.Cond), Body: CloneBlock(s.Body), TokPos: s.TokPos}
	case *Assert:
		return &Assert{Cond: CloneExpr(s.Cond), TokPos: s.TokPos}
	case *Skip:
		c := *s
		return &c
	case *Return:
		c := *s
		return &c
	case *Call:
		c := &Call{Callee: s.Callee, TokPos: s.TokPos}
		for _, a := range s.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *Block:
		return CloneBlock(s)
	}
	panic(fmt.Sprintf("ast.CloneStmt: unknown statement %T", s))
}

// CloneBlock returns a deep copy of b.
func CloneBlock(b *Block) *Block {
	out := &Block{TokPos: b.TokPos}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, CloneStmt(s))
	}
	return out
}

// CloneProcedure returns a deep copy of pr.
func CloneProcedure(pr *Procedure) *Procedure {
	out := &Procedure{Name: pr.Name, TokPos: pr.TokPos, Body: CloneBlock(pr.Body)}
	out.Params = append(out.Params, pr.Params...)
	return out
}

// CloneProgram returns a deep copy of p.
func CloneProgram(p *Program) *Program {
	out := &Program{}
	for _, g := range p.Globals {
		c := &Global{Name: g.Name, Type: g.Type, Init: CloneExpr(g.Init), TokPos: g.TokPos}
		out.Globals = append(out.Globals, c)
	}
	for _, pr := range p.Procs {
		out.Procs = append(out.Procs, CloneProcedure(pr))
	}
	return out
}
