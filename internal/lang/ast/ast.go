// Package ast defines the abstract syntax tree for the mini-language.
//
// A Program is a list of global variable declarations followed by a list of
// procedures. DiSE's analyses are intra-procedural (per the paper, §3.2), so
// a Procedure is the unit of analysis: the CFG, the diff, the affected sets
// and the symbolic execution all operate on a single procedure at a time.
// Globals act as additional symbolic inputs with known initial values.
package ast

import (
	"fmt"
	"strings"

	"dise/internal/lang/token"
)

// Type is the static type of a variable or expression.
type Type int

// Supported types.
const (
	TypeInvalid Type = iota
	TypeInt
	TypeBool
)

// String renders the type keyword.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	}
	return "invalid"
}

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
	String() string
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Value  int64
	TokPos token.Pos
}

// BoolLit is a boolean literal.
type BoolLit struct {
	Value  bool
	TokPos token.Pos
}

// Ident is a variable reference.
type Ident struct {
	Name   string
	TokPos token.Pos
}

// Unary is !e or -e.
type Unary struct {
	Op     token.Kind // NOT or MINUS
	X      Expr
	TokPos token.Pos
}

// Binary is a binary operation: arithmetic, comparison, or logical.
type Binary struct {
	Op   token.Kind
	L, R Expr
}

func (e *IntLit) Pos() token.Pos  { return e.TokPos }
func (e *BoolLit) Pos() token.Pos { return e.TokPos }
func (e *Ident) Pos() token.Pos   { return e.TokPos }
func (e *Unary) Pos() token.Pos   { return e.TokPos }
func (e *Binary) Pos() token.Pos  { return e.L.Pos() }

func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Value) }
func (e *BoolLit) String() string {
	if e.Value {
		return "true"
	}
	return "false"
}
func (e *Ident) String() string { return e.Name }
func (e *Unary) String() string { return e.Op.String() + parenthesize(e.X) }
func (e *Binary) String() string {
	return parenthesize(e.L) + " " + e.Op.String() + " " + parenthesize(e.R)
}

// parenthesize wraps composite sub-expressions in parentheses so the printed
// form is unambiguous without reproducing the original precedence decisions.
func parenthesize(e Expr) string {
	switch e.(type) {
	case *Binary:
		return "(" + e.String() + ")"
	default:
		return e.String()
	}
}

func (*IntLit) exprNode()  {}
func (*BoolLit) exprNode() {}
func (*Ident) exprNode()   {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Assign is "x = e;".
type Assign struct {
	Name   string
	Value  Expr
	TokPos token.Pos
}

// If is "if (cond) { then } else { else }"; Else may be nil.
type If struct {
	Cond   Expr
	Then   *Block
	Else   *Block // nil when absent
	TokPos token.Pos
}

// While is "while (cond) { body }".
type While struct {
	Cond   Expr
	Body   *Block
	TokPos token.Pos
}

// Assert is "assert e;". Per §5.1 of the paper, asserts are de-sugared into
// a conditional plus an error sink during CFG construction, so DiSE treats
// assertion violations as reachable error locations.
type Assert struct {
	Cond   Expr
	TokPos token.Pos
}

// Skip is "skip;" — a no-op statement, useful in diff tests.
type Skip struct {
	TokPos token.Pos
}

// Return is "return;" — exits the procedure.
type Return struct {
	TokPos token.Pos
}

// Call is "callee(arg1, arg2);" — a procedure call statement. Procedures
// communicate through globals (Java-void style), so calls have no return
// value. Calls are an extension over the paper's intra-procedural setting:
// the inline package expands them so DiSE analyzes whole systems (the
// paper's §7 future work).
type Call struct {
	Callee string
	Args   []Expr
	TokPos token.Pos
}

// Block is "{ s1 s2 ... }".
type Block struct {
	Stmts  []Stmt
	TokPos token.Pos
}

func (s *Assign) Pos() token.Pos { return s.TokPos }
func (s *If) Pos() token.Pos     { return s.TokPos }
func (s *While) Pos() token.Pos  { return s.TokPos }
func (s *Assert) Pos() token.Pos { return s.TokPos }
func (s *Skip) Pos() token.Pos   { return s.TokPos }
func (s *Return) Pos() token.Pos { return s.TokPos }
func (s *Call) Pos() token.Pos   { return s.TokPos }
func (s *Block) Pos() token.Pos  { return s.TokPos }

func (s *Assign) String() string { return s.Name + " = " + s.Value.String() + ";" }
func (s *If) String() string {
	out := "if (" + s.Cond.String() + ") " + s.Then.String()
	if s.Else != nil {
		out += " else " + s.Else.String()
	}
	return out
}
func (s *While) String() string  { return "while (" + s.Cond.String() + ") " + s.Body.String() }
func (s *Assert) String() string { return "assert " + s.Cond.String() + ";" }
func (s *Skip) String() string   { return "skip;" }
func (s *Return) String() string { return "return;" }
func (s *Call) String() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.String()
	}
	return s.Callee + "(" + strings.Join(args, ", ") + ");"
}
func (s *Block) String() string {
	var b strings.Builder
	b.WriteString("{ ")
	for _, st := range s.Stmts {
		b.WriteString(st.String())
		b.WriteString(" ")
	}
	b.WriteString("}")
	return b.String()
}

func (*Assign) stmtNode() {}
func (*If) stmtNode()     {}
func (*While) stmtNode()  {}
func (*Assert) stmtNode() {}
func (*Skip) stmtNode()   {}
func (*Return) stmtNode() {}
func (*Call) stmtNode()   {}
func (*Block) stmtNode()  {}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

// Param is a procedure parameter. Parameters are the symbolic inputs of the
// procedure during symbolic execution.
type Param struct {
	Name   string
	Type   Type
	TokPos token.Pos
}

// String renders "int x".
func (p Param) String() string { return p.Type.String() + " " + p.Name }

// Global is a global variable declaration with a constant initializer.
type Global struct {
	Name   string
	Type   Type
	Init   Expr // IntLit or BoolLit
	TokPos token.Pos
}

func (g *Global) Pos() token.Pos { return g.TokPos }
func (g *Global) String() string {
	return g.Type.String() + " " + g.Name + " = " + g.Init.String() + ";"
}

// Procedure is the unit of analysis.
type Procedure struct {
	Name   string
	Params []Param
	Body   *Block
	TokPos token.Pos
}

func (p *Procedure) Pos() token.Pos { return p.TokPos }
func (p *Procedure) String() string {
	var params []string
	for _, pr := range p.Params {
		params = append(params, pr.String())
	}
	return "proc " + p.Name + "(" + strings.Join(params, ", ") + ") " + p.Body.String()
}

// Program is a parsed compilation unit.
type Program struct {
	Globals []*Global
	Procs   []*Procedure
}

// Proc returns the procedure with the given name, or nil.
func (p *Program) Proc(name string) *Procedure {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// String renders the whole program (single-line statements).
func (p *Program) String() string {
	var b strings.Builder
	for _, g := range p.Globals {
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	for _, pr := range p.Procs {
		b.WriteString(pr.String())
		b.WriteString("\n")
	}
	return b.String()
}
