package ast

import "strconv"

// StmtKeys assigns every statement of proc a stable structural key: the path
// from the procedure body to the statement, rendered as "s2", "s2/then/s0",
// "s3/body/s1", and so on. Keys depend only on a statement's position in the
// AST, not on its text or source line, so an in-place edit of one statement
// leaves every other statement's key unchanged — the property the
// cross-version node correspondence map (internal/diff) and the memoized
// execution-tree trie (internal/memo) are built on. Inserting or deleting a
// statement shifts the keys of its later siblings; consumers treat a key
// that no longer corresponds as conservatively unmatched.
func StmtKeys(proc *Procedure) map[Stmt]string {
	keys := map[Stmt]string{}
	keyStmts(proc.Body.Stmts, "", keys)
	return keys
}

func keyStmts(stmts []Stmt, prefix string, keys map[Stmt]string) {
	for i, s := range stmts {
		key := prefix + "s" + strconv.Itoa(i)
		keys[s] = key
		switch s := s.(type) {
		case *If:
			keyStmts(s.Then.Stmts, key+"/then/", keys)
			if s.Else != nil {
				keyStmts(s.Else.Stmts, key+"/else/", keys)
			}
		case *While:
			keyStmts(s.Body.Stmts, key+"/body/", keys)
		case *Block:
			keyStmts(s.Stmts, key+"/blk/", keys)
		}
	}
}
