package ast

import (
	"strings"
	"testing"

	"dise/internal/lang/token"
)

func ident(n string) *Ident  { return &Ident{Name: n} }
func intLit(v int64) *IntLit { return &IntLit{Value: v} }
func assign(n string, e Expr) *Assign {
	return &Assign{Name: n, Value: e}
}

func TestExprStrings(t *testing.T) {
	tests := []struct {
		e    Expr
		want string
	}{
		{intLit(42), "42"},
		{intLit(-3), "-3"},
		{&BoolLit{Value: true}, "true"},
		{&BoolLit{Value: false}, "false"},
		{ident("x"), "x"},
		{&Unary{Op: token.NOT, X: ident("b")}, "!b"},
		{&Unary{Op: token.MINUS, X: ident("x")}, "-x"},
		{&Binary{Op: token.PLUS, L: ident("x"), R: intLit(1)}, "x + 1"},
		{&Binary{Op: token.LAND,
			L: &Binary{Op: token.GT, L: ident("x"), R: intLit(0)},
			R: &Binary{Op: token.LT, L: ident("y"), R: intLit(9)}},
			"(x > 0) && (y < 9)"},
		{&Unary{Op: token.NOT, X: &Binary{Op: token.EQ, L: ident("x"), R: intLit(1)}}, "!(x == 1)"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestStmtStrings(t *testing.T) {
	blk := &Block{Stmts: []Stmt{assign("x", intLit(1))}}
	tests := []struct {
		s    Stmt
		want string
	}{
		{assign("x", intLit(1)), "x = 1;"},
		{&Skip{}, "skip;"},
		{&Return{}, "return;"},
		{&Assert{Cond: &Binary{Op: token.GE, L: ident("x"), R: intLit(0)}}, "assert x >= 0;"},
		{&If{Cond: ident("b"), Then: blk}, "if (b) { x = 1; }"},
		{&If{Cond: ident("b"), Then: blk, Else: blk}, "if (b) { x = 1; } else { x = 1; }"},
		{&While{Cond: ident("b"), Body: blk}, "while (b) { x = 1; }"},
		{&Call{Callee: "f", Args: []Expr{ident("x"), intLit(2)}}, "f(x, 2);"},
		{&Call{Callee: "g"}, "g();"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestWalkVisitsNestedStatements(t *testing.T) {
	inner := assign("y", intLit(2))
	loop := &While{Cond: ident("b"), Body: &Block{Stmts: []Stmt{inner}}}
	cond := &If{
		Cond: ident("b"),
		Then: &Block{Stmts: []Stmt{loop}},
		Else: &Block{Stmts: []Stmt{&Skip{}}},
	}
	var seen []string
	Walk([]Stmt{cond, assign("z", intLit(3))}, func(s Stmt) {
		seen = append(seen, s.String())
	})
	if len(seen) != 5 {
		t.Fatalf("visited %d statements, want 5: %v", len(seen), seen)
	}
	// Pre-order: if, while, y=2, skip, z=3.
	if !strings.HasPrefix(seen[0], "if") || seen[2] != "y = 2;" || seen[4] != "z = 3;" {
		t.Errorf("wrong order: %v", seen)
	}
}

func TestWalkExprAndVars(t *testing.T) {
	e := &Binary{Op: token.PLUS,
		L: &Unary{Op: token.MINUS, X: ident("a")},
		R: &Binary{Op: token.STAR, L: ident("b"), R: ident("a")}}
	count := 0
	WalkExpr(e, func(Expr) { count++ })
	if count != 6 {
		t.Errorf("visited %d nodes, want 6", count)
	}
	vars := Vars(e)
	if !vars["a"] || !vars["b"] || len(vars) != 2 {
		t.Errorf("Vars = %v, want {a, b}", vars)
	}
	if got := Vars(intLit(1)); len(got) != 0 {
		t.Errorf("Vars(literal) = %v, want empty", got)
	}
}

func TestCloneStmtIndependence(t *testing.T) {
	orig := &If{
		Cond: &Binary{Op: token.GT, L: ident("x"), R: intLit(0)},
		Then: &Block{Stmts: []Stmt{assign("y", ident("x"))}},
	}
	clone := CloneStmt(orig).(*If)
	clone.Cond.(*Binary).Op = token.LT
	clone.Then.Stmts[0].(*Assign).Name = "changed"
	if orig.Cond.(*Binary).Op != token.GT {
		t.Error("clone shares condition with original")
	}
	if orig.Then.Stmts[0].(*Assign).Name != "y" {
		t.Error("clone shares body with original")
	}
}

func TestCloneCallIndependence(t *testing.T) {
	orig := &Call{Callee: "f", Args: []Expr{ident("x")}}
	clone := CloneStmt(orig).(*Call)
	clone.Args[0].(*Ident).Name = "changed"
	if orig.Args[0].(*Ident).Name != "x" {
		t.Error("cloned call shares arguments")
	}
}

func TestProgramProcLookup(t *testing.T) {
	p := &Program{Procs: []*Procedure{
		{Name: "a", Body: &Block{}},
		{Name: "b", Body: &Block{}},
	}}
	if p.Proc("b") == nil || p.Proc("a") == nil {
		t.Error("Proc lookup failed")
	}
	if p.Proc("c") != nil {
		t.Error("Proc must return nil for unknown names")
	}
}

func TestPrettyIndentation(t *testing.T) {
	p := &Program{
		Globals: []*Global{{Name: "G", Type: TypeInt, Init: intLit(0)}},
		Procs: []*Procedure{{
			Name:   "p",
			Params: []Param{{Name: "x", Type: TypeInt}},
			Body: &Block{Stmts: []Stmt{
				&If{Cond: ident("b"), Then: &Block{Stmts: []Stmt{assign("y", intLit(1))}}},
				&Call{Callee: "q"},
			}},
		}},
	}
	got := Pretty(p)
	want := "int G = 0;\n\nproc p(int x) {\n  if (b) {\n    y = 1;\n  }\n  q();\n}\n"
	if got != want {
		t.Errorf("Pretty =\n%q\nwant\n%q", got, want)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeInt.String() != "int" || TypeBool.String() != "bool" || TypeInvalid.String() != "invalid" {
		t.Error("Type.String wrong")
	}
	if (Param{Name: "x", Type: TypeBool}).String() != "bool x" {
		t.Error("Param.String wrong")
	}
}
