// Package lexer implements the scanner for the mini-language.
//
// The scanner is a conventional hand-written single-pass lexer. It supports
// line comments introduced by "//" and block comments delimited by "/*" and
// "*/"; both are skipped. Positions are tracked as 1-based line:column pairs
// so that CFG nodes can later be labeled with the source line, mirroring the
// presentation in the DiSE paper where nodes carry source line numbers.
package lexer

import (
	"fmt"

	"dise/internal/lang/token"
)

// Lexer scans an input string into tokens.
type Lexer struct {
	src  string
	off  int // byte offset of the next unread character
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the scan errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// peek returns the next character without consuming it, or 0 at EOF.
func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

// peek2 returns the character after next, or 0.
func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

// advance consumes one character, maintaining line/column bookkeeping.
func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

// skipWhitespaceAndComments consumes spaces and comments before a token.
func (l *Lexer) skipWhitespaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

// Next scans and returns the next token. At end of input it returns EOF
// tokens forever.
func (l *Lexer) Next() token.Token {
	l.skipWhitespaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()
	switch {
	case isDigit(c):
		start := l.off - 1
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kind, ok := token.Keywords[word]; ok {
			return token.Token{Kind: kind, Lit: word, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Lit: word, Pos: pos}
	}

	two := func(second byte, withKind, withoutKind token.Kind) token.Token {
		if l.peek() == second {
			l.advance()
			return token.Token{Kind: withKind, Pos: pos}
		}
		return token.Token{Kind: withoutKind, Pos: pos}
	}

	switch c {
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos}
	case '-':
		return token.Token{Kind: token.MINUS, Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		return two('=', token.LE, token.LT)
	case '>':
		return two('=', token.GE, token.GT)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.LAND, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean %q?)", "&", "&&")
		return token.Token{Kind: token.ILLEGAL, Lit: "&", Pos: pos}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean %q?)", "|", "||")
		return token.Token{Kind: token.ILLEGAL, Lit: "|", Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// ScanAll scans the whole input and returns all tokens up to and including
// the terminating EOF token.
func ScanAll(src string) ([]token.Token, []error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
