package lexer

import (
	"strings"
	"testing"

	"dise/internal/lang/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanOperators(t *testing.T) {
	src := "+ - * / % = == != < <= > >= && || ! ( ) { } , ;"
	toks, errs := ScanAll(src)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.ASSIGN, token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE,
		token.LAND, token.LOR, token.NOT,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE, token.COMMA, token.SEMICOLON,
		token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScanKeywordsAndIdents(t *testing.T) {
	src := "int bool if else while proc assert skip return true false PedalPos x_1"
	toks, errs := ScanAll(src)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{
		token.KWINT, token.KWBOOL, token.KWIF, token.KWELSE, token.KWWHILE,
		token.KWPROC, token.KWASSERT, token.KWSKIP, token.KWRETURN,
		token.TRUE, token.FALSE, token.IDENT, token.IDENT, token.EOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
	if toks[11].Lit != "PedalPos" {
		t.Errorf("ident literal = %q, want PedalPos", toks[11].Lit)
	}
}

func TestScanIntLiterals(t *testing.T) {
	toks, errs := ScanAll("0 42 123456")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	wantLits := []string{"0", "42", "123456"}
	for i, w := range wantLits {
		if toks[i].Kind != token.INT || toks[i].Lit != w {
			t.Errorf("token %d = %v, want INT(%q)", i, toks[i], w)
		}
	}
}

func TestScanPositions(t *testing.T) {
	src := "x = 1;\n  y = 2;"
	toks, _ := ScanAll(src)
	// x at 1:1, y at 2:3.
	if toks[0].Pos != (token.Pos{Line: 1, Col: 1}) {
		t.Errorf("x pos = %v, want 1:1", toks[0].Pos)
	}
	if toks[4].Pos != (token.Pos{Line: 2, Col: 3}) {
		t.Errorf("y pos = %v, want 2:3; toks=%v", toks[4].Pos, toks)
	}
}

func TestScanLineComment(t *testing.T) {
	toks, errs := ScanAll("x // this is x\ny")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(toks) != 3 || toks[0].Lit != "x" || toks[1].Lit != "y" {
		t.Fatalf("tokens = %v, want x y EOF", toks)
	}
	if toks[1].Pos.Line != 2 {
		t.Errorf("y line = %d, want 2", toks[1].Pos.Line)
	}
}

func TestScanBlockComment(t *testing.T) {
	toks, errs := ScanAll("x /* multi\nline */ y")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(toks) != 3 || toks[1].Lit != "y" {
		t.Fatalf("tokens = %v, want x y EOF", toks)
	}
}

func TestScanUnterminatedBlockComment(t *testing.T) {
	_, errs := ScanAll("x /* never closed")
	if len(errs) == 0 {
		t.Fatal("expected error for unterminated block comment")
	}
	if !strings.Contains(errs[0].Error(), "unterminated") {
		t.Errorf("error = %v, want mention of unterminated comment", errs[0])
	}
}

func TestScanIllegalCharacters(t *testing.T) {
	for _, src := range []string{"@", "#", "$", "&", "|", "~"} {
		toks, errs := ScanAll(src)
		if len(errs) == 0 {
			t.Errorf("ScanAll(%q): expected error", src)
		}
		if toks[0].Kind != token.ILLEGAL {
			t.Errorf("ScanAll(%q): kind = %v, want ILLEGAL", src, toks[0].Kind)
		}
	}
}

func TestScanEOFIsSticky(t *testing.T) {
	l := New("x")
	l.Next() // x
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("Next after EOF = %v, want EOF", tok)
		}
	}
}

func TestScanAdjacentOperators(t *testing.T) {
	// "<=" must scan as LE, not LT ASSIGN; "==" as EQ, not two ASSIGN.
	toks, errs := ScanAll("a<=b==c!=d")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{token.IDENT, token.LE, token.IDENT, token.EQ, token.IDENT, token.NEQ, token.IDENT, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}
