// Package parser implements a recursive-descent parser for the
// mini-language.
//
// Grammar (EBNF):
//
//	program   = { global } { procedure } .
//	global    = type ident "=" expr ";" .
//	procedure = "proc" ident "(" [ param { "," param } ] ")" block .
//	param     = type ident .
//	type      = "int" | "bool" .
//	block     = "{" { stmt } "}" .
//	stmt      = assign | call | if | while | assert | "skip" ";" | "return" ";" | block .
//	assign    = ident "=" expr ";" .
//	call      = ident "(" [ expr { "," expr } ] ")" ";" .
//	if        = "if" "(" expr ")" block [ "else" ( block | if ) ] .
//	while     = "while" "(" expr ")" block .
//	assert    = "assert" expr ";" .
//	expr      = or .
//	or        = and { "||" and } .
//	and       = not { "&&" not } .
//	not       = "!" not | cmp .
//	cmp       = sum [ ("=="|"!="|"<"|"<="|">"|">=") sum ] .
//	sum       = term { ("+"|"-") term } .
//	term      = unary { ("*"|"/"|"%") unary } .
//	unary     = "-" unary | atom .
//	atom      = INT | "true" | "false" | ident | "(" expr ")" .
//
// "else if" chains are parsed as nested If statements with single-statement
// else blocks, matching the structure of the paper's Fig. 2 example.
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"dise/internal/lang/ast"
	"dise/internal/lang/lexer"
	"dise/internal/lang/token"
)

// Parser holds parse state over a pre-scanned token stream.
type Parser struct {
	toks []token.Token
	pos  int
	errs []error
	// recovered is set right after panic-mode recovery so that the next
	// failing expect() is suppressed instead of producing a cascade.
	recovered bool
}

// Parse parses a complete program from source text.
func Parse(src string) (*ast.Program, error) {
	toks, lexErrs := lexer.ScanAll(src)
	p := &Parser{toks: toks}
	for _, e := range lexErrs {
		p.errs = append(p.errs, e)
	}
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		msgs := make([]string, 0, len(p.errs))
		for _, e := range p.errs {
			msgs = append(msgs, e.Error())
		}
		return prog, errors.New(strings.Join(msgs, "\n"))
	}
	return prog, nil
}

// MustParse parses src and panics on error. It is intended for artifact
// sources embedded as Go constants, where a parse failure is a programming
// error in this repository rather than user input.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse: %v", err))
	}
	return prog
}

// ParseProcedure parses a source file and returns the single procedure named
// name (or the only procedure if name is empty).
func ParseProcedure(src, name string) (*ast.Program, *ast.Procedure, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if name == "" {
		if len(prog.Procs) != 1 {
			return nil, nil, fmt.Errorf("expected exactly one procedure, found %d", len(prog.Procs))
		}
		return prog, prog.Procs[0], nil
	}
	pr := prog.Proc(name)
	if pr == nil {
		return nil, nil, fmt.Errorf("procedure %q not found", name)
	}
	return prog, pr, nil
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		p.recovered = false
		return p.next()
	}
	if p.recovered {
		// We just resynchronized after an error; the structural token the
		// caller wanted was likely swallowed during recovery. Pretend it was
		// present rather than reporting a follow-on error.
		p.recovered = false
		return token.Token{Kind: k, Pos: p.cur().Pos}
	}
	p.errorf("expected %q, found %s", k.String(), p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...)))
	// Recover: skip ahead to a statement boundary so a single typo does not
	// produce a cascade of errors.
	for !p.at(token.EOF) && !p.at(token.SEMICOLON) && !p.at(token.RBRACE) {
		p.next()
	}
	p.accept(token.SEMICOLON)
	p.recovered = true
}

func (p *Parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.at(token.KWINT) || p.at(token.KWBOOL) {
		prog.Globals = append(prog.Globals, p.parseGlobal())
	}
	for p.at(token.KWPROC) {
		prog.Procs = append(prog.Procs, p.parseProcedure())
	}
	if !p.at(token.EOF) {
		p.errorf("unexpected token %s at top level", p.cur())
	}
	return prog
}

func (p *Parser) parseType() ast.Type {
	switch {
	case p.accept(token.KWINT):
		return ast.TypeInt
	case p.accept(token.KWBOOL):
		return ast.TypeBool
	}
	p.errorf("expected type, found %s", p.cur())
	return ast.TypeInvalid
}

func (p *Parser) parseGlobal() *ast.Global {
	pos := p.cur().Pos
	typ := p.parseType()
	name := p.expect(token.IDENT)
	p.expect(token.ASSIGN)
	init := p.parseExpr()
	p.expect(token.SEMICOLON)
	return &ast.Global{Name: name.Lit, Type: typ, Init: init, TokPos: pos}
}

func (p *Parser) parseProcedure() *ast.Procedure {
	pos := p.expect(token.KWPROC).Pos
	name := p.expect(token.IDENT)
	p.expect(token.LPAREN)
	var params []ast.Param
	if !p.at(token.RPAREN) {
		for {
			ppos := p.cur().Pos
			typ := p.parseType()
			pname := p.expect(token.IDENT)
			params = append(params, ast.Param{Name: pname.Lit, Type: typ, TokPos: ppos})
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.Procedure{Name: name.Lit, Params: params, Body: body, TokPos: pos}
}

func (p *Parser) parseBlock() *ast.Block {
	pos := p.expect(token.LBRACE).Pos
	blk := &ast.Block{TokPos: pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		blk.Stmts = append(blk.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return blk
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.KWIF:
		return p.parseIf()
	case token.KWWHILE:
		pos := p.next().Pos
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		body := p.parseBlock()
		return &ast.While{Cond: cond, Body: body, TokPos: pos}
	case token.KWASSERT:
		pos := p.next().Pos
		cond := p.parseExpr()
		p.expect(token.SEMICOLON)
		return &ast.Assert{Cond: cond, TokPos: pos}
	case token.KWSKIP:
		pos := p.next().Pos
		p.expect(token.SEMICOLON)
		return &ast.Skip{TokPos: pos}
	case token.KWRETURN:
		pos := p.next().Pos
		p.expect(token.SEMICOLON)
		return &ast.Return{TokPos: pos}
	case token.LBRACE:
		return p.parseBlock()
	case token.IDENT:
		name := p.next()
		if p.at(token.LPAREN) {
			// Procedure call statement: callee(arg, ...);
			p.next()
			var args []ast.Expr
			if !p.at(token.RPAREN) {
				for {
					args = append(args, p.parseExpr())
					if !p.accept(token.COMMA) {
						break
					}
				}
			}
			p.expect(token.RPAREN)
			p.expect(token.SEMICOLON)
			return &ast.Call{Callee: name.Lit, Args: args, TokPos: name.Pos}
		}
		p.expect(token.ASSIGN)
		val := p.parseExpr()
		p.expect(token.SEMICOLON)
		return &ast.Assign{Name: name.Lit, Value: val, TokPos: name.Pos}
	}
	p.errorf("expected statement, found %s", p.cur())
	return &ast.Skip{TokPos: p.cur().Pos}
}

func (p *Parser) parseIf() ast.Stmt {
	pos := p.expect(token.KWIF).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlock()
	stmt := &ast.If{Cond: cond, Then: then, TokPos: pos}
	if p.accept(token.KWELSE) {
		if p.at(token.KWIF) {
			// "else if" chain: wrap the nested if in a synthetic block.
			nested := p.parseIf()
			stmt.Else = &ast.Block{Stmts: []ast.Stmt{nested}, TokPos: nested.Pos()}
		} else {
			stmt.Else = p.parseBlock()
		}
	}
	return stmt
}

// --- expressions, precedence climbing --------------------------------------

func (p *Parser) parseExpr() ast.Expr { return p.parseOr() }

func (p *Parser) parseOr() ast.Expr {
	l := p.parseAnd()
	for p.at(token.LOR) {
		p.next()
		r := p.parseAnd()
		l = &ast.Binary{Op: token.LOR, L: l, R: r}
	}
	return l
}

func (p *Parser) parseAnd() ast.Expr {
	l := p.parseNot()
	for p.at(token.LAND) {
		p.next()
		r := p.parseNot()
		l = &ast.Binary{Op: token.LAND, L: l, R: r}
	}
	return l
}

func (p *Parser) parseNot() ast.Expr {
	if p.at(token.NOT) {
		pos := p.next().Pos
		x := p.parseNot()
		return &ast.Unary{Op: token.NOT, X: x, TokPos: pos}
	}
	return p.parseCmp()
}

func (p *Parser) parseCmp() ast.Expr {
	l := p.parseSum()
	if p.cur().Kind.IsComparison() {
		op := p.next().Kind
		r := p.parseSum()
		return &ast.Binary{Op: op, L: l, R: r}
	}
	return l
}

func (p *Parser) parseSum() ast.Expr {
	l := p.parseTerm()
	for p.at(token.PLUS) || p.at(token.MINUS) {
		op := p.next().Kind
		r := p.parseTerm()
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l
}

func (p *Parser) parseTerm() ast.Expr {
	l := p.parseUnary()
	for p.at(token.STAR) || p.at(token.SLASH) || p.at(token.PERCENT) {
		op := p.next().Kind
		r := p.parseUnary()
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l
}

func (p *Parser) parseUnary() ast.Expr {
	if p.at(token.MINUS) {
		pos := p.next().Pos
		x := p.parseUnary()
		// Fold "-<literal>" immediately so negative constants stay literals.
		if lit, ok := x.(*ast.IntLit); ok {
			return &ast.IntLit{Value: -lit.Value, TokPos: pos}
		}
		return &ast.Unary{Op: token.MINUS, X: x, TokPos: pos}
	}
	return p.parseAtom()
}

func (p *Parser) parseAtom() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf("invalid integer literal %q: %v", t.Lit, err)
		}
		return &ast.IntLit{Value: v, TokPos: t.Pos}
	case token.TRUE:
		p.next()
		return &ast.BoolLit{Value: true, TokPos: t.Pos}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{Value: false, TokPos: t.Pos}
	case token.IDENT:
		p.next()
		return &ast.Ident{Name: t.Lit, TokPos: t.Pos}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf("expected expression, found %s", t)
	return &ast.IntLit{Value: 0, TokPos: t.Pos}
}
