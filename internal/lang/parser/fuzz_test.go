package parser

import (
	"testing"

	"dise/internal/lang/ast"
)

// FuzzParseRoundTrip checks two robustness properties on arbitrary input:
// the parser never panics, and any program it accepts pretty-prints to a
// form it accepts again with an identical rendering (print/parse is a
// fixed point). Run with `go test -fuzz FuzzParseRoundTrip` for continuous
// fuzzing; the seed corpus runs as part of the normal test suite.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		"",
		"proc p() { }",
		"int G = 1;\nproc p(int x) { if (x > 0) { y = x; } }",
		"proc p(int a, bool b) { while (a < 3) { a = a + 1; } assert b; }",
		"proc f(int v) { o = v; } proc main(int x) { f(x + 1); }",
		"proc p() { skip; return; }",
		"proc broken( {",
		"int x = ;",
		"proc p() { x = 1 + ; }",
		"proc p() { if (a && !b || c) { x = -5 % 2; } else { x = 0; } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := ast.Pretty(prog)
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted program does not reparse: %v\noriginal: %q\nprinted: %q", err, src, printed)
		}
		if second := ast.Pretty(again); second != printed {
			t.Fatalf("pretty print not a fixed point:\nfirst:\n%s\nsecond:\n%s", printed, second)
		}
	})
}
