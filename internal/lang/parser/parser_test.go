package parser

import (
	"strings"
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/token"
)

// fig2Source is the motivating example of the DiSE paper (Fig. 2(a)),
// transliterated into the mini-language. The modified conditional at the
// paper's line 2 is "PedalPos <= 0".
const fig2Source = `
int AltPress = 0;
int Meter = 2;

proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos <= 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 1;
  } else {
    AltPress = 2;
  }
}
`

func TestParseFig2(t *testing.T) {
	prog, err := Parse(fig2Source)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(prog.Globals))
	}
	if prog.Globals[0].Name != "AltPress" || prog.Globals[1].Name != "Meter" {
		t.Errorf("global names = %s, %s", prog.Globals[0].Name, prog.Globals[1].Name)
	}
	pr := prog.Proc("update")
	if pr == nil {
		t.Fatal("procedure update not found")
	}
	if len(pr.Params) != 3 {
		t.Fatalf("params = %d, want 3", len(pr.Params))
	}
	if pr.Params[0].Name != "PedalPos" || pr.Params[0].Type != ast.TypeInt {
		t.Errorf("param 0 = %v", pr.Params[0])
	}
	// Body: if, assign, if, if = 4 statements.
	if len(pr.Body.Stmts) != 4 {
		t.Fatalf("body statements = %d, want 4", len(pr.Body.Stmts))
	}
	first, ok := pr.Body.Stmts[0].(*ast.If)
	if !ok {
		t.Fatalf("first statement is %T, want *ast.If", pr.Body.Stmts[0])
	}
	cond, ok := first.Cond.(*ast.Binary)
	if !ok || cond.Op != token.LE {
		t.Fatalf("first condition = %s, want PedalPos <= 0", first.Cond)
	}
	// else-if chain is a nested If in a one-statement else block.
	if first.Else == nil || len(first.Else.Stmts) != 1 {
		t.Fatalf("else block = %v, want single nested if", first.Else)
	}
	if _, ok := first.Else.Stmts[0].(*ast.If); !ok {
		t.Fatalf("else statement is %T, want *ast.If", first.Else.Stmts[0])
	}
}

func TestParseRoundTrip(t *testing.T) {
	prog, err := Parse(fig2Source)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	printed := ast.Pretty(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of pretty output failed: %v\n%s", err, printed)
	}
	if ast.Pretty(prog2) != printed {
		t.Errorf("pretty print not a fixed point:\n--- first\n%s\n--- second\n%s", printed, ast.Pretty(prog2))
	}
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"x = 1 + 2 * 3;", "x = 1 + (2 * 3);"},
		{"x = 1 * 2 + 3;", "x = (1 * 2) + 3;"},
		{"x = 1 - 2 - 3;", "x = (1 - 2) - 3;"},
		{"x = (1 + 2) * 3;", "x = (1 + 2) * 3;"},
		{"b = 1 < 2 && 3 < 4;", "b = (1 < 2) && (3 < 4);"},
		{"b = a && b || c && d;", "b = (a && b) || (c && d);"},
		{"b = !(x == 1);", "b = !(x == 1);"},
		{"x = -y + 1;", "x = -y + 1;"},
		{"x = -5;", "x = -5;"},
		{"x = 7 % 3;", "x = 7 % 3;"},
	}
	for _, tt := range tests {
		prog, err := Parse("proc p(int x, int y, int a, bool b, bool c, bool d) { " + tt.src + " }")
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.src, err)
			continue
		}
		got := prog.Procs[0].Body.Stmts[0].String()
		// Normalize: the printer parenthesizes composite children, so compare
		// against the expected fully parenthesized rendering.
		if normalizeSpaces(got) != normalizeSpaces(tt.want) {
			t.Errorf("Parse(%q) printed %q, want %q", tt.src, got, tt.want)
		}
	}
}

func normalizeSpaces(s string) string { return strings.Join(strings.Fields(s), " ") }

func TestParseWhileAssertSkipReturn(t *testing.T) {
	src := `proc p(int n) {
		i = 0;
		while (i < n) {
			i = i + 1;
			if (i == 7) { return; }
		}
		assert i >= 0;
		skip;
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body := prog.Procs[0].Body.Stmts
	if len(body) != 4 {
		t.Fatalf("body statements = %d, want 4", len(body))
	}
	w, ok := body[1].(*ast.While)
	if !ok {
		t.Fatalf("statement 1 is %T, want *ast.While", body[1])
	}
	if len(w.Body.Stmts) != 2 {
		t.Fatalf("while body = %d stmts, want 2", len(w.Body.Stmts))
	}
	if _, ok := body[2].(*ast.Assert); !ok {
		t.Errorf("statement 2 is %T, want *ast.Assert", body[2])
	}
	if _, ok := body[3].(*ast.Skip); !ok {
		t.Errorf("statement 3 is %T, want *ast.Skip", body[3])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"proc p( { }",                            // malformed params
		"proc p() { x = ; }",                     // missing expression
		"proc p() { if x { } }",                  // missing parens
		"proc p() { x = 1 }",                     // missing semicolon
		"int g;",                                 // global without initializer
		"proc p() { y 3; }",                      // not a statement
		"proc p() { x = 99999999999999999999; }", // overflow literal
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got none", src)
		}
	}
}

func TestParseErrorRecovery(t *testing.T) {
	// Two independent errors should both be reported.
	src := "proc p() { x = ; y = ; }"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected errors")
	}
	if n := strings.Count(err.Error(), "expected expression"); n < 2 {
		t.Errorf("want at least 2 'expected expression' errors, got %d in %v", n, err)
	}
}

func TestParseProcedureHelper(t *testing.T) {
	_, pr, err := ParseProcedure(fig2Source, "update")
	if err != nil {
		t.Fatalf("ParseProcedure: %v", err)
	}
	if pr.Name != "update" {
		t.Errorf("name = %q, want update", pr.Name)
	}
	if _, _, err := ParseProcedure(fig2Source, "missing"); err == nil {
		t.Error("expected error for missing procedure")
	}
	if _, pr2, err := ParseProcedure(fig2Source, ""); err != nil || pr2.Name != "update" {
		t.Errorf("ParseProcedure with empty name = %v, %v; want update", pr2, err)
	}
}

func TestParseLinePositionsForCFGNodes(t *testing.T) {
	// Line numbers drive the CFG node labels that DiSE reports; verify the
	// statements carry the expected lines.
	prog, err := Parse(fig2Source)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pr := prog.Proc("update")
	first := pr.Body.Stmts[0].(*ast.If)
	if first.Pos().Line != 6 {
		t.Errorf("first if line = %d, want 6", first.Pos().Line)
	}
	thenAssign := first.Then.Stmts[0].(*ast.Assign)
	if thenAssign.Pos().Line != 7 {
		t.Errorf("then-assign line = %d, want 7", thenAssign.Pos().Line)
	}
}

func TestCloneIndependence(t *testing.T) {
	prog, err := Parse(fig2Source)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	clone := ast.CloneProgram(prog)
	// Mutate the clone and make sure the original is untouched.
	clone.Procs[0].Body.Stmts[0].(*ast.If).Cond = &ast.BoolLit{Value: true}
	orig := prog.Procs[0].Body.Stmts[0].(*ast.If).Cond
	if _, ok := orig.(*ast.Binary); !ok {
		t.Error("mutating clone changed original condition")
	}
	if ast.Pretty(clone) == ast.Pretty(prog) {
		t.Error("clone mutation did not take effect")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid source did not panic")
		}
	}()
	MustParse("proc p( {")
}
