// Package types implements the static semantic checker for the
// mini-language.
//
// The checker validates that:
//   - globals have constant initializers matching their declared type,
//   - every variable referenced in a procedure is a global, a parameter, or
//     assigned somewhere in the procedure before symbolic execution can read
//     it (local variables are introduced by first assignment, Java-style
//     locals without declarations keep the language compact),
//   - expressions are well-typed (no int/bool mixing),
//   - conditions of if/while/assert are boolean,
//   - no variable is used with two different types.
package types

import (
	"errors"
	"fmt"
	"strings"

	"dise/internal/lang/ast"
	"dise/internal/lang/token"
)

// Info holds the result of checking a program: the type of every named
// variable per procedure.
type Info struct {
	// Globals maps global variable name to type.
	Globals map[string]ast.Type
	// ProcVars maps procedure name to a map of variable name to type
	// (parameters, referenced globals, and locals).
	ProcVars map[string]map[string]ast.Type
}

// VarTypes returns the variable typing environment of procedure name.
func (in *Info) VarTypes(name string) map[string]ast.Type { return in.ProcVars[name] }

type checker struct {
	prog *ast.Program
	info *Info
	errs []error
	// procs indexes procedures by name for call checking.
	procs map[string]*ast.Procedure
}

// Check validates the program and returns typing information.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		prog: prog,
		info: &Info{
			Globals:  map[string]ast.Type{},
			ProcVars: map[string]map[string]ast.Type{},
		},
		procs: map[string]*ast.Procedure{},
	}
	c.checkGlobals()
	seen := map[string]bool{}
	for _, pr := range prog.Procs {
		if seen[pr.Name] {
			c.errorf(pr.Pos(), "duplicate procedure %q", pr.Name)
			continue
		}
		seen[pr.Name] = true
		c.procs[pr.Name] = pr
	}
	for _, pr := range prog.Procs {
		c.checkProc(pr)
	}
	c.checkCallGraphAcyclic()
	if len(c.errs) > 0 {
		msgs := make([]string, 0, len(c.errs))
		for _, e := range c.errs {
			msgs = append(msgs, e.Error())
		}
		return c.info, errors.New(strings.Join(msgs, "\n"))
	}
	return c.info, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *checker) checkGlobals() {
	for _, g := range c.prog.Globals {
		if _, dup := c.info.Globals[g.Name]; dup {
			c.errorf(g.Pos(), "duplicate global %q", g.Name)
			continue
		}
		switch init := g.Init.(type) {
		case *ast.IntLit:
			if g.Type != ast.TypeInt {
				c.errorf(g.Pos(), "global %q declared %s but initialized with int literal", g.Name, g.Type)
			}
		case *ast.BoolLit:
			if g.Type != ast.TypeBool {
				c.errorf(g.Pos(), "global %q declared %s but initialized with bool literal", g.Name, g.Type)
			}
		default:
			c.errorf(g.Pos(), "global %q initializer must be a literal, found %s", g.Name, init)
		}
		c.info.Globals[g.Name] = g.Type
	}
}

// procChecker carries the per-procedure environment.
type procChecker struct {
	*checker
	vars map[string]ast.Type
}

func (c *checker) checkProc(pr *ast.Procedure) {
	pc := &procChecker{checker: c, vars: map[string]ast.Type{}}
	for name, t := range c.info.Globals {
		pc.vars[name] = t
	}
	for _, p := range pr.Params {
		if _, dup := pc.vars[p.Name]; dup {
			// Parameter shadowing a global (or duplicate parameter) would make
			// the Def/Use analysis ambiguous; reject it.
			c.errorf(p.TokPos, "parameter %q shadows an existing variable", p.Name)
		}
		pc.vars[p.Name] = p.Type
	}
	// First pass: infer local variable types from assignments so that uses
	// textually before the first assignment (e.g. inside a loop) still check.
	pc.inferLocals(pr.Body.Stmts)
	pc.checkStmts(pr.Body.Stmts)
	c.info.ProcVars[pr.Name] = pc.vars
}

// inferLocals assigns a type to every variable first introduced by an
// assignment. A variable assigned a bool-typed expression is a bool local;
// anything else defaults to int. Conflicts surface in checkStmts.
func (pc *procChecker) inferLocals(stmts []ast.Stmt) {
	ast.Walk(stmts, func(s ast.Stmt) {
		a, ok := s.(*ast.Assign)
		if !ok {
			return
		}
		if _, exists := pc.vars[a.Name]; exists {
			return
		}
		if t, err := pc.typeOf(a.Value, true); err == nil && t == ast.TypeBool {
			pc.vars[a.Name] = ast.TypeBool
		} else {
			pc.vars[a.Name] = ast.TypeInt
		}
	})
}

func (pc *procChecker) checkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.Assign:
			t := pc.exprType(s.Value)
			want := pc.vars[s.Name]
			if t != ast.TypeInvalid && want != ast.TypeInvalid && t != want {
				pc.errorf(s.Pos(), "cannot assign %s expression to %s variable %q", t, want, s.Name)
			}
		case *ast.If:
			pc.checkCond(s.Cond, "if")
			pc.checkStmts(s.Then.Stmts)
			if s.Else != nil {
				pc.checkStmts(s.Else.Stmts)
			}
		case *ast.While:
			pc.checkCond(s.Cond, "while")
			pc.checkStmts(s.Body.Stmts)
		case *ast.Assert:
			pc.checkCond(s.Cond, "assert")
		case *ast.Call:
			pc.checkCall(s)
		case *ast.Block:
			pc.checkStmts(s.Stmts)
		case *ast.Skip, *ast.Return:
			// Nothing to check.
		}
	}
}

// checkCall validates callee existence, arity and argument types.
func (pc *procChecker) checkCall(s *ast.Call) {
	callee, ok := pc.procs[s.Callee]
	if !ok {
		pc.errorf(s.Pos(), "call to undefined procedure %q", s.Callee)
		return
	}
	if len(s.Args) != len(callee.Params) {
		pc.errorf(s.Pos(), "call to %q has %d arguments, want %d", s.Callee, len(s.Args), len(callee.Params))
		return
	}
	for i, arg := range s.Args {
		got := pc.exprType(arg)
		want := callee.Params[i].Type
		if got != ast.TypeInvalid && got != want {
			pc.errorf(arg.Pos(), "argument %d of call to %q is %s, want %s", i+1, s.Callee, got, want)
		}
	}
}

// checkCallGraphAcyclic rejects direct or mutual recursion: the inline
// expansion (package inline) requires a call DAG.
func (c *checker) checkCallGraphAcyclic() {
	calls := map[string][]string{}
	//diselint:ignore maporder each key's slice comes from one proc's deterministic AST walk; cross-key fill order cannot affect the final map
	for name, pr := range c.procs {
		ast.Walk(pr.Body.Stmts, func(s ast.Stmt) {
			if call, ok := s.(*ast.Call); ok {
				calls[name] = append(calls[name], call.Callee)
			}
		})
	}
	const (
		unvisited = iota
		visiting
		done
	)
	state := map[string]int{}
	var visit func(name string) bool
	visit = func(name string) bool {
		switch state[name] {
		case visiting:
			return false
		case done:
			return true
		}
		state[name] = visiting
		for _, callee := range calls[name] {
			if _, ok := c.procs[callee]; !ok {
				continue // undefined callee reported elsewhere
			}
			if !visit(callee) {
				c.errorf(c.procs[name].Pos(), "recursive call cycle through %q and %q", name, callee)
				state[name] = done
				return true // report once per cycle entry
			}
		}
		state[name] = done
		return true
	}
	for name := range c.procs {
		visit(name)
	}
}

func (pc *procChecker) checkCond(e ast.Expr, ctx string) {
	if t := pc.exprType(e); t != ast.TypeBool && t != ast.TypeInvalid {
		pc.errorf(e.Pos(), "%s condition must be bool, found %s", ctx, t)
	}
}

// exprType types e, reporting errors.
func (pc *procChecker) exprType(e ast.Expr) ast.Type {
	t, err := pc.typeOf(e, false)
	if err != nil {
		pc.errs = append(pc.errs, err)
		return ast.TypeInvalid
	}
	return t
}

// typeOf computes the type of e. With probe set, unknown identifiers type as
// int without reporting errors — used during local inference.
func (pc *procChecker) typeOf(e ast.Expr, probe bool) (ast.Type, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return ast.TypeInt, nil
	case *ast.BoolLit:
		return ast.TypeBool, nil
	case *ast.Ident:
		if t, ok := pc.vars[e.Name]; ok {
			return t, nil
		}
		if probe {
			return ast.TypeInt, nil
		}
		return ast.TypeInvalid, fmt.Errorf("%s: undefined variable %q", e.Pos(), e.Name)
	case *ast.Unary:
		xt, err := pc.typeOf(e.X, probe)
		if err != nil {
			return ast.TypeInvalid, err
		}
		switch e.Op {
		case token.NOT:
			if xt != ast.TypeBool {
				return ast.TypeInvalid, fmt.Errorf("%s: operator ! requires bool, found %s", e.Pos(), xt)
			}
			return ast.TypeBool, nil
		case token.MINUS:
			if xt != ast.TypeInt {
				return ast.TypeInvalid, fmt.Errorf("%s: unary - requires int, found %s", e.Pos(), xt)
			}
			return ast.TypeInt, nil
		}
		return ast.TypeInvalid, fmt.Errorf("%s: unknown unary operator %s", e.Pos(), e.Op)
	case *ast.Binary:
		lt, err := pc.typeOf(e.L, probe)
		if err != nil {
			return ast.TypeInvalid, err
		}
		rt, err := pc.typeOf(e.R, probe)
		if err != nil {
			return ast.TypeInvalid, err
		}
		switch {
		case e.Op.IsArith():
			if lt != ast.TypeInt || rt != ast.TypeInt {
				return ast.TypeInvalid, fmt.Errorf("%s: operator %s requires int operands, found %s and %s", e.Pos(), e.Op, lt, rt)
			}
			return ast.TypeInt, nil
		case e.Op == token.EQ || e.Op == token.NEQ:
			if lt != rt {
				return ast.TypeInvalid, fmt.Errorf("%s: operator %s requires matching operand types, found %s and %s", e.Pos(), e.Op, lt, rt)
			}
			return ast.TypeBool, nil
		case e.Op.IsComparison():
			if lt != ast.TypeInt || rt != ast.TypeInt {
				return ast.TypeInvalid, fmt.Errorf("%s: operator %s requires int operands, found %s and %s", e.Pos(), e.Op, lt, rt)
			}
			return ast.TypeBool, nil
		case e.Op == token.LAND || e.Op == token.LOR:
			if lt != ast.TypeBool || rt != ast.TypeBool {
				return ast.TypeInvalid, fmt.Errorf("%s: operator %s requires bool operands, found %s and %s", e.Pos(), e.Op, lt, rt)
			}
			return ast.TypeBool, nil
		}
		return ast.TypeInvalid, fmt.Errorf("%s: unknown binary operator %s", e.Pos(), e.Op)
	}
	return ast.TypeInvalid, fmt.Errorf("unknown expression %T", e)
}
