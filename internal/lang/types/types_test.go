package types

import (
	"strings"
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestCheckValidProgram(t *testing.T) {
	src := `
int G = 5;
bool Flag = true;
proc p(int x, bool b) {
	y = x + G;
	if (b && y > 0) {
		Flag = false;
	}
	while (y < 10) {
		y = y + 1;
	}
	assert y >= 0;
}`
	info, err := Check(mustParse(t, src))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	vars := info.VarTypes("p")
	want := map[string]ast.Type{
		"G": ast.TypeInt, "Flag": ast.TypeBool,
		"x": ast.TypeInt, "b": ast.TypeBool, "y": ast.TypeInt,
	}
	for name, typ := range want {
		if vars[name] != typ {
			t.Errorf("type of %s = %v, want %v", name, vars[name], typ)
		}
	}
}

func TestCheckLocalBoolInference(t *testing.T) {
	src := `proc p(int x) {
		ok = x > 0;
		if (ok) { x = 1; }
	}`
	info, err := Check(mustParse(t, src))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := info.VarTypes("p")["ok"]; got != ast.TypeBool {
		t.Errorf("type of ok = %v, want bool", got)
	}
}

func TestCheckErrors(t *testing.T) {
	tests := []struct {
		name, src, wantErr string
	}{
		{"undefined variable", "proc p() { x = y + 1; }", `undefined variable "y"`},
		{"int condition", "proc p(int x) { if (x) { skip; } }", "condition must be bool"},
		{"bool arithmetic", "proc p(bool b) { x = b + 1; }", "requires int operands"},
		{"assign bool to int", "proc p(int x, bool b) { x = b && b; }", "cannot assign bool"},
		{"mixed equality", "proc p(int x, bool b) { c = x == b; }", "matching operand types"},
		{"not on int", "proc p(int x) { b = !x; }", "requires bool"},
		{"neg on bool", "proc p(bool b) { c = -b; }", "requires int"},
		{"and on ints", "proc p(int x) { b = x && x; }", "requires bool operands"},
		{"cmp on bools", "proc p(bool b) { c = b < b; }", "requires int operands"},
		{"duplicate global", "int G = 1; int G = 2; proc p() { skip; }", "duplicate global"},
		{"duplicate proc", "proc p() { skip; } proc p() { skip; }", "duplicate procedure"},
		{"param shadows global", "int x = 1; proc p(int x) { skip; }", "shadows"},
		{"bad global init type", "int G = true; proc p() { skip; }", "initialized with bool literal"},
		{"global init not literal", "int G = 1 + 2; proc p() { skip; }", "must be a literal"},
		{"assert int", "proc p(int x) { assert x + 1; }", "condition must be bool"},
		{"while int", "proc p(int x) { while (x) { skip; } }", "condition must be bool"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Check(mustParse(t, tt.src))
			if err == nil {
				t.Fatalf("Check(%q): expected error containing %q", tt.src, tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestCheckUseBeforeAssignInLoop(t *testing.T) {
	// i is read in the loop condition before its first textual assignment in
	// the body — local inference must still type it.
	src := `proc p(int n) {
		i = 0;
		sum = 0;
		while (i < n) {
			sum = sum + i;
			i = i + 1;
		}
	}`
	if _, err := Check(mustParse(t, src)); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestCheckMultipleProcs(t *testing.T) {
	src := `
int G = 0;
proc a(int x) { G = x; }
proc b(bool f) { if (f) { G = 1; } }
`
	info, err := Check(mustParse(t, src))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if info.VarTypes("a")["x"] != ast.TypeInt {
		t.Error("proc a param x should be int")
	}
	if info.VarTypes("b")["f"] != ast.TypeBool {
		t.Error("proc b param f should be bool")
	}
}
