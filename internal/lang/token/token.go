// Package token defines the lexical tokens of the mini-language analyzed by
// DiSE, together with source positions.
//
// The language is a small Java-like imperative language: int and bool types,
// global variable declarations, procedures, assignments, if/else, while,
// assert, and expressions over linear integer arithmetic and booleans. It is
// deliberately close to the subset of Java exercised by the artifacts in the
// DiSE paper (PLDI 2011): synchronous reactive controllers made of nested
// conditionals over integer sensor inputs.
package token

import "fmt"

// Kind enumerates the lexical token kinds.
type Kind int

// Token kinds. The order within the operator block matters only for
// compactness; parsing precedence is handled by the parser.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT // update, PedalPos, x
	INT   // 123
	TRUE  // true
	FALSE // false

	// Operators and punctuation.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	ASSIGN // =
	EQ     // ==
	NEQ    // !=
	LT     // <
	LE     // <=
	GT     // >
	GE     // >=

	LAND // &&
	LOR  // ||
	NOT  // !

	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	COMMA     // ,
	SEMICOLON // ;

	// Keywords.
	KWINT    // int
	KWBOOL   // bool
	KWIF     // if
	KWELSE   // else
	KWWHILE  // while
	KWPROC   // proc
	KWASSERT // assert
	KWSKIP   // skip
	KWRETURN // return
)

var kindNames = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	IDENT:     "IDENT",
	INT:       "INT",
	TRUE:      "true",
	FALSE:     "false",
	PLUS:      "+",
	MINUS:     "-",
	STAR:      "*",
	SLASH:     "/",
	PERCENT:   "%",
	ASSIGN:    "=",
	EQ:        "==",
	NEQ:       "!=",
	LT:        "<",
	LE:        "<=",
	GT:        ">",
	GE:        ">=",
	LAND:      "&&",
	LOR:       "||",
	NOT:       "!",
	LPAREN:    "(",
	RPAREN:    ")",
	LBRACE:    "{",
	RBRACE:    "}",
	COMMA:     ",",
	SEMICOLON: ";",
	KWINT:     "int",
	KWBOOL:    "bool",
	KWIF:      "if",
	KWELSE:    "else",
	KWWHILE:   "while",
	KWPROC:    "proc",
	KWASSERT:  "assert",
	KWSKIP:    "skip",
	KWRETURN:  "return",
}

// String returns the canonical spelling of the token kind (or its name for
// kinds without fixed spelling, like IDENT).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"int":    KWINT,
	"bool":   KWBOOL,
	"if":     KWIF,
	"else":   KWELSE,
	"while":  KWWHILE,
	"proc":   KWPROC,
	"assert": KWASSERT,
	"skip":   KWSKIP,
	"return": KWRETURN,
	"true":   TRUE,
	"false":  FALSE,
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Before reports whether p appears strictly before q in the source.
func (p Pos) Before(q Pos) bool {
	return p.Line < q.Line || (p.Line == q.Line && p.Col < q.Col)
}

// Token is a single lexical token with its source position and spelling.
type Token struct {
	Kind Kind
	Lit  string // original spelling for IDENT and INT; empty otherwise
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsComparison reports whether the kind is a comparison operator.
func (k Kind) IsComparison() bool {
	switch k {
	case EQ, NEQ, LT, LE, GT, GE:
		return true
	}
	return false
}

// IsArith reports whether the kind is an arithmetic operator.
func (k Kind) IsArith() bool {
	switch k {
	case PLUS, MINUS, STAR, SLASH, PERCENT:
		return true
	}
	return false
}
