package token

import "testing"

func TestKindStrings(t *testing.T) {
	tests := map[Kind]string{
		EOF:     "EOF",
		IDENT:   "IDENT",
		INT:     "INT",
		PLUS:    "+",
		LE:      "<=",
		EQ:      "==",
		NEQ:     "!=",
		LAND:    "&&",
		LOR:     "||",
		KWPROC:  "proc",
		KWWHILE: "while",
		TRUE:    "true",
	}
	for k, want := range tests {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(999).String(); got != "Kind(999)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestKeywordTable(t *testing.T) {
	for word, kind := range Keywords {
		if kind.String() != word && kind != TRUE && kind != FALSE {
			t.Errorf("keyword %q maps to kind %v with spelling %q", word, kind, kind.String())
		}
	}
	if Keywords["proc"] != KWPROC || Keywords["assert"] != KWASSERT {
		t.Error("keyword lookups broken")
	}
	if _, ok := Keywords["function"]; ok {
		t.Error("non-keyword present in table")
	}
}

func TestPosOrdering(t *testing.T) {
	a := Pos{Line: 1, Col: 5}
	b := Pos{Line: 1, Col: 9}
	c := Pos{Line: 2, Col: 1}
	if !a.Before(b) || !b.Before(c) || !a.Before(c) {
		t.Error("Before ordering wrong")
	}
	if b.Before(a) || c.Before(a) {
		t.Error("Before must not be symmetric")
	}
	if a.Before(a) {
		t.Error("Before must be irreflexive")
	}
	if a.String() != "1:5" {
		t.Errorf("Pos.String = %q", a.String())
	}
	if (Pos{}).IsValid() {
		t.Error("zero Pos must be invalid")
	}
	if !a.IsValid() {
		t.Error("set Pos must be valid")
	}
}

func TestTokenString(t *testing.T) {
	tests := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: IDENT, Lit: "x"}, `IDENT("x")`},
		{Token{Kind: INT, Lit: "42"}, `INT("42")`},
		{Token{Kind: LE}, "<="},
		{Token{Kind: ILLEGAL, Lit: "@"}, `ILLEGAL("@")`},
	}
	for _, tt := range tests {
		if got := tt.tok.String(); got != tt.want {
			t.Errorf("Token.String = %q, want %q", got, tt.want)
		}
	}
}

func TestOperatorClassification(t *testing.T) {
	for _, k := range []Kind{EQ, NEQ, LT, LE, GT, GE} {
		if !k.IsComparison() {
			t.Errorf("%v must be a comparison", k)
		}
		if k.IsArith() {
			t.Errorf("%v must not be arithmetic", k)
		}
	}
	for _, k := range []Kind{PLUS, MINUS, STAR, SLASH, PERCENT} {
		if !k.IsArith() {
			t.Errorf("%v must be arithmetic", k)
		}
		if k.IsComparison() {
			t.Errorf("%v must not be a comparison", k)
		}
	}
	if ASSIGN.IsComparison() || LAND.IsArith() {
		t.Error("misclassified operators")
	}
}
