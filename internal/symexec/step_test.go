package symexec

import (
	"strings"
	"testing"

	"dise/internal/cfg"
	"dise/internal/lang/parser"
)

func TestStepReportsInfeasibleTargets(t *testing.T) {
	// Over the non-negative domain, x < 0 is infeasible: the true branch
	// target must be reported, the false branch taken.
	src := `proc p(int x) {
		if (x < 0) {
			neg = 1;
		} else {
			neg = 0;
		}
	}`
	e := newEngine(t, src, "p", Config{})
	s := e.InitialState()
	s = e.Successors(s)[0] // begin -> cond
	step := e.Step(s)
	if len(step.Feasible) != 1 {
		t.Fatalf("feasible = %d, want 1", len(step.Feasible))
	}
	if len(step.InfeasibleTargets) != 1 {
		t.Fatalf("infeasible targets = %d, want 1", len(step.InfeasibleTargets))
	}
	if got := step.InfeasibleTargets[0].Text; !strings.Contains(got, "neg = 1") {
		t.Errorf("infeasible target = %q, want the true-branch write", got)
	}
}

func TestStepReportsFoldedFalseTargets(t *testing.T) {
	// The condition folds to a constant under the environment: the untaken
	// branch is reported as infeasible without a solver call.
	src := `proc p(int x) {
		k = 3;
		if (k > 5) {
			big = 1;
		} else {
			big = 0;
		}
	}`
	e := newEngine(t, src, "p", Config{})
	s := e.InitialState()
	s = e.Successors(s)[0] // begin -> k = 3
	s = e.Successors(s)[0] // k = 3 -> cond
	before := e.Backend.Stats().Checks
	step := e.Step(s)
	if got := e.Backend.Stats().Checks; got != before {
		t.Errorf("folded branch consulted the solver (%d calls)", got-before)
	}
	if len(step.Feasible) != 1 || len(step.InfeasibleTargets) != 1 {
		t.Fatalf("step = %d feasible / %d infeasible, want 1/1",
			len(step.Feasible), len(step.InfeasibleTargets))
	}
	if got := step.InfeasibleTargets[0].Text; !strings.Contains(got, "big = 1") {
		t.Errorf("folded-away target = %q, want the true-branch write", got)
	}
}

func TestModelCacheAvoidsSolverCalls(t *testing.T) {
	// A straight chain of conditions all satisfied by the zero model: the
	// true branches need no solver calls, only the complements do.
	src := `proc p(int a, int b, int c) {
		if (a >= 0) { x1 = 1; } else { x1 = 0; }
		if (b >= 0) { x2 = 1; } else { x2 = 0; }
		if (c >= 0) { x3 = 1; } else { x3 = 0; }
	}`
	e := newEngine(t, src, "p", Config{})
	summary := e.RunFull()
	// a/b/c >= 0 always true over the domain; complements infeasible.
	if len(summary.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(summary.Paths))
	}
	st := e.Stats()
	if st.ModelHits == 0 {
		t.Error("model cache never hit")
	}
	// Exactly the three negated branches required solving.
	if st.Solver.Checks != 3 {
		t.Errorf("solver checks = %d, want 3 (one per infeasible complement)", st.Solver.Checks)
	}
}

func TestEngineRejectsCalls(t *testing.T) {
	src := `
proc helper() { skip; }
proc main() { helper(); }
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(prog, "main", Config{})
	if err == nil || !strings.Contains(err.Error(), "inline") {
		t.Errorf("engine must reject un-inlined calls, got %v", err)
	}
}

func TestCFGBuildPanicsOnCalls(t *testing.T) {
	prog, err := parser.Parse(`
proc helper() { skip; }
proc main() { helper(); }
`)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cfg.Build must panic on call statements")
		}
		if !strings.Contains(r.(string), "inline") {
			t.Errorf("panic message %q should mention inlining", r)
		}
	}()
	cfg.Build(prog.Proc("main"))
}
